package athena

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"athena/internal/report"
)

// Every table and figure of the paper's evaluation section has a
// benchmark below that regenerates it. The rendered output is printed
// once per benchmark (captured by `go test -bench . | tee`), and the
// benchmark timing measures the cost of regenerating the artifact.
//
// Paper-vs-measured values are recorded in EXPERIMENTS.md.

var printOnce sync.Map

func emit(b *testing.B, name, out string) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(name, true); !done {
		fmt.Printf("\n=== %s ===\n%s\n", name, out)
	}
}

func BenchmarkTable1Solutions(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Table1()
	}
	emit(b, "Table 1", s)
}

func BenchmarkFig1DeltaAccuracy(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Fig1(27)
	}
	emit(b, "Fig. 1", s)
}

func BenchmarkTable2ValidRatio(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Table2()
	}
	emit(b, "Table 2", s)
}

func BenchmarkTable3Complexity(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Table3()
	}
	emit(b, "Table 3", s)
}

func BenchmarkTable4Noise(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Table4()
	}
	emit(b, "Table 4", s)
}

// benchAccuracyConfig sizes the training-based studies so the whole
// benchmark package fits inside go test's default 10-minute timeout on
// one core. ResNet-56 (the slowest model by far) is covered by the
// standalone harness instead: `go run ./cmd/athena-bench -accuracy`.
func benchAccuracyConfig() report.AccuracyConfig {
	cfg := report.DefaultAccuracyConfig()
	cfg.TestSamples = 50
	cfg.TrainDigits = 600
	cfg.TrainCIFAR = 100
	cfg.SkipResNet56 = true
	return cfg
}

func BenchmarkFig4ParameterT(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Fig4(benchAccuracyConfig())
	}
	emit(b, "Fig. 4", s)
}

func BenchmarkTable5Accuracy(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Table5(benchAccuracyConfig())
	}
	emit(b, "Table 5", s)
}

func BenchmarkTable6Speedup(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Table6()
	}
	emit(b, "Table 6", s)
}

func BenchmarkTable7EDP(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Table7()
	}
	emit(b, "Table 7", s)
}

func BenchmarkTable8Memory(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Table8()
	}
	emit(b, "Table 8", s)
}

func BenchmarkTable9AreaPower(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Table9()
	}
	emit(b, "Table 9", s)
}

func BenchmarkFig8CrossAccelerator(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Fig8()
	}
	emit(b, "Fig. 8", s)
}

func BenchmarkFig9Breakdown(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Fig9()
	}
	emit(b, "Fig. 9", s)
}

func BenchmarkFig10Energy(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Fig10()
	}
	emit(b, "Fig. 10", s)
}

func BenchmarkFig11EDAP(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Fig11()
	}
	emit(b, "Fig. 11", s)
}

func BenchmarkFig12QuantSensitivity(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Fig12Perf() + report.Fig12Accuracy(benchAccuracyConfig())
	}
	emit(b, "Fig. 12", s)
}

func BenchmarkFig13LaneSensitivity(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Fig13()
	}
	emit(b, "Fig. 13", s)
}

// BenchmarkEncryptedInference measures one complete five-step encrypted
// inference (conv→conv→dense) at test-scale parameters — the software
// pipeline itself, not the simulator.
func BenchmarkEncryptedInference(b *testing.B) {
	eng, err := NewEngine(TestParams())
	if err != nil {
		b.Fatal(err)
	}
	net := benchTinyNet()
	x := NewIntTensor(1, 6, 6)
	rng := rand.New(rand.NewPCG(7, 7))
	for i := range x.Data {
		x.Data[i] = int64(rng.IntN(8))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Infer(net, x); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTinyNet() *QNetwork {
	rng := rand.New(rand.NewPCG(9, 9))
	mk := func(shape ConvShape, act Activation, mult float64) *QConv {
		w := make([][][][]int64, shape.Cout)
		for co := range w {
			w[co] = make([][][]int64, shape.Cin)
			for ci := range w[co] {
				w[co][ci] = make([][]int64, shape.K)
				for i := range w[co][ci] {
					w[co][ci][i] = make([]int64, shape.K)
					for j := range w[co][ci][i] {
						w[co][ci][i][j] = int64(rng.IntN(3)) - 1
					}
				}
			}
		}
		return &QConv{Shape: shape, Weights: w, Bias: make([]int64, shape.Cout),
			Act: act, Multiplier: mult, ActBits: 4, MaxAcc: 120}
	}
	return &QNetwork{
		Name: "bench", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []QBlock{QSeq{
			mk(ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, ActReLU, 1.0/16),
			mk(ConvShape{H: 6, W: 6, Cin: 2, Cout: 2, K: 3, Stride: 1, Pad: 1}, ActReLU, 1.0/16),
			mk(FCShape(2*6*6, 4), ActNone, 1.0/8),
		}},
	}
}

func BenchmarkAblations(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Ablations()
	}
	emit(b, "Ablations", s)
}

func BenchmarkSecurityEstimate(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Security()
	}
	emit(b, "Security", s)
}

func BenchmarkThroughputStudy(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Throughput()
	}
	emit(b, "Throughput", s)
}
