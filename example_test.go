package athena_test

import (
	"fmt"

	"athena"
)

// The smallest complete encrypted-inference round trip: a hand-built
// quantized layer runs under FHE and the decrypted result matches the
// plaintext reference.
func Example() {
	eng, err := athena.NewEngine(athena.TestParams())
	if err != nil {
		panic(err)
	}
	// A 1-channel edge detector with fused ReLU, then a 2-way readout.
	conv := &athena.QConv{
		Shape: athena.ConvShape{H: 6, W: 6, Cin: 1, Cout: 1, K: 3, Stride: 1, Pad: 1},
		Weights: [][][][]int64{{{
			{0, -1, 0},
			{-1, 4, -1},
			{0, -1, 0},
		}}},
		Bias: []int64{0}, Act: athena.ActReLU,
		Multiplier: 0.25, ActBits: 4, MaxAcc: 120,
	}
	dense := &athena.QConv{
		Shape:   athena.FCShape(36, 2),
		Weights: make([][][][]int64, 2),
		Bias:    []int64{0, 0}, Act: athena.ActNone,
		Multiplier: 0.25, ActBits: 4, IsDense: true, MaxAcc: 120,
	}
	for o := 0; o < 2; o++ {
		dense.Weights[o] = make([][][]int64, 36)
		for i := 0; i < 36; i++ {
			w := int64(0)
			if (i/6 < 3) == (o == 0) {
				w = 1
			}
			dense.Weights[o][i] = [][]int64{{w}}
		}
	}
	net := &athena.QNetwork{
		Name: "example", InC: 1, InH: 6, InW: 6,
		WBits: 3, ABits: 4, InScale: 1,
		Blocks: []athena.QBlock{athena.QSeq{conv, dense}},
	}

	x := athena.NewIntTensor(1, 6, 6)
	x.Set(0, 1, 2, 7)
	x.Set(0, 1, 3, 7)

	logits, err := eng.Infer(net, x)
	if err != nil {
		panic(err)
	}
	want := net.ForwardInt(x).Data
	fmt.Println("encrypted == plaintext:", logits[0] == want[0] && logits[1] == want[1])
	// Output: encrypted == plaintext: true
}

// Lowering a paper benchmark onto the Athena framework and pricing it on
// the simulated accelerator.
func ExampleSimulate() {
	qn, err := athena.SpecModel("ResNet-20", 7, 7)
	if err != nil {
		panic(err)
	}
	tr, err := athena.CompileTrace(qn, athena.FullParams())
	if err != nil {
		panic(err)
	}
	r := athena.Simulate(tr, athena.AthenaHW())
	fmt.Println("ResNet-20 w7a7 latency in the paper's ballpark (49-82 ms):",
		r.TimeMS > 49 && r.TimeMS < 82)
	// Output: ResNet-20 w7a7 latency in the paper's ballpark (49-82 ms): true
}
