// Package athena is a from-scratch Go reproduction of "Athena:
// Accelerating Quantized Convolutional Neural Networks under Fully
// Homomorphic Encryption" (MICRO 2025): a BFV-based framework that runs
// quantized CNN inference under FHE with small parameters (N = 2^15,
// t = 65537) by combining coefficient-encoded linear layers, RLWE→LWE
// ciphertext conversion, BSGS repacking, and LUT-based functional
// bootstrapping — plus a cycle-accounting simulator of the paper's
// accelerator and its baselines.
//
// The package is a facade: the heavy lifting lives in internal packages
// (ring, rns, bfv, lwe, pack, fbs, coeffenc, qnn, core, compiler, arch,
// noise, ckksref, report), re-exported here as type aliases and thin
// constructors so downstream users have a single import.
//
// Quick start (see examples/quickstart for a runnable version):
//
//	eng, _ := athena.NewEngine(athena.TestParams())
//	logits, _ := eng.Infer(qnet, input) // fully under encryption
package athena

import (
	"io"

	"athena/internal/arch"
	"athena/internal/coeffenc"
	"athena/internal/compiler"
	"athena/internal/core"
	"athena/internal/qnn"
)

// Params fixes an engine parameter set (ring degree, modulus chain,
// plaintext modulus, LWE dimension, conversion moduli).
type Params = core.Params

// TestParams is the smallest fully-functional parameter set (t = 257,
// N = 2^7): every pipeline stage runs with zero security margin —
// intended for tests and demos.
func TestParams() Params { return core.TestParams() }

// MediumParams supports small real models (t = 65537, N = 2^11).
func MediumParams() Params { return core.MediumParams() }

// FullParams is the paper's production setting (N = 2^15, log2 Q = 720,
// t = 65537, n = 2048); used by the compiler/simulator pair.
func FullParams() Params { return core.FullParams() }

// Engine holds all key material and runs quantized networks under FHE
// through the five-step Athena loop.
type Engine = core.Engine

// Client/server boundary types of the three-phase inference API
// (Engine.EncryptInput → Engine.EvaluateEncrypted → Engine.DecryptLogits).
type (
	// EncryptedInput is the client's ciphertext bundle for one inference.
	EncryptedInput = core.EncryptedInput
	// EncryptedLogits is the server's encrypted result bundle.
	EncryptedLogits = core.EncryptedLogits
	// SoftmaxConfig scales the encrypted softmax decomposition.
	SoftmaxConfig = core.SoftmaxConfig
)

// NewEngine generates all key material (BFV keys, LWE keyswitching key,
// packing keys, compiled S2C transform) for the parameter set.
func NewEngine(p Params) (*Engine, error) { return core.NewEngine(p) }

// Float-network and quantization surface.
type (
	// Network is a float CNN (trainable for the small benchmarks).
	Network = qnn.Network
	// Dataset is a labeled sample collection.
	Dataset = qnn.Dataset
	// Sample is one labeled input.
	Sample = qnn.Sample
	// QNetwork is an integer-exact quantized network — the program the
	// engine executes under encryption.
	QNetwork = qnn.QNetwork
	// QuantConfig controls post-training quantization (wbits/abits).
	QuantConfig = qnn.QuantConfig
	// TrainConfig controls SGD training.
	TrainConfig = qnn.TrainConfig
	// IntTensor is an integer activation tensor.
	IntTensor = qnn.IntTensor
	// Tensor is a float tensor.
	Tensor = qnn.Tensor
)

// ModelByName builds one of the paper's four benchmarks: "MNIST",
// "LeNet", "ResNet-20", "ResNet-56".
func ModelByName(name string, seed uint64) (*Network, error) { return qnn.ModelByName(name, seed) }

// BenchmarkModels lists the paper's benchmarks in evaluation order.
var BenchmarkModels = qnn.BenchmarkModels

// NewDigitNet14 builds a compact 14×14 digit classifier that fits the
// reduced encrypted-inference parameters (see examples/mnistcnn).
func NewDigitNet14(seed uint64) *Network { return qnn.NewDigitNet14(seed) }

// NewShapeNet6 builds the smallest network exercising encrypted max
// pooling (see examples/lenet).
func NewShapeNet6(seed uint64) *Network { return qnn.NewShapeNet6(seed) }

// SynthDigits generates the MNIST stand-in dataset (see DESIGN.md).
func SynthDigits(n int, seed uint64) *Dataset { return qnn.SynthDigits(n, seed) }

// SynthCIFAR generates the CIFAR-10 stand-in dataset.
func SynthCIFAR(n int, seed uint64) *Dataset { return qnn.SynthCIFAR(n, seed) }

// Train runs SGD on a sequential network (MNIST/LeNet scale).
func Train(net *Network, ds *Dataset, cfg TrainConfig) float64 { return qnn.Train(net, ds, cfg) }

// TrainReadout trains only the final classifier on frozen features
// (how the deep ResNets obtain a usable head here).
func TrainReadout(net *Network, ds *Dataset, cfg TrainConfig) float64 {
	return qnn.TrainReadout(net, ds, cfg)
}

// DefaultTrainConfig returns sane settings for the synthetic tasks.
func DefaultTrainConfig() TrainConfig { return qnn.DefaultTrainConfig() }

// Quantize converts a trained float network into the integer-exact form
// the engine executes.
func Quantize(net *Network, calib *Dataset, cfg QuantConfig) (*QNetwork, error) {
	return qnn.Quantize(net, calib, cfg)
}

// DefaultQuantConfig returns the paper's primary w7a7 setting.
func DefaultQuantConfig() QuantConfig { return qnn.DefaultQuantConfig() }

// ReadModelJSON loads a quantized network saved with QNetwork.WriteJSON.
func ReadModelJSON(r io.Reader) (*QNetwork, error) { return qnn.ReadJSONNetwork(r) }

// Quantized-network building blocks, for hand-authored models (the
// examples use these; trained models come out of Quantize).
type (
	// QConv is a quantized convolution or dense layer with its fused
	// remap+activation.
	QConv = qnn.QConv
	// QSeq applies quantized ops in order.
	QSeq = qnn.QSeq
	// QResidual is a quantized residual block.
	QResidual = qnn.QResidual
	// QMaxPool is integer max pooling (max-tree of FBS lookups under FHE).
	QMaxPool = qnn.QMaxPool
	// QAvgPool is integer average pooling (LWE window sums + divide LUT).
	QAvgPool = qnn.QAvgPool
	// QBlock is a structural unit of a quantized network.
	QBlock = qnn.QBlock
	// ConvShape describes a convolution layer's geometry.
	ConvShape = coeffenc.ConvShape
	// Activation selects the non-linearity fused into a remap LUT.
	Activation = qnn.Activation
)

// Fused activations.
const (
	// ActNone requantizes without a non-linearity.
	ActNone = qnn.ActNone
	// ActReLU fuses the rectifier.
	ActReLU = qnn.ActReLU
)

// FCShape returns the conv shape realizing an F→G fully-connected layer.
func FCShape(f, g int) ConvShape { return coeffenc.FCShape(f, g) }

// NewIntTensor allocates a zero integer tensor.
func NewIntTensor(c, h, w int) *IntTensor { return qnn.NewIntTensor(c, h, w) }

// Accelerator-simulation surface.
type (
	// Trace is a quantized network lowered onto the Athena framework.
	Trace = compiler.Trace
	// HWConfig describes one accelerator instance.
	HWConfig = arch.Config
	// SimResult is a simulated run's timing/energy outcome.
	SimResult = arch.Result
)

// CompileTrace lowers a quantized network at the given parameters.
func CompileTrace(q *QNetwork, p Params) (*Trace, error) { return compiler.Compile(q, p) }

// SpecModel builds an untrained benchmark model with heuristic
// accumulator bounds, for tracing and simulation.
func SpecModel(name string, wBits, aBits int) (*QNetwork, error) {
	return compiler.SpecModel(name, wBits, aBits)
}

// AthenaHW returns the paper's accelerator configuration (Table 9).
func AthenaHW() HWConfig { return arch.AthenaConfig() }

// Simulate prices a trace on a hardware configuration.
func Simulate(tr *Trace, cfg HWConfig) *SimResult { return arch.Simulate(tr, cfg) }
