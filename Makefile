GO ?= go

.PHONY: build test check lint vet vet-lostcancel race bench store-test crash-test cluster-test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) run ./cmd/athena-lint ./...

vet:
	$(GO) vet ./...

# lostcancel pinned explicitly, independent of the default vet set: a
# dropped context.CancelFunc is a goroutine leak athena-lint's goleak
# pass cannot see through function values.
vet-lostcancel:
	$(GO) vet -lostcancel ./...

race:
	$(GO) test -race ./...

# The durable session tier's own suite (WAL replay, torn tails,
# compaction properties, disk-cap eviction) under the race detector.
store-test:
	$(GO) test -race -count=1 ./internal/store/...

# Crash-recovery integration: build a real athena-serve, SIGKILL it with
# an upload torn mid-frame and batches in flight, restart on the same
# data dir, and assert acked sessions serve without re-upload. The CI
# persistence job runs exactly this.
crash-test:
	$(GO) build -o /tmp/athena-serve-crashtest ./cmd/athena-serve
	ATHENA_SERVE_BIN=/tmp/athena-serve-crashtest \
		$(GO) test -count=1 -run 'TestCrashRecoverySIGKILL|TestServeStoreRestart' -v ./internal/serve/

# Cluster gate: ring/router/control suites under the race detector,
# including the drain-under-load acceptance test (16 retrying clients
# through the router, owner drained mid-traffic, zero failures). The
# CI cluster-integration job runs exactly this plus a live-binary
# smoke.
cluster-test:
	$(GO) test -race -count=1 ./internal/cluster/ ./internal/serve/client/

# check is the CI gate: compile, vet (plus the pinned lostcancel
# analyzer), FHE-aware static analysis, the full suite under the race
# detector (store suite included), then the crash-recovery integration
# test against a real binary.
check: build vet vet-lostcancel lint race crash-test

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
