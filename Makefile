GO ?= go

.PHONY: build test check lint vet race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) run ./cmd/athena-lint ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: compile, vet, FHE-aware static analysis, then
# the full suite under the race detector.
check: build vet lint race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
