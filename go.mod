module athena

go 1.23
