// Quickstart: the smallest complete Athena round trip.
//
// A hand-built quantized layer pair (conv+ReLU, then a dense readout)
// runs fully under encryption: the input is encrypted with coefficient
// encoding, the convolution happens as one polynomial product, the
// accumulators travel through modulus switching → sample extraction →
// repacking, the fused ReLU+requantization is applied by functional
// bootstrapping, and only the final logits are decrypted.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"athena"
)

func main() {
	fmt.Println("== Athena quickstart ==")
	fmt.Println("key generation (test-scale parameters: N=128, t=257)...")
	eng, err := athena.NewEngine(athena.TestParams())
	if err != nil {
		log.Fatal(err)
	}

	// A 3x3 edge-detector convolution, ReLU fused into its remap.
	conv := &athena.QConv{
		Shape: athena.ConvShape{H: 6, W: 6, Cin: 1, Cout: 1, K: 3, Stride: 1, Pad: 1},
		Weights: [][][][]int64{{{
			{0, -1, 0},
			{-1, 4, -1},
			{0, -1, 0},
		}}},
		Bias:       []int64{0},
		Act:        athena.ActReLU,
		Multiplier: 0.25, // requantize the accumulator back to 4 bits
		ActBits:    4,
		MaxAcc:     120,
	}
	// A dense layer summing each half of the feature map.
	dense := &athena.QConv{
		Shape:      athena.FCShape(36, 2),
		Weights:    make([][][][]int64, 2),
		Bias:       []int64{0, 0},
		Act:        athena.ActNone,
		Multiplier: 0.25,
		ActBits:    4,
		IsDense:    true,
		MaxAcc:     120,
	}
	for o := 0; o < 2; o++ {
		dense.Weights[o] = make([][][]int64, 36)
		for i := 0; i < 36; i++ {
			w := int64(0)
			if (i/6 < 3) == (o == 0) { // top half vs bottom half
				w = 1
			}
			dense.Weights[o][i] = [][]int64{{w}}
		}
	}
	net := &athena.QNetwork{
		Name: "quickstart", InC: 1, InH: 6, InW: 6,
		WBits: 3, ABits: 4, InScale: 1,
		Blocks: []athena.QBlock{athena.QSeq{conv, dense}},
	}

	// A bright spot in the top half of the image.
	x := athena.NewIntTensor(1, 6, 6)
	x.Set(0, 1, 2, 7)
	x.Set(0, 1, 3, 7)

	fmt.Println("running the five-step loop under encryption...")
	logits, err := eng.Infer(net, x)
	if err != nil {
		log.Fatal(err)
	}
	want := net.ForwardInt(x).Data
	fmt.Printf("encrypted result : top-half=%d bottom-half=%d\n", logits[0], logits[1])
	fmt.Printf("plaintext result : top-half=%d bottom-half=%d\n", want[0], want[1])
	fmt.Printf("homomorphic ops  : %+v\n", eng.Stats)
}
