// mnistcnn: a real trained digit classifier running fully under FHE.
//
// The example trains a small CNN (conv 3×3 stride 2 + ReLU, dense
// readout) on the synthetic-digits dataset (the repository's MNIST
// stand-in, downsampled to 14×14), quantizes it to w4a5, and then runs
// test images through the complete encrypted pipeline at reduced but
// fully functional parameters (N=512, t=12289 — every Athena step runs,
// with zero security margin). The encrypted predictions are compared
// against the plaintext quantized model.
//
//	go run ./examples/mnistcnn            # 3 encrypted inferences
//	go run ./examples/mnistcnn -images 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"athena"
)

// downsample2 average-pools a 28×28 digit image to 14×14.
func downsample2(x *athena.Tensor) *athena.Tensor {
	out := &athena.Tensor{C: 1, H: 14, W: 14, Data: make([]float64, 14*14)}
	for y := 0; y < 14; y++ {
		for xx := 0; xx < 14; xx++ {
			s := x.At(0, 2*y, 2*xx) + x.At(0, 2*y, 2*xx+1) + x.At(0, 2*y+1, 2*xx) + x.At(0, 2*y+1, 2*xx+1)
			out.Set(0, y, xx, s/4)
		}
	}
	return out
}

func downsampleSet(ds *athena.Dataset) *athena.Dataset {
	out := &athena.Dataset{Name: ds.Name + "-14", Classes: ds.Classes}
	for _, s := range ds.Samples {
		out.Samples = append(out.Samples, athena.Sample{X: downsample2(s.X), Label: s.Label})
	}
	return out
}

func main() {
	images := flag.Int("images", 3, "number of test images to run under encryption")
	save := flag.String("save", "", "write the trained+quantized model as JSON (athena-infer -load runs it)")
	batched := flag.Bool("batch", false, "run all images in one batched inference (shared FBS packs)")
	flag.Parse()

	fmt.Println("== encrypted digit classification ==")
	fmt.Println("training a small CNN on synthetic digits (14x14)...")
	train := downsampleSet(athena.SynthDigits(900, 11))
	test := downsampleSet(athena.SynthDigits(100, 12))

	// conv(4 maps, 3x3, stride 2, pad 1) + ReLU -> dense(196 -> 10)
	net := digitNet()
	cfg := athena.DefaultTrainConfig()
	cfg.Epochs = 10
	athena.Train(net, train, cfg)
	fmt.Printf("float accuracy (100 test images): %.0f%%\n", accuracyFloat(net, test)*100)

	qc := athena.QuantConfig{WBits: 5, ABits: 6, CalibSamples: 32, AccMargin: 1.3, AccCap: 5500}
	qnet, err := athena.Quantize(net, train, qc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plaintext quantized accuracy (w5a6, 100 test images): %.0f%%\n",
		qnet.AccuracyInt(test)*100)
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := qnet.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("saved quantized model to", *save)
	}

	fmt.Println("generating FHE keys (N=512, t=12289)...")
	p := athena.Params{
		LogN: 9, QiBits: 55, QiNum: 10, T: 12289,
		LWEDim: 64, MidExp: 12, KSBase: 1 << 7, Seed: 3,
	}
	eng, err := athena.NewEngine(p)
	if err != nil {
		log.Fatal(err)
	}

	if *batched {
		xs := make([]*athena.IntTensor, *images)
		for i := range xs {
			xs[i] = qnet.QuantizeInput(test.Samples[i].X)
		}
		start := time.Now()
		all, err := eng.InferBatch(qnet, xs)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start).Seconds()
		correct := 0
		for i, logits := range all {
			pred := argmax(logits)
			if pred == test.Samples[i].Label {
				correct++
			}
			fmt.Printf("image %d: true=%d encrypted=%d\n", i, test.Samples[i].Label, pred)
		}
		fmt.Printf("batched: %d/%d correct, %.1fs total (%.1fs/image; FBS shared across the batch)\n",
			correct, *images, elapsed, elapsed/float64(*images))
		return
	}

	correct, agree := 0, 0
	for i := 0; i < *images; i++ {
		s := test.Samples[i]
		x := qnet.QuantizeInput(s.X)
		start := time.Now()
		logits, err := eng.Infer(qnet, x)
		if err != nil {
			log.Fatal(err)
		}
		pred := argmax(logits)
		plain := qnet.Predict(s.X)

		mark := " "
		if pred == s.Label {
			correct++
			mark = "*"
		}
		if pred == plain {
			agree++
		}
		fmt.Printf("image %d: true=%d encrypted=%d plaintext=%d (%.1fs) %s\n",
			i, s.Label, pred, plain, time.Since(start).Seconds(), mark)
	}
	fmt.Printf("encrypted top-1: %d/%d; agreement with plaintext: %d/%d\n",
		correct, *images, agree, *images)
}

func digitNet() *athena.Network { return athena.NewDigitNet14(5) }

func accuracyFloat(net *athena.Network, ds *athena.Dataset) float64 {
	correct := 0
	for _, s := range ds.Samples {
		if net.Predict(s.X) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.Samples))
}

func argmax(v []int64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
