// accelsim: price ResNet-20 inference on the Athena accelerator.
//
// The example lowers ResNet-20 (w7a7 and w6a7) onto the Athena framework
// at the paper's full-scale parameters (N=2^15, t=65537, n=2048),
// simulates it on the accelerator model of Section 4, and prints the
// latency, energy, and per-category breakdown alongside the published
// baseline accelerators.
//
//	go run ./examples/accelsim
package main

import (
	"fmt"
	"log"

	"athena"
	"athena/internal/arch"
)

func main() {
	fmt.Println("== Athena accelerator simulation: ResNet-20 ==")
	for _, mode := range [][2]int{{7, 7}, {6, 7}} {
		qn, err := athena.SpecModel("ResNet-20", mode[0], mode[1])
		if err != nil {
			log.Fatal(err)
		}
		tr, err := athena.CompileTrace(qn, athena.FullParams())
		if err != nil {
			log.Fatal(err)
		}
		r := athena.Simulate(tr, athena.AthenaHW())
		tot := tr.Totals()
		fmt.Printf("\nw%da%d: %.1f ms, %.2f J, EDP %.3f J*s\n",
			mode[0], mode[1], r.TimeMS, r.EnergyJ, r.EDP)
		fmt.Printf("  ops: PMult=%d CMult=%d SMult=%d HRot=%d extractions=%d\n",
			tot.PMult, tot.CMult, tot.SMult, tot.HRot, tot.SE)
		for cat, ms := range r.TimeByCat {
			fmt.Printf("  %-12s %7.2f ms (%4.1f%%)\n", cat, ms, ms/r.TimeMS*100)
		}
	}

	fmt.Println("\npublished CKKS baselines (ResNet-20):")
	for _, b := range arch.Baselines() {
		fmt.Printf("  %-12s %7.1f ms, %6.1f mm2\n", b.Name, b.ResNet20MS, b.AreaMM2)
	}
	fmt.Println("\n(paper: Athena-w7a7 65.5 ms — 1.5x over SHARP, 29x over BTS)")
}
