// lenet: encrypted max pooling — the LeNet-style pipeline in miniature.
//
// LeNet is the paper's benchmark that exercises max pooling, which under
// Athena runs as a PEGASUS-style max tree: max(a,b) = b + ReLU(a−b),
// with the ReLU evaluated by functional bootstrapping and the additions
// done directly on LWE ciphertexts. This example trains a small
// conv→ReLU→maxpool→dense classifier on a four-class shape task and runs
// it end to end under encryption at test-scale parameters.
//
//	go run ./examples/lenet
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"athena"
)

// shapeTask generates 6×6 images of four classes: horizontal bar,
// vertical bar, diagonal, and blob.
func shapeTask(n int, seed uint64) *athena.Dataset {
	rng := rand.New(rand.NewPCG(seed, 0xa4))
	ds := &athena.Dataset{Name: "shapes", Classes: 4}
	for i := 0; i < n; i++ {
		label := i % 4
		img := &athena.Tensor{C: 1, H: 6, W: 6, Data: make([]float64, 36)}
		pos := 1 + rng.IntN(4)
		switch label {
		case 0: // horizontal bar
			for x := 0; x < 6; x++ {
				img.Set(0, pos, x, 1)
			}
		case 1: // vertical bar
			for y := 0; y < 6; y++ {
				img.Set(0, y, pos, 1)
			}
		case 2: // diagonal
			for d := 0; d < 6; d++ {
				img.Set(0, d, d, 1)
			}
		case 3: // blob
			cx, cy := 1+rng.IntN(4), 1+rng.IntN(4)
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					img.Set(0, cy+dy, cx+dx, 1)
				}
			}
		}
		for j := range img.Data {
			img.Data[j] += rng.NormFloat64() * 0.1
			if img.Data[j] < 0 {
				img.Data[j] = 0
			}
		}
		ds.Samples = append(ds.Samples, athena.Sample{X: img, Label: label})
	}
	return ds
}

func main() {
	images := flag.Int("images", 4, "test images to run under encryption")
	flag.Parse()

	fmt.Println("== encrypted max pooling (mini-LeNet) ==")
	train := shapeTask(400, 1)
	test := shapeTask(64, 2)

	net := athena.NewShapeNet6(3)
	cfg := athena.DefaultTrainConfig()
	cfg.Epochs = 8
	athena.Train(net, train, cfg)

	qc := athena.QuantConfig{WBits: 3, ABits: 4, CalibSamples: 32, AccMargin: 1.25, AccCap: 110}
	qnet, err := athena.Quantize(net, train, qc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plaintext quantized accuracy (w3a4, 64 test images): %.0f%%\n",
		qnet.AccuracyInt(test)*100)

	fmt.Println("generating FHE keys (test-scale, N=128, t=257)...")
	eng, err := athena.NewEngine(athena.TestParams())
	if err != nil {
		log.Fatal(err)
	}

	correct, agree := 0, 0
	for i := 0; i < *images; i++ {
		s := test.Samples[i]
		start := time.Now()
		logits, err := eng.Infer(qnet, qnet.QuantizeInput(s.X))
		if err != nil {
			log.Fatal(err)
		}
		pred := argmax(logits)
		plain := qnet.Predict(s.X)
		if pred == s.Label {
			correct++
		}
		if pred == plain {
			agree++
		}
		fmt.Printf("image %d: true=%d encrypted=%d plaintext=%d (%.1fs)\n",
			i, s.Label, pred, plain, time.Since(start).Seconds())
	}
	fmt.Printf("encrypted top-1: %d/%d; agreement with plaintext: %d/%d\n",
		correct, *images, agree, *images)
	fmt.Printf("homomorphic ops (last image): %+v\n", eng.Stats)
}

func argmax(v []int64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
