// clientserver: the Athena serving stack over a real TCP socket.
//
// A serve.Server hosts the demo model; the client generates its own
// keys, uploads only the public evaluation material (the secret key
// never leaves the client), and streams several encrypted inference
// requests concurrently. The server's dynamic batcher coalesces them
// into shared functional-bootstrapping rounds — watch the mean batch
// size in the final stats line. The bytes on the wire are the
// repository's real formats: core.WriteEvalKeys for the session open,
// core.WriteEncryptedInput / WriteEncryptedLogits inside each frame.
//
//	go run ./examples/clientserver
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"athena/internal/core"
	"athena/internal/qnn"
	"athena/internal/serve"
	"athena/internal/serve/client"
)

func main() {
	params := core.TestParams()
	model := serve.DemoNet()

	fmt.Println("== Athena inference service over TCP ==")
	srv, err := serve.NewServer(serve.Config{
		Params:  params,
		Models:  map[string]*qnn.QNetwork{model.Name: model},
		MaxWait: 200 * time.Millisecond, // generous: let the burst coalesce
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	//lint:allow goleak the accept loop exits when Shutdown closes the listener at process end
	go srv.Serve(ln)
	fmt.Println("server listening on", ln.Addr())

	// The client generates its own keys and uploads only the public
	// evaluation bundle; the server never sees sk.
	fmt.Println("client: generating keys (BFV + LWE keyswitch + packing)...")
	eng, err := core.NewEngine(params)
	if err != nil {
		log.Fatal(err)
	}
	c, err := client.Dial(ln.Addr().String(), eng, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	id, err := c.OpenSession()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: session %s (content-addressed: same keys → same session)\n", id)

	// Fire a concurrent burst; the batcher folds it into few shared-FBS
	// evaluation rounds.
	const burst = 4
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := serve.DemoInput(uint64(9 + i))
			logits, err := c.Infer(model, x, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("request %d: decrypted logits %v  (plaintext %v)\n",
				i, logits, model.ForwardInt(x).Data)
		}(i)
	}
	wg.Wait()

	snap, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d requests in %d batches — mean batch size %.2f, %d FBS calls\n",
		snap.Requests.Completed, snap.Batches, snap.MeanBatchSize, snap.Ops.FBSCalls)
	srv.Shutdown()
}
