// clientserver: the Athena inference protocol over a real TCP socket.
//
// A server goroutine holds the evaluation side; the client encrypts its
// input, ships it over the wire, and decrypts the returned encrypted
// logits. The exchange uses the repository's binary wire formats — the
// same bytes a cross-machine deployment would move. (Both sides derive
// their key material from a shared seed here; in a real deployment the
// client generates keys and ships only the public/evaluation material,
// which has its own serialization — see cmd/athena-keygen.)
//
//	go run ./examples/clientserver
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"net"

	"athena"
)

func buildNet() *athena.QNetwork {
	rng := rand.New(rand.NewPCG(7, 8))
	mk := func(shape athena.ConvShape, act athena.Activation, mult float64) *athena.QConv {
		w := make([][][][]int64, shape.Cout)
		for co := range w {
			w[co] = make([][][]int64, shape.Cin)
			for ci := range w[co] {
				w[co][ci] = make([][]int64, shape.K)
				for i := range w[co][ci] {
					w[co][ci][i] = make([]int64, shape.K)
					for j := range w[co][ci][i] {
						w[co][ci][i][j] = int64(rng.IntN(3)) - 1
					}
				}
			}
		}
		return &athena.QConv{Shape: shape, Weights: w, Bias: make([]int64, shape.Cout),
			Act: act, Multiplier: mult, ActBits: 4, MaxAcc: 120, IsDense: shape.H == 1}
	}
	return &athena.QNetwork{
		Name: "wire-demo", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []athena.QBlock{athena.QSeq{
			mk(athena.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, athena.ActReLU, 1.0/8),
			mk(athena.FCShape(2*6*6, 4), athena.ActNone, 1.0/4),
		}},
	}
}

func main() {
	params := athena.TestParams()
	net1 := buildNet()

	fmt.Println("== Athena inference over TCP ==")
	fmt.Println("deriving key material (shared seed)...")
	serverEng, err := athena.NewEngine(params)
	if err != nil {
		log.Fatal(err)
	}
	clientEng, err := athena.NewEngine(params)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Println("server listening on", ln.Addr())

	done := make(chan error, 1)
	go func() { // the server: sees only ciphertexts
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		in, err := serverEng.ReadEncryptedInput(net1, conn)
		if err != nil {
			done <- err
			return
		}
		fmt.Printf("server: received %d input ciphertext(s), evaluating...\n", in.Size())
		out, err := serverEng.EvaluateEncrypted(net1, in)
		if err != nil {
			done <- err
			return
		}
		done <- serverEng.WriteEncryptedLogits(out, conn)
	}()

	// The client: encrypts, sends, receives, decrypts.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	rng := rand.New(rand.NewPCG(9, 10))
	x := athena.NewIntTensor(1, 6, 6)
	for i := range x.Data {
		x.Data[i] = int64(rng.IntN(8))
	}
	in, err := clientEng.EncryptInput(net1, x)
	if err != nil {
		log.Fatal(err)
	}
	if err := clientEng.WriteEncryptedInput(in, conn); err != nil {
		log.Fatal(err)
	}
	out, err := clientEng.ReadEncryptedLogits(net1, conn)
	if err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	logits, err := clientEng.DecryptLogits(out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: decrypted logits  %v\n", logits)
	fmt.Printf("plaintext reference       %v\n", net1.ForwardInt(x).Data)
}
