// Command athena-sim compiles one benchmark model onto the Athena
// framework at the paper's full-scale parameters and prices it on a
// chosen accelerator model.
//
//	athena-sim -model ResNet-20 -w 7 -a 7 -hw athena
//	athena-sim -model ResNet-56 -hw sharp     # Athena framework on SHARP
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"athena"
	"athena/internal/arch"
	"athena/internal/compiler"
)

func main() {
	model := flag.String("model", "ResNet-20", "benchmark model (MNIST, LeNet, ResNet-20, ResNet-56)")
	w := flag.Int("w", 7, "weight bits")
	a := flag.Int("a", 7, "activation bits")
	hw := flag.String("hw", "athena", "hardware model: athena, craterlake, sharp")
	dumpTrace := flag.Bool("trace", false, "dump the per-step operation trace")
	flag.Parse()

	qn, err := athena.SpecModel(*model, *w, *a)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := athena.CompileTrace(qn, athena.FullParams())
	if err != nil {
		log.Fatal(err)
	}

	var cfg athena.HWConfig
	switch strings.ToLower(*hw) {
	case "athena":
		cfg = athena.AthenaHW()
	case "craterlake":
		cfg, err = arch.ForeignAthenaConfig("CraterLake")
	case "sharp":
		cfg, err = arch.ForeignAthenaConfig("SHARP")
	default:
		log.Fatalf("unknown hardware %q", *hw)
	}
	if err != nil {
		log.Fatal(err)
	}

	r := athena.Simulate(tr, cfg)
	tot := tr.Totals()
	fmt.Printf("%s w%da%d on %s\n", *model, *w, *a, cfg.Name)
	fmt.Printf("  trace: %d steps, PMult=%d CMult=%d SMult=%d HRot=%d SE=%d\n",
		len(tr.Steps), tot.PMult, tot.CMult, tot.SMult, tot.HRot, tot.SE)
	fmt.Printf("  latency : %.2f ms (%.0f Mcycles)\n", r.TimeMS, r.Cycles/1e6)
	fmt.Printf("  energy  : %.3f J (avg power %.1f W)\n", r.EnergyJ, r.EnergyJ/(r.TimeMS/1e3))
	fmt.Printf("  EDP     : %.4f J*s    EDAP: %.2f J*s*mm2\n", r.EDP, r.EDAPmm2)
	fmt.Printf("  MM/MA cycle share: %.0f%%\n", r.MACCycleShare*100)

	if *dumpTrace {
		fmt.Println("  trace steps:")
		fmt.Printf("    %-22s %-8s %-10s %8s %8s %8s %8s %8s %8s\n",
			"layer", "kind", "category", "PMult", "CMult", "SMult", "HRot", "SE", "LUT")
		for _, st := range tr.Steps {
			fmt.Printf("    %-22s %-8s %-10s %8d %8d %8d %8d %8d %8d\n",
				st.Layer, st.Kind, st.Cat, st.Counts.PMult, st.Counts.CMult,
				st.Counts.SMult, st.Counts.HRot, st.Counts.SE, st.LUTSize)
		}
	}

	fmt.Println("  time by category:")
	cats := make([]compiler.Category, 0, len(r.TimeByCat))
	for c := range r.TimeByCat {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, c := range cats {
		ms := r.TimeByCat[c]
		fmt.Printf("    %-12s %8.2f ms (%4.1f%%)\n", c, ms, ms/r.TimeMS*100)
	}
}
