// Command athena-infer runs a small hand-built quantized CNN fully
// under encryption (the complete five-step Athena loop at reduced,
// functional parameters) and compares the decrypted logits against the
// bit-exact plaintext reference.
//
//	athena-infer            # conv→conv→FC chain
//	athena-infer -pool max  # adds an encrypted max-pooling layer
//
// With -connect, the inference instead runs against a remote
// athena-serve instance: the client keeps its secret key, uploads only
// the public evaluation material, and ships/receives ciphertexts over
// the frame protocol.
//
//	athena-infer -connect 127.0.0.1:7700
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"athena"
	"athena/internal/serve"
	serveclient "athena/internal/serve/client"
)

func tinyConv(shape athena.ConvShape, act athena.Activation, mult float64, seed uint64) *athena.QConv {
	rng := rand.New(rand.NewPCG(seed, 0x7c))
	w := make([][][][]int64, shape.Cout)
	for co := range w {
		w[co] = make([][][]int64, shape.Cin)
		for ci := range w[co] {
			w[co][ci] = make([][]int64, shape.K)
			for i := range w[co][ci] {
				w[co][ci][i] = make([]int64, shape.K)
				for j := range w[co][ci][i] {
					w[co][ci][i][j] = int64(rng.IntN(3)) - 1
				}
			}
		}
	}
	bias := make([]int64, shape.Cout)
	for i := range bias {
		bias[i] = int64(rng.IntN(5)) - 2
	}
	return &athena.QConv{
		Shape: shape, Weights: w, Bias: bias, Act: act,
		Multiplier: mult, ActBits: 4, MaxAcc: 120,
		IsDense: shape.H == 1 && shape.K == 1,
	}
}

// runRemote drives a remote athena-serve instance hosting the built-in
// wire-demo model: upload evaluation keys, stream n encrypted requests,
// decrypt and check each reply against the plaintext reference.
func runRemote(addr string, eng *athena.Engine, seed uint64, n int) {
	net := serve.DemoNet()
	c, err := serveclient.Dial(addr, eng, serveclient.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Println("uploading evaluation keys...")
	id, err := c.OpenSession()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s\n", id)
	for i := 0; i < n; i++ {
		x := serve.DemoInput(seed + uint64(i))
		got, err := c.Infer(net, x, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("request %d: encrypted logits %v  (plaintext %v)\n", i, got, net.ForwardInt(x).Data)
	}
	if snap, err := c.Stats(); err == nil {
		fmt.Printf("server: %d batches, mean batch size %.2f\n", snap.Batches, snap.MeanBatchSize)
	}
}

func main() {
	pool := flag.String("pool", "none", "pooling layer: none, max, avg")
	seed := flag.Uint64("seed", 42, "input seed")
	load := flag.String("load", "", "run a saved model (JSON from QNetwork.WriteJSON) instead of the built-in demo")
	preset := flag.String("preset", "test", "engine parameters: test (N=128,t=257) or medium (N=2048,t=65537); saved models generally need medium")
	connect := flag.String("connect", "", "run against a remote athena-serve at this address instead of locally")
	count := flag.Int("n", 1, "with -connect: number of requests to stream")
	flag.Parse()

	params := athena.TestParams()
	switch *preset {
	case "test":
	case "medium":
		params = athena.MediumParams()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	fmt.Println("generating keys (BFV + LWE keyswitch + packing + S2C)...")
	eng, err := athena.NewEngine(params)
	if err != nil {
		log.Fatal(err)
	}

	if *connect != "" {
		runRemote(*connect, eng, *seed, *count)
		return
	}

	var net *athena.QNetwork
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		net, err = athena.ReadModelJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded model %q (%dx%dx%d input)\n", net.Name, net.InC, net.InH, net.InW)
	}

	conv1 := tinyConv(athena.ConvShape{H: 6, W: 6, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, athena.ActReLU, 1.0/8, 1)
	var ops athena.QSeq
	switch *pool {
	case "none":
		ops = athena.QSeq{
			conv1,
			tinyConv(athena.ConvShape{H: 6, W: 6, Cin: 2, Cout: 2, K: 3, Stride: 1, Pad: 1}, athena.ActReLU, 1.0/8, 2),
			tinyConv(athena.FCShape(2*6*6, 4), athena.ActNone, 1.0/4, 3),
		}
	case "max":
		ops = athena.QSeq{conv1, &athena.QMaxPool{K: 2}, tinyConv(athena.FCShape(2*3*3, 4), athena.ActNone, 1.0/4, 3)}
	case "avg":
		ops = athena.QSeq{conv1, &athena.QAvgPool{K: 2}, tinyConv(athena.FCShape(2*3*3, 4), athena.ActNone, 1.0/4, 3)}
	default:
		log.Fatalf("unknown pool %q", *pool)
	}
	if net == nil {
		net = &athena.QNetwork{
			Name: "demo", InC: 1, InH: 6, InW: 6, WBits: 2, ABits: 4, InScale: 1,
			Blocks: []athena.QBlock{ops},
		}
	}

	rng := rand.New(rand.NewPCG(*seed, 1))
	x := athena.NewIntTensor(net.InC, net.InH, net.InW)
	for i := range x.Data {
		x.Data[i] = int64(rng.IntN(8))
	}

	fmt.Println("running encrypted inference (five-step Athena loop)...")
	got, err := eng.Infer(net, x)
	if err != nil {
		log.Fatal(err)
	}
	want := net.ForwardInt(x).Data
	fmt.Printf("encrypted logits : %v\n", got)
	fmt.Printf("plaintext logits : %v\n", want)
	fmt.Println("(small deviations are the paper's e_ms modulus-switching noise,")
	fmt.Println(" bounded by ±1-2 at the final remap — Section 3.3 / Fig. 4)")
	fmt.Printf("ops: %+v\n", eng.Stats)
}
