package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"athena/internal/lint"
)

// SARIF 2.1.0 output, the minimum GitHub code scanning accepts: one
// tool.driver with a rule per pass (id, short and full description),
// one run, one result per finding with its rule index and a physical
// location whose artifact URI is module-relative. Findings arrive
// already sorted and relativized by main, so the log is diffable run
// to run.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF emits findings as one SARIF run. The rule table covers the
// passes that ran (plus the synthetic allowlist rule malformed
// directives report under), so every result's ruleId resolves.
func writeSARIF(w io.Writer, passes []lint.Pass, findings []lint.Finding) error {
	var rules []sarifRule
	index := map[string]int{}
	addRule := func(id, short, full string) {
		if _, ok := index[id]; ok {
			return
		}
		index[id] = len(rules)
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: short},
			FullDescription:  sarifMessage{Text: full},
		})
	}
	addRule("allowlist", "malformed lint directive",
		"lint:allow and lint:holdok directives must name a known pass and carry a written justification")
	for _, p := range passes {
		addRule(p.Name(), p.Name()+" violation", p.Doc())
	}
	for _, f := range findings {
		// A finding from a pass outside the table (defensive: filtered
		// runs) still gets a resolvable rule.
		addRule(f.Pass, f.Pass+" violation", f.Pass)
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:    f.Pass,
			RuleIndex: index[f.Pass],
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "athena-lint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
