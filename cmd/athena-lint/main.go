// Command athena-lint runs the FHE-aware static-analysis suite over the
// module. The syntactic passes — modguard, cryptorand, parsafe,
// panicfree-wire, errdrop — are joined by the interprocedural dataflow
// passes: secrettaint (secret-key material reaching wire encoders or
// fmt/log), scratchalias (shared evaluator/encoder scratch captured by
// worker closures), moddomain (lazy-reduction domain mixing across
// internal/ring kernels), noalloc (//lint:noalloc hot paths proven
// heap-allocation-free through their static call trees), and the
// concurrency-soundness trio: lockorder (module-wide mutex order graph
// kept acyclic and re-acquisition-free), blockhold (no blocking
// operation while a mutex is held, escape hatch //lint:holdok), and
// goleak (every go statement needs a provable termination signal). See
// internal/lint for the pass catalog and the annotation grammar. It is
// the gate every PR runs:
//
//	go run ./cmd/athena-lint ./...
//	go run ./cmd/athena-lint -json ./... > findings.json
//	go run ./cmd/athena-lint -sarif ./... > findings.sarif
//	go run ./cmd/athena-lint -allows
//	go run ./cmd/athena-lint -list
//	go run ./cmd/athena-lint -passes modguard,parsafe ./internal/lwe/...
//
// Findings print sorted by (file, line, pass), so runs are diffable;
// -json emits the same ordering as a JSON array (always an array, [] on
// a clean run) and -sarif as a SARIF 2.1.0 log (one run, one result per
// finding, rule metadata from the pass catalog) for code-scanning
// upload. -allows audits every //lint:allow / declassify / domain /
// holdok / noalloc / prealloc annotation with its justification.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Findings
// are suppressed in source with `//lint:allow <pass> <reason>`; the
// reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"athena/internal/lint"
)

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

// jsonAnnotation is the -allows -json wire form of one annotation.
type jsonAnnotation struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Kind   string `json:"kind"`
	Pass   string `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list the available passes and exit")
	passNames := flag.String("passes", "", "comma-separated subset of passes to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings (or -allows annotations) as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log for code-scanning upload")
	allows := flag.Bool("allows", false, "audit mode: list every lint annotation with its justification and exit")
	flag.Parse()

	if *list {
		for _, p := range lint.AllPasses() {
			fmt.Printf("%-16s %s\n", p.Name(), p.Doc())
		}
		return
	}

	passes := lint.AllPasses()
	if *passNames != "" {
		passes = passes[:0]
		for _, name := range strings.Split(*passNames, ",") {
			p := lint.PassByName(strings.TrimSpace(name))
			if p == nil {
				fmt.Fprintf(os.Stderr, "athena-lint: unknown pass %q (try -list)\n", name)
				os.Exit(2)
			}
			passes = append(passes, p)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "athena-lint:", err)
		os.Exit(2)
	}
	prog, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "athena-lint:", err)
		os.Exit(2)
	}

	if *allows {
		auditAllows(prog, root, *jsonOut)
		return
	}

	findings := lint.Run(prog, passes)
	findings = filterByPatterns(findings, root, flag.Args())
	for i := range findings {
		if r, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil {
			findings[i].Pos.Filename = r
		}
	}
	if *sarifOut {
		if err := writeSARIF(os.Stdout, passes, findings); err != nil {
			fmt.Fprintln(os.Stderr, "athena-lint:", err)
			os.Exit(2)
		}
	} else if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Pass: f.Pass, Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "athena-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "athena-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// auditAllows prints the annotation inventory.
func auditAllows(prog *lint.Program, root string, jsonOut bool) {
	annots := lint.CollectAnnotations(prog)
	for i := range annots {
		if r, err := filepath.Rel(root, annots[i].Pos.Filename); err == nil {
			annots[i].Pos.Filename = r
		}
	}
	if jsonOut {
		out := make([]jsonAnnotation, 0, len(annots))
		for _, a := range annots {
			out = append(out, jsonAnnotation{
				File: a.Pos.Filename, Line: a.Pos.Line,
				Kind: a.Kind, Pass: a.Pass, Detail: a.Detail,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "athena-lint:", err)
			os.Exit(2)
		}
		return
	}
	for _, a := range annots {
		detail := a.Detail
		if detail == "" {
			detail = "-"
		}
		fmt.Printf("%s:%d: %-10s %-12s %s\n", a.Pos.Filename, a.Pos.Line, a.Kind, a.Pass, detail)
	}
	fmt.Fprintf(os.Stderr, "athena-lint: %d annotation(s)\n", len(annots))
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// filterByPatterns keeps findings under the directories named by
// go-style package patterns ("./...", "./internal/lwe", ...). With no
// patterns (or "./..."), everything is kept.
func filterByPatterns(findings []lint.Finding, root string, patterns []string) []lint.Finding {
	var prefixes []string
	for _, pat := range patterns {
		pat = strings.TrimSuffix(pat, "...")
		pat = strings.TrimSuffix(pat, "/")
		if pat == "." || pat == "./" || pat == "" {
			return findings
		}
		prefixes = append(prefixes, filepath.Join(root, filepath.FromSlash(pat)))
	}
	if len(prefixes) == 0 {
		return findings
	}
	var kept []lint.Finding
	for _, f := range findings {
		for _, p := range prefixes {
			if strings.HasPrefix(f.Pos.Filename, p) {
				kept = append(kept, f)
				break
			}
		}
	}
	return kept
}
