// Command athena-lint runs the FHE-aware static-analysis suite over the
// module. The syntactic passes — modguard, cryptorand, parsafe,
// panicfree-wire, errdrop — are joined by three interprocedural dataflow
// passes: secrettaint (secret-key material reaching wire encoders or
// fmt/log), scratchalias (shared evaluator/encoder scratch captured by
// worker closures), and moddomain (lazy-reduction domain mixing across
// internal/ring kernels). See internal/lint for the pass catalog and
// the allow/declassify/domain annotation grammar. It is the gate every
// PR runs:
//
//	go run ./cmd/athena-lint ./...
//	go run ./cmd/athena-lint -list
//	go run ./cmd/athena-lint -passes modguard,parsafe ./internal/lwe/...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Findings
// are suppressed in source with `//lint:allow <pass> <reason>`; the
// reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"athena/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the available passes and exit")
	passNames := flag.String("passes", "", "comma-separated subset of passes to run (default: all)")
	flag.Parse()

	if *list {
		for _, p := range lint.AllPasses() {
			fmt.Printf("%-16s %s\n", p.Name(), p.Doc())
		}
		return
	}

	passes := lint.AllPasses()
	if *passNames != "" {
		passes = passes[:0]
		for _, name := range strings.Split(*passNames, ",") {
			p := lint.PassByName(strings.TrimSpace(name))
			if p == nil {
				fmt.Fprintf(os.Stderr, "athena-lint: unknown pass %q (try -list)\n", name)
				os.Exit(2)
			}
			passes = append(passes, p)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "athena-lint:", err)
		os.Exit(2)
	}
	prog, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "athena-lint:", err)
		os.Exit(2)
	}

	findings := lint.Run(prog, passes)
	findings = filterByPatterns(findings, root, flag.Args())
	for _, f := range findings {
		rel := f
		if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			rel.Pos.Filename = r
		}
		fmt.Println(rel.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "athena-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// filterByPatterns keeps findings under the directories named by
// go-style package patterns ("./...", "./internal/lwe", ...). With no
// patterns (or "./..."), everything is kept.
func filterByPatterns(findings []lint.Finding, root string, patterns []string) []lint.Finding {
	var prefixes []string
	for _, pat := range patterns {
		pat = strings.TrimSuffix(pat, "...")
		pat = strings.TrimSuffix(pat, "/")
		if pat == "." || pat == "./" || pat == "" {
			return findings
		}
		prefixes = append(prefixes, filepath.Join(root, filepath.FromSlash(pat)))
	}
	if len(prefixes) == 0 {
		return findings
	}
	var kept []lint.Finding
	for _, f := range findings {
		for _, p := range prefixes {
			if strings.HasPrefix(f.Pos.Filename, p) {
				kept = append(kept, f)
				break
			}
		}
	}
	return kept
}
