// Command athena-bench regenerates every table and figure of the
// paper's evaluation section as text. The cheap experiments (parameter
// tables, simulator-driven performance studies) run by default; the
// accuracy studies (which train models) run with -accuracy, sized by
// -samples.
//
//	athena-bench                 # tables 1-4, 6-9, figs 1, 8-13 (perf)
//	athena-bench -accuracy       # adds table 5, fig 4, fig 12 (accuracy)
//	athena-bench -only table6    # a single experiment
//	athena-bench -json BENCH_kernels.json   # kernel microbenchmarks
//	athena-bench -compare BENCH_kernels.json -tol 0.25   # regression gate
//	athena-bench -scaling        # EncryptedInference p={1,2,4} speedup table
//	athena-bench -cluster-scaling  # ClusterThroughput nodes={1,2,3} req/s table
//
// -json runs the hot-path kernel microbenchmarks (NTT, PMult, CMult,
// keyswitch, pack, FBS, end-to-end inference at GOMAXPROCS 1/2/4/8) and
// writes them to the given path as JSON keyed by kernel name with
// fields ns_op, allocs_op and bytes_op (see README for the schema);
// nothing else runs. -compare re-runs the same microbenchmarks and
// exits non-zero if any kernel's ns/op regressed beyond -tol against
// the baseline file (the CI bench-regression gate).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"athena/internal/report"
)

func main() {
	accuracy := flag.Bool("accuracy", false, "run the model-training accuracy studies (slow)")
	samples := flag.Int("samples", 200, "test samples per model for the accuracy studies")
	skip56 := flag.Bool("skip-resnet56", false, "skip ResNet-56 in the accuracy studies")
	only := flag.String("only", "", "run a single experiment (e.g. table6, fig9)")
	jsonPath := flag.String("json", "", "run the kernel microbenchmarks and write them to this path as JSON")
	comparePath := flag.String("compare", "", "re-run the kernel microbenchmarks and compare against this baseline JSON; exit 1 on regression")
	tol := flag.Float64("tol", 0.25, "fractional ns/op growth tolerated by -compare before failing")
	scaling := flag.Bool("scaling", false, "run only the EncryptedInference/p={1,2,4} multicore rows and print a speedup table (the CI multicore-scaling job)")
	clusterScaling := flag.Bool("cluster-scaling", false, "run only the ClusterThroughput/nodes={1,2,3} rows and print a req/s table (the CI cluster-integration job)")
	flag.Parse()

	if *clusterScaling {
		table, err := report.ClusterScalingTable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster benchmarks: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(table)
		return
	}

	if *scaling {
		table, err := report.ScalingTable([]int{1, 2, 4})
		if err != nil {
			fmt.Fprintf(os.Stderr, "scaling benchmarks: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(table)
		return
	}

	if *comparePath != "" {
		base, err := report.ReadKernelBenchmarks(*comparePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "baseline: %v\n", err)
			os.Exit(1)
		}
		cur, err := report.KernelBenchmarks()
		if err != nil {
			fmt.Fprintf(os.Stderr, "kernel benchmarks: %v\n", err)
			os.Exit(1)
		}
		table, flagged := report.CompareKernelBenchmarks(base, cur, *tol)
		fmt.Print(table)
		if len(flagged) > 0 {
			fmt.Fprintf(os.Stderr, "kernels regressed beyond +%.0f%%: %s\n", *tol*100, strings.Join(flagged, ", "))
			os.Exit(1)
		}
		fmt.Println("no kernel regressions")
		return
	}

	if *jsonPath != "" {
		if err := report.WriteKernelBenchmarks(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "kernel benchmarks: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote kernel benchmarks to %s\n", *jsonPath)
		return
	}

	cfg := report.DefaultAccuracyConfig()
	cfg.TestSamples = *samples
	cfg.SkipResNet56 = *skip56

	experiments := []struct {
		name string
		slow bool
		fn   func() string
	}{
		{"table1", false, report.Table1},
		{"fig1", false, func() string { return report.Fig1(27) }},
		{"fig1model", true, func() string { return report.Fig1Model(cfg) }},
		{"table2", false, report.Table2},
		{"table3", false, report.Table3},
		{"table4", false, report.Table4},
		{"fig4", true, func() string { return report.Fig4(cfg) }},
		{"table5", true, func() string { return report.Table5(cfg) }},
		{"table6", false, report.Table6},
		{"table7", false, report.Table7},
		{"table8", false, report.Table8},
		{"table9", false, report.Table9},
		{"fig8", false, report.Fig8},
		{"fig9", false, report.Fig9},
		{"fig10", false, report.Fig10},
		{"fig11", false, report.Fig11},
		{"fig12perf", false, report.Fig12Perf},
		{"fig12acc", true, func() string { return report.Fig12Accuracy(cfg) }},
		{"fig13", false, report.Fig13},
		{"kernels", true, report.Kernels},
		{"ablations", false, report.Ablations},
		{"throughput", false, report.Throughput},
		{"security", false, report.Security},
	}

	ran := 0
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(e.name, *only) {
			continue
		}
		if e.slow && !*accuracy && *only == "" {
			continue
		}
		fmt.Printf("=== %s ===\n%s\n", e.name, e.fn())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment named %q\n", *only)
		os.Exit(1)
	}
}
