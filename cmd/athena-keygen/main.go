// Command athena-keygen generates and serializes a complete Athena key
// set (secret key, public key, relinearization and rotation keys) for a
// chosen parameter preset, reporting the on-disk sizes — the material a
// client/server deployment would exchange.
//
//	athena-keygen -preset test -out /tmp/keys
//	athena-keygen -preset full -dry-run     # sizes only, no key material
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"athena/internal/bfv"
	"athena/internal/core"
	"athena/internal/ring"
)

func main() {
	preset := flag.String("preset", "test", "parameter preset: test, medium, full")
	out := flag.String("out", "", "output directory (required unless -dry-run)")
	dryRun := flag.Bool("dry-run", false, "print sizes without writing keys")
	seed := flag.Uint64("seed", 1, "key generation seed")
	flag.Parse()

	var p core.Params
	switch *preset {
	case "test":
		p = core.TestParams()
	case "medium":
		p = core.MediumParams()
	case "full":
		p = core.FullParams()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	p.Seed = *seed

	bp, err := p.BFVParameters()
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := bfv.NewContext(bp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parameters: N=%d logQ=%d t=%d (LWE n=%d)\n",
		ctx.N, ctx.LogQ(), p.T, p.LWEDim)
	fmt.Printf("ciphertext size: %s\n", human(int64(ctx.CiphertextSizeBytes())))

	if *dryRun {
		limbs := int64(len(bp.Qi))
		swk := limbs * 2 * int64(ctx.N) * limbs * 8
		fmt.Printf("switching key size (each): %s\n", human(swk))
		fmt.Printf("typical key set (relin + ~48 rotations): %s\n", human(swk*49))
		return
	}
	if *out == "" {
		log.Fatal("-out is required (or use -dry-run)")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	fmt.Println("generating keys...")
	kg := bfv.NewKeyGenerator(ctx, p.Seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	els := bfv.RotationGaloisElements(ctx, []int{1, 2, 4, 8})
	els = append(els, ring.GaloisElementConjugate(ctx.N))
	ks := kg.GenKeySet(sk, els)

	write := func(name string, fn func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			log.Fatal(err)
		}
		st, _ := f.Stat()
		fmt.Printf("  %-16s %10s\n", name, human(st.Size()))
	}
	write("secret.key", func(f *os.File) error { return ctx.WriteSecretKey(sk, f) })
	write("public.key", func(f *os.File) error { return ctx.WritePublicKey(pk, f) })
	write("eval.keys", func(f *os.File) error { return ctx.WriteKeySet(ks, f) })
	fmt.Println("done; load them back with bfv.Context.Read{SecretKey,PublicKey,KeySet}")
}

func human(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}
