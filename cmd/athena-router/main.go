// Command athena-router is the stateless front tier of an athena
// cluster: it speaks the same ASV1 frame protocol as athena-serve, but
// instead of evaluating it places each session on its owning node by
// consistent hashing and relays frames, demultiplexing replies by
// request ID. It holds no key material, so any number of routers can
// front the same nodes.
//
//	athena-router -addr :7800 -control :7801 \
//	    -node a=127.0.0.1:7700,127.0.0.1:7701 \
//	    -node b=127.0.0.1:7710,127.0.0.1:7711
//
// Membership changes at runtime go through the JSON-RPC control plane
// on -control (POST /rpc: cluster.join, cluster.drain, cluster.leave,
// cluster.rebalance, cluster.status, cluster.metrics; GET /metrics is
// the aggregated cluster document). The athena-cluster command is the
// CLI for it.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"athena/internal/cluster"
)

// nodeFlags collects repeated -node name=addr[,admin] values.
type nodeFlags []cluster.Node

func (f *nodeFlags) String() string { return fmt.Sprintf("%d nodes", len(*f)) }

func (f *nodeFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf("want name=addr[,admin], got %q", v)
	}
	addr, admin, _ := strings.Cut(rest, ",")
	if addr == "" {
		return fmt.Errorf("want name=addr[,admin], got %q", v)
	}
	*f = append(*f, cluster.Node{Name: name, Addr: addr, Admin: admin})
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7800", "ASV1 listen address clients connect to")
	control := flag.String("control", "", "JSON-RPC control-plane HTTP listen address (empty = disabled)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per physical node on the hash ring")
	inflight := flag.Int("inflight", 0, "max in-flight requests per backend connection; beyond it clients get BUSY (0 = 256)")
	var nodes nodeFlags
	flag.Var(&nodes, "node", "seed member as name=addr[,admin] (repeatable)")
	flag.Parse()

	members := cluster.NewMembership(*vnodes)
	for _, n := range nodes {
		if err := members.Join(n.Name, n.Addr, n.Admin); err != nil {
			log.Fatal(err)
		}
	}

	router, err := cluster.NewRouter(cluster.RouterConfig{
		Members:               members,
		MaxInflightPerBackend: *inflight,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctl := cluster.NewControl(members, router)
	if len(nodes) > 0 {
		// Seed the nodes' ownership predicates so eviction ordering is
		// cluster-aware from the first request (best effort — nodes
		// without admin addresses just evict in plain LRU order).
		if pushed, errs := ctl.PushOwnership(); len(errs) > 0 {
			for _, e := range errs {
				log.Printf("ownership push: %v", e)
			}
		} else if pushed > 0 {
			fmt.Printf("pushed ownership to %d nodes\n", pushed)
		}
	}
	if *control != "" {
		go func() {
			fmt.Printf("control plane on http://%s/rpc (metrics: /metrics)\n", *control)
			if err := http.ListenAndServe(*control, ctl.Handler()); err != nil {
				log.Printf("control listener: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	//lint:allow goleak process-lifetime signal watcher; it dies with the process
	go func() {
		s := <-sig
		fmt.Printf("\n%v: shutting down router...\n", s)
		router.Shutdown()
	}()

	snapshot, epoch := members.Snapshot()
	fmt.Printf("athena-router listening on %s (%d nodes, epoch %d, %d vnodes)\n",
		*addr, len(snapshot), epoch, *vnodes)
	if err := router.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
	rs := router.Stats()
	fmt.Printf("router done: %d sessions routed, %d infers relayed, %d redirects\n",
		rs.SessionsRouted, rs.InfersRelayed, rs.Redirects)
}
