// Command athena-cluster is the operator CLI for the athena-router
// JSON-RPC control plane.
//
//	athena-cluster -control 127.0.0.1:7801 status
//	athena-cluster -control 127.0.0.1:7801 join b 127.0.0.1:7710 127.0.0.1:7711
//	athena-cluster -control 127.0.0.1:7801 drain a
//	athena-cluster -control 127.0.0.1:7801 leave a
//	athena-cluster -control 127.0.0.1:7801 rebalance
//	athena-cluster -control 127.0.0.1:7801 metrics
//
// Every subcommand is one JSON-RPC 2.0 call; the result (or error)
// prints as indented JSON, so the command composes with jq.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"
)

func main() {
	control := flag.String("control", "127.0.0.1:7801", "router control-plane address")
	timeout := flag.Duration("timeout", 30*time.Second, "one RPC round-trip bound")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: athena-cluster [-control host:port] <status|join|drain|leave|rebalance|metrics> [args]\n\n"+
				"  status                     membership table and epoch\n"+
				"  join <name> <addr> [admin] add or re-activate a node\n"+
				"  drain <name>               remove a node from placement (keeps it in the table)\n"+
				"  leave <name>               remove a node entirely\n"+
				"  rebalance                  re-push ownership to every node admin endpoint\n"+
				"  metrics                    aggregated cluster metrics document\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var method string
	var params any
	switch args[0] {
	case "status":
		method = "cluster.status"
	case "metrics":
		method = "cluster.metrics"
	case "rebalance":
		method = "cluster.rebalance"
	case "join":
		if len(args) < 3 || len(args) > 4 {
			log.Fatal("join needs <name> <addr> [admin]")
		}
		method = "cluster.join"
		p := map[string]string{"name": args[1], "addr": args[2]}
		if len(args) == 4 {
			p["admin"] = args[3]
		}
		params = p
	case "drain", "leave":
		if len(args) != 2 {
			log.Fatalf("%s needs <name>", args[0])
		}
		method = "cluster." + args[0]
		params = map[string]string{"name": args[1]}
	default:
		flag.Usage()
		os.Exit(2)
	}

	result, rpcErr, err := call(*control, *timeout, method, params)
	if err != nil {
		log.Fatal(err)
	}
	if rpcErr != nil {
		fmt.Fprintf(os.Stderr, "rpc error %d: %s\n", rpcErr.Code, rpcErr.Message)
		os.Exit(1)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, result, "", "  "); err != nil {
		fmt.Println(string(result))
		return
	}
	fmt.Println(buf.String())
}

type rpcErrorBody struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// call performs one JSON-RPC 2.0 round-trip against the control plane.
func call(control string, timeout time.Duration, method string, params any) (json.RawMessage, *rpcErrorBody, error) {
	req := map[string]any{"jsonrpc": "2.0", "id": 1, "method": method}
	if params != nil {
		req["params"] = params
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	cl := &http.Client{Timeout: timeout}
	resp, err := cl.Post("http://"+control+"/rpc", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, nil, err
	}
	var out struct {
		Result json.RawMessage `json:"result"`
		Error  *rpcErrorBody   `json:"error"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, nil, fmt.Errorf("undecodable control-plane reply (%s): %w", resp.Status, err)
	}
	return out.Result, out.Error, nil
}
