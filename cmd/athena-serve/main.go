// Command athena-serve runs the Athena inference server: clients
// upload their public evaluation keys once (sessions are
// content-addressed and survive reconnects), then stream encrypted
// inference requests; the server coalesces concurrent requests into
// shared functional-bootstrapping batches and answers with encrypted
// logits it cannot read.
//
//	athena-serve                         # demo model, test parameters
//	athena-serve -addr :7700 -admin :7701
//	athena-serve -preset medium -model model.json
//
// SIGINT/SIGTERM drains gracefully: queued and in-flight requests
// complete, new ones are rejected with DRAINING, then the process
// exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"athena/internal/cluster"
	"athena/internal/core"
	"athena/internal/qnn"
	"athena/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "inference listen address")
	admin := flag.String("admin", "", "admin HTTP listen address serving GET /metrics and POST /cluster (empty = disabled)")
	name := flag.String("name", "", "node name on the cluster ring (empty = standalone; required for ownership-aware eviction)")
	rate := flag.Float64("rate", 0, "per-client admission rate in requests/sec; exhausted clients get BUSY (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-client token-bucket burst (0 = 2x max-batch)")
	preset := flag.String("preset", "test", "engine parameters: test (N=128,t=257) or medium (N=2048,t=65537)")
	modelPath := flag.String("model", "", "serve a saved model (JSON from QNetwork.WriteJSON) instead of the built-in wire-demo")
	maxBatch := flag.Int("max-batch", 16, "flush a batch at this many requests")
	maxWait := flag.Duration("max-wait", 25*time.Millisecond, "flush a non-full batch this long after its first request")
	queue := flag.Int("queue", 64, "admission queue bound; beyond it requests get BUSY")
	executors := flag.Int("executors", 2, "concurrent batch evaluators")
	memCap := flag.Int64("mem-cap", 0, "session key-material cap in bytes (0 = 1 GiB)")
	dataDir := flag.String("data-dir", "", "durable session store directory: uploads survive restarts, evicted sessions reload from disk (empty = memory-only)")
	diskCap := flag.Int64("disk-cap", 0, "on-disk session store cap in bytes; coldest entries evicted under pressure (0 = unbounded)")
	flag.Parse()

	params := core.TestParams()
	switch *preset {
	case "test":
	case "medium":
		params = core.MediumParams()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}

	models := map[string]*qnn.QNetwork{}
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		q, err := qnn.ReadJSONNetwork(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		models[q.Name] = q
		fmt.Printf("serving model %q (%dx%dx%d input)\n", q.Name, q.InC, q.InH, q.InW)
	} else {
		demo := serve.DemoNet()
		models[demo.Name] = demo
		fmt.Printf("serving built-in model %q\n", demo.Name)
	}

	srv, err := serve.NewServer(serve.Config{
		Params:       params,
		Models:       models,
		MaxBatch:     *maxBatch,
		MaxWait:      *maxWait,
		MaxQueue:     *queue,
		Executors:    *executors,
		MemCapBytes:  *memCap,
		DataDir:      *dataDir,
		DiskCapBytes: *diskCap,
		RatePerSec:   *rate,
		Burst:        *burst,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		rec := srv.Recovery()
		fmt.Printf("session store %s: recovered %d sessions (%d segments, %d WAL records",
			*dataDir, rec.Entries, rec.Segments, rec.WALRecords)
		if rec.WALDroppedBytes > 0 {
			fmt.Printf(", dropped %d-byte torn tail", rec.WALDroppedBytes)
		}
		if rec.Quarantined > 0 {
			fmt.Printf(", quarantined %d corrupt segments", rec.Quarantined)
		}
		fmt.Println(")")
	}

	if *admin != "" {
		mux := http.NewServeMux()
		mux.Handle("/", srv.AdminHandler())
		// POST /cluster: the control plane pushes membership snapshots
		// here after join/drain/leave. The node derives its ownership
		// predicate from the ring and hands it to both eviction tiers.
		mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				w.Header().Set("Allow", http.MethodPost)
				http.Error(w, "membership push is POST", http.StatusMethodNotAllowed)
				return
			}
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			var doc cluster.MembershipDoc
			if err := json.Unmarshal(body, &doc); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			srv.SetSessionOwnership(doc.OwnedFunc(*name))
			fmt.Printf("cluster membership epoch %d applied (%d nodes)\n", doc.Epoch, len(doc.Nodes))
			w.WriteHeader(http.StatusNoContent)
		})
		go func() {
			fmt.Printf("admin /metrics on http://%s/metrics\n", *admin)
			if err := http.ListenAndServe(*admin, mux); err != nil {
				log.Printf("admin listener: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	//lint:allow goleak process-lifetime signal watcher; it dies with the process
	go func() {
		s := <-sig
		fmt.Printf("\n%v: draining (in-flight requests will complete)...\n", s)
		srv.Shutdown()
	}()

	fmt.Printf("athena-serve listening on %s (preset %s, max-batch %d, max-wait %v, queue %d)\n",
		*addr, *preset, *maxBatch, *maxWait, *queue)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
	snap := srv.Metrics()
	fmt.Printf("drained: %d requests completed in %d batches (mean batch %.2f), %d sessions opened\n",
		snap.Requests.Completed, snap.Batches, snap.MeanBatchSize, snap.Sessions.Opened)
}
