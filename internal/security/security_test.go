package security

import (
	"math"
	"testing"
)

func TestTableRowsExact(t *testing.T) {
	for _, r := range heStdTernary {
		got, err := MaxLogQ(r.n, 128)
		if err != nil {
			t.Fatal(err)
		}
		if got != r.max128 {
			t.Fatalf("n=%d: MaxLogQ=%v want %v", r.n, got, r.max128)
		}
	}
}

func TestInterpolationMonotone(t *testing.T) {
	prev := 0.0
	for n := 1024; n <= 32768; n += 512 {
		v, err := MaxLogQ(n, 128)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("MaxLogQ not monotone at n=%d: %v < %v", n, v, prev)
		}
		prev = v
	}
	// Higher security levels admit smaller moduli.
	a, _ := MaxLogQ(8192, 128)
	b, _ := MaxLogQ(8192, 192)
	c, _ := MaxLogQ(8192, 256)
	if !(a > b && b > c) {
		t.Fatalf("levels not ordered: %v %v %v", a, b, c)
	}
	if _, err := MaxLogQ(8192, 100); err == nil {
		t.Fatal("unsupported level accepted")
	}
	if _, err := MaxLogQ(-1, 128); err == nil {
		t.Fatal("negative dimension accepted")
	}
}

func TestLevelBehaviour(t *testing.T) {
	// Exactly at the standard line: 128 bits.
	if l := Level(32768, 881); math.Abs(l-128) > 1e-9 {
		t.Fatalf("level at the line: %v", l)
	}
	// Smaller modulus -> more security; larger -> less.
	if Level(32768, 440) <= Level(32768, 881) {
		t.Fatal("halving q must increase security")
	}
	if Level(32768, 1762) >= 128 {
		t.Fatal("doubling q must break 128")
	}
	if !math.IsInf(Level(1024, 0), 1) {
		t.Fatal("zero modulus should be infinitely secure")
	}
}

func TestAthenaParametersMeet128(t *testing.T) {
	// The paper's claim: N=2^15/logQ=720 and n=2048/q≈2^28 both exceed
	// 128-bit security.
	reports, all := Check(AthenaInstances())
	if !all {
		t.Fatalf("athena instances do not all clear 128 bits: %+v", reports)
	}
	for _, r := range reports {
		if r.EstimatedBits < 128 {
			t.Fatalf("%s: %.0f bits", r.Name, r.EstimatedBits)
		}
	}
	// RLWE at 720 bits against the 881-bit line: ~157 bits.
	if reports[0].EstimatedBits < 140 || reports[0].EstimatedBits > 180 {
		t.Fatalf("RLWE estimate %.0f outside the expected band", reports[0].EstimatedBits)
	}
}

func TestTestScaleParametersAreInsecure(t *testing.T) {
	// The reduced test parameters must NOT claim security — that is the
	// documented trade.
	reports, all := Check([]Instance{{Name: "test", N: 128, LogQ: 300}})
	if all || reports[0].Meets128 {
		t.Fatal("test-scale parameters should not clear 128 bits")
	}
}
