// Package security estimates the classical security level of the
// RLWE/LWE parameter sets used by the Athena framework, following the
// HomomorphicEncryption.org standard tables for ternary secrets. The
// paper claims its parameters (RLWE N=2^15 with log₂Q=720, LWE n=2048
// with q=t) provide more than 128 bits of security; this package
// reproduces that check and guards it with tests.
package security

import (
	"fmt"
	"math"
)

// stdRow is one row of the HE-standard table: for ring/LWE dimension N,
// the maximum log₂(q) admissible at each security level (classical
// attacks, ternary secret distribution).
type stdRow struct {
	n                      int
	max128, max192, max256 float64
}

// heStdTernary is the published table (HomomorphicEncryption.org
// Security Standard, Table 1, uniform ternary secrets, classical).
var heStdTernary = []stdRow{
	{1024, 27, 19, 14},
	{2048, 54, 37, 29},
	{4096, 109, 75, 58},
	{8192, 218, 152, 118},
	{16384, 438, 305, 237},
	{32768, 881, 611, 476},
}

// MaxLogQ returns the maximum modulus size (bits) at dimension n for the
// requested security level (128, 192, or 256), interpolating
// logarithmically between table rows and extrapolating proportionally
// below/above the table range.
func MaxLogQ(n int, level int) (float64, error) {
	var col func(stdRow) float64
	switch level {
	case 128:
		col = func(r stdRow) float64 { return r.max128 }
	case 192:
		col = func(r stdRow) float64 { return r.max192 }
	case 256:
		col = func(r stdRow) float64 { return r.max256 }
	default:
		return 0, fmt.Errorf("security: unsupported level %d", level)
	}
	if n <= 0 {
		return 0, fmt.Errorf("security: dimension %d", n)
	}
	rows := heStdTernary
	if n <= rows[0].n {
		return col(rows[0]) * float64(n) / float64(rows[0].n), nil
	}
	last := rows[len(rows)-1]
	if n >= last.n {
		return col(last) * float64(n) / float64(last.n), nil
	}
	for i := 0; i+1 < len(rows); i++ {
		if n >= rows[i].n && n <= rows[i+1].n {
			// The admissible logq is close to linear in n; interpolate
			// in n between the bracketing rows.
			f := float64(n-rows[i].n) / float64(rows[i+1].n-rows[i].n)
			return col(rows[i]) + f*(col(rows[i+1])-col(rows[i])), nil
		}
	}
	return 0, fmt.Errorf("security: unreachable dimension %d", n)
}

// Level estimates the security level (bits) of an instance with
// dimension n and modulus logQ bits, by scaling from the 128-bit line:
// attacks against (n, q) behave ~linearly in n/log(q) for these ranges,
// so level ≈ 128 · maxLogQ128(n)/logQ (capped for readability).
func Level(n int, logQ float64) float64 {
	if logQ <= 0 {
		return math.Inf(1)
	}
	max128, err := MaxLogQ(n, 128)
	if err != nil {
		return 0
	}
	lvl := 128 * max128 / logQ
	if lvl > 1024 {
		lvl = 1024
	}
	return lvl
}

// Instance describes one lattice assumption used by a parameter set.
type Instance struct {
	Name string
	N    int
	LogQ float64
}

// Report summarizes the estimate for an instance.
type Report struct {
	Instance
	EstimatedBits float64
	Meets128      bool
}

// Check estimates every instance and reports whether all clear 128 bits.
func Check(instances []Instance) ([]Report, bool) {
	out := make([]Report, len(instances))
	all := true
	for i, in := range instances {
		bits := Level(in.N, in.LogQ)
		out[i] = Report{Instance: in, EstimatedBits: bits, Meets128: bits >= 128}
		if bits < 128 {
			all = false
		}
	}
	return out, all
}

// AthenaInstances returns the lattice assumptions behind the paper's
// full-scale parameters: the BFV ring at (2^15, 720 bits) and the
// post-extraction LWE at (2048, q = t·2^12 ≈ 2^28 — the widest modulus
// any LWE sample is exposed under during conversion).
func AthenaInstances() []Instance {
	return []Instance{
		{Name: "RLWE (BFV ring)", N: 1 << 15, LogQ: 720},
		{Name: "LWE (post-extraction)", N: 2048, LogQ: 28},
	}
}
