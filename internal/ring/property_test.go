package ring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the ring's algebraic laws.

func quickCfg(seed uint64) *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(int64(seed))),
	}
}

func TestQuickModularFieldLaws(t *testing.T) {
	m := NewModulus(65537)
	reduce := func(a uint64) uint64 { return a % m.Q }

	commut := func(a, b uint64) bool {
		a, b = reduce(a), reduce(b)
		return m.Mul(a, b) == m.Mul(b, a) && m.Add(a, b) == m.Add(b, a)
	}
	if err := quick.Check(commut, quickCfg(1)); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c uint64) bool {
		a, b, c = reduce(a), reduce(b), reduce(c)
		return m.Mul(m.Mul(a, b), c) == m.Mul(a, m.Mul(b, c)) &&
			m.Add(m.Add(a, b), c) == m.Add(a, m.Add(b, c))
	}
	if err := quick.Check(assoc, quickCfg(2)); err != nil {
		t.Error(err)
	}
	distrib := func(a, b, c uint64) bool {
		a, b, c = reduce(a), reduce(b), reduce(c)
		return m.Mul(a, m.Add(b, c)) == m.Add(m.Mul(a, b), m.Mul(a, c))
	}
	if err := quick.Check(distrib, quickCfg(3)); err != nil {
		t.Error(err)
	}
	inverse := func(a uint64) bool {
		a = reduce(a)
		if a == 0 {
			return true
		}
		return m.Mul(a, m.Inv(a)) == 1
	}
	if err := quick.Check(inverse, quickCfg(4)); err != nil {
		t.Error(err)
	}
	negation := func(a uint64) bool {
		a = reduce(a)
		return m.Add(a, m.Neg(a)) == 0 && m.Sub(0, a) == m.Neg(a)
	}
	if err := quick.Check(negation, quickCfg(5)); err != nil {
		t.Error(err)
	}
}

func TestQuickCenteredRoundTrip(t *testing.T) {
	for _, q := range []uint64{7, 257, 65537} {
		m := NewModulus(q)
		f := func(a uint64) bool {
			a %= q
			c := m.Centered(a)
			// Centered value must reduce back to a and lie in [-q/2, q/2).
			return m.ReduceInt64(c) == a && c >= -int64(q)/2-1 && c <= int64(q)/2
		}
		if err := quick.Check(f, quickCfg(q)); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
	}
}

func TestQuickNTTIsRingIsomorphism(t *testing.T) {
	r := testRing(t, 5, 1)
	// For random polynomial pairs: NTT(a·b) == NTT(a) ⊙ NTT(b).
	f := func(seedA, seedB uint64) bool {
		a := randomPoly(r, seedA)
		b := randomPoly(r, seedB)
		prod := r.NewPoly()
		r.MulPolyNaive(a, b, prod)
		r.NTT(prod)

		r.NTT(a)
		r.NTT(b)
		pw := r.NewPoly()
		r.MulCoeffs(a, b, pw)
		return prod.Equal(pw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickAutomorphismPreservesAddition(t *testing.T) {
	r := testRing(t, 6, 2)
	f := func(seedA, seedB uint64, k int8) bool {
		a := randomPoly(r, seedA)
		b := randomPoly(r, seedB)
		g := GaloisElementForRotation(r.N, int(k))
		sum := r.NewPoly()
		r.Add(a, b, sum)
		sa, sb, ss := r.NewPoly(), r.NewPoly(), r.NewPoly()
		r.Automorphism(a, g, sa)
		r.Automorphism(b, g, sb)
		r.Automorphism(sum, g, ss)
		sum2 := r.NewPoly()
		r.Add(sa, sb, sum2)
		return ss.Equal(sum2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
