package ring

import "math/bits"

// Vector kernels over one RNS limb. These are the flat inner loops behind
// Ring's polynomial operations: each takes equal-length slices, reslices
// them to a common length up front so the compiler can drop the per-element
// bounds checks, and keeps the whole element computation inline (no
// per-element method-call boundary). All canonical-output kernels are
// bit-identical to mapping the corresponding scalar Modulus method over
// the slices; the lazy variants document their extended output ranges.

// AddVec sets out[i] = a[i] + b[i] mod q for canonical inputs.
//
//lint:noalloc
//lint:domain a:<q b:<q -> out:<q
func (m Modulus) AddVec(a, b, out []uint64) {
	q := m.Q
	b = b[:len(a)]
	out = out[:len(a)]
	for i := range a {
		c := a[i] + b[i]
		if c >= q {
			c -= q
		}
		out[i] = c
	}
}

// AddLazyVec sets out[i] = a[i] + b[i] with no reduction. The caller owns
// the headroom invariant (see Modulus.AddLazy).
//
//lint:noalloc
//lint:domain a:<2q b:<2q -> out:<4q
func (m Modulus) AddLazyVec(a, b, out []uint64) {
	b = b[:len(a)]
	out = out[:len(a)]
	for i := range a {
		out[i] = a[i] + b[i]
	}
}

// SubVec sets out[i] = a[i] - b[i] mod q for canonical inputs.
//
//lint:noalloc
//lint:domain a:<q b:<q -> out:<q
func (m Modulus) SubVec(a, b, out []uint64) {
	q := m.Q
	b = b[:len(a)]
	out = out[:len(a)]
	for i := range a {
		c := a[i] + q - b[i]
		if c >= q {
			c -= q
		}
		out[i] = c
	}
}

// NegVec sets out[i] = -a[i] mod q for canonical inputs.
//
//lint:noalloc
//lint:domain a:<q -> out:<q
func (m Modulus) NegVec(a, out []uint64) {
	q := m.Q
	out = out[:len(a)]
	for i := range a {
		c := q - a[i]
		if a[i] == 0 {
			c = 0
		}
		out[i] = c
	}
}

// Reduce2QVec folds values in [0, 2q) back to canonical [0, q).
//
//lint:noalloc
//lint:domain a:<2q -> out:<q
func (m Modulus) Reduce2QVec(a, out []uint64) {
	q := m.Q
	out = out[:len(a)]
	for i := range a {
		c := a[i]
		if c >= q {
			c -= q
		}
		out[i] = c
	}
}

// ReduceVec maps arbitrary uint64 values into [0, q) via Barrett
// reduction, the vector form of Modulus.Reduce.
//
//lint:noalloc
//lint:domain a:any -> out:<q
func (m Modulus) ReduceVec(a, out []uint64) {
	q := m.Q
	brcHi, brcLo := m.brcHi, m.brcLo
	out = out[:len(a)]
	for i := range a {
		lo := a[i]
		ph1, _ := bits.Mul64(lo, brcLo)
		ph2hi, ph2lo := bits.Mul64(lo, brcHi)
		_, c2 := bits.Add64(ph2lo, ph1, 0)
		s := ph2hi + c2
		r := lo - s*q
		for r >= q {
			r -= q
		}
		out[i] = r
	}
}

// MulVec sets out[i] = a[i]·b[i] mod q via Barrett reduction, for
// canonical inputs.
//
//lint:noalloc
//lint:domain a:<q b:<q -> out:<q
func (m Modulus) MulVec(a, b, out []uint64) {
	q := m.Q
	brcHi, brcLo := m.brcHi, m.brcLo
	b = b[:len(a)]
	out = out[:len(a)]
	for i := range a {
		hi, lo := bits.Mul64(a[i], b[i])
		ph1, _ := bits.Mul64(lo, brcLo)
		ph2hi, ph2lo := bits.Mul64(lo, brcHi)
		ph3hi, ph3lo := bits.Mul64(hi, brcLo)
		ph4 := hi * brcHi
		mid, c1 := bits.Add64(ph2lo, ph3lo, 0)
		_, c2 := bits.Add64(mid, ph1, 0)
		s := ph4 + ph2hi + ph3hi + c1 + c2
		r := lo - s*q
		for r >= q {
			r -= q
		}
		out[i] = r
	}
}

// MulAddVec sets out[i] = out[i] + a[i]·b[i] mod q, for canonical inputs.
//
//lint:noalloc
//lint:domain a:<q b:<q out:<q -> out:<q
func (m Modulus) MulAddVec(a, b, out []uint64) {
	q := m.Q
	brcHi, brcLo := m.brcHi, m.brcLo
	b = b[:len(a)]
	out = out[:len(a)]
	for i := range a {
		hi, lo := bits.Mul64(a[i], b[i])
		ph1, _ := bits.Mul64(lo, brcLo)
		ph2hi, ph2lo := bits.Mul64(lo, brcHi)
		ph3hi, ph3lo := bits.Mul64(hi, brcLo)
		ph4 := hi * brcHi
		mid, c1 := bits.Add64(ph2lo, ph3lo, 0)
		_, c2 := bits.Add64(mid, ph1, 0)
		s := ph4 + ph2hi + ph3hi + c1 + c2
		r := lo - s*q
		for r >= q {
			r -= q
		}
		c := out[i] + r
		if c >= q {
			c -= q
		}
		out[i] = c
	}
}

// MulShoupVec sets out[i] = a[i]·w mod q given the Shoup companion of the
// fixed operand w < q; a may hold any uint64 values (see Modulus.MulShoup).
//
//lint:noalloc
//lint:domain a:any w:<q -> out:<q
func (m Modulus) MulShoupVec(a []uint64, w, wShoup uint64, out []uint64) {
	q := m.Q
	out = out[:len(a)]
	for i := range a {
		hi, _ := bits.Mul64(a[i], wShoup)
		r := a[i]*w - hi*q
		if r >= q {
			r -= q
		}
		out[i] = r
	}
}

// MulShoupLazyVec is MulShoupVec without the final conditional
// subtraction: outputs lie in [0, 2q).
//
//lint:noalloc
//lint:domain a:any w:<q -> out:<2q
func (m Modulus) MulShoupLazyVec(a []uint64, w, wShoup uint64, out []uint64) {
	q := m.Q
	out = out[:len(a)]
	for i := range a {
		hi, _ := bits.Mul64(a[i], wShoup)
		out[i] = a[i]*w - hi*q
	}
}

// MulShoupAddVec sets out[i] = out[i] + a[i]·w mod q for canonical out and
// w < q: the fused kernel behind scalar multiply-accumulate.
//
//lint:noalloc
//lint:domain a:any w:<q out:<q -> out:<q
func (m Modulus) MulShoupAddVec(a []uint64, w, wShoup uint64, out []uint64) {
	q := m.Q
	out = out[:len(a)]
	for i := range a {
		hi, _ := bits.Mul64(a[i], wShoup)
		r := a[i]*w - hi*q
		if r >= q {
			r -= q
		}
		c := out[i] + r
		if c >= q {
			c -= q
		}
		out[i] = c
	}
}

// ShoupPrecompVec fills out[i] with ShoupPrecomp(a[i]) for canonical a:
// the companion vector of a fixed elementwise operand (key material,
// compiled plaintext multipliers). Precomputation path, not hot.
//
//lint:noalloc
func (m Modulus) ShoupPrecompVec(a, out []uint64) {
	out = out[:len(a)]
	for i := range a {
		s, _ := bits.Div64(a[i], 0, m.Q)
		out[i] = s
	}
}

// MulShoupElemVec sets out[i] = a[i]·b[i] mod q where b is a fixed
// canonical operand with its precomputed companion vector bShoup
// (ShoupPrecompVec); a may hold any uint64 values. This replaces the
// Barrett MulVec on hot paths whose second operand never changes
// (switching keys, compiled diagonal multipliers).
//
//lint:noalloc
//lint:domain a:any b:<q -> out:<q
func (m Modulus) MulShoupElemVec(a, b, bShoup, out []uint64) {
	q := m.Q
	b = b[:len(a)]
	bShoup = bShoup[:len(a)]
	out = out[:len(a)]
	for i := range a {
		hi, _ := bits.Mul64(a[i], bShoup[i])
		r := a[i]*b[i] - hi*q
		if r >= q {
			r -= q
		}
		out[i] = r
	}
}

// MulShoupElemAddVec sets out[i] = out[i] + a[i]·b[i] mod q for a fixed
// canonical b with companion vector bShoup and canonical out.
//
//lint:noalloc
//lint:domain a:any b:<q out:<q -> out:<q
func (m Modulus) MulShoupElemAddVec(a, b, bShoup, out []uint64) {
	q := m.Q
	b = b[:len(a)]
	bShoup = bShoup[:len(a)]
	out = out[:len(a)]
	for i := range a {
		hi, _ := bits.Mul64(a[i], bShoup[i])
		r := a[i]*b[i] - hi*q
		if r >= q {
			r -= q
		}
		c := out[i] + r
		if c >= q {
			c -= q
		}
		out[i] = c
	}
}

// MulShoupSumVec sets out[j] = Σ_k rows[k][j]·w[k] mod q, accumulating
// every term of the sum in one pass over the output: the partial sum
// rides in the lazy range [0, 2q) (each Shoup-lazy product lands in
// [0, 2q), the running sum stays < 4q < 2^63 for q ≤ 2^61 and is folded
// branchlessly), and only the final store reduces to canonical [0, q).
// w[k] < q with companions wShoup[k]; rows may hold any uint64 values.
//
//lint:noalloc
//lint:domain w:<q -> out:<q
func (m Modulus) MulShoupSumVec(rows [][]uint64, w, wShoup []uint64, out []uint64) {
	q := m.Q
	twoQ := q << 1
	w = w[:len(rows)]
	wShoup = wShoup[:len(rows)]
	for j := range out {
		var acc uint64
		for k := range rows {
			a := rows[k][j]
			hi, _ := bits.Mul64(a, wShoup[k])
			acc += a*w[k] - hi*q // in [0, 4q)
			c := acc - twoQ
			acc = c + (twoQ & uint64(int64(c)>>63)) // fold to [0, 2q)
		}
		c := acc - q
		out[j] = c + (q & uint64(int64(c)>>63))
	}
}

// MulShoupSumAddVec sets out[j] = out[j] + Σ_k rows[k][j]·w[k] mod q for
// canonical out, with the same lazy accumulation as MulShoupSumVec.
//
//lint:noalloc
//lint:domain w:<q out:<q -> out:<q
func (m Modulus) MulShoupSumAddVec(rows [][]uint64, w, wShoup []uint64, out []uint64) {
	q := m.Q
	twoQ := q << 1
	w = w[:len(rows)]
	wShoup = wShoup[:len(rows)]
	for j := range out {
		acc := out[j] // canonical, so already < 2q
		for k := range rows {
			a := rows[k][j]
			hi, _ := bits.Mul64(a, wShoup[k])
			acc += a*w[k] - hi*q // in [0, 4q)
			c := acc - twoQ
			acc = c + (twoQ & uint64(int64(c)>>63)) // fold to [0, 2q)
		}
		c := acc - q
		out[j] = c + (q & uint64(int64(c)>>63))
	}
}
