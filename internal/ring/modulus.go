// Package ring implements arithmetic over the negacyclic polynomial rings
// Z_q[X]/(X^N+1) that underpin the Athena reproduction: 64-bit modular
// arithmetic with Barrett and Shoup reductions, NTT-friendly prime
// generation, forward/inverse negacyclic number-theoretic transforms,
// Galois automorphisms, and the samplers (uniform, ternary, discrete
// Gaussian) required by RLWE-style cryptosystems.
//
// A Ring holds a chain of word-sized prime moduli; a Poly stores one
// residue polynomial per prime (the RNS representation). All hot-path
// arithmetic stays in uint64; exact cross-limb work (CRT reconstruction,
// scale-and-round) lives in package rns.
package ring

import (
	"fmt"
	"math/bits"
)

// MaxModulusBits bounds the size of a single RNS prime. Keeping primes at
// or below 61 bits leaves headroom so that lazy sums of a few products
// never overflow the 128-bit intermediate in Barrett reduction.
const MaxModulusBits = 61

// Modulus bundles a prime q with the precomputed constants used by
// Barrett and Shoup modular reduction.
type Modulus struct {
	Q uint64 // the prime modulus

	// brc is floor(2^128 / Q) split into high and low 64-bit words,
	// used for 128-bit Barrett reduction.
	brcHi, brcLo uint64
}

// TryNewModulus prepares the reduction constants for q, rejecting q
// outside [2, 2^MaxModulusBits); primality is the caller's concern. This
// is the entry point for moduli read from untrusted wire bytes, where an
// out-of-range value must surface as an error, not a panic.
func TryNewModulus(q uint64) (Modulus, error) {
	if q < 2 {
		return Modulus{}, fmt.Errorf("ring: modulus %d too small", q)
	}
	if bits.Len64(q) > MaxModulusBits {
		return Modulus{}, fmt.Errorf("ring: modulus %d exceeds %d bits", q, MaxModulusBits)
	}
	// Compute floor(2^128 / q) via long division of 2^128 by q using
	// 64-bit limbs: first divide 2^64 by q, then bring down 64 zero bits.
	hi, r := bits.Div64(1, 0, q) // hi = floor(2^64/q), r = 2^64 mod q
	lo, _ := bits.Div64(r, 0, q) // lo = floor(r·2^64 / q)
	return Modulus{Q: q, brcHi: hi, brcLo: lo}, nil
}

// NewModulus is TryNewModulus for trusted, statically chosen parameters:
// it panics on an out-of-range q. Wire-decoding paths must use
// TryNewModulus instead (enforced by athena-lint's panicfree-wire pass).
func NewModulus(q uint64) Modulus {
	m, err := TryNewModulus(q)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// Add returns a+b mod q for a, b in [0, q).
//
//lint:noalloc
//lint:domain a:<q b:<q -> ret:<q
func (m Modulus) Add(a, b uint64) uint64 {
	c := a + b
	if c >= m.Q {
		c -= m.Q
	}
	return c
}

// Sub returns a-b mod q for a, b in [0, q).
//
//lint:noalloc
//lint:domain a:<q b:<q -> ret:<q
func (m Modulus) Sub(a, b uint64) uint64 {
	c := a - b
	if a < b {
		c += m.Q
	}
	return c
}

// Neg returns -a mod q for a in [0, q).
//
//lint:noalloc
//lint:domain a:<q -> ret:<q
func (m Modulus) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m.Q - a
}

// Reduce maps an arbitrary uint64 into [0, q).
//
//lint:noalloc
//lint:domain a:any -> ret:<q
func (m Modulus) Reduce(a uint64) uint64 {
	return m.ReduceWide(0, a)
}

// ReduceWide reduces the 128-bit value hi·2^64+lo into [0, q) using
// Barrett reduction. It requires hi < q (always true for products of two
// reduced operands, since (q-1)^2 < q·2^64).
//
//lint:noalloc
//lint:domain hi:any lo:any -> ret:<q
func (m Modulus) ReduceWide(hi, lo uint64) uint64 {
	// s ≈ floor(x / q) computed as floor(x · floor(2^128/q) / 2^128).
	// x·brc is a 256-bit product; only bits [128,192) survive, and they
	// fit one word because x < q·2^64 implies s < 2^64.
	ph1, _ := bits.Mul64(lo, m.brcLo)       // contributes only carries
	ph2hi, ph2lo := bits.Mul64(lo, m.brcHi) // shifted by 64
	ph3hi, ph3lo := bits.Mul64(hi, m.brcLo) // shifted by 64
	ph4 := hi * m.brcHi                     // shifted by 128 (low word only)
	mid, c1 := bits.Add64(ph2lo, ph3lo, 0)  // bits [64,128)
	_, c2 := bits.Add64(mid, ph1, 0)        // carry out of [64,128)
	s := ph4 + ph2hi + ph3hi + c1 + c2      // bits [128,192): the quotient estimate
	r := lo - s*m.Q                         // remainder candidate, exact mod 2^64
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// Mul returns a·b mod q for a, b in [0, q).
//
//lint:noalloc
//lint:domain a:<q b:<q -> ret:<q
func (m Modulus) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.ReduceWide(hi, lo)
}

// ShoupPrecomp returns floor(w·2^64 / q), the Shoup companion word that
// accelerates repeated multiplications by the fixed operand w.
//
//lint:noalloc
func (m Modulus) ShoupPrecomp(w uint64) uint64 {
	s, _ := bits.Div64(w, 0, m.Q)
	return s
}

// MulShoup returns a·w mod q given wShoup = ShoupPrecomp(w). Requires
// w < q; a may be ANY uint64 (in particular a lazy representative in
// [0, 4q)): with s = floor(w·2^64/q) the quotient estimate
// floor(a·s/2^64) is off by at most one from floor(a·w/q), so the
// remainder candidate lands in [0, 2q) and one conditional subtraction
// yields the exact canonical residue.
//
//lint:noalloc
//lint:domain a:any w:<q -> ret:<q
func (m Modulus) MulShoup(a, w, wShoup uint64) uint64 {
	hi, _ := bits.Mul64(a, wShoup)
	r := a*w - hi*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// MulShoupLazy is MulShoup without the final conditional subtraction:
// the result is congruent to a·w mod q but lies in [0, 2q). Requires
// w < q; a may be any uint64. This is the butterfly workhorse of the
// lazy-reduction NTT (Longa–Naehrig): skipping the data-dependent
// subtraction removes the branch from the innermost loop.
//
//lint:noalloc
//lint:domain a:any w:<q -> ret:<2q
func (m Modulus) MulShoupLazy(a, w, wShoup uint64) uint64 {
	hi, _ := bits.Mul64(a, wShoup)
	return a*w - hi*m.Q
}

// AddLazy returns a+b with no reduction. The caller is responsible for
// the headroom invariant: with q ≤ 2^MaxModulusBits, sums of two lazy
// values in [0, 2q) stay below 2^63 and never wrap.
//
//lint:noalloc
//lint:domain a:<2q b:<2q -> ret:<4q
func (m Modulus) AddLazy(a, b uint64) uint64 { return a + b }

// SubLazy2Q returns a−b+2q, the lazy subtraction for operands in
// [0, 2q): the +2q offset keeps the result non-negative (in [0, 4q))
// without a data-dependent branch.
//
//lint:noalloc
//lint:domain a:<2q b:<2q -> ret:<4q
func (m Modulus) SubLazy2Q(a, b uint64) uint64 { return a + 2*m.Q - b }

// Reduce2Q folds a value in [0, 2q) into [0, q), branchlessly.
//
//lint:noalloc
//lint:domain a:<2q -> ret:<q
func (m Modulus) Reduce2Q(a uint64) uint64 {
	c := a - m.Q
	return c + (m.Q & uint64(int64(c)>>63))
}

// Reduce4Q folds a value in [0, 4q) into [0, q).
//
//lint:noalloc
//lint:domain a:<4q -> ret:<q
func (m Modulus) Reduce4Q(a uint64) uint64 {
	c := a - 2*m.Q
	a = c + ((2 * m.Q) & uint64(int64(c)>>63))
	c = a - m.Q
	return c + (m.Q & uint64(int64(c)>>63))
}

// Pow returns a^e mod q by square-and-multiply.
//
//lint:noalloc
func (m Modulus) Pow(a, e uint64) uint64 {
	r := uint64(1)
	a %= m.Q
	for e > 0 {
		if e&1 == 1 {
			r = m.Mul(r, a)
		}
		a = m.Mul(a, a)
		e >>= 1
	}
	return r
}

// Inv returns the multiplicative inverse of a mod q. It requires q prime
// and a nonzero mod q, and panics otherwise.
//
//lint:noalloc
func (m Modulus) Inv(a uint64) uint64 {
	a %= m.Q
	if a == 0 {
		panic("ring: inverse of zero")
	}
	// Fermat: a^(q-2) mod q.
	inv := m.Pow(a, m.Q-2)
	if m.Mul(inv, a) != 1 {
		panic(fmt.Sprintf("ring: %d has no inverse mod %d (modulus not prime?)", a, m.Q))
	}
	return inv
}

// ReduceInt64 maps a signed value into [0, q), interpreting negative
// values as their residue.
//
//lint:noalloc
func (m Modulus) ReduceInt64(a int64) uint64 {
	r := a % int64(m.Q)
	if r < 0 {
		r += int64(m.Q)
	}
	return uint64(r)
}

// Centered maps a residue in [0, q) to its centered representative in
// [-q/2, q/2).
//
//lint:noalloc
func (m Modulus) Centered(a uint64) int64 {
	if a >= m.Q/2+m.Q%2 {
		return int64(a) - int64(m.Q)
	}
	return int64(a)
}
