package ring

import (
	"runtime"
	"testing"
)

// TestLimbParallelismDeterministic sweeps GOMAXPROCS over the limb-
// parallel entry points (NTT, INTT, pointwise multiply/accumulate) on a
// ring large enough to clear the par.ForWork grain floor, and checks the
// results are bit-identical to the single-CPU run. Limbs are independent,
// so any divergence means a worker wrote outside its index.
func TestLimbParallelismDeterministic(t *testing.T) {
	r := testRing(t, 12, 6) // 6 limbs × 4096·12 ops clears the fan-out floor
	a := randomPoly(r, 11)
	b := randomPoly(r, 22)

	type result struct{ ntt, intt, mul, mulAdd Poly }
	run := func() result {
		var res result
		res.ntt = a.Clone()
		r.NTT(res.ntt)
		res.intt = a.Clone()
		r.INTT(res.intt)
		res.mul = r.NewPoly()
		r.MulCoeffs(a, b, res.mul)
		res.mulAdd = b.Clone()
		r.MulCoeffsAndAdd(a, b, res.mulAdd)
		return res
	}

	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	want := run()
	for _, procs := range []int{2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		got := run()
		if !got.ntt.Equal(want.ntt) {
			t.Fatalf("GOMAXPROCS=%d: NTT diverged from serial run", procs)
		}
		if !got.intt.Equal(want.intt) {
			t.Fatalf("GOMAXPROCS=%d: INTT diverged from serial run", procs)
		}
		if !got.mul.Equal(want.mul) {
			t.Fatalf("GOMAXPROCS=%d: MulCoeffs diverged from serial run", procs)
		}
		if !got.mulAdd.Equal(want.mulAdd) {
			t.Fatalf("GOMAXPROCS=%d: MulCoeffsAndAdd diverged from serial run", procs)
		}
	}
}
