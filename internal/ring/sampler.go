package ring

import (
	"crypto/rand"
	"encoding/binary"
	"math"

	// The ChaCha8 generator below is the module's single approved
	// deterministic keystream: cryptographically strong, reproducible
	// under a fixed seed for tests and experiments. Every other crypto
	// package must draw through Keystream/Sampler instead of importing
	// math/rand itself (enforced by athena-lint's cryptorand pass).
	mrand "math/rand/v2" //lint:allow cryptorand seeded ChaCha8 keystream is the approved CSPRNG core all samplers route through
)

// DefaultSigma is the standard deviation of the RLWE error distribution,
// matching the value conventional in the FHE literature (and the noise
// analysis in the Athena paper, Section 3.3).
const DefaultSigma = 3.2

// keystreamTweak separates the ring sampler's key schedule from other
// consumers deriving streams from the same seed.
const keystreamTweak = 0x9e3779b97f4a7c15

// Keystream is a deterministic ChaCha8 random stream. It is the
// randomness core shared by every sampler in the module: given the same
// (seed, tweak) it replays the same stream, which keeps tests and
// experiments reproducible while remaining cryptographically strong.
type Keystream struct {
	src *mrand.Rand
}

// NewKeystream creates a stream keyed by seed with the ring tweak.
func NewKeystream(seed uint64) *Keystream {
	return NewKeystreamTweaked(seed, keystreamTweak)
}

// NewKeystreamTweaked creates a stream keyed by seed XOR-folded with a
// caller-chosen tweak, so independent subsystems can derive disjoint
// streams from one master seed.
func NewKeystreamTweaked(seed, tweak uint64) *Keystream {
	var key [32]byte
	binary.LittleEndian.PutUint64(key[:8], seed)
	binary.LittleEndian.PutUint64(key[8:16], seed^tweak)
	return &Keystream{src: mrand.New(mrand.NewChaCha8(key))}
}

// Uint64N returns a uniform value in [0, n).
func (k *Keystream) Uint64N(n uint64) uint64 { return k.src.Uint64N(n) }

// IntN returns a uniform int in [0, n).
func (k *Keystream) IntN(n int) int { return k.src.IntN(n) }

// NormFloat64 returns a standard normal draw.
func (k *Keystream) NormFloat64() float64 { return k.src.NormFloat64() }

// Gaussian returns a rounded Gaussian draw with standard deviation
// sigma, truncated by rejection just past 6 sigma.
func (k *Keystream) Gaussian(sigma float64) int64 {
	for {
		x := k.src.NormFloat64() * sigma
		if math.Abs(x) <= 6*sigma+1 {
			return int64(math.Round(x))
		}
	}
}

// RandomSeed returns a fresh seed from the operating system's CSPRNG,
// for production key generation where reproducibility is not wanted.
func RandomSeed() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Sampler draws ring elements from the distributions RLWE needs. It is
// deterministic given its seed (ChaCha8 keystream), which keeps tests and
// experiments reproducible.
type Sampler struct {
	r *Ring
	*Keystream
}

// NewSampler creates a sampler over ring r seeded by seed.
func NewSampler(r *Ring, seed uint64) *Sampler {
	return &Sampler{r: r, Keystream: NewKeystream(seed)}
}

// Uniform fills p with independent uniform residues in each limb.
func (s *Sampler) Uniform(p Poly) {
	for i := range p.Coeffs {
		q := s.r.Moduli[i].Q
		pi := p.Coeffs[i]
		for j := range pi {
			pi[j] = s.src.Uint64N(q)
		}
	}
}

// TernaryDense samples a uniformly random ternary polynomial with
// coefficients in {-1, 0, 1} (each with probability 1/3) and writes the
// same underlying integer vector into every limb.
func (s *Sampler) TernaryDense(p Poly) []int64 {
	n := len(p.Coeffs[0])
	v := make([]int64, n)
	for j := range v {
		v[j] = int64(s.src.IntN(3)) - 1
	}
	s.setSigned(v, p)
	return v
}

// Gaussian samples a discrete Gaussian polynomial (rounded continuous
// Gaussian with standard deviation sigma, truncated at 6 sigma) shared
// across limbs. It returns the underlying signed vector for noise
// accounting in tests.
func (s *Sampler) Gaussian(sigma float64, p Poly) []int64 {
	n := len(p.Coeffs[0])
	bound := math.Ceil(6 * sigma)
	v := make([]int64, n)
	for j := range v {
		for {
			x := s.src.NormFloat64() * sigma
			if math.Abs(x) <= bound {
				v[j] = int64(math.Round(x))
				break
			}
		}
	}
	s.setSigned(v, p)
	return v
}

// UniformInt returns a uniform value in [0, bound).
func (s *Sampler) UniformInt(bound uint64) uint64 { return s.src.Uint64N(bound) }

func (s *Sampler) setSigned(v []int64, p Poly) {
	for i := range p.Coeffs {
		m := s.r.Moduli[i]
		pi := p.Coeffs[i]
		for j, x := range v {
			pi[j] = m.ReduceInt64(x)
		}
	}
}
