package ring

import (
	"encoding/binary"
	"math"
	"math/rand/v2"
)

// DefaultSigma is the standard deviation of the RLWE error distribution,
// matching the value conventional in the FHE literature (and the noise
// analysis in the Athena paper, Section 3.3).
const DefaultSigma = 3.2

// Sampler draws ring elements from the distributions RLWE needs. It is
// deterministic given its seed (ChaCha8 keystream), which keeps tests and
// experiments reproducible.
type Sampler struct {
	r   *Ring
	src *rand.Rand
}

// NewSampler creates a sampler over ring r seeded by seed.
func NewSampler(r *Ring, seed uint64) *Sampler {
	var key [32]byte
	binary.LittleEndian.PutUint64(key[:8], seed)
	binary.LittleEndian.PutUint64(key[8:16], seed^0x9e3779b97f4a7c15)
	return &Sampler{r: r, src: rand.New(rand.NewChaCha8(key))}
}

// Uniform fills p with independent uniform residues in each limb.
func (s *Sampler) Uniform(p Poly) {
	for i := range p.Coeffs {
		q := s.r.Moduli[i].Q
		pi := p.Coeffs[i]
		for j := range pi {
			pi[j] = s.src.Uint64N(q)
		}
	}
}

// TernaryDense samples a uniformly random ternary polynomial with
// coefficients in {-1, 0, 1} (each with probability 1/3) and writes the
// same underlying integer vector into every limb.
func (s *Sampler) TernaryDense(p Poly) []int64 {
	n := len(p.Coeffs[0])
	v := make([]int64, n)
	for j := range v {
		v[j] = int64(s.src.IntN(3)) - 1
	}
	s.setSigned(v, p)
	return v
}

// Gaussian samples a discrete Gaussian polynomial (rounded continuous
// Gaussian with standard deviation sigma, truncated at 6 sigma) shared
// across limbs. It returns the underlying signed vector for noise
// accounting in tests.
func (s *Sampler) Gaussian(sigma float64, p Poly) []int64 {
	n := len(p.Coeffs[0])
	bound := math.Ceil(6 * sigma)
	v := make([]int64, n)
	for j := range v {
		for {
			x := s.src.NormFloat64() * sigma
			if math.Abs(x) <= bound {
				v[j] = int64(math.Round(x))
				break
			}
		}
	}
	s.setSigned(v, p)
	return v
}

// UniformInt returns a uniform value in [0, bound).
func (s *Sampler) UniformInt(bound uint64) uint64 { return s.src.Uint64N(bound) }

// NormFloat64 exposes a standard normal draw from the sampler's stream.
func (s *Sampler) NormFloat64() float64 { return s.src.NormFloat64() }

func (s *Sampler) setSigned(v []int64, p Poly) {
	for i := range p.Coeffs {
		m := s.r.Moduli[i]
		pi := p.Coeffs[i]
		for j, x := range v {
			pi[j] = m.ReduceInt64(x)
		}
	}
}
