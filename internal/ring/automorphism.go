package ring

import "fmt"

// An automorphism of Z_q[X]/(X^N+1) is the map X -> X^g for odd g in
// [1, 2N). Coefficient i moves to position i·g mod 2N, negated when the
// product lands in [N, 2N). The maps X -> X^5 and X -> X^-1 generate the
// full Galois group and realize slot rotations and conjugation in the
// batched plaintext space.

// AutomorphismIndex precomputes, for galois element g, the destination
// index and sign for each source coefficient: dst[i] is where coefficient
// i lands and neg[i] reports whether it is negated.
func AutomorphismIndex(n int, g uint64) (dst []int, neg []bool) {
	if g%2 == 0 {
		panic(fmt.Sprintf("ring: even galois element %d", g))
	}
	twoN := uint64(2 * n)
	g %= twoN
	dst = make([]int, n)
	neg = make([]bool, n)
	// n is a power of two, so mod 2N is a mask.
	mask := twoN - 1
	for i := 0; i < n; i++ {
		k := (uint64(i) * g) & mask
		if k < uint64(n) {
			dst[i] = int(k)
		} else {
			dst[i] = int(k - uint64(n))
			neg[i] = true
		}
	}
	return dst, neg
}

// Automorphism applies X -> X^g to a (coefficient domain) and writes the
// result to out. a and out must not alias.
func (r *Ring) Automorphism(a Poly, g uint64, out Poly) {
	dst, neg := AutomorphismIndex(r.N, g)
	r.AutomorphismWithIndex(a, dst, neg, out)
}

// AutomorphismWithIndex applies a precomputed automorphism index table.
// a and out must not alias.
//
//lint:noalloc
func (r *Ring) AutomorphismWithIndex(a Poly, dst []int, neg []bool, out Poly) {
	for i := range a.Coeffs {
		m := r.Moduli[i]
		ai, oi := a.Coeffs[i], out.Coeffs[i]
		for j := range ai {
			v := ai[j]
			if neg[j] {
				v = m.Neg(v)
			}
			oi[dst[j]] = v
		}
	}
}

// GaloisGen is the generator used for slot rotations (matches the
// standard BFV/CKKS convention): X -> X^(5^k) rotates the two slot rows
// cyclically by k.
const GaloisGen uint64 = 5

// GaloisElementForRotation returns 5^k mod 2N for a row rotation by k
// (k may be negative).
//
//lint:noalloc
func GaloisElementForRotation(n int, k int) uint64 {
	twoN := uint64(2 * n)
	order := n / 2 // order of 5 in Z_2N^* for power-of-two N
	kk := ((k % order) + order) % order
	g := uint64(1)
	base := GaloisGen % twoN
	for i := 0; i < kk; i++ {
		g = g * base % twoN
	}
	return g
}

// GaloisElementConjugate returns the element implementing X -> X^-1
// (slot-row swap / conjugation).
//
//lint:noalloc
func GaloisElementConjugate(n int) uint64 { return uint64(2*n) - 1 }

// GaloisCompose returns a·b mod 2N, the composition of two Galois
// elements over a ring of power-of-two degree n. Operands must already
// be reduced mod 2N; the product then fits uint64 with room to spare
// (2N ≤ 2^18), so the masked multiply is exact.
//
//lint:noalloc
func GaloisCompose(n int, a, b uint64) uint64 {
	return (a * b) & (uint64(2*n) - 1)
}
