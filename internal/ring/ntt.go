package ring

import "math/bits"

// NTTTable holds the precomputed twiddle factors for the negacyclic NTT
// of length N over one prime modulus. Twiddles are stored in bit-reversed
// order with Shoup companions, following the standard
// Cooley-Tukey / Gentleman-Sande formulation (Longa-Naehrig).
//
// Both transforms use lazy reduction internally: coefficients ride in
// the extended ranges [0, 2q) (inverse) and [0, 4q) (forward) between
// butterfly layers, and are folded back to canonical [0, q) residues
// only at the very end. With q ≤ 2^61 (MaxModulusBits) the lazy sums
// stay below 2^63 and never wrap. The exported entry points accept and
// produce canonical residues and are bit-identical to a fully-reduced
// reference transform (see the property tests).
//
// The default Forward/Inverse pair runs radix-8 middle stages (three
// butterfly layers fused per pass, mirroring the paper's radix-8 NTT
// datapath); ForwardRadix4/InverseRadix4 keep the previous radix-4
// schedule as a tracked reference. All schedules share the same stage
// helpers and butterfly contracts and produce bit-identical output.
type NTTTable struct {
	M    Modulus
	N    int
	LogN int

	psiFwd      []uint64 // ψ^br(i): forward twiddles, bit-reversed
	psiFwdShoup []uint64
	psiInv      []uint64 // ψ^-br(i): inverse twiddles, bit-reversed
	psiInvShoup []uint64
	nInv        uint64 // N^-1 mod q
	nInvShoup   uint64
	psiInvN     uint64 // ψ^-br(1)·N^-1: last-layer twiddle fused with 1/N
	psiInvNS    uint64
}

// NewNTTTable builds the tables for a negacyclic NTT of length N = 2^logN
// over the prime q, which must satisfy q ≡ 1 (mod 2N).
func NewNTTTable(q uint64, logN int) *NTTTable {
	n := 1 << uint(logN)
	m := NewModulus(q)
	psi := RootOfUnity(q, uint64(2*n))
	psiInv := m.Inv(psi)

	t := &NTTTable{
		M:           m,
		N:           n,
		LogN:        logN,
		psiFwd:      make([]uint64, n),
		psiFwdShoup: make([]uint64, n),
		psiInv:      make([]uint64, n),
		psiInvShoup: make([]uint64, n),
	}
	fw, iv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		j := bitrev(uint64(i), logN)
		t.psiFwd[j] = fw
		t.psiInv[j] = iv
		fw = m.Mul(fw, psi)
		iv = m.Mul(iv, psiInv)
	}
	for i := 0; i < n; i++ {
		t.psiFwdShoup[i] = m.ShoupPrecomp(t.psiFwd[i])
		t.psiInvShoup[i] = m.ShoupPrecomp(t.psiInv[i])
	}
	t.nInv = m.Inv(uint64(n))
	t.nInvShoup = m.ShoupPrecomp(t.nInv)
	// The final inverse layer (length = N/2) uses the single twiddle
	// ψ^-br(1); fusing the 1/N scaling into it (and into the u+v output)
	// saves the separate scaling pass over the whole vector.
	t.psiInvN = m.Mul(t.psiInv[1], t.nInv)
	t.psiInvNS = m.ShoupPrecomp(t.psiInvN)
	return t
}

func bitrev(x uint64, bitLen int) uint64 {
	return bits.Reverse64(x) >> uint(64-bitLen)
}

// Forward transforms p (coefficient order) in place into the NTT domain.
// The output ordering is the standard bit-reversed evaluation order; it is
// consistent with Inverse and with pointwise multiplication.
//
// Lazy-reduction invariant (Longa–Naehrig / Harvey): every coefficient
// is < 4q at the start of a layer. Each butterfly folds its u-side into
// [0, 2q), takes v = x·w in [0, 2q) from the subtraction-free Shoup
// multiply, and emits u+v and u−v+2q, both < 4q. The final stage folds
// [0, 4q) to canonical [0, q).
//
// The length = 2 and length = 1 layers run as the dedicated final stage,
// leaving logN-2 middle layers; radix-8 passes consume them three at a
// time, so one radix-2 layer (count ≡ 1 mod 3) or one radix-4 pass
// (count ≡ 2 mod 3) is peeled first to align the count.
//
//lint:noalloc
//lint:domain p:<q -> p:<q
func (t *NTTTable) Forward(p []uint64) {
	n := t.N
	p = p[:n]
	if n == 2 {
		t.fwdN2(p)
		return
	}
	length := n >> 1
	switch (t.LogN - 2) % 3 {
	case 1:
		if length >= 8 {
			// Four or more middle layers: two radix-4 passes beat a
			// radix-8 pass plus a lone radix-2 layer.
			t.fwdRadix4Pass(p, length)
			length >>= 2
			t.fwdRadix4Pass(p, length)
			length >>= 2
		} else if length >= 4 { // logN == 3: single middle layer
			t.fwdRadix2Peel(p)
			length >>= 1
		}
	case 2:
		if length >= 8 {
			t.fwdRadix4Pass(p, length)
			length >>= 2
		}
	}
	for ; length >= 16; length >>= 3 {
		t.fwdRadix8Pass(p, length)
	}
	t.fwdFinalStage(p)
}

// ForwardRadix4 is the previous radix-4 transform schedule (two fused
// layers per middle pass), kept as the tracked reference the benchmark
// suite compares the radix-8 schedule against. Output is bit-identical
// to Forward.
//
//lint:noalloc
//lint:domain p:<q -> p:<q
func (t *NTTTable) ForwardRadix4(p []uint64) {
	n := t.N
	p = p[:n]
	if n == 2 {
		t.fwdN2(p)
		return
	}
	length := n >> 1
	// Radix-4 passes consume middle layers two at a time; peel a single
	// radix-2 layer first when the count is odd.
	if t.LogN&1 == 1 && length >= 4 {
		t.fwdRadix2Peel(p)
		length >>= 1
	}
	for ; length >= 8; length >>= 2 {
		t.fwdRadix4Pass(p, length)
	}
	t.fwdFinalStage(p)
}

// fwdRadix2Peel runs the first forward butterfly layer (half-length N/2)
// standalone. It only ever runs on the canonical transform input, so the
// u-side needs no fold: u+v < 3q and u+2q−v < 3q.
//
//lint:noalloc
//lint:domain p:<q -> p:<4q
func (t *NTTTable) fwdRadix2Peel(p []uint64) {
	q := t.M.Q
	twoQ := q << 1
	length := t.N >> 1
	w := t.psiFwd[1]
	ws := t.psiFwdShoup[1]
	a := p[:length]
	b := p[length:]
	b = b[:len(a)] // bounds-check-elimination hint
	for i := 0; i+1 < len(a); i += 2 {
		u0, u1 := a[i], a[i+1]
		x0, x1 := b[i], b[i+1]
		hi0, _ := bits.Mul64(x0, ws)
		hi1, _ := bits.Mul64(x1, ws)
		v0 := x0*w - hi0*q // in [0, 2q)
		v1 := x1*w - hi1*q
		a[i], a[i+1] = u0+v0, u1+v1
		b[i], b[i+1] = u0+twoQ-v0, u1+twoQ-v1
	}
}

// fwdRadix4Pass runs two fused forward butterfly layers (half-lengths
// length and length/2) over the whole vector. Each group of four strided
// coefficients is loaded once, runs the outer butterfly (twiddle w1) and
// both inner butterflies (the child twiddles 2k and 2k+1), and is stored
// once — halving memory traffic and loop overhead per butterfly versus
// layer-at-a-time radix-2.
//
//lint:noalloc
//lint:domain p:<4q -> p:<4q
func (t *NTTTable) fwdRadix4Pass(p []uint64, length int) {
	q := t.M.Q
	twoQ := q << 1
	n := t.N
	psiF, psiFS := t.psiFwd, t.psiFwdShoup
	ql := length >> 1
	kBase := n / (length << 1)
	for b, start := 0, 0; start < n; b, start = b+1, start+(length<<1) {
		k1 := kBase + b
		w1 := psiF[k1]
		w1s := psiFS[k1]
		w2 := psiF[2*k1]
		w2s := psiFS[2*k1]
		w3 := psiF[2*k1+1]
		w3s := psiFS[2*k1+1]
		p0 := p[start : start+ql]
		p1 := p[start+ql : start+2*ql]
		p2 := p[start+2*ql : start+3*ql]
		p3 := p[start+3*ql : start+4*ql]
		p1 = p1[:len(p0)] // bounds-check-elimination hints
		p2 = p2[:len(p0)]
		p3 = p3[:len(p0)]
		for i := 0; i+1 < len(p0); i += 2 {
			x0, x1, x2, x3 := p0[i], p1[i], p2[i], p3[i]
			X0, X1, X2, X3 := p0[i+1], p1[i+1], p2[i+1], p3[i+1]
			if x0 >= twoQ {
				x0 -= twoQ
			}
			if x1 >= twoQ {
				x1 -= twoQ
			}
			if X0 >= twoQ {
				X0 -= twoQ
			}
			if X1 >= twoQ {
				X1 -= twoQ
			}
			hi2, _ := bits.Mul64(x2, w1s)
			hi3, _ := bits.Mul64(x3, w1s)
			Hi2, _ := bits.Mul64(X2, w1s)
			Hi3, _ := bits.Mul64(X3, w1s)
			v2 := x2*w1 - hi2*q // in [0, 2q)
			v3 := x3*w1 - hi3*q
			V2 := X2*w1 - Hi2*q
			V3 := X3*w1 - Hi3*q
			y0 := x0 + v2 // in [0, 4q)
			y2 := x0 + twoQ - v2
			y1 := x1 + v3
			y3 := x1 + twoQ - v3
			Y0 := X0 + V2
			Y2 := X0 + twoQ - V2
			Y1 := X1 + V3
			Y3 := X1 + twoQ - V3
			if y0 >= twoQ {
				y0 -= twoQ
			}
			if y2 >= twoQ {
				y2 -= twoQ
			}
			if Y0 >= twoQ {
				Y0 -= twoQ
			}
			if Y2 >= twoQ {
				Y2 -= twoQ
			}
			hi1, _ := bits.Mul64(y1, w2s)
			hi3b, _ := bits.Mul64(y3, w3s)
			Hi1, _ := bits.Mul64(Y1, w2s)
			Hi3b, _ := bits.Mul64(Y3, w3s)
			u1 := y1*w2 - hi1*q
			u3 := y3*w3 - hi3b*q
			U1 := Y1*w2 - Hi1*q
			U3 := Y3*w3 - Hi3b*q
			p0[i], p0[i+1] = y0+u1, Y0+U1
			p1[i], p1[i+1] = y0+twoQ-u1, Y0+twoQ-U1
			p2[i], p2[i+1] = y2+u3, Y2+U3
			p3[i], p3[i+1] = y2+twoQ-u3, Y2+twoQ-U3
		}
	}
}

// fwdRadix8Pass runs three fused forward butterfly layers (half-lengths
// length, length/2 and length/4) over the whole vector: each group of
// eight strided coefficients stays in registers across all three layers,
// cutting memory traffic per butterfly to 2/3 of the radix-4 schedule.
// Requires length ≥ 16 so every sub-block holds at least one element.
//
//lint:noalloc
//lint:domain p:<4q -> p:<4q
func (t *NTTTable) fwdRadix8Pass(p []uint64, length int) {
	q := t.M.Q
	twoQ := q << 1
	n := t.N
	psiF, psiFS := t.psiFwd, t.psiFwdShoup
	ql := length >> 2
	kBase := n / (length << 1)
	for b, start := 0, 0; start < n; b, start = b+1, start+(length<<1) {
		k1 := kBase + b
		w1 := psiF[k1] // half-length = length
		w1s := psiFS[k1]
		w2 := psiF[2*k1] // half-length = length/2
		w2s := psiFS[2*k1]
		w3 := psiF[2*k1+1]
		w3s := psiFS[2*k1+1]
		w4 := psiF[4*k1] // half-length = length/4
		w4s := psiFS[4*k1]
		w5 := psiF[4*k1+1]
		w5s := psiFS[4*k1+1]
		w6 := psiF[4*k1+2]
		w6s := psiFS[4*k1+2]
		w7 := psiF[4*k1+3]
		w7s := psiFS[4*k1+3]
		p0 := p[start : start+ql]
		p1 := p[start+ql : start+2*ql]
		p2 := p[start+2*ql : start+3*ql]
		p3 := p[start+3*ql : start+4*ql]
		p4 := p[start+4*ql : start+5*ql]
		p5 := p[start+5*ql : start+6*ql]
		p6 := p[start+6*ql : start+7*ql]
		p7 := p[start+7*ql : start+8*ql]
		p1 = p1[:len(p0)] // bounds-check-elimination hints
		p2 = p2[:len(p0)]
		p3 = p3[:len(p0)]
		p4 = p4[:len(p0)]
		p5 = p5[:len(p0)]
		p6 = p6[:len(p0)]
		p7 = p7[:len(p0)]
		for i := range p0 {
			x0, x1, x2, x3 := p0[i], p1[i], p2[i], p3[i]
			x4, x5, x6, x7 := p4[i], p5[i], p6[i], p7[i]
			// Layer half-length = length: pairs (x_j, x_{j+4}), twiddle w1.
			if x0 >= twoQ {
				x0 -= twoQ
			}
			if x1 >= twoQ {
				x1 -= twoQ
			}
			if x2 >= twoQ {
				x2 -= twoQ
			}
			if x3 >= twoQ {
				x3 -= twoQ
			}
			hi4, _ := bits.Mul64(x4, w1s)
			hi5, _ := bits.Mul64(x5, w1s)
			hi6, _ := bits.Mul64(x6, w1s)
			hi7, _ := bits.Mul64(x7, w1s)
			v4 := x4*w1 - hi4*q // in [0, 2q)
			v5 := x5*w1 - hi5*q
			v6 := x6*w1 - hi6*q
			v7 := x7*w1 - hi7*q
			y0 := x0 + v4 // in [0, 4q)
			y4 := x0 + twoQ - v4
			y1 := x1 + v5
			y5 := x1 + twoQ - v5
			y2 := x2 + v6
			y6 := x2 + twoQ - v6
			y3 := x3 + v7
			y7 := x3 + twoQ - v7
			// Layer half-length = length/2: pairs (y0,y2),(y1,y3) under w2
			// and (y4,y6),(y5,y7) under w3.
			if y0 >= twoQ {
				y0 -= twoQ
			}
			if y1 >= twoQ {
				y1 -= twoQ
			}
			if y4 >= twoQ {
				y4 -= twoQ
			}
			if y5 >= twoQ {
				y5 -= twoQ
			}
			hi2, _ := bits.Mul64(y2, w2s)
			hi3, _ := bits.Mul64(y3, w2s)
			hi6, _ = bits.Mul64(y6, w3s)
			hi7, _ = bits.Mul64(y7, w3s)
			u2 := y2*w2 - hi2*q
			u3 := y3*w2 - hi3*q
			u6 := y6*w3 - hi6*q
			u7 := y7*w3 - hi7*q
			z0 := y0 + u2
			z2 := y0 + twoQ - u2
			z1 := y1 + u3
			z3 := y1 + twoQ - u3
			z4 := y4 + u6
			z6 := y4 + twoQ - u6
			z5 := y5 + u7
			z7 := y5 + twoQ - u7
			// Layer half-length = length/4: pairs (z0,z1),(z2,z3),(z4,z5),
			// (z6,z7) under w4..w7.
			if z0 >= twoQ {
				z0 -= twoQ
			}
			if z2 >= twoQ {
				z2 -= twoQ
			}
			if z4 >= twoQ {
				z4 -= twoQ
			}
			if z6 >= twoQ {
				z6 -= twoQ
			}
			hi1, _ := bits.Mul64(z1, w4s)
			hi3, _ = bits.Mul64(z3, w5s)
			hi5, _ = bits.Mul64(z5, w6s)
			hi7, _ = bits.Mul64(z7, w7s)
			s1 := z1*w4 - hi1*q
			s3 := z3*w5 - hi3*q
			s5 := z5*w6 - hi5*q
			s7 := z7*w7 - hi7*q
			p0[i] = z0 + s1
			p1[i] = z0 + twoQ - s1
			p2[i] = z2 + s3
			p3[i] = z2 + twoQ - s3
			p4[i] = z4 + s5
			p5[i] = z4 + twoQ - s5
			p6[i] = z6 + s7
			p7[i] = z6 + twoQ - s7
		}
	}
}

// fwdFinalStage runs the length = 2 and length = 1 layers over each
// contiguous group of four coefficients, fused with the fold from the
// lazy ranges back to canonical [0, q). Requires N ≥ 4.
//
//lint:noalloc
//lint:domain p:<4q -> p:<q
func (t *NTTTable) fwdFinalStage(p []uint64) {
	q := t.M.Q
	twoQ := q << 1
	n := t.N
	psiF, psiFS := t.psiFwd, t.psiFwdShoup
	wA := psiF[n>>2 : n>>1]
	wAs := psiFS[n>>2 : n>>1]
	wAs = wAs[:len(wA)] // bounds-check-elimination hints
	wB := psiF[n>>1 : n]
	wBs := psiFS[n>>1 : n]
	for j := range wA {
		g := p[4*j : 4*j+4 : 4*j+4]
		wb := wB[2*j : 2*j+2 : 2*j+2]
		wbs := wBs[2*j : 2*j+2 : 2*j+2]
		w1, w1s := wA[j], wAs[j]
		w2, w2s := wb[0], wbs[0]
		w3, w3s := wb[1], wbs[1]
		x0, x1, x2, x3 := g[0], g[1], g[2], g[3]
		if x0 >= twoQ {
			x0 -= twoQ
		}
		if x1 >= twoQ {
			x1 -= twoQ
		}
		hi2, _ := bits.Mul64(x2, w1s)
		hi3, _ := bits.Mul64(x3, w1s)
		v2 := x2*w1 - hi2*q // in [0, 2q)
		v3 := x3*w1 - hi3*q
		y0 := x0 + v2 // in [0, 4q)
		y2 := x0 + twoQ - v2
		y1 := x1 + v3
		y3 := x1 + twoQ - v3
		if y0 >= twoQ {
			y0 -= twoQ
		}
		if y2 >= twoQ {
			y2 -= twoQ
		}
		hi1, _ := bits.Mul64(y1, w2s)
		hi3b, _ := bits.Mul64(y3, w3s)
		u1 := y1*w2 - hi1*q
		u3 := y3*w3 - hi3b*q
		z0 := y0 + u1 // in [0, 4q); fold to canonical below
		z1 := y0 + twoQ - u1
		z2 := y2 + u3
		z3 := y2 + twoQ - u3
		if z0 >= twoQ {
			z0 -= twoQ
		}
		if z1 >= twoQ {
			z1 -= twoQ
		}
		if z2 >= twoQ {
			z2 -= twoQ
		}
		if z3 >= twoQ {
			z3 -= twoQ
		}
		if z0 >= q {
			z0 -= q
		}
		if z1 >= q {
			z1 -= q
		}
		if z2 >= q {
			z2 -= q
		}
		if z3 >= q {
			z3 -= q
		}
		g[0], g[1], g[2], g[3] = z0, z1, z2, z3
	}
}

// fwdN2 is the whole forward transform for N == 2: the single length = 1
// butterfly, folded to canonical output.
//
//lint:noalloc
//lint:domain p:<q -> p:<q
func (t *NTTTable) fwdN2(p []uint64) {
	q := t.M.Q
	twoQ := q << 1
	u, x := p[0], p[1]
	hi, _ := bits.Mul64(x, t.psiFwdShoup[1])
	v := x*t.psiFwd[1] - hi*q // in [0, 2q)
	r0 := u + v
	if r0 >= q {
		r0 -= q
	}
	if r0 >= q {
		r0 -= q
	}
	r1 := u + twoQ - v
	if r1 >= twoQ {
		r1 -= twoQ
	}
	if r1 >= q {
		r1 -= q
	}
	p[0], p[1] = r0, r1
}

// Inverse transforms p (NTT domain, Forward's output order) in place back
// to coefficient order, including the 1/N scaling.
//
// Lazy-reduction invariant: every coefficient is < 2q at the start of a
// layer. The Gentleman–Sande butterfly emits u+v folded back into
// [0, 2q) and (u−v+2q)·w in [0, 2q) from the subtraction-free Shoup
// multiply. The last layer is fused with the 1/N scaling and performs
// the full Shoup reduction, so the output is canonical [0, q).
//
// Mirror of Forward: after the fused first stage (layers l = 1, 2), the
// middle-layer remainder (radix-4 passes, or one radix-2 layer when only
// a single middle layer exists) runs first, then radix-8 passes consume
// the rest three at a time up to the fused final layer.
//
//lint:noalloc
//lint:domain p:<q -> p:<q
func (t *NTTTable) Inverse(p []uint64) {
	n := t.N
	p = p[:n]
	l := 1
	if n >= 8 {
		t.invFirstStage(p)
		l = 4
		switch (t.LogN - 3) % 3 {
		case 1:
			if t.LogN >= 7 {
				// Four or more middle layers: two radix-4 passes beat a
				// radix-8 pass plus a lone radix-2 layer.
				t.invRadix4Pass(p, l)
				l <<= 2
				t.invRadix4Pass(p, l)
				l <<= 2
			} else if l == n>>2 { // logN == 4: single middle layer
				t.invRadix2Layer(p, l)
				l <<= 1
			}
		case 2: // logN ≥ 5, so the pass always fits
			t.invRadix4Pass(p, l)
			l <<= 2
		}
		for ; l <= n>>4; l <<= 3 {
			t.invRadix8Pass(p, l)
		}
	}
	if n >= 4 && l == n>>2 { // n == 4: single butterfly layer before the final
		t.invRadix2Layer(p, l)
	}
	t.invFinalLayer(p)
}

// InverseRadix4 is the previous radix-4 inverse schedule, kept as the
// tracked reference the benchmark suite compares the radix-8 schedule
// against. Output is bit-identical to Inverse.
//
//lint:noalloc
//lint:domain p:<q -> p:<q
func (t *NTTTable) InverseRadix4(p []uint64) {
	n := t.N
	p = p[:n]
	l := 1
	if n >= 8 {
		t.invFirstStage(p)
		l = 4
	}
	for ; l <= n>>3; l <<= 2 {
		t.invRadix4Pass(p, l)
	}
	// One leftover radix-2 layer when the middle-layer count is odd.
	if n >= 4 && l == n>>2 {
		t.invRadix2Layer(p, l)
	}
	t.invFinalLayer(p)
}

// invFirstStage runs the fused l = 1 and l = 2 inverse layers over each
// contiguous group of four coefficients, so every group is loaded and
// stored once. Requires N ≥ 8.
//
//lint:noalloc
//lint:domain p:<2q -> p:<2q
func (t *NTTTable) invFirstStage(p []uint64) {
	q := t.M.Q
	twoQ := q << 1
	n := t.N
	psiI, psiIS := t.psiInv, t.psiInvShoup
	wOut := psiI[n>>2 : n>>1]
	wOutS := psiIS[n>>2 : n>>1]
	wOutS = wOutS[:len(wOut)] // bounds-check-elimination hints
	wIn := psiI[n>>1 : n]
	wInS := psiIS[n>>1 : n]
	for b := range wOut {
		g := p[4*b : 4*b+4 : 4*b+4]
		wi := wIn[2*b : 2*b+2 : 2*b+2]
		wis := wInS[2*b : 2*b+2 : 2*b+2]
		wo, wos := wOut[b], wOutS[b]
		x0, x1, x2, x3 := g[0], g[1], g[2], g[3]
		// length = 1 layer: pairs (x0,x1) and (x2,x3).
		y0 := x0 + x1 // in [0, 4q)
		if y0 >= twoQ {
			y0 -= twoQ
		}
		d0 := x0 + twoQ - x1
		hi0, _ := bits.Mul64(d0, wis[0])
		y1 := d0*wi[0] - hi0*q // in [0, 2q)
		y2 := x2 + x3
		if y2 >= twoQ {
			y2 -= twoQ
		}
		d2 := x2 + twoQ - x3
		hi2, _ := bits.Mul64(d2, wis[1])
		y3 := d2*wi[1] - hi2*q
		// length = 2 layer: pairs (y0,y2) and (y1,y3), shared twiddle.
		z0 := y0 + y2
		if z0 >= twoQ {
			z0 -= twoQ
		}
		e0 := y0 + twoQ - y2
		hi1, _ := bits.Mul64(e0, wos)
		z2 := e0*wo - hi1*q
		z1 := y1 + y3
		if z1 >= twoQ {
			z1 -= twoQ
		}
		e1 := y1 + twoQ - y3
		hi3, _ := bits.Mul64(e1, wos)
		z3 := e1*wo - hi3*q
		g[0], g[1], g[2], g[3] = z0, z1, z2, z3
	}
}

// invRadix4Pass runs two fused inverse layers (half-lengths l and 2l)
// over the whole vector, mirroring the forward transform's stage
// structure with Gentleman-Sande butterflies.
//
//lint:noalloc
//lint:domain p:<2q -> p:<2q
func (t *NTTTable) invRadix4Pass(p []uint64, l int) {
	q := t.M.Q
	twoQ := q << 1
	n := t.N
	psiI, psiIS := t.psiInv, t.psiInvShoup
	kBase := n / (l << 2)
	for b, start := 0, 0; start < n; b, start = b+1, start+(l<<2) {
		kOut := kBase + b
		wo := psiI[kOut]
		wos := psiIS[kOut]
		wi0 := psiI[2*kOut]
		wi0s := psiIS[2*kOut]
		wi1 := psiI[2*kOut+1]
		wi1s := psiIS[2*kOut+1]
		p0 := p[start : start+l]
		p1 := p[start+l : start+2*l]
		p2 := p[start+2*l : start+3*l]
		p3 := p[start+3*l : start+4*l]
		p1 = p1[:len(p0)] // bounds-check-elimination hints
		p2 = p2[:len(p0)]
		p3 = p3[:len(p0)]
		for i := range p0 {
			x0, x1, x2, x3 := p0[i], p1[i], p2[i], p3[i]
			y0 := x0 + x1 // in [0, 4q)
			if y0 >= twoQ {
				y0 -= twoQ
			}
			d0 := x0 + twoQ - x1
			hi0, _ := bits.Mul64(d0, wi0s)
			y1 := d0*wi0 - hi0*q // in [0, 2q)
			y2 := x2 + x3
			if y2 >= twoQ {
				y2 -= twoQ
			}
			d2 := x2 + twoQ - x3
			hi2, _ := bits.Mul64(d2, wi1s)
			y3 := d2*wi1 - hi2*q
			z0 := y0 + y2
			if z0 >= twoQ {
				z0 -= twoQ
			}
			e0 := y0 + twoQ - y2
			hi1, _ := bits.Mul64(e0, wos)
			z2 := e0*wo - hi1*q
			z1 := y1 + y3
			if z1 >= twoQ {
				z1 -= twoQ
			}
			e1 := y1 + twoQ - y3
			hi3, _ := bits.Mul64(e1, wos)
			z3 := e1*wo - hi3*q
			p0[i], p1[i], p2[i], p3[i] = z0, z1, z2, z3
		}
	}
}

// invRadix8Pass runs three fused inverse layers (half-lengths l, 2l and
// 4l) over the whole vector: each group of eight strided coefficients
// stays in registers across all three layers. Requires l ≤ N/16 so the
// consumed layers all lie strictly inside the middle of the schedule.
//
//lint:noalloc
//lint:domain p:<2q -> p:<2q
func (t *NTTTable) invRadix8Pass(p []uint64, l int) {
	q := t.M.Q
	twoQ := q << 1
	n := t.N
	psiI, psiIS := t.psiInv, t.psiInvShoup
	kBase := n / (l << 3)
	for b, start := 0, 0; start < n; b, start = b+1, start+(l<<3) {
		k8 := kBase + b
		wo := psiI[k8] // half-length = 4l
		wos := psiIS[k8]
		wm0 := psiI[2*k8] // half-length = 2l
		wm0s := psiIS[2*k8]
		wm1 := psiI[2*k8+1]
		wm1s := psiIS[2*k8+1]
		wi0 := psiI[4*k8] // half-length = l
		wi0s := psiIS[4*k8]
		wi1 := psiI[4*k8+1]
		wi1s := psiIS[4*k8+1]
		wi2 := psiI[4*k8+2]
		wi2s := psiIS[4*k8+2]
		wi3 := psiI[4*k8+3]
		wi3s := psiIS[4*k8+3]
		p0 := p[start : start+l]
		p1 := p[start+l : start+2*l]
		p2 := p[start+2*l : start+3*l]
		p3 := p[start+3*l : start+4*l]
		p4 := p[start+4*l : start+5*l]
		p5 := p[start+5*l : start+6*l]
		p6 := p[start+6*l : start+7*l]
		p7 := p[start+7*l : start+8*l]
		p1 = p1[:len(p0)] // bounds-check-elimination hints
		p2 = p2[:len(p0)]
		p3 = p3[:len(p0)]
		p4 = p4[:len(p0)]
		p5 = p5[:len(p0)]
		p6 = p6[:len(p0)]
		p7 = p7[:len(p0)]
		for i := range p0 {
			x0, x1, x2, x3 := p0[i], p1[i], p2[i], p3[i]
			x4, x5, x6, x7 := p4[i], p5[i], p6[i], p7[i]
			// Layer half-length = l: pairs (x0,x1),(x2,x3),(x4,x5),(x6,x7)
			// under wi0..wi3.
			a0 := x0 + x1 // in [0, 4q)
			if a0 >= twoQ {
				a0 -= twoQ
			}
			d0 := x0 + twoQ - x1
			hi0, _ := bits.Mul64(d0, wi0s)
			a1 := d0*wi0 - hi0*q // in [0, 2q)
			a2 := x2 + x3
			if a2 >= twoQ {
				a2 -= twoQ
			}
			d2 := x2 + twoQ - x3
			hi2, _ := bits.Mul64(d2, wi1s)
			a3 := d2*wi1 - hi2*q
			a4 := x4 + x5
			if a4 >= twoQ {
				a4 -= twoQ
			}
			d4 := x4 + twoQ - x5
			hi4, _ := bits.Mul64(d4, wi2s)
			a5 := d4*wi2 - hi4*q
			a6 := x6 + x7
			if a6 >= twoQ {
				a6 -= twoQ
			}
			d6 := x6 + twoQ - x7
			hi6, _ := bits.Mul64(d6, wi3s)
			a7 := d6*wi3 - hi6*q
			// Layer half-length = 2l: pairs (a0,a2),(a1,a3) under wm0 and
			// (a4,a6),(a5,a7) under wm1.
			b0 := a0 + a2
			if b0 >= twoQ {
				b0 -= twoQ
			}
			e0 := a0 + twoQ - a2
			hi0, _ = bits.Mul64(e0, wm0s)
			b2 := e0*wm0 - hi0*q
			b1 := a1 + a3
			if b1 >= twoQ {
				b1 -= twoQ
			}
			e1 := a1 + twoQ - a3
			hi2, _ = bits.Mul64(e1, wm0s)
			b3 := e1*wm0 - hi2*q
			b4 := a4 + a6
			if b4 >= twoQ {
				b4 -= twoQ
			}
			e4 := a4 + twoQ - a6
			hi4, _ = bits.Mul64(e4, wm1s)
			b6 := e4*wm1 - hi4*q
			b5 := a5 + a7
			if b5 >= twoQ {
				b5 -= twoQ
			}
			e5 := a5 + twoQ - a7
			hi6, _ = bits.Mul64(e5, wm1s)
			b7 := e5*wm1 - hi6*q
			// Layer half-length = 4l: pairs (b_j, b_{j+4}) under wo.
			c0 := b0 + b4
			if c0 >= twoQ {
				c0 -= twoQ
			}
			f0 := b0 + twoQ - b4
			hi0, _ = bits.Mul64(f0, wos)
			c4 := f0*wo - hi0*q
			c1 := b1 + b5
			if c1 >= twoQ {
				c1 -= twoQ
			}
			f1 := b1 + twoQ - b5
			hi2, _ = bits.Mul64(f1, wos)
			c5 := f1*wo - hi2*q
			c2 := b2 + b6
			if c2 >= twoQ {
				c2 -= twoQ
			}
			f2 := b2 + twoQ - b6
			hi4, _ = bits.Mul64(f2, wos)
			c6 := f2*wo - hi4*q
			c3 := b3 + b7
			if c3 >= twoQ {
				c3 -= twoQ
			}
			f3 := b3 + twoQ - b7
			hi6, _ = bits.Mul64(f3, wos)
			c7 := f3*wo - hi6*q
			p0[i], p1[i], p2[i], p3[i] = c0, c1, c2, c3
			p4[i], p5[i], p6[i], p7[i] = c4, c5, c6, c7
		}
	}
}

// invRadix2Layer runs one inverse butterfly layer of half-length l.
//
//lint:noalloc
//lint:domain p:<2q -> p:<2q
func (t *NTTTable) invRadix2Layer(p []uint64, l int) {
	q := t.M.Q
	twoQ := q << 1
	n := t.N
	psiI, psiIS := t.psiInv, t.psiInvShoup
	kBase := n / (l << 1)
	for b, start := 0, 0; start < n; b, start = b+1, start+(l<<1) {
		w := psiI[kBase+b]
		ws := psiIS[kBase+b]
		a := p[start : start+l]
		bb := p[start+l : start+(l<<1)]
		bb = bb[:len(a)] // bounds-check-elimination hint
		for i := range a {
			u := a[i]
			v := bb[i]
			s := u + v // in [0, 4q)
			if s >= twoQ {
				s -= twoQ
			}
			a[i] = s
			d := u + twoQ - v // in [0, 4q)
			hi, _ := bits.Mul64(d, ws)
			bb[i] = d*w - hi*q // in [0, 2q)
		}
	}
}

// invFinalLayer runs the last inverse layer (half-length N/2), fused with
// the 1/N scaling; exact MulShoup reductions land every output in
// canonical [0, q).
//
//lint:noalloc
//lint:domain p:<2q -> p:<q
func (t *NTTTable) invFinalLayer(p []uint64) {
	q := t.M.Q
	twoQ := q << 1
	n := t.N
	half := n >> 1
	a := p[:half]
	b := p[half:]
	b = b[:len(a)] // bounds-check-elimination hint
	nInv, nInvS := t.nInv, t.nInvShoup
	wN, wNS := t.psiInvN, t.psiInvNS
	for i := range a {
		u := a[i]
		v := b[i]
		hi, _ := bits.Mul64(u+v, nInvS)
		r := (u+v)*nInv - hi*q
		c := r - q
		a[i] = c + (q & uint64(int64(c)>>63))
		d := u + twoQ - v
		hi, _ = bits.Mul64(d, wNS)
		r = d*wN - hi*q
		c = r - q
		b[i] = c + (q & uint64(int64(c)>>63))
	}
}
