package ring

import "math/bits"

// NTTTable holds the precomputed twiddle factors for the negacyclic NTT
// of length N over one prime modulus. Twiddles are stored in bit-reversed
// order with Shoup companions, following the standard
// Cooley-Tukey / Gentleman-Sande formulation (Longa-Naehrig).
//
// Both transforms use lazy reduction internally: coefficients ride in
// the extended ranges [0, 2q) (inverse) and [0, 4q) (forward) between
// butterfly layers, and are folded back to canonical [0, q) residues
// only at the very end. With q ≤ 2^61 (MaxModulusBits) the lazy sums
// stay below 2^63 and never wrap. The exported entry points accept and
// produce canonical residues and are bit-identical to a fully-reduced
// reference transform (see the property tests).
type NTTTable struct {
	M    Modulus
	N    int
	LogN int

	psiFwd      []uint64 // ψ^br(i): forward twiddles, bit-reversed
	psiFwdShoup []uint64
	psiInv      []uint64 // ψ^-br(i): inverse twiddles, bit-reversed
	psiInvShoup []uint64
	nInv        uint64 // N^-1 mod q
	nInvShoup   uint64
	psiInvN     uint64 // ψ^-br(1)·N^-1: last-layer twiddle fused with 1/N
	psiInvNS    uint64
}

// NewNTTTable builds the tables for a negacyclic NTT of length N = 2^logN
// over the prime q, which must satisfy q ≡ 1 (mod 2N).
func NewNTTTable(q uint64, logN int) *NTTTable {
	n := 1 << uint(logN)
	m := NewModulus(q)
	psi := RootOfUnity(q, uint64(2*n))
	psiInv := m.Inv(psi)

	t := &NTTTable{
		M:           m,
		N:           n,
		LogN:        logN,
		psiFwd:      make([]uint64, n),
		psiFwdShoup: make([]uint64, n),
		psiInv:      make([]uint64, n),
		psiInvShoup: make([]uint64, n),
	}
	fw, iv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		j := bitrev(uint64(i), logN)
		t.psiFwd[j] = fw
		t.psiInv[j] = iv
		fw = m.Mul(fw, psi)
		iv = m.Mul(iv, psiInv)
	}
	for i := 0; i < n; i++ {
		t.psiFwdShoup[i] = m.ShoupPrecomp(t.psiFwd[i])
		t.psiInvShoup[i] = m.ShoupPrecomp(t.psiInv[i])
	}
	t.nInv = m.Inv(uint64(n))
	t.nInvShoup = m.ShoupPrecomp(t.nInv)
	// The final inverse layer (length = N/2) uses the single twiddle
	// ψ^-br(1); fusing the 1/N scaling into it (and into the u+v output)
	// saves the separate scaling pass over the whole vector.
	t.psiInvN = m.Mul(t.psiInv[1], t.nInv)
	t.psiInvNS = m.ShoupPrecomp(t.psiInvN)
	return t
}

func bitrev(x uint64, bitLen int) uint64 {
	return bits.Reverse64(x) >> uint(64-bitLen)
}

// Forward transforms p (coefficient order) in place into the NTT domain.
// The output ordering is the standard bit-reversed evaluation order; it is
// consistent with Inverse and with pointwise multiplication.
//
// Lazy-reduction invariant (Longa–Naehrig / Harvey): every coefficient
// is < 4q at the start of a layer. The butterfly folds u into [0, 2q),
// takes v = x·w in [0, 2q) from the subtraction-free Shoup multiply,
// and emits u+v and u−v+2q, both < 4q. A final pass folds [0, 4q) to
// canonical [0, q).
//
//lint:noalloc
//lint:domain p:<q -> p:<q
func (t *NTTTable) Forward(p []uint64) {
	m := t.M
	q := m.Q
	twoQ := q << 1
	n := t.N
	p = p[:n]
	psiF, psiFS := t.psiFwd, t.psiFwdShoup
	length := n >> 1
	// The length = 2 and length = 1 layers run as dedicated stages below,
	// leaving logN-2 middle layers; radix-4 stages below consume them two
	// at a time, so peel a single radix-2 layer first when the count is odd.
	if t.LogN&1 == 1 && length >= 4 {
		w := psiF[1]
		ws := psiFS[1]
		a := p[:length]
		b := p[length:]
		b = b[:len(a)] // bounds-check-elimination hint
		for i := 0; i+1 < len(a); i += 2 {
			u0, u1 := a[i], a[i+1]
			x0, x1 := b[i], b[i+1]
			hi0, _ := bits.Mul64(x0, ws)
			hi1, _ := bits.Mul64(x1, ws)
			v0 := x0*w - hi0*q // in [0, 2q)
			v1 := x1*w - hi1*q
			a[i], a[i+1] = u0+v0, u1+v1
			b[i], b[i+1] = u0+twoQ-v0, u1+twoQ-v1
		}
		length >>= 1
	}
	// Radix-4 stages: two butterfly layers fused per pass. Each group of
	// four strided coefficients is loaded once, runs the outer butterfly
	// (twiddle w1) and both inner butterflies (the child twiddles 2k and
	// 2k+1), and is stored once — halving memory traffic and loop
	// overhead per butterfly versus layer-at-a-time radix-2.
	for ; length >= 8; length >>= 2 {
		ql := length >> 1
		kBase := n / (length << 1)
		for b, start := 0, 0; start < n; b, start = b+1, start+(length<<1) {
			k1 := kBase + b
			w1 := psiF[k1]
			w1s := psiFS[k1]
			w2 := psiF[2*k1]
			w2s := psiFS[2*k1]
			w3 := psiF[2*k1+1]
			w3s := psiFS[2*k1+1]
			p0 := p[start : start+ql]
			p1 := p[start+ql : start+2*ql]
			p2 := p[start+2*ql : start+3*ql]
			p3 := p[start+3*ql : start+4*ql]
			p1 = p1[:len(p0)] // bounds-check-elimination hints
			p2 = p2[:len(p0)]
			p3 = p3[:len(p0)]
			for i := 0; i+1 < len(p0); i += 2 {
				x0, x1, x2, x3 := p0[i], p1[i], p2[i], p3[i]
				X0, X1, X2, X3 := p0[i+1], p1[i+1], p2[i+1], p3[i+1]
				if x0 >= twoQ {
					x0 -= twoQ
				}
				if x1 >= twoQ {
					x1 -= twoQ
				}
				if X0 >= twoQ {
					X0 -= twoQ
				}
				if X1 >= twoQ {
					X1 -= twoQ
				}
				hi2, _ := bits.Mul64(x2, w1s)
				hi3, _ := bits.Mul64(x3, w1s)
				Hi2, _ := bits.Mul64(X2, w1s)
				Hi3, _ := bits.Mul64(X3, w1s)
				v2 := x2*w1 - hi2*q // in [0, 2q)
				v3 := x3*w1 - hi3*q
				V2 := X2*w1 - Hi2*q
				V3 := X3*w1 - Hi3*q
				y0 := x0 + v2 // in [0, 4q)
				y2 := x0 + twoQ - v2
				y1 := x1 + v3
				y3 := x1 + twoQ - v3
				Y0 := X0 + V2
				Y2 := X0 + twoQ - V2
				Y1 := X1 + V3
				Y3 := X1 + twoQ - V3
				if y0 >= twoQ {
					y0 -= twoQ
				}
				if y2 >= twoQ {
					y2 -= twoQ
				}
				if Y0 >= twoQ {
					Y0 -= twoQ
				}
				if Y2 >= twoQ {
					Y2 -= twoQ
				}
				hi1, _ := bits.Mul64(y1, w2s)
				hi3b, _ := bits.Mul64(y3, w3s)
				Hi1, _ := bits.Mul64(Y1, w2s)
				Hi3b, _ := bits.Mul64(Y3, w3s)
				u1 := y1*w2 - hi1*q
				u3 := y3*w3 - hi3b*q
				U1 := Y1*w2 - Hi1*q
				U3 := Y3*w3 - Hi3b*q
				p0[i], p0[i+1] = y0+u1, Y0+U1
				p1[i], p1[i+1] = y0+twoQ-u1, Y0+twoQ-U1
				p2[i], p2[i+1] = y2+u3, Y2+U3
				p3[i], p3[i+1] = y2+twoQ-u3, Y2+twoQ-U3
			}
		}
	}
	// Final radix-4 stage: the length = 2 and length = 1 layers over each
	// contiguous group of four coefficients, fused with the fold from the
	// lazy ranges back to canonical [0, q).
	if n >= 4 {
		wA := psiF[n>>2 : n>>1]
		wAs := psiFS[n>>2 : n>>1]
		wAs = wAs[:len(wA)] // bounds-check-elimination hints
		wB := psiF[n>>1 : n]
		wBs := psiFS[n>>1 : n]
		for j := range wA {
			g := p[4*j : 4*j+4 : 4*j+4]
			wb := wB[2*j : 2*j+2 : 2*j+2]
			wbs := wBs[2*j : 2*j+2 : 2*j+2]
			w1, w1s := wA[j], wAs[j]
			w2, w2s := wb[0], wbs[0]
			w3, w3s := wb[1], wbs[1]
			x0, x1, x2, x3 := g[0], g[1], g[2], g[3]
			if x0 >= twoQ {
				x0 -= twoQ
			}
			if x1 >= twoQ {
				x1 -= twoQ
			}
			hi2, _ := bits.Mul64(x2, w1s)
			hi3, _ := bits.Mul64(x3, w1s)
			v2 := x2*w1 - hi2*q // in [0, 2q)
			v3 := x3*w1 - hi3*q
			y0 := x0 + v2 // in [0, 4q)
			y2 := x0 + twoQ - v2
			y1 := x1 + v3
			y3 := x1 + twoQ - v3
			if y0 >= twoQ {
				y0 -= twoQ
			}
			if y2 >= twoQ {
				y2 -= twoQ
			}
			hi1, _ := bits.Mul64(y1, w2s)
			hi3b, _ := bits.Mul64(y3, w3s)
			u1 := y1*w2 - hi1*q
			u3 := y3*w3 - hi3b*q
			z0 := y0 + u1 // in [0, 4q); fold to canonical below
			z1 := y0 + twoQ - u1
			z2 := y2 + u3
			z3 := y2 + twoQ - u3
			if z0 >= twoQ {
				z0 -= twoQ
			}
			if z1 >= twoQ {
				z1 -= twoQ
			}
			if z2 >= twoQ {
				z2 -= twoQ
			}
			if z3 >= twoQ {
				z3 -= twoQ
			}
			if z0 >= q {
				z0 -= q
			}
			if z1 >= q {
				z1 -= q
			}
			if z2 >= q {
				z2 -= q
			}
			if z3 >= q {
				z3 -= q
			}
			g[0], g[1], g[2], g[3] = z0, z1, z2, z3
		}
		return
	}
	// n == 2: the whole transform is the single length = 1 butterfly.
	u, x := p[0], p[1]
	hi, _ := bits.Mul64(x, psiFS[1])
	v := x*psiF[1] - hi*q // in [0, 2q)
	r0 := u + v
	if r0 >= q {
		r0 -= q
	}
	if r0 >= q {
		r0 -= q
	}
	r1 := u + twoQ - v
	if r1 >= twoQ {
		r1 -= twoQ
	}
	if r1 >= q {
		r1 -= q
	}
	p[0], p[1] = r0, r1
}

// Inverse transforms p (NTT domain, Forward's output order) in place back
// to coefficient order, including the 1/N scaling.
//
// Lazy-reduction invariant: every coefficient is < 2q at the start of a
// layer. The Gentleman–Sande butterfly emits u+v folded back into
// [0, 2q) and (u−v+2q)·w in [0, 2q) from the subtraction-free Shoup
// multiply. The last layer is fused with the 1/N scaling and performs
// the full Shoup reduction, so the output is canonical [0, q).
//
//lint:noalloc
//lint:domain p:<q -> p:<q
func (t *NTTTable) Inverse(p []uint64) {
	m := t.M
	q := m.Q
	twoQ := q << 1
	n := t.N
	p = p[:n]
	psiI, psiIS := t.psiInv, t.psiInvShoup
	l := 1
	// First radix-4 stage: the length = 1 and length = 2 layers over each
	// contiguous group of four coefficients, fused so every group is
	// loaded and stored once.
	if n >= 8 {
		wOut := psiI[n>>2 : n>>1]
		wOutS := psiIS[n>>2 : n>>1]
		wOutS = wOutS[:len(wOut)] // bounds-check-elimination hints
		wIn := psiI[n>>1 : n]
		wInS := psiIS[n>>1 : n]
		for b := range wOut {
			g := p[4*b : 4*b+4 : 4*b+4]
			wi := wIn[2*b : 2*b+2 : 2*b+2]
			wis := wInS[2*b : 2*b+2 : 2*b+2]
			wo, wos := wOut[b], wOutS[b]
			x0, x1, x2, x3 := g[0], g[1], g[2], g[3]
			// length = 1 layer: pairs (x0,x1) and (x2,x3).
			y0 := x0 + x1 // in [0, 4q)
			if y0 >= twoQ {
				y0 -= twoQ
			}
			d0 := x0 + twoQ - x1
			hi0, _ := bits.Mul64(d0, wis[0])
			y1 := d0*wi[0] - hi0*q // in [0, 2q)
			y2 := x2 + x3
			if y2 >= twoQ {
				y2 -= twoQ
			}
			d2 := x2 + twoQ - x3
			hi2, _ := bits.Mul64(d2, wis[1])
			y3 := d2*wi[1] - hi2*q
			// length = 2 layer: pairs (y0,y2) and (y1,y3), shared twiddle.
			z0 := y0 + y2
			if z0 >= twoQ {
				z0 -= twoQ
			}
			e0 := y0 + twoQ - y2
			hi1, _ := bits.Mul64(e0, wos)
			z2 := e0*wo - hi1*q
			z1 := y1 + y3
			if z1 >= twoQ {
				z1 -= twoQ
			}
			e1 := y1 + twoQ - y3
			hi3, _ := bits.Mul64(e1, wos)
			z3 := e1*wo - hi3*q
			g[0], g[1], g[2], g[3] = z0, z1, z2, z3
		}
		l = 4
	}
	// Radix-4 middle stages: fuse layers (l, 2l) per pass, mirroring the
	// forward transform's stage structure with Gentleman-Sande butterflies.
	for ; l <= n>>3; l <<= 2 {
		kBase := n / (l << 2)
		for b, start := 0, 0; start < n; b, start = b+1, start+(l<<2) {
			kOut := kBase + b
			wo := psiI[kOut]
			wos := psiIS[kOut]
			wi0 := psiI[2*kOut]
			wi0s := psiIS[2*kOut]
			wi1 := psiI[2*kOut+1]
			wi1s := psiIS[2*kOut+1]
			p0 := p[start : start+l]
			p1 := p[start+l : start+2*l]
			p2 := p[start+2*l : start+3*l]
			p3 := p[start+3*l : start+4*l]
			p1 = p1[:len(p0)] // bounds-check-elimination hints
			p2 = p2[:len(p0)]
			p3 = p3[:len(p0)]
			for i := range p0 {
				x0, x1, x2, x3 := p0[i], p1[i], p2[i], p3[i]
				y0 := x0 + x1 // in [0, 4q)
				if y0 >= twoQ {
					y0 -= twoQ
				}
				d0 := x0 + twoQ - x1
				hi0, _ := bits.Mul64(d0, wi0s)
				y1 := d0*wi0 - hi0*q // in [0, 2q)
				y2 := x2 + x3
				if y2 >= twoQ {
					y2 -= twoQ
				}
				d2 := x2 + twoQ - x3
				hi2, _ := bits.Mul64(d2, wi1s)
				y3 := d2*wi1 - hi2*q
				z0 := y0 + y2
				if z0 >= twoQ {
					z0 -= twoQ
				}
				e0 := y0 + twoQ - y2
				hi1, _ := bits.Mul64(e0, wos)
				z2 := e0*wo - hi1*q
				z1 := y1 + y3
				if z1 >= twoQ {
					z1 -= twoQ
				}
				e1 := y1 + twoQ - y3
				hi3, _ := bits.Mul64(e1, wos)
				z3 := e1*wo - hi3*q
				p0[i], p1[i], p2[i], p3[i] = z0, z1, z2, z3
			}
		}
	}
	// One leftover radix-2 layer when the middle-layer count is odd.
	if n >= 4 && l == n>>2 {
		kBase := n / (l << 1)
		for b, start := 0, 0; start < n; b, start = b+1, start+(l<<1) {
			w := psiI[kBase+b]
			ws := psiIS[kBase+b]
			a := p[start : start+l]
			bb := p[start+l : start+(l<<1)]
			bb = bb[:len(a)] // bounds-check-elimination hint
			for i := range a {
				u := a[i]
				v := bb[i]
				s := u + v // in [0, 4q)
				if s >= twoQ {
					s -= twoQ
				}
				a[i] = s
				d := u + twoQ - v // in [0, 4q)
				hi, _ := bits.Mul64(d, ws)
				bb[i] = d*w - hi*q // in [0, 2q)
			}
		}
	}
	// Final layer (length = n/2), fused with the 1/N scaling; exact
	// MulShoup reductions land every output in canonical [0, q).
	half := n >> 1
	a := p[:half]
	b := p[half:]
	b = b[:len(a)] // bounds-check-elimination hint
	nInv, nInvS := t.nInv, t.nInvShoup
	wN, wNS := t.psiInvN, t.psiInvNS
	for i := range a {
		u := a[i]
		v := b[i]
		hi, _ := bits.Mul64(u+v, nInvS)
		r := (u+v)*nInv - hi*q
		c := r - q
		a[i] = c + (q & uint64(int64(c)>>63))
		d := u + twoQ - v
		hi, _ = bits.Mul64(d, wNS)
		r = d*wN - hi*q
		c = r - q
		b[i] = c + (q & uint64(int64(c)>>63))
	}
}
