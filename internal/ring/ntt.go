package ring

import "math/bits"

// NTTTable holds the precomputed twiddle factors for the negacyclic NTT
// of length N over one prime modulus. Twiddles are stored in bit-reversed
// order with Shoup companions, following the standard
// Cooley-Tukey / Gentleman-Sande formulation (Longa-Naehrig).
type NTTTable struct {
	M    Modulus
	N    int
	LogN int

	psiFwd      []uint64 // ψ^br(i): forward twiddles, bit-reversed
	psiFwdShoup []uint64
	psiInv      []uint64 // ψ^-br(i): inverse twiddles, bit-reversed
	psiInvShoup []uint64
	nInv        uint64 // N^-1 mod q
	nInvShoup   uint64
}

// NewNTTTable builds the tables for a negacyclic NTT of length N = 2^logN
// over the prime q, which must satisfy q ≡ 1 (mod 2N).
func NewNTTTable(q uint64, logN int) *NTTTable {
	n := 1 << uint(logN)
	m := NewModulus(q)
	psi := RootOfUnity(q, uint64(2*n))
	psiInv := m.Inv(psi)

	t := &NTTTable{
		M:           m,
		N:           n,
		LogN:        logN,
		psiFwd:      make([]uint64, n),
		psiFwdShoup: make([]uint64, n),
		psiInv:      make([]uint64, n),
		psiInvShoup: make([]uint64, n),
	}
	fw, iv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		j := bitrev(uint64(i), logN)
		t.psiFwd[j] = fw
		t.psiInv[j] = iv
		fw = m.Mul(fw, psi)
		iv = m.Mul(iv, psiInv)
	}
	for i := 0; i < n; i++ {
		t.psiFwdShoup[i] = m.ShoupPrecomp(t.psiFwd[i])
		t.psiInvShoup[i] = m.ShoupPrecomp(t.psiInv[i])
	}
	t.nInv = m.Inv(uint64(n))
	t.nInvShoup = m.ShoupPrecomp(t.nInv)
	return t
}

func bitrev(x uint64, bitLen int) uint64 {
	return bits.Reverse64(x) >> uint(64-bitLen)
}

// Forward transforms p (coefficient order) in place into the NTT domain.
// The output ordering is the standard bit-reversed evaluation order; it is
// consistent with Inverse and with pointwise multiplication.
func (t *NTTTable) Forward(p []uint64) {
	m := t.M
	n := t.N
	for length, k := n>>1, 1; length >= 1; length >>= 1 {
		for start := 0; start < n; start += length << 1 {
			w := t.psiFwd[k]
			ws := t.psiFwdShoup[k]
			k++
			for i := start; i < start+length; i++ {
				u := p[i]
				v := m.MulShoup(p[i+length], w, ws)
				p[i] = m.Add(u, v)
				p[i+length] = m.Sub(u, v)
			}
		}
	}
}

// Inverse transforms p (NTT domain, Forward's output order) in place back
// to coefficient order, including the 1/N scaling.
func (t *NTTTable) Inverse(p []uint64) {
	m := t.M
	n := t.N
	k := n - 1
	for length := 1; length < n; length <<= 1 {
		for start := n - (length << 1); start >= 0; start -= length << 1 {
			w := t.psiInv[k]
			ws := t.psiInvShoup[k]
			k--
			for i := start; i < start+length; i++ {
				u := p[i]
				v := p[i+length]
				p[i] = m.Add(u, v)
				p[i+length] = m.MulShoup(m.Sub(u, v), w, ws)
			}
		}
	}
	for i := range p {
		p[i] = m.MulShoup(p[i], t.nInv, t.nInvShoup)
	}
}
