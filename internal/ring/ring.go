package ring

import (
	"fmt"

	"athena/internal/par"
)

// Ring is the RNS polynomial ring Z_Q[X]/(X^N+1) with Q the product of a
// chain of word-sized NTT-friendly primes. All per-limb tables are
// precomputed at construction.
type Ring struct {
	N      int
	LogN   int
	Moduli []Modulus
	Tables []*NTTTable
}

// NewRing builds a ring of degree N = 2^logN over the given prime chain.
// Every modulus must be prime and ≡ 1 (mod 2N).
func NewRing(logN int, moduli []uint64) (*Ring, error) {
	if logN < 1 || logN > 17 {
		return nil, fmt.Errorf("ring: logN %d out of range", logN)
	}
	if len(moduli) == 0 {
		return nil, fmt.Errorf("ring: empty modulus chain")
	}
	n := 1 << uint(logN)
	r := &Ring{
		N:      n,
		LogN:   logN,
		Moduli: make([]Modulus, len(moduli)),
		Tables: make([]*NTTTable, len(moduli)),
	}
	seen := make(map[uint64]bool, len(moduli))
	for i, q := range moduli {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate modulus %d", q)
		}
		seen[q] = true
		if !IsPrime(q) {
			return nil, fmt.Errorf("ring: modulus %d is not prime", q)
		}
		if (q-1)%uint64(2*n) != 0 {
			return nil, fmt.Errorf("ring: modulus %d is not 1 mod 2N", q)
		}
		r.Moduli[i] = NewModulus(q)
		r.Tables[i] = NewNTTTable(q, logN)
	}
	return r, nil
}

// Level returns the number of RNS limbs.
func (r *Ring) Level() int { return len(r.Moduli) }

// ModuliValues returns the prime chain as raw uint64s.
func (r *Ring) ModuliValues() []uint64 {
	qs := make([]uint64, len(r.Moduli))
	for i, m := range r.Moduli {
		qs[i] = m.Q
	}
	return qs
}

// SubRing returns a ring over the first `level` limbs of r, sharing the
// precomputed tables.
func (r *Ring) SubRing(level int) *Ring {
	if level < 1 || level > r.Level() {
		panic(fmt.Sprintf("ring: invalid sub-ring level %d", level))
	}
	return &Ring{N: r.N, LogN: r.LogN, Moduli: r.Moduli[:level], Tables: r.Tables[:level]}
}

// Poly is an RNS polynomial: Coeffs[i][j] is the j-th coefficient modulo
// the i-th prime of the owning ring's chain. Whether the polynomial is in
// coefficient or NTT representation is tracked by the caller (package bfv
// keeps ciphertext polynomials in NTT form by convention).
type Poly struct {
	Coeffs [][]uint64
}

// NewPoly allocates a zero polynomial with the ring's limb count.
func (r *Ring) NewPoly() Poly {
	c := make([][]uint64, r.Level())
	backing := make([]uint64, r.Level()*r.N)
	for i := range c {
		c[i] = backing[i*r.N : (i+1)*r.N : (i+1)*r.N]
	}
	return Poly{Coeffs: c}
}

// Level returns the number of limbs held by p.
func (p Poly) Level() int { return len(p.Coeffs) }

// CopyTo copies p into dst (same shape required).
//
//lint:noalloc
func (p Poly) CopyTo(dst Poly) {
	for i := range p.Coeffs {
		copy(dst.Coeffs[i], p.Coeffs[i])
	}
}

// Clone returns a deep copy of p.
func (p Poly) Clone() Poly {
	c := make([][]uint64, len(p.Coeffs))
	for i := range p.Coeffs {
		c[i] = append([]uint64(nil), p.Coeffs[i]...)
	}
	return Poly{Coeffs: c}
}

// Zero resets all limbs of p.
//
//lint:noalloc
func (p Poly) Zero() {
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = 0
		}
	}
}

// Equal reports whether p and q hold identical residues.
func (p Poly) Equal(q Poly) bool {
	if len(p.Coeffs) != len(q.Coeffs) {
		return false
	}
	for i := range p.Coeffs {
		if len(p.Coeffs[i]) != len(q.Coeffs[i]) {
			return false
		}
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != q.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}

// NTT transforms p in place, limb by limb, into the NTT domain. Limbs are
// independent, so they fan out across CPUs when the total transform work
// is large enough to amortize the fork-join (see par.ForWork).
//
//lint:noalloc
func (r *Ring) NTT(p Poly) {
	tables := r.Tables
	coeffs := p.Coeffs
	if !par.WorthForWork(len(coeffs), r.N*r.LogN) {
		for i := range coeffs {
			tables[i].Forward(coeffs[i])
		}
		return
	}
	//lint:allow noalloc fork-join fan-out allocates its closure once per large transform; the serial branch is the steady noalloc path
	par.ForWork(len(coeffs), r.N*r.LogN, func(i int) {
		tables[i].Forward(coeffs[i])
	})
}

// INTT transforms p in place back to coefficient representation.
//
//lint:noalloc
func (r *Ring) INTT(p Poly) {
	tables := r.Tables
	coeffs := p.Coeffs
	if !par.WorthForWork(len(coeffs), r.N*r.LogN) {
		for i := range coeffs {
			tables[i].Inverse(coeffs[i])
		}
		return
	}
	//lint:allow noalloc fork-join fan-out allocates its closure once per large transform; the serial branch is the steady noalloc path
	par.ForWork(len(coeffs), r.N*r.LogN, func(i int) {
		tables[i].Inverse(coeffs[i])
	})
}

// Add sets out = a + b.
//
//lint:noalloc
func (r *Ring) Add(a, b, out Poly) {
	for i := range a.Coeffs {
		r.Moduli[i].AddVec(a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
	}
}

// Sub sets out = a - b.
//
//lint:noalloc
func (r *Ring) Sub(a, b, out Poly) {
	for i := range a.Coeffs {
		r.Moduli[i].SubVec(a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
	}
}

// Neg sets out = -a.
//
//lint:noalloc
func (r *Ring) Neg(a, out Poly) {
	for i := range a.Coeffs {
		r.Moduli[i].NegVec(a.Coeffs[i], out.Coeffs[i])
	}
}

// MulCoeffs sets out = a ⊙ b (pointwise); meaningful when both operands
// are in the NTT domain, where it realizes negacyclic convolution.
//
//lint:noalloc
func (r *Ring) MulCoeffs(a, b, out Poly) {
	moduli := r.Moduli
	if !par.WorthForWork(len(a.Coeffs), r.N) {
		for i := range a.Coeffs {
			moduli[i].MulVec(a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
		}
		return
	}
	//lint:allow noalloc fork-join fan-out allocates its closure once per large transform; the serial branch is the steady noalloc path
	par.ForWork(len(a.Coeffs), r.N, func(i int) {
		moduli[i].MulVec(a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
	})
}

// MulCoeffsAndAdd sets out += a ⊙ b (pointwise multiply-accumulate).
//
//lint:noalloc
func (r *Ring) MulCoeffsAndAdd(a, b, out Poly) {
	moduli := r.Moduli
	if !par.WorthForWork(len(a.Coeffs), r.N) {
		for i := range a.Coeffs {
			moduli[i].MulAddVec(a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
		}
		return
	}
	//lint:allow noalloc fork-join fan-out allocates its closure once per large transform; the serial branch is the steady noalloc path
	par.ForWork(len(a.Coeffs), r.N, func(i int) {
		moduli[i].MulAddVec(a.Coeffs[i], b.Coeffs[i], out.Coeffs[i])
	})
}

// ShoupPolyInto fills out with the per-limb Shoup companions of the
// canonical polynomial p, for use with MulCoeffsShoup. Precomputation
// path: run once per fixed operand (key material, compiled multipliers).
//
//lint:noalloc
func (r *Ring) ShoupPolyInto(p, out Poly) {
	for i := range p.Coeffs {
		r.Moduli[i].ShoupPrecompVec(p.Coeffs[i], out.Coeffs[i])
	}
}

// ShoupPoly returns a freshly allocated companion polynomial for p.
func (r *Ring) ShoupPoly(p Poly) Poly {
	out := r.NewPoly()
	r.ShoupPolyInto(p, out)
	return out
}

// MulCoeffsShoup sets out = a ⊙ b for a fixed canonical b with companion
// polynomial bShoup (ShoupPoly): the fast pointwise product for products
// against immutable operands. Iterates over a's limbs, so a reduced-level
// a against full-level key material multiplies the shared prefix.
//
//lint:noalloc
func (r *Ring) MulCoeffsShoup(a, b, bShoup, out Poly) {
	for i := range a.Coeffs {
		r.Moduli[i].MulShoupElemVec(a.Coeffs[i], b.Coeffs[i], bShoup.Coeffs[i], out.Coeffs[i])
	}
}

// MulCoeffsShoupAndAdd sets out += a ⊙ b for a fixed canonical b with
// companion polynomial bShoup.
//
//lint:noalloc
func (r *Ring) MulCoeffsShoupAndAdd(a, b, bShoup, out Poly) {
	for i := range a.Coeffs {
		r.Moduli[i].MulShoupElemAddVec(a.Coeffs[i], b.Coeffs[i], bShoup.Coeffs[i], out.Coeffs[i])
	}
}

// MulScalar sets out = a · s for a scalar s (applied per limb, reduced).
//
//lint:noalloc
func (r *Ring) MulScalar(a Poly, s uint64, out Poly) {
	for i := range a.Coeffs {
		m := r.Moduli[i]
		sv := s % m.Q
		sh := m.ShoupPrecomp(sv)
		m.MulShoupVec(a.Coeffs[i], sv, sh, out.Coeffs[i])
	}
}

// MulScalarAndAdd sets out += a · s for a scalar s (applied per limb,
// reduced) — the fused form innerSum-style accumulation wants, avoiding a
// temporary product polynomial.
//
//lint:noalloc
func (r *Ring) MulScalarAndAdd(a Poly, s uint64, out Poly) {
	for i := range a.Coeffs {
		m := r.Moduli[i]
		sv := s % m.Q
		sh := m.ShoupPrecomp(sv)
		m.MulShoupAddVec(a.Coeffs[i], sv, sh, out.Coeffs[i])
	}
}

// MulScalarRNS multiplies limb i by scalar s[i] (each already reduced mod
// q_i). Used to apply big-integer constants given in RNS form, e.g. Δ.
//
//lint:noalloc
func (r *Ring) MulScalarRNS(a Poly, s []uint64, out Poly) {
	for i := range a.Coeffs {
		m := r.Moduli[i]
		sh := m.ShoupPrecomp(s[i])
		m.MulShoupVec(a.Coeffs[i], s[i], sh, out.Coeffs[i])
	}
}

// MulPolyNaive computes out = a·b mod (X^N+1) by schoolbook negacyclic
// convolution in the coefficient domain. Quadratic; used by tests as an
// NTT oracle.
func (r *Ring) MulPolyNaive(a, b, out Poly) {
	n := r.N
	for i := range a.Coeffs {
		m := r.Moduli[i]
		ai, bi := a.Coeffs[i], b.Coeffs[i]
		res := make([]uint64, n)
		for x := 0; x < n; x++ {
			if ai[x] == 0 {
				continue
			}
			for y := 0; y < n; y++ {
				p := m.Mul(ai[x], bi[y])
				k := x + y
				if k < n {
					res[k] = m.Add(res[k], p)
				} else {
					res[k-n] = m.Sub(res[k-n], p)
				}
			}
		}
		copy(out.Coeffs[i], res)
	}
}

// SetCoeffsInt64 fills every limb of p from the signed coefficient vector
// v (length ≤ N), zero-padding the tail. Negative values become residues.
//
//lint:noalloc
func (r *Ring) SetCoeffsInt64(v []int64, p Poly) {
	if len(v) > r.N {
		panic("ring: coefficient vector longer than N")
	}
	for i := range p.Coeffs {
		m := r.Moduli[i]
		pi := p.Coeffs[i]
		for j := range pi {
			pi[j] = 0
		}
		for j, x := range v {
			pi[j] = m.ReduceInt64(x)
		}
	}
}
