package ring

import "testing"

func testRing(t testing.TB, logN, limbs int) *Ring {
	t.Helper()
	primes, err := GenerateNTTPrimes(55, logN, limbs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(logN, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func randomPoly(r *Ring, seed uint64) Poly {
	s := NewSampler(r, seed)
	p := r.NewPoly()
	s.Uniform(p)
	return p
}

func TestNTTRoundTrip(t *testing.T) {
	for _, logN := range []int{4, 8, 11} {
		r := testRing(t, logN, 3)
		p := randomPoly(r, 42)
		q := p.Clone()
		r.NTT(q)
		r.INTT(q)
		if !p.Equal(q) {
			t.Fatalf("logN=%d NTT round trip mismatch", logN)
		}
	}
}

func TestNTTMatchesNaiveConvolution(t *testing.T) {
	for _, logN := range []int{4, 6, 9} {
		r := testRing(t, logN, 2)
		a := randomPoly(r, 1)
		b := randomPoly(r, 2)

		want := r.NewPoly()
		r.MulPolyNaive(a, b, want)

		an, bn := a.Clone(), b.Clone()
		r.NTT(an)
		r.NTT(bn)
		got := r.NewPoly()
		r.MulCoeffs(an, bn, got)
		r.INTT(got)

		if !got.Equal(want) {
			t.Fatalf("logN=%d NTT convolution != naive negacyclic convolution", logN)
		}
	}
}

func TestNTTNegacyclicWrap(t *testing.T) {
	// X^(N-1) · X = X^N = -1: the product must be the constant -1.
	r := testRing(t, 5, 1)
	n := r.N
	a := r.NewPoly()
	b := r.NewPoly()
	for i := range r.Moduli {
		a.Coeffs[i][n-1] = 1
		b.Coeffs[i][1] = 1
	}
	r.NTT(a)
	r.NTT(b)
	out := r.NewPoly()
	r.MulCoeffs(a, b, out)
	r.INTT(out)
	for i, m := range r.Moduli {
		if out.Coeffs[i][0] != m.Q-1 {
			t.Fatalf("limb %d: constant term %d, want q-1=%d", i, out.Coeffs[i][0], m.Q-1)
		}
		for j := 1; j < n; j++ {
			if out.Coeffs[i][j] != 0 {
				t.Fatalf("limb %d coeff %d nonzero", i, j)
			}
		}
	}
}

func TestNTTLinearity(t *testing.T) {
	r := testRing(t, 7, 2)
	a := randomPoly(r, 10)
	b := randomPoly(r, 11)
	sum := r.NewPoly()
	r.Add(a, b, sum)
	r.NTT(sum)

	an, bn := a.Clone(), b.Clone()
	r.NTT(an)
	r.NTT(bn)
	sum2 := r.NewPoly()
	r.Add(an, bn, sum2)

	if !sum.Equal(sum2) {
		t.Fatal("NTT is not additive")
	}
}

func TestGenerateNTTPrimes(t *testing.T) {
	primes, err := GenerateNTTPrimes(50, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, q := range primes {
		if seen[q] {
			t.Fatalf("duplicate prime %d", q)
		}
		seen[q] = true
		if !IsPrime(q) {
			t.Fatalf("%d is not prime", q)
		}
		if (q-1)%(2<<12) != 0 {
			t.Fatalf("%d not 1 mod 2N", q)
		}
		if q>>49 == 0 || q>>50 != 0 {
			t.Fatalf("%d is not 50 bits", q)
		}
	}
	if _, err := GenerateNTTPrimes(3, 12, 1); err == nil {
		t.Fatal("expected error for tiny bit size")
	}
	if _, err := GenerateNTTPrimes(10, 12, 50); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

func TestRootOfUnityOrders(t *testing.T) {
	for _, q := range []uint64{12289, 65537} {
		m := NewModulus(q)
		for n := uint64(2); n <= 128 && (q-1)%n == 0; n *= 2 {
			psi := RootOfUnity(q, n)
			if m.Pow(psi, n) != 1 {
				t.Fatalf("psi^%d != 1 mod %d", n, q)
			}
			if m.Pow(psi, n/2) == 1 {
				t.Fatalf("psi order divides %d mod %d: not primitive", n/2, q)
			}
		}
	}
}

func TestSubRing(t *testing.T) {
	r := testRing(t, 6, 3)
	sr := r.SubRing(2)
	if sr.Level() != 2 || sr.N != r.N {
		t.Fatal("SubRing shape wrong")
	}
	p := randomPoly(sr, 5)
	q := p.Clone()
	sr.NTT(q)
	sr.INTT(q)
	if !p.Equal(q) {
		t.Fatal("SubRing NTT broken")
	}
}

func BenchmarkNTT(b *testing.B) {
	for _, logN := range []int{12, 13, 15} {
		r := testRing(b, logN, 1)
		p := randomPoly(r, 9)
		b.Run(sizeName(logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.NTT(p)
			}
		})
	}
}

// BenchmarkNTTSchedule compares the radix-8 default against the retained
// radix-4 reference schedule, per single-limb transform.
func BenchmarkNTTSchedule(b *testing.B) {
	for _, logN := range []int{7, 11, 13} {
		r := testRing(b, logN, 1)
		p := randomPoly(r, 9)
		tab := r.Tables[0]
		b.Run("fwd-r8/"+sizeName(logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab.Forward(p.Coeffs[0])
			}
		})
		b.Run("fwd-r4/"+sizeName(logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab.ForwardRadix4(p.Coeffs[0])
			}
		})
		b.Run("inv-r8/"+sizeName(logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab.Inverse(p.Coeffs[0])
			}
		})
		b.Run("inv-r4/"+sizeName(logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab.InverseRadix4(p.Coeffs[0])
			}
		})
	}
}

func sizeName(logN int) string {
	return "N=2^" + string(rune('0'+logN/10)) + string(rune('0'+logN%10))
}

func BenchmarkMulCoeffs(b *testing.B) {
	r := testRing(b, 13, 4)
	p := randomPoly(r, 1)
	q := randomPoly(r, 2)
	out := r.NewPoly()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.MulCoeffs(p, q, out)
	}
}
