package ring

import "testing"

func TestAutomorphismIdentity(t *testing.T) {
	r := testRing(t, 6, 2)
	p := randomPoly(r, 3)
	out := r.NewPoly()
	r.Automorphism(p, 1, out)
	if !p.Equal(out) {
		t.Fatal("X -> X^1 is not the identity")
	}
}

func TestAutomorphismComposition(t *testing.T) {
	// σ_g1 ∘ σ_g2 = σ_{g1·g2 mod 2N}.
	r := testRing(t, 6, 1)
	twoN := uint64(2 * r.N)
	p := randomPoly(r, 4)
	g1, g2 := uint64(5), uint64(2*r.N-1)
	t1 := r.NewPoly()
	t2 := r.NewPoly()
	r.Automorphism(p, g2, t1)
	r.Automorphism(t1, g1, t2)

	direct := r.NewPoly()
	r.Automorphism(p, g1*g2%twoN, direct)
	if !t2.Equal(direct) {
		t.Fatal("automorphism composition law violated")
	}
}

func TestAutomorphismIsRingHomomorphism(t *testing.T) {
	// σ(a·b) = σ(a)·σ(b) for negacyclic multiplication.
	r := testRing(t, 5, 1)
	a := randomPoly(r, 5)
	b := randomPoly(r, 6)
	g := GaloisElementForRotation(r.N, 3)

	prod := r.NewPoly()
	r.MulPolyNaive(a, b, prod)
	sigmaProd := r.NewPoly()
	r.Automorphism(prod, g, sigmaProd)

	sa, sb := r.NewPoly(), r.NewPoly()
	r.Automorphism(a, g, sa)
	r.Automorphism(b, g, sb)
	prodSigma := r.NewPoly()
	r.MulPolyNaive(sa, sb, prodSigma)

	if !sigmaProd.Equal(prodSigma) {
		t.Fatal("automorphism is not multiplicative")
	}
}

func TestAutomorphismInverse(t *testing.T) {
	r := testRing(t, 6, 1)
	p := randomPoly(r, 7)
	g := GaloisElementForRotation(r.N, 1)
	gInv := GaloisElementForRotation(r.N, -1)
	tmp, back := r.NewPoly(), r.NewPoly()
	r.Automorphism(p, g, tmp)
	r.Automorphism(tmp, gInv, back)
	if !p.Equal(back) {
		t.Fatal("rotation by +1 then -1 is not identity")
	}
}

func TestGaloisElements(t *testing.T) {
	n := 64
	if g := GaloisElementForRotation(n, 0); g != 1 {
		t.Fatalf("rotation 0 gave %d", g)
	}
	if g := GaloisElementForRotation(n, 1); g != 5 {
		t.Fatalf("rotation 1 gave %d", g)
	}
	// Order of 5 mod 2N is N/2: rotating by N/2 wraps to identity.
	if g := GaloisElementForRotation(n, n/2); g != 1 {
		t.Fatalf("rotation N/2 gave %d, want 1", g)
	}
	if g := GaloisElementConjugate(n); g != uint64(2*n-1) {
		t.Fatalf("conjugate element %d", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("even galois element accepted")
		}
	}()
	AutomorphismIndex(n, 4)
}

func TestAutomorphismPermutationIsBijective(t *testing.T) {
	n := 128
	for _, g := range []uint64{5, 25, uint64(2*n - 1), 3} {
		dst, _ := AutomorphismIndex(n, g)
		seen := make([]bool, n)
		for _, d := range dst {
			if seen[d] {
				t.Fatalf("g=%d: duplicate destination %d", g, d)
			}
			seen[d] = true
		}
	}
}
