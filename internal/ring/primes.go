package ring

import (
	"fmt"
	"math/big"
)

// IsPrime reports whether q is prime. It delegates to math/big's
// Baillie-PSW + Miller-Rabin test, which is deterministic for 64-bit
// inputs in practice.
func IsPrime(q uint64) bool {
	return new(big.Int).SetUint64(q).ProbablyPrime(20)
}

// GenerateNTTPrimes returns count distinct primes of (approximately)
// bitSize bits that are congruent to 1 mod 2N, i.e. primes that support a
// negacyclic NTT of length N. Candidates are scanned downward from the
// largest value of the requested size, so the i-th prime of a given
// (bitSize, N) request is deterministic.
func GenerateNTTPrimes(bitSize, logN, count int) ([]uint64, error) {
	if bitSize < 4 || bitSize > MaxModulusBits {
		return nil, fmt.Errorf("ring: prime bit size %d out of range [4,%d]", bitSize, MaxModulusBits)
	}
	if logN < 1 || logN > 17 {
		return nil, fmt.Errorf("ring: logN %d out of range [1,17]", logN)
	}
	step := uint64(2) << uint(logN) // 2N
	// Largest multiple of 2N at or below 2^bitSize - 1, plus 1.
	upper := uint64(1)<<uint(bitSize) - 1
	cand := (upper/step)*step + 1
	lower := uint64(1) << uint(bitSize-1)

	primes := make([]uint64, 0, count)
	for cand > lower && len(primes) < count {
		if IsPrime(cand) {
			primes = append(primes, cand)
		}
		cand -= step
	}
	if len(primes) < count {
		return nil, fmt.Errorf("ring: only %d/%d NTT primes of %d bits for logN=%d", len(primes), count, bitSize, logN)
	}
	return primes, nil
}

// PrimitiveRoot returns a generator of the multiplicative group Z_q^*,
// given the prime q. It factors q-1 by trial division (fine for the
// word-sized moduli used here) and tests candidates.
func PrimitiveRoot(q uint64) uint64 {
	m := NewModulus(q)
	factors := distinctPrimeFactors(q - 1)
	for g := uint64(2); ; g++ {
		ok := true
		for _, f := range factors {
			if m.Pow(g, (q-1)/f) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g
		}
	}
}

// RootOfUnity returns a primitive n-th root of unity mod the prime q.
// It requires n | q-1 and panics otherwise.
func RootOfUnity(q, n uint64) uint64 {
	if (q-1)%n != 0 {
		panic(fmt.Sprintf("ring: %d does not divide %d-1", n, q))
	}
	m := NewModulus(q)
	g := PrimitiveRoot(q)
	psi := m.Pow(g, (q-1)/n)
	// Sanity: psi^(n/2) must be != 1 for primitivity (n is a power of two
	// in all our uses, but guard generally via full order check).
	if m.Pow(psi, n) != 1 {
		panic("ring: root of unity order mismatch")
	}
	for _, f := range distinctPrimeFactors(n) {
		if m.Pow(psi, n/f) == 1 {
			panic("ring: root of unity not primitive")
		}
	}
	return psi
}

func distinctPrimeFactors(n uint64) []uint64 {
	var fs []uint64
	for p := uint64(2); p*p <= n; p++ {
		if n%p == 0 {
			fs = append(fs, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}
