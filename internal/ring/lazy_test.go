package ring

import (
	"math/rand/v2"
	"testing"
)

// The lazy-reduction transforms promise bit-identity with a fully-reduced
// reference NTT: same tables, same layer order, but every butterfly
// output reduced to canonical [0, q) immediately. These tests pin that
// contract across the test-scale prime chain, the small classic primes,
// the 61-bit boundary, and every ring size the layer bookkeeping
// distinguishes (radix-2 peel, radix-4 stages, fused first/last layers).

// refForward is the fully-reduced Cooley-Tukey negacyclic forward NTT.
func refForward(t *NTTTable, p []uint64) {
	m := t.M
	n := t.N
	for length := n >> 1; length >= 1; length >>= 1 {
		for start, k := 0, n/(length<<1); start < n; start, k = start+(length<<1), k+1 {
			w := t.psiFwd[k]
			for i := start; i < start+length; i++ {
				u, v := p[i], m.Mul(p[i+length], w)
				p[i] = m.Add(u, v)
				p[i+length] = m.Sub(u, v)
			}
		}
	}
}

// refInverse is the fully-reduced Gentleman-Sande inverse, with the 1/N
// scaling as a separate final pass.
func refInverse(t *NTTTable, p []uint64) {
	m := t.M
	n := t.N
	for length := 1; length <= n>>1; length <<= 1 {
		for start, k := 0, n/(length<<1); start < n; start, k = start+(length<<1), k+1 {
			w := t.psiInv[k]
			for i := start; i < start+length; i++ {
				u, v := p[i], p[i+length]
				p[i] = m.Add(u, v)
				p[i+length] = m.Mul(m.Sub(u, v), w)
			}
		}
	}
	for i := range p {
		p[i] = m.Mul(p[i], t.nInv)
	}
}

// lazyTestPrimes returns the moduli the bit-identity sweep covers for a
// given ring size: the full test-scale chain (50-bit), the classic small
// primes when they support 2N-th roots, and a prime at the 61-bit
// MaxModulusBits boundary where the 4q headroom argument is tightest.
func lazyTestPrimes(t *testing.T, logN int) []uint64 {
	t.Helper()
	ps, err := GenerateNTTPrimes(50, logN, 6)
	if err != nil {
		t.Fatal(err)
	}
	boundary, err := GenerateNTTPrimes(61, logN, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps = append(ps, boundary...)
	n := uint64(1) << uint(logN)
	for _, q := range []uint64{12289, 65537} {
		if (q-1)%(2*n) == 0 {
			ps = append(ps, q)
		}
	}
	return ps
}

// lazyTestInputs generates the adversarial coefficient vectors: impulse,
// all-zero, all q-1 (maximal lazy growth), alternating extremes, and
// seeded random fills.
func lazyTestInputs(n int, q uint64) [][]uint64 {
	var ins [][]uint64
	impulse := make([]uint64, n)
	impulse[n-1] = q - 1
	ins = append(ins, impulse, make([]uint64, n))
	maxed := make([]uint64, n)
	alt := make([]uint64, n)
	for i := range maxed {
		maxed[i] = q - 1
		if i&1 == 0 {
			alt[i] = q - 1
		}
	}
	ins = append(ins, maxed, alt)
	rng := rand.New(rand.NewPCG(uint64(n), q))
	for s := 0; s < 3; s++ {
		r := make([]uint64, n)
		for i := range r {
			r[i] = rng.Uint64() % q
		}
		ins = append(ins, r)
	}
	return ins
}

func TestLazyNTTBitIdentity(t *testing.T) {
	for _, logN := range []int{1, 2, 3, 4, 5, 6, 7, 8, 10} {
		n := 1 << uint(logN)
		for _, q := range lazyTestPrimes(t, logN) {
			tab := NewNTTTable(q, logN)
			for ci, in := range lazyTestInputs(n, q) {
				got := append([]uint64(nil), in...)
				want := append([]uint64(nil), in...)
				tab.Forward(got)
				refForward(tab, want)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("forward logN=%d q=%d case=%d: coeff %d = %d, reference %d", logN, q, ci, i, got[i], want[i])
					}
				}
				// Inverse bit-identity on the (arbitrary canonical) vector.
				got = append([]uint64(nil), in...)
				want = append([]uint64(nil), in...)
				tab.Inverse(got)
				refInverse(tab, want)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("inverse logN=%d q=%d case=%d: coeff %d = %d, reference %d", logN, q, ci, i, got[i], want[i])
					}
				}
				// And the round trip is the identity.
				rt := append([]uint64(nil), in...)
				tab.Forward(rt)
				tab.Inverse(rt)
				for i := range rt {
					if rt[i] != in[i] {
						t.Fatalf("roundtrip logN=%d q=%d case=%d: coeff %d = %d, want %d", logN, q, ci, i, rt[i], in[i])
					}
				}
			}
		}
	}
}

// TestRadix4ReferenceBitIdentity pins the retained radix-4 schedule
// (ForwardRadix4/InverseRadix4, the benchmark reference) to the same
// fully-reduced oracle, across every leftover-layer combination the
// radix-4 bookkeeping distinguishes.
func TestRadix4ReferenceBitIdentity(t *testing.T) {
	for _, logN := range []int{1, 2, 3, 4, 5, 6, 7, 8, 10} {
		n := 1 << uint(logN)
		for _, q := range lazyTestPrimes(t, logN) {
			tab := NewNTTTable(q, logN)
			for ci, in := range lazyTestInputs(n, q) {
				got := append([]uint64(nil), in...)
				want := append([]uint64(nil), in...)
				tab.ForwardRadix4(got)
				refForward(tab, want)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("forward-r4 logN=%d q=%d case=%d: coeff %d = %d, reference %d", logN, q, ci, i, got[i], want[i])
					}
				}
				got = append([]uint64(nil), in...)
				want = append([]uint64(nil), in...)
				tab.InverseRadix4(got)
				refInverse(tab, want)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("inverse-r4 logN=%d q=%d case=%d: coeff %d = %d, reference %d", logN, q, ci, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestLazyNTTOutputCanonical checks the exported entry points never leak
// extended-range residues, even from maximal inputs.
func TestLazyNTTOutputCanonical(t *testing.T) {
	for _, logN := range []int{1, 2, 3, 4, 5, 7, 10} {
		n := 1 << uint(logN)
		for _, q := range lazyTestPrimes(t, logN) {
			tab := NewNTTTable(q, logN)
			for ci, in := range lazyTestInputs(n, q) {
				p := append([]uint64(nil), in...)
				tab.Forward(p)
				for i, v := range p {
					if v >= q {
						t.Fatalf("forward logN=%d q=%d case=%d: coeff %d = %d out of range", logN, q, ci, i, v)
					}
				}
				tab.Inverse(p)
				for i, v := range p {
					if v >= q {
						t.Fatalf("inverse logN=%d q=%d case=%d: coeff %d = %d out of range", logN, q, ci, i, v)
					}
				}
			}
		}
	}
}

// TestVecKernelsMatchScalar pins every vector kernel to the scalar
// Modulus method it batches, including at the 61-bit boundary.
func TestVecKernelsMatchScalar(t *testing.T) {
	const n = 1 << 10
	for _, q := range lazyTestPrimes(t, 10) {
		m := NewModulus(q)
		rng := rand.New(rand.NewPCG(q, 77))
		a := make([]uint64, n)
		b := make([]uint64, n)
		raw := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64() % q
			b[i] = rng.Uint64() % q
			raw[i] = rng.Uint64() // arbitrary, for ReduceVec / Shoup inputs
		}
		// Force extremes into the first slots.
		a[0], b[0] = q-1, q-1
		a[1], b[1] = 0, q-1
		raw[0], raw[1] = ^uint64(0), 0

		out := make([]uint64, n)
		check := func(name string, want func(i int) uint64) {
			t.Helper()
			for i := range out {
				if w := want(i); out[i] != w {
					t.Fatalf("%s q=%d: index %d = %d, want %d", name, q, i, out[i], w)
				}
			}
		}

		m.AddVec(a, b, out)
		check("AddVec", func(i int) uint64 { return m.Add(a[i], b[i]) })
		m.SubVec(a, b, out)
		check("SubVec", func(i int) uint64 { return m.Sub(a[i], b[i]) })
		m.NegVec(a, out)
		check("NegVec", func(i int) uint64 { return m.Neg(a[i]) })
		m.ReduceVec(raw, out)
		check("ReduceVec", func(i int) uint64 { return m.Reduce(raw[i]) })
		m.MulVec(a, b, out)
		check("MulVec", func(i int) uint64 { return m.Mul(a[i], b[i]) })

		copy(out, b)
		m.MulAddVec(a, b, out)
		check("MulAddVec", func(i int) uint64 { return m.Add(b[i], m.Mul(a[i], b[i])) })

		w := a[2] // fixed canonical operand
		ws := m.ShoupPrecomp(w)
		m.MulShoupVec(raw, w, ws, out)
		check("MulShoupVec", func(i int) uint64 { return m.MulShoup(raw[i], w, ws) })

		m.MulShoupLazyVec(raw, w, ws, out)
		for i := range out {
			if out[i] >= 2*q {
				t.Fatalf("MulShoupLazyVec q=%d: index %d = %d outside [0, 2q)", q, i, out[i])
			}
			if r := out[i] % q; r != m.MulShoup(raw[i], w, ws) {
				t.Fatalf("MulShoupLazyVec q=%d: index %d incongruent", q, i)
			}
		}

		copy(out, b)
		m.MulShoupAddVec(a, w, ws, out)
		check("MulShoupAddVec", func(i int) uint64 { return m.Add(b[i], m.MulShoup(a[i], w, ws)) })

		bs := make([]uint64, n)
		m.ShoupPrecompVec(b, bs)
		for i := range bs {
			if bs[i] != m.ShoupPrecomp(b[i]) {
				t.Fatalf("ShoupPrecompVec q=%d: index %d = %d, want %d", q, i, bs[i], m.ShoupPrecomp(b[i]))
			}
		}
		m.MulShoupElemVec(raw, b, bs, out)
		check("MulShoupElemVec", func(i int) uint64 { return m.MulShoup(raw[i], b[i], bs[i]) })

		copy(out, a)
		m.MulShoupElemAddVec(raw, b, bs, out)
		check("MulShoupElemAddVec", func(i int) uint64 { return m.Add(a[i], m.MulShoup(raw[i], b[i], bs[i])) })

		rows := [][]uint64{raw, a, b}
		wsum := []uint64{a[2], b[3], q - 1} // extremes included
		wsumS := make([]uint64, len(wsum))
		m.ShoupPrecompVec(wsum, wsumS)
		sumRef := func(i int) uint64 {
			var s uint64
			for k := range rows {
				s = m.Add(s, m.MulShoup(rows[k][i], wsum[k], wsumS[k]))
			}
			return s
		}
		m.MulShoupSumVec(rows, wsum, wsumS, out)
		check("MulShoupSumVec", sumRef)

		copy(out, b)
		m.MulShoupSumAddVec(rows, wsum, wsumS, out)
		check("MulShoupSumAddVec", func(i int) uint64 { return m.Add(b[i], sumRef(i)) })

		lazy := make([]uint64, n)
		for i := range lazy {
			lazy[i] = a[i] + b[i]%q // < 2q
		}
		m.Reduce2QVec(lazy, out)
		check("Reduce2QVec", func(i int) uint64 { return m.Reduce2Q(lazy[i]) })

		m.AddLazyVec(a, b, out)
		check("AddLazyVec", func(i int) uint64 { return a[i] + b[i] })
	}
}
