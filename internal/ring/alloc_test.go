package ring

import "testing"

// The transforms are leaf kernels: they must never allocate, or the
// per-limb call volume of the evaluator would turn into GC pressure.
func TestNTTZeroAllocs(t *testing.T) {
	tab := NewNTTTable(557057, 10) // 2^10-friendly prime
	p := make([]uint64, tab.N)
	for i := range p {
		p[i] = uint64(i*i+1) % tab.M.Q
	}
	if n := testing.AllocsPerRun(100, func() { tab.Forward(p) }); n != 0 {
		t.Fatalf("Forward allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { tab.Inverse(p) }); n != 0 {
		t.Fatalf("Inverse allocates %v times per run, want 0", n)
	}
}
