package ring

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// testPrimes covers small, Fermat, and near-word-size NTT-friendly moduli.
var testPrimes = func() []uint64 {
	big60, err := GenerateNTTPrimes(60, 13, 2)
	if err != nil {
		panic(err)
	}
	return []uint64{12289, 65537, big60[0], big60[1]}
}()

func TestNewModulusRejectsBadInput(t *testing.T) {
	for _, q := range []uint64{0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewModulus(%d) did not panic", q)
				}
			}()
			NewModulus(q)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewModulus(2^62) did not panic")
			}
		}()
		NewModulus(1 << 62)
	}()
}

func TestModulusArithmeticAgainstBigInt(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, q := range testPrimes {
		m := NewModulus(q)
		bq := new(big.Int).SetUint64(q)
		for i := 0; i < 2000; i++ {
			a := rng.Uint64N(q)
			b := rng.Uint64N(q)
			ba := new(big.Int).SetUint64(a)
			bb := new(big.Int).SetUint64(b)

			if got, want := m.Add(a, b), new(big.Int).Mod(new(big.Int).Add(ba, bb), bq).Uint64(); got != want {
				t.Fatalf("q=%d Add(%d,%d)=%d want %d", q, a, b, got, want)
			}
			if got, want := m.Sub(a, b), new(big.Int).Mod(new(big.Int).Sub(ba, bb), bq).Uint64(); got != want {
				t.Fatalf("q=%d Sub(%d,%d)=%d want %d", q, a, b, got, want)
			}
			if got, want := m.Mul(a, b), new(big.Int).Mod(new(big.Int).Mul(ba, bb), bq).Uint64(); got != want {
				t.Fatalf("q=%d Mul(%d,%d)=%d want %d", q, a, b, got, want)
			}
		}
	}
}

func TestModulusMulShoup(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, q := range testPrimes {
		m := NewModulus(q)
		for i := 0; i < 1000; i++ {
			a := rng.Uint64N(q)
			w := rng.Uint64N(q)
			ws := m.ShoupPrecomp(w)
			if got, want := m.MulShoup(a, w, ws), m.Mul(a, w); got != want {
				t.Fatalf("q=%d MulShoup(%d,%d)=%d want %d", q, a, w, got, want)
			}
		}
	}
}

func TestModulusPowInv(t *testing.T) {
	for _, q := range testPrimes {
		m := NewModulus(q)
		rng := rand.New(rand.NewPCG(q, 7))
		for i := 0; i < 200; i++ {
			a := rng.Uint64N(q-1) + 1
			inv := m.Inv(a)
			if m.Mul(a, inv) != 1 {
				t.Fatalf("q=%d Inv(%d) broken", q, a)
			}
		}
		if m.Pow(2, 0) != 1 {
			t.Fatalf("q=%d Pow(2,0) != 1", q)
		}
		// Fermat's little theorem.
		if m.Pow(3%q, q-1) != 1 {
			t.Fatalf("q=%d Fermat failed", q)
		}
	}
}

func TestModulusReduceWideProperty(t *testing.T) {
	m := NewModulus(testPrimes[2])
	f := func(a, b uint64) bool {
		a %= m.Q
		b %= m.Q
		hiP, loP := new(big.Int).SetUint64(a), new(big.Int).SetUint64(b)
		want := new(big.Int).Mod(new(big.Int).Mul(hiP, loP), new(big.Int).SetUint64(m.Q)).Uint64()
		return m.Mul(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestModulusCentered(t *testing.T) {
	m := NewModulus(17)
	cases := map[uint64]int64{0: 0, 1: 1, 8: 8, 9: -8, 16: -1}
	for in, want := range cases {
		if got := m.Centered(in); got != want {
			t.Errorf("Centered(%d)=%d want %d", in, got, want)
		}
	}
	if got := m.ReduceInt64(-1); got != 16 {
		t.Errorf("ReduceInt64(-1)=%d want 16", got)
	}
	if got := m.ReduceInt64(-35); got != 16 {
		t.Errorf("ReduceInt64(-35)=%d want 16", got)
	}
}
