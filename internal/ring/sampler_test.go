package ring

import (
	"math"
	"testing"
)

func TestSamplerDeterminism(t *testing.T) {
	r := testRing(t, 8, 2)
	a := r.NewPoly()
	b := r.NewPoly()
	NewSampler(r, 99).Uniform(a)
	NewSampler(r, 99).Uniform(b)
	if !a.Equal(b) {
		t.Fatal("same seed produced different polynomials")
	}
	c := r.NewPoly()
	NewSampler(r, 100).Uniform(c)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical polynomials")
	}
}

func TestTernaryDense(t *testing.T) {
	r := testRing(t, 10, 1)
	s := NewSampler(r, 7)
	p := r.NewPoly()
	v := s.TernaryDense(p)
	counts := map[int64]int{}
	for j, x := range v {
		if x < -1 || x > 1 {
			t.Fatalf("coefficient %d out of {-1,0,1}: %d", j, x)
		}
		counts[x]++
		want := r.Moduli[0].ReduceInt64(x)
		if p.Coeffs[0][j] != want {
			t.Fatalf("residue mismatch at %d", j)
		}
	}
	n := float64(r.N)
	for _, k := range []int64{-1, 0, 1} {
		frac := float64(counts[k]) / n
		if frac < 0.25 || frac > 0.42 {
			t.Fatalf("ternary value %d frequency %.3f far from 1/3", k, frac)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	r := testRing(t, 12, 1)
	s := NewSampler(r, 8)
	p := r.NewPoly()
	v := s.Gaussian(DefaultSigma, p)
	var sum, sumSq float64
	maxAbs := 0.0
	for _, x := range v {
		f := float64(x)
		sum += f
		sumSq += f * f
		if math.Abs(f) > maxAbs {
			maxAbs = math.Abs(f)
		}
	}
	n := float64(len(v))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.3 {
		t.Fatalf("gaussian mean %.3f too far from 0", mean)
	}
	if std < 2.5 || std > 4.0 {
		t.Fatalf("gaussian std %.3f far from %.1f", std, DefaultSigma)
	}
	if maxAbs > 6*DefaultSigma+1 {
		t.Fatalf("gaussian tail beyond truncation: %.1f", maxAbs)
	}
}

func TestUniformIsWellSpread(t *testing.T) {
	r := testRing(t, 12, 1)
	p := r.NewPoly()
	NewSampler(r, 13).Uniform(p)
	q := float64(r.Moduli[0].Q)
	var sum float64
	for _, x := range p.Coeffs[0] {
		if x >= r.Moduli[0].Q {
			t.Fatal("uniform sample out of range")
		}
		sum += float64(x)
	}
	mean := sum / float64(r.N)
	if mean < 0.45*q || mean > 0.55*q {
		t.Fatalf("uniform mean %.3g not near q/2=%.3g", mean, q/2)
	}
}
