package qnn

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3, 4)
	x.Set(1, 2, 3, 5.5)
	if x.At(1, 2, 3) != 5.5 {
		t.Fatal("At/Set broken")
	}
	if x.Len() != 24 {
		t.Fatal("Len broken")
	}
	c := x.Clone()
	c.Set(0, 0, 0, 9)
	if x.At(0, 0, 0) == 9 {
		t.Fatal("Clone aliases")
	}
	it := NewIntTensor(2, 2, 2)
	it.Set(1, 1, 1, -3)
	td := it.To3D()
	if td[1][1][1] != -3 {
		t.Fatal("To3D broken")
	}
	if Argmax([]float64{1, 5, 2}) != 1 || ArgmaxInt([]int64{3, 1, 7}) != 2 {
		t.Fatal("argmax broken")
	}
}

func TestConvForwardAgainstManual(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	c := NewConv2D(1, 1, 2, 1, 0, rng)
	copy(c.Weight.W, []float64{1, 2, 3, 4})
	c.Bias.W[0] = 0.5
	x := NewTensor(1, 2, 2)
	copy(x.Data, []float64{1, 1, 1, 1})
	out := c.Forward(x, false)
	if out.H != 1 || out.W != 1 {
		t.Fatalf("out dims %dx%d", out.H, out.W)
	}
	if math.Abs(out.Data[0]-10.5) > 1e-12 {
		t.Fatalf("conv got %f want 10.5", out.Data[0])
	}
}

func TestDenseGradientCheck(t *testing.T) {
	// Numerical gradient check on a tiny dense layer.
	rng := rand.New(rand.NewPCG(2, 2))
	d := NewDense(4, 3, rng)
	x := NewVector(4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	label := 1
	loss := func() float64 {
		_, l := softmaxGrad(d.Forward(x, false), label)
		return l
	}
	out := d.Forward(x, true)
	grad, _ := softmaxGrad(out, label)
	d.Backward(grad)
	const eps = 1e-6
	for i := 0; i < len(d.Weight.W); i += 3 {
		orig := d.Weight.W[i]
		d.Weight.W[i] = orig + eps
		lp := loss()
		d.Weight.W[i] = orig - eps
		lm := loss()
		d.Weight.W[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-d.Weight.G[i]) > 1e-4 {
			t.Fatalf("weight %d: analytic %g numerical %g", i, d.Weight.G[i], num)
		}
	}
}

func TestConvGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	c := NewConv2D(2, 2, 3, 1, 1, rng)
	x := NewTensor(2, 4, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	d := NewDense(2*4*4, 3, rng)
	label := 2
	loss := func() float64 {
		_, l := softmaxGrad(d.Forward(c.Forward(x, false), false), label)
		return l
	}
	h := c.Forward(x, true)
	out := d.Forward(h, true)
	grad, _ := softmaxGrad(out, label)
	c.Backward(d.Backward(grad))
	const eps = 1e-6
	for i := 0; i < len(c.Weight.W); i += 13 {
		orig := c.Weight.W[i]
		c.Weight.W[i] = orig + eps
		lp := loss()
		c.Weight.W[i] = orig - eps
		lm := loss()
		c.Weight.W[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-c.Weight.G[i]) > 1e-4 {
			t.Fatalf("conv weight %d: analytic %g numerical %g", i, c.Weight.G[i], num)
		}
	}
}

func TestPoolLayers(t *testing.T) {
	x := NewTensor(1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	mp := (&MaxPool{K: 2}).Forward(x, false)
	if mp.At(0, 0, 0) != 5 || mp.At(0, 1, 1) != 15 {
		t.Fatalf("maxpool wrong: %v", mp.Data)
	}
	ap := (&AvgPool{K: 2}).Forward(x, false)
	if ap.At(0, 0, 0) != (0+1+4+5)/4.0 {
		t.Fatalf("avgpool wrong: %v", ap.Data)
	}
}

func TestSynthDigitsProperties(t *testing.T) {
	ds := SynthDigits(100, 1)
	if len(ds.Samples) != 100 || ds.Classes != 10 {
		t.Fatal("dataset shape wrong")
	}
	labels := map[int]int{}
	for _, s := range ds.Samples {
		labels[s.Label]++
		if s.X.C != 1 || s.X.H != 28 || s.X.W != 28 {
			t.Fatal("image shape wrong")
		}
		for _, v := range s.X.Data {
			if v < 0 || v > 1 {
				t.Fatal("pixel out of range")
			}
		}
	}
	for l := 0; l < 10; l++ {
		if labels[l] != 10 {
			t.Fatalf("label %d count %d", l, labels[l])
		}
	}
	// Same seed reproduces; different seed differs.
	a := SynthDigits(10, 2).Samples[3].X
	b := SynthDigits(10, 2).Samples[3].X
	c := SynthDigits(10, 3).Samples[3].X
	same, diff := true, false
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
		}
		if a.Data[i] != c.Data[i] {
			diff = true
		}
	}
	if !same || !diff {
		t.Fatal("dataset determinism broken")
	}
}

func TestSynthCIFARProperties(t *testing.T) {
	ds := SynthCIFAR(50, 4)
	if ds.Samples[0].X.C != 3 || ds.Samples[0].X.H != 32 {
		t.Fatal("cifar shape wrong")
	}
	// Different seeds share class structure: a linear probe trained on
	// one seed should beat chance on another; here we just check that
	// intra-class distance < inter-class distance on raw pixels.
	other := SynthCIFAR(50, 5)
	dist := func(a, b *Tensor) float64 {
		d := 0.0
		for i := range a.Data {
			x := a.Data[i] - b.Data[i]
			d += x * x
		}
		return d
	}
	intra, inter, ni, nj := 0.0, 0.0, 0, 0
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			d := dist(ds.Samples[i].X, other.Samples[j].X)
			if ds.Samples[i].Label == other.Samples[j].Label {
				intra += d
				ni++
			} else {
				inter += d
				nj++
			}
		}
	}
	if intra/float64(ni) >= inter/float64(nj) {
		t.Fatal("classes not structured: intra-class distance >= inter-class")
	}
}

func TestModelShapes(t *testing.T) {
	for _, name := range BenchmarkModels {
		net, err := ModelByName(name, 9)
		if err != nil {
			t.Fatal(err)
		}
		x := NewTensor(net.InC, net.InH, net.InW)
		out := net.Forward(x, false)
		if out.Len() != 10 {
			t.Fatalf("%s output size %d", name, out.Len())
		}
	}
	if _, err := ModelByName("VGG", 1); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := NewResNet(21, 1); err == nil {
		t.Fatal("bad depth accepted")
	}
}

func TestResNetLayerCount(t *testing.T) {
	// ResNet-20: 19 convolutions + 1 FC (paper Section 5.1), plus
	// projection shortcuts.
	net, _ := NewResNet(20, 1)
	convs, dense := 0, 0
	for _, b := range net.Blocks {
		for _, l := range b.Layers() {
			switch l.(type) {
			case *Conv2D:
				convs++
			case *Dense:
				dense++
			}
		}
	}
	// 1 stem + 18 block convs + 2 projection shortcuts.
	if convs != 21 || dense != 1 {
		t.Fatalf("ResNet-20 has %d convs, %d dense", convs, dense)
	}
}

func trainSmallMNIST(t testing.TB) (*Network, *Dataset, *Dataset) {
	t.Helper()
	train := SynthDigits(900, 11)
	test := SynthDigits(200, 12)
	net := NewMNISTNet(13)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	Train(net, train, cfg)
	return net, train, test
}

func TestTrainingLearns(t *testing.T) {
	net, _, test := trainSmallMNIST(t)
	acc := Accuracy(net, test)
	if acc < 0.8 {
		t.Fatalf("trained MNIST accuracy %.2f below 0.8", acc)
	}
}

func TestQuantizePreservesAccuracy(t *testing.T) {
	net, train, test := trainSmallMNIST(t)
	accF := Accuracy(net, test)
	for _, wb := range []int{7, 6} {
		cfg := DefaultQuantConfig()
		cfg.WBits = wb
		qn, err := Quantize(net, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		accQ := qn.AccuracyInt(test)
		if accQ < accF-0.05 {
			t.Fatalf("w%da7 accuracy %.3f much below float %.3f", wb, accQ, accF)
		}
	}
}

func TestNoisyInferenceTracksClean(t *testing.T) {
	net, train, test := trainSmallMNIST(t)
	qn, err := Quantize(net, train, DefaultQuantConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean := qn.AccuracyInt(test)
	noisy := qn.AccuracyNoisy(test, 8, 1)
	if noisy < clean-0.05 {
		t.Fatalf("e_ms-injected accuracy %.3f far below clean %.3f", noisy, clean)
	}
	// Absurd noise must hurt (sanity that injection is live).
	wrecked := qn.AccuracyNoisy(test, 1e6, 1)
	if wrecked > clean-0.1 {
		t.Fatalf("extreme noise did not reduce accuracy: %.3f vs %.3f", wrecked, clean)
	}
}

func TestQuantizedResidualScalesAlign(t *testing.T) {
	net, err := NewResNet(20, 21)
	if err != nil {
		t.Fatal(err)
	}
	calib := SynthCIFAR(8, 22)
	qn, err := Quantize(net, calib, DefaultQuantConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range qn.Blocks {
		r, ok := b.(*QResidual)
		if !ok {
			continue
		}
		bodyLast := r.Body[len(r.Body)-1].(*QConv)
		var shortScale float64
		if len(r.Shortcut) > 0 {
			shortScale = r.Shortcut[len(r.Shortcut)-1].(*QConv).OutScale
		} else {
			shortScale = bodyLast.InScale // identity branch carries input scale
		}
		_ = shortScale
		if bodyLast.Act != ActNone {
			t.Fatal("body's final conv must not fuse an activation (ReLU follows the add)")
		}
	}
	// Integer forward must run end to end.
	out := qn.ForwardInt(qn.QuantizeInput(calib.Samples[0].X))
	if out.Len() != 10 {
		t.Fatalf("quantized resnet output %d", out.Len())
	}
}

func TestQuantizeRejectsBadConfig(t *testing.T) {
	net := NewMNISTNet(1)
	ds := SynthDigits(4, 1)
	if _, err := Quantize(net, ds, QuantConfig{WBits: 1, ABits: 7}); err == nil {
		t.Fatal("wbits=1 accepted")
	}
	if _, err := Quantize(net, ds, QuantConfig{WBits: 7, ABits: 40}); err == nil {
		t.Fatal("abits=40 accepted")
	}
}

func TestQConvRemapFunction(t *testing.T) {
	q := &QConv{Act: ActReLU, Multiplier: 1.0 / 16, ActBits: 7}
	if q.Remap(-500) != 0 {
		t.Fatal("relu remap of negative not zero")
	}
	if q.Remap(160) != 10 {
		t.Fatalf("remap(160) = %d want 10", q.Remap(160))
	}
	if q.Remap(1<<20) != 63 {
		t.Fatal("remap does not clamp to 2^(a-1)-1")
	}
	q2 := &QConv{Act: ActNone, Multiplier: 1, ActBits: 7}
	if q2.Remap(-1000) != -63 {
		t.Fatal("signed clamp broken")
	}
}

func TestRoundDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{10, 4, 3}, {9, 4, 2}, {-10, 4, -3}, {-9, 4, -2}, {0, 4, 0}, {8, 4, 2},
	}
	for _, c := range cases {
		if got := roundDiv(c.a, c.b); got != c.want {
			t.Errorf("roundDiv(%d,%d)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestReadoutTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("ResNet feature extraction is slow; run without -short")
	}
	net, err := NewResNet(20, 31)
	if err != nil {
		t.Fatal(err)
	}
	train := SynthCIFAR(200, 32)
	test := SynthCIFAR(100, 33)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	cfg.LR = 0.1
	TrainReadout(net, train, cfg)
	acc := Accuracy(net, test)
	if acc < 0.4 {
		t.Fatalf("readout-trained ResNet-20 accuracy %.2f below 0.4 (chance is 0.1)", acc)
	}
	t.Logf("ResNet-20 readout accuracy on synth-CIFAR: %.3f", acc)
}
