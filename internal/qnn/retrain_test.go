package qnn

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"athena/internal/coeffenc"
)

func isoQNet() (*QNetwork, *QConv) {
	trunk := &QConv{
		Shape:      coeffenc.ConvShape{H: 4, W: 4, Cin: 1, Cout: 1, K: 1, Stride: 1, Pad: 0},
		Weights:    [][][][]int64{{{{1}}}},
		Bias:       []int64{0},
		Act:        ActReLU,
		Multiplier: 1,
		ActBits:    7,
		MaxAcc:     1000,
	}
	head := &QConv{
		Shape:      coeffenc.FCShape(16, 4),
		Weights:    make([][][][]int64, 4),
		Bias:       make([]int64, 4),
		Act:        ActNone,
		Multiplier: 1,
		ActBits:    7,
		IsDense:    true,
		MaxAcc:     1000,
	}
	for o := range head.Weights {
		head.Weights[o] = make([][][]int64, 16)
		for i := range head.Weights[o] {
			head.Weights[o][i] = [][]int64{{0}}
		}
	}
	qn := &QNetwork{Name: "iso", InC: 1, InH: 4, InW: 4, WBits: 7, ABits: 7, InScale: 1,
		Blocks: []QBlock{QSeq{trunk, head}}}
	return qn, head
}

func quadrantTask(n int, seed uint64) *Dataset {
	rng := rand.New(rand.NewPCG(seed, 2))
	ds := &Dataset{Classes: 4}
	for i := 0; i < n; i++ {
		label := i % 4
		x := NewTensor(1, 4, 4)
		oy, ox := (label/2)*2, (label%2)*2
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				x.Set(0, oy+dy, ox+dx, 40+float64(rng.IntN(20)))
			}
		}
		for j := range x.Data {
			x.Data[j] += float64(rng.IntN(5))
		}
		ds.Samples = append(ds.Samples, Sample{X: x, Label: label})
	}
	return ds
}

// RetrainHead must fit a linearly separable task to near-perfect
// accuracy through an identity trunk.
func TestRetrainHeadIsolated(t *testing.T) {
	qn, head := isoQNet()
	ds := quadrantTask(400, 1)
	if err := qn.RetrainHead(ds, 6, 0.3, 3); err != nil {
		t.Fatal(err)
	}
	after := qn.AccuracyInt(ds)
	if after < 0.95 {
		t.Fatalf("RetrainHead failed a separable task: %.2f", after)
	}
	if head.MaxAcc <= 0 || head.MaxAcc >= 32768 {
		t.Fatalf("head accumulator bound %d implausible", head.MaxAcc)
	}
	if head.Multiplier <= 0 {
		t.Fatalf("head multiplier %v", head.Multiplier)
	}
}

func TestRetrainHeadRejectsBadNetworks(t *testing.T) {
	qn := &QNetwork{Blocks: []QBlock{&QResidual{}}, ABits: 7, WBits: 7}
	if err := qn.RetrainHead(quadrantTask(8, 1), 1, 0.1, 1); err == nil {
		t.Fatal("non-QSeq tail accepted")
	}
}

// The residual join multiplier must requantize sums (no drift into the
// clamp) and the plaintext shadows must agree across the three
// implementations (Apply, noisy path, JoinRemap).
func TestResidualJoinMultiplier(t *testing.T) {
	r := &QResidual{ActBits: 7, Multiplier: 0.5}
	cases := map[int64]int64{-10: 0, 0: 0, 10: 5, 63: 32, 200: 63 /* clamped: 100 > 63 */}
	for in, want := range cases {
		if got := r.JoinRemap(in); got != want {
			t.Errorf("JoinRemap(%d) = %d want %d", in, got, want)
		}
	}
	// Zero/one multiplier = legacy clamp-only behaviour.
	r2 := &QResidual{ActBits: 4}
	if r2.JoinRemap(100) != 7 || r2.JoinRemap(-3) != 0 || r2.JoinRemap(5) != 5 {
		t.Fatal("legacy join behaviour broken")
	}
}

// Sigmoid/GELU fusion: quantized inference with fused non-linearities
// must track the float network.
func TestSigmoidGELUFusion(t *testing.T) {
	for _, act := range []Layer{&Sigmoid{}, &GELU{}} {
		rng := rand.New(rand.NewPCG(5, 6))
		net := &Network{
			Name: "act-test", InC: 1, InH: 6, InW: 6,
			Blocks: []Block{Seq{
				NewConv2D(3, 1, 3, 1, 1, rng),
				act,
				NewDense(3*6*6, 4, rng),
			}},
		}
		ds := quadrant6Task(300, 9)
		cfg := DefaultTrainConfig()
		cfg.Epochs = 6
		Train(net, ds, cfg)
		accF := Accuracy(net, ds)
		qn, err := Quantize(net, ds, DefaultQuantConfig())
		if err != nil {
			t.Fatal(err)
		}
		accQ := qn.AccuracyInt(ds)
		if accQ < accF-0.08 {
			t.Fatalf("%s: quantized %.2f far below float %.2f", act.Name(), accQ, accF)
		}
		// The fused op must carry the right activation kind.
		first := qn.Convs()[0]
		switch act.(type) {
		case *Sigmoid:
			if first.Act != ActSigmoid {
				t.Fatal("sigmoid not fused")
			}
			// Sigmoid outputs are non-negative.
			if first.Remap(-10000) < 0 {
				t.Fatal("sigmoid remap negative")
			}
		case *GELU:
			if first.Act != ActGELU {
				t.Fatal("gelu not fused")
			}
		}
	}
}

func quadrant6Task(n int, seed uint64) *Dataset {
	rng := rand.New(rand.NewPCG(seed, 3))
	ds := &Dataset{Classes: 4}
	for i := 0; i < n; i++ {
		label := i % 4
		x := NewTensor(1, 6, 6)
		oy, ox := (label/2)*3, (label%2)*3
		for dy := 0; dy < 3; dy++ {
			for dx := 0; dx < 3; dx++ {
				x.Set(0, oy+dy, ox+dx, 0.7+0.3*rng.Float64())
			}
		}
		for j := range x.Data {
			x.Data[j] += rng.NormFloat64() * 0.05
		}
		ds.Samples = append(ds.Samples, Sample{X: x, Label: label})
	}
	return ds
}

func TestGELUBackwardGradientCheck(t *testing.T) {
	g := &GELU{}
	x := NewVector(5)
	copy(x.Data, []float64{-2, -0.5, 0, 0.7, 2.1})
	out := g.Forward(x, true)
	grad := NewVector(5)
	for i := range grad.Data {
		grad.Data[i] = 1
	}
	gin := g.Backward(grad)
	const eps = 1e-6
	for i := range x.Data {
		xp := x.Data[i] + eps
		xm := x.Data[i] - eps
		num := (geluF(xp) - geluF(xm)) / (2 * eps)
		if d := num - gin.Data[i]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("gelu grad at %v: analytic %v numerical %v", x.Data[i], gin.Data[i], num)
		}
	}
	_ = out
}

// JSON model serialization must round-trip all structure exactly,
// including residual blocks and fused activations.
func TestQNetworkJSONRoundTrip(t *testing.T) {
	// Build via quantization so scales and calibration fields are real.
	net, _ := NewResNet(20, 17)
	ds := SynthCIFAR(6, 18)
	qc := DefaultQuantConfig()
	qc.CalibSamples = 4
	qn, err := Quantize(net, ds, qc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := qn.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != qn.Name || back.WBits != qn.WBits || back.InScale != qn.InScale {
		t.Fatal("header changed")
	}
	if len(back.Convs()) != len(qn.Convs()) {
		t.Fatal("conv count changed")
	}
	// Integer execution must be identical.
	x := qn.QuantizeInput(ds.Samples[0].X)
	a := qn.ForwardInt(x.Clone())
	b := back.ForwardInt(x.Clone())
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("output %d differs after JSON round trip", i)
		}
	}
	// Bad format must be rejected.
	if _, err := ReadJSONNetwork(bytes.NewReader([]byte(`{"format":"nope"}`))); err == nil {
		t.Fatal("wrong format accepted")
	}
}
