package qnn

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"athena/internal/coeffenc"
)

// newHeadRNG builds the deterministic shuffler RetrainHead uses.
func newHeadRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x4ead)) }

// QuantConfig controls post-training quantization.
type QuantConfig struct {
	WBits        int     // weight bits (e.g. 7 for w7a7)
	ABits        int     // activation bits
	CalibSamples int     // calibration set size (drawn from the dataset head)
	AccMargin    float64 // safety factor on the calibrated accumulator bound
	// AccCap, when positive, bounds every layer's accumulator magnitude:
	// layers whose calibrated bound exceeds it get their weight scale
	// coarsened until the bound fits. This is how the framework
	// guarantees the MAC results stay inside the plaintext modulus t
	// (the Fig. 4 requirement); set it to just under t/2.
	AccCap int64
	// WClip, in (0, 1], sets the percentile of |w| used as the weight
	// scale anchor; weights beyond it saturate. 1 (or 0, the zero value)
	// anchors on the maximum. Percentile clipping protects per-tensor
	// quantization from the rare outlier weights of folded/standardized
	// layers (standard PTQ calibration practice).
	WClip float64
	// AClip is the same for activation ranges: the calibration percentile
	// used as each layer's output scale anchor (activations beyond it
	// saturate at the remap clamp). 1/0 anchors on the maximum.
	AClip float64
}

// DefaultQuantConfig returns the paper's primary w7a7 setting.
func DefaultQuantConfig() QuantConfig {
	return QuantConfig{WBits: 7, ABits: 7, CalibSamples: 32, AccMargin: 1.3, WClip: 0.999}
}

// Quantize converts a trained float network into an integer QNetwork by
// symmetric per-tensor post-training quantization, calibrating every
// activation scale on calib's leading samples. ReLU layers are fused
// into the preceding linear layer's remap, exactly as the Athena FBS
// merges activation and requantization.
func Quantize(net *Network, calib *Dataset, cfg QuantConfig) (*QNetwork, error) {
	if cfg.WBits < 2 || cfg.WBits > 16 || cfg.ABits < 2 || cfg.ABits > 16 {
		return nil, fmt.Errorf("qnn: quantization bits out of range: w%da%d", cfg.WBits, cfg.ABits)
	}
	if cfg.CalibSamples < 1 {
		cfg.CalibSamples = 16
	}
	if cfg.AccMargin <= 0 {
		cfg.AccMargin = 1.3
	}
	nCal := cfg.CalibSamples
	if nCal > len(calib.Samples) {
		nCal = len(calib.Samples)
	}
	st := &quantState{
		cfg:  cfg,
		aMax: int64(1)<<(cfg.ABits-1) - 1,
		wMax: int64(1)<<(cfg.WBits-1) - 1,
		cur:  make([]*Tensor, nCal),
	}
	for i := 0; i < nCal; i++ {
		st.cur[i] = calib.Samples[i].X
	}
	// Input scale from calibration range.
	st.curScale = maxAbsAll(st.cur) / float64(st.aMax)
	if st.curScale == 0 {
		st.curScale = 1.0 / float64(st.aMax)
	}
	qn := &QNetwork{
		Name: net.Name,
		InC:  net.InC, InH: net.InH, InW: net.InW,
		WBits: cfg.WBits, ABits: cfg.ABits,
		InScale: st.curScale,
	}
	for _, b := range net.Blocks {
		qb, err := st.quantizeBlock(b)
		if err != nil {
			return nil, err
		}
		qn.Blocks = append(qn.Blocks, qb)
	}
	return qn, nil
}

type quantState struct {
	cfg        QuantConfig
	aMax, wMax int64
	cur        []*Tensor // calibration activations at the current point
	curScale   float64
}

func maxAbsAll(ts []*Tensor) float64 {
	m := 0.0
	for _, t := range ts {
		if v := t.AbsMax(); v > m {
			m = v
		}
	}
	return m
}

func (st *quantState) quantizeBlock(b Block) (QBlock, error) {
	switch blk := b.(type) {
	case Seq:
		ops, _, err := st.quantizeSeq(blk, -1)
		return ops, err
	case *Residual:
		return st.quantizeResidual(blk)
	default:
		return nil, fmt.Errorf("qnn: unsupported block type %T", b)
	}
}

// quantizeSeq walks a layer sequence, fusing conv/dense+ReLU pairs. If
// forceScale >= 0, the final linear layer's output scale is pinned (used
// to align residual branches). It returns the resulting QSeq and the
// final activation scale.
func (st *quantState) quantizeSeq(layers Seq, forceScale float64) (QSeq, float64, error) {
	var ops QSeq
	for i := 0; i < len(layers); i++ {
		switch l := layers[i].(type) {
		case *Conv2D, *Dense:
			act := ActNone
			if i+1 < len(layers) {
				switch layers[i+1].(type) {
				case *ReLU:
					act = ActReLU
					i++
				case *Sigmoid:
					act = ActSigmoid
					i++
				case *GELU:
					act = ActGELU
					i++
				}
			}
			pin := -1.0
			if forceScale >= 0 && i == len(layers)-1 {
				pin = forceScale
			}
			op, err := st.quantizeLinear(l, act, pin)
			if err != nil {
				return nil, 0, err
			}
			ops = append(ops, op)
		case *MaxPool:
			ops = append(ops, &QMaxPool{K: l.K})
			st.advanceFloat(l)
		case *AvgPool:
			ops = append(ops, &QAvgPool{K: l.K})
			st.advanceFloat(l)
		case *ReLU, *Sigmoid, *GELU:
			return nil, 0, fmt.Errorf("qnn: standalone activation (not after a linear layer) is unsupported")
		default:
			return nil, 0, fmt.Errorf("qnn: unsupported layer %T", l)
		}
	}
	return ops, st.curScale, nil
}

// advanceFloat pushes the calibration activations through a float layer
// that does not change quantization scale.
func (st *quantState) advanceFloat(l Layer) {
	for i, t := range st.cur {
		st.cur[i] = l.Forward(t, false)
	}
}

// quantizeLinear converts one Conv2D or Dense (+fused act) into a QConv.
func (st *quantState) quantizeLinear(l Layer, act Activation, pinScale float64) (*QConv, error) {
	var (
		shape   coeffenc.ConvShape
		weights [][][][]int64
		biasF   []float64
		isDense bool
		wAbs    float64
	)
	in := st.cur[0]
	switch lay := l.(type) {
	case *Conv2D:
		shape = coeffenc.ConvShape{H: in.H, W: in.W, Cin: lay.Cin, Cout: lay.Cout, K: lay.K, Stride: lay.Stride, Pad: lay.Pad}
		wAbs = absMax(lay.Weight.W)
		biasF = lay.Bias.W
	case *Dense:
		shape = coeffenc.FCShape(lay.In, lay.Out)
		wAbs = absMax(lay.Weight.W)
		biasF = lay.Bias.W
		isDense = true
	default:
		return nil, fmt.Errorf("qnn: not a linear layer: %T", l)
	}
	if clip := st.cfg.WClip; clip > 0 && clip < 1 {
		wAbs = percentileAbs(weightSlab(l), clip)
	}
	if wAbs == 0 {
		wAbs = 1
	}
	wScale := wAbs / float64(st.wMax)
	inScale := st.curScale

	// Quantize weights.
	qw := func(v float64) int64 {
		x := int64(math.Round(v / wScale))
		if x > st.wMax {
			x = st.wMax
		}
		if x < -st.wMax {
			x = -st.wMax
		}
		return x
	}
	switch lay := l.(type) {
	case *Conv2D:
		weights = make([][][][]int64, lay.Cout)
		for co := 0; co < lay.Cout; co++ {
			weights[co] = make([][][]int64, lay.Cin)
			for ci := 0; ci < lay.Cin; ci++ {
				weights[co][ci] = make([][]int64, lay.K)
				for i := 0; i < lay.K; i++ {
					weights[co][ci][i] = make([]int64, lay.K)
					for j := 0; j < lay.K; j++ {
						weights[co][ci][i][j] = qw(lay.w(co, ci, i, j))
					}
				}
			}
		}
	case *Dense:
		weights = make([][][][]int64, lay.Out)
		for o := 0; o < lay.Out; o++ {
			weights[o] = make([][][]int64, lay.In)
			for i := 0; i < lay.In; i++ {
				weights[o][i] = [][]int64{{qw(lay.Weight.W[o*lay.In+i])}}
			}
		}
	}
	bias := make([]int64, len(biasF))
	for i, b := range biasF {
		bias[i] = int64(math.Round(b / (inScale * wScale)))
	}

	// Calibrate the float output for the output scale (post-activation)
	// and the accumulator bound (pre-activation — negative sums matter
	// even when the activation later shrinks them), advancing the
	// calibration activations.
	outMax := 0.0
	preMax := 0.0
	var actSamples []float64
	for i, t := range st.cur {
		o := l.Forward(t, false)
		if v := o.AbsMax(); v > preMax {
			preMax = v
		}
		switch act {
		case ActReLU:
			for j, v := range o.Data {
				if v < 0 {
					o.Data[j] = 0
				}
			}
		case ActSigmoid:
			for j, v := range o.Data {
				o.Data[j] = 1 / (1 + math.Exp(-v))
			}
		case ActGELU:
			for j, v := range o.Data {
				o.Data[j] = geluF(v)
			}
		}
		if v := o.AbsMax(); v > outMax {
			outMax = v
		}
		// Subsample activations for percentile calibration.
		step := 1 + o.Len()/256
		for j := 0; j < o.Len(); j += step {
			actSamples = append(actSamples, o.Data[j])
		}
		st.cur[i] = o
	}
	if clip := st.cfg.AClip; clip > 0 && clip < 1 && len(actSamples) > 0 {
		if p := percentileAbs(actSamples, clip); p > 0 {
			outMax = p
		}
	}
	if outMax == 0 {
		outMax = 1
	}
	if preMax == 0 {
		preMax = 1
	}
	outScale := outMax / float64(st.aMax)
	if pinScale >= 0 {
		outScale = pinScale
	}

	q := &QConv{
		Shape:      shape,
		Weights:    weights,
		Bias:       bias,
		Act:        act,
		Multiplier: inScale * wScale / outScale,
		ActBits:    st.cfg.ABits,
		IsDense:    isDense,
		InScale:    inScale,
		WScale:     wScale,
		OutScale:   outScale,
	}
	// Accumulator bound from the calibrated float range (the float
	// pre-activation sums divided by the accumulator LSB), with margin.
	q.MaxAcc = int64(preMax/(inScale*wScale)*st.cfg.AccMargin) + 8

	// Enforce the plaintext-modulus cap by coarsening the weight scale
	// (Fig. 4: every layer's MAC range must fit t).
	if st.cfg.AccCap > 0 && q.MaxAcc > st.cfg.AccCap {
		factor := float64(q.MaxAcc) / float64(st.cfg.AccCap)
		wScale *= factor
		qw2 := func(v float64) int64 {
			x := int64(math.Round(v / wScale))
			if x > st.wMax {
				x = st.wMax
			}
			if x < -st.wMax {
				x = -st.wMax
			}
			return x
		}
		switch lay := l.(type) {
		case *Conv2D:
			for co := 0; co < lay.Cout; co++ {
				for ci := 0; ci < lay.Cin; ci++ {
					for i := 0; i < lay.K; i++ {
						for j := 0; j < lay.K; j++ {
							weights[co][ci][i][j] = qw2(lay.w(co, ci, i, j))
						}
					}
				}
			}
		case *Dense:
			for o := 0; o < lay.Out; o++ {
				for i := 0; i < lay.In; i++ {
					weights[o][i][0][0] = qw2(lay.Weight.W[o*lay.In+i])
				}
			}
		}
		for i, b := range biasF {
			bias[i] = int64(math.Round(b / (inScale * wScale)))
		}
		q.WScale = wScale
		q.Multiplier = inScale * wScale / outScale
		q.MaxAcc = int64(preMax/(inScale*wScale)*st.cfg.AccMargin) + 8
	}
	st.curScale = outScale
	return q, nil
}

// weightSlab returns the flat weight slice of a linear layer.
func weightSlab(l Layer) []float64 {
	switch lay := l.(type) {
	case *Conv2D:
		return lay.Weight.W
	case *Dense:
		return lay.Weight.W
	}
	return nil
}

// percentileAbs returns the q-th percentile of |xs|.
func percentileAbs(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	abs := make([]float64, len(xs))
	for i, v := range xs {
		if v < 0 {
			v = -v
		}
		abs[i] = v
	}
	sort.Float64s(abs)
	idx := int(q * float64(len(abs)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(abs) {
		idx = len(abs) - 1
	}
	return abs[idx]
}

func absMax(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

func (st *quantState) quantizeResidual(r *Residual) (QBlock, error) {
	inActs := st.cur
	inScale := st.curScale

	// Shortcut branch: identity keeps the input scale; a projection conv
	// gets a free output scale that the body is then pinned to.
	var (
		shortOps   QSeq
		shortScale float64
		shortActs  []*Tensor
	)
	if len(r.Shortcut) > 0 {
		st.cur = cloneTensors(inActs)
		st.curScale = inScale
		ops, sc, err := st.quantizeSeq(r.Shortcut, -1)
		if err != nil {
			return nil, err
		}
		shortOps, shortScale = ops, sc
		shortActs = st.cur
	} else {
		shortScale = inScale
		shortActs = inActs
	}

	// Body branch, pinned to the shortcut's scale so the integer add is
	// scale-consistent.
	st.cur = cloneTensors(inActs)
	st.curScale = inScale
	bodyOps, _, err := st.quantizeSeq(r.Body, shortScale)
	if err != nil {
		return nil, err
	}
	bodyActs := st.cur

	// Advance calibration through the float residual join, calibrating
	// the post-add requantization scale from the float sums.
	joined := make([]*Tensor, len(bodyActs))
	joinMax := 0.0
	for i := range bodyActs {
		o := bodyActs[i].Clone()
		for j, v := range shortActs[i].Data {
			o.Data[j] += v
			if o.Data[j] < 0 {
				o.Data[j] = 0
			}
		}
		if v := o.AbsMax(); v > joinMax {
			joinMax = v
		}
		joined[i] = o
	}
	if joinMax == 0 {
		joinMax = 1
	}
	joinScale := joinMax / float64(st.aMax)
	st.cur = joined
	st.curScale = joinScale
	return &QResidual{
		Body: bodyOps, Shortcut: shortOps, ActBits: st.cfg.ABits,
		// The integer sum sits at shortScale; requantize to joinScale.
		Multiplier: shortScale / joinScale,
	}, nil
}

func cloneTensors(ts []*Tensor) []*Tensor {
	out := make([]*Tensor, len(ts))
	copy(out, ts)
	return out
}

// AccuracyNoisy measures top-1 accuracy through the e_ms-injected
// pipeline, with an independent deterministic noise stream per sample.
func (q *QNetwork) AccuracyNoisy(ds *Dataset, sigma float64, seed uint64) float64 {
	correct := make([]int64, len(ds.Samples))
	parallelFor(len(ds.Samples), func(i int) {
		nm := NewNoiseModel(sigma, seed+uint64(i)*0x9e37)
		if q.PredictNoisy(ds.Samples[i].X, nm) == ds.Samples[i].Label {
			correct[i] = 1
		}
	})
	var sum int64
	for _, c := range correct {
		sum += c
	}
	return float64(sum) / float64(len(ds.Samples))
}

// TrunkFeatures runs the quantized network up to (but excluding) the
// final linear layer, returning the integer feature tensor the
// classifier head consumes.
func (q *QNetwork) TrunkFeatures(x *Tensor) *IntTensor {
	it := q.QuantizeInput(x)
	for bi, b := range q.Blocks {
		last := bi == len(q.Blocks)-1
		switch blk := b.(type) {
		case QSeq:
			for oi, op := range blk {
				if last && oi == len(blk)-1 {
					return it
				}
				it = op.Apply(it)
			}
		default:
			it = b.ForwardInt(it)
		}
	}
	return it
}

// RetrainHead performs quantization-aware retraining of the final
// classifier: the head is re-fit by logistic regression on the quantized
// trunk's integer features (so it sees exactly the distribution it will
// receive under encryption), then requantized in place. This is the
// "QAT-lite" step that stands in for the paper's quantization-aware
// training (see DESIGN.md); without it an untrained random trunk cannot
// survive low-bit quantization.
func (q *QNetwork) RetrainHead(ds *Dataset, epochs int, lr float64, seed uint64) error {
	lastBlk, ok := q.Blocks[len(q.Blocks)-1].(QSeq)
	if !ok || len(lastBlk) == 0 {
		return fmt.Errorf("qnn: RetrainHead needs a trailing QSeq")
	}
	head, ok := lastBlk[len(lastBlk)-1].(*QConv)
	if !ok || !head.IsDense {
		return fmt.Errorf("qnn: RetrainHead needs a trailing dense layer")
	}
	in := head.Shape.Cin
	out := head.Shape.Cout

	feats := make([]*IntTensor, len(ds.Samples))
	parallelFor(len(ds.Samples), func(i int) {
		feats[i] = q.TrunkFeatures(ds.Samples[i].X)
	})
	for i, f := range feats {
		if f.Len() != in {
			return fmt.Errorf("qnn: trunk features of sample %d have %d values, head expects %d", i, f.Len(), in)
		}
	}

	// Standardize the integer features for training (the common mode and
	// per-dimension anisotropy of quantized trunk features otherwise
	// cripple SGD); the affine map is folded back into the head weights
	// before requantization, exactly as TrainReadout does.
	mu := make([]float64, in)
	sd := make([]float64, in)
	for _, f := range feats {
		for j, v := range f.Data {
			x := float64(v)
			mu[j] += x
			sd[j] += x * x
		}
	}
	nf := float64(len(feats))
	var sdSum float64
	for j := range mu {
		mu[j] /= nf
		sd[j] = math.Sqrt(math.Max(sd[j]/nf-mu[j]*mu[j], 0))
		sdSum += sd[j]
	}
	floor := 0.5*sdSum/float64(in) + 1e-8
	for j := range sd {
		if sd[j] < floor {
			sd[j] = floor
		}
	}
	std := func(f *IntTensor, j int) float64 { return (float64(f.Data[j]) - mu[j]) / sd[j] }

	scale := 1.0 / float64(int64(1)<<(q.ABits-1))
	w := make([]float64, out*in)
	bias := make([]float64, out)
	rng := newHeadRNG(seed)
	order := make([]int, len(ds.Samples))
	for i := range order {
		order[i] = i
	}
	logits := make([]float64, out)
	probs := make([]float64, out)
	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			f := feats[idx]
			maxv := math.Inf(-1)
			for o := 0; o < out; o++ {
				acc := bias[o]
				row := w[o*in : (o+1)*in]
				for j := 0; j < in; j++ {
					acc += row[j] * std(f, j)
				}
				logits[o] = acc
				if acc > maxv {
					maxv = acc
				}
			}
			sum := 0.0
			for o := range probs {
				probs[o] = math.Exp(logits[o] - maxv)
				sum += probs[o]
			}
			for o := range probs {
				g := probs[o]/sum - b2f(o == ds.Samples[idx].Label)
				bias[o] -= lr * g
				row := w[o*in : (o+1)*in]
				for j := 0; j < in; j++ {
					row[j] -= lr * (g*std(f, j) + 1e-4*row[j])
				}
			}
		}
	}

	// Fold the standardization back: logits = Σ (w/σ)·f + (b − Σ w·μ/σ)
	// now act on the raw integer features.
	for o := 0; o < out; o++ {
		row := w[o*in : (o+1)*in]
		for j := range row {
			bias[o] -= row[j] * mu[j] / sd[j]
			row[j] /= sd[j]
		}
	}
	// Requantize the head in place, choosing the weight scale from the
	// folded range (the interpretation below treats the weights as acting
	// on raw integers, so `scale` drops out of the bias fold).
	wMax := int64(1)<<(q.WBits-1) - 1
	maxAbs := 0.0
	for _, v := range w {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	wScale := maxAbs / float64(wMax)
	for o := 0; o < out; o++ {
		for j := 0; j < in; j++ {
			iv := int64(math.Round(w[o*in+j] / wScale))
			if iv > wMax {
				iv = wMax
			}
			if iv < -wMax {
				iv = -wMax
			}
			head.Weights[o][j][0][0] = iv
		}
		head.Bias[o] = int64(math.Round(bias[o] / wScale))
	}
	// Accumulator bound for the LUT/modulus checks.
	bound := int64(0)
	for i := range feats {
		if i >= 32 {
			break
		}
		acc := head.Accumulate(feats[i])
		for _, v := range acc.Data {
			if v < 0 {
				v = -v
			}
			if v > bound {
				bound = v
			}
		}
	}
	if bound == 0 {
		bound = 1
	}
	head.MaxAcc = bound + bound/3 + 8
	// The remap must spread the logits over the full activation range —
	// mapping them near ±1 would collapse the argmax under integer
	// rounding.
	lim := float64(int64(1)<<(q.ABits-1) - 1)
	head.WScale = wScale
	head.InScale = scale
	head.Multiplier = lim / float64(bound)
	head.OutScale = wScale / head.Multiplier
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
