package qnn

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Param is a trainable parameter slab with its gradient accumulator.
type Param struct {
	W, G []float64
}

func newParam(n int) *Param { return &Param{W: make([]float64, n), G: make([]float64, n)} }

// Layer is one differentiable stage of a float network. Backward must be
// called after a Forward with train=true; it consumes the gradient with
// respect to the layer's output and returns the gradient with respect to
// its input, accumulating parameter gradients along the way.
type Layer interface {
	Forward(x *Tensor, train bool) *Tensor
	Backward(grad *Tensor) *Tensor
	Params() []*Param
	Name() string
}

// Conv2D is a standard convolution layer.
type Conv2D struct {
	Cout, Cin, K, Stride, Pad int
	Weight                    *Param // [cout][cin][k][k]
	Bias                      *Param // [cout]

	lastIn *Tensor
}

// NewConv2D creates a He-initialized convolution.
func NewConv2D(cout, cin, k, stride, pad int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{Cout: cout, Cin: cin, K: k, Stride: stride, Pad: pad,
		Weight: newParam(cout * cin * k * k), Bias: newParam(cout)}
	std := math.Sqrt(2.0 / float64(cin*k*k))
	for i := range c.Weight.W {
		c.Weight.W[i] = rng.NormFloat64() * std
	}
	return c
}

func (c *Conv2D) w(co, ci, i, j int) float64 {
	return c.Weight.W[((co*c.Cin+ci)*c.K+i)*c.K+j]
}

func (c *Conv2D) outDims(x *Tensor) (int, int) {
	return (x.H+2*c.Pad-c.K)/c.Stride + 1, (x.W+2*c.Pad-c.K)/c.Stride + 1
}

// Forward computes the convolution.
func (c *Conv2D) Forward(x *Tensor, train bool) *Tensor {
	if x.C != c.Cin {
		panic(fmt.Sprintf("qnn: conv expects %d channels, got %s", c.Cin, x.shapeString()))
	}
	oh, ow := c.outDims(x)
	out := NewTensor(c.Cout, oh, ow)
	for co := 0; co < c.Cout; co++ {
		b := c.Bias.W[co]
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				acc := b
				for ci := 0; ci < c.Cin; ci++ {
					for i := 0; i < c.K; i++ {
						h := y*c.Stride + i - c.Pad
						if h < 0 || h >= x.H {
							continue
						}
						for j := 0; j < c.K; j++ {
							w := xx*c.Stride + j - c.Pad
							if w < 0 || w >= x.W {
								continue
							}
							acc += x.At(ci, h, w) * c.w(co, ci, i, j)
						}
					}
				}
				out.Set(co, y, xx, acc)
			}
		}
	}
	if train {
		c.lastIn = x
	}
	return out
}

// Backward propagates gradients.
func (c *Conv2D) Backward(grad *Tensor) *Tensor {
	x := c.lastIn
	gin := NewTensor(x.C, x.H, x.W)
	oh, ow := grad.H, grad.W
	for co := 0; co < c.Cout; co++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				g := grad.At(co, y, xx)
				if g == 0 {
					continue
				}
				c.Bias.G[co] += g
				for ci := 0; ci < c.Cin; ci++ {
					for i := 0; i < c.K; i++ {
						h := y*c.Stride + i - c.Pad
						if h < 0 || h >= x.H {
							continue
						}
						for j := 0; j < c.K; j++ {
							w := xx*c.Stride + j - c.Pad
							if w < 0 || w >= x.W {
								continue
							}
							widx := ((co*c.Cin+ci)*c.K+i)*c.K + j
							c.Weight.G[widx] += g * x.At(ci, h, w)
							gin.Data[(ci*x.H+h)*x.W+w] += g * c.Weight.W[widx]
						}
					}
				}
			}
		}
	}
	return gin
}

// Params returns the trainable slabs.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// Name identifies the layer.
func (c *Conv2D) Name() string { return fmt.Sprintf("conv%dx%d_%d->%d", c.K, c.K, c.Cin, c.Cout) }

// Dense is a fully-connected layer over the flattened input.
type Dense struct {
	In, Out int
	Weight  *Param // [out][in]
	Bias    *Param

	lastIn *Tensor
}

// NewDense creates a He-initialized dense layer.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, Weight: newParam(in * out), Bias: newParam(out)}
	std := math.Sqrt(2.0 / float64(in))
	for i := range d.Weight.W {
		d.Weight.W[i] = rng.NormFloat64() * std
	}
	return d
}

// Forward computes W·x + b on the flattened input.
func (d *Dense) Forward(x *Tensor, train bool) *Tensor {
	if x.Len() != d.In {
		panic(fmt.Sprintf("qnn: dense expects %d inputs, got %d", d.In, x.Len()))
	}
	out := NewVector(d.Out)
	for o := 0; o < d.Out; o++ {
		acc := d.Bias.W[o]
		row := d.Weight.W[o*d.In : (o+1)*d.In]
		for i, v := range x.Data {
			acc += row[i] * v
		}
		out.Data[o] = acc
	}
	if train {
		d.lastIn = x
	}
	return out
}

// Backward propagates gradients.
func (d *Dense) Backward(grad *Tensor) *Tensor {
	x := d.lastIn
	gin := &Tensor{C: x.C, H: x.H, W: x.W, Data: make([]float64, x.Len())}
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		if g == 0 {
			continue
		}
		d.Bias.G[o] += g
		row := d.Weight.W[o*d.In : (o+1)*d.In]
		growRow := d.Weight.G[o*d.In : (o+1)*d.In]
		for i, v := range x.Data {
			growRow[i] += g * v
			gin.Data[i] += g * row[i]
		}
	}
	return gin
}

// Params returns the trainable slabs.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// Name identifies the layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense_%d->%d", d.In, d.Out) }

// ReLU is the rectifier.
type ReLU struct{ mask []bool }

// Forward clamps negatives to zero.
func (r *ReLU) Forward(x *Tensor, train bool) *Tensor {
	out := x.Clone()
	if train {
		r.mask = make([]bool, x.Len())
	}
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		} else if train {
			r.mask[i] = true
		}
	}
	return out
}

// Backward gates the gradient.
func (r *ReLU) Backward(grad *Tensor) *Tensor {
	gin := grad.Clone()
	for i := range gin.Data {
		if !r.mask[i] {
			gin.Data[i] = 0
		}
	}
	return gin
}

// Params returns nil (no parameters).
func (r *ReLU) Params() []*Param { return nil }

// Name identifies the layer.
func (r *ReLU) Name() string { return "relu" }

// MaxPool is a K×K max pooling with stride K.
type MaxPool struct {
	K      int
	argIdx []int
	inDims [3]int
}

// Forward takes the block maximum.
func (p *MaxPool) Forward(x *Tensor, train bool) *Tensor {
	oh, ow := x.H/p.K, x.W/p.K
	out := NewTensor(x.C, oh, ow)
	if train {
		p.argIdx = make([]int, x.C*oh*ow)
		p.inDims = [3]int{x.C, x.H, x.W}
	}
	for c := 0; c < x.C; c++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				best := math.Inf(-1)
				bestIdx := 0
				for i := 0; i < p.K; i++ {
					for j := 0; j < p.K; j++ {
						idx := (c*x.H+y*p.K+i)*x.W + xx*p.K + j
						if v := x.Data[idx]; v > best {
							best = v
							bestIdx = idx
						}
					}
				}
				out.Set(c, y, xx, best)
				if train {
					p.argIdx[(c*oh+y)*ow+xx] = bestIdx
				}
			}
		}
	}
	return out
}

// Backward routes gradient to the argmax positions.
func (p *MaxPool) Backward(grad *Tensor) *Tensor {
	gin := NewTensor(p.inDims[0], p.inDims[1], p.inDims[2])
	for i, g := range grad.Data {
		gin.Data[p.argIdx[i]] += g
	}
	return gin
}

// Params returns nil.
func (p *MaxPool) Params() []*Param { return nil }

// Name identifies the layer.
func (p *MaxPool) Name() string { return fmt.Sprintf("maxpool%d", p.K) }

// AvgPool is a K×K average pooling with stride K.
type AvgPool struct {
	K      int
	inDims [3]int
}

// Forward takes the block mean.
func (p *AvgPool) Forward(x *Tensor, train bool) *Tensor {
	oh, ow := x.H/p.K, x.W/p.K
	out := NewTensor(x.C, oh, ow)
	inv := 1.0 / float64(p.K*p.K)
	if train {
		p.inDims = [3]int{x.C, x.H, x.W}
	}
	for c := 0; c < x.C; c++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				acc := 0.0
				for i := 0; i < p.K; i++ {
					for j := 0; j < p.K; j++ {
						acc += x.At(c, y*p.K+i, xx*p.K+j)
					}
				}
				out.Set(c, y, xx, acc*inv)
			}
		}
	}
	return out
}

// Backward spreads the gradient uniformly.
func (p *AvgPool) Backward(grad *Tensor) *Tensor {
	gin := NewTensor(p.inDims[0], p.inDims[1], p.inDims[2])
	inv := 1.0 / float64(p.K*p.K)
	for c := 0; c < grad.C; c++ {
		for y := 0; y < grad.H; y++ {
			for xx := 0; xx < grad.W; xx++ {
				g := grad.At(c, y, xx) * inv
				for i := 0; i < p.K; i++ {
					for j := 0; j < p.K; j++ {
						gin.Data[(c*gin.H+y*p.K+i)*gin.W+xx*p.K+j] += g
					}
				}
			}
		}
	}
	return gin
}

// Params returns nil.
func (p *AvgPool) Params() []*Param { return nil }

// Name identifies the layer.
func (p *AvgPool) Name() string { return fmt.Sprintf("avgpool%d", p.K) }

// Sigmoid is the logistic activation.
type Sigmoid struct{ lastOut *Tensor }

// Forward applies 1/(1+e^-x).
func (s *Sigmoid) Forward(x *Tensor, train bool) *Tensor {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	if train {
		s.lastOut = out
	}
	return out
}

// Backward uses y·(1−y).
func (s *Sigmoid) Backward(grad *Tensor) *Tensor {
	gin := grad.Clone()
	for i := range gin.Data {
		y := s.lastOut.Data[i]
		gin.Data[i] *= y * (1 - y)
	}
	return gin
}

// Params returns nil.
func (s *Sigmoid) Params() []*Param { return nil }

// Name identifies the layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

// GELU is the Gaussian-error linear unit (tanh approximation).
type GELU struct{ lastIn *Tensor }

func geluF(v float64) float64 {
	return 0.5 * v * (1 + math.Tanh(0.7978845608*(v+0.044715*v*v*v)))
}

// Forward applies GELU.
func (g *GELU) Forward(x *Tensor, train bool) *Tensor {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = geluF(v)
	}
	if train {
		g.lastIn = x
	}
	return out
}

// Backward differentiates numerically-stably via the tanh form.
func (g *GELU) Backward(grad *Tensor) *Tensor {
	gin := grad.Clone()
	const c = 0.7978845608
	for i := range gin.Data {
		v := g.lastIn.Data[i]
		u := c * (v + 0.044715*v*v*v)
		th := math.Tanh(u)
		du := c * (1 + 3*0.044715*v*v)
		gin.Data[i] *= 0.5*(1+th) + 0.5*v*(1-th*th)*du
	}
	return gin
}

// Params returns nil.
func (g *GELU) Params() []*Param { return nil }

// Name identifies the layer.
func (g *GELU) Name() string { return "gelu" }
