package qnn

import (
	"encoding/json"
	"fmt"
	"io"

	"athena/internal/coeffenc"
)

// JSON model format: a stable, human-inspectable serialization of a
// quantized network (weights, scales, fused activations, structure).
// Trained+quantized models can be saved once and shipped to the
// inference side.

type jsonNetwork struct {
	Format  string      `json:"format"`
	Name    string      `json:"name"`
	InC     int         `json:"in_c"`
	InH     int         `json:"in_h"`
	InW     int         `json:"in_w"`
	WBits   int         `json:"w_bits"`
	ABits   int         `json:"a_bits"`
	InScale float64     `json:"in_scale"`
	Blocks  []jsonBlock `json:"blocks"`
}

type jsonBlock struct {
	Kind     string   `json:"kind"` // "seq" or "residual"
	Ops      []jsonOp `json:"ops,omitempty"`
	Body     []jsonOp `json:"body,omitempty"`
	Shortcut []jsonOp `json:"shortcut,omitempty"`
	ActBits  int      `json:"act_bits,omitempty"`
	Mult     float64  `json:"multiplier,omitempty"`
}

type jsonOp struct {
	Kind string `json:"kind"` // "conv", "maxpool", "avgpool"

	// conv fields
	Shape      *coeffenc.ConvShape `json:"shape,omitempty"`
	Weights    [][][][]int64       `json:"weights,omitempty"`
	Bias       []int64             `json:"bias,omitempty"`
	Act        string              `json:"act,omitempty"`
	Multiplier float64             `json:"multiplier,omitempty"`
	ActBits    int                 `json:"act_bits,omitempty"`
	IsDense    bool                `json:"is_dense,omitempty"`
	InScale    float64             `json:"in_scale,omitempty"`
	WScale     float64             `json:"w_scale,omitempty"`
	OutScale   float64             `json:"out_scale,omitempty"`
	MaxAcc     int64               `json:"max_acc,omitempty"`

	// pool fields
	K int `json:"k,omitempty"`
}

const jsonFormat = "athena-qnetwork-v1"

var actNames = map[Activation]string{
	ActNone: "none", ActReLU: "relu", ActSigmoid: "sigmoid", ActGELU: "gelu",
}

func actByName(s string) (Activation, error) {
	for a, n := range actNames {
		if n == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("qnn: unknown activation %q", s)
}

func opToJSON(op QOp) (jsonOp, error) {
	switch o := op.(type) {
	case *QConv:
		shape := o.Shape
		return jsonOp{
			Kind: "conv", Shape: &shape, Weights: o.Weights, Bias: o.Bias,
			Act: actNames[o.Act], Multiplier: o.Multiplier, ActBits: o.ActBits,
			IsDense: o.IsDense, InScale: o.InScale, WScale: o.WScale,
			OutScale: o.OutScale, MaxAcc: o.MaxAcc,
		}, nil
	case *QMaxPool:
		return jsonOp{Kind: "maxpool", K: o.K}, nil
	case *QAvgPool:
		return jsonOp{Kind: "avgpool", K: o.K}, nil
	}
	return jsonOp{}, fmt.Errorf("qnn: unsupported op %T", op)
}

func opFromJSON(j jsonOp) (QOp, error) {
	switch j.Kind {
	case "conv":
		if j.Shape == nil {
			return nil, fmt.Errorf("qnn: conv without shape")
		}
		act, err := actByName(j.Act)
		if err != nil {
			return nil, err
		}
		return &QConv{
			Shape: *j.Shape, Weights: j.Weights, Bias: j.Bias,
			Act: act, Multiplier: j.Multiplier, ActBits: j.ActBits,
			IsDense: j.IsDense, InScale: j.InScale, WScale: j.WScale,
			OutScale: j.OutScale, MaxAcc: j.MaxAcc,
		}, nil
	case "maxpool":
		return &QMaxPool{K: j.K}, nil
	case "avgpool":
		return &QAvgPool{K: j.K}, nil
	}
	return nil, fmt.Errorf("qnn: unknown op kind %q", j.Kind)
}

func opsToJSON(ops QSeq) ([]jsonOp, error) {
	out := make([]jsonOp, len(ops))
	for i, op := range ops {
		j, err := opToJSON(op)
		if err != nil {
			return nil, err
		}
		out[i] = j
	}
	return out, nil
}

func opsFromJSON(js []jsonOp) (QSeq, error) {
	out := make(QSeq, len(js))
	for i, j := range js {
		op, err := opFromJSON(j)
		if err != nil {
			return nil, err
		}
		out[i] = op
	}
	return out, nil
}

// WriteJSON serializes the network.
func (q *QNetwork) WriteJSON(w io.Writer) error {
	jn := jsonNetwork{
		Format: jsonFormat, Name: q.Name,
		InC: q.InC, InH: q.InH, InW: q.InW,
		WBits: q.WBits, ABits: q.ABits, InScale: q.InScale,
	}
	for _, b := range q.Blocks {
		switch blk := b.(type) {
		case QSeq:
			ops, err := opsToJSON(blk)
			if err != nil {
				return err
			}
			jn.Blocks = append(jn.Blocks, jsonBlock{Kind: "seq", Ops: ops})
		case *QResidual:
			body, err := opsToJSON(blk.Body)
			if err != nil {
				return err
			}
			short, err := opsToJSON(blk.Shortcut)
			if err != nil {
				return err
			}
			jn.Blocks = append(jn.Blocks, jsonBlock{
				Kind: "residual", Body: body, Shortcut: short,
				ActBits: blk.ActBits, Mult: blk.Multiplier,
			})
		default:
			return fmt.Errorf("qnn: unsupported block %T", b)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jn)
}

// ReadJSONNetwork deserializes a network written by WriteJSON.
func ReadJSONNetwork(r io.Reader) (*QNetwork, error) {
	var jn jsonNetwork
	if err := json.NewDecoder(r).Decode(&jn); err != nil {
		return nil, err
	}
	if jn.Format != jsonFormat {
		return nil, fmt.Errorf("qnn: unsupported model format %q", jn.Format)
	}
	q := &QNetwork{
		Name: jn.Name, InC: jn.InC, InH: jn.InH, InW: jn.InW,
		WBits: jn.WBits, ABits: jn.ABits, InScale: jn.InScale,
	}
	for _, b := range jn.Blocks {
		switch b.Kind {
		case "seq":
			ops, err := opsFromJSON(b.Ops)
			if err != nil {
				return nil, err
			}
			q.Blocks = append(q.Blocks, ops)
		case "residual":
			body, err := opsFromJSON(b.Body)
			if err != nil {
				return nil, err
			}
			short, err := opsFromJSON(b.Shortcut)
			if err != nil {
				return nil, err
			}
			q.Blocks = append(q.Blocks, &QResidual{
				Body: body, Shortcut: short, ActBits: b.ActBits, Multiplier: b.Mult,
			})
		default:
			return nil, fmt.Errorf("qnn: unknown block kind %q", b.Kind)
		}
	}
	return q, nil
}
