package qnn

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
)

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs    int
	LR        float64
	BatchSize int
	Seed      uint64
	Momentum  float64
}

// DefaultTrainConfig returns settings adequate for the small synthetic
// tasks.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 4, LR: 0.05, BatchSize: 16, Seed: 7, Momentum: 0.9}
}

// softmaxGrad computes the softmax cross-entropy loss gradient in place
// and returns the loss.
func softmaxGrad(logits *Tensor, label int) (*Tensor, float64) {
	maxv := math.Inf(-1)
	for _, v := range logits.Data {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	probs := make([]float64, logits.Len())
	for i, v := range logits.Data {
		probs[i] = math.Exp(v - maxv)
		sum += probs[i]
	}
	grad := NewVector(logits.Len())
	for i := range probs {
		probs[i] /= sum
		grad.Data[i] = probs[i]
	}
	grad.Data[label] -= 1
	return grad, -math.Log(math.Max(probs[label], 1e-12))
}

// Train runs SGD with momentum on a pure-Seq network (MNIST-CNN, LeNet).
// It returns the final-epoch mean loss.
func Train(net *Network, ds *Dataset, cfg TrainConfig) float64 {
	seq, ok := net.Blocks[0].(Seq)
	if len(net.Blocks) != 1 || !ok {
		panic("qnn: Train supports single-Seq networks only; use TrainReadout for ResNets")
	}
	params := net.Params()
	vel := make([][]float64, len(params))
	for i, p := range params {
		vel[i] = make([]float64, len(p.W))
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7a))
	order := make([]int, len(ds.Samples))
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for bi := 0; bi < len(order); bi += cfg.BatchSize {
			end := bi + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			for _, p := range params {
				for j := range p.G {
					p.G[j] = 0
				}
			}
			for _, idx := range order[bi:end] {
				s := ds.Samples[idx]
				logits := seq.Forward(s.X, true)
				grad, loss := softmaxGrad(logits, s.Label)
				total += loss
				seq.Backward(grad)
			}
			scale := cfg.LR / float64(end-bi)
			for i, p := range params {
				for j := range p.W {
					vel[i][j] = cfg.Momentum*vel[i][j] - scale*p.G[j]
					p.W[j] += vel[i][j]
				}
			}
		}
		lastLoss = total / float64(len(order))
	}
	return lastLoss
}

// TrainReadout trains only the final Dense layer of a network on frozen
// features (reservoir-style). This is how the deep ResNets obtain a
// usable classifier without full backprop training (see DESIGN.md for
// the substitution rationale). Feature extraction is parallelized.
func TrainReadout(net *Network, ds *Dataset, cfg TrainConfig) float64 {
	lastBlock, ok := net.Blocks[len(net.Blocks)-1].(Seq)
	if !ok || len(lastBlock) == 0 {
		panic("qnn: TrainReadout needs a trailing Seq block")
	}
	dense, ok := lastBlock[len(lastBlock)-1].(*Dense)
	if !ok {
		panic("qnn: TrainReadout needs a trailing Dense layer")
	}
	// Features = everything before the final Dense.
	features := make([]*Tensor, len(ds.Samples))
	forwardToFeatures := func(x *Tensor) *Tensor {
		for _, b := range net.Blocks[:len(net.Blocks)-1] {
			x = b.Forward(x, false)
		}
		for _, l := range lastBlock[:len(lastBlock)-1] {
			x = l.Forward(x, false)
		}
		return x
	}
	parallelFor(len(ds.Samples), func(i int) {
		features[i] = forwardToFeatures(ds.Samples[i].X)
	})

	// Standardize each feature dimension (random deep features share a
	// large common mode that would swamp logistic training). The affine
	// standardization is folded back into the dense layer afterwards:
	// w'_j = w_j/σ_j and b' = b − Σ_j w_j·μ_j/σ_j, so the deployed
	// network is unchanged structurally.
	dim := features[0].Len()
	mu := make([]float64, dim)
	sigma := make([]float64, dim)
	for _, f := range features {
		for j, v := range f.Data {
			mu[j] += v
			sigma[j] += v * v
		}
	}
	nf := float64(len(features))
	var sigmaSum float64
	for j := range mu {
		mu[j] /= nf
		sigma[j] = math.Sqrt(math.Max(sigma[j]/nf-mu[j]*mu[j], 0))
		sigmaSum += sigma[j]
	}
	// Floor each dimension's deviation at a fraction of the mean
	// deviation: near-constant features would otherwise fold back into
	// extreme dense weights that wreck per-tensor weight quantization.
	floor := 0.1*sigmaSum/float64(dim) + 1e-8
	for j := range sigma {
		if sigma[j] < floor {
			sigma[j] = floor
		}
	}
	for _, f := range features {
		for j := range f.Data {
			f.Data[j] = (f.Data[j] - mu[j]) / sigma[j]
		}
	}
	defer func() {
		for o := 0; o < dense.Out; o++ {
			row := dense.Weight.W[o*dense.In : (o+1)*dense.In]
			for j := range row {
				dense.Bias.W[o] -= row[j] * mu[j] / sigma[j]
				row[j] /= sigma[j]
			}
		}
	}()

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x8b))
	order := make([]int, len(ds.Samples))
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for _, idx := range order {
			f := features[idx]
			logits := dense.Forward(f, true)
			grad, loss := softmaxGrad(logits, ds.Samples[idx].Label)
			total += loss
			for j := range dense.Weight.G {
				dense.Weight.G[j] = 0
			}
			for j := range dense.Bias.G {
				dense.Bias.G[j] = 0
			}
			dense.Backward(grad)
			const decay = 1e-3 // keeps the weight spread quantization-friendly
			for j := range dense.Weight.W {
				dense.Weight.W[j] -= cfg.LR * (dense.Weight.G[j] + decay*dense.Weight.W[j])
			}
			for j := range dense.Bias.W {
				dense.Bias.W[j] -= cfg.LR * dense.Bias.G[j]
			}
		}
		lastLoss = total / float64(len(order))
	}
	return lastLoss
}

// Accuracy measures top-1 accuracy of the float network (parallelized).
func Accuracy(net *Network, ds *Dataset) float64 {
	correct := make([]int64, len(ds.Samples))
	parallelFor(len(ds.Samples), func(i int) {
		if net.Predict(ds.Samples[i].X) == ds.Samples[i].Label {
			correct[i] = 1
		}
	})
	var sum int64
	for _, c := range correct {
		sum += c
	}
	return float64(sum) / float64(len(ds.Samples))
}

// parallelFor runs f(i) for i in [0, n) across NumCPU workers.
func parallelFor(n int, f func(int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	wg.Wait()
}
