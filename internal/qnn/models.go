package qnn

import (
	"fmt"
	"math/rand/v2"
)

// NewMNISTNet builds the paper's smallest benchmark (one convolution and
// two fully-connected layers, CryptoNets-style [4]) for 1×28×28 inputs.
func NewMNISTNet(seed uint64) *Network {
	rng := rand.New(rand.NewPCG(seed, 0x3a))
	conv := NewConv2D(5, 1, 5, 2, 1, rng) // 5 maps, 5×5, stride 2 -> 5×13×13
	fc1 := NewDense(5*13*13, 100, rng)
	fc2 := NewDense(100, 10, rng)
	return &Network{
		Name: "MNIST",
		InC:  1, InH: 28, InW: 28,
		Blocks: []Block{Seq{conv, &ReLU{}, fc1, &ReLU{}, fc2}},
	}
}

// NewLeNet builds LeNet-5 with ReLU activations (the paper replaces the
// original squashing functions with ReLU) and two max-pool layers, for
// 1×28×28 inputs.
func NewLeNet(seed uint64) *Network {
	rng := rand.New(rand.NewPCG(seed, 0x1e))
	return &Network{
		Name: "LeNet",
		InC:  1, InH: 28, InW: 28,
		Blocks: []Block{Seq{
			NewConv2D(6, 1, 5, 1, 2, rng), // -> 6×28×28
			&ReLU{},
			&MaxPool{K: 2},                 // -> 6×14×14
			NewConv2D(16, 6, 5, 1, 0, rng), // -> 16×10×10
			&ReLU{},
			&MaxPool{K: 2}, // -> 16×5×5
			NewDense(16*5*5, 120, rng),
			&ReLU{},
			NewDense(120, 10, rng),
		}},
	}
}

// NewResNet builds a CIFAR-style ResNet for 3×32×32 inputs. depth must
// be 6n+2 (20 and 56 in the paper). Batch normalization is folded away
// (identity at initialization), matching an inference-time graph.
func NewResNet(depth int, seed uint64) (*Network, error) {
	if (depth-2)%6 != 0 {
		return nil, fmt.Errorf("qnn: resnet depth %d is not 6n+2", depth)
	}
	n := (depth - 2) / 6
	rng := rand.New(rand.NewPCG(seed, uint64(depth)))
	blocks := []Block{
		Seq{NewConv2D(16, 3, 3, 1, 1, rng), &ReLU{}},
	}
	widths := []int{16, 32, 64}
	inC := 16
	for stage, w := range widths {
		for b := 0; b < n; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			second := NewConv2D(w, w, 3, 1, 1, rng)
			// Damp the residual branch strongly (the role the folded
			// batch-norm scale plays in the trained original): keeps the
			// trunk close to identity so activation magnitudes stay
			// stable across the 6n residual additions AND per-layer
			// quantization error does not compound — an untrained random
			// trunk has none of the error-absorbing structure
			// quantization-aware training would give the real model (see
			// DESIGN.md's dataset/training substitution notes).
			for i := range second.Weight.W {
				second.Weight.W[i] *= 0.25
			}
			body := Seq{
				NewConv2D(w, inC, 3, stride, 1, rng),
				&ReLU{},
				second,
			}
			var shortcut Seq
			if stride != 1 || inC != w {
				shortcut = Seq{NewConv2D(w, inC, 1, stride, 0, rng)}
			}
			blocks = append(blocks, &Residual{Body: body, Shortcut: shortcut})
			inC = w
		}
	}
	blocks = append(blocks, Seq{
		&AvgPool{K: 8}, // 64×8×8 -> 64×1×1
		NewDense(64, 10, rng),
	})
	return &Network{
		Name: fmt.Sprintf("ResNet-%d", depth),
		InC:  3, InH: 32, InW: 32,
		Blocks: blocks,
	}, nil
}

// NewDigitNet14 builds a compact digit classifier for 1×14×14 inputs
// (conv 3×3 stride 2 + ReLU, dense readout): small enough to run fully
// under encryption at reduced parameters (see examples/mnistcnn).
func NewDigitNet14(seed uint64) *Network {
	rng := rand.New(rand.NewPCG(seed, 0x14))
	return &Network{
		Name: "DigitNet14",
		InC:  1, InH: 14, InW: 14,
		Blocks: []Block{Seq{
			NewConv2D(4, 1, 3, 2, 1, rng), // -> 4×7×7
			&ReLU{},
			NewDense(4*7*7, 10, rng),
		}},
	}
}

// NewShapeNet6 builds a conv→ReLU→maxpool→dense classifier for 1×6×6
// inputs and 4 classes — the smallest network exercising encrypted max
// pooling (see examples/lenet).
func NewShapeNet6(seed uint64) *Network {
	rng := rand.New(rand.NewPCG(seed, 0x6e))
	return &Network{
		Name: "ShapeNet6",
		InC:  1, InH: 6, InW: 6,
		Blocks: []Block{Seq{
			NewConv2D(3, 1, 3, 1, 1, rng), // -> 3×6×6
			&ReLU{},
			&MaxPool{K: 2}, // -> 3×3×3
			NewDense(3*3*3, 4, rng),
		}},
	}
}

// ModelByName builds one of the four paper benchmarks.
func ModelByName(name string, seed uint64) (*Network, error) {
	switch name {
	case "MNIST":
		return NewMNISTNet(seed), nil
	case "LeNet":
		return NewLeNet(seed), nil
	case "ResNet-20":
		return NewResNet(20, seed)
	case "ResNet-56":
		return NewResNet(56, seed)
	}
	return nil, fmt.Errorf("qnn: unknown model %q", name)
}

// BenchmarkModels lists the paper's four benchmarks in Table 5/6 order.
var BenchmarkModels = []string{"MNIST", "LeNet", "ResNet-20", "ResNet-56"}
