// Package qnn provides the quantized-CNN substrate of the Athena
// reproduction: small float networks with a built-in SGD trainer,
// procedurally generated datasets standing in for MNIST and CIFAR-10,
// a post-training quantizer covering w4a4 through w8a8, and the
// integer-exact quantized network representation (QNetwork) whose
// arithmetic the FHE engine reproduces bit for bit.
package qnn

import "fmt"

// Tensor is a dense C×H×W float tensor. Vectors use C=len, H=W=1.
type Tensor struct {
	C, H, W int
	Data    []float64
}

// NewTensor allocates a zero tensor.
func NewTensor(c, h, w int) *Tensor {
	return &Tensor{C: c, H: h, W: w, Data: make([]float64, c*h*w)}
}

// NewVector allocates a zero 1-D tensor.
func NewVector(n int) *Tensor { return NewTensor(n, 1, 1) }

// At returns element (c, h, w).
func (t *Tensor) At(c, h, w int) float64 { return t.Data[(c*t.H+h)*t.W+w] }

// Set writes element (c, h, w).
func (t *Tensor) Set(c, h, w int, v float64) { t.Data[(c*t.H+h)*t.W+w] = v }

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{C: t.C, H: t.H, W: t.W, Data: append([]float64(nil), t.Data...)}
}

// SameShape reports whether t and o have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool {
	return t.C == o.C && t.H == o.H && t.W == o.W
}

func (t *Tensor) shapeString() string { return fmt.Sprintf("%dx%dx%d", t.C, t.H, t.W) }

// AbsMax returns max |x| over the tensor.
func (t *Tensor) AbsMax() float64 {
	m := 0.0
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// IntTensor is the integer counterpart used on the quantized path.
type IntTensor struct {
	C, H, W int
	Data    []int64
}

// NewIntTensor allocates a zero integer tensor.
func NewIntTensor(c, h, w int) *IntTensor {
	return &IntTensor{C: c, H: h, W: w, Data: make([]int64, c*h*w)}
}

// At returns element (c, h, w).
func (t *IntTensor) At(c, h, w int) int64 { return t.Data[(c*t.H+h)*t.W+w] }

// Set writes element (c, h, w).
func (t *IntTensor) Set(c, h, w int, v int64) { t.Data[(c*t.H+h)*t.W+w] = v }

// Len returns the element count.
func (t *IntTensor) Len() int { return len(t.Data) }

// Clone deep-copies the tensor.
func (t *IntTensor) Clone() *IntTensor {
	return &IntTensor{C: t.C, H: t.H, W: t.W, Data: append([]int64(nil), t.Data...)}
}

// To3D converts to the nested representation package coeffenc consumes.
func (t *IntTensor) To3D() [][][]int64 {
	out := make([][][]int64, t.C)
	for c := 0; c < t.C; c++ {
		out[c] = make([][]int64, t.H)
		for h := 0; h < t.H; h++ {
			out[c][h] = make([]int64, t.W)
			for w := 0; w < t.W; w++ {
				out[c][h][w] = t.At(c, h, w)
			}
		}
	}
	return out
}

// Argmax returns the index of the maximum element (ties to the first).
func Argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// ArgmaxInt is Argmax over int64 data.
func ArgmaxInt(v []int64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
