package qnn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"athena/internal/coeffenc"
)

// Activation enumerates the non-linearities an Athena remap LUT fuses.
type Activation int

const (
	// ActNone requantizes without a non-linearity.
	ActNone Activation = iota
	// ActReLU fuses the rectifier into the remap.
	ActReLU
	// ActSigmoid fuses the logistic function (Athena's FBS represents it
	// exactly as a table — no series approximation).
	ActSigmoid
	// ActGELU fuses the Gaussian-error linear unit.
	ActGELU
)

// QOp is one integer operation of a quantized network. Every QOp's
// integer semantics are exactly what the FHE engine computes (up to the
// e_ms noise), so the plaintext path is the bit-exact reference.
type QOp interface {
	Apply(x *IntTensor) *IntTensor
	OpName() string
}

// QConv is a quantized convolution (or dense layer) with its fused
// remap+activation: out = clamp(act(round((conv(x)+bias)·Multiplier))).
type QConv struct {
	Shape      coeffenc.ConvShape
	Weights    [][][][]int64 // [cout][cin][k][k]
	Bias       []int64       // accumulator scale
	Act        Activation
	Multiplier float64 // s_in·s_w/s_out
	ActBits    int
	IsDense    bool

	InScale, WScale, OutScale float64
	MaxAcc                    int64 // calibrated |accumulator| bound (Fig. 4)
}

// Remap applies the fused requantization+activation to one accumulator
// value — exactly the function Athena's FBS LUT encodes. For the
// non-piecewise-linear activations (sigmoid, GELU) the accumulator is
// dequantized with InScale·WScale, the real function applied, and the
// result requantized at OutScale: the LUT carries the exact table, not
// an approximation.
func (q *QConv) Remap(acc int64) int64 {
	lim := int64(1)<<(q.ActBits-1) - 1
	var y int64
	switch q.Act {
	case ActSigmoid:
		v := float64(acc) * q.InScale * q.WScale
		y = int64(math.Round(sigmoid(v) / q.OutScale))
		if y < 0 {
			y = 0
		}
	case ActGELU:
		v := float64(acc) * q.InScale * q.WScale
		y = int64(math.Round(gelu(v) / q.OutScale))
		if y < -lim {
			y = -lim
		}
	default:
		y = int64(math.Round(float64(acc) * q.Multiplier))
		if q.Act == ActReLU {
			if y < 0 {
				y = 0
			}
		} else if y < -lim {
			y = -lim
		}
	}
	if y > lim {
		y = lim
	}
	return y
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

func gelu(v float64) float64 {
	return 0.5 * v * (1 + math.Tanh(0.7978845608*(v+0.044715*v*v*v)))
}

// Apply runs the integer convolution and remap.
func (q *QConv) Apply(x *IntTensor) *IntTensor {
	s := q.Shape
	if x.Len() != s.Cin*s.H*s.W {
		panic(fmt.Sprintf("qnn: %s expects %d×%d×%d input, got %d elements", q.OpName(), s.Cin, s.H, s.W, x.Len()))
	}
	out := NewIntTensor(s.Cout, s.OutH(), s.OutW())
	for co := 0; co < s.Cout; co++ {
		for y := 0; y < s.OutH(); y++ {
			for xx := 0; xx < s.OutW(); xx++ {
				acc := q.Bias[co]
				for ci := 0; ci < s.Cin; ci++ {
					for i := 0; i < s.K; i++ {
						h := y*s.Stride + i - s.Pad
						if h < 0 || h >= s.H {
							continue
						}
						for j := 0; j < s.K; j++ {
							w := xx*s.Stride + j - s.Pad
							if w < 0 || w >= s.W {
								continue
							}
							acc += x.Data[(ci*s.H+h)*s.W+w] * q.Weights[co][ci][i][j]
						}
					}
				}
				out.Set(co, y, xx, q.Remap(acc))
			}
		}
	}
	return out
}

// Accumulate runs the convolution without the remap (used to compare the
// FHE linear-layer output and for Fig. 4 statistics).
func (q *QConv) Accumulate(x *IntTensor) *IntTensor {
	s := q.Shape
	out := NewIntTensor(s.Cout, s.OutH(), s.OutW())
	for co := 0; co < s.Cout; co++ {
		for y := 0; y < s.OutH(); y++ {
			for xx := 0; xx < s.OutW(); xx++ {
				acc := q.Bias[co]
				for ci := 0; ci < s.Cin; ci++ {
					for i := 0; i < s.K; i++ {
						h := y*s.Stride + i - s.Pad
						if h < 0 || h >= s.H {
							continue
						}
						for j := 0; j < s.K; j++ {
							w := xx*s.Stride + j - s.Pad
							if w < 0 || w >= s.W {
								continue
							}
							acc += x.Data[(ci*s.H+h)*s.W+w] * q.Weights[co][ci][i][j]
						}
					}
				}
				out.Set(co, y, xx, acc)
			}
		}
	}
	return out
}

// OpName identifies the operation.
func (q *QConv) OpName() string {
	if q.IsDense {
		return fmt.Sprintf("qdense_%d->%d", q.Shape.Cin, q.Shape.Cout)
	}
	return fmt.Sprintf("qconv%dx%d_%d->%d", q.Shape.K, q.Shape.K, q.Shape.Cin, q.Shape.Cout)
}

// QMaxPool is integer max pooling (K×K, stride K); under FHE it runs as a
// max tree of FBS lookups.
type QMaxPool struct{ K int }

// Apply takes block maxima.
func (q *QMaxPool) Apply(x *IntTensor) *IntTensor {
	oh, ow := x.H/q.K, x.W/q.K
	out := NewIntTensor(x.C, oh, ow)
	for c := 0; c < x.C; c++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				best := x.At(c, y*q.K, xx*q.K)
				for i := 0; i < q.K; i++ {
					for j := 0; j < q.K; j++ {
						if v := x.At(c, y*q.K+i, xx*q.K+j); v > best {
							best = v
						}
					}
				}
				out.Set(c, y, xx, best)
			}
		}
	}
	return out
}

// OpName identifies the operation.
func (q *QMaxPool) OpName() string { return fmt.Sprintf("qmaxpool%d", q.K) }

// QAvgPool is integer average pooling: the window sum followed by the
// divide-by-k² LUT (Section 3.2.3's average pooling).
type QAvgPool struct{ K int }

// Apply sums each window and divides with rounding — the LUT(x) =
// round(x/k²) function.
func (q *QAvgPool) Apply(x *IntTensor) *IntTensor {
	oh, ow := x.H/q.K, x.W/q.K
	out := NewIntTensor(x.C, oh, ow)
	div := int64(q.K * q.K)
	for c := 0; c < x.C; c++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				var acc int64
				for i := 0; i < q.K; i++ {
					for j := 0; j < q.K; j++ {
						acc += x.At(c, y*q.K+i, xx*q.K+j)
					}
				}
				out.Set(c, y, xx, roundDiv(acc, div))
			}
		}
	}
	return out
}

func roundDiv(a, b int64) int64 {
	if a >= 0 {
		return (a + b/2) / b
	}
	return -((-a + b/2) / b)
}

// OpName identifies the operation.
func (q *QAvgPool) OpName() string { return fmt.Sprintf("qavgpool%d", q.K) }

// QBlock is a structural unit of a quantized network.
type QBlock interface {
	ForwardInt(x *IntTensor) *IntTensor
	Ops() []QOp
}

// QSeq applies ops in order.
type QSeq []QOp

// ForwardInt runs the sequence.
func (s QSeq) ForwardInt(x *IntTensor) *IntTensor {
	for _, op := range s {
		x = op.Apply(x)
	}
	return x
}

// Ops returns the contained operations.
func (s QSeq) Ops() []QOp { return s }

// QResidual joins a quantized body and shortcut with an integer add and
// the post-add fused LUT: out = clamp(round(relu(body+shortcut)·Multiplier)).
// The multiplier requantizes the sum to its own calibrated scale —
// without it, chains of identity-shortcut blocks drift into the
// activation clamp.
type QResidual struct {
	Body       QSeq
	Shortcut   QSeq // empty = identity
	ActBits    int
	Multiplier float64 // 0 or 1 = no rescale
}

// joinRemap applies the block's post-add LUT to one summed value.
func (r *QResidual) JoinRemap(y int64) int64 {
	if y < 0 {
		y = 0
	}
	if m := r.Multiplier; m != 0 && m != 1 {
		y = int64(math.Round(float64(y) * m))
	}
	lim := int64(1)<<(r.ActBits-1) - 1
	if y > lim {
		y = lim
	}
	return y
}

// ForwardInt runs the block.
func (r *QResidual) ForwardInt(x *IntTensor) *IntTensor {
	b := r.Body.ForwardInt(x)
	s := x
	if len(r.Shortcut) > 0 {
		s = r.Shortcut.ForwardInt(x)
	}
	out := b.Clone()
	for i, v := range s.Data {
		out.Data[i] = r.JoinRemap(out.Data[i] + v)
	}
	return out
}

// Ops returns all contained operations (body then shortcut).
func (r *QResidual) Ops() []QOp {
	return append(append([]QOp{}, r.Body...), r.Shortcut...)
}

// QNetwork is a fully quantized network: the exact integer program the
// Athena framework executes under encryption.
type QNetwork struct {
	Name          string
	InC, InH, InW int
	WBits, ABits  int
	InScale       float64
	Blocks        []QBlock
}

// QuantizeInput converts a float input tensor to its integer encoding.
func (q *QNetwork) QuantizeInput(x *Tensor) *IntTensor {
	out := NewIntTensor(x.C, x.H, x.W)
	lim := int64(1)<<(q.ABits-1) - 1
	for i, v := range x.Data {
		iv := int64(math.Round(v / q.InScale))
		if iv > lim {
			iv = lim
		}
		if iv < -lim {
			iv = -lim
		}
		out.Data[i] = iv
	}
	return out
}

// ForwardInt runs the integer network and returns the final tensor
// (logits for classifiers).
func (q *QNetwork) ForwardInt(x *IntTensor) *IntTensor {
	for _, b := range q.Blocks {
		x = b.ForwardInt(x)
	}
	return x
}

// Predict classifies a float input through the quantized pipeline.
func (q *QNetwork) Predict(x *Tensor) int {
	return ArgmaxInt(q.ForwardInt(q.QuantizeInput(x)).Data)
}

// AccuracyInt measures top-1 accuracy of the quantized network.
func (q *QNetwork) AccuracyInt(ds *Dataset) float64 {
	correct := make([]int64, len(ds.Samples))
	parallelFor(len(ds.Samples), func(i int) {
		if q.Predict(ds.Samples[i].X) == ds.Samples[i].Label {
			correct[i] = 1
		}
	})
	var sum int64
	for _, c := range correct {
		sum += c
	}
	return float64(sum) / float64(len(ds.Samples))
}

// Convs returns every QConv in execution order (body before shortcut for
// residual blocks), for statistics and trace generation.
func (q *QNetwork) Convs() []*QConv {
	var out []*QConv
	for _, b := range q.Blocks {
		for _, op := range b.Ops() {
			if c, ok := op.(*QConv); ok {
				out = append(out, c)
			}
		}
	}
	return out
}

// NoiseModel injects the e_ms rounding noise of the Athena conversion
// pipeline into the plaintext quantized execution, reproducing ciphertext
// inference statistics at full dataset scale without paying the full
// cryptographic cost (the injection point and distribution are validated
// against the real pipeline in the core package's tests).
type NoiseModel struct {
	Sigma float64 // std of e_ms in accumulator units
	rng   *rand.Rand
}

// NewNoiseModel creates a deterministic noise source.
func NewNoiseModel(sigma float64, seed uint64) *NoiseModel {
	return &NoiseModel{Sigma: sigma, rng: rand.New(rand.NewPCG(seed, 0xe5))}
}

// Sample draws one noise value.
func (nm *NoiseModel) Sample() int64 {
	if nm == nil || nm.Sigma == 0 {
		return 0
	}
	return int64(math.Round(nm.rng.NormFloat64() * nm.Sigma))
}

// ForwardIntNoisy runs the network injecting e_ms into every linear-layer
// accumulator before its remap, mirroring where modulus switching adds
// noise in the real pipeline.
func (q *QNetwork) ForwardIntNoisy(x *IntTensor, nm *NoiseModel) *IntTensor {
	for _, b := range q.Blocks {
		x = forwardBlockNoisy(b, x, nm)
	}
	return x
}

func forwardBlockNoisy(b QBlock, x *IntTensor, nm *NoiseModel) *IntTensor {
	switch blk := b.(type) {
	case QSeq:
		for _, op := range blk {
			x = applyNoisy(op, x, nm)
		}
		return x
	case *QResidual:
		body := x
		for _, op := range blk.Body {
			body = applyNoisy(op, body, nm)
		}
		short := x
		for _, op := range blk.Shortcut {
			short = applyNoisy(op, short, nm)
		}
		out := body.Clone()
		for i, v := range short.Data {
			out.Data[i] = blk.JoinRemap(out.Data[i] + v)
		}
		return out
	default:
		return b.ForwardInt(x)
	}
}

func applyNoisy(op QOp, x *IntTensor, nm *NoiseModel) *IntTensor {
	c, ok := op.(*QConv)
	if !ok {
		return op.Apply(x)
	}
	acc := c.Accumulate(x)
	out := NewIntTensor(acc.C, acc.H, acc.W)
	for i, v := range acc.Data {
		out.Data[i] = c.Remap(v + nm.Sample())
	}
	return out
}

// PredictNoisy classifies through the noise-injected pipeline.
func (q *QNetwork) PredictNoisy(x *Tensor, nm *NoiseModel) int {
	return ArgmaxInt(q.ForwardIntNoisy(q.QuantizeInput(x), nm).Data)
}
