package qnn

// Block is a structural unit of a network: a plain layer sequence or a
// residual block.
type Block interface {
	Forward(x *Tensor, train bool) *Tensor
	Layers() []Layer
}

// Seq applies layers in order.
type Seq []Layer

// Forward runs the sequence.
func (s Seq) Forward(x *Tensor, train bool) *Tensor {
	for _, l := range s {
		x = l.Forward(x, train)
	}
	return x
}

// Layers returns the contained layers.
func (s Seq) Layers() []Layer { return s }

// Backward runs the sequence's backward pass in reverse (valid only for
// pure Seq networks; residual blocks are forward-only in this
// reproduction, as only the small MNIST/LeNet models are trained by
// backprop).
func (s Seq) Backward(grad *Tensor) *Tensor {
	for i := len(s) - 1; i >= 0; i-- {
		grad = s[i].Backward(grad)
	}
	return grad
}

// Residual is a pre-activation-free basic ResNet block:
// out = ReLU(Body(x) + Shortcut(x)); an empty Shortcut is the identity.
type Residual struct {
	Body     Seq
	Shortcut Seq
}

// Forward runs both branches and the joining ReLU.
func (r *Residual) Forward(x *Tensor, train bool) *Tensor {
	b := r.Body.Forward(x, train)
	s := x
	if len(r.Shortcut) > 0 {
		s = r.Shortcut.Forward(x, train)
	}
	if !b.SameShape(s) {
		panic("qnn: residual branch shapes differ: " + b.shapeString() + " vs " + s.shapeString())
	}
	out := b.Clone()
	for i, v := range s.Data {
		out.Data[i] += v
		if out.Data[i] < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// Layers returns all contained layers (body then shortcut).
func (r *Residual) Layers() []Layer {
	return append(append([]Layer{}, r.Body...), r.Shortcut...)
}

// Network is an ordered list of blocks.
type Network struct {
	Name   string
	InC    int
	InH    int
	InW    int
	Blocks []Block
}

// Forward runs the whole network.
func (n *Network) Forward(x *Tensor, train bool) *Tensor {
	for _, b := range n.Blocks {
		x = b.Forward(x, train)
	}
	return x
}

// Params collects every trainable parameter.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, b := range n.Blocks {
		for _, l := range b.Layers() {
			out = append(out, l.Params()...)
		}
	}
	return out
}

// Predict returns the argmax class for the input.
func (n *Network) Predict(x *Tensor) int {
	return Argmax(n.Forward(x, false).Data)
}
