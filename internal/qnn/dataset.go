package qnn

import (
	"math"
	"math/rand/v2"
)

// Sample is one labeled input.
type Sample struct {
	X     *Tensor
	Label int
}

// Dataset is a labeled sample collection.
type Dataset struct {
	Name    string
	Classes int
	Samples []Sample
}

// digitStrokes encodes each digit 0-9 as line segments on a 7×7 design
// grid ((x1,y1)-(x2,y2) quadruples), a compact procedural stand-in for
// MNIST glyphs.
var digitStrokes = [10][][4]int{
	{{1, 1, 5, 1}, {1, 1, 1, 5}, {5, 1, 5, 5}, {1, 5, 5, 5}},               // 0
	{{3, 0, 3, 6}, {2, 1, 3, 0}},                                           // 1
	{{1, 1, 5, 1}, {5, 1, 5, 3}, {5, 3, 1, 5}, {1, 5, 5, 5}},               // 2
	{{1, 1, 5, 1}, {5, 1, 5, 5}, {1, 5, 5, 5}, {2, 3, 5, 3}},               // 3
	{{1, 0, 1, 3}, {1, 3, 5, 3}, {4, 0, 4, 6}},                             // 4
	{{5, 1, 1, 1}, {1, 1, 1, 3}, {1, 3, 5, 3}, {5, 3, 5, 5}, {5, 5, 1, 5}}, // 5
	{{5, 1, 1, 1}, {1, 1, 1, 5}, {1, 5, 5, 5}, {5, 5, 5, 3}, {5, 3, 1, 3}}, // 6
	{{1, 1, 5, 1}, {5, 1, 2, 6}},                                           // 7
	{{1, 1, 5, 1}, {1, 1, 1, 5}, {5, 1, 5, 5}, {1, 5, 5, 5}, {1, 3, 5, 3}}, // 8
	{{1, 3, 5, 3}, {1, 1, 1, 3}, {1, 1, 5, 1}, {5, 1, 5, 5}, {5, 5, 1, 5}}, // 9
}

// SynthDigits generates n procedurally drawn digit images (1×28×28,
// values in [0,1]) with random shift, thickness, and pixel noise. It is
// the reproduction's stand-in for MNIST (see DESIGN.md).
func SynthDigits(n int, seed uint64) *Dataset {
	rng := rand.New(rand.NewPCG(seed, 0x5d))
	ds := &Dataset{Name: "synth-digits", Classes: 10, Samples: make([]Sample, n)}
	for i := range ds.Samples {
		label := i % 10
		ds.Samples[i] = Sample{X: renderDigit(label, rng), Label: label}
	}
	return ds
}

func renderDigit(label int, rng *rand.Rand) *Tensor {
	const size = 28
	img := NewTensor(1, size, size)
	// Random affine-ish jitter: scale the 7×7 design grid to ~20px with
	// shift and per-stroke wobble.
	scale := 2.6 + rng.Float64()*0.8
	ox := 2 + rng.Float64()*6
	oy := 2 + rng.Float64()*6
	thick := 1 + rng.IntN(2)
	for _, s := range digitStrokes[label] {
		x1 := ox + float64(s[0])*scale + rng.Float64() - 0.5
		y1 := oy + float64(s[1])*scale + rng.Float64() - 0.5
		x2 := ox + float64(s[2])*scale + rng.Float64() - 0.5
		y2 := oy + float64(s[3])*scale + rng.Float64() - 0.5
		steps := 2 * int(max64(abs64(x2-x1), abs64(y2-y1))+1)
		for st := 0; st <= steps; st++ {
			f := float64(st) / float64(steps)
			cx := int(x1 + (x2-x1)*f)
			cy := int(y1 + (y2-y1)*f)
			for dy := 0; dy < thick; dy++ {
				for dx := 0; dx < thick; dx++ {
					px, py := cx+dx, cy+dy
					if px >= 0 && px < size && py >= 0 && py < size {
						img.Set(0, py, px, 1)
					}
				}
			}
		}
	}
	// Pixel noise.
	for j := range img.Data {
		img.Data[j] += rng.NormFloat64() * 0.08
		if img.Data[j] < 0 {
			img.Data[j] = 0
		}
		if img.Data[j] > 1 {
			img.Data[j] = 1
		}
	}
	return img
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SynthCIFAR generates n 3×32×32 images in 10 classes. Each class is a
// fixed random texture basis (three oriented sinusoid components with
// class-specific frequencies and colors); instances add random phase,
// shift, contrast, and noise. It stands in for CIFAR-10: non-trivially
// separable, translation-perturbed, and channel-correlated.
func SynthCIFAR(n int, seed uint64) *Dataset {
	rng := rand.New(rand.NewPCG(seed, 0xc1fa))
	// Class prototypes are derived from a fixed generator so that train
	// and test sets (different seeds) share classes.
	proto := rand.New(rand.NewPCG(0xa11ce, 0xc1fa))
	type comp struct {
		fx, fy, phase, amp float64
		ch                 int
	}
	classComps := make([][]comp, 10)
	for c := range classComps {
		classComps[c] = make([]comp, 4)
		for k := range classComps[c] {
			classComps[c][k] = comp{
				fx:    (proto.Float64() - 0.5) * 1.4,
				fy:    (proto.Float64() - 0.5) * 1.4,
				phase: proto.Float64() * 6.28,
				amp:   0.4 + proto.Float64()*0.6,
				ch:    proto.IntN(3),
			}
		}
	}
	// Class-specific color tints and coarse gradients: these low-order
	// statistics survive random convolutional features and global average
	// pooling, so a frozen-feature readout can learn the task.
	tint := make([][3]float64, 10)
	gradDir := make([][2]float64, 10)
	for c := range tint {
		for ch := 0; ch < 3; ch++ {
			tint[c][ch] = (proto.Float64() - 0.5) * 0.7
		}
		ang := proto.Float64() * 6.28318
		gradDir[c] = [2]float64{math.Cos(ang), math.Sin(ang)}
	}
	ds := &Dataset{Name: "synth-cifar", Classes: 10, Samples: make([]Sample, n)}
	for i := range ds.Samples {
		label := i % 10
		img := NewTensor(3, 32, 32)
		dx := rng.Float64()*6 - 3
		dy := rng.Float64()*6 - 3
		contrast := 0.7 + rng.Float64()*0.6
		for _, cp := range classComps[label] {
			ph := cp.phase + rng.NormFloat64()*0.25
			for y := 0; y < 32; y++ {
				for x := 0; x < 32; x++ {
					v := cp.amp * sinApprox(cp.fx*(float64(x)+dx)+cp.fy*(float64(y)+dy)+ph)
					img.Data[(cp.ch*32+y)*32+x] += v * contrast
				}
			}
		}
		for ch := 0; ch < 3; ch++ {
			for y := 0; y < 32; y++ {
				for x := 0; x < 32; x++ {
					g := (gradDir[label][0]*float64(x-16) + gradDir[label][1]*float64(y-16)) / 16.0
					img.Data[(ch*32+y)*32+x] += tint[label][ch] + 0.25*g
				}
			}
		}
		for j := range img.Data {
			img.Data[j] = clamp(img.Data[j]*0.5+0.5+rng.NormFloat64()*0.12, 0, 1)
		}
		ds.Samples[i] = Sample{X: img, Label: label}
	}
	return ds
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func sinApprox(x float64) float64 { return math.Sin(x) }
