package ckksref

import "fmt"

// Solution is one row of Table 1: a published FHE-CNN configuration with
// its derived storage footprint.
type Solution struct {
	Name      string
	Scheme    string
	Quantized bool
	Degree    int
	LogQ      int  // ciphertext modulus bits (evaluation)
	Boot      bool // supports bootstrapping
	FBS       bool // merged non-linear + bootstrapping (Athena)
	RotKeys   int  // rotation/galois key count
	Dataset   string

	// Reported accuracies (cipher / plain) from the respective papers,
	// carried for the comparison table.
	AccCipher, AccPlain float64
	Benchmark           string
}

// CiphertextBytes returns the ciphertext size 2·N·ceil(logQ/8·word)
// using packed word storage (8-byte words per limb-equivalent bits).
func (s Solution) CiphertextBytes() int {
	words := (s.LogQ + 63) / 64
	return 2 * s.Degree * words * 8
}

// KeyBytes estimates the rotation+relinearization key material: each key
// is an RNS-decomposed switching key of limbs² structure:
// keys · limbs · 2 · N · limbs · 8 bytes.
func (s Solution) KeyBytes() int64 {
	limbs := int64((s.LogQ + 59) / 60)
	return int64(s.RotKeys+1) * limbs * 2 * int64(s.Degree) * 8
}

// Table1 returns the six solutions the paper compares. Degrees, moduli,
// and accuracies are the published values; sizes are derived from the
// formulas above (EXPERIMENTS.md compares them against the paper's
// reported sizes).
func Table1() []Solution {
	return []Solution{
		{Name: "CryptoNets", Scheme: "YASHE (LHE)", Degree: 8192, LogQ: 191, RotKeys: 16,
			Dataset: "MNIST", Benchmark: "CryptoNets", AccCipher: 98.95, AccPlain: 99.0},
		{Name: "CryptoDL", Scheme: "BGV (LHE)", Degree: 8192, LogQ: 220, RotKeys: 16,
			Dataset: "MNIST", Benchmark: "CryptoDL", AccCipher: 99.5, AccPlain: 99.7},
		{Name: "Fast-CryptoNets", Scheme: "BFV (LHE)", Quantized: true, Degree: 8192, LogQ: 219, RotKeys: 16,
			Dataset: "CIFAR-10", Benchmark: "Fast-CryptoNets", AccCipher: 86.76, AccPlain: 93.10},
		{Name: "Lee et al.", Scheme: "CKKS (FHE)", Degree: 65536, LogQ: 1450, Boot: true, RotKeys: 34,
			Dataset: "CIFAR-10", Benchmark: "ResNet-20", AccCipher: 92.43, AccPlain: 92.95},
		{Name: "Lee et al. (mux)", Scheme: "CKKS (FHE)", Degree: 65536, LogQ: 1501, Boot: true, RotKeys: 34,
			Dataset: "CIFAR-10", Benchmark: "ResNet-56", AccCipher: 92.80, AccPlain: 93.07},
		{Name: "Athena (ours)", Scheme: "BFV+FBS (FHE)", Quantized: true, Degree: 32768, LogQ: 720, Boot: true, FBS: true, RotKeys: 48,
			Dataset: "CIFAR-10", Benchmark: "ResNet-56", AccCipher: 94.65, AccPlain: 94.89},
	}
}

// SizeRatioVsCKKS returns how much smaller Athena's ciphertext and key
// material are than the CKKS rows (the paper claims 3–6×).
func SizeRatioVsCKKS() (cipherRatio, keyRatio float64) {
	rows := Table1()
	athena := rows[len(rows)-1]
	ckks := rows[3]
	return float64(ckks.CiphertextBytes()) / float64(athena.CiphertextBytes()),
		float64(ckks.KeyBytes()) / float64(athena.KeyBytes())
}

// String renders one row compactly.
func (s Solution) String() string {
	return fmt.Sprintf("%-18s %-14s N=%-6d logQ=%-5d cipher=%s keys=%s %s",
		s.Name, s.Scheme, s.Degree, s.LogQ,
		humanBytes(int64(s.CiphertextBytes())), humanBytes(s.KeyBytes()), s.Dataset)
}

func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
