package ckksref

import (
	"math"
	"testing"

	"athena/internal/qnn"
)

// Small indirection helpers so the model-curve test reads clearly.
func makeDigits(n int, seed uint64) *qnn.Dataset { return qnn.SynthDigits(n, seed) }
func makeMNIST(seed uint64) *qnn.Network         { return qnn.NewMNISTNet(seed) }
func makeTrainCfg() qnn.TrainConfig {
	c := qnn.DefaultTrainConfig()
	c.Epochs = 2
	return c
}
func trainNet(n *qnn.Network, d *qnn.Dataset, c qnn.TrainConfig) { qnn.Train(n, d, c) }

func TestSigmoidTaylorConverges(t *testing.T) {
	// Near 0 the expansion must be excellent at order 7+.
	c := taylorCoeffs(Sigmoid, 7)
	for _, x := range []float64{-0.5, -0.1, 0, 0.2, 0.5} {
		got := EvalFixed(c, x, 0)
		want := Sigmoid.eval(x)
		if math.Abs(got-want) > 2e-4 {
			t.Fatalf("sigmoid taylor(7) at %v: %v want %v", x, got, want)
		}
	}
}

func TestChebyshevBeatsTaylorForReLU(t *testing.T) {
	// Chebyshev is the right tool for the non-smooth ReLU on [-1,1].
	bT := BitAccuracy(ReLU, Taylor, 15, 0)
	bC := BitAccuracy(ReLU, Chebyshev, 15, 0)
	if bC <= bT {
		t.Fatalf("chebyshev relu accuracy %.2f should beat taylor %.2f", bC, bT)
	}
}

func TestAccuracyImprovesWithOrder(t *testing.T) {
	for _, f := range []Fn{ReLU, Sigmoid} {
		lo := BitAccuracy(f, Chebyshev, 3, 0)
		hi := BitAccuracy(f, Chebyshev, 25, 0)
		if hi <= lo {
			t.Fatalf("%v: order 25 accuracy %.2f not above order 3 %.2f", f, hi, lo)
		}
	}
}

func TestDeltaCapsAccuracy(t *testing.T) {
	// Fig. 1's core message: at Δ=25 the fixed-point floor destroys
	// accuracy regardless of expansion order, while Δ=40 tracks the
	// plaintext expansion; accuracy is monotone-ish in Δ.
	for _, f := range []Fn{ReLU, Sigmoid} {
		b25 := BitAccuracy(f, Chebyshev, 27, 25)
		b30 := BitAccuracy(f, Chebyshev, 27, 30)
		b40 := BitAccuracy(f, Chebyshev, 27, 40)
		if b25 >= b40 || b25 > b30+0.5 {
			t.Fatalf("%v: accuracy not improving with Δ: 25→%.2f 30→%.2f 40→%.2f", f, b25, b30, b40)
		}
	}
	// The paper's headline observations: even Δ=40 leaves a significant
	// gap to the 40-bit ground truth, and the gap is larger for ReLU.
	sPlain := BitAccuracy(Sigmoid, Chebyshev, 27, 0)
	s40 := BitAccuracy(Sigmoid, Chebyshev, 27, 40)
	if sPlain-s40 < 5 {
		t.Fatalf("sigmoid Δ=40 gap to ground truth too small: %.2f vs %.2f", s40, sPlain)
	}
	pR := BitAccuracy(ReLU, Chebyshev, 31, 0)
	pS := BitAccuracy(Sigmoid, Chebyshev, 31, 0)
	if pR >= pS {
		t.Fatalf("relu plaintext accuracy %.2f should stay below sigmoid %.2f", pR, pS)
	}
}

func TestFig1CurvesShape(t *testing.T) {
	pts := Fig1Curves(9)
	if len(pts) != 2*2*5*5 {
		t.Fatalf("unexpected point count %d", len(pts))
	}
	for _, p := range pts {
		if p.Bits < 0 || p.Bits > 40 {
			t.Fatalf("bit accuracy %.2f out of range", p.Bits)
		}
	}
}

func TestTable1Properties(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table 1 has %d rows", len(rows))
	}
	athena := rows[5]
	if !athena.FBS || !athena.Quantized || athena.Degree != 32768 || athena.LogQ != 720 {
		t.Fatalf("athena row wrong: %+v", athena)
	}
	// Paper: Athena ciphertext ≈ 5.6 MB vs CKKS 27–32 MB; keys shrink
	// 3–6×. Our word-packed formulas must land in those bands.
	cb := athena.CiphertextBytes()
	if cb < 5<<20 || cb > 7<<20 {
		t.Fatalf("athena ciphertext %d bytes, expected ≈6MB", cb)
	}
	ckks := rows[3]
	if ckks.CiphertextBytes() < 20<<20 {
		t.Fatalf("ckks ciphertext %d bytes, expected ≳20MB", ckks.CiphertextBytes())
	}
	cr, kr := SizeRatioVsCKKS()
	if cr < 3 || cr > 8 {
		t.Fatalf("cipher ratio %.1f outside the paper's 3–6x band (±)", cr)
	}
	if kr < 2 || kr > 10 {
		t.Fatalf("key ratio %.1f implausible", kr)
	}
	for _, r := range rows {
		if r.String() == "" {
			t.Fatal("empty row rendering")
		}
	}
}

func TestModelBitAccuracyShape(t *testing.T) {
	// A small trained model: approximated ReLU must degrade the output
	// probabilities, more so at low Δ — the Fig. 1 model curves.
	train := makeDigits(300, 1)
	net := makeMNIST(2)
	cfg := makeTrainCfg()
	trainNet(net, train, cfg)

	b25 := ModelBitAccuracy(net, train, 12, 15, 25)
	b40 := ModelBitAccuracy(net, train, 12, 15, 40)
	if b25 > b40+0.5 {
		t.Fatalf("Δ=25 model accuracy %.2f above Δ=40 %.2f", b25, b40)
	}
	// Both are far from the 40-bit ground truth (ReLU approximation error
	// propagates through the network).
	if b40 > 30 {
		t.Fatalf("approximated model suspiciously accurate: %.2f bits", b40)
	}
	if b40 < 1 {
		t.Fatalf("approximated model collapsed: %.2f bits", b40)
	}
	// Higher order helps (or at least does not hurt) at high Δ.
	bLow := ModelBitAccuracy(net, train, 12, 3, 40)
	if bLow > b40+1 {
		t.Fatalf("order 3 (%.2f) should not beat order 15 (%.2f)", bLow, b40)
	}
}
