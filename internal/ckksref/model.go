package ckksref

import (
	"math"

	"athena/internal/qnn"
)

// ModelBitAccuracy reproduces the CNN curve of Fig. 1: a trained network
// is evaluated with every ReLU replaced by its Δ-bit fixed-point series
// expansion, and the deviation of the output class probabilities from
// the exact network is measured in bits (-log2 of the mean absolute
// probability error). The paper's observation: even at Δ = 30–35 the
// approximated network is degraded and unstable relative to exact ReLU.
func ModelBitAccuracy(net *qnn.Network, ds *qnn.Dataset, samples, order, delta int) float64 {
	if samples > len(ds.Samples) {
		samples = len(ds.Samples)
	}
	coeffs := Coefficients(ReLU, Chebyshev, order)

	var errSum float64
	var count int
	for i := 0; i < samples; i++ {
		x := ds.Samples[i].X
		exact := softmaxF(forwardApprox(net, x, nil, 0))
		approx := softmaxF(forwardApprox(net, x, coeffs, delta))
		for j := range exact {
			errSum += math.Abs(exact[j] - approx[j])
			count++
		}
	}
	mean := errSum / float64(count)
	if mean <= 0 {
		return 40
	}
	b := -math.Log2(mean)
	if b > 40 {
		b = 40
	}
	if b < 0 {
		b = 0
	}
	return b
}

// forwardApprox runs the float network, replacing ReLU activations with
// the scaled series expansion when coeffs is non-nil. Activations are
// normalized into the expansion's [-1, 1] domain per tensor (the
// standard range-scaling CKKS pipelines apply before polynomial
// activation).
func forwardApprox(net *qnn.Network, x *qnn.Tensor, coeffs []float64, delta int) []float64 {
	cur := x
	apply := func(l qnn.Layer, t *qnn.Tensor) *qnn.Tensor {
		if _, isRelu := l.(*qnn.ReLU); isRelu && coeffs != nil {
			out := t.Clone()
			scale := t.AbsMax()
			if scale == 0 {
				scale = 1
			}
			for i, v := range out.Data {
				out.Data[i] = EvalFixed(coeffs, v/scale, delta) * scale
			}
			return out
		}
		return l.Forward(t, false)
	}
	for _, b := range net.Blocks {
		switch blk := b.(type) {
		case qnn.Seq:
			for _, l := range blk {
				cur = apply(l, cur)
			}
		case *qnn.Residual:
			body := cur
			for _, l := range blk.Body {
				body = apply(l, body)
			}
			short := cur
			for _, l := range blk.Shortcut {
				short = apply(l, short)
			}
			out := body.Clone()
			for i, v := range short.Data {
				out.Data[i] += v
			}
			if coeffs != nil {
				// The joining ReLU is approximated like the others.
				scale := out.AbsMax()
				if scale == 0 {
					scale = 1
				}
				for i, v := range out.Data {
					out.Data[i] = EvalFixed(coeffs, v/scale, delta) * scale
				}
			} else {
				for i, v := range out.Data {
					if v < 0 {
						out.Data[i] = 0
					}
				}
			}
			cur = out
		}
	}
	return cur.Data
}

func softmaxF(logits []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	out := make([]float64, len(logits))
	for i, v := range logits {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
