// Package ckksref reproduces the CKKS-side comparison material of the
// paper: the Δ-sensitivity study of series-expanded non-linear functions
// (Fig. 1) and the parameter/size accounting of the six solutions in
// Table 1.
//
// A full CKKS implementation is not required (and the paper's Fig. 1 is
// a numerical-precision statement, not a cryptographic one): the study
// evaluates Taylor/Chebyshev expansions of ReLU and sigmoid in simulated
// Δ-bit fixed-point arithmetic — every intermediate rounded to Δ
// fractional bits with a half-ulp error, exactly the precision floor a
// CKKS scaling factor of Δ bits imposes — and measures bit accuracy
// against a 40-bit ground truth.
package ckksref

import (
	"math"
)

// Approx identifies an approximation family.
type Approx int

const (
	// Taylor expands around 0 (sigmoid) or uses the smooth
	// sqrt(x²+ε)-based surrogate (ReLU, which has no Taylor series at 0).
	Taylor Approx = iota
	// Chebyshev fits on [-1, 1] by the projection rule.
	Chebyshev
)

func (a Approx) String() string {
	if a == Taylor {
		return "taylor"
	}
	return "chebyshev"
}

// Fn identifies a target non-linear function on [-1, 1].
type Fn int

const (
	// ReLU is max(0, x).
	ReLU Fn = iota
	// Sigmoid is 1/(1+e^-x).
	Sigmoid
)

func (f Fn) String() string {
	if f == ReLU {
		return "relu"
	}
	return "sigmoid"
}

func (f Fn) eval(x float64) float64 {
	switch f {
	case ReLU:
		return math.Max(0, x)
	default:
		return 1 / (1 + math.Exp(-x))
	}
}

// Coefficients returns the expansion coefficients of f up to the given
// order (inclusive), over [-1, 1].
func Coefficients(f Fn, a Approx, order int) []float64 {
	switch a {
	case Chebyshev:
		return chebyshevCoeffs(f, order)
	default:
		return taylorCoeffs(f, order)
	}
}

// taylorCoeffs: sigmoid has the classical expansion at 0; ReLU uses the
// smooth surrogate (x + sqrt(x²+ε))/2 expanded in even powers of x
// (equivalently |x| ≈ sqrt(x²+ε) via the binomial series), the standard
// "Taylor-style" polynomial treatment of ReLU in the FHE literature.
func taylorCoeffs(f Fn, order int) []float64 {
	c := make([]float64, order+1)
	switch f {
	case Sigmoid:
		// sigmoid(x) = 1/2 + x/4 - x³/48 + x⁵/480 - 17x⁷/80640 + ...
		known := []float64{0.5, 0.25, 0, -1.0 / 48, 0, 1.0 / 480, 0, -17.0 / 80640, 0, 31.0 / 1451520, 0}
		for i := 0; i <= order && i < len(known); i++ {
			c[i] = known[i]
		}
		// Higher odd terms from the Euler-number recurrence are tiny;
		// extend with the next asymptotic terms when asked.
		extra := []float64{-691.0 / 319334400, 0, 5461.0 / 24908083200}
		for i := len(known); i <= order && i-len(known) < len(extra); i++ {
			c[i] = extra[i-len(known)]
		}
	case ReLU:
		// relu(x) = (x + |x|)/2, |x| ≈ sqrt(x²+ε) = sqrt(ε)·sqrt(1+x²/ε)…
		// with ε chosen so the series converges on [-1,1]: use the
		// binomial expansion of sqrt(u) around u=1 with u = x²:
		// |x| ≈ Σ binom(1/2, k) (x²-1)^k — expand in powers of x.
		c[0] = 0
		if order >= 1 {
			c[1] = 0.5
		}
		abs := absSeriesCoeffs(order)
		for i := 0; i <= order; i++ {
			c[i] += 0.5 * abs[i]
		}
	}
	return c
}

// absSeriesCoeffs expands |x| ≈ sqrt(1+(x²-1)) via the binomial series
// Σ_k binom(1/2,k)(x²-1)^k truncated at the requested polynomial order,
// returning monomial coefficients.
func absSeriesCoeffs(order int) []float64 {
	c := make([]float64, order+1)
	kmax := order / 2
	// binom(1/2, k)
	b := 1.0
	for k := 0; k <= kmax; k++ {
		if k > 0 {
			b *= (0.5 - float64(k-1)) / float64(k)
		}
		// (x²-1)^k expanded: Σ_j C(k,j) x^{2j} (-1)^{k-j}
		cj := 1.0 // C(k,0)
		sign := 1.0
		if k%2 == 1 {
			sign = -1
		}
		for j := 0; j <= k; j++ {
			if 2*j <= order {
				c[2*j] += b * cj * sign
			}
			cj = cj * float64(k-j) / float64(j+1)
			sign = -sign
		}
	}
	return c
}

// chebyshevCoeffs projects f onto Chebyshev polynomials on [-1,1] and
// converts to monomial coefficients.
func chebyshevCoeffs(f Fn, order int) []float64 {
	const m = 512 // quadrature points
	a := make([]float64, order+1)
	for k := 0; k <= order; k++ {
		sum := 0.0
		for i := 0; i < m; i++ {
			th := math.Pi * (float64(i) + 0.5) / m
			sum += f.eval(math.Cos(th)) * math.Cos(float64(k)*th)
		}
		a[k] = 2 * sum / m
	}
	a[0] /= 2
	// Convert Σ a_k T_k(x) to monomial form via the T_k recurrence.
	mono := make([]float64, order+1)
	tPrev := make([]float64, order+1) // T_0
	tCur := make([]float64, order+1)  // T_1
	tPrev[0] = 1
	if order >= 1 {
		tCur[1] = 1
	}
	addScaled(mono, tPrev, a[0])
	if order >= 1 {
		addScaled(mono, tCur, a[1])
	}
	for k := 2; k <= order; k++ {
		tNext := make([]float64, order+1)
		for i := 0; i < order; i++ {
			tNext[i+1] += 2 * tCur[i]
		}
		for i := range tPrev {
			tNext[i] -= tPrev[i]
		}
		addScaled(mono, tNext, a[k])
		tPrev, tCur = tCur, tNext
	}
	return mono
}

func addScaled(dst, src []float64, s float64) {
	for i := range src {
		dst[i] += s * src[i]
	}
}

// roundFixed rounds v to delta fractional bits.
func roundFixed(v float64, delta int) float64 {
	s := math.Exp2(float64(delta))
	return math.Round(v*s) / s
}

// EtaBits is the log2 magnitude of the CKKS rescaling noise: after a
// multiplication and rescale by Δ the residual error is e/Δ with
// |e| ≈ √N·σ·‖s‖-type terms ≈ 2^17 at N = 2^16. This is why small Δ
// destroys accuracy (Fig. 1) even though the fixed-point grid alone
// would be sufficient.
const EtaBits = 17

// multNoise returns a deterministic pseudo-random perturbation of
// magnitude 2^(EtaBits-delta), seeded by the operation index and operand.
func multNoise(delta int, seed uint64) float64 {
	if delta <= 0 {
		return 0
	}
	// xorshift-based uniform in [-1, 1).
	seed ^= seed << 13
	seed ^= seed >> 7
	seed ^= seed << 17
	u := float64(int64(seed)) / math.MaxInt64 // in (-1, 1)
	return u * math.Exp2(float64(EtaBits-delta))
}

// EvalFixed evaluates the polynomial in Δ-bit fixed point: coefficients
// and every intermediate product/sum are rounded to Δ fractional bits,
// modelling the precision floor of a CKKS scaling factor of Δ bits.
// delta ≤ 0 evaluates in full float64 precision (the "plaintext
// expansion" red line of Fig. 1).
func EvalFixed(coeffs []float64, x float64, delta int) float64 {
	if delta <= 0 {
		// Horner in full precision.
		acc := 0.0
		for i := len(coeffs) - 1; i >= 0; i-- {
			acc = acc*x + coeffs[i]
		}
		return acc
	}
	xq := roundFixed(x, delta)
	acc := 0.0
	seed := math.Float64bits(x) | 1
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = roundFixed(acc*xq, delta) + multNoise(delta, seed+uint64(i)*0x9e3779b97f4a7c15)
		acc = roundFixed(acc+roundFixed(coeffs[i], delta), delta)
	}
	return acc
}

// BitAccuracy measures -log2 of the mean absolute error of the Δ-bit
// expansion against the exact function over a grid on [-1, 1], capped at
// the 40-bit ground-truth floor the paper uses.
func BitAccuracy(f Fn, a Approx, order, delta int) float64 {
	coeffs := Coefficients(f, a, order)
	const pts = 401
	sum := 0.0
	for i := 0; i < pts; i++ {
		x := -1 + 2*float64(i)/(pts-1)
		got := EvalFixed(coeffs, x, delta)
		want := f.eval(x)
		sum += math.Abs(got - want)
	}
	mean := sum / pts
	if mean <= 0 {
		return 40
	}
	b := -math.Log2(mean)
	if b > 40 {
		b = 40
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Fig1Point is one sample of the Fig. 1 curves.
type Fig1Point struct {
	Fn     Fn
	Approx Approx
	Order  int
	Delta  int // 0 = exact plaintext expansion
	Bits   float64
}

// Fig1Curves generates the study: for each function and approximation,
// orders 1..maxOrder at Δ ∈ {0 (plain), 25, 30, 35, 40}.
func Fig1Curves(maxOrder int) []Fig1Point {
	var out []Fig1Point
	deltas := []int{0, 25, 30, 35, 40}
	for _, f := range []Fn{ReLU, Sigmoid} {
		for _, a := range []Approx{Taylor, Chebyshev} {
			for order := 1; order <= maxOrder; order += 2 {
				for _, d := range deltas {
					out = append(out, Fig1Point{
						Fn: f, Approx: a, Order: order, Delta: d,
						Bits: BitAccuracy(f, a, order, d),
					})
				}
			}
		}
	}
	return out
}
