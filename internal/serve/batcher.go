package serve

import (
	"fmt"
	"sync"
	"time"

	"athena/internal/core"
	"athena/internal/qnn"
)

// Request is one admitted inference request flowing through the
// batcher.
type Request struct {
	ID    uint64
	Sess  *Session
	Model *qnn.QNetwork
	In    *core.EncryptedInput

	// Deadline, when non-zero, expires the request: if the batch
	// containing it starts evaluation after this instant, the request
	// is answered with CodeDeadline instead of being evaluated.
	Deadline time.Time

	// Done receives the outcome exactly once, from an executor
	// goroutine (or inline on admission failure cleanup paths). It must
	// not block for long: it runs on the serving hot path.
	Done func(*core.EncryptedLogits, error)
}

// Typed admission failures.
var (
	// ErrBusy is the backpressure signal: the admission queue is full.
	ErrBusy = &RequestError{Code: CodeBusy, Msg: "admission queue full"}
	// ErrDraining rejects new work during graceful shutdown.
	ErrDraining = &RequestError{Code: CodeDraining, Msg: "server draining"}
)

// BatcherConfig tunes the dynamic batcher.
type BatcherConfig struct {
	// MaxBatch flushes a group as soon as it holds this many requests.
	MaxBatch int
	// MaxWait flushes a non-empty group this long after its first
	// request arrived (the straggler bound).
	MaxWait time.Duration
	// MaxQueue bounds admitted-but-unfinished requests; admission
	// beyond it returns ErrBusy.
	MaxQueue int
	// Executors is the number of batch-evaluation workers.
	Executors int
	// Clock defaults to the wall clock.
	Clock Clock
	// Eval overrides batch evaluation; nil means
	// Session.Eng.EvaluateEncryptedBatch under the session lock. Tests
	// inject a recorder here to exercise flush policy without FHE cost.
	Eval func(s *Session, q *qnn.QNetwork, ins []*core.EncryptedInput) ([]*core.EncryptedLogits, error)
}

func (c *BatcherConfig) withDefaults() BatcherConfig {
	out := *c
	if out.MaxBatch <= 0 {
		out.MaxBatch = 16
	}
	if out.MaxWait <= 0 {
		out.MaxWait = 20 * time.Millisecond
	}
	if out.MaxQueue <= 0 {
		out.MaxQueue = 256
	}
	if out.Executors <= 0 {
		out.Executors = 2
	}
	if out.Clock == nil {
		out.Clock = RealClock()
	}
	return out
}

// batchKey groups coalescible requests: same session (hence same keys)
// and same model. Only such requests may share an
// EvaluateEncryptedBatch call.
type batchKey struct {
	session string
	model   string
}

// group is one forming batch.
type group struct {
	key   batchKey
	sess  *Session
	model *qnn.QNetwork
	reqs  []*Request
	timer ClockTimer
}

// Batcher coalesces admitted requests into per-(session, model) groups
// and evaluates them on a fixed executor pool. Flush policy: a group is
// dispatched when it reaches MaxBatch requests or when its oldest
// request has waited MaxWait, whichever comes first.
type Batcher struct {
	cfg     BatcherConfig
	metrics *Metrics

	mu       sync.Mutex
	pending  map[batchKey]*group
	queued   int // admitted, not yet completed
	inflight int // batches currently evaluating
	draining bool

	execC chan *group
	wg    sync.WaitGroup // executor goroutines
	reqWG sync.WaitGroup // admitted requests, for drain
}

// NewBatcher starts the executor pool. Close with Drain.
func NewBatcher(cfg BatcherConfig, m *Metrics) *Batcher {
	c := cfg.withDefaults()
	b := &Batcher{
		cfg:     c,
		metrics: m,
		pending: make(map[batchKey]*group),
		// One group holds ≥1 request and at most MaxQueue requests are
		// admitted, so MaxQueue slots guarantee dispatch never blocks.
		execC: make(chan *group, c.MaxQueue),
	}
	for i := 0; i < c.Executors; i++ {
		b.wg.Add(1)
		go b.runExecutor()
	}
	return b
}

// Submit admits one request. On a nil error the batcher owns req and
// will call req.Done exactly once; ErrBusy and ErrDraining reject it
// without side effects (the caller replies).
func (b *Batcher) Submit(req *Request) error {
	if req.Sess == nil || req.Model == nil || req.In == nil || req.Done == nil {
		return fmt.Errorf("serve: incomplete request")
	}
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		return ErrDraining
	}
	if b.queued >= b.cfg.MaxQueue {
		b.mu.Unlock()
		return ErrBusy
	}
	b.queued++
	b.reqWG.Add(1)

	key := batchKey{session: req.Sess.ID, model: req.Model.Name}
	g, ok := b.pending[key]
	if !ok {
		g = &group{key: key, sess: req.Sess, model: req.Model}
		b.pending[key] = g
		// Arm the straggler deadline for the group's first request. The
		// callback re-checks identity: the group may have flushed on
		// MaxBatch (and a new group formed under the same key) by the
		// time it fires.
		g.timer = b.cfg.Clock.AfterFunc(b.cfg.MaxWait, func() {
			b.mu.Lock()
			if b.pending[key] == g {
				b.flushLocked(g)
			}
			b.mu.Unlock()
		})
	}
	g.reqs = append(g.reqs, req)
	if len(g.reqs) >= b.cfg.MaxBatch {
		b.flushLocked(g)
	}
	b.mu.Unlock()
	return nil
}

// flushLocked dispatches g to the executors. Callers hold b.mu.
func (b *Batcher) flushLocked(g *group) {
	delete(b.pending, g.key)
	if g.timer != nil {
		g.timer.Stop()
	}
	b.execC <- g //lint:holdok execC capacity covers every admitted request, so the send never blocks
}

// runExecutor evaluates dispatched groups. Per-session serialization
// happens on Session.Mu: two groups of the same session queue behind
// each other, while groups of distinct sessions run concurrently up to
// the executor count.
func (b *Batcher) runExecutor() {
	defer b.wg.Done()
	for g := range b.execC {
		b.mu.Lock()
		b.inflight++
		b.mu.Unlock()

		now := b.cfg.Clock.Now()
		live := g.reqs[:0:0]
		for _, r := range g.reqs {
			if !r.Deadline.IsZero() && now.After(r.Deadline) {
				b.finish(r, nil, &RequestError{Code: CodeDeadline, Msg: "deadline expired before evaluation"})
				continue
			}
			live = append(live, r)
		}
		if len(live) > 0 {
			ins := make([]*core.EncryptedInput, len(live))
			for i, r := range live {
				ins[i] = r.In
			}
			g.sess.Mu.Lock()
			var statsBefore core.OpStats
			if g.sess.Eng != nil {
				statsBefore = g.sess.Eng.Stats
			}
			t0 := time.Now()
			var outs []*core.EncryptedLogits
			var err error
			if b.cfg.Eval != nil {
				outs, err = b.cfg.Eval(g.sess, g.model, ins)
			} else {
				//lint:holdok the session lock IS the evaluation critical section: one batch per session at a time, by design
				outs, err = g.sess.Eng.EvaluateEncryptedBatch(g.model, ins)
			}
			dur := time.Since(t0)
			statsAfter := statsBefore
			if g.sess.Eng != nil {
				statsAfter = g.sess.Eng.Stats
			}
			g.sess.Mu.Unlock()
			if err == nil && len(outs) != len(live) {
				err = fmt.Errorf("evaluation returned %d results for %d inputs", len(outs), len(live))
			}
			if err != nil {
				for _, r := range live {
					b.finish(r, nil, &RequestError{Code: CodeInternal, Msg: err.Error()})
				}
			} else {
				for i, r := range live {
					b.finish(r, outs[i], nil)
				}
			}
			if b.metrics != nil {
				b.metrics.recordBatch(len(live), dur, opsDelta(statsBefore, statsAfter))
			}
		}

		b.mu.Lock()
		b.inflight--
		b.mu.Unlock()
	}
}

// finish replies to one request and returns its admission slot.
func (b *Batcher) finish(r *Request, out *core.EncryptedLogits, err error) {
	r.Done(out, err)
	b.mu.Lock()
	b.queued--
	b.mu.Unlock()
	b.reqWG.Done()
}

// Drain stops admission (Submit returns ErrDraining), flushes every
// forming group immediately, waits for all admitted requests to be
// answered, and stops the executors.
func (b *Batcher) Drain() {
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		b.reqWG.Wait()
		return
	}
	b.draining = true
	for _, g := range b.pending {
		b.flushLocked(g)
	}
	b.mu.Unlock()

	b.reqWG.Wait()
	close(b.execC)
	b.wg.Wait()
}

// QueueDepth returns (admitted-unfinished requests, in-flight batches).
func (b *Batcher) QueueDepth() (queued, inflight int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queued, b.inflight
}

// opsDelta subtracts cumulative OpStats snapshots.
func opsDelta(before, after core.OpStats) core.OpStats {
	return core.OpStats{
		PMult:       after.PMult - before.PMult,
		HAdd:        after.HAdd - before.HAdd,
		CMult:       after.CMult - before.CMult,
		SMult:       after.SMult - before.SMult,
		Packs:       after.Packs - before.Packs,
		FBSCalls:    after.FBSCalls - before.FBSCalls,
		S2CCalls:    after.S2CCalls - before.S2CCalls,
		Extractions: after.Extractions - before.Extractions,
		KeySwitches: after.KeySwitches - before.KeySwitches,
		LWEAdds:     after.LWEAdds - before.LWEAdds,
	}
}
