package serve

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"athena/internal/core"
)

// serveTestEnv caches the expensive fixtures (engine, demo net, a
// serialized input and logits bundle) across the wire tests.
var serveTestEnv struct {
	once    sync.Once
	eng     *core.Engine
	inBlob  []byte
	outBlob []byte
	err     error
}

func wireEnv(t *testing.T) (*core.Engine, []byte, []byte) {
	t.Helper()
	e := &serveTestEnv
	e.once.Do(func() {
		eng, err := core.NewEngine(core.TestParams())
		if err != nil {
			e.err = err
			return
		}
		net1 := DemoNet()
		in, err := eng.EncryptInput(net1, DemoInput(1))
		if err != nil {
			e.err = err
			return
		}
		var b bytes.Buffer
		if err := eng.WriteEncryptedInput(in, &b); err != nil {
			e.err = err
			return
		}
		e.inBlob = append([]byte(nil), b.Bytes()...)
		out, err := eng.EvaluateEncrypted(net1, in)
		if err != nil {
			e.err = err
			return
		}
		b.Reset()
		if err := eng.WriteEncryptedLogits(out, &b); err != nil {
			e.err = err
			return
		}
		e.outBlob = append([]byte(nil), b.Bytes()...)
		e.eng = eng
	})
	if e.err != nil {
		t.Fatal(e.err)
	}
	return e.eng, e.inBlob, e.outBlob
}

// trickle writes blob to w in chunk-byte slices, mimicking a slow peer
// whose socket delivers partial reads.
func trickle(w io.WriteCloser, blob []byte, chunk int, closeAfter bool) {
	for off := 0; off < len(blob); off += chunk {
		end := off + chunk
		if end > len(blob) {
			end = len(blob)
		}
		if _, err := w.Write(blob[off:end]); err != nil {
			return
		}
	}
	if closeAfter {
		w.Close()
	}
}

// TestDecodersSurviveSlowReads feeds the core wire decoders their input
// one byte at a time over a net.Pipe: a decoder that assumes full reads
// (instead of io.ReadFull semantics) fails this test.
func TestDecodersSurviveSlowReads(t *testing.T) {
	eng, inBlob, outBlob := wireEnv(t)
	net1 := DemoNet()

	t.Run("input", func(t *testing.T) {
		cl, sv := net.Pipe()
		go trickle(cl, inBlob, 1, true)
		in, err := eng.ReadEncryptedInput(net1, sv)
		if err != nil {
			t.Fatalf("one-byte-at-a-time decode: %v", err)
		}
		var rt bytes.Buffer
		if err := eng.WriteEncryptedInput(in, &rt); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rt.Bytes(), inBlob) {
			t.Fatal("input did not survive the trickle round-trip")
		}
	})
	t.Run("logits", func(t *testing.T) {
		cl, sv := net.Pipe()
		go trickle(cl, outBlob, 1, true)
		out, err := eng.ReadEncryptedLogits(net1, sv)
		if err != nil {
			t.Fatalf("one-byte-at-a-time decode: %v", err)
		}
		var rt bytes.Buffer
		if err := eng.WriteEncryptedLogits(out, &rt); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rt.Bytes(), outBlob) {
			t.Fatal("logits did not survive the trickle round-trip")
		}
	})
	t.Run("frame", func(t *testing.T) {
		var framed bytes.Buffer
		if err := WriteFrame(&framed, FrameInfer, EncodeInfer(7, 0, "wire-demo", inBlob)); err != nil {
			t.Fatal(err)
		}
		cl, sv := net.Pipe()
		go trickle(cl, framed.Bytes(), 3, true)
		typ, payload, err := ReadFrame(sv, DefaultMaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		if typ != FrameInfer {
			t.Fatalf("frame type %d, want FrameInfer", typ)
		}
		req, err := DecodeInfer(payload)
		if err != nil {
			t.Fatal(err)
		}
		if req.ReqID != 7 || req.Model != "wire-demo" || !bytes.Equal(req.Input, inBlob) {
			t.Fatal("framed request did not round-trip")
		}
	})
}

// TestDecodersFailOnTruncation cuts the stream mid-message: every
// decoder must return an error promptly — not hang, not panic, not
// fabricate a value.
func TestDecodersFailOnTruncation(t *testing.T) {
	eng, inBlob, outBlob := wireEnv(t)
	net1 := DemoNet()

	check := func(t *testing.T, name string, run func(r io.Reader) error, blob []byte) {
		for _, frac := range []float64{0.1, 0.5, 0.9} {
			cut := int(float64(len(blob)) * frac)
			cl, sv := net.Pipe()
			go trickle(cl, blob[:cut], 64, true)
			errC := make(chan error, 1)
			go func() { errC <- run(sv) }()
			select {
			case err := <-errC:
				if err == nil {
					t.Fatalf("%s truncated at %d/%d bytes: decoder accepted", name, cut, len(blob))
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("%s truncated at %d/%d bytes: decoder hung", name, cut, len(blob))
			}
		}
	}
	t.Run("input", func(t *testing.T) {
		check(t, "input", func(r io.Reader) error {
			_, err := eng.ReadEncryptedInput(net1, r)
			return err
		}, inBlob)
	})
	t.Run("logits", func(t *testing.T) {
		check(t, "logits", func(r io.Reader) error {
			_, err := eng.ReadEncryptedLogits(net1, r)
			return err
		}, outBlob)
	})
	t.Run("frame", func(t *testing.T) {
		var framed bytes.Buffer
		if err := WriteFrame(&framed, FrameResult, EncodeResult(1, outBlob)); err != nil {
			t.Fatal(err)
		}
		check(t, "frame", func(r io.Reader) error {
			_, _, err := ReadFrame(r, DefaultMaxFrame)
			return err
		}, framed.Bytes())
	})
}

// TestFrameBounds exercises the frame reader's protocol checks.
func TestFrameBounds(t *testing.T) {
	t.Run("oversized", func(t *testing.T) {
		var b bytes.Buffer
		if err := WriteFrame(&b, FrameInfer, make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadFrame(bytes.NewReader(b.Bytes()), 512); err == nil {
			t.Fatal("payload above the limit accepted")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		var b bytes.Buffer
		WriteFrame(&b, FrameInfer, []byte("x"))
		raw := b.Bytes()
		raw[0] ^= 0xff
		if _, _, err := ReadFrame(bytes.NewReader(raw), DefaultMaxFrame); err == nil {
			t.Fatal("corrupted magic accepted")
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		var b bytes.Buffer
		WriteFrame(&b, FrameInfer, []byte("x"))
		raw := b.Bytes()
		raw[4] = ProtoVersion + 1
		if _, _, err := ReadFrame(bytes.NewReader(raw), DefaultMaxFrame); err == nil {
			t.Fatal("unknown version accepted")
		}
	})
	t.Run("short-payload", func(t *testing.T) {
		var b bytes.Buffer
		WriteFrame(&b, FrameInfer, make([]byte, 100))
		raw := b.Bytes()[:FrameHeaderLen+40] // header promises 100, stream has 40
		if _, _, err := ReadFrame(bytes.NewReader(raw), DefaultMaxFrame); err != io.ErrUnexpectedEOF {
			t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
		}
	})
	t.Run("malformed-payloads", func(t *testing.T) {
		// Every decoder must reject truncated payloads with an error.
		if _, err := DecodeInfer([]byte{1, 2, 3}); err == nil {
			t.Fatal("short infer payload accepted")
		}
		if _, _, err := DecodeResult([]byte{1}); err == nil {
			t.Fatal("short result payload accepted")
		}
		if _, _, _, err := DecodeError([]byte{1, 2, 3}); err == nil {
			t.Fatal("short error payload accepted")
		}
		if _, err := DecodeSessionID([]byte{9, 0, 'x'}); err == nil {
			t.Fatal("overlong session-ID length accepted")
		}
		// String length larger than the remaining payload.
		bad := EncodeInfer(1, 0, "model", nil)
		bad[12] = 0xff
		bad[13] = 0xff
		if _, err := DecodeInfer(bad); err == nil {
			t.Fatal("oversized model-name length accepted")
		}
	})
}
