package serve

import (
	"testing"

	"athena/internal/core"
)

// ownedTestRegistry builds a registry pre-seeded with idle fake
// sessions (no engines — eviction only looks at refs/lastUsed/Bytes).
func ownedTestRegistry(capBytes int64, sessions ...*Session) *Registry {
	r := NewRegistry(core.TestParams(), capBytes)
	for _, s := range sessions {
		r.sessions[s.ID] = s
		r.total += s.Bytes
		if s.lastUsed > r.clock {
			r.clock = s.lastUsed
		}
	}
	return r
}

// TestRegistryEvictsUnownedFirst: under pressure, an idle session the
// cluster moved away is evicted before an owned one — even when the
// unowned session is the more recently used.
func TestRegistryEvictsUnownedFirst(t *testing.T) {
	a := &Session{ID: "owned-old", Bytes: 40, lastUsed: 1}
	b := &Session{ID: "moved-hot", Bytes: 40, lastUsed: 9}
	r := ownedTestRegistry(100, a, b)
	r.SetOwned(func(id string) bool { return id != "moved-hot" })

	if err := r.makeRoomLocked(40); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.sessions["moved-hot"]; ok {
		t.Fatal("unowned session survived while an owned one was evictable")
	}
	if _, ok := r.sessions["owned-old"]; !ok {
		t.Fatal("owned session evicted before the unowned one")
	}
	if r.evictions != 1 || r.total != 40 {
		t.Fatalf("evictions=%d total=%d, want 1/40", r.evictions, r.total)
	}
}

// TestRegistryOwnedFallsBackToLRU: with the hint cleared (or all
// sessions owned), plain LRU order decides.
func TestRegistryOwnedFallsBackToLRU(t *testing.T) {
	a := &Session{ID: "old", Bytes: 40, lastUsed: 1}
	b := &Session{ID: "new", Bytes: 40, lastUsed: 9}
	r := ownedTestRegistry(100, a, b)
	r.SetOwned(func(string) bool { return true })

	if err := r.makeRoomLocked(40); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.sessions["old"]; ok {
		t.Fatal("LRU victim survived")
	}
	if _, ok := r.sessions["new"]; !ok {
		t.Fatal("recently used session evicted out of order")
	}
}

// TestRegistryOwnedSkipsPinned: an unowned session with in-flight work
// is never the victim; pressure falls to the idle owned one.
func TestRegistryOwnedSkipsPinned(t *testing.T) {
	pinned := &Session{ID: "moved-busy", Bytes: 40, lastUsed: 9, refs: 1}
	idle := &Session{ID: "owned-idle", Bytes: 40, lastUsed: 1}
	r := ownedTestRegistry(100, pinned, idle)
	r.SetOwned(func(id string) bool { return id != "moved-busy" })

	if err := r.makeRoomLocked(40); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.sessions["moved-busy"]; !ok {
		t.Fatal("pinned session evicted despite in-flight work")
	}
	if _, ok := r.sessions["owned-idle"]; ok {
		t.Fatal("idle session survived while pressure remained")
	}
}
