package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"athena/internal/core"
	"athena/internal/store"
)

// Session is one registered key owner: an evaluation-only engine built
// from uploaded material, usable from any number of connections.
type Session struct {
	ID string

	// Eng is the evaluation-only engine. Batch evaluation on it is
	// serialized by Mu (the engine's worker group is single-caller at
	// the top level); the dynamic batcher is what turns concurrent
	// requests into few large calls rather than many serialized ones.
	Eng *core.Engine
	Mu  sync.Mutex

	// Bytes is the session's memory charge against the registry cap
	// (the size of the uploaded key blob, which tracks the dominant
	// in-memory material: switching keys and packing keys).
	Bytes int64

	// refs counts in-flight work (admitted, not yet replied requests);
	// a referenced session is never evicted. Guarded by the registry
	// mutex.
	refs int
	// lastUsed is the registry's logical LRU clock value at the last
	// touch. Guarded by the registry mutex.
	lastUsed uint64
}

// ErrRegistryFull reports that a new session cannot fit under the
// memory cap because every resident session has in-flight work.
var ErrRegistryFull = fmt.Errorf("serve: session registry full (all sessions busy)")

// ErrSessionNotFound reports a lookup of an ID that is neither resident
// nor in the durable tier.
var ErrSessionNotFound = fmt.Errorf("serve: unknown session")

// Registry holds sessions under a memory cap with LRU eviction.
// Sessions with in-flight requests are pinned; eviction only reclaims
// idle ones, so backpressure on the queue never drops an established
// session mid-request.
type Registry struct {
	p        core.Params
	codec    *core.EvalKeyCodec // built lazily on first Open
	codecErr error
	codecMu  sync.Mutex
	capBytes int64

	mu       sync.Mutex
	sessions map[string]*Session
	total    int64
	clock    uint64 // logical LRU clock: bumped on every touch

	// store is the optional durable tier. When set, Open persists every
	// acked blob before returning and Lookup reloads evicted sessions
	// from disk instead of failing. Resident sessions stay the hot tier:
	// LRU eviction just drops the RAM copy, the disk entry remains.
	store *store.Store

	// owned is the cluster's ownership hint (nil = single-node, every
	// session owned). Idle sessions this node does not own are evicted
	// before any owned session, regardless of recency: after a drain
	// moves a session away, its key material is the first to yield RAM.
	owned func(id string) bool

	// Evictions counts sessions dropped under memory pressure.
	evictions uint64
	// Tier counters: resident lookup hits, disk reloads, true misses.
	hotHits   uint64
	coldLoads uint64
	misses    uint64
}

// NewRegistry builds a registry for servers at params p holding at most
// capBytes of session key material (0 means a 1 GiB default).
func NewRegistry(p core.Params, capBytes int64) *Registry {
	if capBytes <= 0 {
		capBytes = 1 << 30
	}
	return &Registry{p: p, capBytes: capBytes, sessions: make(map[string]*Session)}
}

// SessionID derives the content-addressed session ID of a key blob.
func SessionID(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:16])
}

// SetStore attaches the durable session tier. Call before serving; the
// registry does not take ownership (the server closes the store on
// shutdown after draining).
func (r *Registry) SetStore(st *store.Store) {
	r.mu.Lock()
	r.store = st
	r.mu.Unlock()
}

// SetOwned installs the cluster ownership predicate used to order
// eviction (see the owned field). nil clears it.
func (r *Registry) SetOwned(owned func(id string) bool) {
	r.mu.Lock()
	r.owned = owned
	r.mu.Unlock()
}

// Open registers (or finds) the session for an uploaded eval-keys blob.
// The ID is content-addressed, so re-uploading identical material
// reuses the resident session without rebuilding the engine.
func (r *Registry) Open(blob []byte) (s *Session, created bool, err error) {
	id := SessionID(blob)
	r.mu.Lock()
	if s, ok := r.sessions[id]; ok {
		r.touchLocked(s)
		r.mu.Unlock()
		return s, false, nil
	}
	r.mu.Unlock()

	// Build the engine outside the lock: decoding and key validation
	// are the expensive part, and concurrent opens of distinct sessions
	// should not serialize on the registry.
	codec, err := r.evalKeyCodec()
	if err != nil {
		return nil, false, err
	}
	ek, err := codec.ReadEvalKeys(bytes.NewReader(blob))
	if err != nil {
		return nil, false, err
	}
	eng, err := core.NewEvaluationEngine(r.p, ek)
	if err != nil {
		return nil, false, err
	}
	s = &Session{ID: id, Eng: eng, Bytes: int64(len(blob))}

	// Durable before acked: the blob reaches the WAL (fsync'd) before the
	// session becomes visible, so a crash after the client sees OK can
	// never lose it. Persisting only after the engine build means garbage
	// is never written to disk. Put copies the blob, which matters — it
	// aliases the connection's read arena.
	r.mu.Lock()
	st := r.store
	r.mu.Unlock()
	if st != nil {
		if err := st.Put(id, blob); err != nil {
			return nil, false, fmt.Errorf("serve: persisting session: %w", err)
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if prior, ok := r.sessions[id]; ok { // lost a concurrent open race
		r.touchLocked(prior)
		return prior, false, nil
	}
	if err := r.makeRoomLocked(s.Bytes); err != nil {
		return nil, false, err
	}
	r.sessions[id] = s
	r.total += s.Bytes
	r.touchLocked(s)
	return s, true, nil
}

// evalKeyCodec builds (once) the bundle decoder for the registry's
// parameter set.
func (r *Registry) evalKeyCodec() (*core.EvalKeyCodec, error) {
	r.codecMu.Lock()
	defer r.codecMu.Unlock()
	if r.codec == nil && r.codecErr == nil {
		r.codec, r.codecErr = core.NewEvalKeyCodec(r.p)
	}
	return r.codec, r.codecErr
}

// Get returns the resident session by ID, refreshing its LRU position.
// It never touches the durable tier — attach paths use Lookup.
func (r *Registry) Get(id string) (*Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if ok {
		r.hotHits++
		r.touchLocked(s)
	}
	return s, ok
}

// Lookup resolves a session ID through both tiers: a resident hit is
// free; otherwise the durable tier is consulted and an evicted session
// is rebuilt from its on-disk blob (streamed — the bundle never
// materializes as a second copy). ErrSessionNotFound means the ID is
// known to neither tier.
func (r *Registry) Lookup(id string) (*Session, error) {
	r.mu.Lock()
	if s, ok := r.sessions[id]; ok {
		r.hotHits++
		r.touchLocked(s)
		r.mu.Unlock()
		return s, nil
	}
	st := r.store
	r.mu.Unlock()
	if st == nil {
		r.mu.Lock()
		r.misses++
		r.mu.Unlock()
		return nil, ErrSessionNotFound
	}

	// Cold load, outside the lock: stream the blob from disk, verify its
	// digest end to end (and that the digest matches the content
	// address), then decode and rebuild the engine.
	s, err := r.loadCold(st, id)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			r.mu.Lock()
			r.misses++
			r.mu.Unlock()
			return nil, ErrSessionNotFound
		}
		return nil, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if prior, ok := r.sessions[id]; ok { // lost a concurrent load race
		r.touchLocked(prior)
		return prior, nil
	}
	if err := r.makeRoomLocked(s.Bytes); err != nil {
		return nil, err
	}
	r.sessions[id] = s
	r.total += s.Bytes
	r.coldLoads++
	r.touchLocked(s)
	return s, nil
}

// loadCold rebuilds one session from its durable blob.
func (r *Registry) loadCold(st *store.Store, id string) (*Session, error) {
	b, err := st.Load(id)
	if err != nil {
		return nil, err
	}
	defer b.Close()
	if err := b.Verify(); err != nil {
		return nil, fmt.Errorf("serve: session %s: %w", id, err)
	}
	d := b.Digest()
	if hex.EncodeToString(d[:16]) != id {
		return nil, fmt.Errorf("serve: session %s: stored blob has wrong content address", id)
	}
	codec, err := r.evalKeyCodec()
	if err != nil {
		return nil, err
	}
	ek, err := codec.ReadEvalKeysAt(b, b.Size())
	if err != nil {
		return nil, fmt.Errorf("serve: session %s: %w", id, err)
	}
	eng, err := core.NewEvaluationEngine(r.p, ek)
	if err != nil {
		return nil, fmt.Errorf("serve: session %s: %w", id, err)
	}
	return &Session{ID: id, Eng: eng, Bytes: b.Size()}, nil
}

// Acquire pins the session against eviction for one in-flight request.
func (r *Registry) Acquire(s *Session) {
	r.mu.Lock()
	s.refs++
	r.touchLocked(s)
	r.mu.Unlock()
}

// Release drops one in-flight pin.
func (r *Registry) Release(s *Session) {
	r.mu.Lock()
	if s.refs > 0 {
		s.refs--
	}
	r.mu.Unlock()
}

func (r *Registry) touchLocked(s *Session) {
	r.clock++
	s.lastUsed = r.clock
}

// makeRoomLocked evicts idle sessions in LRU order until need bytes fit
// under the cap. Sessions with in-flight work are skipped; if the cap
// still cannot be met, ErrRegistryFull is returned and nothing changes
// (the candidate blob may also simply exceed the cap on its own).
func (r *Registry) makeRoomLocked(need int64) error {
	for r.total+need > r.capBytes {
		// Two-tier victim choice: any idle session the cluster says this
		// node no longer owns is evicted before any owned one; within a
		// tier, least recently used wins.
		var victim *Session
		victimOwned := true
		for _, s := range r.sessions {
			if s.refs > 0 {
				continue
			}
			sOwned := r.owned == nil || r.owned(s.ID)
			switch {
			case victim == nil,
				victimOwned && !sOwned,
				victimOwned == sOwned && s.lastUsed < victim.lastUsed:
				victim, victimOwned = s, sOwned
			}
		}
		if victim == nil {
			return ErrRegistryFull
		}
		delete(r.sessions, victim.ID)
		r.total -= victim.Bytes
		r.evictions++
	}
	return nil
}

// Stats returns the registry occupancy: session count, resident bytes,
// byte cap, and lifetime eviction count.
func (r *Registry) Stats() (count int, bytes, capBytes int64, evictions uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions), r.total, r.capBytes, r.evictions
}

// TierStats returns the lookup-tier counters: resident hits, disk
// reloads, and true misses.
func (r *Registry) TierStats() (hotHits, coldLoads, misses uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hotHits, r.coldLoads, r.misses
}

// StoreStats returns the durable tier's stats (ok=false when the
// registry is memory-only).
func (r *Registry) StoreStats() (store.Stats, bool) {
	r.mu.Lock()
	st := r.store
	r.mu.Unlock()
	if st == nil {
		return store.Stats{}, false
	}
	return st.Stats(), true
}
