package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"athena/internal/core"
)

// Session is one registered key owner: an evaluation-only engine built
// from uploaded material, usable from any number of connections.
type Session struct {
	ID string

	// Eng is the evaluation-only engine. Batch evaluation on it is
	// serialized by Mu (the engine's worker group is single-caller at
	// the top level); the dynamic batcher is what turns concurrent
	// requests into few large calls rather than many serialized ones.
	Eng *core.Engine
	Mu  sync.Mutex

	// Bytes is the session's memory charge against the registry cap
	// (the size of the uploaded key blob, which tracks the dominant
	// in-memory material: switching keys and packing keys).
	Bytes int64

	// refs counts in-flight work (admitted, not yet replied requests);
	// a referenced session is never evicted. Guarded by the registry
	// mutex.
	refs int
	// lastUsed is the registry's logical LRU clock value at the last
	// touch. Guarded by the registry mutex.
	lastUsed uint64
}

// ErrRegistryFull reports that a new session cannot fit under the
// memory cap because every resident session has in-flight work.
var ErrRegistryFull = fmt.Errorf("serve: session registry full (all sessions busy)")

// Registry holds sessions under a memory cap with LRU eviction.
// Sessions with in-flight requests are pinned; eviction only reclaims
// idle ones, so backpressure on the queue never drops an established
// session mid-request.
type Registry struct {
	p        core.Params
	codec    *core.EvalKeyCodec // built lazily on first Open
	codecErr error
	codecMu  sync.Mutex
	capBytes int64

	mu       sync.Mutex
	sessions map[string]*Session
	total    int64
	clock    uint64 // logical LRU clock: bumped on every touch

	// Evictions counts sessions dropped under memory pressure.
	evictions uint64
}

// NewRegistry builds a registry for servers at params p holding at most
// capBytes of session key material (0 means a 1 GiB default).
func NewRegistry(p core.Params, capBytes int64) *Registry {
	if capBytes <= 0 {
		capBytes = 1 << 30
	}
	return &Registry{p: p, capBytes: capBytes, sessions: make(map[string]*Session)}
}

// SessionID derives the content-addressed session ID of a key blob.
func SessionID(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:16])
}

// Open registers (or finds) the session for an uploaded eval-keys blob.
// The ID is content-addressed, so re-uploading identical material
// reuses the resident session without rebuilding the engine.
func (r *Registry) Open(blob []byte) (s *Session, created bool, err error) {
	id := SessionID(blob)
	r.mu.Lock()
	if s, ok := r.sessions[id]; ok {
		r.touchLocked(s)
		r.mu.Unlock()
		return s, false, nil
	}
	r.mu.Unlock()

	// Build the engine outside the lock: decoding and key validation
	// are the expensive part, and concurrent opens of distinct sessions
	// should not serialize on the registry.
	codec, err := r.evalKeyCodec()
	if err != nil {
		return nil, false, err
	}
	ek, err := codec.ReadEvalKeys(bytes.NewReader(blob))
	if err != nil {
		return nil, false, err
	}
	eng, err := core.NewEvaluationEngine(r.p, ek)
	if err != nil {
		return nil, false, err
	}
	s = &Session{ID: id, Eng: eng, Bytes: int64(len(blob))}

	r.mu.Lock()
	defer r.mu.Unlock()
	if prior, ok := r.sessions[id]; ok { // lost a concurrent open race
		r.touchLocked(prior)
		return prior, false, nil
	}
	if err := r.makeRoomLocked(s.Bytes); err != nil {
		return nil, false, err
	}
	r.sessions[id] = s
	r.total += s.Bytes
	r.touchLocked(s)
	return s, true, nil
}

// evalKeyCodec builds (once) the bundle decoder for the registry's
// parameter set.
func (r *Registry) evalKeyCodec() (*core.EvalKeyCodec, error) {
	r.codecMu.Lock()
	defer r.codecMu.Unlock()
	if r.codec == nil && r.codecErr == nil {
		r.codec, r.codecErr = core.NewEvalKeyCodec(r.p)
	}
	return r.codec, r.codecErr
}

// Get returns the session by ID, refreshing its LRU position.
func (r *Registry) Get(id string) (*Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if ok {
		r.touchLocked(s)
	}
	return s, ok
}

// Acquire pins the session against eviction for one in-flight request.
func (r *Registry) Acquire(s *Session) {
	r.mu.Lock()
	s.refs++
	r.touchLocked(s)
	r.mu.Unlock()
}

// Release drops one in-flight pin.
func (r *Registry) Release(s *Session) {
	r.mu.Lock()
	if s.refs > 0 {
		s.refs--
	}
	r.mu.Unlock()
}

func (r *Registry) touchLocked(s *Session) {
	r.clock++
	s.lastUsed = r.clock
}

// makeRoomLocked evicts idle sessions in LRU order until need bytes fit
// under the cap. Sessions with in-flight work are skipped; if the cap
// still cannot be met, ErrRegistryFull is returned and nothing changes
// (the candidate blob may also simply exceed the cap on its own).
func (r *Registry) makeRoomLocked(need int64) error {
	for r.total+need > r.capBytes {
		var victim *Session
		for _, s := range r.sessions {
			if s.refs > 0 {
				continue
			}
			if victim == nil || s.lastUsed < victim.lastUsed {
				victim = s
			}
		}
		if victim == nil {
			return ErrRegistryFull
		}
		delete(r.sessions, victim.ID)
		r.total -= victim.Bytes
		r.evictions++
	}
	return nil
}

// Stats returns the registry occupancy: session count, resident bytes,
// byte cap, and lifetime eviction count.
func (r *Registry) Stats() (count int, bytes, capBytes int64, evictions uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions), r.total, r.capBytes, r.evictions
}
