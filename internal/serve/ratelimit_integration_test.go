package serve_test

import (
	"errors"
	"testing"
	"time"

	"athena/internal/serve"
	"athena/internal/serve/client"
)

// TestServeRateLimit: with a per-client token bucket configured, a
// client that exhausts its burst gets the typed BUSY immediately (no
// queueing), the rejection is counted separately from queue
// backpressure, and advancing the clock refills admission — all on the
// manual clock, so the test is deterministic.
func TestServeRateLimit(t *testing.T) {
	eng := itEngine(t)
	model := serve.DemoNet()
	clk := serve.NewManualClock()
	srv, addr := startServer(t, serve.Config{
		MaxBatch:   1, // flush on every request: MaxWait never matters
		MaxWait:    time.Hour,
		MaxQueue:   64,
		Clock:      clk,
		RatePerSec: 1,
		Burst:      2,
	})

	c, err := client.Dial(addr, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.OpenSession(); err != nil {
		t.Fatal(err)
	}

	// The burst admits two requests back to back.
	for i := 0; i < 2; i++ {
		if _, err := c.Infer(model, serve.DemoInput(uint64(700+i)), 0); err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
	}
	// The third is over budget: typed BUSY, straight away.
	_, err = c.Infer(model, serve.DemoInput(702), 0)
	var re *serve.RequestError
	if !errors.As(err, &re) || re.Code != serve.CodeBusy {
		t.Fatalf("over-rate request: got %v, want BUSY", err)
	}

	// One simulated second refills one token.
	clk.Advance(time.Second)
	if _, err := c.Infer(model, serve.DemoInput(703), 0); err != nil {
		t.Fatalf("request after refill: %v", err)
	}

	snap := srv.Metrics()
	if snap.Requests.RateLimited != 1 {
		t.Fatalf("rate_limited=%d, want 1", snap.Requests.RateLimited)
	}
	if snap.Requests.RejectedBusy != 0 {
		t.Fatalf("rejected_busy=%d: rate limiting leaked into queue backpressure", snap.Requests.RejectedBusy)
	}
	if snap.Requests.Completed != 3 {
		t.Fatalf("completed=%d, want 3", snap.Requests.Completed)
	}

	// A second connection has its own bucket: it is admitted even though
	// the first connection's bucket is dry.
	c2, err := client.Dial(addr, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Attach(c.SessionID()); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Infer(model, serve.DemoInput(704), 0); err != nil {
		t.Fatalf("fresh client rate-limited by a stranger's bucket: %v", err)
	}
}
