package serve

import (
	"math/rand/v2"

	"athena/internal/coeffenc"
	"athena/internal/qnn"
)

// DemoNet builds the deterministic "wire-demo" network shared by
// cmd/athena-serve's default configuration, examples/clientserver, the
// serve integration tests, and the ServeThroughput benchmark: a 4×4
// conv+ReLU layer feeding a 4-class dense head, weights drawn from a
// fixed PRNG so every process builds byte-identical models. The sizing
// is deliberate: the 1/16 first-layer multiplier keeps activations ≤ 3
// and the 32-input, 1/8-multiplier dense head keeps the accumulated per-activation
// e_ms noise within the repo's ±3 batched tolerance at t = 257 (a
// wider 72-input head was measured at ±6).
func DemoNet() *qnn.QNetwork {
	rng := rand.New(rand.NewPCG(7, 8))
	mk := func(shape coeffenc.ConvShape, act qnn.Activation, mult float64) *qnn.QConv {
		w := make([][][][]int64, shape.Cout)
		for co := range w {
			w[co] = make([][][]int64, shape.Cin)
			for ci := range w[co] {
				w[co][ci] = make([][]int64, shape.K)
				for i := range w[co][ci] {
					w[co][ci][i] = make([]int64, shape.K)
					for j := range w[co][ci][i] {
						w[co][ci][i][j] = int64(rng.IntN(3)) - 1
					}
				}
			}
		}
		return &qnn.QConv{Shape: shape, Weights: w, Bias: make([]int64, shape.Cout),
			Act: act, Multiplier: mult, ActBits: 4, MaxAcc: 120, IsDense: shape.H == 1}
	}
	return &qnn.QNetwork{
		Name: "wire-demo", InC: 1, InH: 4, InW: 4, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			mk(coeffenc.ConvShape{H: 4, W: 4, Cin: 1, Cout: 2, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16),
			mk(coeffenc.FCShape(2*4*4, 4), qnn.ActNone, 1.0/8),
		}},
	}
}

// DemoInput draws a deterministic input tensor for DemoNet from seed.
func DemoInput(seed uint64) *qnn.IntTensor {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	x := qnn.NewIntTensor(1, 4, 4)
	for i := range x.Data {
		x.Data[i] = int64(rng.IntN(8))
	}
	return x
}
