package serve

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"athena/internal/core"
	"athena/internal/qnn"
)

func newFakeClock() *ManualClock { return NewManualClock() }

// batchRecorder is an injected evaluator that records realized batch
// sizes and optionally blocks until released.
type batchRecorder struct {
	mu    sync.Mutex
	sizes []int
	gate  chan struct{} // nil = don't block
}

func (r *batchRecorder) eval(_ *Session, _ *qnn.QNetwork, ins []*core.EncryptedInput) ([]*core.EncryptedLogits, error) {
	if r.gate != nil {
		<-r.gate
	}
	r.mu.Lock()
	r.sizes = append(r.sizes, len(ins))
	r.mu.Unlock()
	return make([]*core.EncryptedLogits, len(ins)), nil
}

func (r *batchRecorder) batchSizes() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.sizes...)
}

var batcherTestModel = &qnn.QNetwork{Name: "m"}

func testRequest(sess *Session, done chan error) *Request {
	return &Request{
		Sess:  sess,
		Model: batcherTestModel,
		In:    &core.EncryptedInput{},
		Done:  func(_ *core.EncryptedLogits, err error) { done <- err },
	}
}

func collect(t *testing.T, done chan error, n int) []error {
	t.Helper()
	errs := make([]error, 0, n)
	for i := 0; i < n; i++ {
		select {
		case err := <-done:
			errs = append(errs, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for reply %d/%d", i+1, n)
		}
	}
	return errs
}

// TestBatcherFlushOnFull: MaxBatch requests flush immediately, without
// waiting for the deadline timer.
func TestBatcherFlushOnFull(t *testing.T) {
	clk := newFakeClock()
	rec := &batchRecorder{}
	b := NewBatcher(BatcherConfig{MaxBatch: 4, MaxWait: time.Hour, MaxQueue: 16, Clock: clk, Eval: rec.eval}, nil)
	defer b.Drain()
	sess := &Session{ID: "s"}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		if err := b.Submit(testRequest(sess, done)); err != nil {
			t.Fatal(err)
		}
	}
	// No clock advance: the flush must have come from batch-full.
	for _, err := range collect(t, done, 4) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.batchSizes(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("batch sizes %v, want [4]", got)
	}
}

// TestBatcherFlushOnDeadline: a partial batch flushes when MaxWait
// elapses, and not before.
func TestBatcherFlushOnDeadline(t *testing.T) {
	clk := newFakeClock()
	rec := &batchRecorder{}
	b := NewBatcher(BatcherConfig{MaxBatch: 100, MaxWait: 50 * time.Millisecond, MaxQueue: 16, Clock: clk, Eval: rec.eval}, nil)
	defer b.Drain()
	sess := &Session{ID: "s"}
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		if err := b.Submit(testRequest(sess, done)); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(49 * time.Millisecond)
	if got := rec.batchSizes(); len(got) != 0 {
		t.Fatalf("flushed before MaxWait: %v", got)
	}
	clk.Advance(1 * time.Millisecond)
	for _, err := range collect(t, done, 2) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.batchSizes(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("batch sizes %v, want [2]", got)
	}
}

// TestBatcherStraggler: a single request still completes after MaxWait
// — nobody waits forever for company.
func TestBatcherStraggler(t *testing.T) {
	clk := newFakeClock()
	rec := &batchRecorder{}
	b := NewBatcher(BatcherConfig{MaxBatch: 100, MaxWait: 20 * time.Millisecond, MaxQueue: 16, Clock: clk, Eval: rec.eval}, nil)
	defer b.Drain()
	done := make(chan error, 1)
	if err := b.Submit(testRequest(&Session{ID: "s"}, done)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(20 * time.Millisecond)
	if err := collect(t, done, 1)[0]; err != nil {
		t.Fatal(err)
	}
	if got := rec.batchSizes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("batch sizes %v, want [1]", got)
	}
}

// TestBatcherQueueFullBusy: admission beyond MaxQueue returns ErrBusy;
// after the queue empties, admission succeeds again.
func TestBatcherQueueFullBusy(t *testing.T) {
	clk := newFakeClock()
	rec := &batchRecorder{}
	b := NewBatcher(BatcherConfig{MaxBatch: 100, MaxWait: time.Minute, MaxQueue: 2, Clock: clk, Eval: rec.eval}, nil)
	defer b.Drain()
	sess := &Session{ID: "s"}
	done := make(chan error, 3)
	for i := 0; i < 2; i++ {
		if err := b.Submit(testRequest(sess, done)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Submit(testRequest(sess, done)); err != ErrBusy {
		t.Fatalf("third submit: got %v, want ErrBusy", err)
	}
	clk.Advance(time.Minute)
	for _, err := range collect(t, done, 2) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Submit(testRequest(sess, done)); err != nil {
		t.Fatalf("submit after flush: %v", err)
	}
	clk.Advance(time.Minute)
	if err := collect(t, done, 1)[0]; err != nil {
		t.Fatal(err)
	}
}

// TestBatcherRequestDeadline: a request whose deadline passes while it
// waits is answered with CodeDeadline and never evaluated.
func TestBatcherRequestDeadline(t *testing.T) {
	clk := newFakeClock()
	rec := &batchRecorder{}
	b := NewBatcher(BatcherConfig{MaxBatch: 100, MaxWait: 100 * time.Millisecond, MaxQueue: 16, Clock: clk, Eval: rec.eval}, nil)
	defer b.Drain()
	sess := &Session{ID: "s"}
	expired := make(chan error, 1)
	alive := make(chan error, 1)
	r1 := testRequest(sess, expired)
	r1.Deadline = clk.Now().Add(10 * time.Millisecond) // dies before the 100ms flush
	if err := b.Submit(r1); err != nil {
		t.Fatal(err)
	}
	r2 := testRequest(sess, alive)
	r2.Deadline = clk.Now().Add(time.Hour)
	if err := b.Submit(r2); err != nil {
		t.Fatal(err)
	}
	clk.Advance(100 * time.Millisecond)
	err := collect(t, expired, 1)[0]
	var re *RequestError
	if !errors.As(err, &re) || re.Code != CodeDeadline {
		t.Fatalf("expired request: got %v, want CodeDeadline", err)
	}
	if err := collect(t, alive, 1)[0]; err != nil {
		t.Fatalf("live request: %v", err)
	}
	if got := rec.batchSizes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("batch sizes %v, want [1] (expired request must not evaluate)", got)
	}
}

// TestBatcherDrain: Drain flushes forming groups immediately, answers
// every admitted request, and rejects later submissions.
func TestBatcherDrain(t *testing.T) {
	clk := newFakeClock()
	rec := &batchRecorder{}
	b := NewBatcher(BatcherConfig{MaxBatch: 100, MaxWait: time.Hour, MaxQueue: 16, Clock: clk, Eval: rec.eval}, nil)
	sess := &Session{ID: "s"}
	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		if err := b.Submit(testRequest(sess, done)); err != nil {
			t.Fatal(err)
		}
	}
	b.Drain() // no clock advance: drain itself must flush
	for _, err := range collect(t, done, 3) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.batchSizes(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("batch sizes %v, want [3]", got)
	}
	if err := b.Submit(testRequest(sess, done)); err != ErrDraining {
		t.Fatalf("submit after drain: got %v, want ErrDraining", err)
	}
}

// TestBatcherPerSessionGrouping: requests of different sessions never
// share a batch.
func TestBatcherPerSessionGrouping(t *testing.T) {
	clk := newFakeClock()
	rec := &batchRecorder{}
	b := NewBatcher(BatcherConfig{MaxBatch: 100, MaxWait: 10 * time.Millisecond, MaxQueue: 16, Clock: clk, Eval: rec.eval}, nil)
	defer b.Drain()
	done := make(chan error, 4)
	a, c := &Session{ID: "a"}, &Session{ID: "c"}
	for i := 0; i < 2; i++ {
		if err := b.Submit(testRequest(a, done)); err != nil {
			t.Fatal(err)
		}
		if err := b.Submit(testRequest(c, done)); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(10 * time.Millisecond)
	for _, err := range collect(t, done, 4) {
		if err != nil {
			t.Fatal(err)
		}
	}
	sizes := rec.batchSizes()
	sort.Ints(sizes)
	if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("batch sizes %v, want [2 2] (one batch per session)", sizes)
	}
}
