package serve

import "testing"

// TestRedirectRoundTrip: Encode→Decode is the identity.
func TestRedirectRoundTrip(t *testing.T) {
	b := EncodeRedirect(42, "10.0.0.7:7700", "00112233445566778899aabbccddeeff")
	reqID, addr, session, err := DecodeRedirect(b)
	if err != nil {
		t.Fatal(err)
	}
	if reqID != 42 || addr != "10.0.0.7:7700" || session != "00112233445566778899aabbccddeeff" {
		t.Fatalf("roundtrip got (%d, %q, %q)", reqID, addr, session)
	}
}

// TestRedirectMalformed: every truncation and corruption errors — no
// panic, no garbage acceptance. These shapes are what a hostile or
// buggy router could emit.
func TestRedirectMalformed(t *testing.T) {
	good := EncodeRedirect(7, "host:1", "abc")
	cases := map[string][]byte{
		"empty":                  {},
		"short header":           good[:5],
		"header only":            good[:8],
		"truncated addr length":  good[:9],
		"truncated addr body":    good[:12],
		"missing session":        good[:8+2+6],
		"truncated session body": good[:len(good)-1],
		"trailing bytes":         append(append([]byte{}, good...), 0xFF),
		"overlong addr length": func() []byte {
			b := append([]byte{}, good...)
			b[8], b[9] = 0xFF, 0xFF // addr length 65535 >> payload
			return b
		}(),
	}
	for name, b := range cases {
		if _, _, _, err := DecodeRedirect(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestErrCodeStrings: the new cluster codes render their typed names.
func TestErrCodeStrings(t *testing.T) {
	if got := CodeNeedKeys.String(); got != "NEED_KEYS" {
		t.Fatalf("CodeNeedKeys renders %q", got)
	}
	if got := CodeUnavailable.String(); got != "UNAVAILABLE" {
		t.Fatalf("CodeUnavailable renders %q", got)
	}
}
