package serve_test

import (
	"bytes"
	"encoding/binary"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"athena/internal/serve"
	"athena/internal/serve/client"
)

// TestServeStoreRestart is the in-process half of the persistence gate:
// a store-enabled server is shut down cleanly and rebuilt on the same
// data dir, and the session uploaded before the restart attaches and
// serves a correct encrypted batch without re-upload.
func TestServeStoreRestart(t *testing.T) {
	eng := itEngine(t)
	model := serve.DemoNet()
	dir := t.TempDir()

	srv1, addr1 := startServer(t, serve.Config{
		MaxWait: 5 * time.Millisecond,
		DataDir: dir,
	})
	c1, err := client.Dial(addr1, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := c1.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	x := serve.DemoInput(42)
	want := model.ForwardInt(x).Data
	got, err := c1.Infer(model, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !int64sEqual(got, want) {
		t.Fatal("pre-restart inference wrong")
	}
	c1.Close()
	srv1.Shutdown()

	srv2, addr2 := startServer(t, serve.Config{
		MaxWait: 5 * time.Millisecond,
		DataDir: dir,
	})
	if rec := srv2.Recovery(); rec.Entries != 1 {
		t.Fatalf("recovery found %d sessions, want 1 (%+v)", rec.Entries, rec)
	}
	c2, err := client.Dial(addr2, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Attach by ID — no key re-upload.
	if err := c2.Attach(id); err != nil {
		t.Fatalf("attach after restart: %v", err)
	}
	got2, err := c2.Infer(model, serve.DemoInput(43), 0)
	if err != nil {
		t.Fatalf("inference from cold-loaded session: %v", err)
	}
	if !int64sEqual(got2, model.ForwardInt(serve.DemoInput(43)).Data) {
		t.Fatal("post-restart inference wrong")
	}
	snap := srv2.Metrics()
	if snap.Sessions.ColdLoads != 1 {
		t.Fatalf("cold_loads=%d want 1", snap.Sessions.ColdLoads)
	}
	if snap.Store == nil || snap.Store.Entries != 1 {
		t.Fatalf("store snapshot missing or wrong: %+v", snap.Store)
	}
	// An ID nobody uploaded stays a miss.
	c3, err := client.Dial(addr2, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if err := c3.Attach("ffffffffffffffffffffffffffffffff"); err == nil {
		t.Fatal("bogus session ID attached")
	}
}

// int64sEqual compares decrypted logits against the plaintext
// reference within the engine's rounding-noise tolerance (same ±3 band
// the other integration tests use).
func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if d := a[i] - b[i]; d < -3 || d > 3 {
			return false
		}
	}
	return true
}

// TestCrashRecoverySIGKILL is the hard half of the persistence gate: a
// real athena-serve process is SIGKILLed with an upload torn mid-frame
// on one connection and encrypted batches in flight on another, then
// restarted on the same data dir. Every acked session must serve
// without re-upload; the torn upload must not exist. Gated on
// ATHENA_SERVE_BIN (CI builds the binary; locally: make crash-test).
func TestCrashRecoverySIGKILL(t *testing.T) {
	bin := os.Getenv("ATHENA_SERVE_BIN")
	if bin == "" {
		t.Skip("ATHENA_SERVE_BIN not set; run via make crash-test")
	}
	eng := itEngine(t)
	model := serve.DemoNet()
	dir := t.TempDir()

	addr := freeAddr(t)
	proc := startServeProc(t, bin, addr, dir)

	c1, err := client.Dial(addr, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := c1.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	x := serve.DemoInput(7)
	want := model.ForwardInt(x).Data
	got, err := c1.Infer(model, x, 0)
	if err != nil || !int64sEqual(got, want) {
		t.Fatalf("pre-crash inference: err=%v", err)
	}

	// Torn upload: a SessionNew frame whose header promises far more
	// payload than we send. The server is mid-read when the process dies;
	// nothing about this session was ever acked, so nothing of it may
	// survive.
	torn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer torn.Close()
	var hdr [serve.FrameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], serve.ProtoMagic)
	hdr[4] = serve.ProtoVersion
	hdr[5] = byte(serve.FrameSessionNew)
	binary.LittleEndian.PutUint32(hdr[8:12], 1<<20)
	if _, err := torn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := torn.Write(bytes.Repeat([]byte{0xAA}, 4096)); err != nil {
		t.Fatal(err)
	}

	// Mid-batch: fire encrypted requests and kill without waiting.
	go func() {
		for i := 0; i < 4; i++ {
			in, err := eng.EncryptInput(model, serve.DemoInput(uint64(100+i)))
			if err != nil {
				return
			}
			c1.InferEncrypted(model, in, 0) // may die mid-flight; that's the point
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := proc.Process.Kill(); err != nil { // SIGKILL, no drain
		t.Fatal(err)
	}
	proc.Wait()
	c1.Close()

	// Simulate the torn tail a power cut leaves: junk after the last
	// intact WAL record.
	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x31, 0x4c, 0x57})
	f.Close()

	// Restart on the same data dir.
	addr2 := freeAddr(t)
	startServeProc(t, bin, addr2, dir)

	c2, err := client.Dial(addr2, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// The acked session attaches without re-upload and computes
	// correctly from disk.
	if err := c2.Attach(id); err != nil {
		t.Fatalf("acked session lost across SIGKILL: %v", err)
	}
	got2, err := c2.Infer(model, serve.DemoInput(8), 0)
	if err != nil {
		t.Fatalf("post-crash inference: %v", err)
	}
	if !int64sEqual(got2, model.ForwardInt(serve.DemoInput(8)).Data) {
		t.Fatal("post-crash inference wrong")
	}
	// The torn upload was never acked: its would-be session must not
	// exist under any ID we can derive, and the server must stay healthy.
	c3, err := client.Dial(addr2, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if err := c3.Attach(serve.SessionID(bytes.Repeat([]byte{0xAA}, 4096))); err == nil {
		t.Fatal("torn upload visible after restart")
	}
	snap, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Store == nil {
		t.Fatal("restarted server runs without the durable tier")
	}
	if snap.Store.Entries != 1 {
		t.Fatalf("store holds %d entries after recovery, want exactly the acked session", snap.Store.Entries)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func startServeProc(t *testing.T, bin, addr, dir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-data-dir", dir, "-max-wait", "5ms")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			return cmd
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("server at %s never came up", addr)
	return nil
}
