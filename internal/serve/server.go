package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"athena/internal/core"
	"athena/internal/qnn"
	"athena/internal/store"
)

// Config configures a Server.
type Config struct {
	// Params are the FHE parameters every client must share.
	Params core.Params
	// Models maps model name → network hosted by this server.
	Models map[string]*qnn.QNetwork

	// Batcher tuning (zero values take the BatcherConfig defaults).
	MaxBatch  int
	MaxWait   time.Duration
	MaxQueue  int
	Executors int

	// MemCapBytes caps resident session key material (0 = 1 GiB).
	MemCapBytes int64
	// MaxFrame bounds one frame payload (0 = DefaultMaxFrame).
	MaxFrame uint32

	// DataDir enables the durable session tier: uploaded key blobs are
	// WAL-persisted here before the upload is acked, survive restarts,
	// and evicted sessions reload from disk on attach ("" = memory-only,
	// the previous behavior).
	DataDir string
	// DiskCapBytes bounds the durable tier's on-disk footprint; under
	// pressure the least-recently-accessed entries are evicted
	// (0 = unbounded). Only meaningful with DataDir set.
	DiskCapBytes int64

	// RatePerSec enables token-bucket admission per client connection:
	// each inference request spends one token, refilled at this rate up
	// to Burst. Exhaustion answers the request with the typed BUSY the
	// clients already back off on (0 = no rate limit).
	RatePerSec float64
	// Burst is the token-bucket capacity (≥1 once rate limiting is on;
	// 0 takes a default of 2× MaxBatch so a well-behaved client can
	// fill a batch without tripping the limiter).
	Burst int

	// ReadTimeout bounds the wait for the next frame on an idle
	// connection; WriteTimeout bounds one reply write. Zero values take
	// generous defaults (10 min read, 30 s write).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration

	// Clock overrides time for tests (nil = wall clock).
	Clock Clock
}

// Server hosts encrypted inference over the frame protocol.
type Server struct {
	cfg      Config
	registry *Registry
	batcher  *Batcher
	metrics  *Metrics
	store    *store.Store   // nil when DataDir is unset
	recovery store.Recovery // what Open found in DataDir

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	connWG sync.WaitGroup
}

// NewServer validates cfg and builds the serving stack (registry,
// batcher, metrics). Call Serve or ListenAndServe to accept clients.
func NewServer(cfg Config) (*Server, error) {
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("serve: no models configured")
	}
	for name, q := range cfg.Models {
		if q == nil || q.Name != name {
			return nil, fmt.Errorf("serve: model entry %q does not match network name", name)
		}
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 10 * time.Minute
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	if cfg.RatePerSec < 0 {
		return nil, fmt.Errorf("serve: negative rate %v", cfg.RatePerSec)
	}
	if cfg.RatePerSec > 0 && cfg.Burst == 0 {
		mb := cfg.MaxBatch
		if mb <= 0 {
			mb = 16
		}
		cfg.Burst = 2 * mb
	}
	m := NewMetrics()
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(cfg.Params, cfg.MemCapBytes),
		metrics:  m,
		conns:    make(map[net.Conn]struct{}),
	}
	if cfg.DataDir != "" {
		st, rec, err := store.Open(cfg.DataDir, store.Options{DiskCapBytes: cfg.DiskCapBytes})
		if err != nil {
			return nil, fmt.Errorf("serve: opening session store: %w", err)
		}
		s.store, s.recovery = st, rec
		s.registry.SetStore(st)
	}
	s.batcher = NewBatcher(BatcherConfig{
		MaxBatch:  cfg.MaxBatch,
		MaxWait:   cfg.MaxWait,
		MaxQueue:  cfg.MaxQueue,
		Executors: cfg.Executors,
		Clock:     cfg.Clock,
	}, m)
	return s, nil
}

// Metrics exposes the server's counters (for admin endpoints and tests).
func (s *Server) Metrics() Snapshot { return s.metrics.Snapshot(s.registry, s.batcher) }

// Recovery reports what the durable tier found on boot (zero value when
// DataDir is unset).
func (s *Server) Recovery() store.Recovery { return s.recovery }

// SetSessionOwnership installs the cluster's ownership predicate:
// owned(id) reports whether this node currently owns session id on the
// consistent-hash ring. Sessions the node does not own become the
// preferred eviction victims in both tiers (registry LRU and durable
// store), so a drained-away session's key material yields its RAM and
// disk to sessions the node actually serves. nil clears the hint
// (every session treated as owned). Safe to call while serving; the
// predicate must be safe for concurrent use.
func (s *Server) SetSessionOwnership(owned func(id string) bool) {
	s.registry.SetOwned(owned)
	if s.store != nil {
		s.store.SetEvictionHint(owned)
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listener address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on ln until the listener is closed by
// Shutdown. It returns nil after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		_ = ln.Close()
		return fmt.Errorf("serve: server already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.metrics.ConnOpened()
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// Shutdown drains the server: the listener stops accepting, queued and
// in-flight requests complete (new ones are rejected with DRAINING),
// then every connection is closed. Safe to call more than once.
func (s *Server) Shutdown() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	if already {
		return
	}
	// Let every admitted request finish and be answered first.
	s.batcher.Drain()
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	// With all traffic drained, flush the memtable and release the WAL.
	if s.store != nil {
		_ = s.store.Close()
	}
}

// conn is the per-connection state: the attached session (if any) and a
// write mutex so executor callbacks and the read loop never interleave
// reply frames.
type connState struct {
	s    *Server
	conn net.Conn

	wmu  sync.Mutex
	wbuf []byte // reusable frame staging, guarded by wmu
	sess *Session

	// limiter is the per-client token bucket (nil = unlimited). It is
	// only touched from this connection's read loop.
	limiter *tokenBucket
}

func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	st := &connState{s: s, conn: c}
	if s.cfg.RatePerSec > 0 {
		st.limiter = newTokenBucket(s.cfg.Clock, s.cfg.RatePerSec, s.cfg.Burst)
	}
	defer func() {
		_ = c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()

	// Every dispatch path consumes its payload before returning (session
	// blobs and inference inputs are parsed, not retained), so one arena
	// serves the whole connection without per-frame allocations.
	var arena []byte
	for {
		if err := c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
			return
		}
		typ, payload, err := ReadFrameInto(c, &arena, s.cfg.MaxFrame)
		if err != nil {
			return // io error, timeout, or clean EOF: drop the connection
		}
		if !s.dispatch(st, typ, payload) {
			return
		}
	}
}

// dispatch handles one frame; false closes the connection.
func (s *Server) dispatch(st *connState, typ FrameType, payload []byte) bool {
	switch typ {
	case FrameSessionNew:
		sess, created, err := s.registry.Open(payload)
		if err != nil {
			code := CodeBadRequest
			if errors.Is(err, ErrRegistryFull) {
				code = CodeRegistryFull
			}
			return st.writeError(0, code, err.Error())
		}
		if created {
			s.metrics.SessionOpened()
		}
		st.sess = sess
		return st.write(FrameSessionOK, EncodeSessionID(sess.ID))

	case FrameSessionAttach:
		id, err := DecodeSessionID(payload)
		if err != nil {
			return st.writeError(0, CodeBadRequest, err.Error())
		}
		sess, lerr := s.registry.Lookup(id)
		if lerr != nil {
			switch {
			case errors.Is(lerr, ErrSessionNotFound):
				return st.writeError(0, CodeSessionNotFound, "unknown or evicted session "+id)
			case errors.Is(lerr, ErrRegistryFull):
				return st.writeError(0, CodeRegistryFull, lerr.Error())
			default:
				return st.writeError(0, CodeInternal, lerr.Error())
			}
		}
		st.sess = sess
		return st.write(FrameSessionOK, EncodeSessionID(sess.ID))

	case FrameInfer:
		return s.handleInfer(st, payload)

	case FrameStats:
		doc, err := json.Marshal(s.Metrics())
		if err != nil {
			return st.writeError(0, CodeInternal, err.Error())
		}
		return st.write(FrameStatsReply, doc)

	default:
		return st.writeError(0, CodeBadRequest, fmt.Sprintf("unexpected frame type %d", typ))
	}
}

func (s *Server) handleInfer(st *connState, payload []byte) bool {
	req, err := DecodeInfer(payload)
	if err != nil {
		return st.writeError(0, CodeBadRequest, err.Error())
	}
	if st.sess == nil {
		return st.writeError(req.ReqID, CodeNoSession, "open or attach a session before inference")
	}
	model, ok := s.cfg.Models[req.Model]
	if !ok {
		return st.writeError(req.ReqID, CodeModelNotFound, "model "+req.Model+" not hosted")
	}
	// Admission control runs before the expensive input decode: a client
	// over its rate budget costs the server one frame read and a typed
	// reply, nothing more.
	if !st.limiter.allow() {
		s.metrics.RateLimited()
		return st.writeError(req.ReqID, CodeBusy, "client rate limit exceeded")
	}
	in, err := st.sess.Eng.ReadEncryptedInput(model, bytes.NewReader(req.Input))
	if err != nil {
		return st.writeError(req.ReqID, CodeBadRequest, "input: "+err.Error())
	}
	var deadline time.Time
	if req.DeadlineMS > 0 {
		deadline = s.cfg.Clock.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}

	sess := st.sess
	s.registry.Acquire(sess)
	reqID := req.ReqID
	err = s.batcher.Submit(&Request{
		ID:       reqID,
		Sess:     sess,
		Model:    model,
		In:       in,
		Deadline: deadline,
		Done: func(out *core.EncryptedLogits, rerr error) {
			defer s.registry.Release(sess)
			if rerr != nil {
				var re *RequestError
				if errors.As(rerr, &re) {
					if re.Code == CodeDeadline {
						s.metrics.DeadlineExpired()
					} else {
						s.metrics.Failed()
					}
					st.writeError(reqID, re.Code, re.Msg)
				} else {
					s.metrics.Failed()
					st.writeError(reqID, CodeInternal, rerr.Error())
				}
				return
			}
			var buf bytes.Buffer
			if werr := sess.Eng.WriteEncryptedLogits(out, &buf); werr != nil {
				s.metrics.Failed()
				st.writeError(reqID, CodeInternal, werr.Error())
				return
			}
			s.metrics.Completed()
			st.write(FrameResult, EncodeResult(reqID, buf.Bytes()))
		},
	})
	if err != nil {
		s.registry.Release(sess)
		var re *RequestError
		if errors.As(err, &re) {
			if re.Code == CodeBusy {
				s.metrics.RejectedBusy()
			}
			// Backpressure is a per-request reply; the connection and its
			// session stay established.
			return st.writeError(reqID, re.Code, re.Msg)
		}
		return st.writeError(reqID, CodeBadRequest, err.Error())
	}
	s.metrics.Accepted()
	return true
}

// write sends one frame under the connection write lock and deadline.
// The frame is staged in the connection's reusable buffer and flushed
// with a single Write, so replies cost one syscall and no per-frame
// allocations.
func (st *connState) write(typ FrameType, payload []byte) bool {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	if err := st.conn.SetWriteDeadline(time.Now().Add(st.s.cfg.WriteTimeout)); err != nil {
		return false
	}
	st.wbuf = AppendFrame(st.wbuf[:0], typ, payload)
	//lint:holdok wmu exists to serialize frame writes on this connection; the deadline-bounded write is the critical section
	_, err := st.conn.Write(st.wbuf)
	return err == nil
}

func (st *connState) writeError(reqID uint64, code ErrCode, msg string) bool {
	return st.write(FrameError, EncodeError(reqID, code, msg))
}

// AdminHandler returns an http.Handler exposing GET /metrics as the
// JSON snapshot (for a sidecar admin listener).
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Metrics()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
