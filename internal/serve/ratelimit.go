package serve

import "time"

// tokenBucket is per-client admission control: each inference request
// spends one token; tokens refill continuously at rate per second up to
// burst. Time comes from the injected Clock, so the refill schedule is
// deterministic under ManualClock in tests. The zero-size struct is
// never used — build with newTokenBucket; a nil *tokenBucket admits
// everything (rate limiting disabled).
//
// The bucket is used from a single connection's read loop, so it needs
// no lock of its own.
type tokenBucket struct {
	clk    Clock
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// newTokenBucket builds a full bucket. rate must be > 0; burst < 1 is
// raised to 1 so a conforming client can always make progress.
func newTokenBucket(clk Clock, rate float64, burst int) *tokenBucket {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{clk: clk, rate: rate, burst: b, tokens: b, last: clk.Now()}
}

// allow spends one token if available, refilling for the elapsed time
// first. A nil bucket always allows.
func (tb *tokenBucket) allow() bool {
	if tb == nil {
		return true
	}
	now := tb.clk.Now()
	if elapsed := now.Sub(tb.last); elapsed > 0 {
		tb.tokens += elapsed.Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}
