// Package serve implements the Athena inference server: a framed TCP
// protocol over the core wire formats, a session registry keyed by
// uploaded evaluation-key material, a dynamic batcher that coalesces
// concurrent requests into shared-FBS InferBatch rounds, bounded
// admission with explicit backpressure, and a metrics snapshot.
//
// Protocol. Every message is one frame:
//
//	magic(u32 "ASV1") | version(u8) | type(u8) | reserved(u16) | length(u32) | payload[length]
//
// all little-endian. Frames are length-prefixed and bounded (MaxFrame),
// so a reader always knows how many bytes to consume and a slow or
// truncated peer surfaces as an io error/deadline, never a desync. The
// payloads reuse the repository wire formats: a session-open payload is
// the core.WriteEvalKeys bundle, an inference payload wraps
// core.WriteEncryptedInput bytes, a result wraps
// core.WriteEncryptedLogits bytes.
//
// Session lifecycle: SessionNew uploads evaluation keys; the session ID
// is content-addressed (hex of the blob's SHA-256 prefix), so
// re-uploading the same material lands on the same session. SessionAttach
// joins an existing session by ID from any connection. Inference frames
// then carry (request id, deadline, model, ciphertexts) and are answered
// by Result or Error frames tagged with the same request id.
package serve

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame constants.
const (
	ProtoMagic   uint32 = 0x41535631 // "ASV1"
	ProtoVersion byte   = 1

	// FrameHeaderLen is the fixed frame-header size in bytes.
	FrameHeaderLen = 12

	// DefaultMaxFrame bounds one frame's payload (the session-open
	// key upload is by far the largest message).
	DefaultMaxFrame uint32 = 1 << 30
)

// FrameType tags one protocol message.
type FrameType byte

// Frame types.
const (
	FrameSessionNew    FrameType = 1 // client→server: eval-keys blob
	FrameSessionAttach FrameType = 2 // client→server: session ID
	FrameSessionOK     FrameType = 3 // server→client: session ID
	FrameInfer         FrameType = 4 // client→server: inference request
	FrameResult        FrameType = 5 // server→client: encrypted logits
	FrameError         FrameType = 6 // server→client: typed error
	FrameStats         FrameType = 7 // client→server: metrics request
	FrameStatsReply    FrameType = 8 // server→client: metrics JSON
	// FrameRedirect is sent by a cluster router when the request's
	// session is owned by a different node than the one the connection
	// last attached to (membership changed — a node joined, drained, or
	// left). The payload names the new owner; the client re-attaches
	// (through the router, which routes to the new owner) and retries.
	FrameRedirect FrameType = 9 // router→client: session moved, re-attach
)

// ErrCode is a typed protocol error carried by FrameError.
type ErrCode uint16

// Protocol error codes.
const (
	CodeBusy            ErrCode = 1 // admission queue full — retry later
	CodeDeadline        ErrCode = 2 // request deadline expired before evaluation
	CodeSessionNotFound ErrCode = 3 // unknown or evicted session ID
	CodeModelNotFound   ErrCode = 4 // server does not host the named model
	CodeBadRequest      ErrCode = 5 // malformed frame or payload
	CodeDraining        ErrCode = 6 // server is shutting down
	CodeInternal        ErrCode = 7 // evaluation failed server-side
	CodeNoSession       ErrCode = 8 // inference before session open/attach
	CodeRegistryFull    ErrCode = 9 // session cap reached and nothing evictable
	// CodeNeedKeys is the cluster's re-upload-on-miss signal: the
	// session's owning node holds no copy of its evaluation keys (in RAM
	// or in its durable store). The client must re-upload the bundle
	// (public material only — the secret key never ships) with
	// FrameSessionNew; content addressing lands it on the same session.
	CodeNeedKeys ErrCode = 10 // owner lacks the keys — re-upload them
	// CodeUnavailable reports a transient cluster fault: the owning node
	// is unreachable or there is no active node for the session. Safe to
	// retry after a backoff.
	CodeUnavailable ErrCode = 11 // owning node unreachable — retry later
)

func (c ErrCode) String() string {
	switch c {
	case CodeBusy:
		return "BUSY"
	case CodeDeadline:
		return "DEADLINE"
	case CodeSessionNotFound:
		return "SESSION_NOT_FOUND"
	case CodeModelNotFound:
		return "MODEL_NOT_FOUND"
	case CodeBadRequest:
		return "BAD_REQUEST"
	case CodeDraining:
		return "DRAINING"
	case CodeInternal:
		return "INTERNAL"
	case CodeNoSession:
		return "NO_SESSION"
	case CodeRegistryFull:
		return "REGISTRY_FULL"
	case CodeNeedKeys:
		return "NEED_KEYS"
	case CodeUnavailable:
		return "UNAVAILABLE"
	}
	return fmt.Sprintf("ERR_%d", uint16(c))
}

// RequestError is the client-visible form of a FrameError reply.
type RequestError struct {
	Code ErrCode
	Msg  string
}

func (e *RequestError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("serve: %s", e.Code)
	}
	return fmt.Sprintf("serve: %s: %s", e.Code, e.Msg)
}

// WriteFrame writes one frame. The payload may be nil.
func WriteFrame(w io.Writer, typ FrameType, payload []byte) error {
	var hdr [FrameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], ProtoMagic)
	hdr[4] = ProtoVersion
	hdr[5] = byte(typ)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends one encoded frame (header + payload) to dst and
// returns the extended buffer. Callers that reuse dst across frames
// write a full connection's traffic with no per-frame allocations; pair
// with a single w.Write of the returned buffer.
//
//lint:noalloc
func AppendFrame(dst []byte, typ FrameType, payload []byte) []byte {
	off := len(dst)
	//lint:prealloc grows the caller's reusable frame buffer, amortized across a connection's writes
	dst = append(dst, make([]byte, FrameHeaderLen)...)
	hdr := dst[off : off+FrameHeaderLen]
	binary.LittleEndian.PutUint32(hdr[0:4], ProtoMagic)
	hdr[4] = ProtoVersion
	hdr[5] = byte(typ)
	hdr[6], hdr[7] = 0, 0
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	//lint:prealloc grows the caller's reusable frame buffer, amortized across a connection's writes
	return append(dst, payload...)
}

// ReadFrame reads one frame, rejecting payloads above maxPayload before
// allocating. A short stream surfaces as io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxPayload uint32) (FrameType, []byte, error) {
	var arena []byte
	return ReadFrameInto(r, &arena, maxPayload)
}

// ReadFrameInto is ReadFrame reading into a caller-owned arena: the
// returned payload aliases *arena and is valid until the next call with
// the same arena. The arena grows to the largest frame seen and is then
// reused, so a connection's steady-state read loop does not allocate.
// The header itself lands in the arena too — a local array would box
// into the io.Reader argument and put one allocation back per frame.
// io.ReadFull reads exactly the declared length, so a peer can never
// push the reader past the frame boundary.
//
//lint:noalloc
func ReadFrameInto(r io.Reader, arena *[]byte, maxPayload uint32) (FrameType, []byte, error) {
	if cap(*arena) < FrameHeaderLen {
		//lint:prealloc grows the caller's reusable read arena, amortized across a connection's frames
		*arena = make([]byte, FrameHeaderLen)
	}
	hdr := (*arena)[:FrameHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != ProtoMagic {
		return 0, nil, fmt.Errorf("serve: bad frame magic %#x", m)
	}
	if v := hdr[4]; v != ProtoVersion {
		return 0, nil, fmt.Errorf("serve: unsupported protocol version %d", v)
	}
	typ := FrameType(hdr[5])
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("serve: frame payload %d exceeds limit %d", n, maxPayload)
	}
	if uint32(cap(*arena)) < n {
		//lint:prealloc grows the caller's reusable read arena, amortized across a connection's frames
		*arena = make([]byte, n)
	}
	// The header fields are already extracted, so the payload may reuse
	// the arena from offset 0.
	payload := (*arena)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return typ, payload, nil
}

// Payload encodings. All multi-byte fields little-endian; strings are
// u16-length-prefixed. Decoders validate every length against the
// remaining payload, so malformed input returns an error — never a
// panic or out-of-range slice.

func appendString(b []byte, s string) []byte {
	//lint:prealloc writes into the caller's buffer; growth is the caller's sizing, not per-op churn
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	//lint:prealloc writes into the caller's buffer; growth is the caller's sizing, not per-op churn
	return append(b, s...)
}

func readString(b []byte) (s string, rest []byte, err error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("serve: truncated string length")
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b)-2 < n {
		return "", nil, fmt.Errorf("serve: string length %d exceeds payload", n)
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// InferRequestWire is the decoded form of a FrameInfer payload.
type InferRequestWire struct {
	ReqID      uint64
	DeadlineMS uint32 // 0 = no deadline; relative to server arrival
	Model      string
	Input      []byte // core.WriteEncryptedInput bytes
}

// EncodeInfer builds a FrameInfer payload.
func EncodeInfer(reqID uint64, deadlineMS uint32, model string, input []byte) []byte {
	b := make([]byte, 0, 14+len(model)+len(input))
	b = binary.LittleEndian.AppendUint64(b, reqID)
	b = binary.LittleEndian.AppendUint32(b, deadlineMS)
	b = appendString(b, model)
	return append(b, input...)
}

// DecodeInfer parses a FrameInfer payload.
func DecodeInfer(b []byte) (InferRequestWire, error) {
	var w InferRequestWire
	if len(b) < 12 {
		return w, fmt.Errorf("serve: truncated inference header")
	}
	w.ReqID = binary.LittleEndian.Uint64(b[0:8])
	w.DeadlineMS = binary.LittleEndian.Uint32(b[8:12])
	var err error
	w.Model, b, err = readString(b[12:])
	if err != nil {
		return w, err
	}
	w.Input = b
	return w, nil
}

// EncodeResult builds a FrameResult payload.
func EncodeResult(reqID uint64, logits []byte) []byte {
	b := make([]byte, 0, 8+len(logits))
	b = binary.LittleEndian.AppendUint64(b, reqID)
	return append(b, logits...)
}

// AppendResult appends a FrameResult payload to dst: the zero-alloc
// form of EncodeResult for result writers that reuse a frame buffer.
//
//lint:noalloc
func AppendResult(dst []byte, reqID uint64, logits []byte) []byte {
	//lint:prealloc grows the caller's reusable frame buffer, amortized across results
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	//lint:prealloc grows the caller's reusable frame buffer, amortized across results
	return append(dst, logits...)
}

// DecodeResult parses a FrameResult payload into (request id, logits
// bytes).
func DecodeResult(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("serve: truncated result header")
	}
	return binary.LittleEndian.Uint64(b[0:8]), b[8:], nil
}

// EncodeError builds a FrameError payload. reqID 0 marks a
// connection-level error not tied to one request.
func EncodeError(reqID uint64, code ErrCode, msg string) []byte {
	b := make([]byte, 0, 12+len(msg))
	b = binary.LittleEndian.AppendUint64(b, reqID)
	b = binary.LittleEndian.AppendUint16(b, uint16(code))
	return appendString(b, msg)
}

// AppendError appends a FrameError payload to dst: the zero-alloc form
// of EncodeError for error writers that reuse a frame buffer. reqID 0
// marks a connection-level error not tied to one request.
//
//lint:noalloc
func AppendError(dst []byte, reqID uint64, code ErrCode, msg string) []byte {
	//lint:prealloc grows the caller's reusable frame buffer, amortized across replies
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	//lint:prealloc grows the caller's reusable frame buffer, amortized across replies
	dst = binary.LittleEndian.AppendUint16(dst, uint16(code))
	return appendString(dst, msg)
}

// DecodeError parses a FrameError payload.
func DecodeError(b []byte) (reqID uint64, code ErrCode, msg string, err error) {
	if len(b) < 10 {
		return 0, 0, "", fmt.Errorf("serve: truncated error header")
	}
	reqID = binary.LittleEndian.Uint64(b[0:8])
	code = ErrCode(binary.LittleEndian.Uint16(b[8:10]))
	msg, _, err = readString(b[10:])
	return reqID, code, msg, err
}

// RedirectError is the client-visible form of a FrameRedirect reply:
// the session is owned by another node. Clients recover by re-attaching
// (a router routes the attach to the new owner); Addr lets a client
// that dials nodes directly go straight there.
type RedirectError struct {
	Addr    string // new owner's serving address
	Session string // the session that moved
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("serve: REDIRECT session %s to %s", e.Session, e.Addr)
}

// EncodeRedirect builds a FrameRedirect payload: the request it
// answers, the new owner's address, and the session that moved.
func EncodeRedirect(reqID uint64, addr, session string) []byte {
	b := make([]byte, 0, 12+len(addr)+len(session))
	b = binary.LittleEndian.AppendUint64(b, reqID)
	b = appendString(b, addr)
	return appendString(b, session)
}

// DecodeRedirect parses a FrameRedirect payload. Malformed input —
// truncated header, over-long strings, trailing bytes — returns an
// error, never a panic.
func DecodeRedirect(b []byte) (reqID uint64, addr, session string, err error) {
	if len(b) < 8 {
		return 0, "", "", fmt.Errorf("serve: truncated redirect header")
	}
	reqID = binary.LittleEndian.Uint64(b[0:8])
	addr, rest, err := readString(b[8:])
	if err != nil {
		return 0, "", "", fmt.Errorf("serve: redirect addr: %w", err)
	}
	session, rest, err = readString(rest)
	if err != nil {
		return 0, "", "", fmt.Errorf("serve: redirect session: %w", err)
	}
	if len(rest) != 0 {
		return 0, "", "", fmt.Errorf("serve: %d trailing bytes after redirect", len(rest))
	}
	return reqID, addr, session, nil
}

// EncodeSessionID builds a FrameSessionOK / FrameSessionAttach payload.
func EncodeSessionID(id string) []byte { return appendString(nil, id) }

// DecodeSessionID parses a session-ID payload.
func DecodeSessionID(b []byte) (string, error) {
	id, rest, err := readString(b)
	if err != nil {
		return "", err
	}
	if len(rest) != 0 {
		return "", fmt.Errorf("serve: %d trailing bytes after session ID", len(rest))
	}
	return id, nil
}
