// Package client is the Go client for the athena-serve frame protocol.
//
// A Client owns one TCP connection and demultiplexes replies by request
// ID, so any number of goroutines may call Infer concurrently — exactly
// the access pattern the server's dynamic batcher coalesces into shared
// functional-bootstrapping rounds. Key material stays client-side: the
// engine's secret key never leaves the process; OpenSession uploads
// only the public evaluation bundle (core.WriteEvalKeys), and the
// returned session ID can be reused by later connections via Attach.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"athena/internal/core"
	"athena/internal/qnn"
	"athena/internal/serve"
)

// Options tunes a connection.
type Options struct {
	// MaxFrame bounds one received frame (0 = serve.DefaultMaxFrame).
	MaxFrame uint32
	// DialTimeout bounds the TCP connect (0 = 10 s).
	DialTimeout time.Duration
}

type pendingReply struct {
	logits []byte
	err    error
}

// Client is one connection to an athena-serve instance.
type Client struct {
	conn net.Conn
	opts Options

	eng *core.Engine // client-side engine: holds sk, enc, dec

	wmu    sync.Mutex     // frame writes
	readWG sync.WaitGroup // readLoop lifetime; Close waits for it
	opMu   sync.Mutex     // serializes session/stats round-trips
	nextID uint64
	idMu   sync.Mutex

	mu        sync.Mutex
	pending   map[uint64]chan pendingReply
	sessC     chan string
	statsC    chan []byte
	ctrlErrC  chan error
	readErr   error
	sessionID string
}

// Dial connects to an athena-serve address. eng must be a full client
// engine (it encrypts inputs and decrypts results locally).
func Dial(addr string, eng *core.Engine, opts Options) (*Client, error) {
	if eng == nil {
		return nil, fmt.Errorf("client: nil engine")
	}
	if opts.MaxFrame == 0 {
		opts.MaxFrame = serve.DefaultMaxFrame
	}
	if opts.DialTimeout == 0 {
		opts.DialTimeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:     conn,
		opts:     opts,
		eng:      eng,
		pending:  make(map[uint64]chan pendingReply),
		sessC:    make(chan string, 1),
		statsC:   make(chan []byte, 1),
		ctrlErrC: make(chan error, 1),
	}
	c.readWG.Add(1)
	go c.readLoop()
	return c, nil
}

// Close drops the connection (pending calls fail) and waits for the
// read loop to exit, so a closed client leaves no goroutine behind.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.readWG.Wait()
	return err
}

// Err returns the error that poisoned the connection (nil while
// healthy). A poisoned client fails every call; reconnect to recover.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// SessionID returns the attached session's ID ("" before OpenSession or
// Attach succeeds).
func (c *Client) SessionID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessionID
}

// readLoop demultiplexes server frames to their waiters.
func (c *Client) readLoop() {
	defer c.readWG.Done()
	for {
		typ, payload, err := serve.ReadFrame(c.conn, c.opts.MaxFrame)
		if err != nil {
			c.fail(err)
			return
		}
		switch typ {
		case serve.FrameSessionOK:
			if id, err := serve.DecodeSessionID(payload); err == nil {
				select {
				case c.sessC <- id:
				default: // unsolicited duplicate; drop rather than wedge
				}
			} else {
				c.fail(err)
				return
			}
		case serve.FrameStatsReply:
			select {
			case c.statsC <- payload:
			default: // unsolicited duplicate; drop rather than wedge
			}
		case serve.FrameResult:
			reqID, logits, err := serve.DecodeResult(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.deliver(reqID, pendingReply{logits: logits})
		case serve.FrameRedirect:
			reqID, addr, session, err := serve.DecodeRedirect(payload)
			if err != nil {
				c.fail(err)
				return
			}
			rerr := &serve.RedirectError{Addr: addr, Session: session}
			if reqID == 0 {
				select {
				case c.ctrlErrC <- rerr:
				default:
				}
				continue
			}
			c.deliver(reqID, pendingReply{err: rerr})
		case serve.FrameError:
			reqID, code, msg, err := serve.DecodeError(payload)
			if err != nil {
				c.fail(err)
				return
			}
			rerr := &serve.RequestError{Code: code, Msg: msg}
			if reqID == 0 {
				// Connection-level error: answer whichever control
				// round-trip is waiting.
				select {
				case c.ctrlErrC <- rerr:
				default:
				}
				continue
			}
			c.deliver(reqID, pendingReply{err: rerr})
		default:
			c.fail(fmt.Errorf("client: unexpected frame type %d", typ))
			return
		}
	}
}

func (c *Client) deliver(reqID uint64, r pendingReply) {
	c.mu.Lock()
	ch, ok := c.pending[reqID]
	if ok {
		delete(c.pending, reqID)
	}
	c.mu.Unlock()
	if ok {
		ch <- r
	}
}

// fail poisons the client: every pending and future call errors.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	chans := c.pending
	c.pending = make(map[uint64]chan pendingReply)
	c.mu.Unlock()
	for _, ch := range chans {
		ch <- pendingReply{err: err}
	}
	select {
	case c.ctrlErrC <- err:
	default:
	}
}

func (c *Client) writeFrame(typ serve.FrameType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	//lint:holdok wmu exists to serialize frame writes on the shared connection; the write is the critical section
	return serve.WriteFrame(c.conn, typ, payload)
}

// roundTripCtrl performs one control exchange (session open/attach or
// stats) and waits for its typed reply.
func (c *Client) roundTripCtrl(typ serve.FrameType, payload []byte) (string, []byte, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	// Drain any stale control error from a previous exchange.
	select {
	case <-c.ctrlErrC:
	default:
	}
	//lint:holdok opMu serializes control round-trips end to end; Infer never takes it, so the hot path cannot queue behind this
	if err := c.writeFrame(typ, payload); err != nil {
		return "", nil, err
	}
	switch typ {
	case serve.FrameSessionNew, serve.FrameSessionAttach:
		//lint:holdok the reply wait is the round-trip opMu exists to serialize; readLoop delivers or Close fails ctrlErrC
		select {
		case id := <-c.sessC:
			return id, nil, nil
		case err := <-c.ctrlErrC:
			return "", nil, err
		}
	case serve.FrameStats:
		//lint:holdok the reply wait is the round-trip opMu exists to serialize; readLoop delivers or Close fails ctrlErrC
		select {
		case doc := <-c.statsC:
			return "", doc, nil
		case err := <-c.ctrlErrC:
			return "", nil, err
		}
	}
	return "", nil, fmt.Errorf("client: not a control frame type %d", typ)
}

// OpenSession uploads the engine's evaluation keys and attaches to the
// resulting (content-addressed) session. Reuploading identical material
// — from this or any other connection — lands on the same session.
func (c *Client) OpenSession() (string, error) {
	var blob bytes.Buffer
	if err := c.eng.WriteEvalKeys(&blob); err != nil {
		return "", err
	}
	id, _, err := c.roundTripCtrl(serve.FrameSessionNew, blob.Bytes())
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	c.sessionID = id
	c.mu.Unlock()
	return id, nil
}

// Attach joins an existing session by ID (the keys must already be
// resident server-side; an evicted session needs OpenSession again).
func (c *Client) Attach(id string) error {
	got, _, err := c.roundTripCtrl(serve.FrameSessionAttach, serve.EncodeSessionID(id))
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.sessionID = got
	c.mu.Unlock()
	return nil
}

// Infer encrypts x, submits it under the attached session, waits for
// the encrypted logits, and decrypts them. deadline 0 means no request
// deadline. Safe for concurrent use.
func (c *Client) Infer(model *qnn.QNetwork, x *qnn.IntTensor, deadline time.Duration) ([]int64, error) {
	in, err := c.eng.EncryptInput(model, x)
	if err != nil {
		return nil, err
	}
	out, err := c.InferEncrypted(model, in, deadline)
	if err != nil {
		return nil, err
	}
	return c.eng.DecryptLogits(out)
}

// InferEncrypted submits an already-encrypted input and returns the
// encrypted logits without decrypting (the transport-only path).
func (c *Client) InferEncrypted(model *qnn.QNetwork, in *core.EncryptedInput, deadline time.Duration) (*core.EncryptedLogits, error) {
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()

	var buf bytes.Buffer
	if err := c.eng.WriteEncryptedInput(in, &buf); err != nil {
		return nil, err
	}
	c.idMu.Lock()
	c.nextID++
	reqID := c.nextID
	c.idMu.Unlock()

	ch := make(chan pendingReply, 1)
	c.mu.Lock()
	c.pending[reqID] = ch
	c.mu.Unlock()

	var ms uint32
	if deadline > 0 {
		ms = uint32(deadline / time.Millisecond)
		if ms == 0 {
			ms = 1
		}
	}
	if err := c.writeFrame(serve.FrameInfer, serve.EncodeInfer(reqID, ms, model.Name, buf.Bytes())); err != nil {
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return nil, err
	}
	r := <-ch
	if r.err != nil {
		return nil, r.err
	}
	return c.eng.ReadEncryptedLogits(model, bytes.NewReader(r.logits))
}

// Stats fetches the server's metrics snapshot.
func (c *Client) Stats() (serve.Snapshot, error) {
	var s serve.Snapshot
	_, doc, err := c.roundTripCtrl(serve.FrameStats, nil)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(doc, &s); err != nil {
		return s, err
	}
	return s, nil
}
