package client

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"athena/internal/serve"
)

// TestBackoffBounds: delays follow jittered exponential growth — every
// sleep lands in [0.5, 1.5]× the capped base-doubling curve.
func TestBackoffBounds(t *testing.T) {
	var slept []time.Duration
	rc := &Reliable{opts: ReliableOptions{
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
		Rand:        func() float64 { return 0.25 }, // deterministic jitter ⇒ 0.75×
	}}
	for attempt := 1; attempt <= 10; attempt++ {
		rc.backoff(attempt)
	}
	want := []time.Duration{50, 100, 200, 400, 800, 1600, 2000, 2000, 2000, 2000}
	for i, w := range want {
		expect := time.Duration(float64(w*time.Millisecond) * 0.75)
		if slept[i] != expect {
			t.Fatalf("attempt %d slept %v, want %v", i+1, slept[i], expect)
		}
	}
}

// TestBackoffJitterSpread: different random draws give different
// delays (the anti-stampede property).
func TestBackoffJitterSpread(t *testing.T) {
	delay := func(r float64) time.Duration {
		var got time.Duration
		rc := &Reliable{opts: ReliableOptions{
			BaseBackoff: 100 * time.Millisecond,
			MaxBackoff:  time.Second,
			Sleep:       func(d time.Duration) { got = d },
			Rand:        func() float64 { return r },
		}}
		rc.backoff(1)
		return got
	}
	lo, hi := delay(0), delay(1)
	if lo != 50*time.Millisecond || hi != 150*time.Millisecond {
		t.Fatalf("jitter envelope [%v, %v], want [50ms, 150ms]", lo, hi)
	}
}

// TestErrorClassification: the retry policy's three answers — wait,
// re-upload, give up — map to the right typed codes.
func TestErrorClassification(t *testing.T) {
	mk := func(c serve.ErrCode) error { return &serve.RequestError{Code: c} }
	for _, c := range []serve.ErrCode{serve.CodeBusy, serve.CodeDraining, serve.CodeUnavailable} {
		if !backsOff(mk(c)) || permanent(mk(c)) {
			t.Fatalf("%s: want backs-off, not permanent", c)
		}
	}
	for _, c := range []serve.ErrCode{serve.CodeNeedKeys, serve.CodeSessionNotFound} {
		if !needsKeys(mk(c)) || permanent(mk(c)) {
			t.Fatalf("%s: want needs-keys, not permanent", c)
		}
	}
	for _, c := range []serve.ErrCode{serve.CodeBadRequest, serve.CodeInternal, serve.CodeDeadline} {
		if !permanent(mk(c)) {
			t.Fatalf("%s: want permanent", c)
		}
	}
	if permanent(&serve.RedirectError{Addr: "x", Session: "y"}) {
		t.Fatal("REDIRECT classified permanent")
	}
	if permanent(fmt.Errorf("dial tcp: connection refused")) {
		t.Fatal("transport error classified permanent")
	}
}

// TestDialReliableBoundedRetry: a dead address is retried exactly
// MaxAttempts times with backoff between attempts, then surfaced.
func TestDialReliableBoundedRetry(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	sleeps := 0
	eng := testEngine(t)
	_, err = DialReliable(deadAddr, eng, ReliableOptions{
		Options:     Options{DialTimeout: 200 * time.Millisecond},
		MaxAttempts: 3,
		Sleep:       func(time.Duration) { sleeps++ },
		Rand:        func() float64 { return 0.5 },
	})
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if sleeps != 2 {
		t.Fatalf("%d backoffs for 3 attempts, want 2", sleeps)
	}
}

// TestReliableSurvivesReconnect: killing the server connection under a
// Reliable client is repaired transparently — the next call redials
// and re-attaches the session. A raw ASV1 stub stands in for the
// server so no engine work is needed.
func TestReliableSurvivesReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Stub server: answers session opens with a fixed ID, then kills the
	// first connection; later connections keep answering attaches.
	conns := make(chan net.Conn, 8)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conns <- conn
			go func(c net.Conn) {
				for {
					typ, payload, err := serve.ReadFrame(c, serve.DefaultMaxFrame)
					if err != nil {
						return
					}
					switch typ {
					case serve.FrameSessionNew, serve.FrameSessionAttach:
						_ = serve.WriteFrame(c, serve.FrameSessionOK, serve.EncodeSessionID("stub-session"))
					case serve.FrameStats:
						_ = serve.WriteFrame(c, serve.FrameStatsReply, []byte(`{}`))
					default:
						_ = payload
						_ = serve.WriteFrame(c, serve.FrameError, serve.EncodeError(0, serve.CodeBadRequest, "stub"))
					}
				}
			}(conn)
		}
	}()

	eng := testEngine(t)
	rc, err := DialReliable(ln.Addr().String(), eng, ReliableOptions{
		MaxAttempts: 4,
		Sleep:       func(time.Duration) {},
		Rand:        func() float64 { return 0.5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Attach through the stub (OpenSession would upload real keys; the
	// stub acks attach directly).
	if err := rc.Attach("stub-session"); err != nil {
		t.Fatal(err)
	}

	// Kill the live server-side connection and wait until the client's
	// read loop notices the poison.
	orig := rc.c
	first := <-conns
	first.Close()
	deadline := time.Now().Add(10 * time.Second)
	for orig.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("connection never noticed the close")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// ensureConn must redial and re-attach without error.
	c2, err := rc.ensureConn()
	if err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	if c2 == orig || c2.Err() != nil || c2.SessionID() != "stub-session" {
		t.Fatalf("reconnect handed back a bad connection (same=%v err=%v session=%q)",
			c2 == orig, c2.Err(), c2.SessionID())
	}
	_, reconnects, _, _ := rc.Counters()
	if reconnects == 0 {
		t.Fatal("reconnect not counted")
	}
}

// TestClientRejectsMalformedRedirect: a hostile or buggy router
// emitting a garbage REDIRECT payload poisons the connection with a
// typed error — no panic, no hang.
func TestClientRejectsMalformedRedirect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Read whatever the client sends, answer with a truncated
		// redirect payload (header only, no strings).
		_, _, _ = serve.ReadFrame(conn, serve.DefaultMaxFrame)
		_ = serve.WriteFrame(conn, serve.FrameRedirect, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	}()

	eng := testEngine(t)
	c, err := Dial(ln.Addr().String(), eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Attach("00112233445566778899aabbccddeeff")
	if err == nil {
		t.Fatal("attach succeeded through a malformed redirect")
	}
	var redir *serve.RedirectError
	if errors.As(err, &redir) {
		t.Fatalf("malformed redirect decoded as a valid one: %v", err)
	}
}

// TestClientHandlesWellFormedRedirect: a proper REDIRECT reply surfaces
// as a typed *serve.RedirectError carrying the new owner.
func TestClientHandlesWellFormedRedirect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		for {
			typ, payload, err := serve.ReadFrame(conn, serve.DefaultMaxFrame)
			if err != nil {
				return
			}
			switch typ {
			case serve.FrameSessionAttach:
				_ = serve.WriteFrame(conn, serve.FrameSessionOK, payload)
			case serve.FrameInfer:
				req, err := serve.DecodeInfer(payload)
				if err != nil {
					return
				}
				_ = serve.WriteFrame(conn, serve.FrameRedirect,
					serve.EncodeRedirect(req.ReqID, "10.9.8.7:7700", "00112233445566778899aabbccddeeff"))
			default:
				return
			}
		}
	}()

	eng := testEngine(t)
	c, err := Dial(ln.Addr().String(), eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Attach("00112233445566778899aabbccddeeff"); err != nil {
		t.Fatal(err)
	}
	model := testModel()
	x := testInput()
	_, err = c.Infer(model, x, 0)
	var redir *serve.RedirectError
	if !errors.As(err, &redir) {
		t.Fatalf("got %v, want *serve.RedirectError", err)
	}
	if redir.Addr != "10.9.8.7:7700" || redir.Session != "00112233445566778899aabbccddeeff" {
		t.Fatalf("redirect carried (%q, %q)", redir.Addr, redir.Session)
	}
}
