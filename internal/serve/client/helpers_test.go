package client

import (
	"sync"
	"testing"

	"athena/internal/core"
	"athena/internal/qnn"
	"athena/internal/serve"
)

// Engine construction (keygen) is the expensive part; share one across
// the package's tests.
var testEnv struct {
	once sync.Once
	eng  *core.Engine
	err  error
}

func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	testEnv.once.Do(func() {
		testEnv.eng, testEnv.err = core.NewEngine(core.TestParams())
	})
	if testEnv.err != nil {
		t.Fatal(testEnv.err)
	}
	return testEnv.eng
}

func testModel() *qnn.QNetwork  { return serve.DemoNet() }
func testInput() *qnn.IntTensor { return serve.DemoInput(1234) }
