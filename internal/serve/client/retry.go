package client

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"athena/internal/core"
	"athena/internal/qnn"
	"athena/internal/serve"
)

// ReliableOptions tunes the retrying client wrapper.
type ReliableOptions struct {
	Options

	// MaxAttempts bounds one logical call's tries (0 = 8). Only whole
	// request attempts count; the session repair inside an attempt does
	// not.
	MaxAttempts int
	// BaseBackoff is the first retry delay (0 = 50 ms); it doubles per
	// attempt up to MaxBackoff (0 = 2 s), each delay jittered to
	// 50–150 % so retrying clients do not stampede in phase.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// Sleep and Rand are injectable for deterministic tests
	// (time.Sleep and math/rand/v2 by default).
	Sleep func(time.Duration)
	Rand  func() float64
}

// Reliable wraps the single-connection Client with bounded retry: it
// reconnects through transient dial/write failures, backs off on the
// typed BUSY/DRAINING/UNAVAILABLE rejections, re-attaches on REDIRECT
// (the router's session-moved signal), and re-uploads the engine's
// evaluation keys on NEED_KEYS — so a membership change under live
// traffic costs latency, not failures. Safe for concurrent use.
type Reliable struct {
	addr string
	eng  *core.Engine
	opts ReliableOptions

	mu      sync.Mutex
	c       *Client
	session string // established session ID ("" before OpenSession)

	// Counters for tests and reporting (guarded by mu).
	retries    uint64
	reconnects uint64
	reattaches uint64
	reuploads  uint64
}

// DialReliable connects to addr with retry. eng must be a full client
// engine (it encrypts, decrypts, and re-uploads keys on demand).
func DialReliable(addr string, eng *core.Engine, opts ReliableOptions) (*Reliable, error) {
	if eng == nil {
		return nil, fmt.Errorf("client: nil engine")
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 8
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 2 * time.Second
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	if opts.Rand == nil {
		opts.Rand = rand.Float64
	}
	rc := &Reliable{addr: addr, eng: eng, opts: opts}
	var lastErr error
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.backoff(attempt)
		}
		c, err := Dial(addr, eng, opts.Options)
		if err == nil {
			rc.c = c
			return rc, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("client: dialing %s: giving up after %d attempts: %w", addr, opts.MaxAttempts, lastErr)
}

// Close drops the current connection.
func (rc *Reliable) Close() error {
	rc.mu.Lock()
	c := rc.c
	rc.c = nil
	rc.mu.Unlock()
	if c == nil {
		return nil
	}
	return c.Close()
}

// SessionID returns the established session ID ("" before OpenSession).
func (rc *Reliable) SessionID() string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.session
}

// Counters reports the recovery work performed so far.
func (rc *Reliable) Counters() (retries, reconnects, reattaches, reuploads uint64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.retries, rc.reconnects, rc.reattaches, rc.reuploads
}

// OpenSession uploads the engine's evaluation keys, with retry.
func (rc *Reliable) OpenSession() (string, error) {
	var lastErr error
	for attempt := 0; attempt < rc.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.noteRetry()
			rc.backoff(attempt)
		}
		c, err := rc.ensureConn()
		if err != nil {
			lastErr = err
			continue
		}
		id, err := c.OpenSession()
		if err == nil {
			rc.mu.Lock()
			rc.session = id
			rc.mu.Unlock()
			return id, nil
		}
		lastErr = err
		if permanent(err) {
			return "", err
		}
		rc.dropIfBroken(c)
	}
	return "", fmt.Errorf("client: open session: giving up after %d attempts: %w", rc.opts.MaxAttempts, lastErr)
}

// Attach joins an existing session by ID, with retry. A NEED_KEYS or
// SESSION_NOT_FOUND answer re-uploads this engine's keys — valid only
// when id is the engine's own content address (the upload must land on
// the same session; a mismatch is a permanent error).
func (rc *Reliable) Attach(id string) error {
	var lastErr error
	for attempt := 0; attempt < rc.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.noteRetry()
			rc.backoff(attempt)
		}
		c, err := rc.ensureConn()
		if err != nil {
			lastErr = err
			continue
		}
		err = c.Attach(id)
		if err == nil {
			rc.mu.Lock()
			rc.session = id
			rc.mu.Unlock()
			return nil
		}
		lastErr = err
		if needsKeys(err) {
			got, uerr := c.OpenSession()
			if uerr == nil && got != id {
				return fmt.Errorf("client: attach %s: engine keys address session %s — cannot repair by re-upload", id, got)
			}
			if uerr == nil {
				rc.mu.Lock()
				rc.session = id
				rc.reuploads++
				rc.mu.Unlock()
				return nil
			}
			lastErr = uerr
			if permanent(uerr) {
				return uerr
			}
		} else if permanent(err) {
			return err
		}
		rc.dropIfBroken(c)
	}
	return fmt.Errorf("client: attach: giving up after %d attempts: %w", rc.opts.MaxAttempts, lastErr)
}

// Infer encrypts x, submits it, and decrypts the logits, recovering
// from transient failures: reconnects, redirects, key re-uploads, and
// backpressure all retry within the attempt budget. Note encryption
// consumes the engine's PRNG stream — concurrent Infer calls sharing
// one engine should pre-encrypt serially and use InferEncrypted.
func (rc *Reliable) Infer(model *qnn.QNetwork, x *qnn.IntTensor, deadline time.Duration) ([]int64, error) {
	in, err := rc.eng.EncryptInput(model, x)
	if err != nil {
		return nil, err
	}
	out, err := rc.InferEncrypted(model, in, deadline)
	if err != nil {
		return nil, err
	}
	return rc.eng.DecryptLogits(out)
}

// InferEncrypted submits an already-encrypted input with the same
// retry policy as Infer, returning the encrypted logits undecrypted.
// The encrypted bytes are identical across attempts, so a retried
// request is exactly the original — safe to replay.
func (rc *Reliable) InferEncrypted(model *qnn.QNetwork, in *core.EncryptedInput, deadline time.Duration) (*core.EncryptedLogits, error) {
	var lastErr error
	for attempt := 0; attempt < rc.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.noteRetry()
			rc.backoff(attempt)
		}
		c, err := rc.ensureConn()
		if err != nil {
			lastErr = err
			continue
		}
		out, err := c.InferEncrypted(model, in, deadline)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if permanent(err) {
			return nil, err
		}
		if err := rc.repair(c, err); err != nil {
			if permanent(err) {
				return nil, err
			}
			lastErr = err
		}
	}
	return nil, fmt.Errorf("client: infer: giving up after %d attempts: %w", rc.opts.MaxAttempts, lastErr)
}

// repair performs the recovery a classified failure asks for, so the
// next attempt can succeed. Returned errors are from the repair itself.
func (rc *Reliable) repair(c *Client, err error) error {
	var redir *serve.RedirectError
	switch {
	case errors.As(err, &redir):
		// Session moved: re-attach through the same connection (the
		// router recomputes the owner) and let NEED_KEYS fall through to
		// a key re-upload.
		rc.mu.Lock()
		rc.reattaches++
		session := rc.session
		rc.mu.Unlock()
		if session == "" {
			session = redir.Session
		}
		aerr := c.Attach(session)
		if aerr != nil && needsKeys(aerr) {
			return rc.reupload(c, session)
		}
		return aerr
	case needsKeys(err):
		rc.mu.Lock()
		session := rc.session
		rc.mu.Unlock()
		return rc.reupload(c, session)
	case backsOff(err):
		return nil // server-side pressure: the attempt loop's backoff is the repair
	default:
		// Connection-level trouble: drop it; ensureConn redials and
		// re-establishes the session next attempt.
		rc.dropIfBroken(c)
		return nil
	}
}

// reupload ships the engine's keys again (the NEED_KEYS recovery).
func (rc *Reliable) reupload(c *Client, session string) error {
	got, err := c.OpenSession()
	if err != nil {
		if !permanent(err) {
			rc.dropIfBroken(c)
		}
		return err
	}
	if session != "" && got != session {
		return fmt.Errorf("client: re-upload landed on session %s, expected %s", got, session)
	}
	rc.mu.Lock()
	rc.session = got
	rc.reuploads++
	rc.mu.Unlock()
	return nil
}

// ensureConn returns a healthy connection, redialing and re-attaching
// the established session after a failure.
func (rc *Reliable) ensureConn() (*Client, error) {
	rc.mu.Lock()
	c := rc.c
	session := rc.session
	rc.mu.Unlock()
	if c != nil && c.Err() == nil {
		return c, nil
	}
	rc.mu.Lock()
	if rc.c != nil && rc.c.Err() == nil { // someone else already redialed
		c := rc.c
		rc.mu.Unlock()
		return c, nil
	}
	if rc.c != nil {
		//lint:holdok the connection is poisoned, so its read loop has already exited and Close's wait returns at once
		_ = rc.c.Close()
		rc.c = nil
	}
	rc.mu.Unlock()

	nc, err := Dial(rc.addr, rc.eng, rc.opts.Options)
	if err != nil {
		return nil, err
	}
	if session != "" {
		if aerr := nc.Attach(session); aerr != nil {
			if needsKeys(aerr) {
				if rerr := rc.reupload(nc, session); rerr != nil {
					_ = nc.Close()
					return nil, rerr
				}
			} else {
				_ = nc.Close()
				return nil, aerr
			}
		}
	}
	rc.mu.Lock()
	if rc.c != nil && rc.c.Err() == nil {
		// Lost a redial race; use the winner.
		c := rc.c
		rc.mu.Unlock()
		_ = nc.Close()
		return c, nil
	}
	rc.c = nc
	rc.reconnects++
	rc.mu.Unlock()
	return nc, nil
}

// dropIfBroken closes and forgets the connection if it is poisoned, so
// ensureConn redials. A healthy connection (the error was per-request)
// is kept.
func (rc *Reliable) dropIfBroken(c *Client) {
	if c.Err() == nil {
		return
	}
	rc.mu.Lock()
	if rc.c == c {
		rc.c = nil
	}
	rc.mu.Unlock()
	_ = c.Close()
}

func (rc *Reliable) noteRetry() {
	rc.mu.Lock()
	rc.retries++
	rc.mu.Unlock()
}

// backoff sleeps the jittered exponential delay for attempt (≥ 1).
func (rc *Reliable) backoff(attempt int) {
	d := rc.opts.BaseBackoff << (attempt - 1)
	if d > rc.opts.MaxBackoff || d <= 0 {
		d = rc.opts.MaxBackoff
	}
	// Jitter to 50–150 % so a fleet of retrying clients spreads out.
	d = time.Duration(float64(d) * (0.5 + rc.opts.Rand()))
	rc.opts.Sleep(d)
}

// permanent reports whether err can never be repaired by retrying:
// malformed requests, server-side evaluation failures, expired
// deadlines, and repair-mismatch errors.
func permanent(err error) bool {
	var re *serve.RequestError
	if errors.As(err, &re) {
		switch re.Code {
		case serve.CodeBadRequest, serve.CodeInternal, serve.CodeDeadline:
			return true
		}
		return false
	}
	var redir *serve.RedirectError
	if errors.As(err, &redir) {
		return false
	}
	// Dial, write, and read errors are all transient: the next attempt
	// redials.
	return false
}

// needsKeys reports whether err asks the client to re-upload its
// evaluation keys.
func needsKeys(err error) bool {
	var re *serve.RequestError
	return errors.As(err, &re) &&
		(re.Code == serve.CodeNeedKeys || re.Code == serve.CodeSessionNotFound)
}

// backsOff reports whether err is server-side pressure best answered by
// waiting: BUSY (admission or rate limit), DRAINING, UNAVAILABLE.
func backsOff(err error) bool {
	var re *serve.RequestError
	return errors.As(err, &re) &&
		(re.Code == serve.CodeBusy || re.Code == serve.CodeDraining || re.Code == serve.CodeUnavailable)
}
