package serve

import (
	"errors"
	"testing"

	"athena/internal/core"
	"athena/internal/store"
)

func testStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// With the durable tier attached, an LRU-evicted session is reloaded
// from disk on Lookup instead of being lost.
func TestRegistryColdLoadAfterEviction(t *testing.T) {
	blobA := evalKeysBlob(t, 301)
	blobB := evalKeysBlob(t, 302)
	dir := t.TempDir()
	st := testStore(t, dir)

	r := NewRegistry(core.TestParams(), int64(len(blobA))+1) // fits one session
	r.SetStore(st)

	a, _, err := r.Open(blobA)
	if err != nil {
		t.Fatal(err)
	}
	aID := a.ID
	if !st.Contains(aID) {
		t.Fatal("acked session not in the durable tier")
	}
	if _, _, err := r.Open(blobB); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(aID); ok {
		t.Fatal("A still resident after eviction")
	}

	// Lookup reloads A from disk (evicting B in turn under the tiny cap).
	a2, err := r.Lookup(aID)
	if err != nil {
		t.Fatalf("cold lookup: %v", err)
	}
	if a2.ID != aID || a2.Bytes != int64(len(blobA)) {
		t.Fatalf("cold-loaded session ID=%s bytes=%d, want %s/%d", a2.ID, a2.Bytes, aID, len(blobA))
	}
	if a2 == a {
		t.Fatal("cold load returned the evicted pointer")
	}
	hot, cold, misses := r.TierStats()
	if cold != 1 {
		t.Fatalf("coldLoads=%d want 1 (hot=%d misses=%d)", cold, hot, misses)
	}
	// Resident now: a second lookup is a hot hit.
	if _, err := r.Lookup(aID); err != nil {
		t.Fatal(err)
	}
	if hot2, _, _ := r.TierStats(); hot2 != hot+1 {
		t.Fatalf("hot hit not counted: %d -> %d", hot, hot2)
	}
	// Unknown ID is a miss in both tiers.
	if _, err := r.Lookup("00000000000000000000000000000000"); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("unknown session: %v", err)
	}
	if _, _, m := r.TierStats(); m != 1 {
		t.Fatalf("misses=%d want 1", m)
	}
}

// A session uploaded before a restart must attach from a brand-new
// registry over the same data dir without re-upload.
func TestRegistrySurvivesRestart(t *testing.T) {
	blob := evalKeysBlob(t, 303)
	dir := t.TempDir()

	st1 := testStore(t, dir)
	r1 := NewRegistry(core.TestParams(), 0)
	r1.SetStore(st1)
	s, _, err := r1.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	id := s.ID
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := testStore(t, dir)
	r2 := NewRegistry(core.TestParams(), 0)
	r2.SetStore(st2)
	if _, ok := r2.Get(id); ok {
		t.Fatal("fresh registry claims residency")
	}
	s2, err := r2.Lookup(id)
	if err != nil {
		t.Fatalf("lookup after restart: %v", err)
	}
	if s2.ID != id {
		t.Fatalf("restored session ID %s want %s", s2.ID, id)
	}
	// The restored engine must be evaluation-capable (keys validated on
	// the cold path exactly as on upload).
	if s2.Eng == nil {
		t.Fatal("restored session has no engine")
	}
	// Re-uploading the same material after restart reuses the durable
	// entry without a second WAL write.
	walBefore := st2.Stats().WALBytes
	s3, created, err := r2.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if created || s3 != s2 {
		t.Fatal("re-upload after cold load did not reuse the session")
	}
	if got := st2.Stats().WALBytes; got != walBefore {
		t.Fatalf("idempotent re-upload grew WAL %d -> %d", walBefore, got)
	}
}

// A corrupted durable entry must fail the cold load, never produce a
// session from bad bytes.
func TestRegistryColdLoadRejectsCorruption(t *testing.T) {
	blob := evalKeysBlob(t, 304)
	dir := t.TempDir()
	st := testStore(t, dir)
	r := NewRegistry(core.TestParams(), 0)
	r.SetStore(st)
	s, _, err := r.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	id := s.ID
	// Plant a non-matching blob under the same ID (simulates on-disk
	// corruption that still passes the store's own digest, i.e. the wrong
	// content at the right key).
	if err := st.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(id, []byte("wrong bytes entirely")); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry(core.TestParams(), 0)
	r2.SetStore(st)
	if _, err := r2.Lookup(id); err == nil {
		t.Fatal("cold load accepted a blob whose content address does not match")
	}
}
