package serve

import (
	"sync"
	"time"

	"athena/internal/core"
)

// batchHistBuckets are the inclusive upper bounds of the batch-size
// histogram; the last bucket is open-ended.
var batchHistBuckets = []int{1, 2, 4, 8, 16, 32}

// Metrics accumulates serving counters. All methods are safe for
// concurrent use; Snapshot is a consistent point-in-time copy.
type Metrics struct {
	mu sync.Mutex

	accepted     uint64
	completed    uint64
	rejectedBusy uint64
	rateLimited  uint64
	deadline     uint64
	failed       uint64
	conns        uint64

	batches    uint64
	images     uint64
	batchHist  []uint64 // len(batchHistBuckets)+1, last is overflow
	evalTime   time.Duration
	opsTotal   core.OpStats
	sessionsUp uint64
}

// NewMetrics builds an empty counter set.
func NewMetrics() *Metrics {
	return &Metrics{batchHist: make([]uint64, len(batchHistBuckets)+1)}
}

// Accepted counts one admitted request.
func (m *Metrics) Accepted() { m.bump(&m.accepted) }

// Completed counts one successfully answered request.
func (m *Metrics) Completed() { m.bump(&m.completed) }

// RejectedBusy counts one BUSY backpressure rejection.
func (m *Metrics) RejectedBusy() { m.bump(&m.rejectedBusy) }

// RateLimited counts one BUSY answered by the per-client token bucket.
func (m *Metrics) RateLimited() { m.bump(&m.rateLimited) }

// DeadlineExpired counts one request dropped at its deadline.
func (m *Metrics) DeadlineExpired() { m.bump(&m.deadline) }

// Failed counts one request answered with a non-deadline error.
func (m *Metrics) Failed() { m.bump(&m.failed) }

// ConnOpened counts one accepted connection.
func (m *Metrics) ConnOpened() { m.bump(&m.conns) }

// SessionOpened counts one newly built (not reattached) session.
func (m *Metrics) SessionOpened() { m.bump(&m.sessionsUp) }

func (m *Metrics) bump(c *uint64) {
	m.mu.Lock()
	*c++
	m.mu.Unlock()
}

// recordBatch accounts one evaluated batch: its realized size, wall
// time, and the five-step operation counts it consumed.
func (m *Metrics) recordBatch(size int, dur time.Duration, ops core.OpStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	m.images += uint64(size)
	i := len(batchHistBuckets)
	for bi, ub := range batchHistBuckets {
		if size <= ub {
			i = bi
			break
		}
	}
	m.batchHist[i]++
	m.evalTime += dur
	m.opsTotal.PMult += ops.PMult
	m.opsTotal.HAdd += ops.HAdd
	m.opsTotal.CMult += ops.CMult
	m.opsTotal.SMult += ops.SMult
	m.opsTotal.Packs += ops.Packs
	m.opsTotal.FBSCalls += ops.FBSCalls
	m.opsTotal.S2CCalls += ops.S2CCalls
	m.opsTotal.Extractions += ops.Extractions
	m.opsTotal.KeySwitches += ops.KeySwitches
	m.opsTotal.LWEAdds += ops.LWEAdds
}

// OpStatsSnapshot is the JSON form of the accumulated operation counts.
type OpStatsSnapshot struct {
	PMult       int `json:"pmult"`
	HAdd        int `json:"hadd"`
	CMult       int `json:"cmult"`
	SMult       int `json:"smult"`
	Packs       int `json:"packs"`
	FBSCalls    int `json:"fbs_calls"`
	S2CCalls    int `json:"s2c_calls"`
	Extractions int `json:"extractions"`
	KeySwitches int `json:"key_switches"`
	LWEAdds     int `json:"lwe_adds"`
}

// BatchBucket is one batch-size histogram bucket in a snapshot.
type BatchBucket struct {
	// LE is the inclusive upper bound; 0 marks the open overflow bucket.
	LE    int    `json:"le,omitempty"`
	Count uint64 `json:"count"`
}

// Snapshot is the /metrics JSON document.
type Snapshot struct {
	Requests struct {
		Accepted        uint64 `json:"accepted"`
		Completed       uint64 `json:"completed"`
		RejectedBusy    uint64 `json:"rejected_busy"`
		RateLimited     uint64 `json:"rate_limited"`
		DeadlineExpired uint64 `json:"deadline_expired"`
		Failed          uint64 `json:"failed"`
	} `json:"requests"`
	Connections uint64 `json:"connections"`

	QueueDepth      int `json:"queue_depth"`
	InflightBatches int `json:"inflight_batches"`

	Batches       uint64        `json:"batches"`
	Images        uint64        `json:"images"`
	MeanBatchSize float64       `json:"mean_batch_size"`
	BatchSizeHist []BatchBucket `json:"batch_size_hist"`
	EvalTimeMS    float64       `json:"eval_time_ms"`

	Ops OpStatsSnapshot `json:"ops"`

	Sessions struct {
		Count     int    `json:"count"`
		Bytes     int64  `json:"bytes"`
		CapBytes  int64  `json:"cap_bytes"`
		Evictions uint64 `json:"evictions"`
		Opened    uint64 `json:"opened"`
		HotHits   uint64 `json:"hot_hits"`
		ColdLoads uint64 `json:"cold_loads"`
		Misses    uint64 `json:"misses"`
	} `json:"sessions"`

	// Store is the durable session tier (nil when running memory-only).
	Store *StoreSnapshot `json:"store,omitempty"`
}

// StoreSnapshot is the /metrics view of the durable tier: occupancy,
// lifetime put/load/spill/compaction/eviction counters, and what the
// last recovery found.
type StoreSnapshot struct {
	Entries   int   `json:"entries"`
	MemBytes  int64 `json:"mem_bytes"`
	WALBytes  int64 `json:"wal_bytes"`
	DiskBytes int64 `json:"disk_bytes"`
	Segments  int   `json:"segments"`

	Puts        uint64 `json:"puts"`
	Loads       uint64 `json:"loads"`
	Spills      uint64 `json:"spills"`
	Compactions uint64 `json:"compactions"`
	Evictions   uint64 `json:"evictions"`

	RecoveredEntries    int   `json:"recovered_entries"`
	WALDroppedBytes     int64 `json:"wal_dropped_bytes"`
	QuarantinedSegments int   `json:"quarantined_segments"`
}

// Snapshot assembles the current metrics document. reg and b may be nil
// (their sections are zero).
func (m *Metrics) Snapshot(reg *Registry, b *Batcher) Snapshot {
	var s Snapshot
	m.mu.Lock()
	s.Requests.Accepted = m.accepted
	s.Requests.Completed = m.completed
	s.Requests.RejectedBusy = m.rejectedBusy
	s.Requests.RateLimited = m.rateLimited
	s.Requests.DeadlineExpired = m.deadline
	s.Requests.Failed = m.failed
	s.Connections = m.conns
	s.Batches = m.batches
	s.Images = m.images
	if m.batches > 0 {
		s.MeanBatchSize = float64(m.images) / float64(m.batches)
	}
	s.BatchSizeHist = make([]BatchBucket, 0, len(m.batchHist))
	for i, c := range m.batchHist {
		bb := BatchBucket{Count: c}
		if i < len(batchHistBuckets) {
			bb.LE = batchHistBuckets[i]
		}
		s.BatchSizeHist = append(s.BatchSizeHist, bb)
	}
	s.EvalTimeMS = float64(m.evalTime) / float64(time.Millisecond)
	s.Ops = OpStatsSnapshot{
		PMult:       m.opsTotal.PMult,
		HAdd:        m.opsTotal.HAdd,
		CMult:       m.opsTotal.CMult,
		SMult:       m.opsTotal.SMult,
		Packs:       m.opsTotal.Packs,
		FBSCalls:    m.opsTotal.FBSCalls,
		S2CCalls:    m.opsTotal.S2CCalls,
		Extractions: m.opsTotal.Extractions,
		KeySwitches: m.opsTotal.KeySwitches,
		LWEAdds:     m.opsTotal.LWEAdds,
	}
	s.Sessions.Opened = m.sessionsUp
	m.mu.Unlock()

	if b != nil {
		s.QueueDepth, s.InflightBatches = b.QueueDepth()
	}
	if reg != nil {
		s.Sessions.Count, s.Sessions.Bytes, s.Sessions.CapBytes, s.Sessions.Evictions = reg.Stats()
		s.Sessions.HotHits, s.Sessions.ColdLoads, s.Sessions.Misses = reg.TierStats()
		if st, ok := reg.StoreStats(); ok {
			s.Store = &StoreSnapshot{
				Entries:             st.Entries,
				MemBytes:            st.MemBytes,
				WALBytes:            st.WALBytes,
				DiskBytes:           st.DiskBytes,
				Segments:            st.Segments,
				Puts:                st.Puts,
				Loads:               st.Loads,
				Spills:              st.Spills,
				Compactions:         st.Compactions,
				Evictions:           st.Evictions,
				RecoveredEntries:    st.RecoveredEntries,
				WALDroppedBytes:     st.WALDroppedBytes,
				QuarantinedSegments: st.QuarantinedSegments,
			}
		}
	}
	return s
}
