package serve

import (
	"bytes"
	"errors"
	"testing"

	"athena/internal/core"
)

// evalKeysBlob generates a distinct key bundle per seed.
func evalKeysBlob(t *testing.T, seed uint64) []byte {
	t.Helper()
	p := core.TestParams()
	p.Seed = seed
	eng, err := core.NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := eng.WriteEvalKeys(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestRegistryContentAddressing(t *testing.T) {
	blob := evalKeysBlob(t, 101)
	r := NewRegistry(core.TestParams(), 0)
	s1, created, err := r.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first open not marked created")
	}
	if s1.ID != SessionID(blob) {
		t.Fatalf("session ID %s, want content hash %s", s1.ID, SessionID(blob))
	}
	// Same material again: same resident session, no rebuild.
	s2, created, err := r.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if created || s2 != s1 {
		t.Fatal("re-upload of identical keys did not reuse the session")
	}
	if got, ok := r.Get(s1.ID); !ok || got != s1 {
		t.Fatal("Get by ID missed the resident session")
	}
}

func TestRegistryLRUEvictionAndPinning(t *testing.T) {
	blobA := evalKeysBlob(t, 201)
	blobB := evalKeysBlob(t, 202)
	// Cap fits one session only.
	r := NewRegistry(core.TestParams(), int64(len(blobA))+1)

	a, _, err := r.Open(blobA)
	if err != nil {
		t.Fatal(err)
	}

	// Pinned sessions must not be evicted: opening B has to fail.
	r.Acquire(a)
	if _, _, err := r.Open(blobB); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("open over a pinned session: got %v, want ErrRegistryFull", err)
	}
	if _, ok := r.Get(a.ID); !ok {
		t.Fatal("pinned session disappeared after failed open")
	}

	// Released, A becomes the LRU victim.
	r.Release(a)
	b, created, err := r.Open(blobB)
	if err != nil || !created {
		t.Fatalf("open after release: created=%v err=%v", created, err)
	}
	if _, ok := r.Get(a.ID); ok {
		t.Fatal("LRU session survived eviction")
	}
	if _, ok := r.Get(b.ID); !ok {
		t.Fatal("fresh session missing")
	}
	count, total, _, evictions := r.Stats()
	if count != 1 || evictions != 1 {
		t.Fatalf("stats: count=%d evictions=%d, want 1/1", count, evictions)
	}
	if total != b.Bytes {
		t.Fatalf("resident bytes %d, want %d", total, b.Bytes)
	}
}

func TestRegistryRejectsGarbage(t *testing.T) {
	r := NewRegistry(core.TestParams(), 0)
	if _, _, err := r.Open([]byte("not a key bundle")); err == nil {
		t.Fatal("garbage blob accepted")
	}
	count, _, _, _ := r.Stats()
	if count != 0 {
		t.Fatal("failed open left residue in the registry")
	}
}
