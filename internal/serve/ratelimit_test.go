package serve

import (
	"testing"
	"time"
)

// TestTokenBucketBurstAndRefill: the bucket starts full, spends down to
// zero, and refills continuously at the configured rate — all on the
// manual clock, so the arithmetic is exact.
func TestTokenBucketBurstAndRefill(t *testing.T) {
	clk := NewManualClock()
	tb := newTokenBucket(clk, 2.0, 3) // 2 req/s, burst 3

	for i := 0; i < 3; i++ {
		if !tb.allow() {
			t.Fatalf("request %d inside the burst denied", i)
		}
	}
	if tb.allow() {
		t.Fatal("request beyond the burst allowed with no time elapsed")
	}

	// Half a second at 2/s buys exactly one token.
	clk.Advance(500 * time.Millisecond)
	if !tb.allow() {
		t.Fatal("refilled token denied")
	}
	if tb.allow() {
		t.Fatal("second token allowed after a one-token refill")
	}

	// A long idle period caps at the burst, not the elapsed total.
	clk.Advance(time.Hour)
	for i := 0; i < 3; i++ {
		if !tb.allow() {
			t.Fatalf("request %d after refill-to-burst denied", i)
		}
	}
	if tb.allow() {
		t.Fatal("burst cap not enforced after idle refill")
	}
}

// TestTokenBucketMinimumBurst: a burst below 1 is raised to 1 so a
// configured limiter always admits something.
func TestTokenBucketMinimumBurst(t *testing.T) {
	clk := NewManualClock()
	tb := newTokenBucket(clk, 0.5, 0)
	if !tb.allow() {
		t.Fatal("first request denied with minimum burst")
	}
	if tb.allow() {
		t.Fatal("second immediate request allowed with burst 1")
	}
	clk.Advance(2 * time.Second) // 0.5/s × 2s = 1 token
	if !tb.allow() {
		t.Fatal("token after refill denied")
	}
}

// TestTokenBucketNilAlwaysAllows: the unlimited default is a nil
// bucket.
func TestTokenBucketNilAlwaysAllows(t *testing.T) {
	var tb *tokenBucket
	for i := 0; i < 100; i++ {
		if !tb.allow() {
			t.Fatal("nil limiter denied a request")
		}
	}
}
