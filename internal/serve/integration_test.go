package serve_test

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"athena/internal/core"
	"athena/internal/qnn"
	"athena/internal/serve"
	"athena/internal/serve/client"
)

// itEnv caches the client-side engine across integration tests (keygen
// is the expensive part).
var itEnv struct {
	once sync.Once
	eng  *core.Engine
	err  error
}

func itEngine(t *testing.T) *core.Engine {
	t.Helper()
	itEnv.once.Do(func() {
		itEnv.eng, itEnv.err = core.NewEngine(core.TestParams())
	})
	if itEnv.err != nil {
		t.Fatal(itEnv.err)
	}
	return itEnv.eng
}

func startServer(t *testing.T, cfg serve.Config) (*serve.Server, string) {
	t.Helper()
	if cfg.Params.LogN == 0 {
		cfg.Params = core.TestParams()
	}
	if cfg.Models == nil {
		demo := serve.DemoNet()
		cfg.Models = map[string]*qnn.QNetwork{demo.Name: demo}
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	return srv, ln.Addr().String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServeSixteenConcurrentClients is the headline end-to-end check:
// 16 client connections share one uploaded session, stream concurrent
// requests, and every decrypted result matches the plaintext reference
// — with the batcher realizing a mean batch size above 1.
func TestServeSixteenConcurrentClients(t *testing.T) {
	eng := itEngine(t)
	model := serve.DemoNet()
	_, addr := startServer(t, serve.Config{
		MaxBatch: 16,
		MaxWait:  750 * time.Millisecond,
		MaxQueue: 64,
	})

	const N = 16
	// Encrypt serially: encryption consumes the engine's PRNG stream.
	ins := make([]*core.EncryptedInput, N)
	refs := make([][]int64, N)
	for i := 0; i < N; i++ {
		x := serve.DemoInput(uint64(300 + i))
		refs[i] = model.ForwardInt(x).Data
		var err error
		ins[i], err = eng.EncryptInput(model, x)
		if err != nil {
			t.Fatal(err)
		}
	}

	// Connection 0 uploads the keys; the other 15 attach by ID — the
	// session is shared, which is what makes their requests batchable.
	clients := make([]*client.Client, N)
	for i := range clients {
		c, err := client.Dial(addr, eng, client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	id, err := clients[0].OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < N; i++ {
		if err := clients[i].Attach(id); err != nil {
			t.Fatal(err)
		}
	}

	outs := make([]*core.EncryptedLogits, N)
	errs := make([]error, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = clients[i].InferEncrypted(model, ins[i], 0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	// Decrypt serially on the client engine and check against plaintext
	// at the repo's batched e_ms tolerance.
	for i := range outs {
		got, err := eng.DecryptLogits(outs[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if d := got[j] - refs[i][j]; d < -3 || d > 3 {
				t.Fatalf("client %d logit %d: got %d, plaintext %d", i, j, got[j], refs[i][j])
			}
		}
	}

	snap, err := clients[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Requests.Completed != N {
		t.Fatalf("completed %d, want %d", snap.Requests.Completed, N)
	}
	if snap.MeanBatchSize <= 1 {
		t.Fatalf("mean batch size %.2f: batching never coalesced", snap.MeanBatchSize)
	}
	if snap.Sessions.Count != 1 {
		t.Fatalf("%d sessions resident, want 1 shared", snap.Sessions.Count)
	}
	t.Logf("16 clients: %d batches, mean batch size %.2f, %d FBS calls",
		snap.Batches, snap.MeanBatchSize, snap.Ops.FBSCalls)
}

// TestServeBusyPreservesSessions: overflowing the admission queue
// returns BUSY to the overflow request only — the session stays
// resident and the queued request still completes.
func TestServeBusyPreservesSessions(t *testing.T) {
	eng := itEngine(t)
	model := serve.DemoNet()
	clk := serve.NewManualClock()
	srv, addr := startServer(t, serve.Config{
		MaxBatch: 100,
		MaxWait:  time.Minute, // fake-clock minutes: holds the queue full
		MaxQueue: 1,
		Clock:    clk,
	})

	c, err := client.Dial(addr, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.OpenSession()
	if err != nil {
		t.Fatal(err)
	}

	// First request occupies the whole queue (the fake clock never
	// fires MaxWait on its own).
	firstDone := make(chan error, 1)
	go func() {
		_, err := c.Infer(model, serve.DemoInput(400), 0)
		firstDone <- err
	}()
	waitFor(t, "first request admitted", func() bool {
		return srv.Metrics().QueueDepth >= 1
	})

	// Second request must get a typed BUSY, not hang and not kill the
	// session.
	_, err = c.Infer(model, serve.DemoInput(401), 0)
	var re *serve.RequestError
	if !errors.As(err, &re) || re.Code != serve.CodeBusy {
		t.Fatalf("overflow request: got %v, want BUSY", err)
	}

	// The session survived: a fresh connection can still attach.
	c2, err := client.Dial(addr, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Attach(id); err != nil {
		t.Fatalf("attach after BUSY: %v", err)
	}

	// Release the queued request and confirm it completes normally.
	clk.Advance(time.Minute)
	select {
	case err := <-firstDone:
		if err != nil {
			t.Fatalf("queued request failed: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("queued request never completed")
	}
	snap := srv.Metrics()
	if snap.Requests.RejectedBusy != 1 || snap.Requests.Completed != 1 {
		t.Fatalf("busy=%d completed=%d, want 1/1", snap.Requests.RejectedBusy, snap.Requests.Completed)
	}
}

// TestServeDrainCompletesInflight: Shutdown answers every admitted
// request before closing connections, and the listener stops accepting.
func TestServeDrainCompletesInflight(t *testing.T) {
	eng := itEngine(t)
	model := serve.DemoNet()
	clk := serve.NewManualClock()
	srv, addr := startServer(t, serve.Config{
		MaxBatch: 100,
		MaxWait:  time.Hour, // pending until drain flushes it
		MaxQueue: 8,
		Clock:    clk,
	})

	c, err := client.Dial(addr, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.OpenSession(); err != nil {
		t.Fatal(err)
	}
	x := serve.DemoInput(500)
	done := make(chan []int64, 1)
	fail := make(chan error, 1)
	go func() {
		logits, err := c.Infer(model, x, 0)
		if err != nil {
			fail <- err
			return
		}
		done <- logits
	}()
	waitFor(t, "request admitted", func() bool {
		return srv.Metrics().QueueDepth >= 1
	})

	// Drain with the request still pending in a forming batch: Shutdown
	// must flush it, answer, then close.
	srv.Shutdown()
	select {
	case logits := <-done:
		ref := model.ForwardInt(x).Data
		for j := range logits {
			if d := logits[j] - ref[j]; d < -3 || d > 3 {
				t.Fatalf("drained request logit %d: got %d, plaintext %d", j, logits[j], ref[j])
			}
		}
	case err := <-fail:
		t.Fatalf("in-flight request failed during drain: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("in-flight request lost during drain")
	}

	// The listener is gone: new connections are refused.
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		// Accept loop may race the close by one connection; what must
		// hold is that no new work is admitted.
		c3, err := client.Dial(addr, eng, client.Options{})
		if err == nil {
			defer c3.Close()
			if _, err := c3.OpenSession(); err == nil {
				t.Fatal("server accepted a session after shutdown")
			}
		}
	}
}

// TestServeTypedErrors walks the protocol's failure answers.
func TestServeTypedErrors(t *testing.T) {
	eng := itEngine(t)
	model := serve.DemoNet()
	_, addr := startServer(t, serve.Config{MaxWait: 5 * time.Millisecond})

	c, err := client.Dial(addr, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var re *serve.RequestError
	// Inference without a session.
	if _, err := c.Infer(model, serve.DemoInput(600), 0); !errors.As(err, &re) || re.Code != serve.CodeNoSession {
		t.Fatalf("no-session inference: got %v, want NO_SESSION", err)
	}
	// Attach to a session that was never opened.
	if err := c.Attach("00000000000000000000000000000000"); !errors.As(err, &re) || re.Code != serve.CodeSessionNotFound {
		t.Fatalf("bogus attach: got %v, want SESSION_NOT_FOUND", err)
	}
	if _, err := c.OpenSession(); err != nil {
		t.Fatal(err)
	}
	// Unknown model.
	ghost := serve.DemoNet()
	ghost.Name = "ghost"
	if _, err := c.Infer(ghost, serve.DemoInput(601), 0); !errors.As(err, &re) || re.Code != serve.CodeModelNotFound {
		t.Fatalf("unknown model: got %v, want MODEL_NOT_FOUND", err)
	}
	// A successful request still works on the same connection after the
	// errors above.
	x := serve.DemoInput(602)
	got, err := c.Infer(model, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := model.ForwardInt(x).Data
	for j := range got {
		if d := got[j] - ref[j]; d < -3 || d > 3 {
			t.Fatalf("logit %d: got %d, plaintext %d", j, got[j], ref[j])
		}
	}
}

// TestServeGarbageSession: a malformed key upload is rejected with a
// typed error and the connection remains usable.
func TestServeGarbageSession(t *testing.T) {
	eng := itEngine(t)
	_, addr := startServer(t, serve.Config{MaxWait: 5 * time.Millisecond})
	c, err := client.Dial(addr, eng, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Hand-roll a bogus SessionNew frame through the raw protocol.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := serve.WriteFrame(raw, serve.FrameSessionNew, []byte("junk keys")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := serve.ReadFrame(raw, serve.DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != serve.FrameError {
		t.Fatalf("frame type %d, want FrameError", typ)
	}
	_, code, _, err := serve.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if code != serve.CodeBadRequest {
		t.Fatalf("error code %s, want BAD_REQUEST", code)
	}
	// The same connection can then open a real session.
	var blob bytes.Buffer
	if err := eng.WriteEvalKeys(&blob); err != nil {
		t.Fatal(err)
	}
	if err := serve.WriteFrame(raw, serve.FrameSessionNew, blob.Bytes()); err != nil {
		t.Fatal(err)
	}
	typ, _, err = serve.ReadFrame(raw, serve.DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != serve.FrameSessionOK {
		t.Fatalf("frame type %d, want FrameSessionOK after recovery", typ)
	}
}
