package serve

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for the batcher so its flush policy is testable
// deterministically (see ManualClock).
type Clock interface {
	Now() time.Time
	// AfterFunc schedules f after d and returns a handle whose Stop
	// cancels a not-yet-fired timer.
	AfterFunc(d time.Duration, f func()) ClockTimer
}

// ClockTimer is the cancellation handle of Clock.AfterFunc.
type ClockTimer interface{ Stop() bool }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }
func (realClock) AfterFunc(d time.Duration, f func()) ClockTimer {
	return time.AfterFunc(d, f)
}

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// ManualClock is a deterministic Clock: time only moves on Advance,
// which fires due timers in scheduling order. It makes batcher flush
// behavior (flush-on-deadline vs flush-on-full, stragglers, drain)
// reproducible in tests.
type ManualClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*manualTimer
}

type manualTimer struct {
	c       *ManualClock
	when    time.Time
	fn      func()
	stopped bool
	fired   bool
}

// NewManualClock starts at an arbitrary fixed instant.
func NewManualClock() *ManualClock {
	return &ManualClock{now: time.Unix(1_000_000, 0)}
}

// Now returns the current manual time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc schedules f to run when Advance moves time past d.
func (c *ManualClock) AfterFunc(d time.Duration, f func()) ClockTimer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &manualTimer{c: c, when: c.now.Add(d), fn: f}
	c.timers = append(c.timers, t)
	return t
}

func (t *manualTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	was := !t.stopped && !t.fired
	t.stopped = true
	return was
}

// Advance moves time forward and synchronously runs every timer that
// came due, in firing order, outside the clock lock.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due []*manualTimer
	for _, t := range c.timers {
		if !t.stopped && !t.fired && !t.when.After(c.now) {
			t.fired = true
			due = append(due, t)
		}
	}
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].when.Before(due[j].when) })
	for _, t := range due {
		t.fn()
	}
}
