package serve

import (
	"bytes"
	"testing"
)

// TestFrameCodecZeroAllocs enforces the noalloc contract on the framed
// wire path: with a reused write buffer and read arena, encoding and
// decoding a frame allocates nothing, so a connection's steady-state
// loop produces no per-frame garbage.
func TestFrameCodecZeroAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0xA5}, 4096)
	frame := AppendFrame(nil, FrameInfer, payload)

	var dst []byte
	if n := testing.AllocsPerRun(100, func() {
		dst = AppendFrame(dst[:0], FrameInfer, payload)
	}); n != 0 {
		t.Fatalf("AppendFrame allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		dst = AppendResult(dst[:0], 42, payload)
	}); n != 0 {
		t.Fatalf("AppendResult allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		dst = AppendError(dst[:0], 42, CodeBusy, "queue full")
	}); n != 0 {
		t.Fatalf("AppendError allocates %v times per run, want 0", n)
	}

	rd := bytes.NewReader(frame)
	var arena []byte
	if n := testing.AllocsPerRun(100, func() {
		rd.Reset(frame)
		if _, _, err := ReadFrameInto(rd, &arena, DefaultMaxFrame); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ReadFrameInto allocates %v times per run, want 0", n)
	}
}

// TestAppendFrameMatchesWriteFrame pins the zero-alloc encoders to
// their allocating counterparts byte for byte, and the arena reader to
// the allocating reader.
func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	payload := []byte("the quick brown fox")

	var w bytes.Buffer
	if err := WriteFrame(&w, FrameResult, payload); err != nil {
		t.Fatal(err)
	}
	if got := AppendFrame(nil, FrameResult, payload); !bytes.Equal(got, w.Bytes()) {
		t.Fatalf("AppendFrame %x, WriteFrame %x", got, w.Bytes())
	}
	if got, want := AppendResult(nil, 7, payload), EncodeResult(7, payload); !bytes.Equal(got, want) {
		t.Fatalf("AppendResult %x, EncodeResult %x", got, want)
	}
	if got, want := AppendError(nil, 7, CodeInternal, "boom"), EncodeError(7, CodeInternal, "boom"); !bytes.Equal(got, want) {
		t.Fatalf("AppendError %x, EncodeError %x", got, want)
	}

	var arena []byte
	typ, body, err := ReadFrameInto(bytes.NewReader(w.Bytes()), &arena, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != FrameResult || !bytes.Equal(body, payload) {
		t.Fatalf("ReadFrameInto returned type %d payload %q", typ, body)
	}

	// Truncated payloads must surface as io.ErrUnexpectedEOF, exactly as
	// ReadFrame reports them.
	short := w.Bytes()[:w.Len()-3]
	if _, _, err := ReadFrameInto(bytes.NewReader(short), &arena, DefaultMaxFrame); err == nil {
		t.Fatal("ReadFrameInto accepted a truncated frame")
	}
}
