package compiler

import (
	"testing"

	"athena/internal/core"
	"athena/internal/qnn"
)

func specTrace(t *testing.T, model string, w, a int) *Trace {
	t.Helper()
	qn, err := SpecModel(model, w, a)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Compile(qn, core.FullParams())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCompileAllBenchmarks(t *testing.T) {
	for _, m := range qnn.BenchmarkModels {
		tr := specTrace(t, m, 7, 7)
		tot := tr.Totals()
		if tot.PMult == 0 || tot.CMult == 0 || tot.SE == 0 {
			t.Fatalf("%s: empty trace totals %+v", m, tot)
		}
		if err := VerifyTable3(tr); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestTraceScalesWithModelDepth(t *testing.T) {
	t20 := specTrace(t, "ResNet-20", 7, 7).Totals()
	t56 := specTrace(t, "ResNet-56", 7, 7).Totals()
	ratio := float64(t56.CMult) / float64(t20.CMult)
	// ResNet-56 has ~3x the layers; total FBS work should scale ~2.5-3.2x.
	if ratio < 2.2 || ratio > 3.5 {
		t.Fatalf("ResNet-56/ResNet-20 CMult ratio %.2f outside the depth band", ratio)
	}
}

func TestLUTSizeTracksQuantization(t *testing.T) {
	// w6a7 must shrink the FBS tables versus w7a7 (the paper's Athena-w6a7
	// advantage); w8a8 must grow them (Fig. 12's blow-up).
	lut := func(w, a int) int64 {
		tr := specTrace(t, "ResNet-20", w, a)
		var total int64
		for _, s := range tr.Steps {
			if s.Kind == KFBS {
				total += int64(s.LUTSize)
			}
		}
		return total
	}
	l6 := lut(6, 7)
	l7 := lut(7, 7)
	l8 := lut(8, 8)
	if !(l6 < l7 && l7 < l8) {
		t.Fatalf("LUT totals not ordered: w6a7=%d w7a7=%d w8a8=%d", l6, l7, l8)
	}
}

func TestLUTSizeFunction(t *testing.T) {
	if LUTSize(100, 65537) != 256 {
		t.Fatalf("LUTSize(100) = %d", LUTSize(100, 65537))
	}
	if LUTSize(30000, 65537) != 65536 {
		t.Fatalf("LUTSize(30000) = %d", LUTSize(30000, 65537))
	}
	if LUTSize(1<<30, 65537) != 1<<17 {
		t.Fatal("LUTSize must cap at 2^17")
	}
	if LUTSize(0, 65537) != 16 {
		t.Fatal("LUTSize must floor at 16")
	}
}

func TestCategoriesPresent(t *testing.T) {
	tr := specTrace(t, "LeNet", 7, 7)
	cats := tr.TotalsByCategory()
	for _, c := range []Category{CatLinear, CatActivation, CatPooling, CatSoftmax, CatConvert} {
		if _, ok := cats[c]; !ok {
			t.Fatalf("LeNet trace missing category %s", c)
		}
	}
	// LeNet uses max pooling: its pooling bucket must contain FBS work
	// (the max tree), unlike avg pooling which is mostly LWE adds.
	if cats[CatPooling].CMult == 0 {
		t.Fatal("max-pool trace has no FBS CMults")
	}
}

func TestConvStepsHaveNoRotations(t *testing.T) {
	// Table 3's headline: Athena's convolution avoids HRot entirely.
	tr := specTrace(t, "ResNet-20", 7, 7)
	for _, s := range tr.Steps {
		if s.Kind == KLinear && s.Counts.HRot != 0 {
			t.Fatalf("linear step %s uses rotations", s.Layer)
		}
	}
}

func TestTable3Rows(t *testing.T) {
	rows := Table3()
	if len(rows) != 7 {
		t.Fatalf("Table 3 has %d rows", len(rows))
	}
	if rows[3].Solution != "Athena" || rows[3].HRot != "/" {
		t.Fatalf("athena conv row wrong: %+v", rows[3])
	}
}

func TestSpecMaxAcc(t *testing.T) {
	// Halving weight bits halves the bound; must stay positive and
	// monotone in fan-in.
	a := SpecMaxAcc(7, 7, 576)
	b := SpecMaxAcc(6, 7, 576)
	if a <= 0 || b <= 0 || a < 2*b-2 || a > 2*b+2 {
		t.Fatalf("SpecMaxAcc scaling broken: w7=%d w6=%d", a, b)
	}
	if SpecMaxAcc(7, 7, 9) >= SpecMaxAcc(7, 7, 576) {
		t.Fatal("SpecMaxAcc not monotone in fan-in")
	}
}

func TestVerifyTable3CatchesViolations(t *testing.T) {
	// A hand-built trace violating the conv no-rotation rule must fail.
	tr := &Trace{Params: core.FullParams(), Steps: []Step{
		{Layer: "bad-conv", Kind: KLinear, Counts: OpCounts{HRot: 5}},
	}}
	if err := VerifyTable3(tr); err == nil {
		t.Fatal("rotation-using conv accepted")
	}
	tr = &Trace{Params: core.FullParams(), Steps: []Step{
		{Layer: "bad-fbs", Kind: KFBS, LUTSize: 256, Counts: OpCounts{CMult: 10000}},
	}}
	if err := VerifyTable3(tr); err == nil {
		t.Fatal("oversized FBS accepted")
	}
	tr = &Trace{Params: core.FullParams(), Steps: []Step{
		{Layer: "bad-s2c", Kind: KS2C, Counts: OpCounts{PMult: 1 << 20}},
	}}
	if err := VerifyTable3(tr); err == nil {
		t.Fatal("oversized S2C accepted")
	}
}

func TestCompileRejectsEmptyNetwork(t *testing.T) {
	if _, err := Compile(&qnn.QNetwork{Name: "empty"}, core.FullParams()); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestUniformLUTOptionForcesFullTables(t *testing.T) {
	qn, err := SpecModel("MNIST", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := CompileWithOptions(qn, core.FullParams(), Options{UniformLUT: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Steps {
		if s.Kind == KFBS && s.LUTSize > 2 && s.LUTSize != 65536 {
			t.Fatalf("uniform option left a %d-entry LUT", s.LUTSize)
		}
	}
}

func TestBatchSizeScalesTrace(t *testing.T) {
	qn, err := SpecModel("MNIST", 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	one, err := Compile(qn, core.FullParams())
	if err != nil {
		t.Fatal(err)
	}
	four, err := CompileWithOptions(qn, core.FullParams(), Options{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	t1, t4 := one.Totals(), four.Totals()
	linearPMult := func(tr *Trace) int64 {
		var v int64
		for _, s := range tr.Steps {
			if s.Kind == KLinear {
				v += s.Counts.PMult
			}
		}
		return v
	}
	// Per-image work (linear products, extractions) scales exactly 4x.
	if linearPMult(four) != 4*linearPMult(one) || t4.SE != 4*t1.SE {
		t.Fatalf("per-image work did not scale: linear PMult %d->%d SE %d->%d",
			linearPMult(one), linearPMult(four), t1.SE, t4.SE)
	}
	// Shared FBS work scales sub-linearly (packs fill across images).
	if t4.CMult >= 4*t1.CMult {
		t.Fatalf("FBS work scaled linearly: CMult %d -> %d", t1.CMult, t4.CMult)
	}
}
