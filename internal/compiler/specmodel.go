package compiler

import (
	"fmt"
	"math"

	"athena/internal/qnn"
)

// SpecModel builds a QNetwork of the named benchmark architecture with
// heuristic (untrained) parameters, for tracing and simulation where
// only shapes, quantization precision, and accumulator ranges matter.
// The accumulator bound follows a random-walk model calibrated against
// the trained models' Fig. 4 statistics:
//
//	MaxAcc ≈ 0.27 · 2^(w-1) · 2^(a-1) · √(Cin·k²)
//
// which puts ResNet layers just under 2^15 at w7a7 (LUT 2^16 = t) and
// halves per weight bit removed — reproducing the paper's w6a7 LUT
// shrinkage and the w8a8 blow-up of Fig. 12.
func SpecModel(name string, wBits, aBits int) (*qnn.QNetwork, error) {
	net, err := qnn.ModelByName(name, 1)
	if err != nil {
		return nil, err
	}
	// A minimal calibration set gives the quantizer activation scales;
	// the heuristic bound then replaces the data-dependent one.
	var ds *qnn.Dataset
	if net.InC == 1 {
		ds = qnn.SynthDigits(4, 2)
	} else {
		ds = qnn.SynthCIFAR(4, 2)
	}
	cfg := qnn.QuantConfig{WBits: wBits, ABits: aBits, CalibSamples: 2, AccMargin: 1.1}
	qn, err := qnn.Quantize(net, ds, cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range qn.Convs() {
		c.MaxAcc = SpecMaxAcc(wBits, aBits, c.Shape.MACsPerOutput())
	}
	return qn, nil
}

// SpecMaxAcc is the heuristic accumulator bound for a layer with the
// given fan-in under w/a quantization.
func SpecMaxAcc(wBits, aBits, fanIn int) int64 {
	v := 0.27 * math.Exp2(float64(wBits-1)) * math.Exp2(float64(aBits-1)) * math.Sqrt(float64(fanIn))
	if v < 16 {
		v = 16
	}
	return int64(v)
}

// ComplexityRow is one row of Table 3 (asymptotic op counts).
type ComplexityRow struct {
	Solution  string
	Operation string
	PMult     string
	CMult     string
	HRot      string
}

// Table3 returns the asymptotic comparison of Table 3.
func Table3() []ComplexityRow {
	return []ComplexityRow{
		{"CKKS-based", "Conv", "O(f²C)", "/", "O(f²)+O(C)"},
		{"CKKS-based", "ReLU", "O(p)", "O(√p)", "/"},
		{"CKKS-based", "Bootstrap", "O(∛N)+O(r)", "O(√r)", "O(∛N)"},
		{"Athena", "Conv", "O(C)", "/", "/"},
		{"Athena", "Packing", "O(C)", "/", "O(C)"},
		{"Athena", "FBS", "O(t)", "O(√t)", "/"},
		{"Athena", "S2C", "O(∛N)", "/", "O(∛N)"},
	}
}

// VerifyTable3 cross-checks the asymptotic claims against a compiled
// trace: returns an error naming the first violated bound.
func VerifyTable3(tr *Trace) error {
	n := 1 << tr.Params.LogN
	cbrtN := int64(math.Cbrt(float64(n)) + 0.5)
	for _, s := range tr.Steps {
		switch s.Kind {
		case KLinear:
			if s.Counts.HRot != 0 {
				return fmt.Errorf("conv step %q uses rotations", s.Layer)
			}
		case KFBS:
			if s.LUTSize > 1 {
				bound := 4 * int64(math.Sqrt(float64(s.LUTSize)))
				if s.Counts.CMult > bound {
					return fmt.Errorf("FBS step %q: %d CMult exceeds O(√t)=%d", s.Layer, s.Counts.CMult, bound)
				}
				if s.Counts.SMult > int64(s.LUTSize) {
					return fmt.Errorf("FBS step %q: %d SMult exceeds O(t)", s.Layer, s.Counts.SMult)
				}
			}
		case KS2C:
			if s.Counts.PMult > 4*cbrtN || s.Counts.HRot > 4*cbrtN {
				return fmt.Errorf("S2C step %q exceeds O(∛N)", s.Layer)
			}
		}
	}
	return nil
}
