package compiler

import (
	"math/rand/v2"
	"testing"

	"athena/internal/coeffenc"
	"athena/internal/core"
	"athena/internal/qnn"
)

// TestTraceTracksEngine cross-validates the compiler against the real
// software pipeline: for a small network executed under encryption at
// test parameters, the trace's operation counts must track the engine's
// actual counters (packs and S2C calls exactly; FBS CMults within the
// BSGS rounding slack — the engine interpolates over all of Z_t while
// the trace models the range-sized LUT).
func TestTraceTracksEngine(t *testing.T) {
	p := core.TestParams()
	e, err := core.NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	mk := func(shape coeffenc.ConvShape, act qnn.Activation, mult float64) *qnn.QConv {
		w := make([][][][]int64, shape.Cout)
		for co := range w {
			w[co] = make([][][]int64, shape.Cin)
			for ci := range w[co] {
				w[co][ci] = make([][]int64, shape.K)
				for i := range w[co][ci] {
					w[co][ci][i] = make([]int64, shape.K)
					for j := range w[co][ci][i] {
						w[co][ci][i][j] = int64(rng.IntN(3)) - 1
					}
				}
			}
		}
		return &qnn.QConv{Shape: shape, Weights: w, Bias: make([]int64, shape.Cout),
			Act: act, Multiplier: mult, ActBits: 4, MaxAcc: 120}
	}
	// Every layer fits one input batch at N=128 so the engine's
	// per-input-batch packing and the trace's per-value-count grouping
	// coincide (at full scale they coincide for all the benchmarks; at
	// test scale fragmented layers pack more often in software).
	net := &qnn.QNetwork{
		Name: "xcheck", InC: 1, InH: 5, InW: 5, WBits: 2, ABits: 4, InScale: 1,
		Blocks: []qnn.QBlock{qnn.QSeq{
			mk(coeffenc.ConvShape{H: 5, W: 5, Cin: 1, Cout: 1, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16),
			mk(coeffenc.ConvShape{H: 5, W: 5, Cin: 1, Cout: 1, K: 3, Stride: 1, Pad: 1}, qnn.ActReLU, 1.0/16),
			mk(coeffenc.FCShape(25, 4), qnn.ActNone, 1.0/8),
		}},
	}
	x := qnn.NewIntTensor(1, 5, 5)
	for i := range x.Data {
		x.Data[i] = int64(rng.IntN(8))
	}
	if _, err := e.Infer(net, x); err != nil {
		t.Fatal(err)
	}

	tr, err := Compile(net, p)
	if err != nil {
		t.Fatal(err)
	}
	var packs, s2c int
	var cmult int64
	for _, s := range tr.Steps {
		switch s.Kind {
		case KPack:
			packs++
		case KS2C:
			s2c++
		case KFBS:
			cmult += s.Counts.CMult
		}
	}
	// The trace includes the softmax epilogue (2 extra pack/FBS/S2C
	// rounds) that the engine's plain Infer path does not execute.
	packs -= 2
	s2c -= 2

	if packs != e.Stats.Packs {
		t.Fatalf("pack count: trace %d vs engine %d", packs, e.Stats.Packs)
	}
	if s2c != e.Stats.S2CCalls {
		t.Fatalf("S2C count: trace %d vs engine %d", s2c, e.Stats.S2CCalls)
	}
	// FBS CMults: trace models range-sized LUTs, the engine full-t
	// tables; at t=257 and MaxAcc=120 both are ~45 per call. Allow 30%.
	var softmaxCM int64
	for _, s := range tr.Steps {
		if s.Cat == CatSoftmax && s.Kind == KFBS {
			softmaxCM += s.Counts.CMult
		}
	}
	cmult -= softmaxCM
	ratio := float64(cmult) / float64(e.Stats.CMult)
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("FBS CMult count: trace %d vs engine %d (ratio %.2f)", cmult, e.Stats.CMult, ratio)
	}
}
