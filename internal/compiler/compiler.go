// Package compiler lowers a quantized network onto the Athena framework
// at a given parameter set, producing the operation trace the
// accelerator simulator prices: per-step counts of PMult/CMult/SMult/
// HAdd/HRot, sample extractions, keyswitches, packing and S2C calls, and
// the per-layer LUT sizes that determine FBS cost.
//
// The trace follows the paper's hardware-side ordering (ring degree
// switch before sample extraction, three-level S2C), which the software
// engine intentionally deviates from in favour of per-value exactness;
// DESIGN.md discusses the equivalence.
package compiler

import (
	"fmt"
	"math"

	"athena/internal/coeffenc"
	"athena/internal/core"
	"athena/internal/qnn"
)

// Category attributes a step to a Fig. 9 breakdown bucket.
type Category string

// Fig. 9 buckets.
const (
	CatLinear     Category = "linear"
	CatActivation Category = "activation"
	CatPooling    Category = "pooling"
	CatSoftmax    Category = "softmax"
	CatConvert    Category = "convert" // SE + modswitch + degree switch
)

// Kind identifies the primitive step being priced.
type Kind string

// Step kinds.
const (
	KLinear Kind = "linear" // coefficient-encoded conv/FC
	KSE     Kind = "se"     // modswitch + degree switch + sample extract
	KPack   Kind = "pack"   // LWE -> RLWE slots (BSGS)
	KFBS    Kind = "fbs"    // functional bootstrapping
	KS2C    Kind = "s2c"    // slot-to-coefficient
	KLWEAdd Kind = "lweadd" // additions on LWE vectors
)

// OpCounts tallies primitive homomorphic operations.
type OpCounts struct {
	PMult, CMult, SMult, HAdd, HRot int64
	SE                              int64 // sample extractions
	KeySwitch                       int64 // ring keyswitch invocations
	LWEAdd                          int64 // n-vector additions
}

// Add accumulates o2 into o.
func (o *OpCounts) Add(o2 OpCounts) {
	o.PMult += o2.PMult
	o.CMult += o2.CMult
	o.SMult += o2.SMult
	o.HAdd += o2.HAdd
	o.HRot += o2.HRot
	o.SE += o2.SE
	o.KeySwitch += o2.KeySwitch
	o.LWEAdd += o2.LWEAdd
}

// Step is one priced unit of work.
type Step struct {
	Layer   string
	Kind    Kind
	Cat     Category
	Counts  OpCounts
	LUTSize int // FBS steps: the layer's table size (≤ 2^17)
}

// Trace is the lowered program.
type Trace struct {
	Model  string
	Params core.Params
	Steps  []Step
}

// Totals sums all step counts.
func (t *Trace) Totals() OpCounts {
	var o OpCounts
	for _, s := range t.Steps {
		o.Add(s.Counts)
	}
	return o
}

// TotalsByCategory groups counts per Fig. 9 bucket.
func (t *Trace) TotalsByCategory() map[Category]OpCounts {
	out := map[Category]OpCounts{}
	for _, s := range t.Steps {
		o := out[s.Cat]
		o.Add(s.Counts)
		out[s.Cat] = o
	}
	return out
}

type lowering struct {
	p     core.Params
	n     int
	steps []Step

	// uniformLUT forces every FBS to the full t-sized table (ablation:
	// no per-layer LUT shrinking).
	uniformLUT bool
	// batch scales per-image work (≥1).
	batch int64
}

// Options tweaks the lowering for ablation and throughput studies.
type Options struct {
	// UniformLUT disables per-layer LUT sizing: every FBS uses the full
	// t-sized table, as a framework without the paper's "matching small
	// LUT for layers" flexibility would.
	UniformLUT bool
	// BatchSize lowers the network for B-image batched inference: linear
	// layers, conversions, and value counts scale by B while the shared
	// FBS packs fill across the batch (Engine.InferBatch's schedule).
	// 0/1 = single image.
	BatchSize int
}

// linear emits Step ① for one conv/FC (per image in a batch).
func (lo *lowering) linear(q *qnn.QConv, plan *coeffenc.Plan) {
	pm, ha := plan.Counts()
	lo.steps = append(lo.steps, Step{
		Layer: q.OpName(), Kind: KLinear, Cat: CatLinear,
		Counts: OpCounts{
			PMult: int64(pm) * lo.batch,
			HAdd:  int64(ha+plan.OutBatches) * lo.batch,
		},
	})
}

// convert emits Steps ②-③: per result ciphertext one modulus switch and
// one ring-degree switch (keyswitch), then the valid extractions.
func (lo *lowering) convert(layer string, resultCTs int, values int64, cat Category) {
	lo.steps = append(lo.steps, Step{
		Layer: layer, Kind: KSE, Cat: cat,
		Counts: OpCounts{
			KeySwitch: int64(resultCTs) * lo.batch,
			SE:        values * lo.batch,
		},
	})
}

// activation emits Steps ④-⑤ for `values` activations with the given
// LUT size: packing groups of N, FBS per group, S2C per group.
func (lo *lowering) activation(layer string, values int64, lutSize int, cat Category) {
	if lo.uniformLUT {
		lutSize = LUTSize(int64(lo.p.T/2)-1, lo.p.T)
	}
	// Batched inference fills the FBS packs across images.
	values *= lo.batch
	groups := (values + int64(lo.n) - 1) / int64(lo.n)
	nLWE := int64(lo.p.LWEDim)
	bsP := int64(pow2Sqrt(lo.p.LWEDim))
	gsP := nLWE / bsP

	bs := int64(math.Ceil(math.Sqrt(float64(lutSize))))
	gs := (int64(lutSize) + bs - 1) / bs

	cbrtN := int64(math.Cbrt(float64(lo.n)) + 0.5)

	for g := int64(0); g < groups; g++ {
		lo.steps = append(lo.steps,
			Step{Layer: layer, Kind: KPack, Cat: cat, Counts: OpCounts{
				PMult: nLWE,
				HAdd:  nLWE,
				HRot:  gsP - 1,
			}},
			Step{Layer: layer, Kind: KFBS, Cat: cat, LUTSize: lutSize, Counts: OpCounts{
				CMult: (bs - 1) + (gs - 2) + (gs - 1),
				SMult: int64(lutSize),
				HAdd:  int64(lutSize),
			}},
			Step{Layer: layer, Kind: KS2C, Cat: cat, Counts: OpCounts{
				PMult: 3 * cbrtN,
				HRot:  3 * cbrtN,
			}},
		)
	}
}

// residual lowers a QResidual block.
func (lo *lowering) residual(r *qnn.QResidual) error {
	for _, op := range r.Body {
		c, ok := op.(*qnn.QConv)
		if !ok {
			return fmt.Errorf("compiler: residual body op %T", op)
		}
		plan, err := coeffenc.NewPlan(c.Shape, lo.n, coeffenc.AthenaOrder)
		if err != nil {
			return err
		}
		lo.linear(c, plan)
		lo.convert(c.OpName(), plan.OutBatches, int64(c.Shape.Outputs()), CatConvert)
		lo.activation(c.OpName(), int64(c.Shape.Outputs()), LUTSize(c.MaxAcc, lo.p.T), CatActivation)
	}
	var joinVals int64
	if len(r.Body) > 0 {
		if c, ok := r.Body[len(r.Body)-1].(*qnn.QConv); ok {
			joinVals = int64(c.Shape.Outputs())
		}
	}
	for _, op := range r.Shortcut {
		c, ok := op.(*qnn.QConv)
		if !ok {
			return fmt.Errorf("compiler: residual shortcut op %T", op)
		}
		plan, err := coeffenc.NewPlan(c.Shape, lo.n, coeffenc.AthenaOrder)
		if err != nil {
			return err
		}
		lo.linear(c, plan)
		lo.convert(c.OpName(), plan.OutBatches, int64(c.Shape.Outputs()), CatConvert)
		lo.activation(c.OpName(), int64(c.Shape.Outputs()), LUTSize(c.MaxAcc, lo.p.T), CatActivation)
	}
	// Join: LWE adds + post-add ReLU-clamp LUT over the int8 sums.
	lo.steps = append(lo.steps, Step{
		Layer: "residual-add", Kind: KLWEAdd, Cat: CatLinear,
		Counts: OpCounts{LWEAdd: joinVals * lo.batch},
	})
	lo.activation("residual-relu", joinVals, 1<<uint(r.ActBits+2), CatActivation)
	return nil
}

// softmax emits the three-step softmax of Section 3.2.3 on the final
// layer's outputs.
func (lo *lowering) softmax(last *qnn.QConv) {
	vals := int64(last.Shape.Outputs())
	lut := LUTSize(last.MaxAcc, lo.p.T)
	lo.activation("softmax-exp", vals, lut, CatSoftmax)
	lo.activation("softmax-inv", vals, lut, CatSoftmax)
	lo.steps = append(lo.steps, Step{
		Layer: "softmax-div", Kind: KFBS, Cat: CatSoftmax, LUTSize: 2,
		Counts: OpCounts{CMult: 1},
	})
}

// LUTSize returns the FBS table size a layer needs: the power of two
// covering twice its accumulator bound, capped at 2^17 (the paper's
// upper bound on the LUT mapping space) and never below 16. The modulus
// t bounds it in practice; Fig. 12's w8a8 point intentionally exceeds t
// to model the cost of the larger table the paper evaluates.
func LUTSize(maxAcc int64, t uint64) int {
	if maxAcc < 8 {
		maxAcc = 8
	}
	size := 16
	for int64(size) < 2*maxAcc && size < 1<<17 {
		size <<= 1
	}
	return size
}

func pow2Sqrt(n int) int {
	b := 1
	for b*b < n {
		b <<= 1
	}
	if b*b > n {
		b >>= 1
	}
	return b
}

// Compile lowers q at parameters p, tracking tensor geometry through
// the network so pooling layers can be lowered.
func Compile(q *qnn.QNetwork, p core.Params) (*Trace, error) {
	return CompileWithOptions(q, p, Options{})
}

// CompileWithOptions is Compile with ablation switches.
func CompileWithOptions(q *qnn.QNetwork, p core.Params, opts Options) (*Trace, error) {
	batch := int64(opts.BatchSize)
	if batch < 1 {
		batch = 1
	}
	lo := &lowering{p: p, n: 1 << p.LogN, uniformLUT: opts.UniformLUT, batch: batch}
	convs := q.Convs()
	if len(convs) == 0 {
		return nil, fmt.Errorf("compiler: network has no linear layers")
	}
	geomC, geomH, geomW := q.InC, q.InH, q.InW
	_ = geomC
	var actBits = q.ABits

	emitConv := func(c *qnn.QConv, last bool) error {
		plan, err := coeffenc.NewPlan(c.Shape, lo.n, coeffenc.AthenaOrder)
		if err != nil {
			return err
		}
		lo.linear(c, plan)
		geomC, geomH, geomW = c.Shape.Cout, c.Shape.OutH(), c.Shape.OutW()
		if !last {
			lo.convert(c.OpName(), plan.OutBatches, int64(c.Shape.Outputs()), CatConvert)
			lo.activation(c.OpName(), int64(c.Shape.Outputs()), LUTSize(c.MaxAcc, lo.p.T), CatActivation)
		}
		return nil
	}

	for bi, b := range q.Blocks {
		switch blk := b.(type) {
		case qnn.QSeq:
			for oi, op := range blk {
				last := bi == len(q.Blocks)-1 && oi == len(blk)-1
				switch o := op.(type) {
				case *qnn.QConv:
					if err := emitConv(o, last); err != nil {
						return nil, err
					}
				case *qnn.QAvgPool:
					vals := int64(geomC * (geomH / o.K) * (geomW / o.K))
					lo.steps = append(lo.steps, Step{
						Layer: o.OpName(), Kind: KLWEAdd, Cat: CatPooling,
						Counts: OpCounts{LWEAdd: vals * int64(o.K*o.K-1) * lo.batch},
					})
					lo.activation(o.OpName(), vals, LUTSize(int64(o.K*o.K)<<uint(actBits-1), lo.p.T), CatPooling)
					geomH /= o.K
					geomW /= o.K
				case *qnn.QMaxPool:
					// The max tree runs level by level: each level computes
					// ReLU(a−b) for every surviving pair (one batched FBS
					// round + conversion), then b + ReLU(a−b) as LWE adds.
					vals := int64(geomC * (geomH / o.K) * (geomW / o.K))
					remaining := int64(o.K * o.K)
					for remaining > 1 {
						pairs := vals * (remaining / 2)
						lo.steps = append(lo.steps, Step{
							Layer: o.OpName(), Kind: KLWEAdd, Cat: CatPooling,
							Counts: OpCounts{LWEAdd: 2 * pairs * lo.batch},
						})
						lo.activation(o.OpName(), pairs, 1<<uint(actBits+2), CatPooling)
						groups := (pairs + int64(lo.n) - 1) / int64(lo.n)
						lo.convert(o.OpName(), int(groups), pairs, CatPooling)
						remaining = (remaining + 1) / 2
					}
					geomH /= o.K
					geomW /= o.K
				default:
					return nil, fmt.Errorf("compiler: unsupported op %T", op)
				}
			}
		case *qnn.QResidual:
			if err := lo.residual(blk); err != nil {
				return nil, err
			}
			if len(blk.Body) > 0 {
				if c, ok := blk.Body[len(blk.Body)-1].(*qnn.QConv); ok {
					geomC, geomH, geomW = c.Shape.Cout, c.Shape.OutH(), c.Shape.OutW()
				}
			}
		default:
			return nil, fmt.Errorf("compiler: unsupported block %T", b)
		}
	}
	lo.softmax(convs[len(convs)-1])
	return &Trace{Model: q.Name, Params: p, Steps: lo.steps}, nil
}
