package bfv

import (
	"fmt"

	"athena/internal/ring"
)

// Encoder converts between integer data and BFV plaintexts in the two
// encodings Athena uses:
//
//   - Coefficient encoding: value i sits in plaintext coefficient i.
//     Polynomial multiplication then computes negacyclic convolutions,
//     which is how the linear layers run (Section 3.2.1).
//   - Slot (batch) encoding: values sit in the N CRT slots of
//     Z_t[X]/(X^N+1); ⊙ then acts pointwise. Requires t ≡ 1 (mod 2N).
//     The slot layout is two rows of N/2; X -> X^5 rotates the rows.
type Encoder struct {
	ctx *Context
	// slotTmp is the reusable RingT staging polynomial behind the *Into
	// encode paths; its laziness keeps coefficient-only encoders free.
	// Encoders holding scratch are single-goroutine state.
	slotTmp ring.Poly
}

// NewEncoder creates an encoder over ctx.
func NewEncoder(ctx *Context) *Encoder { return &Encoder{ctx: ctx} }

// reduceT maps a signed value into [0, t).
func (e *Encoder) reduceT(v int64) uint64 { return e.ctx.TMod.ReduceInt64(v) }

// EncodeCoeffs places vals (signed, interpreted mod t) into plaintext
// coefficients 0..len(vals)-1. len(vals) must not exceed N.
func (e *Encoder) EncodeCoeffs(vals []int64) *Plaintext {
	if len(vals) > e.ctx.N {
		panic(fmt.Sprintf("bfv: %d values exceed N=%d", len(vals), e.ctx.N))
	}
	pt := e.ctx.NewPlaintext()
	for i, v := range vals {
		pt.Coeffs[i] = e.reduceT(v)
	}
	return pt
}

// DecodeCoeffs returns the centered coefficients of pt.
func (e *Encoder) DecodeCoeffs(pt *Plaintext) []int64 {
	out := make([]int64, len(pt.Coeffs))
	for i, v := range pt.Coeffs {
		out[i] = e.ctx.TMod.Centered(v)
	}
	return out
}

// EncodeSlots places vals into the first len(vals) slots (row-major over
// the two rows of N/2). Requires batching support.
func (e *Encoder) EncodeSlots(vals []int64) *Plaintext {
	pt := e.ctx.NewPlaintext()
	e.EncodeSlotsInto(vals, pt)
	return pt
}

// EncodeSlotsInto is EncodeSlots writing into a caller-provided plaintext,
// reusing the encoder's staging buffer (zero allocations at steady state).
//
//lint:noalloc
func (e *Encoder) EncodeSlotsInto(vals []int64, pt *Plaintext) {
	ctx := e.ctx
	if !ctx.batching {
		panic("bfv: parameters do not support batching (t != 1 mod 2N)")
	}
	if len(vals) > ctx.N {
		panic(fmt.Sprintf("bfv: %d values exceed N=%d slots", len(vals), ctx.N))
	}
	if e.slotTmp.Level() == 0 {
		e.slotTmp = ctx.RingT.NewPoly() //lint:allow noalloc one-time lazy staging buffer, reused across calls
	}
	tmp := e.slotTmp
	row := tmp.Coeffs[0]
	for i := range row {
		row[i] = 0
	}
	for i, v := range vals {
		row[ctx.slotIdx[i]] = e.reduceT(v)
	}
	ctx.RingT.INTT(tmp)
	copy(pt.Coeffs, row)
}

// DecodeSlots returns all N slot values of pt, centered.
func (e *Encoder) DecodeSlots(pt *Plaintext) []int64 {
	ctx := e.ctx
	if !ctx.batching {
		panic("bfv: parameters do not support batching")
	}
	tmp := ctx.RingT.NewPoly()
	copy(tmp.Coeffs[0], pt.Coeffs)
	ctx.RingT.NTT(tmp)
	out := make([]int64, ctx.N)
	for i := range out {
		out[i] = ctx.TMod.Centered(tmp.Coeffs[0][ctx.slotIdx[i]])
	}
	return out
}

// LiftToMul pre-lifts a plaintext into the ciphertext ring NTT domain
// using centered representatives, for use with MulPlain.
func (e *Encoder) LiftToMul(pt *Plaintext) *PlaintextMul {
	pm := &PlaintextMul{Value: e.ctx.RingQ.NewPoly()}
	e.LiftToMulInto(pt, pm)
	return pm
}

// LiftToMulInto is LiftToMul writing into a caller-provided PlaintextMul
// (pm.Value must be allocated over RingQ), for scratch reuse.
//
//lint:noalloc
func (e *Encoder) LiftToMulInto(pt *Plaintext, pm *PlaintextMul) {
	ctx := e.ctx
	p := pm.Value
	for i := range ctx.RingQ.Moduli {
		m := ctx.RingQ.Moduli[i]
		pi := p.Coeffs[i]
		for j, v := range pt.Coeffs {
			pi[j] = m.ReduceInt64(ctx.TMod.Centered(v))
		}
	}
	ctx.RingQ.NTT(p)
}

// PrecomputeShoup attaches the per-coefficient Shoup companion to pm,
// switching every later MulPlain against it from Barrett to the
// elementwise Shoup kernel. Worth it only for multipliers reused across
// many products (compiled linear-transform terms); one-shot plaintexts
// should skip it, since building the companion costs a division per
// coefficient.
func (e *Encoder) PrecomputeShoup(pm *PlaintextMul) {
	if pm.Shoup.Level() == 0 {
		pm.Shoup = e.ctx.RingQ.NewPoly()
	}
	e.ctx.RingQ.ShoupPolyInto(pm.Value, pm.Shoup)
}

// LiftToDelta lifts a plaintext to Δ·m in the ciphertext ring NTT domain
// (the additive embedding used at encryption and for plain addition).
func (e *Encoder) LiftToDelta(pt *Plaintext) ring.Poly {
	p := e.ctx.RingQ.NewPoly()
	e.LiftToDeltaInto(pt, p)
	return p
}

// LiftToDeltaInto is LiftToDelta writing into a caller-provided polynomial,
// so steady-state callers can reuse a scratch buffer.
//
//lint:noalloc
func (e *Encoder) LiftToDeltaInto(pt *Plaintext, p ring.Poly) {
	ctx := e.ctx
	for i := range ctx.RingQ.Moduli {
		m := ctx.RingQ.Moduli[i]
		d := ctx.DeltaQi[i]
		ds := m.ShoupPrecomp(d)
		pi := p.Coeffs[i]
		for j, v := range pt.Coeffs {
			pi[j] = m.MulShoup(m.Reduce(v), d, ds)
		}
	}
	ctx.RingQ.NTT(p)
}
