package bfv

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
)

// Property-based tests on the scheme's homomorphic laws: for random
// message vectors the encrypted arithmetic must commute with plaintext
// arithmetic.

var (
	propOnce sync.Once
	propKit  *testKit
)

func propTestKit(t *testing.T) *testKit {
	t.Helper()
	propOnce.Do(func() { propKit = newTestKit(t, 5, 3, []int{1}) })
	return propKit
}

func smallVec(n int, seed uint64) []int64 {
	rng := rand.New(rand.NewPCG(seed, 0xbeef))
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(rng.Uint64N(201)) - 100
	}
	return v
}

func TestQuickAdditiveHomomorphism(t *testing.T) {
	k := propTestKit(t)
	f := func(sa, sb uint64) bool {
		a := smallVec(k.ctx.N, sa)
		b := smallVec(k.ctx.N, sb)
		cta := k.enc.Encrypt(k.cod.EncodeCoeffs(a))
		ctb := k.enc.Encrypt(k.cod.EncodeCoeffs(b))
		got := k.cod.DecodeCoeffs(k.dec.Decrypt(k.ev.Add(cta, ctb)))
		for i := range a {
			if got[i] != a[i]+b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickMultiplicativeHomomorphism(t *testing.T) {
	k := propTestKit(t)
	f := func(sa, sb uint64) bool {
		a := smallVec(k.ctx.N, sa)
		b := smallVec(k.ctx.N, sb)
		cta := k.enc.Encrypt(k.cod.EncodeSlots(a))
		ctb := k.enc.Encrypt(k.cod.EncodeSlots(b))
		prod, err := k.ev.Mul(cta, ctb)
		if err != nil {
			return false
		}
		got := k.cod.DecodeSlots(k.dec.Decrypt(prod))
		tm := k.ctx.TMod
		for i := range a {
			want := tm.Centered(tm.Mul(tm.ReduceInt64(a[i]), tm.ReduceInt64(b[i])))
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestQuickEncryptDecryptIdentity(t *testing.T) {
	k := propTestKit(t)
	f := func(seed uint64) bool {
		v := smallVec(k.ctx.N, seed)
		got := k.cod.DecodeCoeffs(k.dec.Decrypt(k.enc.Encrypt(k.cod.EncodeCoeffs(v))))
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickSlotCoeffEncodersInverse(t *testing.T) {
	k := propTestKit(t)
	f := func(seed uint64) bool {
		v := smallVec(k.ctx.N, seed)
		pt := k.cod.EncodeSlots(v)
		got := k.cod.DecodeSlots(pt)
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		pt2 := k.cod.EncodeCoeffs(v)
		got2 := k.cod.DecodeCoeffs(pt2)
		for i := range v {
			if got2[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickRotationComposition(t *testing.T) {
	// rot(rot(x, 1), 1) == rot(x, 2) on encrypted data.
	ctx := testContext(t, 5, 3)
	kg := NewKeyGenerator(ctx, 31)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	keys := kg.GenKeySet(sk, RotationGaloisElements(ctx, []int{1, 2}))
	enc := NewEncryptor(ctx, pk, 32)
	dec := NewDecryptor(ctx, sk)
	ev := NewEvaluator(ctx, keys)
	cod := NewEncoder(ctx)

	f := func(seed uint64) bool {
		v := smallVec(ctx.N, seed)
		ct := enc.Encrypt(cod.EncodeSlots(v))
		r1, err := ev.RotateRows(ct, 1)
		if err != nil {
			return false
		}
		r11, err := ev.RotateRows(r1, 1)
		if err != nil {
			return false
		}
		r2, err := ev.RotateRows(ct, 2)
		if err != nil {
			return false
		}
		a := cod.DecodeSlots(dec.Decrypt(r11))
		b := cod.DecodeSlots(dec.Decrypt(r2))
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
