package bfv

import (
	"bytes"
	"testing"

	"athena/internal/ring"
)

func TestCiphertextRoundTrip(t *testing.T) {
	k := newTestKit(t, 6, 3, nil)
	vals := randVals(k.ctx.N, 1000, 51)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(vals))

	var buf bytes.Buffer
	if err := k.ctx.WriteCiphertext(ct, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := k.ctx.ReadCiphertext(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ct.C0.Equal(back.C0) || !ct.C1.Equal(back.C1) {
		t.Fatal("ciphertext round trip changed polynomials")
	}
	got := k.cod.DecodeCoeffs(k.dec.Decrypt(back))
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("decrypt after round trip: coeff %d", i)
		}
	}
}

func TestSecretKeyRoundTrip(t *testing.T) {
	k := newTestKit(t, 5, 3, nil)
	var buf bytes.Buffer
	if err := k.ctx.WriteSecretKey(k.sk, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := k.ctx.ReadSecretKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !k.sk.Value.Equal(back.Value) {
		t.Fatal("secret polynomial changed")
	}
	for i := range k.sk.Signed {
		if k.sk.Signed[i] != back.Signed[i] {
			t.Fatalf("signed coefficient %d changed", i)
		}
	}
	// The deserialized key must actually decrypt.
	dec := NewDecryptor(k.ctx, back)
	vals := randVals(k.ctx.N, 500, 52)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(vals))
	got := k.cod.DecodeCoeffs(dec.Decrypt(ct))
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatal("deserialized secret key cannot decrypt")
		}
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	k := newTestKit(t, 5, 3, nil)
	var buf bytes.Buffer
	if err := k.ctx.WritePublicKey(k.pk, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := k.ctx.ReadPublicKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Encrypting with the deserialized key must decrypt correctly.
	enc := NewEncryptor(k.ctx, back, 99)
	vals := randVals(k.ctx.N, 500, 53)
	got := k.cod.DecodeCoeffs(k.dec.Decrypt(enc.Encrypt(k.cod.EncodeCoeffs(vals))))
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatal("deserialized public key broken")
		}
	}
}

func TestKeySetRoundTrip(t *testing.T) {
	k := newTestKit(t, 5, 3, []int{1, 2})
	kg := NewKeyGenerator(k.ctx, 7)
	els := RotationGaloisElements(k.ctx, []int{1, 2})
	ks := kg.GenKeySet(k.sk, els)

	var buf bytes.Buffer
	if err := k.ctx.WriteKeySet(ks, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := k.ctx.ReadKeySet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Relin == nil || len(back.Galois) != len(ks.Galois) {
		t.Fatal("key set shape changed")
	}
	// The deserialized keys must drive a working evaluator.
	ev := NewEvaluator(k.ctx, back)
	a := randVals(k.ctx.N, 50, 54)
	b := randVals(k.ctx.N, 50, 55)
	cta := k.enc.Encrypt(k.cod.EncodeCoeffs(a))
	ctb := k.enc.Encrypt(k.cod.EncodeCoeffs(b))
	prod, err := ev.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	got := k.cod.DecodeCoeffs(k.dec.Decrypt(prod))
	want := negacyclicConvolve(a, b, k.ctx.TMod)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("Mul with deserialized relin key broken")
		}
	}
	cts := k.enc.Encrypt(k.cod.EncodeSlots(a))
	if _, err := ev.RotateRows(cts, 1); err != nil {
		t.Fatal(err)
	}
}

func TestWireRejectsMismatchedContext(t *testing.T) {
	k := newTestKit(t, 5, 3, nil)
	ct := k.enc.EncryptZero()
	var buf bytes.Buffer
	if err := k.ctx.WriteCiphertext(ct, &buf); err != nil {
		t.Fatal(err)
	}
	// A context with a different degree must refuse the blob.
	primes, _ := ring.GenerateNTTPrimes(50, 6, 3)
	other, err := NewContext(Parameters{LogN: 6, Qi: primes, T: 65537})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.ReadCiphertext(&buf); err == nil {
		t.Fatal("mismatched context accepted ciphertext")
	}
	// Wrong magic.
	buf.Reset()
	if err := k.ctx.WriteSecretKey(k.sk, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ctx.ReadCiphertext(&buf); err == nil {
		t.Fatal("secret-key blob accepted as ciphertext")
	}
	// Truncated stream.
	buf.Reset()
	if err := k.ctx.WriteCiphertext(ct, &buf); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()/2])
	if _, err := k.ctx.ReadCiphertext(trunc); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
}
