package bfv

import (
	"fmt"

	"athena/internal/ring"
)

// SecretKey is a ternary RLWE secret. Value is kept in the NTT domain;
// Signed retains the raw {-1,0,1} coefficients for noise analysis and for
// building LWE keys after sample extraction.
type SecretKey struct {
	Value  ring.Poly // NTT domain, ring Q
	Signed []int64
}

// PublicKey is an encryption of zero: P0 + P1·s = -e. Both polys are in
// the NTT domain.
type PublicKey struct {
	P0, P1 ring.Poly
}

// SwitchingKey holds one RNS-decomposed keyswitching key: component i is
// an encryption of QiHat_i · target under the output secret, both polys
// in the NTT domain. BShoup/AShoup carry the per-coefficient Shoup
// companions of the (immutable) key polynomials, putting the keyswitch
// inner products on the fast elementwise multiply path; they are derived
// from B/A (PrecomputeShoup) and never serialized.
type SwitchingKey struct {
	B []ring.Poly // B[i] = -(A[i]·s + e_i) + QiHat_i·target
	A []ring.Poly

	BShoup []ring.Poly
	AShoup []ring.Poly
}

// PrecomputeShoup (re)derives the companion polynomials of the key
// material. Key generation and deserialization call it; keys assembled
// by hand may skip it, in which case the evaluator falls back to the
// Barrett path.
func (swk *SwitchingKey) PrecomputeShoup(rq *ring.Ring) {
	swk.BShoup = make([]ring.Poly, len(swk.B))
	swk.AShoup = make([]ring.Poly, len(swk.A))
	for i := range swk.B {
		swk.BShoup[i] = rq.ShoupPoly(swk.B[i])
		swk.AShoup[i] = rq.ShoupPoly(swk.A[i])
	}
}

// RelinearizationKey switches s² -> s.
type RelinearizationKey struct{ SwitchingKey }

// GaloisKey switches σ_g(s) -> s for one Galois element g.
type GaloisKey struct {
	GaloisEl uint64
	SwitchingKey
}

// KeySet bundles everything an evaluator may need.
type KeySet struct {
	Relin  *RelinearizationKey
	Galois map[uint64]*GaloisKey
}

// KeyGenerator derives keys deterministically from a seed.
type KeyGenerator struct {
	ctx *Context
	smp *ring.Sampler
}

// NewKeyGenerator creates a generator over ctx seeded by seed.
func NewKeyGenerator(ctx *Context, seed uint64) *KeyGenerator {
	return &KeyGenerator{ctx: ctx, smp: ring.NewSampler(ctx.RingQ, seed)}
}

// GenSecretKey samples a fresh ternary secret.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	rq := kg.ctx.RingQ
	sk := &SecretKey{Value: rq.NewPoly()}
	sk.Signed = kg.smp.TernaryDense(sk.Value)
	rq.NTT(sk.Value)
	return sk
}

// GenPublicKey derives a public key for sk.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	rq := kg.ctx.RingQ
	pk := &PublicKey{P0: rq.NewPoly(), P1: rq.NewPoly()}
	kg.smp.Uniform(pk.P1) // treat as NTT-domain uniform a
	e := rq.NewPoly()
	kg.smp.Gaussian(kg.ctx.Params.Sigma, e)
	rq.NTT(e)
	// P0 = -(a·s) - e
	rq.MulCoeffs(pk.P1, sk.Value, pk.P0)
	rq.Add(pk.P0, e, pk.P0)
	rq.Neg(pk.P0, pk.P0)
	return pk
}

// genSwitchingKey builds a keyswitching key from `target` (NTT domain)
// to sk.
func (kg *KeyGenerator) genSwitchingKey(sk *SecretKey, target ring.Poly) SwitchingKey {
	ctx := kg.ctx
	rq := ctx.RingQ
	k := len(ctx.Params.Qi)
	swk := SwitchingKey{B: make([]ring.Poly, k), A: make([]ring.Poly, k)}
	for i := 0; i < k; i++ {
		a := rq.NewPoly()
		kg.smp.Uniform(a)
		e := rq.NewPoly()
		kg.smp.Gaussian(ctx.Params.Sigma, e)
		rq.NTT(e)

		b := rq.NewPoly()
		rq.MulCoeffs(a, sk.Value, b)
		rq.Add(b, e, b)
		rq.Neg(b, b) // b = -(a·s + e)

		// b += QiHat_i · target. QiHat_i mod q_l per limb.
		hat := ctx.BasisQ.ScalarMod(ctx.BasisQ.QiHat[i])
		scaled := rq.NewPoly()
		rq.MulScalarRNS(target, hat, scaled)
		rq.Add(b, scaled, b)

		swk.A[i] = a
		swk.B[i] = b
	}
	swk.PrecomputeShoup(rq)
	return swk
}

// GenRelinearizationKey builds the s² -> s key.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	rq := kg.ctx.RingQ
	s2 := rq.NewPoly()
	rq.MulCoeffs(sk.Value, sk.Value, s2)
	return &RelinearizationKey{kg.genSwitchingKey(sk, s2)}
}

// GenGaloisKey builds the σ_g(s) -> s key for Galois element g.
func (kg *KeyGenerator) GenGaloisKey(sk *SecretKey, g uint64) *GaloisKey {
	rq := kg.ctx.RingQ
	sCoeff := sk.Value.Clone()
	rq.INTT(sCoeff)
	sPerm := rq.NewPoly()
	rq.Automorphism(sCoeff, g, sPerm)
	rq.NTT(sPerm)
	return &GaloisKey{GaloisEl: g, SwitchingKey: kg.genSwitchingKey(sk, sPerm)}
}

// GenKeySet builds a relinearization key plus Galois keys for the listed
// elements.
func (kg *KeyGenerator) GenKeySet(sk *SecretKey, galoisEls []uint64) *KeySet {
	ks := &KeySet{
		Relin:  kg.GenRelinearizationKey(sk),
		Galois: make(map[uint64]*GaloisKey, len(galoisEls)),
	}
	for _, g := range galoisEls {
		if _, ok := ks.Galois[g]; !ok {
			ks.Galois[g] = kg.GenGaloisKey(sk, g)
		}
	}
	return ks
}

// GaloisKeyFor fetches the key for element g, or an error naming it.
func (ks *KeySet) GaloisKeyFor(g uint64) (*GaloisKey, error) {
	if k, ok := ks.Galois[g]; ok {
		return k, nil
	}
	return nil, fmt.Errorf("bfv: missing galois key for element %d", g)
}
