package bfv

import "athena/internal/ring"

// Ciphertext is a BFV ciphertext of degree 1: (C0, C1) with
// C0 + C1·s = Δ·m + e (mod Q). Both polynomials are kept in the NTT
// domain at all times; operations that need the coefficient domain
// (keyswitch decomposition, automorphisms, modulus switching) convert
// internally.
type Ciphertext struct {
	C0, C1 ring.Poly
}

// NewCiphertext allocates a zero ciphertext.
func (c *Context) NewCiphertext() *Ciphertext {
	return &Ciphertext{C0: c.RingQ.NewPoly(), C1: c.RingQ.NewPoly()}
}

// Clone deep-copies the ciphertext.
func (ct *Ciphertext) Clone() *Ciphertext {
	return &Ciphertext{C0: ct.C0.Clone(), C1: ct.C1.Clone()}
}

// CopyTo copies ct into dst.
//
//lint:noalloc
func (ct *Ciphertext) CopyTo(dst *Ciphertext) {
	ct.C0.CopyTo(dst.C0)
	ct.C1.CopyTo(dst.C1)
}

// Plaintext is a polynomial over Z_t. Coeffs holds values in [0, t).
type Plaintext struct {
	Coeffs []uint64
}

// NewPlaintext allocates a zero plaintext.
func (c *Context) NewPlaintext() *Plaintext {
	return &Plaintext{Coeffs: make([]uint64, c.N)}
}

// PlaintextMul is a plaintext pre-lifted into the ciphertext ring's NTT
// domain (with centered-mod-t representatives), ready for fast repeated
// PMult. Shoup optionally holds the per-coefficient companion of Value
// (Encoder.PrecomputeShoup): compiled multipliers that are reused across
// many products attach it so MulPlain runs the elementwise Shoup kernel
// instead of Barrett.
type PlaintextMul struct {
	Value ring.Poly // NTT domain, ring Q
	Shoup ring.Poly // companion of Value; zero when not precomputed
}

// CiphertextShoup carries the per-coefficient Shoup companions of a
// fixed ciphertext (packing keys, other immutable operands), putting
// plaintext products against it on the fast elementwise multiply path
// even when the plaintext multiplier changes every call.
type CiphertextShoup struct {
	C0S, C1S ring.Poly
}

// NewCiphertextShoup precomputes the companions of ct.
func (c *Context) NewCiphertextShoup(ct *Ciphertext) *CiphertextShoup {
	return &CiphertextShoup{
		C0S: c.RingQ.ShoupPoly(ct.C0),
		C1S: c.RingQ.ShoupPoly(ct.C1),
	}
}
