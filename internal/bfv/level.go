package bfv

import (
	"fmt"
	"math/big"

	"athena/internal/ring"
)

// Per-level RNS modulus dropping. A Context fixes a prime chain Q =
// q_0·…·q_{k-1}; AtLevel(L) derives the context over the prefix chain
// Q_L = q_0·…·q_{L-1}. Because every ring kernel iterates the limbs of
// its (first) polynomial operand, full-chain key material — secret keys,
// switching keys, packing keys — works unchanged against reduced-level
// ciphertexts: the extra limbs simply go untouched. Only the keyswitch
// digit constants need correction (the key components encrypt the
// full-chain q̂_i), which AtLevel installs in the child.
//
// Dropping limbs after the noise-heavy stages is the classic RNS
// acceleration: every NTT, multiply, and — dominating here — every
// big-integer CRT lift in plaintext multiplication scales linearly in
// the limb count, so running the post-FBS accumulation at a short chain
// cuts the per-layer cost by the dropped fraction.

// Level returns the number of RNS limbs in this context's modulus chain.
func (c *Context) Level() int { return len(c.Params.Qi) }

// Level returns the ciphertext's limb count — the length of the prefix
// modulus chain it currently lives under.
func (ct *Ciphertext) Level() int { return ct.C0.Level() }

// AtLevel returns the context over the length-L prefix of c's modulus
// chain. L equal to c's own level returns c itself; smaller levels build
// (and cache) a derived context whose keyswitch digit constants are
// corrected for full-chain key material. Children are full Contexts:
// they carry their own ring, basis, Δ, tensor machinery, and batching
// tables, so every bfv operation runs on them unmodified.
func (c *Context) AtLevel(L int) (*Context, error) {
	full := c.Level()
	if L == full {
		return c, nil
	}
	if L < 1 || L > full {
		return nil, fmt.Errorf("bfv: level %d outside [1, %d]", L, full)
	}
	c.levelMu.Lock()
	defer c.levelMu.Unlock()
	if c.levelCache == nil {
		c.levelCache = make([]*Context, full)
	}
	if ch := c.levelCache[L]; ch != nil {
		return ch, nil
	}
	child, err := NewContext(Parameters{
		LogN:  c.Params.LogN,
		Qi:    append([]uint64(nil), c.Params.Qi[:L]...),
		T:     c.Params.T,
		Sigma: c.Params.Sigma,
	})
	if err != nil {
		return nil, fmt.Errorf("bfv: level %d context: %w", L, err)
	}
	// Keyswitch digit correction. Switching-key component i encrypts
	// q̂_i·s' where q̂_i = Q/q_i over the FULL chain. Reduced to mod Q_L
	// (prefix slicing), q̂_i = (Q_L/q_i)·(Q/Q_L), so the digit must carry
	//   d_i = [p_i · (Q_L/q_i)^{-1} · (Q/Q_L)^{-1}]_{q_i}
	// for Σ_i d_i·q̂_i ≡ p (mod Q_L). The first inverse is the child
	// basis's own QiHatInv; the second folds in the dropped primes, which
	// are coprime to every kept q_i, so the inverse exists.
	ratio := new(big.Int).Div(c.QBig, child.QBig)
	var qi, res big.Int
	for i := range child.ksDigitInv {
		m := child.BasisQ.Moduli[i]
		r := res.Mod(ratio, qi.SetUint64(m.Q)).Uint64()
		inv := m.Mul(child.BasisQ.QiHatInv[i], m.Inv(r))
		child.ksDigitInv[i] = inv
		child.ksDigitInvShoup[i] = m.ShoupPrecomp(inv)
	}
	c.levelCache[L] = child
	return child, nil
}

// atLevelOf resolves the context matching ct's level, panicking on a
// malformed ciphertext (a limb count outside [1, full] can only come
// from memory corruption, not from any bfv operation).
func (c *Context) atLevelOf(ct *Ciphertext) *Context {
	cc, err := c.AtLevel(ct.Level())
	if err != nil {
		panic("bfv: ciphertext level does not fit context: " + err.Error())
	}
	return cc
}

// ModDown rescales ct to the length-L prefix chain: the BFV-invariant
// rescale out ≈ round(Q_L/Q_src · ct) per component, which preserves the
// Δ·m message scale (Δ shrinks proportionally with Q) while dividing the
// accumulated noise by the dropped factor and shedding limbs from every
// subsequent operation. Returns ct unchanged when it already sits at L;
// raising a level is not supported.
func (c *Context) ModDown(ct *Ciphertext, L int) (*Ciphertext, error) {
	cur := ct.Level()
	if L == cur {
		return ct, nil
	}
	if L > cur {
		return nil, fmt.Errorf("bfv: cannot raise level %d to %d", cur, L)
	}
	src, err := c.AtLevel(cur)
	if err != nil {
		return nil, err
	}
	dst, err := c.AtLevel(L)
	if err != nil {
		return nil, err
	}
	out := dst.NewCiphertext()
	for _, io := range [2]struct{ in, out ring.Poly }{{ct.C0, out.C0}, {ct.C1, out.C1}} {
		tmp := io.in.Clone()
		src.RingQ.INTT(tmp)
		src.BasisQ.ScaleAndRound(tmp, dst.QBig, src.QBig, dst.BasisQ, io.out)
		dst.RingQ.NTT(io.out)
	}
	return out, nil
}
