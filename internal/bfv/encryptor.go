package bfv

import (
	"math/big"

	"athena/internal/ring"
)

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	ctx *Context
	pk  *PublicKey
	enc *Encoder
	smp *ring.Sampler
}

// NewEncryptor creates an encryptor with its own sampler seed.
func NewEncryptor(ctx *Context, pk *PublicKey, seed uint64) *Encryptor {
	return &Encryptor{ctx: ctx, pk: pk, enc: NewEncoder(ctx), smp: ring.NewSampler(ctx.RingQ, seed)}
}

// Encrypt produces a fresh encryption of pt:
// (C0, C1) = (P0·u + e0 + Δ·m, P1·u + e1).
func (e *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	ctx := e.ctx
	rq := ctx.RingQ
	ct := ctx.NewCiphertext()

	u := rq.NewPoly()
	e.smp.TernaryDense(u)
	rq.NTT(u)

	e0 := rq.NewPoly()
	e.smp.Gaussian(ctx.Params.Sigma, e0)
	rq.NTT(e0)
	e1 := rq.NewPoly()
	e.smp.Gaussian(ctx.Params.Sigma, e1)
	rq.NTT(e1)

	rq.MulCoeffs(e.pk.P0, u, ct.C0)
	rq.Add(ct.C0, e0, ct.C0)
	dm := e.enc.LiftToDelta(pt)
	rq.Add(ct.C0, dm, ct.C0)

	rq.MulCoeffs(e.pk.P1, u, ct.C1)
	rq.Add(ct.C1, e1, ct.C1)
	return ct
}

// EncryptZero returns a fresh encryption of the zero plaintext.
func (e *Encryptor) EncryptZero() *Ciphertext {
	return e.Encrypt(e.ctx.NewPlaintext())
}

// Decryptor decrypts and inspects noise.
type Decryptor struct {
	ctx *Context
	sk  *SecretKey
}

// NewDecryptor creates a decryptor for sk.
func NewDecryptor(ctx *Context, sk *SecretKey) *Decryptor {
	return &Decryptor{ctx: ctx, sk: sk}
}

// phase computes C0 + C1·s in the coefficient domain, at the resolved
// level ctx. The secret key always lives over the full chain; the ring
// kernels iterate the ciphertext's limbs, so its prefix is what is read.
func (d *Decryptor) phase(ctx *Context, ct *Ciphertext) ring.Poly {
	rq := ctx.RingQ
	ph := rq.NewPoly()
	rq.MulCoeffs(ct.C1, d.sk.Value, ph)
	rq.Add(ph, ct.C0, ph)
	rq.INTT(ph)
	return ph
}

// Decrypt recovers the plaintext: m = round(t·phase/Q) mod t, where Q is
// the (possibly reduced) chain the ciphertext currently lives under.
func (d *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	ctx := d.ctx.atLevelOf(ct)
	pt := ctx.NewPlaintext()
	ph := d.phase(ctx, ct)
	ctx.BasisQ.ScaleAndRoundToUint(ph, ctx.TBig, ctx.QBig, ctx.Params.T, pt.Coeffs)
	return pt
}

// NoiseBudget returns the remaining noise budget of ct in bits:
// log2(Q/t) - log2(2·|e|∞) where e = phase - Δ·m is the exact noise,
// over the ciphertext's own modulus chain.
// A non-positive budget means decryption is no longer guaranteed.
func (d *Decryptor) NoiseBudget(ct *Ciphertext) float64 {
	ctx := d.ctx.atLevelOf(ct)
	ph := d.phase(ctx, ct)
	pt := ctx.NewPlaintext()
	ctx.BasisQ.ScaleAndRoundToUint(ph, ctx.TBig, ctx.QBig, ctx.Params.T, pt.Coeffs)

	// e = phase - Δ·m (mod Q), centered.
	scratch := make([]uint64, ctx.BasisQ.Len())
	var v, dm big.Int
	maxAbs := new(big.Int)
	for j := 0; j < ctx.N; j++ {
		for i := range ph.Coeffs {
			scratch[i] = ph.Coeffs[i][j]
		}
		ctx.BasisQ.Reconstruct(scratch, &v)
		dm.SetUint64(pt.Coeffs[j])
		dm.Mul(&dm, ctx.Delta)
		v.Sub(&v, &dm)
		v.Mod(&v, ctx.QBig)
		if v.Cmp(ctx.BasisQ.QHalf) > 0 {
			v.Sub(&v, ctx.QBig)
		}
		v.Abs(&v)
		if v.Cmp(maxAbs) > 0 {
			maxAbs.Set(&v)
		}
	}
	if maxAbs.Sign() == 0 {
		return float64(ctx.QBig.BitLen() - ctx.TBig.BitLen())
	}
	budget := ctx.QBig.BitLen() - ctx.TBig.BitLen() - maxAbs.BitLen() - 1
	if budget < 0 {
		return float64(budget)
	}
	return float64(budget)
}
