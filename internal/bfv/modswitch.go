package bfv

import (
	"fmt"
	"math/big"
)

// SwitchModulus rescales ct from modulus Q to the word-sized modulus q2,
// returning the coefficient-domain pair (a, b) with b + a·s ≈ m·(q2/t)
// (mod q2). This is Step ② of the Athena loop: the large linear-layer
// noise e is annihilated by the scaling, at the price of a small rounding
// noise e_ms on the q2 scale.
//
// Choosing q2 = t·2^k leaves the message at scale 2^k; a subsequent LWE
// modulus switch to t (after sample extraction and dimension switching)
// recovers the scale-free embedding phase = m + e_ms used by functional
// bootstrapping.
func (c *Context) SwitchModulus(ct *Ciphertext, q2 uint64) (a, b []uint64, err error) {
	// Dispatch on the ciphertext's level: a reduced ct rescales from its
	// own (shorter) chain, which is both correct and cheaper.
	c = c.atLevelOf(ct)
	if new(big.Int).SetUint64(q2).Cmp(c.QBig) >= 0 {
		return nil, nil, fmt.Errorf("bfv: modulus switch target %d not below Q", q2)
	}
	c0 := ct.C0.Clone()
	c1 := ct.C1.Clone()
	c.RingQ.INTT(c0)
	c.RingQ.INTT(c1)
	a = make([]uint64, c.N)
	b = make([]uint64, c.N)
	q2Big := new(big.Int).SetUint64(q2)
	c.BasisQ.ScaleAndRoundToUint(c1, q2Big, c.QBig, q2, a)
	c.BasisQ.ScaleAndRoundToUint(c0, q2Big, c.QBig, q2, b)
	return a, b, nil
}
