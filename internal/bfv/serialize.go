package bfv

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"athena/internal/ring"
)

// Wire format: everything little-endian. Each object starts with a
// 4-byte magic, a format version, and the parameter fingerprint
// (logN, limb count, t) so mismatched contexts fail loudly instead of
// decrypting garbage.

const (
	magicCiphertext = 0x41435431 // "ACT1"
	magicSecretKey  = 0x41534b31 // "ASK1"
	magicPublicKey  = 0x41504b31 // "APK1"
	magicKeySet     = 0x414b5331 // "AKS1"
	wireVersion     = 1
)

type wireWriter struct {
	w   *bufio.Writer
	err error
}

func (w *wireWriter) u64(v uint64) {
	if w.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, w.err = w.w.Write(b[:])
}

func (w *wireWriter) u64s(vs []uint64) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.u64(v)
	}
}

func (w *wireWriter) poly(p ring.Poly) {
	w.u64(uint64(len(p.Coeffs)))
	for _, limb := range p.Coeffs {
		w.u64s(limb)
	}
}

type wireReader struct {
	r   *bufio.Reader
	err error
}

func (r *wireReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	var b [8]byte
	_, r.err = io.ReadFull(r.r, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (r *wireReader) u64s(max int) []uint64 {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > uint64(max) {
		r.err = fmt.Errorf("bfv: wire length %d exceeds limit %d", n, max)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.u64()
	}
	return out
}

// poly reads a full-level polynomial: key material always travels over
// the complete modulus chain.
func (r *wireReader) poly(rq *ring.Ring) ring.Poly {
	got := r.u64()
	if r.err != nil {
		return ring.Poly{}
	}
	if got != uint64(rq.Level()) {
		r.err = fmt.Errorf("bfv: wire poly has %d limbs, context expects %d", got, rq.Level())
		return ring.Poly{}
	}
	return r.polyBody(rq, int(got))
}

// ctPoly reads a ciphertext polynomial, which may travel at a reduced
// level: any prefix of the context's modulus chain is accepted, and each
// limb is validated against the matching modulus.
func (r *wireReader) ctPoly(rq *ring.Ring) ring.Poly {
	got := r.u64()
	if r.err != nil {
		return ring.Poly{}
	}
	if got < 1 || got > uint64(rq.Level()) {
		r.err = fmt.Errorf("bfv: wire ciphertext has %d limbs, context holds %d", got, rq.Level())
		return ring.Poly{}
	}
	return r.polyBody(rq, int(got))
}

func (r *wireReader) polyBody(rq *ring.Ring, limbs int) ring.Poly {
	p := ring.Poly{Coeffs: make([][]uint64, limbs)}
	backing := make([]uint64, limbs*rq.N)
	for i := range p.Coeffs {
		p.Coeffs[i] = backing[i*rq.N : (i+1)*rq.N]
	}
	for i := range p.Coeffs {
		limb := r.u64s(rq.N)
		if r.err != nil {
			return ring.Poly{}
		}
		if len(limb) != rq.N {
			r.err = fmt.Errorf("bfv: wire limb has %d coeffs, want %d", len(limb), rq.N)
			return ring.Poly{}
		}
		// Residues at or above q_i break the Barrett/Shoup preconditions
		// downstream and silently corrupt NTT limbs; reject them here,
		// at the trust boundary.
		q := rq.Moduli[i].Q
		for j, c := range limb {
			if c >= q {
				r.err = fmt.Errorf("bfv: wire coefficient %d of limb %d is %d, outside [0, %d)", j, i, c, q)
				return ring.Poly{}
			}
		}
		copy(p.Coeffs[i], limb)
	}
	return p
}

func (c *Context) writeHeader(w *wireWriter, magic uint64) {
	w.u64(magic)
	w.u64(wireVersion)
	w.u64(uint64(c.Params.LogN))
	w.u64(uint64(len(c.Params.Qi)))
	w.u64(c.Params.T)
}

func (c *Context) readHeader(r *wireReader, magic uint64) error {
	if got := r.u64(); r.err == nil && got != magic {
		return fmt.Errorf("bfv: bad magic %#x", got)
	}
	if v := r.u64(); r.err == nil && v != wireVersion {
		return fmt.Errorf("bfv: unsupported wire version %d", v)
	}
	logN := r.u64()
	limbs := r.u64()
	t := r.u64()
	if r.err != nil {
		return r.err
	}
	if int(logN) != c.Params.LogN || int(limbs) != len(c.Params.Qi) || t != c.Params.T {
		return fmt.Errorf("bfv: parameter mismatch (wire logN=%d limbs=%d t=%d)", logN, limbs, t)
	}
	return nil
}

// WriteCiphertext serializes ct.
func (c *Context) WriteCiphertext(ct *Ciphertext, w io.Writer) error {
	ww := &wireWriter{w: bufio.NewWriter(w)}
	c.writeHeader(ww, magicCiphertext)
	ww.poly(ct.C0)
	ww.poly(ct.C1)
	if ww.err != nil {
		return ww.err
	}
	return ww.w.Flush()
}

// ReadCiphertext deserializes a ciphertext produced under the same
// parameters.
func (c *Context) ReadCiphertext(r io.Reader) (*Ciphertext, error) {
	rr := &wireReader{r: bufio.NewReader(r)}
	if err := c.readHeader(rr, magicCiphertext); err != nil {
		return nil, err
	}
	ct := &Ciphertext{C0: rr.ctPoly(c.RingQ), C1: rr.ctPoly(c.RingQ)}
	if rr.err != nil {
		return nil, rr.err
	}
	if ct.C0.Level() != ct.C1.Level() {
		return nil, fmt.Errorf("bfv: ciphertext components at levels %d and %d", ct.C0.Level(), ct.C1.Level())
	}
	return ct, nil
}

// WriteSecretKey serializes sk (including the signed coefficient vector
// needed for the LWE bridge).
func (c *Context) WriteSecretKey(sk *SecretKey, w io.Writer) error {
	ww := &wireWriter{w: bufio.NewWriter(w)}
	c.writeHeader(ww, magicSecretKey)
	ww.poly(sk.Value)
	ww.u64(uint64(len(sk.Signed)))
	for _, s := range sk.Signed {
		ww.u64(uint64(s + 1)) // {-1,0,1} -> {0,1,2}
	}
	if ww.err != nil {
		return ww.err
	}
	return ww.w.Flush()
}

// ReadSecretKey deserializes a secret key.
func (c *Context) ReadSecretKey(r io.Reader) (*SecretKey, error) {
	rr := &wireReader{r: bufio.NewReader(r)}
	if err := c.readHeader(rr, magicSecretKey); err != nil {
		return nil, err
	}
	sk := &SecretKey{Value: rr.poly(c.RingQ)}
	n := rr.u64()
	if rr.err != nil {
		return nil, rr.err
	}
	if n != uint64(c.N) {
		return nil, fmt.Errorf("bfv: signed vector length %d, want %d", n, c.N)
	}
	sk.Signed = make([]int64, n)
	for i := range sk.Signed {
		v := rr.u64()
		if v > 2 {
			return nil, fmt.Errorf("bfv: non-ternary signed coefficient %d", v)
		}
		sk.Signed[i] = int64(v) - 1
	}
	if rr.err != nil {
		return nil, rr.err
	}
	return sk, nil
}

// WritePublicKey serializes pk.
func (c *Context) WritePublicKey(pk *PublicKey, w io.Writer) error {
	ww := &wireWriter{w: bufio.NewWriter(w)}
	c.writeHeader(ww, magicPublicKey)
	ww.poly(pk.P0)
	ww.poly(pk.P1)
	if ww.err != nil {
		return ww.err
	}
	return ww.w.Flush()
}

// ReadPublicKey deserializes a public key.
func (c *Context) ReadPublicKey(r io.Reader) (*PublicKey, error) {
	rr := &wireReader{r: bufio.NewReader(r)}
	if err := c.readHeader(rr, magicPublicKey); err != nil {
		return nil, err
	}
	pk := &PublicKey{P0: rr.poly(c.RingQ), P1: rr.poly(c.RingQ)}
	if rr.err != nil {
		return nil, rr.err
	}
	return pk, nil
}

// WriteKeySet serializes the evaluation keys (relinearization + galois).
func (c *Context) WriteKeySet(ks *KeySet, w io.Writer) error {
	ww := &wireWriter{w: bufio.NewWriter(w)}
	c.writeHeader(ww, magicKeySet)
	writeSwk := func(s *SwitchingKey) {
		ww.u64(uint64(len(s.B)))
		for i := range s.B {
			ww.poly(s.B[i])
			ww.poly(s.A[i])
		}
	}
	if ks.Relin != nil {
		ww.u64(1)
		writeSwk(&ks.Relin.SwitchingKey)
	} else {
		ww.u64(0)
	}
	// Sorted element order keeps the encoding deterministic, so equal
	// key sets serialize to equal bytes (content-addressed session IDs
	// in the serving layer depend on this).
	els := make([]uint64, 0, len(ks.Galois))
	for g := range ks.Galois {
		els = append(els, g)
	}
	sort.Slice(els, func(i, j int) bool { return els[i] < els[j] })
	ww.u64(uint64(len(ks.Galois)))
	for _, g := range els {
		ww.u64(g)
		writeSwk(&ks.Galois[g].SwitchingKey)
	}
	if ww.err != nil {
		return ww.err
	}
	return ww.w.Flush()
}

// ReadKeySet deserializes evaluation keys.
func (c *Context) ReadKeySet(r io.Reader) (*KeySet, error) {
	rr := &wireReader{r: bufio.NewReader(r)}
	if err := c.readHeader(rr, magicKeySet); err != nil {
		return nil, err
	}
	readSwk := func() (SwitchingKey, error) {
		n := rr.u64()
		if rr.err != nil {
			return SwitchingKey{}, rr.err
		}
		if n != uint64(len(c.Params.Qi)) {
			return SwitchingKey{}, fmt.Errorf("bfv: switching key with %d components, want %d", n, len(c.Params.Qi))
		}
		s := SwitchingKey{B: make([]ring.Poly, n), A: make([]ring.Poly, n)}
		for i := range s.B {
			s.B[i] = rr.poly(c.RingQ)
			s.A[i] = rr.poly(c.RingQ)
		}
		if rr.err == nil {
			// The companions are derived, not wire data: recompute them so
			// deserialized keys run the same fast path as generated ones.
			s.PrecomputeShoup(c.RingQ)
		}
		return s, rr.err
	}
	ks := &KeySet{Galois: map[uint64]*GaloisKey{}}
	hasRelin := rr.u64()
	if rr.err != nil {
		return nil, rr.err
	}
	if hasRelin == 1 {
		swk, err := readSwk()
		if err != nil {
			return nil, err
		}
		ks.Relin = &RelinearizationKey{swk}
	}
	ng := rr.u64()
	if rr.err != nil {
		return nil, rr.err
	}
	if ng > 1<<16 {
		return nil, fmt.Errorf("bfv: implausible galois key count %d", ng)
	}
	for i := uint64(0); i < ng; i++ {
		g := rr.u64()
		swk, err := readSwk()
		if err != nil {
			return nil, err
		}
		ks.Galois[g] = &GaloisKey{GaloisEl: g, SwitchingKey: swk}
	}
	return ks, nil
}
