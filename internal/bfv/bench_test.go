package bfv

import "testing"

func BenchmarkEncrypt(b *testing.B) {
	k := newTestKit(b, 11, 6, nil)
	pt := k.cod.EncodeCoeffs(randVals(k.ctx.N, 1000, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.enc.Encrypt(pt)
	}
}

func BenchmarkDecrypt(b *testing.B) {
	k := newTestKit(b, 11, 6, nil)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(randVals(k.ctx.N, 1000, 2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.dec.Decrypt(ct)
	}
}

func BenchmarkPMult(b *testing.B) {
	k := newTestKit(b, 11, 6, nil)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(randVals(k.ctx.N, 1000, 3)))
	pm := k.cod.LiftToMul(k.cod.EncodeCoeffs(randVals(k.ctx.N, 100, 4)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ev.MulPlain(ct, pm)
	}
}

func BenchmarkCMult(b *testing.B) {
	k := newTestKit(b, 11, 6, nil)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(randVals(k.ctx.N, 100, 5)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.ev.Mul(ct, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRotation(b *testing.B) {
	k := newTestKit(b, 11, 6, []int{1})
	ct := k.enc.Encrypt(k.cod.EncodeSlots(randVals(k.ctx.N, 100, 6)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.ev.RotateRows(ct, 1); err != nil {
			b.Fatal(err)
		}
	}
}
