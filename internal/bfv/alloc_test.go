package bfv

import "testing"

// Steady-state evaluator operations must be allocation-free: the engine
// issues them per diagonal, per FBS term, and per limb, so any per-call
// allocation multiplies into GC pressure at inference time. These tests
// enforce the scratch-arena contract with the allocation accountant.
func TestEvaluatorSteadyStateZeroAllocs(t *testing.T) {
	k := newTestKit(t, 7, 4, []int{1})
	vals := randVals(k.ctx.N, 10, 5)
	a := k.enc.Encrypt(k.cod.EncodeSlots(vals))
	b := k.enc.Encrypt(k.cod.EncodeSlots(vals))
	pm := k.cod.LiftToMul(k.cod.EncodeSlots(vals))
	acc := k.enc.Encrypt(k.cod.EncodeSlots(vals))

	if n := testing.AllocsPerRun(100, func() { k.ev.AddInPlace(a, b) }); n != 0 {
		t.Fatalf("AddInPlace allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { k.ev.MulPlainAndAdd(a, pm, acc) }); n != 0 {
		t.Fatalf("MulPlainAndAdd allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { k.ev.MulScalarAndAdd(a, 3, acc) }); n != 0 {
		t.Fatalf("MulScalarAndAdd allocates %v times per run, want 0", n)
	}
}
