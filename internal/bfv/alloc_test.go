package bfv

import "testing"

// Steady-state evaluator operations must be allocation-free: the engine
// issues them per diagonal, per FBS term, and per limb, so any per-call
// allocation multiplies into GC pressure at inference time. These tests
// enforce the scratch-arena contract with the allocation accountant.
func TestEvaluatorSteadyStateZeroAllocs(t *testing.T) {
	k := newTestKit(t, 7, 4, []int{1})
	vals := randVals(k.ctx.N, 10, 5)
	a := k.enc.Encrypt(k.cod.EncodeSlots(vals))
	b := k.enc.Encrypt(k.cod.EncodeSlots(vals))
	pm := k.cod.LiftToMul(k.cod.EncodeSlots(vals))
	acc := k.enc.Encrypt(k.cod.EncodeSlots(vals))

	if n := testing.AllocsPerRun(100, func() { k.ev.AddInPlace(a, b) }); n != 0 {
		t.Fatalf("AddInPlace allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { k.ev.MulPlainAndAdd(a, pm, acc) }); n != 0 {
		t.Fatalf("MulPlainAndAdd allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { k.ev.MulScalarAndAdd(a, 3, acc) }); n != 0 {
		t.Fatalf("MulScalarAndAdd allocates %v times per run, want 0", n)
	}

	out := k.ctx.NewCiphertext()
	pt := k.cod.EncodeSlots(vals)
	if n := testing.AllocsPerRun(100, func() { k.ev.MulPlainInto(a, pm, out) }); n != 0 {
		t.Fatalf("MulPlainInto allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { k.ev.AddPlainInPlace(acc, pt) }); n != 0 {
		t.Fatalf("AddPlainInPlace allocates %v times per run, want 0", n)
	}
	// Warm the automorphism scratch and permutation cache, then demand
	// the steady state stays clean for both cached Galois elements.
	if err := k.ev.RotateRowsInto(a, 1, out); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := k.ev.RotateRowsInto(a, 1, out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("RotateRowsInto allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := k.ev.AutomorphismInto(a, 1, out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AutomorphismInto(g=1) allocates %v times per run, want 0", n)
	}
}

// TestIntoOpsMatchAllocatingOps pins the zero-alloc variants to their
// allocating counterparts: same ciphertexts, bit for bit.
func TestIntoOpsMatchAllocatingOps(t *testing.T) {
	k := newTestKit(t, 7, 4, []int{1})
	vals := randVals(k.ctx.N, 10, 9)
	ct := k.enc.Encrypt(k.cod.EncodeSlots(vals))
	pm := k.cod.LiftToMul(k.cod.EncodeSlots(vals))
	pt := k.cod.EncodeSlots(vals)

	ctEq := func(name string, a, b *Ciphertext) {
		t.Helper()
		if !a.C0.Equal(b.C0) || !a.C1.Equal(b.C1) {
			t.Fatalf("%s: Into variant disagrees with allocating variant", name)
		}
	}

	out := k.ctx.NewCiphertext()
	k.ev.MulPlainInto(ct, pm, out)
	ctEq("MulPlain", out, k.ev.MulPlain(ct, pm))

	inPlace := ct.Clone()
	k.ev.AddPlainInPlace(inPlace, pt)
	ctEq("AddPlain", inPlace, k.ev.AddPlain(ct, pt))

	if err := k.ev.RotateRowsInto(ct, 1, out); err != nil {
		t.Fatal(err)
	}
	rot, err := k.ev.RotateRows(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctEq("RotateRows", out, rot)

	// out may alias ct: the operand is staged into scratch first.
	alias := ct.Clone()
	if err := k.ev.RotateRowsInto(alias, 1, alias); err != nil {
		t.Fatal(err)
	}
	ctEq("RotateRows aliased", alias, rot)
}
