package bfv

import (
	"math/rand/v2"
	"testing"

	"athena/internal/ring"
)

// testContext builds a small but functional parameter set. t=65537 is
// 1 mod 2N for every logN ≤ 15, so batching is always available.
func testContext(t testing.TB, logN, limbs int) *Context {
	t.Helper()
	primes, err := ring.GenerateNTTPrimes(50, logN, limbs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(Parameters{LogN: logN, Qi: primes, T: 65537})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

type testKit struct {
	ctx *Context
	sk  *SecretKey
	pk  *PublicKey
	enc *Encryptor
	dec *Decryptor
	ev  *Evaluator
	cod *Encoder
}

func newTestKit(t testing.TB, logN, limbs int, rotations []int) *testKit {
	t.Helper()
	ctx := testContext(t, logN, limbs)
	kg := NewKeyGenerator(ctx, 1234)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	els := RotationGaloisElements(ctx, rotations)
	els = append(els, ring.GaloisElementConjugate(ctx.N))
	keys := kg.GenKeySet(sk, els)
	return &testKit{
		ctx: ctx,
		sk:  sk,
		pk:  pk,
		enc: NewEncryptor(ctx, pk, 77),
		dec: NewDecryptor(ctx, sk),
		ev:  NewEvaluator(ctx, keys),
		cod: NewEncoder(ctx),
	}
}

func randVals(n int, bound int64, seed uint64) []int64 {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(rng.Uint64N(uint64(2*bound))) - bound
	}
	return v
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := newTestKit(t, 6, 3, nil)
	vals := randVals(k.ctx.N, 1000, 1)
	pt := k.cod.EncodeCoeffs(vals)
	ct := k.enc.Encrypt(pt)
	got := k.cod.DecodeCoeffs(k.dec.Decrypt(ct))
	for i, want := range vals {
		if got[i] != want {
			t.Fatalf("coeff %d: got %d want %d", i, got[i], want)
		}
	}
	if b := k.dec.NoiseBudget(ct); b < 50 {
		t.Fatalf("fresh ciphertext budget %v suspiciously low", b)
	}
}

func TestHomomorphicAddSub(t *testing.T) {
	k := newTestKit(t, 6, 3, nil)
	a := randVals(k.ctx.N, 500, 2)
	b := randVals(k.ctx.N, 500, 3)
	cta := k.enc.Encrypt(k.cod.EncodeCoeffs(a))
	ctb := k.enc.Encrypt(k.cod.EncodeCoeffs(b))

	sum := k.cod.DecodeCoeffs(k.dec.Decrypt(k.ev.Add(cta, ctb)))
	diff := k.cod.DecodeCoeffs(k.dec.Decrypt(k.ev.Sub(cta, ctb)))
	neg := k.cod.DecodeCoeffs(k.dec.Decrypt(k.ev.Neg(cta)))
	for i := range a {
		if sum[i] != a[i]+b[i] {
			t.Fatalf("add coeff %d: %d want %d", i, sum[i], a[i]+b[i])
		}
		if diff[i] != a[i]-b[i] {
			t.Fatalf("sub coeff %d: %d want %d", i, diff[i], a[i]-b[i])
		}
		if neg[i] != -a[i] {
			t.Fatalf("neg coeff %d: %d want %d", i, neg[i], -a[i])
		}
	}
}

func TestAddPlain(t *testing.T) {
	k := newTestKit(t, 5, 3, nil)
	a := randVals(k.ctx.N, 100, 4)
	b := randVals(k.ctx.N, 100, 5)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(a))
	out := k.ev.AddPlain(ct, k.cod.EncodeCoeffs(b))
	got := k.cod.DecodeCoeffs(k.dec.Decrypt(out))
	for i := range a {
		if got[i] != a[i]+b[i] {
			t.Fatalf("coeff %d: %d want %d", i, got[i], a[i]+b[i])
		}
	}
}

// negacyclicConvolve is the plaintext oracle for coefficient-encoded
// multiplication: c = a·b mod (X^N+1) mod t, centered.
func negacyclicConvolve(a, b []int64, tm ring.Modulus) []int64 {
	n := len(a)
	acc := make([]uint64, n)
	for i, ai := range a {
		av := tm.ReduceInt64(ai)
		if av == 0 {
			continue
		}
		for j, bj := range b {
			bv := tm.ReduceInt64(bj)
			p := tm.Mul(av, bv)
			k := i + j
			if k < n {
				acc[k] = tm.Add(acc[k], p)
			} else {
				acc[k-n] = tm.Sub(acc[k-n], p)
			}
		}
	}
	out := make([]int64, n)
	for i, v := range acc {
		out[i] = tm.Centered(v)
	}
	return out
}

func TestMulPlainIsNegacyclicConvolution(t *testing.T) {
	k := newTestKit(t, 5, 3, nil)
	a := randVals(k.ctx.N, 120, 6)
	b := randVals(k.ctx.N, 120, 7)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(a))
	pm := k.cod.LiftToMul(k.cod.EncodeCoeffs(b))
	out := k.ev.MulPlain(ct, pm)
	got := k.cod.DecodeCoeffs(k.dec.Decrypt(out))
	want := negacyclicConvolve(a, b, k.ctx.TMod)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coeff %d: %d want %d", i, got[i], want[i])
		}
	}
	if bud := k.dec.NoiseBudget(out); bud <= 0 {
		t.Fatalf("budget exhausted after one PMult: %v", bud)
	}
}

func TestMulPlainAndAddAccumulates(t *testing.T) {
	k := newTestKit(t, 5, 3, nil)
	a := randVals(k.ctx.N, 50, 8)
	b := randVals(k.ctx.N, 50, 9)
	c := randVals(k.ctx.N, 50, 10)
	cta := k.enc.Encrypt(k.cod.EncodeCoeffs(a))
	pmb := k.cod.LiftToMul(k.cod.EncodeCoeffs(b))
	pmc := k.cod.LiftToMul(k.cod.EncodeCoeffs(c))
	acc := k.ctx.NewCiphertext()
	k.ev.MulPlainAndAdd(cta, pmb, acc)
	k.ev.MulPlainAndAdd(cta, pmc, acc)
	got := k.cod.DecodeCoeffs(k.dec.Decrypt(acc))
	wb := negacyclicConvolve(a, b, k.ctx.TMod)
	wc := negacyclicConvolve(a, c, k.ctx.TMod)
	for i := range wb {
		want := k.ctx.TMod.Centered(k.ctx.TMod.ReduceInt64(wb[i] + wc[i]))
		if got[i] != want {
			t.Fatalf("coeff %d: %d want %d", i, got[i], want)
		}
	}
}

func TestMulScalar(t *testing.T) {
	k := newTestKit(t, 5, 3, nil)
	a := randVals(k.ctx.N, 100, 11)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(a))
	tm := k.ctx.TMod
	for _, scalar := range []uint64{0, 1, 2, 100, 65536 /* ≡ -1 */} {
		out := k.ev.MulScalar(ct, scalar)
		got := k.cod.DecodeCoeffs(k.dec.Decrypt(out))
		for i := range a {
			want := tm.Centered(tm.Mul(tm.ReduceInt64(a[i]), tm.Reduce(scalar)))
			if got[i] != want {
				t.Fatalf("scalar %d coeff %d: %d want %d", scalar, i, got[i], want)
			}
		}
	}
}

func TestCiphertextMul(t *testing.T) {
	k := newTestKit(t, 5, 3, nil)
	a := randVals(k.ctx.N, 100, 12)
	b := randVals(k.ctx.N, 100, 13)
	cta := k.enc.Encrypt(k.cod.EncodeCoeffs(a))
	ctb := k.enc.Encrypt(k.cod.EncodeCoeffs(b))
	out, err := k.ev.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	got := k.cod.DecodeCoeffs(k.dec.Decrypt(out))
	want := negacyclicConvolve(a, b, k.ctx.TMod)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coeff %d: %d want %d", i, got[i], want[i])
		}
	}
	if bud := k.dec.NoiseBudget(out); bud <= 0 {
		t.Fatalf("budget exhausted after one CMult: %v", bud)
	}
}

func TestMulChainDepth(t *testing.T) {
	// Repeated squaring of the all-ones constant: checks noise survives a
	// few multiplicative levels at 4 limbs.
	k := newTestKit(t, 5, 4, nil)
	one := make([]int64, 1)
	one[0] = 2
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(one))
	want := int64(2)
	for depth := 1; depth <= 3; depth++ {
		var err error
		ct, err = k.ev.Mul(ct, ct)
		if err != nil {
			t.Fatal(err)
		}
		want = want * want % int64(k.ctx.Params.T)
		got := k.cod.DecodeCoeffs(k.dec.Decrypt(ct))
		if got[0] != k.ctx.TMod.Centered(uint64(want)) {
			t.Fatalf("depth %d: got %d want %d (budget %v)", depth, got[0], want, k.dec.NoiseBudget(ct))
		}
	}
}

func TestBatchEncodeDecode(t *testing.T) {
	k := newTestKit(t, 6, 3, nil)
	vals := randVals(k.ctx.N, int64(k.ctx.Params.T/2)-1, 14)
	pt := k.cod.EncodeSlots(vals)
	got := k.cod.DecodeSlots(pt)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("slot %d: %d want %d", i, got[i], vals[i])
		}
	}
}

func TestBatchedMulIsSlotwise(t *testing.T) {
	k := newTestKit(t, 6, 3, nil)
	a := randVals(k.ctx.N, 250, 15)
	b := randVals(k.ctx.N, 250, 16)
	cta := k.enc.Encrypt(k.cod.EncodeSlots(a))
	ctb := k.enc.Encrypt(k.cod.EncodeSlots(b))
	out, err := k.ev.Mul(cta, ctb)
	if err != nil {
		t.Fatal(err)
	}
	got := k.cod.DecodeSlots(k.dec.Decrypt(out))
	tm := k.ctx.TMod
	for i := range a {
		want := tm.Centered(tm.Mul(tm.ReduceInt64(a[i]), tm.ReduceInt64(b[i])))
		if got[i] != want {
			t.Fatalf("slot %d: %d want %d", i, got[i], want)
		}
	}
}

func TestBatchedPlainMulIsSlotwise(t *testing.T) {
	k := newTestKit(t, 6, 3, nil)
	a := randVals(k.ctx.N, 250, 17)
	b := randVals(k.ctx.N, 250, 18)
	ct := k.enc.Encrypt(k.cod.EncodeSlots(a))
	pm := k.cod.LiftToMul(k.cod.EncodeSlots(b))
	got := k.cod.DecodeSlots(k.dec.Decrypt(k.ev.MulPlain(ct, pm)))
	tm := k.ctx.TMod
	for i := range a {
		want := tm.Centered(tm.Mul(tm.ReduceInt64(a[i]), tm.ReduceInt64(b[i])))
		if got[i] != want {
			t.Fatalf("slot %d: %d want %d", i, got[i], want)
		}
	}
}

func TestRotateRows(t *testing.T) {
	k := newTestKit(t, 6, 3, []int{1, 2, -1, 5})
	n := k.ctx.N
	row := n / 2
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	ct := k.enc.Encrypt(k.cod.EncodeSlots(vals))
	for _, rot := range []int{1, 2, -1, 5} {
		out, err := k.ev.RotateRows(ct, rot)
		if err != nil {
			t.Fatal(err)
		}
		got := k.cod.DecodeSlots(k.dec.Decrypt(out))
		for i := 0; i < n; i++ {
			r := i / row
			j := i % row
			want := vals[r*row+((j+rot)%row+row)%row]
			if got[i] != want {
				t.Fatalf("rot %d slot %d: got %d want %d", rot, i, got[i], want)
			}
		}
	}
}

func TestRotateColumnsSwapsRows(t *testing.T) {
	k := newTestKit(t, 6, 3, nil)
	n := k.ctx.N
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	ct := k.enc.Encrypt(k.cod.EncodeSlots(vals))
	out, err := k.ev.RotateColumns(ct)
	if err != nil {
		t.Fatal(err)
	}
	got := k.cod.DecodeSlots(k.dec.Decrypt(out))
	row := n / 2
	for i := 0; i < row; i++ {
		if got[i] != vals[i+row] || got[i+row] != vals[i] {
			t.Fatalf("slot %d: rows not swapped", i)
		}
	}
}

func TestMissingKeysErrors(t *testing.T) {
	ctx := testContext(t, 5, 3)
	kg := NewKeyGenerator(ctx, 5)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := NewEncryptor(ctx, pk, 6)
	ev := NewEvaluator(ctx, nil)
	ct := enc.EncryptZero()
	if _, err := ev.Mul(ct, ct); err == nil {
		t.Fatal("Mul without relin key should error")
	}
	if _, err := ev.RotateRows(ct, 1); err == nil {
		t.Fatal("rotation without galois keys should error")
	}
	ev2 := NewEvaluator(ctx, &KeySet{Relin: kg.GenRelinearizationKey(sk), Galois: map[uint64]*GaloisKey{}})
	if _, err := ev2.RotateRows(ct, 3); err == nil {
		t.Fatal("rotation with missing element should error")
	}
}

func TestNoiseBudgetDecreasesWithDepth(t *testing.T) {
	k := newTestKit(t, 5, 4, nil)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs([]int64{3}))
	b0 := k.dec.NoiseBudget(ct)
	ct2, _ := k.ev.Mul(ct, ct)
	b1 := k.dec.NoiseBudget(ct2)
	if b1 >= b0 {
		t.Fatalf("budget did not decrease: %v -> %v", b0, b1)
	}
}

func TestContextValidation(t *testing.T) {
	primes, _ := ring.GenerateNTTPrimes(50, 5, 2)
	if _, err := NewContext(Parameters{LogN: 1, Qi: primes, T: 65537}); err == nil {
		t.Fatal("accepted absurd logN")
	}
	if _, err := NewContext(Parameters{LogN: 5, Qi: primes, T: 65536}); err == nil {
		t.Fatal("accepted composite plaintext modulus")
	}
	ctx, err := NewContext(Parameters{LogN: 5, Qi: primes, T: 97}) // 97-1=96, not 1 mod 64
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Batching() {
		t.Fatal("t=97 cannot batch at N=32")
	}
}
