package bfv

import (
	"fmt"

	"athena/internal/ring"
)

// Evaluator performs homomorphic operations. It holds only precomputed
// immutable state plus the key set, so a single Evaluator may be shared
// across goroutines for read-only operation graphs (each call allocates
// its own temporaries).
type Evaluator struct {
	ctx  *Context
	keys *KeySet
}

// NewEvaluator creates an evaluator. keys may be nil when only key-free
// operations (add, plain/scalar multiply) are needed.
func NewEvaluator(ctx *Context, keys *KeySet) *Evaluator {
	return &Evaluator{ctx: ctx, keys: keys}
}

// Add returns a + b.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	out := ev.ctx.NewCiphertext()
	ev.ctx.RingQ.Add(a.C0, b.C0, out.C0)
	ev.ctx.RingQ.Add(a.C1, b.C1, out.C1)
	return out
}

// AddInPlace sets a += b.
func (ev *Evaluator) AddInPlace(a, b *Ciphertext) {
	ev.ctx.RingQ.Add(a.C0, b.C0, a.C0)
	ev.ctx.RingQ.Add(a.C1, b.C1, a.C1)
}

// Sub returns a - b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	out := ev.ctx.NewCiphertext()
	ev.ctx.RingQ.Sub(a.C0, b.C0, out.C0)
	ev.ctx.RingQ.Sub(a.C1, b.C1, out.C1)
	return out
}

// Neg returns -a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	out := ev.ctx.NewCiphertext()
	ev.ctx.RingQ.Neg(a.C0, out.C0)
	ev.ctx.RingQ.Neg(a.C1, out.C1)
	return out
}

// AddPlain returns ct + pt (the plaintext is embedded as Δ·m).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	enc := NewEncoder(ev.ctx)
	dm := enc.LiftToDelta(pt)
	out := ct.Clone()
	ev.ctx.RingQ.Add(out.C0, dm, out.C0)
	return out
}

// MulPlain returns ct ⊗ pm, the plaintext-ciphertext product (PMult in
// the paper's notation). The plaintext must have been lifted with
// Encoder.LiftToMul.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pm *PlaintextMul) *Ciphertext {
	out := ev.ctx.NewCiphertext()
	ev.ctx.RingQ.MulCoeffs(ct.C0, pm.Value, out.C0)
	ev.ctx.RingQ.MulCoeffs(ct.C1, pm.Value, out.C1)
	return out
}

// MulPlainAndAdd sets acc += ct ⊗ pm without allocating.
func (ev *Evaluator) MulPlainAndAdd(ct *Ciphertext, pm *PlaintextMul, acc *Ciphertext) {
	ev.ctx.RingQ.MulCoeffsAndAdd(ct.C0, pm.Value, acc.C0)
	ev.ctx.RingQ.MulCoeffsAndAdd(ct.C1, pm.Value, acc.C1)
}

// MulScalar returns ct · k for the scalar k ∈ Z_t, using the centered
// representative of k to minimize noise growth (SMult).
func (ev *Evaluator) MulScalar(ct *Ciphertext, k uint64) *Ciphertext {
	c := ev.ctx.TMod.Centered(ev.ctx.TMod.Reduce(k))
	out := ev.ctx.NewCiphertext()
	rq := ev.ctx.RingQ
	for i := range rq.Moduli {
		m := rq.Moduli[i]
		kv := m.ReduceInt64(c)
		sh := m.ShoupPrecomp(kv)
		for j := range ct.C0.Coeffs[i] {
			out.C0.Coeffs[i][j] = m.MulShoup(ct.C0.Coeffs[i][j], kv, sh)
			out.C1.Coeffs[i][j] = m.MulShoup(ct.C1.Coeffs[i][j], kv, sh)
		}
	}
	return out
}

// Mul returns the relinearized product a·b (CMult): RNS tensor product in
// the extended basis, exact t/Q scale-and-round, then keyswitching of the
// degree-2 term. Requires a relinearization key.
func (ev *Evaluator) Mul(a, b *Ciphertext) (*Ciphertext, error) {
	if ev.keys == nil || ev.keys.Relin == nil {
		return nil, fmt.Errorf("bfv: Mul requires a relinearization key")
	}
	d0, d1, d2 := ev.tensor(a, b)
	out := &Ciphertext{C0: d0, C1: d1}
	// d2 is in the coefficient domain; keyswitch folds it into (C0, C1).
	ks0, ks1 := ev.keySwitchCoeff(d2, &ev.keys.Relin.SwitchingKey)
	ev.ctx.RingQ.Add(out.C0, ks0, out.C0)
	ev.ctx.RingQ.Add(out.C1, ks1, out.C1)
	return out, nil
}

// tensor computes the scaled tensor product: three polynomials
// (d0, d1, d2) over Q with d0, d1 in the NTT domain and d2 in the
// coefficient domain, such that d0 + d1·s + d2·s² ≈ Δ·m_a·m_b.
func (ev *Evaluator) tensor(a, b *Ciphertext) (d0, d1, d2 ring.Poly) {
	ctx := ev.ctx
	rq, rqb := ctx.RingQ, ctx.RingQB

	// Move operands to the coefficient domain, extend to basis QB.
	ext := func(p ring.Poly) ring.Poly {
		c := p.Clone()
		rq.INTT(c)
		e := rqb.NewPoly()
		ctx.BasisQ.ExtendPoly(c, ctx.BasisQB, e)
		rqb.NTT(e)
		return e
	}
	a0, a1 := ext(a.C0), ext(a.C1)
	b0, b1 := ext(b.C0), ext(b.C1)

	t0 := rqb.NewPoly()
	rqb.MulCoeffs(a0, b0, t0)
	t1 := rqb.NewPoly()
	rqb.MulCoeffs(a0, b1, t1)
	rqb.MulCoeffsAndAdd(a1, b0, t1)
	t2 := rqb.NewPoly()
	rqb.MulCoeffs(a1, b1, t2)
	rqb.INTT(t0)
	rqb.INTT(t1)
	rqb.INTT(t2)

	// Scale each by t/Q and round, landing back in basis Q.
	d0 = rq.NewPoly()
	d1 = rq.NewPoly()
	d2 = rq.NewPoly()
	ctx.BasisQB.ScaleAndRound(t0, ctx.TBig, ctx.QBig, ctx.BasisQ, d0)
	ctx.BasisQB.ScaleAndRound(t1, ctx.TBig, ctx.QBig, ctx.BasisQ, d1)
	ctx.BasisQB.ScaleAndRound(t2, ctx.TBig, ctx.QBig, ctx.BasisQ, d2)
	rq.NTT(d0)
	rq.NTT(d1)
	return d0, d1, d2
}

// keySwitchCoeff applies a switching key to a coefficient-domain
// polynomial p, returning the NTT-domain pair (ks0, ks1) with
// ks0 + ks1·s ≈ p·target.
func (ev *Evaluator) keySwitchCoeff(p ring.Poly, swk *SwitchingKey) (ring.Poly, ring.Poly) {
	ctx := ev.ctx
	rq := ctx.RingQ
	digits := ctx.BasisQ.DecomposeDigits(p, rq.NewPoly)
	ks0 := rq.NewPoly()
	ks1 := rq.NewPoly()
	for i, d := range digits {
		rq.NTT(d)
		rq.MulCoeffsAndAdd(d, swk.B[i], ks0)
		rq.MulCoeffsAndAdd(d, swk.A[i], ks1)
	}
	return ks0, ks1
}

// Automorphism applies X -> X^g to the ciphertext and keyswitches back to
// the original secret. Requires the Galois key for g.
func (ev *Evaluator) Automorphism(ct *Ciphertext, g uint64) (*Ciphertext, error) {
	if g == 1 {
		return ct.Clone(), nil
	}
	if ev.keys == nil {
		return nil, fmt.Errorf("bfv: Automorphism requires galois keys")
	}
	gk, err := ev.keys.GaloisKeyFor(g)
	if err != nil {
		return nil, err
	}
	ctx := ev.ctx
	rq := ctx.RingQ

	c0 := ct.C0.Clone()
	c1 := ct.C1.Clone()
	rq.INTT(c0)
	rq.INTT(c1)
	p0 := rq.NewPoly()
	p1 := rq.NewPoly()
	dst, neg := ring.AutomorphismIndex(ctx.N, g)
	rq.AutomorphismWithIndex(c0, dst, neg, p0)
	rq.AutomorphismWithIndex(c1, dst, neg, p1)

	// φ(ct) decrypts under φ(s); switch the C1 part back to s.
	ks0, ks1 := ev.keySwitchCoeff(p1, &gk.SwitchingKey)
	out := ctx.NewCiphertext()
	rq.NTT(p0)
	rq.Add(p0, ks0, out.C0)
	ks1.CopyTo(out.C1)
	return out, nil
}

// RotateRows rotates both slot rows left by k (slot i receives the value
// previously at slot i+k within each row of N/2). Requires the Galois key
// for 5^k.
func (ev *Evaluator) RotateRows(ct *Ciphertext, k int) (*Ciphertext, error) {
	g := ring.GaloisElementForRotation(ev.ctx.N, k)
	return ev.Automorphism(ct, g)
}

// RotateColumns swaps the two slot rows (conjugation). Requires the
// Galois key for 2N-1.
func (ev *Evaluator) RotateColumns(ct *Ciphertext) (*Ciphertext, error) {
	return ev.Automorphism(ct, ring.GaloisElementConjugate(ev.ctx.N))
}

// RotationGaloisElements returns the Galois elements needed to rotate by
// each k in ks (deduplicated), for key generation.
func RotationGaloisElements(ctx *Context, ks []int) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, k := range ks {
		g := ring.GaloisElementForRotation(ctx.N, k)
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}
