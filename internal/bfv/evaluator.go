package bfv

import (
	"fmt"

	"athena/internal/ring"
)

// Evaluator performs homomorphic operations. It owns a scratch arena of
// reusable polynomial temporaries (lazily allocated, retained across
// calls), so steady-state operations allocate only their results. That
// makes an Evaluator single-goroutine state: to fan out across
// goroutines, give each its own ShallowCopy, which shares the immutable
// context and keys but not the scratch.
type Evaluator struct {
	ctx  *Context
	keys *KeySet
	sc   *evalScratch
}

// evalScratch holds the reusable temporaries behind Mul, Automorphism,
// keyswitching, and plain addition. Everything is lazily allocated on
// first use and sized by the owning context, so an evaluator used only
// for cheap operations never pays for the tensor-product arena.
type evalScratch struct {
	// tensor: coefficient-domain staging over Q, extended operands and
	// accumulators over QB, and the degree-2 output term over Q.
	cq  ring.Poly
	eqb [4]ring.Poly
	tqb [3]ring.Poly
	d2  ring.Poly
	// keyswitch: the current digit and the two accumulators.
	digit    ring.Poly
	ks0, ks1 ring.Poly
	// automorphism: coefficient-domain inputs and permuted outputs.
	aq [4]ring.Poly
	// plain addition: the Δ·m lift.
	dm ring.Poly
	// fused scalar-sum staging: per-term centered scalars and the
	// per-limb constant/row gathers behind MulScalarSum*.
	sumC    []int64
	sumW    []uint64
	sumWS   []uint64
	sumRows [][]uint64
	// cached automorphism permutation tables, keyed by Galois element.
	autoIdx map[uint64]*autoTable

	enc *Encoder
}

type autoTable struct {
	dst []int
	neg []bool
}

// NewEvaluator creates an evaluator. keys may be nil when only key-free
// operations (add, plain/scalar multiply) are needed.
func NewEvaluator(ctx *Context, keys *KeySet) *Evaluator {
	return &Evaluator{ctx: ctx, keys: keys, sc: &evalScratch{}}
}

// Keys returns the evaluator's key set (read-only; shared, not copied).
func (ev *Evaluator) Keys() *KeySet { return ev.keys }

// ShallowCopy returns an evaluator sharing ev's context and keys but
// owning a fresh scratch arena, for use from another goroutine.
func (ev *Evaluator) ShallowCopy() *Evaluator {
	return &Evaluator{ctx: ev.ctx, keys: ev.keys, sc: &evalScratch{}}
}

// tensorScratch returns the arena polynomials used by tensor, allocating
// them on first use.
func (ev *Evaluator) tensorScratch() *evalScratch {
	sc := ev.sc
	if sc.cq.Level() == 0 {
		sc.cq = ev.ctx.RingQ.NewPoly()
		for i := range sc.eqb {
			sc.eqb[i] = ev.ctx.RingQB.NewPoly()
		}
		for i := range sc.tqb {
			sc.tqb[i] = ev.ctx.RingQB.NewPoly()
		}
		sc.d2 = ev.ctx.RingQ.NewPoly()
	}
	return sc
}

// ksScratch returns the keyswitch arena, allocating it on first use.
func (ev *Evaluator) ksScratch() *evalScratch {
	sc := ev.sc
	if sc.digit.Level() == 0 {
		sc.digit = ev.ctx.RingQ.NewPoly() //lint:allow noalloc one-time lazy arena fill, reused across calls
		sc.ks0 = ev.ctx.RingQ.NewPoly()   //lint:allow noalloc one-time lazy arena fill, reused across calls
		sc.ks1 = ev.ctx.RingQ.NewPoly()   //lint:allow noalloc one-time lazy arena fill, reused across calls
	}
	return sc
}

// autoIndex returns the cached permutation table for Galois element g.
func (ev *Evaluator) autoIndex(g uint64) *autoTable {
	sc := ev.sc
	if sc.autoIdx == nil {
		sc.autoIdx = make(map[uint64]*autoTable) //lint:allow noalloc one-time cache init
	}
	t := sc.autoIdx[g]
	if t == nil {
		dst, neg := ring.AutomorphismIndex(ev.ctx.N, g) //lint:allow noalloc table built on first use of g; steady state is a map hit
		t = &autoTable{dst: dst, neg: neg}              //lint:allow noalloc table built on first use of g; steady state is a map hit
		sc.autoIdx[g] = t                               //lint:allow noalloc table built on first use of g; steady state is a map hit
	}
	return t
}

// Add returns a + b.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	out := ev.ctx.NewCiphertext()
	ev.ctx.RingQ.Add(a.C0, b.C0, out.C0)
	ev.ctx.RingQ.Add(a.C1, b.C1, out.C1)
	return out
}

// AddInPlace sets a += b.
//
//lint:noalloc
func (ev *Evaluator) AddInPlace(a, b *Ciphertext) {
	ev.ctx.RingQ.Add(a.C0, b.C0, a.C0)
	ev.ctx.RingQ.Add(a.C1, b.C1, a.C1)
}

// Sub returns a - b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	out := ev.ctx.NewCiphertext()
	ev.ctx.RingQ.Sub(a.C0, b.C0, out.C0)
	ev.ctx.RingQ.Sub(a.C1, b.C1, out.C1)
	return out
}

// Neg returns -a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	out := ev.ctx.NewCiphertext()
	ev.ctx.RingQ.Neg(a.C0, out.C0)
	ev.ctx.RingQ.Neg(a.C1, out.C1)
	return out
}

// AddPlain returns ct + pt (the plaintext is embedded as Δ·m).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	out := ct.Clone()
	ev.AddPlainInPlace(out, pt)
	return out
}

// AddPlainInPlace sets ct += pt (the plaintext is embedded as Δ·m)
// without allocating: the lift lands in evaluator scratch.
//
//lint:noalloc
func (ev *Evaluator) AddPlainInPlace(ct *Ciphertext, pt *Plaintext) {
	sc := ev.sc
	if sc.enc == nil {
		sc.enc = NewEncoder(ev.ctx)    //lint:allow noalloc one-time lazy encoder init, reused across calls
		sc.dm = ev.ctx.RingQ.NewPoly() //lint:allow noalloc one-time lazy arena fill, reused across calls
	}
	sc.enc.LiftToDeltaInto(pt, sc.dm)
	ev.ctx.RingQ.Add(ct.C0, sc.dm, ct.C0)
}

// MulPlain returns ct ⊗ pm, the plaintext-ciphertext product (PMult in
// the paper's notation). The plaintext must have been lifted with
// Encoder.LiftToMul. When pm carries its Shoup companion (compiled,
// reused multipliers), the product runs the elementwise Shoup kernel.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pm *PlaintextMul) *Ciphertext {
	out := ev.ctx.NewCiphertext()
	ev.MulPlainInto(ct, pm, out)
	return out
}

// MulPlainInto sets out = ct ⊗ pm without allocating. out must not
// alias ct (it may alias pm only through distinct polynomials).
//
//lint:noalloc
func (ev *Evaluator) MulPlainInto(ct *Ciphertext, pm *PlaintextMul, out *Ciphertext) {
	if pm.Shoup.Level() != 0 {
		ev.ctx.RingQ.MulCoeffsShoup(ct.C0, pm.Value, pm.Shoup, out.C0)
		ev.ctx.RingQ.MulCoeffsShoup(ct.C1, pm.Value, pm.Shoup, out.C1)
		return
	}
	ev.ctx.RingQ.MulCoeffs(ct.C0, pm.Value, out.C0)
	ev.ctx.RingQ.MulCoeffs(ct.C1, pm.Value, out.C1)
}

// MulPlainAndAdd sets acc += ct ⊗ pm without allocating.
//
//lint:noalloc
func (ev *Evaluator) MulPlainAndAdd(ct *Ciphertext, pm *PlaintextMul, acc *Ciphertext) {
	if pm.Shoup.Level() != 0 {
		ev.ctx.RingQ.MulCoeffsShoupAndAdd(ct.C0, pm.Value, pm.Shoup, acc.C0)
		ev.ctx.RingQ.MulCoeffsShoupAndAdd(ct.C1, pm.Value, pm.Shoup, acc.C1)
		return
	}
	ev.ctx.RingQ.MulCoeffsAndAdd(ct.C0, pm.Value, acc.C0)
	ev.ctx.RingQ.MulCoeffsAndAdd(ct.C1, pm.Value, acc.C1)
}

// MulPlainFixedInto sets out = ct ⊗ pm for a fixed ciphertext with
// precomputed companions cs (Context.NewCiphertextShoup): the roles are
// swapped versus MulPlain's fast path, covering products where the
// ciphertext is the immutable operand and the plaintext multiplier
// changes per call (the packer's diagonal products against its
// baby-step keys). out must not alias ct.
//
//lint:noalloc
func (ev *Evaluator) MulPlainFixedInto(ct *Ciphertext, cs *CiphertextShoup, pm *PlaintextMul, out *Ciphertext) {
	ev.ctx.RingQ.MulCoeffsShoup(pm.Value, ct.C0, cs.C0S, out.C0)
	ev.ctx.RingQ.MulCoeffsShoup(pm.Value, ct.C1, cs.C1S, out.C1)
}

// MulPlainFixedAndAdd sets acc += ct ⊗ pm for a fixed ciphertext with
// precomputed companions cs.
//
//lint:noalloc
func (ev *Evaluator) MulPlainFixedAndAdd(ct *Ciphertext, cs *CiphertextShoup, pm *PlaintextMul, acc *Ciphertext) {
	ev.ctx.RingQ.MulCoeffsShoupAndAdd(pm.Value, ct.C0, cs.C0S, acc.C0)
	ev.ctx.RingQ.MulCoeffsShoupAndAdd(pm.Value, ct.C1, cs.C1S, acc.C1)
}

// MulScalar returns ct · k for the scalar k ∈ Z_t, using the centered
// representative of k to minimize noise growth (SMult).
func (ev *Evaluator) MulScalar(ct *Ciphertext, k uint64) *Ciphertext {
	c := ev.ctx.TMod.Centered(ev.ctx.TMod.Reduce(k))
	out := ev.ctx.NewCiphertext()
	rq := ev.ctx.RingQ
	for i := range rq.Moduli {
		m := rq.Moduli[i]
		kv := m.ReduceInt64(c)
		sh := m.ShoupPrecomp(kv)
		m.MulShoupVec(ct.C0.Coeffs[i], kv, sh, out.C0.Coeffs[i])
		m.MulShoupVec(ct.C1.Coeffs[i], kv, sh, out.C1.Coeffs[i])
	}
	return out
}

// MulScalarAndAdd sets acc += ct · k for the scalar k ∈ Z_t (centered, as
// in MulScalar) without allocating — the fused kernel behind FBS inner
// sums that would otherwise build a product ciphertext per term.
//
//lint:noalloc
func (ev *Evaluator) MulScalarAndAdd(ct *Ciphertext, k uint64, acc *Ciphertext) {
	c := ev.ctx.TMod.Centered(ev.ctx.TMod.Reduce(k))
	rq := ev.ctx.RingQ
	for i := range rq.Moduli {
		m := rq.Moduli[i]
		kv := m.ReduceInt64(c)
		sh := m.ShoupPrecomp(kv)
		m.MulShoupAddVec(ct.C0.Coeffs[i], kv, sh, acc.C0.Coeffs[i])
		m.MulShoupAddVec(ct.C1.Coeffs[i], kv, sh, acc.C1.Coeffs[i])
	}
}

// sumScratch grows the fused scalar-sum staging to hold k terms; the
// slices are sized once to the largest term count seen and reused.
//
//lint:noalloc
func (ev *Evaluator) sumScratch(k int) *evalScratch {
	sc := ev.sc
	if cap(sc.sumC) < k {
		//lint:prealloc sized once to the largest term count, then reused across calls
		sc.sumC = make([]int64, k)
		//lint:prealloc sized once to the largest term count, then reused across calls
		sc.sumW = make([]uint64, k)
		//lint:prealloc sized once to the largest term count, then reused across calls
		sc.sumWS = make([]uint64, k)
		//lint:prealloc sized once to the largest term count, then reused across calls
		sc.sumRows = make([][]uint64, k)
	}
	sc.sumC = sc.sumC[:k]
	sc.sumW = sc.sumW[:k]
	sc.sumWS = sc.sumWS[:k]
	sc.sumRows = sc.sumRows[:k]
	return sc
}

// MulScalarSumInto sets out = Σ_k cts[k]·ks[k] for scalars ks[k] ∈ Z_t
// (centered, as in MulScalar), fusing the whole multi-term SMult/HAdd
// chain into one lazy-accumulating pass per output limb: each output
// coefficient is loaded and stored once no matter how many terms the
// sum has, the way the paper's FRU array pipelines the FBS baby-step
// inner sum (Fig. 7). out must not alias any cts entry.
//
//lint:noalloc
func (ev *Evaluator) MulScalarSumInto(cts []*Ciphertext, ks []uint64, out *Ciphertext) {
	sc := ev.sumScratch(len(cts))
	tm := ev.ctx.TMod
	for k := range cts {
		sc.sumC[k] = tm.Centered(tm.Reduce(ks[k]))
	}
	rq := ev.ctx.RingQ
	for i := range rq.Moduli {
		m := rq.Moduli[i]
		for k := range sc.sumC {
			sc.sumW[k] = m.ReduceInt64(sc.sumC[k])
		}
		m.ShoupPrecompVec(sc.sumW, sc.sumWS)
		for k := range cts {
			sc.sumRows[k] = cts[k].C0.Coeffs[i]
		}
		m.MulShoupSumVec(sc.sumRows, sc.sumW, sc.sumWS, out.C0.Coeffs[i])
		for k := range cts {
			sc.sumRows[k] = cts[k].C1.Coeffs[i]
		}
		m.MulShoupSumVec(sc.sumRows, sc.sumW, sc.sumWS, out.C1.Coeffs[i])
	}
}

// MulScalarSumAndAdd sets acc += Σ_k cts[k]·ks[k], the accumulating form
// of MulScalarSumInto. acc must not alias any cts entry.
//
//lint:noalloc
func (ev *Evaluator) MulScalarSumAndAdd(cts []*Ciphertext, ks []uint64, acc *Ciphertext) {
	sc := ev.sumScratch(len(cts))
	tm := ev.ctx.TMod
	for k := range cts {
		sc.sumC[k] = tm.Centered(tm.Reduce(ks[k]))
	}
	rq := ev.ctx.RingQ
	for i := range rq.Moduli {
		m := rq.Moduli[i]
		for k := range sc.sumC {
			sc.sumW[k] = m.ReduceInt64(sc.sumC[k])
		}
		m.ShoupPrecompVec(sc.sumW, sc.sumWS)
		for k := range cts {
			sc.sumRows[k] = cts[k].C0.Coeffs[i]
		}
		m.MulShoupSumAddVec(sc.sumRows, sc.sumW, sc.sumWS, acc.C0.Coeffs[i])
		for k := range cts {
			sc.sumRows[k] = cts[k].C1.Coeffs[i]
		}
		m.MulShoupSumAddVec(sc.sumRows, sc.sumW, sc.sumWS, acc.C1.Coeffs[i])
	}
}

// Mul returns the relinearized product a·b (CMult): RNS tensor product in
// the extended basis, exact t/Q scale-and-round, then keyswitching of the
// degree-2 term. Requires a relinearization key.
func (ev *Evaluator) Mul(a, b *Ciphertext) (*Ciphertext, error) {
	if ev.keys == nil || ev.keys.Relin == nil {
		return nil, fmt.Errorf("bfv: Mul requires a relinearization key")
	}
	d0, d1, d2 := ev.tensor(a, b)
	out := &Ciphertext{C0: d0, C1: d1}
	// d2 is in the coefficient domain; keyswitch folds it into (C0, C1).
	ks0, ks1 := ev.keySwitchCoeff(d2, &ev.keys.Relin.SwitchingKey)
	ev.ctx.RingQ.Add(out.C0, ks0, out.C0)
	ev.ctx.RingQ.Add(out.C1, ks1, out.C1)
	return out, nil
}

// tensor computes the scaled tensor product: three polynomials
// (d0, d1, d2) over Q with d0, d1 in the NTT domain and d2 in the
// coefficient domain, such that d0 + d1·s + d2·s² ≈ Δ·m_a·m_b.
// d0 and d1 are freshly allocated (they escape into the product
// ciphertext); d2 and all intermediates live in the evaluator scratch and
// are only valid until the next tensor call.
func (ev *Evaluator) tensor(a, b *Ciphertext) (d0, d1, d2 ring.Poly) {
	ctx := ev.ctx
	rq, rqb := ctx.RingQ, ctx.RingQB
	sc := ev.tensorScratch()

	// Move operands to the coefficient domain, extend to basis QB.
	ext := func(p ring.Poly, e ring.Poly) {
		c := sc.cq
		p.CopyTo(c)
		rq.INTT(c)
		ctx.BasisQ.ExtendPoly(c, ctx.BasisQB, e)
		rqb.NTT(e)
	}
	a0, a1, b0, b1 := sc.eqb[0], sc.eqb[1], sc.eqb[2], sc.eqb[3]
	ext(a.C0, a0)
	ext(a.C1, a1)
	ext(b.C0, b0)
	ext(b.C1, b1)

	t0, t1, t2 := sc.tqb[0], sc.tqb[1], sc.tqb[2]
	rqb.MulCoeffs(a0, b0, t0)
	rqb.MulCoeffs(a0, b1, t1)
	rqb.MulCoeffsAndAdd(a1, b0, t1)
	rqb.MulCoeffs(a1, b1, t2)
	rqb.INTT(t0)
	rqb.INTT(t1)
	rqb.INTT(t2)

	// Scale each by t/Q and round, landing back in basis Q.
	d0 = rq.NewPoly()
	d1 = rq.NewPoly()
	d2 = sc.d2
	ctx.BasisQB.ScaleAndRound(t0, ctx.TBig, ctx.QBig, ctx.BasisQ, d0)
	ctx.BasisQB.ScaleAndRound(t1, ctx.TBig, ctx.QBig, ctx.BasisQ, d1)
	ctx.BasisQB.ScaleAndRound(t2, ctx.TBig, ctx.QBig, ctx.BasisQ, d2)
	rq.NTT(d0)
	rq.NTT(d1)
	return d0, d1, d2
}

// keySwitchCoeff applies a switching key to a coefficient-domain
// polynomial p, returning the NTT-domain pair (ks0, ks1) with
// ks0 + ks1·s ≈ p·target. The returned polynomials are evaluator scratch:
// callers must consume them before the next keyswitching call.
//
//lint:noalloc
func (ev *Evaluator) keySwitchCoeff(p ring.Poly, swk *SwitchingKey) (ring.Poly, ring.Poly) {
	ctx := ev.ctx
	rq := ctx.RingQ
	sc := ev.ksScratch()
	d, ks0, ks1 := sc.digit, sc.ks0, sc.ks1
	// Generated and deserialized keys carry Shoup companions; keys built
	// by hand without them fall back to the Barrett product.
	useShoup := swk.BShoup != nil
	for i := 0; i < ctx.BasisQ.Len(); i++ {
		// ksDigitInv is QiHatInv at the chain's own level; reduced-level
		// contexts carry the correction for full-chain key components.
		ctx.BasisQ.DecomposeDigitScaledInto(p, i, ctx.ksDigitInv[i], ctx.ksDigitInvShoup[i], d)
		rq.NTT(d)
		switch {
		case useShoup && i == 0:
			rq.MulCoeffsShoup(d, swk.B[i], swk.BShoup[i], ks0)
			rq.MulCoeffsShoup(d, swk.A[i], swk.AShoup[i], ks1)
		case useShoup:
			rq.MulCoeffsShoupAndAdd(d, swk.B[i], swk.BShoup[i], ks0)
			rq.MulCoeffsShoupAndAdd(d, swk.A[i], swk.AShoup[i], ks1)
		case i == 0:
			rq.MulCoeffs(d, swk.B[i], ks0)
			rq.MulCoeffs(d, swk.A[i], ks1)
		default:
			rq.MulCoeffsAndAdd(d, swk.B[i], ks0)
			rq.MulCoeffsAndAdd(d, swk.A[i], ks1)
		}
	}
	return ks0, ks1
}

// Automorphism applies X -> X^g to the ciphertext and keyswitches back to
// the original secret. Requires the Galois key for g.
func (ev *Evaluator) Automorphism(ct *Ciphertext, g uint64) (*Ciphertext, error) {
	out := ev.ctx.NewCiphertext()
	if err := ev.AutomorphismInto(ct, g, out); err != nil {
		return nil, err
	}
	return out, nil
}

// AutomorphismInto is Automorphism writing into a caller-provided
// ciphertext; out may alias ct (ct is consumed into scratch before out
// is written). The permutation table for g is cached after first use,
// so steady-state calls do not allocate.
//
//lint:noalloc
func (ev *Evaluator) AutomorphismInto(ct *Ciphertext, g uint64, out *Ciphertext) error {
	if g == 1 {
		ct.CopyTo(out)
		return nil
	}
	if ev.keys == nil {
		return fmt.Errorf("bfv: Automorphism requires galois keys")
	}
	gk, err := ev.keys.GaloisKeyFor(g)
	if err != nil {
		return err
	}
	ctx := ev.ctx
	rq := ctx.RingQ

	sc := ev.sc
	if sc.aq[0].Level() == 0 {
		for i := range sc.aq {
			sc.aq[i] = rq.NewPoly() //lint:allow noalloc one-time lazy arena fill, reused across calls
		}
	}
	c0, c1, p0, p1 := sc.aq[0], sc.aq[1], sc.aq[2], sc.aq[3]
	ct.C0.CopyTo(c0)
	ct.C1.CopyTo(c1)
	rq.INTT(c0)
	rq.INTT(c1)
	t := ev.autoIndex(g)
	rq.AutomorphismWithIndex(c0, t.dst, t.neg, p0)
	rq.AutomorphismWithIndex(c1, t.dst, t.neg, p1)

	// φ(ct) decrypts under φ(s); switch the C1 part back to s.
	ks0, ks1 := ev.keySwitchCoeff(p1, &gk.SwitchingKey)
	rq.NTT(p0)
	rq.Add(p0, ks0, out.C0)
	ks1.CopyTo(out.C1)
	return nil
}

// RotateRows rotates both slot rows left by k (slot i receives the value
// previously at slot i+k within each row of N/2). Requires the Galois key
// for 5^k.
func (ev *Evaluator) RotateRows(ct *Ciphertext, k int) (*Ciphertext, error) {
	g := ring.GaloisElementForRotation(ev.ctx.N, k)
	return ev.Automorphism(ct, g)
}

// RotateRowsInto is RotateRows writing into a caller-provided
// ciphertext; out may alias ct. Requires the Galois key for 5^k.
//
//lint:noalloc
func (ev *Evaluator) RotateRowsInto(ct *Ciphertext, k int, out *Ciphertext) error {
	g := ring.GaloisElementForRotation(ev.ctx.N, k)
	return ev.AutomorphismInto(ct, g, out)
}

// RotateColumns swaps the two slot rows (conjugation). Requires the
// Galois key for 2N-1.
func (ev *Evaluator) RotateColumns(ct *Ciphertext) (*Ciphertext, error) {
	return ev.Automorphism(ct, ring.GaloisElementConjugate(ev.ctx.N))
}

// RotationGaloisElements returns the Galois elements needed to rotate by
// each k in ks (deduplicated), for key generation.
func RotationGaloisElements(ctx *Context, ks []int) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, k := range ks {
		g := ring.GaloisElementForRotation(ctx.N, k)
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}
