package bfv

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// malformedKit builds a small context and a serialized ciphertext blob
// for corruption tests. Byte layout (all little-endian u64): header is
// magic, version, logN, limbs, t at offsets 0..32; then per polynomial a
// limb count at 40, the first limb's length at 48, and its first
// coefficient at 56.
func malformedBlob(tb testing.TB) (*Context, []byte) {
	tb.Helper()
	k := newTestKit(tb, 5, 3, nil)
	vals := randVals(k.ctx.N, 900, 61)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(vals))
	var buf bytes.Buffer
	if err := k.ctx.WriteCiphertext(ct, &buf); err != nil {
		tb.Fatal(err)
	}
	return k.ctx, buf.Bytes()
}

// checkWireInvariants asserts that a successfully decoded ciphertext has
// every residue inside its limb's modulus range.
func checkWireInvariants(t *testing.T, ctx *Context, ct *Ciphertext) {
	t.Helper()
	for _, p := range []struct {
		name string
		c    [][]uint64
	}{{"c0", ct.C0.Coeffs}, {"c1", ct.C1.Coeffs}} {
		for i, limb := range p.c {
			q := ctx.RingQ.Moduli[i].Q
			for j, c := range limb {
				if c >= q {
					t.Fatalf("decoded %s limb %d coeff %d is %d, outside [0, %d)", p.name, i, j, c, q)
				}
			}
		}
	}
}

// Every proper prefix of a valid blob must be rejected with an error.
func TestBFVWireTruncation(t *testing.T) {
	ctx, blob := malformedBlob(t)
	// Sweeping all ~2·N·limbs·8 prefixes re-parses the header each time;
	// step through word boundaries plus a ragged tail to keep it fast.
	for l := 0; l < len(blob); l += 7 {
		if _, err := ctx.ReadCiphertext(bytes.NewReader(blob[:l])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", l, len(blob))
		}
	}
	if _, err := ctx.ReadCiphertext(bytes.NewReader(blob[:len(blob)-1])); err == nil {
		t.Fatal("blob short one byte accepted")
	}
}

// Single-bit corruption must yield an error or a ciphertext whose
// residues are still in range — never a panic, never an out-of-range limb.
func TestBFVWireBitFlips(t *testing.T) {
	ctx, blob := malformedBlob(t)
	// Flip one bit per byte over the header and the start of the payload,
	// then sample the remainder; exhaustive 8×len(blob) decoding of a
	// multi-KB blob is fuzzing's job (FuzzBFVReadCiphertext below).
	for off := 0; off < len(blob); off++ {
		if off > 128 && off%17 != 0 {
			continue
		}
		mut := append([]byte(nil), blob...)
		mut[off] ^= 1 << (off % 8)
		ct, err := ctx.ReadCiphertext(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		checkWireInvariants(t, ctx, ct)
	}
}

// An out-of-range residue in the payload must be rejected at the trust
// boundary rather than silently corrupting downstream NTT arithmetic.
func TestBFVWireRejectsOutOfRangeCoefficient(t *testing.T) {
	ctx, blob := malformedBlob(t)
	mut := append([]byte(nil), blob...)
	// First coefficient of the first limb lives at offset 56.
	binary.LittleEndian.PutUint64(mut[56:], ^uint64(0))
	if _, err := ctx.ReadCiphertext(bytes.NewReader(mut)); err == nil {
		t.Fatal("all-ones coefficient accepted")
	}
	// Exactly q is also out of range ([0, q) is half-open).
	mut2 := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint64(mut2[56:], ctx.RingQ.Moduli[0].Q)
	if _, err := ctx.ReadCiphertext(bytes.NewReader(mut2)); err == nil {
		t.Fatal("coefficient equal to q accepted")
	}
	// q-1 stays in range, so only the patched word may trigger a failure.
	mut3 := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint64(mut3[56:], ctx.RingQ.Moduli[0].Q-1)
	if ct, err := ctx.ReadCiphertext(bytes.NewReader(mut3)); err != nil {
		t.Fatalf("in-range coefficient rejected: %v", err)
	} else {
		checkWireInvariants(t, ctx, ct)
	}
}

// A limb-count word that disagrees with the context must fail before any
// allocation proportional to the wire value.
func TestBFVWireRejectsBadLimbStructure(t *testing.T) {
	ctx, blob := malformedBlob(t)
	patch := func(off int, v uint64) []byte {
		mut := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint64(mut[off:], v)
		return mut
	}
	cases := map[string][]byte{
		"zero limbs":      patch(40, 0),
		"huge limb count": patch(40, 1<<40),
		"zero limb len":   patch(48, 0),
		"huge limb len":   patch(48, 1<<40),
	}
	for name, mut := range cases {
		if _, err := ctx.ReadCiphertext(bytes.NewReader(mut)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// FuzzBFVReadCiphertext: arbitrary bytes must decode to an error or an
// in-range ciphertext — never a panic.
func FuzzBFVReadCiphertext(f *testing.F) {
	ctx, blob := malformedBlob(f)
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:40])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := ctx.ReadCiphertext(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkWireInvariants(t, ctx, ct)
	})
}
