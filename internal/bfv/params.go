// Package bfv implements the Brakerski/Fan-Vercauteren scheme over the
// RNS rings of package ring: exact integer homomorphic encryption with
// plaintext space Z_t[X]/(X^N+1). It provides the operations the Athena
// framework needs — homomorphic addition, plaintext and scalar
// multiplication, ciphertext-ciphertext multiplication with
// relinearization, Galois automorphisms (slot rotations), batching, and
// modulus switching — with exact big-integer scale-and-round on the cold
// paths so that test-scale results are bit-identical to the plaintext
// computation.
package bfv

import (
	"fmt"
	"math/big"
	"sync"

	"athena/internal/ring"
	"athena/internal/rns"
)

// Parameters fixes a BFV instance. T must be prime; batching additionally
// requires T ≡ 1 (mod 2N).
type Parameters struct {
	LogN  int      // ring degree N = 2^LogN
	Qi    []uint64 // ciphertext modulus chain (NTT-friendly primes)
	T     uint64   // plaintext modulus
	Sigma float64  // error standard deviation
}

// Context carries the precomputed state for a parameter set. It is
// immutable after construction and safe for concurrent use.
type Context struct {
	Params Parameters

	N     int
	RingQ *ring.Ring // ciphertext ring, modulus Q
	RingT *ring.Ring // plaintext ring, modulus t (single limb)

	BasisQ  *rns.Basis
	TMod    ring.Modulus
	Delta   *big.Int // floor(Q/t)
	DeltaQi []uint64 // Δ mod q_i
	TBig    *big.Int
	QBig    *big.Int

	// Tensor-product machinery: the extended basis QB ⊃ Q large enough
	// that the centered tensor product never wraps.
	RingQB  *ring.Ring
	BasisQB *rns.Basis

	// Keyswitch digit constants: digit i of the CRT decomposition is
	// multiplied by ksDigitInv[i] (Shoup companion alongside). At the
	// chain's own level these are the basis QiHatInv; reduced-level
	// children built by AtLevel override them with the correction that
	// accounts for key material generated over the full chain.
	ksDigitInv      []uint64
	ksDigitInvShoup []uint64

	// Reduced-level contexts derived by AtLevel, built once on demand.
	levelMu    sync.Mutex
	levelCache []*Context

	batching bool
	slotIdx  []int // slot i lives at plaintext coefficient slotIdx[i]
}

// NewContext validates params and precomputes every table.
func NewContext(p Parameters) (*Context, error) {
	if p.LogN < 2 || p.LogN > 16 {
		return nil, fmt.Errorf("bfv: logN %d out of range", p.LogN)
	}
	if p.Sigma <= 0 {
		p.Sigma = ring.DefaultSigma
	}
	if !ring.IsPrime(p.T) {
		return nil, fmt.Errorf("bfv: plaintext modulus %d must be prime", p.T)
	}
	rq, err := ring.NewRing(p.LogN, p.Qi)
	if err != nil {
		return nil, fmt.Errorf("bfv: ciphertext ring: %w", err)
	}
	c := &Context{
		Params: p,
		N:      rq.N,
		RingQ:  rq,
		BasisQ: rns.NewBasis(p.Qi),
		TMod:   ring.NewModulus(p.T),
		TBig:   new(big.Int).SetUint64(p.T),
	}
	c.QBig = c.BasisQ.Q
	c.Delta = new(big.Int).Div(c.QBig, c.TBig)
	c.DeltaQi = c.BasisQ.ScalarMod(c.Delta)

	// At the chain's own level the keyswitch digit constants are exactly
	// the CRT inverses; AtLevel children replace them (see level.go).
	c.ksDigitInv = append([]uint64(nil), c.BasisQ.QiHatInv...)
	c.ksDigitInvShoup = make([]uint64, len(c.ksDigitInv))
	for i, m := range c.BasisQ.Moduli {
		c.ksDigitInvShoup[i] = m.ShoupPrecomp(c.ksDigitInv[i])
	}

	// Extended basis for tensor products: need prod(QB) > N·Q²
	// (centered products bounded by N·(Q/2)², doubled for sign headroom).
	extraBits := c.QBig.BitLen() + p.LogN + 2
	extCount := (extraBits+58)/59 + 1
	ext, err := ring.GenerateNTTPrimes(59, p.LogN, extCount+len(p.Qi))
	if err != nil {
		return nil, fmt.Errorf("bfv: tensor primes: %w", err)
	}
	used := make(map[uint64]bool, len(p.Qi))
	for _, q := range p.Qi {
		used[q] = true
	}
	qb := append([]uint64(nil), p.Qi...)
	for _, q := range ext {
		if len(qb) == len(p.Qi)+extCount {
			break
		}
		if !used[q] {
			qb = append(qb, q)
		}
	}
	if len(qb) != len(p.Qi)+extCount {
		return nil, fmt.Errorf("bfv: not enough distinct tensor primes")
	}
	c.RingQB, err = ring.NewRing(p.LogN, qb)
	if err != nil {
		return nil, fmt.Errorf("bfv: tensor ring: %w", err)
	}
	c.BasisQB = rns.NewBasis(qb)

	// Batching requires t ≡ 1 (mod 2N) so Z_t[X]/(X^N+1) splits fully;
	// 2N is a power of two, so the congruence is a mask test.
	if (p.T-1)&uint64(2*c.N-1) == 0 {
		c.batching = true
		rt, err := ring.NewRing(p.LogN, []uint64{p.T})
		if err != nil {
			return nil, fmt.Errorf("bfv: plaintext ring: %w", err)
		}
		c.RingT = rt
		c.slotIdx = buildSlotIndex(c.N, p.LogN)
	}
	return c, nil
}

// buildSlotIndex maps slot positions to plaintext NTT positions following
// the standard two-row hypercube layout: row 0 holds slots 0..N/2-1 at
// the orbit of the evaluation point under X -> X^5, row 1 its conjugates.
func buildSlotIndex(n, logN int) []int {
	idx := make([]int, n)
	m := uint64(n) << 1
	rowSize := n >> 1
	pos := uint64(1)
	for i := 0; i < rowSize; i++ {
		index1 := (pos - 1) >> 1
		index2 := (m - pos - 1) >> 1
		idx[i] = int(bitrev(index1, logN))
		idx[i|rowSize] = int(bitrev(index2, logN))
		pos = ring.GaloisCompose(n, pos, ring.GaloisGen)
	}
	return idx
}

func bitrev(x uint64, bitLen int) uint64 {
	var r uint64
	for i := 0; i < bitLen; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// Batching reports whether this context supports slot encoding.
func (c *Context) Batching() bool { return c.batching }

// SlotIndex returns a copy of the slot-to-coefficient-position table:
// slot i of the batched plaintext lives at NTT position SlotIndex()[i] of
// the mod-t transform. Package pack uses it to build homomorphic linear
// transforms between the two encodings.
func (c *Context) SlotIndex() []int {
	return append([]int(nil), c.slotIdx...)
}

// Slots returns the usable slot count per row (N/2); the full plaintext
// carries two rows.
func (c *Context) Slots() int { return c.N / 2 }

// CiphertextSizeBytes returns the byte size of a fresh 2-poly ciphertext
// at full level (the metric Table 1 reports).
func (c *Context) CiphertextSizeBytes() int {
	return 2 * c.N * len(c.Params.Qi) * 8
}

// LogQ returns the total ciphertext modulus size in bits.
func (c *Context) LogQ() int { return c.QBig.BitLen() }
