package bfv

import (
	"bytes"
	"testing"
)

// TestAtLevelIdentityAndCache pins the AtLevel contract: the full level
// returns the context itself, reduced levels are built once and cached,
// and out-of-range levels error.
func TestAtLevelIdentityAndCache(t *testing.T) {
	ctx := testContext(t, 6, 4)
	if got, err := ctx.AtLevel(4); err != nil || got != ctx {
		t.Fatalf("AtLevel(full) = (%p, %v), want the context itself", got, err)
	}
	c2, err := ctx.AtLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Level() != 2 || len(c2.Params.Qi) != 2 {
		t.Fatalf("child level %d", c2.Level())
	}
	for i, q := range c2.Params.Qi {
		if q != ctx.Params.Qi[i] {
			t.Fatalf("child modulus %d is %d, want prefix %d", i, q, ctx.Params.Qi[i])
		}
	}
	again, err := ctx.AtLevel(2)
	if err != nil || again != c2 {
		t.Fatalf("AtLevel(2) not cached: (%p vs %p, %v)", again, c2, err)
	}
	for _, bad := range []int{0, -1, 5} {
		if _, err := ctx.AtLevel(bad); err == nil {
			t.Fatalf("AtLevel(%d) should error", bad)
		}
	}
}

// TestModDownDecryptEquivalence is the round-trip property pin: dropping
// to every reachable level preserves the decrypted plaintext exactly and
// leaves a positive noise budget. This is the invariant the engine's
// level schedule rides on.
func TestModDownDecryptEquivalence(t *testing.T) {
	k := newTestKit(t, 6, 4, nil)
	vals := randVals(k.ctx.N, 1000, 7)
	want := k.cod.DecodeCoeffs(k.dec.Decrypt(k.enc.Encrypt(k.cod.EncodeCoeffs(vals))))
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(vals))
	for L := k.ctx.Level() - 1; L >= 2; L-- {
		down, err := k.ctx.ModDown(ct, L)
		if err != nil {
			t.Fatal(err)
		}
		if down.Level() != L {
			t.Fatalf("ModDown to %d produced level %d", L, down.Level())
		}
		got := k.cod.DecodeCoeffs(k.dec.Decrypt(down))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("level %d coeff %d: got %d want %d", L, i, got[i], want[i])
			}
		}
		if b := k.dec.NoiseBudget(down); b <= 0 {
			t.Fatalf("level %d budget %v", L, b)
		}
	}
}

// TestModDownChainedEqualsDirect checks stepping down one level at a
// time decrypts identically to the direct drop (the rescale roundings
// differ by at most the footprint the budget absorbs).
func TestModDownChainedEqualsDirect(t *testing.T) {
	k := newTestKit(t, 6, 4, nil)
	vals := randVals(k.ctx.N, 500, 11)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(vals))
	step := ct
	var err error
	for L := k.ctx.Level() - 1; L >= 2; L-- {
		if step, err = k.ctx.ModDown(step, L); err != nil {
			t.Fatal(err)
		}
	}
	direct, err := k.ctx.ModDown(ct, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := k.cod.DecodeCoeffs(k.dec.Decrypt(step))
	b := k.cod.DecodeCoeffs(k.dec.Decrypt(direct))
	for i := range a {
		if a[i] != b[i] || a[i] != vals[i] {
			t.Fatalf("coeff %d: chained %d direct %d want %d", i, a[i], b[i], vals[i])
		}
	}
}

// TestModDownEdgeCases: same level is a no-op returning the argument,
// raising errors.
func TestModDownEdgeCases(t *testing.T) {
	k := newTestKit(t, 6, 3, nil)
	ct := k.enc.EncryptZero()
	same, err := k.ctx.ModDown(ct, ct.Level())
	if err != nil || same != ct {
		t.Fatalf("same-level ModDown = (%p, %v), want the argument back", same, err)
	}
	down, err := k.ctx.ModDown(ct, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.ctx.ModDown(down, 3); err == nil {
		t.Fatal("raising a level should error")
	}
}

// TestReducedLevelArithmetic runs the evaluator over a reduced-level
// context with full-chain keys: plaintext multiply, ciphertext multiply
// with relinearization, and additions must all decrypt to the mod-t
// reference. This pins the prefix-slicing contract (full-level key polys
// against reduced-limb operands) end to end.
func TestReducedLevelArithmetic(t *testing.T) {
	k := newTestKit(t, 6, 4, nil)
	ctx2, err := k.ctx.AtLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	ev2 := NewEvaluator(ctx2, k.ev.Keys())
	cod2 := NewEncoder(ctx2)

	va := randVals(k.ctx.N, 50, 21)
	vb := randVals(k.ctx.N, 50, 22)
	ca, err := k.ctx.ModDown(k.enc.Encrypt(k.cod.EncodeCoeffs(va)), 2)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := k.ctx.ModDown(k.enc.Encrypt(k.cod.EncodeCoeffs(vb)), 2)
	if err != nil {
		t.Fatal(err)
	}

	tm := k.ctx.TMod

	// Exact reference through a scalar plaintext: multiply by the
	// constant polynomial 3 and add cb.
	three := make([]int64, k.ctx.N)
	three[0] = 3
	lin := ev2.MulPlain(ca, cod2.LiftToMul(cod2.EncodeCoeffs(three)))
	lin = ev2.Add(lin, cb)
	gotLin := k.cod.DecodeCoeffs(k.dec.Decrypt(lin))
	for i := range va {
		if want := 3*va[i] + vb[i]; gotLin[i] != want {
			t.Fatalf("coeff %d: got %d want %d", i, gotLin[i], want)
		}
	}

	// Ciphertext-ciphertext multiply with relinearization at level 2,
	// checked against the plaintext negacyclic product mod t.
	cc, err := ev2.Mul(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	gotCC := k.dec.Decrypt(cc)
	ref := negacyclicModT(va, vb, tm)
	for i := range ref {
		if gotCC.Coeffs[i] != ref[i] {
			t.Fatalf("ct-ct coeff %d: got %d want %d", i, gotCC.Coeffs[i], ref[i])
		}
	}
	if b := k.dec.NoiseBudget(cc); b <= 0 {
		t.Fatalf("post-multiply budget %v", b)
	}
}

// negacyclicModT computes the negacyclic polynomial product of a and b
// over Z_t.
func negacyclicModT(a, b []int64, tm interface {
	ReduceInt64(int64) uint64
	Mul(uint64, uint64) uint64
	Add(uint64, uint64) uint64
	Sub(uint64, uint64) uint64
}) []uint64 {
	n := len(a)
	out := make([]uint64, n)
	for i := range a {
		ai := tm.ReduceInt64(a[i])
		for j := range b {
			p := tm.Mul(ai, tm.ReduceInt64(b[j]))
			k := i + j
			if k < n {
				out[k] = tm.Add(out[k], p)
			} else {
				out[k-n] = tm.Sub(out[k-n], p)
			}
		}
	}
	return out
}

// TestReducedLevelAutomorphism checks slot rotation via full-chain
// Galois keys on a reduced-level ciphertext: the level-corrected digit
// decomposition must reproduce the full-level rotation exactly.
func TestReducedLevelAutomorphism(t *testing.T) {
	k := newTestKit(t, 6, 4, []int{1})
	if !k.ctx.Batching() {
		t.Skip("batching unavailable")
	}
	vals := randVals(k.ctx.N, 100, 31)
	ct := k.enc.Encrypt(k.cod.EncodeSlots(vals))

	wantCT, err := k.ev.RotateRows(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := k.cod.DecodeSlots(k.dec.Decrypt(wantCT))

	ctx2, err := k.ctx.AtLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	ev2 := NewEvaluator(ctx2, k.ev.Keys())
	down, err := k.ctx.ModDown(ct, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotCT, err := ev2.RotateRows(down, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gotCT.Level() != 2 {
		t.Fatalf("rotation raised level to %d", gotCT.Level())
	}
	got := k.cod.DecodeSlots(k.dec.Decrypt(gotCT))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// TestReducedLevelSwitchModulus checks the Athena step-② rescale accepts
// a reduced-level ciphertext and produces the same mod-q2 output as the
// full-level path up to the rescale rounding (decryptable equality at
// the q2 scale is pinned by the core engine tests; here we pin that the
// call dispatches and the scale survives).
func TestReducedLevelSwitchModulus(t *testing.T) {
	k := newTestKit(t, 6, 4, nil)
	vals := randVals(k.ctx.N, 100, 41)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(vals))
	down, err := k.ctx.ModDown(ct, 2)
	if err != nil {
		t.Fatal(err)
	}
	q2 := k.ctx.Params.T << 12
	a, b, err := k.ctx.SwitchModulus(down, q2)
	if err != nil {
		t.Fatal(err)
	}
	// Recover the message from the (a, b) pair: the phase b + a·s over
	// Z_q2 holds m at scale q2/t, so rounding by t/q2 must return vals.
	n := k.ctx.N
	s := k.sk.Signed
	tmod := k.ctx.Params.T
	q2i := int64(q2)
	center := func(x uint64) int64 {
		v := int64(x)
		if v > q2i/2 {
			v -= q2i
		}
		return v
	}
	phase := make([]int64, n)
	for i := 0; i < n; i++ {
		ai := center(a[i])
		for j := 0; j < n; j++ {
			p := ai * s[j]
			if kidx := i + j; kidx < n {
				phase[kidx] += p
			} else {
				phase[kidx-n] -= p
			}
		}
	}
	scale := q2i / int64(tmod)
	for j := 0; j < n; j++ {
		ph := (phase[j]%q2i + center(b[j])) % q2i
		if ph > q2i/2 {
			ph -= q2i
		} else if ph < -q2i/2 {
			ph += q2i
		}
		num := ph + scale/2
		m := num / scale
		if num < 0 && num%scale != 0 {
			m-- // floor division: Go truncates toward zero
		}
		mm := m % int64(tmod)
		if mm < 0 {
			mm += int64(tmod)
		}
		want := vals[j] % int64(tmod)
		if want < 0 {
			want += int64(tmod)
		}
		if mm != want {
			t.Fatalf("coeff %d: rescaled phase decodes to %d, want %d", j, mm, want)
		}
	}
	if len(a) != n || len(b) != n {
		t.Fatalf("rescaled pair has lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] >= q2 || b[i] >= q2 {
			t.Fatalf("coefficient %d outside [0, q2)", i)
		}
	}
}

// TestCiphertextWireRoundTripReducedLevel pins the level-aware wire
// format: a reduced-level ciphertext serializes with its own limb count
// and round-trips bit-identically through the full-level context.
func TestCiphertextWireRoundTripReducedLevel(t *testing.T) {
	k := newTestKit(t, 6, 4, nil)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(randVals(k.ctx.N, 100, 51)))
	down, err := k.ctx.ModDown(ct, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := k.ctx.WriteCiphertext(down, &buf); err != nil {
		t.Fatal(err)
	}
	full := 2 * k.ctx.N * len(k.ctx.Params.Qi) * 8
	if buf.Len() >= full {
		t.Fatalf("reduced ciphertext serialized to %d bytes, not below full-level %d", buf.Len(), full)
	}
	got, err := k.ctx.ReadCiphertext(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level() != 2 {
		t.Fatalf("round-trip level %d", got.Level())
	}
	if !got.C0.Equal(down.C0) || !got.C1.Equal(down.C1) {
		t.Fatal("round-trip not bit-identical")
	}
}
