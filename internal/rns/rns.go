// Package rns provides the exact cross-limb arithmetic that complements
// the word-sized RNS representation in package ring: CRT reconstruction
// to big integers, reduction back to residues, basis extension, the
// scale-and-round operations at the heart of BFV multiplication and
// decryption, and the CRT digit decomposition used by keyswitching.
//
// Everything here is exact big.Int arithmetic. It trades speed for
// correctness on the cold paths (decryption, modulus switching, the
// tensor-product rescale); the hot paths stay in package ring.
package rns

import (
	"fmt"
	"math/big"
	"math/bits"

	"athena/internal/par"
	"athena/internal/ring"
)

// Basis is a CRT basis: a set of pairwise-coprime word-sized primes with
// the precomputed constants for reconstruction and decomposition.
type Basis struct {
	Moduli []ring.Modulus
	Q      *big.Int   // product of all moduli
	QHalf  *big.Int   // floor(Q/2)
	QiHat  []*big.Int // Q / q_i
	// QiHatInv[i] = (Q/q_i)^-1 mod q_i.
	QiHatInv []uint64
	// qiHatInvShoup[i] is the Shoup companion of QiHatInv[i] mod q_i,
	// precomputed for the digit-decomposition hot path.
	qiHatInvShoup []uint64
}

// NewBasis builds a basis from the given moduli (need not be sorted; must
// be pairwise coprime, which holds for distinct primes).
func NewBasis(moduli []uint64) *Basis {
	if len(moduli) == 0 {
		panic("rns: empty basis")
	}
	b := &Basis{
		Moduli:        make([]ring.Modulus, len(moduli)),
		Q:             big.NewInt(1),
		QiHat:         make([]*big.Int, len(moduli)),
		QiHatInv:      make([]uint64, len(moduli)),
		qiHatInvShoup: make([]uint64, len(moduli)),
	}
	for i, q := range moduli {
		b.Moduli[i] = ring.NewModulus(q)
		b.Q.Mul(b.Q, new(big.Int).SetUint64(q))
	}
	b.QHalf = new(big.Int).Rsh(b.Q, 1)
	for i, q := range moduli {
		b.QiHat[i] = new(big.Int).Div(b.Q, new(big.Int).SetUint64(q))
		hatMod := new(big.Int).Mod(b.QiHat[i], new(big.Int).SetUint64(q)).Uint64()
		b.QiHatInv[i] = b.Moduli[i].Inv(hatMod)
		b.qiHatInvShoup[i] = b.Moduli[i].ShoupPrecomp(b.QiHatInv[i])
	}
	return b
}

// Values returns the raw moduli.
func (b *Basis) Values() []uint64 {
	qs := make([]uint64, len(b.Moduli))
	for i, m := range b.Moduli {
		qs[i] = m.Q
	}
	return qs
}

// Len returns the number of limbs.
func (b *Basis) Len() int { return len(b.Moduli) }

// Reconstruct converts residues (one per limb) to the unique value in
// [0, Q). The result is written into out, which is returned.
func (b *Basis) Reconstruct(residues []uint64, out *big.Int) *big.Int {
	if len(residues) != len(b.Moduli) {
		panic(fmt.Sprintf("rns: %d residues for %d-limb basis", len(residues), len(b.Moduli)))
	}
	out.SetUint64(0)
	var term big.Int
	for i, x := range residues {
		// v += ((x · QiHatInv_i) mod q_i) · QiHat_i
		c := b.Moduli[i].MulShoup(x, b.QiHatInv[i], b.qiHatInvShoup[i])
		term.SetUint64(c)
		term.Mul(&term, b.QiHat[i])
		out.Add(out, &term)
	}
	// The sum is < L·Q (each term is < q_i·QiHat_i = Q), so at most L-1
	// cheap subtractions replace a full big-integer division.
	for out.Cmp(b.Q) >= 0 {
		out.Sub(out, b.Q)
	}
	return out
}

// ReconstructCentered is Reconstruct followed by centering into
// [-Q/2, Q/2).
func (b *Basis) ReconstructCentered(residues []uint64, out *big.Int) *big.Int {
	b.Reconstruct(residues, out)
	if out.Cmp(b.QHalf) > 0 {
		out.Sub(out, b.Q)
	}
	return out
}

// wordIs64 selects the fast word-wise reduction path: big.Word matches
// uint64 on 64-bit targets, so v.Bits() can feed Barrett directly.
const wordIs64 = bits.UintSize == 64

// reduceBig returns v mod q in [0, q), including for negative v, by
// Horner evaluation of v's words in base 2^64 under Barrett reduction —
// no big.Int division, no allocation.
func reduceBig(m ring.Modulus, v *big.Int) uint64 {
	var r uint64
	words := v.Bits()
	for w := len(words) - 1; w >= 0; w-- {
		r = m.ReduceWide(r, uint64(words[w]))
	}
	if r != 0 && v.Sign() < 0 {
		r = m.Q - r
	}
	return r
}

// Reduce writes v mod q_i into out[i] for every limb. v may be negative.
func (b *Basis) Reduce(v *big.Int, out []uint64) {
	if wordIs64 {
		for i, m := range b.Moduli {
			out[i] = reduceBig(m, v)
		}
		return
	}
	var r big.Int
	var q big.Int
	for i, m := range b.Moduli {
		q.SetUint64(m.Q)
		r.Mod(v, &q) // Go's Mod is Euclidean: result in [0, q)
		out[i] = r.Uint64()
	}
}

// at gathers the i-th coefficient's residues from a poly into scratch.
func at(p ring.Poly, j int, scratch []uint64) []uint64 {
	for i := range p.Coeffs {
		scratch[i] = p.Coeffs[i][j]
	}
	return scratch
}

// ReconstructPoly maps every coefficient of p (coefficient domain) to its
// centered big-integer value.
func (b *Basis) ReconstructPoly(p ring.Poly) []*big.Int {
	n := len(p.Coeffs[0])
	out := make([]*big.Int, n)
	scratch := make([]uint64, b.Len())
	for j := 0; j < n; j++ {
		out[j] = b.ReconstructCentered(at(p, j, scratch), new(big.Int))
	}
	return out
}

// ReducePoly writes the values v into a polynomial over the basis,
// coefficient j receiving v[j] mod q_i in limb i. len(v) may be shorter
// than the polynomial; remaining coefficients are zeroed.
func (b *Basis) ReducePoly(v []*big.Int, p ring.Poly) {
	n := len(p.Coeffs[0])
	scratch := make([]uint64, b.Len())
	for j := 0; j < n; j++ {
		if j < len(v) {
			b.Reduce(v[j], scratch)
			for i := range p.Coeffs {
				p.Coeffs[i][j] = scratch[i]
			}
		} else {
			for i := range p.Coeffs {
				p.Coeffs[i][j] = 0
			}
		}
	}
}

// ExtendPoly exactly extends src (over basis b, coefficient domain) into
// dst (over basis target), interpreting each coefficient as its centered
// representative. Used to move tensor-product operands into a larger
// basis with no wraparound. Coefficients are processed in parallel.
func (b *Basis) ExtendPoly(src ring.Poly, target *Basis, dst ring.Poly) {
	n := len(src.Coeffs[0])
	par.Chunks(n, func(start, end int) {
		scratch := make([]uint64, b.Len())
		outScratch := make([]uint64, target.Len())
		var v big.Int
		for j := start; j < end; j++ {
			b.ReconstructCentered(at(src, j, scratch), &v)
			target.Reduce(&v, outScratch)
			for i := range dst.Coeffs {
				dst.Coeffs[i][j] = outScratch[i]
			}
		}
	})
}

// roundDiv returns round(num/den) for den > 0, rounding halves away from
// zero for non-negative num and toward zero for negative (i.e. standard
// floor((2·num+den)/(2·den)) rounding).
func roundDiv(num, den *big.Int) *big.Int {
	out := new(big.Int)
	roundDivInto(out, num, den, new(big.Int).Lsh(den, 1))
	return out
}

// roundDivInto is roundDiv with the output and the doubled denominator
// supplied by the caller, so per-coefficient loops reuse their scratch
// instead of allocating two big.Ints per division.
func roundDivInto(out, num, den, den2 *big.Int) {
	out.Lsh(num, 1)
	out.Add(out, den)
	out.Div(out, den2) // Euclidean floor division
}

// ScaleAndRound computes round(scaleNum · v / scaleDen) for each centered
// coefficient of p (over basis b), then reduces the result into out over
// basis target. This is the BFV "multiply by t/Q and round" primitive.
// Coefficients are processed in parallel.
func (b *Basis) ScaleAndRound(p ring.Poly, scaleNum, scaleDen *big.Int, target *Basis, out ring.Poly) {
	n := len(p.Coeffs[0])
	den2 := new(big.Int).Lsh(scaleDen, 1) // shared, read-only across workers
	par.Chunks(n, func(start, end int) {
		scratch := make([]uint64, b.Len())
		outScratch := make([]uint64, target.Len())
		var v, r big.Int
		for j := start; j < end; j++ {
			b.ReconstructCentered(at(p, j, scratch), &v)
			v.Mul(&v, scaleNum)
			roundDivInto(&r, &v, scaleDen, den2)
			target.Reduce(&r, outScratch)
			for i := range out.Coeffs {
				out.Coeffs[i][j] = outScratch[i]
			}
		}
	})
}

// ScaleAndRoundToUint computes round(scaleNum·v/scaleDen) mod outMod for
// each centered coefficient of p, writing word-sized results. Used for
// decryption (scale t/Q, reduce mod t) and modulus switching to a single
// word-sized modulus.
func (b *Basis) ScaleAndRoundToUint(p ring.Poly, scaleNum, scaleDen *big.Int, outMod uint64, out []uint64) {
	n := len(p.Coeffs[0])
	om, omErr := ring.TryNewModulus(outMod)
	useFast := wordIs64 && omErr == nil
	omBig := new(big.Int).SetUint64(outMod)
	den2 := new(big.Int).Lsh(scaleDen, 1) // shared, read-only across workers
	par.Chunks(n, func(start, end int) {
		scratch := make([]uint64, b.Len())
		var v, r big.Int
		for j := start; j < end; j++ {
			b.ReconstructCentered(at(p, j, scratch), &v)
			v.Mul(&v, scaleNum)
			roundDivInto(&r, &v, scaleDen, den2)
			if useFast {
				out[j] = reduceBig(om, &r)
			} else {
				r.Mod(&r, omBig)
				out[j] = r.Uint64()
			}
		}
	})
}

// DecomposeDigits performs the CRT digit decomposition used by RNS
// keyswitching: digit i is the word-sized polynomial
// d_i = [p · QiHatInv_i]_{q_i}, spread across all limbs of the basis so it
// can multiply a key component. p must be in the coefficient domain; the
// digits are returned in the coefficient domain.
func (b *Basis) DecomposeDigits(p ring.Poly, allocate func() ring.Poly) []ring.Poly {
	digits := make([]ring.Poly, b.Len())
	for i := range b.Moduli {
		d := allocate()
		b.DecomposeDigitInto(p, i, d)
		digits[i] = d
	}
	return digits
}

// DecomposeDigitInto computes digit i of the CRT decomposition of p into
// the caller-provided polynomial d (as many limbs as the basis, each of
// p's coefficient count) — the allocation-free core of DecomposeDigits.
// The digit value [p_i · QiHatInv_i]_{q_i} is computed once per
// coefficient into d's own i-th limb, then spread to the other limbs: a
// limb with q_l ≥ q_i takes a plain copy (the value is already reduced),
// smaller limbs take one vectorized Barrett pass.
func (b *Basis) DecomposeDigitInto(p ring.Poly, i int, d ring.Poly) {
	b.DecomposeDigitScaledInto(p, i, b.QiHatInv[i], b.qiHatInvShoup[i], d)
}

// DecomposeDigitScaledInto computes digit i of the CRT decomposition of p
// with a caller-supplied inverse constant in place of the basis's own
// QiHatInv_i: d = spread([p_i · inv]_{q_i}). Keyswitching against
// full-chain key material at a reduced level needs the corrected constant
// inv = [(Q_L/q_i)^{-1} · (Q/Q_L)^{-1}]_{q_i}, which makes the digits sum
// against the full-chain q̂_i back to p modulo the reduced Q_L.
// invShoup must be ShoupPrecomp(inv) for the i-th modulus.
func (b *Basis) DecomposeDigitScaledInto(p ring.Poly, i int, inv, invShoup uint64, d ring.Poly) {
	mi := b.Moduli[i]
	small := d.Coeffs[i] // digit mod q_i is the digit value itself
	mi.MulShoupVec(p.Coeffs[i], inv, invShoup, small)
	for l := range d.Coeffs {
		if l == i {
			continue
		}
		ml := b.Moduli[l]
		if ml.Q >= mi.Q {
			copy(d.Coeffs[l], small)
		} else {
			ml.ReduceVec(small, d.Coeffs[l])
		}
	}
}

// ScalarMod returns v mod q_i for every limb, for a big scalar v (e.g.
// Δ = floor(Q/t)).
func (b *Basis) ScalarMod(v *big.Int) []uint64 {
	out := make([]uint64, b.Len())
	b.Reduce(v, out)
	return out
}
