package rns

import (
	"math/big"
	"math/rand/v2"
	"testing"

	"athena/internal/ring"
)

func testBasis(t testing.TB, bits, logN, limbs int) *Basis {
	t.Helper()
	primes, err := ring.GenerateNTTPrimes(bits, logN, limbs)
	if err != nil {
		t.Fatal(err)
	}
	return NewBasis(primes)
}

func TestReconstructRoundTrip(t *testing.T) {
	b := testBasis(t, 50, 10, 4)
	rng := rand.New(rand.NewPCG(1, 1))
	res := make([]uint64, b.Len())
	back := make([]uint64, b.Len())
	var v big.Int
	for i := 0; i < 500; i++ {
		for j, m := range b.Moduli {
			res[j] = rng.Uint64N(m.Q)
		}
		b.Reconstruct(res, &v)
		if v.Sign() < 0 || v.Cmp(b.Q) >= 0 {
			t.Fatal("reconstructed value out of [0, Q)")
		}
		b.Reduce(&v, back)
		for j := range res {
			if res[j] != back[j] {
				t.Fatalf("round trip mismatch limb %d", j)
			}
		}
	}
}

func TestReconstructCentered(t *testing.T) {
	b := testBasis(t, 30, 8, 3)
	// Encode small signed values and confirm they come back exactly.
	vals := []int64{0, 1, -1, 12345, -12345, 1 << 40, -(1 << 40)}
	res := make([]uint64, b.Len())
	var v big.Int
	for _, want := range vals {
		bw := big.NewInt(want)
		b.Reduce(bw, res)
		b.ReconstructCentered(res, &v)
		if v.Int64() != want {
			t.Fatalf("centered reconstruct of %d gave %s", want, v.String())
		}
	}
}

func TestExtendPoly(t *testing.T) {
	primes, err := ring.GenerateNTTPrimes(45, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	bQ := NewBasis(primes[:3])
	bQB := NewBasis(primes)
	rQ, _ := ring.NewRing(6, primes[:3])
	rQB, _ := ring.NewRing(6, primes)

	// Small signed values must extend exactly.
	vals := make([]int64, rQ.N)
	rng := rand.New(rand.NewPCG(2, 2))
	for i := range vals {
		vals[i] = int64(rng.Uint64N(1<<30)) - (1 << 29)
	}
	p := rQ.NewPoly()
	rQ.SetCoeffsInt64(vals, p)
	ext := rQB.NewPoly()
	bQ.ExtendPoly(p, bQB, ext)
	for j, want := range vals {
		for l, m := range bQB.Moduli {
			if ext.Coeffs[l][j] != m.ReduceInt64(want) {
				t.Fatalf("extension mismatch coeff %d limb %d", j, l)
			}
		}
	}
}

func TestScaleAndRoundMatchesRational(t *testing.T) {
	b := testBasis(t, 40, 6, 3)
	r, _ := ring.NewRing(6, b.Values())
	tSmall := uint64(257)
	tb := new(big.Int).SetUint64(tSmall)

	rng := rand.New(rand.NewPCG(3, 3))
	p := r.NewPoly()
	// Random residues.
	for i, m := range b.Moduli {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = rng.Uint64N(m.Q)
		}
	}
	out := make([]uint64, r.N)
	b.ScaleAndRoundToUint(p, tb, b.Q, tSmall, out)

	// Oracle with big.Rat-free exact arithmetic.
	scratch := make([]uint64, b.Len())
	var v big.Int
	for j := 0; j < r.N; j++ {
		for i := range p.Coeffs {
			scratch[i] = p.Coeffs[i][j]
		}
		b.ReconstructCentered(scratch, &v)
		num := new(big.Int).Mul(&v, tb)
		num.Lsh(num, 1)
		num.Add(num, b.Q)
		den := new(big.Int).Lsh(b.Q, 1)
		num.Div(num, den)
		num.Mod(num, tb)
		if num.Uint64() != out[j] {
			t.Fatalf("coeff %d: got %d want %s", j, out[j], num.String())
		}
	}
}

func TestScaleAndRoundSmallCases(t *testing.T) {
	// Basis {17}: round(t·v/Q) with t=5, Q=17.
	b := NewBasis([]uint64{12289})
	r, _ := ring.NewRing(1, []uint64{12289})
	p := r.NewPoly()
	// v = 2458 ≈ Q/5: round(5·2458/12289) = round(1.00008) = 1.
	p.Coeffs[0][0] = 2458
	// v = 6144 ≈ Q/2: centered to 6144 (Q/2=6144.5) → round(5·6144/12289)=2.5.. → 2 or 3
	p.Coeffs[0][1] = 1229 // Q/10 → 0.50002 → rounds to 1 (half away from zero at ≥ .5)
	out := make([]uint64, r.N)
	b.ScaleAndRoundToUint(p, big.NewInt(5), b.Q, 5, out)
	if out[0] != 1 {
		t.Fatalf("got %d want 1", out[0])
	}
	if out[1] != 1 {
		t.Fatalf("got %d want 1 (round half up)", out[1])
	}
}

func TestDecomposeDigitsReconstruct(t *testing.T) {
	// Σ_i d_i · QiHat_i ≡ p (mod Q), coefficientwise.
	b := testBasis(t, 45, 5, 3)
	r, _ := ring.NewRing(5, b.Values())
	rng := rand.New(rand.NewPCG(4, 4))
	p := r.NewPoly()
	for i, m := range b.Moduli {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = rng.Uint64N(m.Q)
		}
	}
	digits := b.DecomposeDigits(p, r.NewPoly)
	if len(digits) != b.Len() {
		t.Fatalf("expected %d digits", b.Len())
	}
	// Recombine: for each limb l, Σ_i d_i[l][j]·(QiHat_i mod q_l) == p[l][j].
	for l, m := range b.Moduli {
		for j := 0; j < r.N; j++ {
			var acc uint64
			for i := range digits {
				hatMod := new(big.Int).Mod(b.QiHat[i], new(big.Int).SetUint64(m.Q)).Uint64()
				acc = m.Add(acc, m.Mul(digits[i].Coeffs[l][j], hatMod))
			}
			if acc != p.Coeffs[l][j] {
				t.Fatalf("limb %d coeff %d: recombined %d want %d", l, j, acc, p.Coeffs[l][j])
			}
		}
	}
	// Digits are small: every limb of a digit holds the same value < q_i.
	for i, d := range digits {
		qi := b.Moduli[i].Q
		for j := 0; j < r.N; j++ {
			v := d.Coeffs[0][j]
			if v >= qi {
				t.Fatalf("digit %d coeff %d = %d not below q_i", i, j, v)
			}
		}
	}
}

func TestScalarMod(t *testing.T) {
	b := testBasis(t, 30, 4, 2)
	delta := new(big.Int).Div(b.Q, big.NewInt(65537))
	rns := b.ScalarMod(delta)
	for i, m := range b.Moduli {
		want := new(big.Int).Mod(delta, new(big.Int).SetUint64(m.Q)).Uint64()
		if rns[i] != want {
			t.Fatalf("limb %d: %d want %d", i, rns[i], want)
		}
	}
}

func TestReducePolyAndReconstructPoly(t *testing.T) {
	b := testBasis(t, 40, 5, 3)
	r, _ := ring.NewRing(5, b.Values())
	vals := make([]*big.Int, 10)
	for i := range vals {
		vals[i] = big.NewInt(int64(i*1000 - 4000))
	}
	p := r.NewPoly()
	b.ReducePoly(vals, p)
	back := b.ReconstructPoly(p)
	for i := range vals {
		if back[i].Cmp(vals[i]) != 0 {
			t.Fatalf("coeff %d: %s want %s", i, back[i], vals[i])
		}
	}
	// Coefficients beyond len(vals) must be zero.
	for i := len(vals); i < r.N; i++ {
		if back[i].Sign() != 0 {
			t.Fatalf("tail coeff %d nonzero", i)
		}
	}
}

func TestBasisValuesAndLen(t *testing.T) {
	primes, _ := ring.GenerateNTTPrimes(30, 4, 3)
	b := NewBasis(primes)
	if b.Len() != 3 {
		t.Fatal("Len wrong")
	}
	vs := b.Values()
	for i, q := range primes {
		if vs[i] != q {
			t.Fatal("Values wrong")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty basis accepted")
		}
	}()
	NewBasis(nil)
}

func TestReconstructPanicsOnLengthMismatch(t *testing.T) {
	b := testBasis(t, 30, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	var v big.Int
	b.Reconstruct([]uint64{1}, &v)
}
