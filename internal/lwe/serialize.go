package lwe

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"athena/internal/ring"
)

const (
	magicLWE = 0x414c5731 // "ALW1"
	magicKSK = 0x414b4b31 // "AKK1"
	wireVer  = 1
)

func writeU64s(w *bufio.Writer, vs ...uint64) error {
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], v)
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

func readU64(r *bufio.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteCiphertext serializes one LWE ciphertext.
func WriteCiphertext(ct Ciphertext, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeU64s(bw, magicLWE, wireVer, ct.Q, uint64(len(ct.A))); err != nil {
		return err
	}
	if err := writeU64s(bw, ct.A...); err != nil {
		return err
	}
	if err := writeU64s(bw, ct.B); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCiphertext deserializes one LWE ciphertext.
func ReadCiphertext(r io.Reader) (Ciphertext, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint64
	for i := range hdr {
		v, err := readU64(br)
		if err != nil {
			return Ciphertext{}, err
		}
		hdr[i] = v
	}
	if hdr[0] != magicLWE {
		return Ciphertext{}, fmt.Errorf("lwe: bad magic %#x", hdr[0])
	}
	if hdr[1] != wireVer {
		return Ciphertext{}, fmt.Errorf("lwe: unsupported version %d", hdr[1])
	}
	n := hdr[3]
	if n > 1<<20 {
		return Ciphertext{}, fmt.Errorf("lwe: implausible dimension %d", n)
	}
	// Validate the modulus up front: every consumer builds reduction
	// constants from Q, and a wire-supplied Q of 0 or 2^63 must fail
	// here with an error rather than panic downstream.
	if _, err := ring.TryNewModulus(hdr[2]); err != nil {
		return Ciphertext{}, fmt.Errorf("lwe: wire modulus rejected: %w", err)
	}
	ct := Ciphertext{Q: hdr[2], A: make([]uint64, n)}
	for i := range ct.A {
		v, err := readU64(br)
		if err != nil {
			return Ciphertext{}, err
		}
		if v >= ct.Q {
			return Ciphertext{}, fmt.Errorf("lwe: wire mask coefficient %d is %d, outside [0, %d)", i, v, ct.Q)
		}
		ct.A[i] = v
	}
	b, err := readU64(br)
	if err != nil {
		return Ciphertext{}, err
	}
	if b >= ct.Q {
		return Ciphertext{}, fmt.Errorf("lwe: wire body %d outside [0, %d)", b, ct.Q)
	}
	ct.B = b
	return ct, nil
}

// WriteKeySwitchKey serializes the N→n switching material (the largest
// public object of the conversion pipeline).
func WriteKeySwitchKey(k *KeySwitchKey, w io.Writer) error {
	bw := bufio.NewWriter(w)
	nIn := uint64(len(k.Keys))
	var nOut uint64
	if nIn > 0 && len(k.Keys[0]) > 0 {
		nOut = uint64(len(k.Keys[0][0].A))
	}
	if err := writeU64s(bw, magicKSK, wireVer, k.Q, k.Base, uint64(k.Digits), nIn, nOut); err != nil {
		return err
	}
	for _, row := range k.Keys {
		if len(row) != k.Digits {
			return fmt.Errorf("lwe: ragged keyswitch key")
		}
		for _, ct := range row {
			if err := writeU64s(bw, ct.A...); err != nil {
				return err
			}
			if err := writeU64s(bw, ct.B); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadKeySwitchKey deserializes the switching material.
func ReadKeySwitchKey(r io.Reader) (*KeySwitchKey, error) {
	br := bufio.NewReader(r)
	var hdr [7]uint64
	for i := range hdr {
		v, err := readU64(br)
		if err != nil {
			return nil, err
		}
		hdr[i] = v
	}
	if hdr[0] != magicKSK {
		return nil, fmt.Errorf("lwe: bad magic %#x", hdr[0])
	}
	if hdr[1] != wireVer {
		return nil, fmt.Errorf("lwe: unsupported version %d", hdr[1])
	}
	q, base, digits, nIn, nOut := hdr[2], hdr[3], int(hdr[4]), hdr[5], hdr[6]
	if nIn > 1<<20 || nOut > 1<<20 || digits < 1 || digits > 64 {
		return nil, fmt.Errorf("lwe: implausible keyswitch dimensions")
	}
	if _, err := ring.TryNewModulus(q); err != nil {
		return nil, fmt.Errorf("lwe: wire modulus rejected: %w", err)
	}
	if base < 2 {
		return nil, fmt.Errorf("lwe: wire decomposition base %d must be at least 2", base)
	}
	k := &KeySwitchKey{Q: q, Base: base, Digits: digits, Keys: make([][]Ciphertext, nIn)}
	for j := range k.Keys {
		k.Keys[j] = make([]Ciphertext, digits)
		for d := 0; d < digits; d++ {
			ct := Ciphertext{Q: q, A: make([]uint64, nOut)}
			for i := range ct.A {
				v, err := readU64(br)
				if err != nil {
					return nil, err
				}
				if v >= q {
					return nil, fmt.Errorf("lwe: wire keyswitch coefficient outside [0, %d)", q)
				}
				ct.A[i] = v
			}
			b, err := readU64(br)
			if err != nil {
				return nil, err
			}
			if b >= q {
				return nil, fmt.Errorf("lwe: wire keyswitch body outside [0, %d)", q)
			}
			ct.B = b
			k.Keys[j][d] = ct
		}
	}
	return k, nil
}
