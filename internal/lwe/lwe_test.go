package lwe

import (
	"bytes"
	"slices"
	"sync"
	"testing"

	"athena/internal/bfv"
	"athena/internal/ring"
)

func TestEncryptDecryptPhase(t *testing.T) {
	const q = 1 << 20
	sk := NewSecretKey(128, 1)
	smp := NewStream(2)
	tm := ring.NewModulus(q)
	for i := 0; i < 50; i++ {
		// Embed message at scale q/256 so noise (a few units) is visible
		// but separable.
		msg := smp.Uint64N(256) * (q / 256)
		ct := Encrypt(sk, msg, q, 3.2, smp)
		phase := sk.Decrypt(ct)
		diff := tm.Centered(tm.Sub(phase, msg))
		if diff > 30 || diff < -30 {
			t.Fatalf("phase error %d too large", diff)
		}
	}
}

func TestSecretKeyDeterminism(t *testing.T) {
	a := NewSecretKey(64, 9)
	b := NewSecretKey(64, 9)
	for i := range a.S {
		if a.S[i] != b.S[i] {
			t.Fatal("same seed gave different keys")
		}
		if a.S[i] < -1 || a.S[i] > 1 {
			t.Fatal("non-ternary key coefficient")
		}
	}
}

func TestSampleExtractExact(t *testing.T) {
	// Build a noise-free RLWE pair by hand: b = m - a·s mod (X^N+1),
	// so that phase(extracted_i) must equal m_i exactly.
	const n = 64
	const q = 65537
	m := ring.NewModulus(q)
	smp := NewStream(3)
	skPoly := make([]int64, n)
	for i := range skPoly {
		skPoly[i] = int64(smp.IntN(3)) - 1
	}
	a := make([]uint64, n)
	msg := make([]uint64, n)
	for i := range a {
		a[i] = smp.Uint64N(q)
		msg[i] = smp.Uint64N(q)
	}
	// b = msg - a*s (negacyclic convolution).
	b := make([]uint64, n)
	copy(b, msg)
	for i := 0; i < n; i++ {
		if skPoly[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			p := a[j]
			if skPoly[i] < 0 {
				p = m.Neg(p)
			}
			k := i + j
			if k < n {
				b[k] = m.Sub(b[k], p)
			} else {
				b[k-n] = m.Add(b[k-n], p)
			}
		}
	}
	sk := &SecretKey{S: skPoly}
	cts := SampleExtract(RLWE{A: a, B: b, Q: q}, nil)
	if len(cts) != n {
		t.Fatalf("expected %d extractions", n)
	}
	for i, ct := range cts {
		if got := sk.Decrypt(ct); got != msg[i] {
			t.Fatalf("coeff %d: phase %d want %d", i, got, msg[i])
		}
	}
	// Subset extraction picks the right indices.
	subset := SampleExtract(RLWE{A: a, B: b, Q: q}, []int{5, 17, 63})
	for k, i := range []int{5, 17, 63} {
		if got := sk.Decrypt(subset[k]); got != msg[i] {
			t.Fatalf("subset %d: phase %d want %d", i, got, msg[i])
		}
	}
}

func TestLWEModSwitch(t *testing.T) {
	const q1 = uint64(1) << 28
	const q2 = uint64(65537)
	sk := NewSecretKey(256, 4)
	smp := NewStream(5)
	tm := ring.NewModulus(q2)
	scale := q1 / q2
	for i := 0; i < 30; i++ {
		msg := smp.Uint64N(q2)
		ct := Encrypt(sk, msg*scale, q1, 3.2, smp)
		sw := ModSwitch(ct, q2)
		phase := sk.Decrypt(sw)
		diff := tm.Centered(tm.Sub(phase, msg))
		if diff > 40 || diff < -40 {
			t.Fatalf("mod-switched phase error %d too large", diff)
		}
	}
}

func TestModSwitchRejectsUpscale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("upward modulus switch should panic")
		}
	}()
	ModSwitch(Ciphertext{A: []uint64{1}, B: 1, Q: 100}, 1000)
}

func TestDimensionKeySwitch(t *testing.T) {
	const q = uint64(1) << 32
	skIn := NewSecretKey(512, 6)
	skOut := NewSecretKey(64, 7)
	ksk := NewKeySwitchKey(skIn, skOut, q, 1<<4, 3.2, 8)
	smp := NewStream(9)
	tm := ring.NewModulus(q)
	scale := q / 65537
	for i := 0; i < 20; i++ {
		msg := smp.Uint64N(65537)
		ct := Encrypt(skIn, msg*scale, q, 3.2, smp)
		sw := ksk.Switch(ct)
		if len(sw.A) != 64 {
			t.Fatalf("output dimension %d", len(sw.A))
		}
		phase := skOut.Decrypt(sw)
		diff := tm.Centered(tm.Sub(phase, msg*scale))
		// Keyswitch noise: sqrt(N·digits)·base/2·sigma ≈ 2^13 at these
		// parameters; must stay well below scale/2 = 2^11... use a bound
		// relative to scale: the message must survive rounding.
		if got := (phase + scale/2) / scale % 65537; got != msg {
			t.Fatalf("message lost: got %d want %d (phase diff %d)", got, msg, diff)
		}
	}
}

// TestFullConversionBridge walks the complete Step ②-③ pipeline against
// real BFV ciphertexts: encrypt with coefficient encoding, switch the
// modulus down, sample-extract, dimension-switch, modulus-switch to t,
// and confirm each LWE phase equals the plaintext coefficient up to the
// paper's e_ms budget (~4 bits).
func TestFullConversionBridge(t *testing.T) {
	primes, err := ring.GenerateNTTPrimes(50, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := bfv.NewContext(bfv.Parameters{LogN: 9, Qi: primes, T: 65537})
	if err != nil {
		t.Fatal(err)
	}
	kg := bfv.NewKeyGenerator(ctx, 11)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := bfv.NewEncryptor(ctx, pk, 12)
	cod := bfv.NewEncoder(ctx)

	// Messages in the quantized-MAC range (17-bit signed, well inside t).
	vals := make([]int64, ctx.N)
	smp := NewStream(13)
	for i := range vals {
		vals[i] = int64(smp.Uint64N(1<<16)) - (1 << 15)
	}
	ct := enc.Encrypt(cod.EncodeCoeffs(vals))

	// Step ②: modulus switch Q -> qMid = t·2^12.
	const tPt = uint64(65537)
	qMid := tPt << 12
	a, b, err := ctx.SwitchModulus(ct, qMid)
	if err != nil {
		t.Fatal(err)
	}

	// Step ③: sample extract at qMid. LWE secret = RLWE secret coeffs.
	rlweSK := &SecretKey{S: sk.Signed}
	cts := SampleExtract(RLWE{A: a, B: b, Q: qMid}, nil)

	// Dimension switch N=512 -> n=64, then modulus switch to t.
	lweSK := NewSecretKey(64, 14)
	ksk := NewKeySwitchKey(rlweSK, lweSK, qMid, 1<<7, 3.2, 15)

	tm := ring.NewModulus(tPt)
	maxErr := int64(0)
	for i := 0; i < ctx.N; i += 7 { // sample a spread of indices
		// Check the phase right after extraction (scale 2^12).
		ph := rlweSK.Decrypt(cts[i])
		mm := ring.NewModulus(qMid)
		want := mm.ReduceInt64(vals[i] * (1 << 12))
		d0 := mm.Centered(mm.Sub(ph, want))
		if d0 > 1<<10 || d0 < -(1<<10) {
			t.Fatalf("post-extract phase error %d too large at %d", d0, i)
		}

		sw := ksk.Switch(cts[i])
		final := ModSwitch(sw, tPt)
		phase := lweSK.Decrypt(final)
		diff := tm.Centered(tm.Sub(phase, tm.ReduceInt64(vals[i])))
		if diff < 0 {
			diff = -diff
		}
		if diff > maxErr {
			maxErr = diff
		}
	}
	// Paper: e_ms typically within ~4 bits.
	if maxErr > 24 {
		t.Fatalf("final e_ms %d exceeds the ~4-5 bit budget", maxErr)
	}
	t.Logf("max |e_ms| after full conversion: %d", maxErr)
}

func TestLWESerializationRoundTrip(t *testing.T) {
	sk := NewSecretKey(32, 71)
	smp := NewStream(72)
	ct := Encrypt(sk, 1234, 65537, 3.2, smp)

	var buf bytes.Buffer
	if err := WriteCiphertext(ct, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCiphertext(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Q != ct.Q || back.B != ct.B || len(back.A) != len(ct.A) {
		t.Fatal("header changed")
	}
	for i := range ct.A {
		if back.A[i] != ct.A[i] {
			t.Fatal("mask changed")
		}
	}
	if sk.Decrypt(back) != sk.Decrypt(ct) {
		t.Fatal("phase changed")
	}
	// Truncation must error.
	buf.Reset()
	if err := WriteCiphertext(ct, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCiphertext(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

func TestKeySwitchKeySerialization(t *testing.T) {
	skIn := NewSecretKey(64, 73)
	skOut := NewSecretKey(16, 74)
	const q = uint64(1) << 30
	k := NewKeySwitchKey(skIn, skOut, q, 1<<6, 3.2, 75)

	var buf bytes.Buffer
	if err := WriteKeySwitchKey(k, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadKeySwitchKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Q != k.Q || back.Base != k.Base || back.Digits != k.Digits {
		t.Fatal("keyswitch header changed")
	}
	// The deserialized key must switch correctly.
	smp := NewStream(76)
	msg := uint64(5000) * (q / 65537)
	ct := Encrypt(skIn, msg, q, 3.2, smp)
	a := skOut.Decrypt(k.Switch(ct))
	b := skOut.Decrypt(back.Switch(ct))
	if a != b {
		t.Fatalf("switch results differ: %d vs %d", a, b)
	}
}

// TestSwitcherMatchesSwitch checks the cached-modulus Switcher produces
// bit-identical ciphertexts to the one-shot Switch path, including when
// several Switchers over the same key run concurrently (the parallel
// extraction shape).
func TestSwitcherMatchesSwitch(t *testing.T) {
	skIn := NewSecretKey(64, 81)
	skOut := NewSecretKey(16, 82)
	const q = uint64(1) << 30
	k := NewKeySwitchKey(skIn, skOut, q, 1<<6, 3.2, 83)

	smp := NewStream(84)
	const n = 24
	cts := make([]Ciphertext, n)
	want := make([]Ciphertext, n)
	for i := range cts {
		cts[i] = Encrypt(skIn, uint64(i)*(q/65537), q, 3.2, smp)
		want[i] = k.Switch(cts[i])
	}

	got := make([]Ciphertext, n)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sw := k.NewSwitcher()
			for i := w; i < n; i += 4 {
				got[i] = sw.Switch(cts[i])
			}
		}(w)
	}
	wg.Wait()
	for i := range got {
		if got[i].B != want[i].B || !slices.Equal(got[i].A, want[i].A) {
			t.Fatalf("ciphertext %d: Switcher result differs from Switch", i)
		}
	}
}
