package lwe

import (
	"encoding/binary"
	"math"
	"math/rand/v2"
)

// Stream is a deterministic randomness source for LWE operations,
// mirroring ring.Sampler but free of any ring dependency.
type Stream struct {
	src *rand.Rand
}

func newStream(seed uint64) *Stream {
	var key [32]byte
	binary.LittleEndian.PutUint64(key[:8], seed)
	binary.LittleEndian.PutUint64(key[8:16], seed^0xc2b2ae3d27d4eb4f)
	return &Stream{src: rand.New(rand.NewChaCha8(key))}
}

// NewStream creates a seeded stream.
func NewStream(seed uint64) *Stream { return newStream(seed) }

// Uint64N returns a uniform value in [0, n).
func (s *Stream) Uint64N(n uint64) uint64 { return s.src.Uint64N(n) }

// IntN returns a uniform int in [0, n).
func (s *Stream) IntN(n int) int { return s.src.IntN(n) }

// Gaussian returns a rounded Gaussian draw truncated at 6 sigma.
func (s *Stream) Gaussian(sigma float64) int64 {
	for {
		x := s.src.NormFloat64() * sigma
		if math.Abs(x) <= 6*sigma+1 {
			return int64(math.Round(x))
		}
	}
}
