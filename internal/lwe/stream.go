package lwe

import "athena/internal/ring"

// streamTweak keeps lwe-derived streams disjoint from ring-sampler
// streams sharing the same master seed (and preserves the historical
// wire/test vectors, which were keyed this way).
const streamTweak = 0xc2b2ae3d27d4eb4f

// Stream is the deterministic randomness source for LWE operations: a
// thin view over the module's single approved ChaCha8 keystream in
// internal/ring (see athena-lint's cryptorand pass).
type Stream struct {
	*ring.Keystream
}

func newStream(seed uint64) *Stream {
	return &Stream{Keystream: ring.NewKeystreamTweaked(seed, streamTweak)}
}

// NewStream creates a seeded stream.
func NewStream(seed uint64) *Stream { return newStream(seed) }
