package lwe

import (
	"fmt"
	"math/bits"

	"athena/internal/ring"
)

// KeySwitchKey switches LWE ciphertexts from the secret skIn (dimension
// N, the ring degree after sample extraction) to skOut (dimension n).
// This realizes the paper's N -> n degree switch (Section 3.2.2, using
// keyswitching) on extracted samples. Component [j][d] encrypts
// skIn[j]·base^d under skOut.
type KeySwitchKey struct {
	Keys   [][]Ciphertext
	Base   uint64
	Digits int
	Q      uint64
}

// NewKeySwitchKey generates the switching material at modulus q with the
// given decomposition base.
func NewKeySwitchKey(skIn, skOut *SecretKey, q, base uint64, sigma float64, seed uint64) *KeySwitchKey {
	if base < 2 {
		panic("lwe: decomposition base must be at least 2")
	}
	digits := 0
	for pw := uint64(1); pw < q; {
		digits++
		hi, lo := bits.Mul64(pw, base)
		if hi != 0 { // next power overflows uint64, so it already covers q
			break
		}
		pw = lo
	}
	m := ring.NewModulus(q)
	smp := newStream(seed)
	k := &KeySwitchKey{
		Keys:   make([][]Ciphertext, len(skIn.S)),
		Base:   base,
		Digits: digits,
		Q:      q,
	}
	for j, sj := range skIn.S {
		k.Keys[j] = make([]Ciphertext, digits)
		pw := uint64(1)
		for d := 0; d < digits; d++ {
			msg := m.Mul(m.ReduceInt64(sj), pw)
			k.Keys[j][d] = Encrypt(skOut, msg, q, sigma, smp)
			pw = m.Mul(pw, base)
		}
	}
	return k
}

// Switch converts ct (under skIn) to a ciphertext under skOut. The
// moduli must match. Each call rederives the Barrett constants of Q;
// loops over many extractions should hold a Switcher instead.
func (k *KeySwitchKey) Switch(ct Ciphertext) Ciphertext {
	return k.NewSwitcher().Switch(ct)
}

// Switcher is the per-worker handle for applying a KeySwitchKey in
// parallel extraction loops: it caches the Barrett constants of the
// switching modulus (which Switch would otherwise rederive per
// ciphertext). The underlying key material is read-only, so any number
// of Switchers over one key may run concurrently.
type Switcher struct {
	k *KeySwitchKey
	m ring.Modulus
}

// NewSwitcher returns a reusable dimension-switch worker over k.
func (k *KeySwitchKey) NewSwitcher() *Switcher {
	return &Switcher{k: k, m: ring.NewModulus(k.Q)}
}

// Switch converts ct (under skIn) to a ciphertext under skOut.
func (s *Switcher) Switch(ct Ciphertext) Ciphertext {
	var out Ciphertext
	s.SwitchInto(ct, &out)
	return out
}

// SwitchInto is Switch writing into a caller-provided ciphertext:
// out.A is grown only when its capacity is below the output dimension,
// so a ciphertext reused across an extraction batch is allocation-free
// after the first call. out must not share backing storage with ct.
//
//lint:noalloc
func (s *Switcher) SwitchInto(ct Ciphertext, out *Ciphertext) {
	k := s.k
	if ct.Q != k.Q {
		panic(fmt.Sprintf("lwe: keyswitch modulus mismatch %d vs %d", ct.Q, k.Q))
	}
	if len(ct.A) != len(k.Keys) {
		panic(fmt.Sprintf("lwe: keyswitch dimension mismatch %d vs %d", len(ct.A), len(k.Keys)))
	}
	m := s.m
	nOut := len(k.Keys[0][0].A)
	if cap(out.A) < nOut {
		//lint:prealloc sized once to the output dimension, then reused across the batch
		out.A = make([]uint64, nOut)
	}
	out.A = out.A[:nOut]
	for i := range out.A {
		out.A[i] = 0
	}
	out.B = m.Reduce(ct.B)
	out.Q = k.Q
	for j, aj := range ct.A {
		v := m.Reduce(aj)
		for d := 0; d < k.Digits && v > 0; d++ {
			// Radix decomposition: one Div64 yields digit and quotient
			// (k.Base ≥ 2 is enforced at key generation).
			var dig uint64
			v, dig = bits.Div64(0, v, k.Base)
			if dig == 0 {
				continue
			}
			// The digit is the fixed operand of the whole row: one Shoup
			// precomputation (a single division) amortizes over the n+1
			// key-component products, replacing Barrett in the inner loop.
			sh := m.ShoupPrecomp(dig)
			key := &k.Keys[j][d]
			m.MulShoupAddVec(key.A, dig, sh, out.A)
			out.B = m.Add(out.B, m.MulShoup(key.B, dig, sh))
		}
	}
}

// SwitchAll applies Switch to a batch, sharing one Switcher.
func (k *KeySwitchKey) SwitchAll(cts []Ciphertext) []Ciphertext {
	s := k.NewSwitcher()
	out := make([]Ciphertext, len(cts))
	for i, ct := range cts {
		out[i] = s.Switch(ct)
	}
	return out
}
