package lwe

import (
	"bytes"
	"encoding/binary"
	"testing"

	"athena/internal/ring"
)

const (
	wireTestQ     = uint64(65537)
	wireTestSigma = 3.2
)

func wireTestCiphertext(t *testing.T) (Ciphertext, []byte) {
	t.Helper()
	sk := NewSecretKey(32, 11)
	ct := Encrypt(sk, 1234, wireTestQ, wireTestSigma, NewStream(12))
	var buf bytes.Buffer
	if err := WriteCiphertext(ct, &buf); err != nil {
		t.Fatal(err)
	}
	return ct, buf.Bytes()
}

func TestLWECiphertextRoundTrip(t *testing.T) {
	ct, blob := wireTestCiphertext(t)
	back, err := ReadCiphertext(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if back.Q != ct.Q || back.B != ct.B || len(back.A) != len(ct.A) {
		t.Fatal("ciphertext header changed in round trip")
	}
	for i := range ct.A {
		if back.A[i] != ct.A[i] {
			t.Fatalf("mask coefficient %d changed", i)
		}
	}
}

func TestKeySwitchKeyRoundTrip(t *testing.T) {
	skIn := NewSecretKey(8, 21)
	skOut := NewSecretKey(4, 22)
	k := NewKeySwitchKey(skIn, skOut, wireTestQ, 256, wireTestSigma, 23)
	var buf bytes.Buffer
	if err := WriteKeySwitchKey(k, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadKeySwitchKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Q != k.Q || back.Base != k.Base || back.Digits != k.Digits || len(back.Keys) != len(k.Keys) {
		t.Fatal("keyswitch key header changed in round trip")
	}
	for j := range k.Keys {
		for d := range k.Keys[j] {
			if back.Keys[j][d].B != k.Keys[j][d].B {
				t.Fatalf("component [%d][%d] changed", j, d)
			}
		}
	}
}

// checkInvariants asserts the decode-time guarantees: a successfully
// read ciphertext always has a usable modulus and reduced components.
func checkInvariants(t *testing.T, ct Ciphertext) {
	t.Helper()
	if _, err := ring.TryNewModulus(ct.Q); err != nil {
		t.Fatalf("decoded ciphertext has unusable modulus: %v", err)
	}
	if ct.B >= ct.Q {
		t.Fatalf("decoded body %d not reduced mod %d", ct.B, ct.Q)
	}
	for i, a := range ct.A {
		if a >= ct.Q {
			t.Fatalf("decoded mask coefficient %d (%d) not reduced mod %d", i, a, ct.Q)
		}
	}
}

// Truncated wire bytes must yield errors — never panics, never a
// partially filled ciphertext.
func TestLWEWireTruncation(t *testing.T) {
	_, blob := wireTestCiphertext(t)
	for l := 0; l < len(blob); l++ {
		if _, err := ReadCiphertext(bytes.NewReader(blob[:l])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", l, len(blob))
		}
	}
}

// Every single-bit corruption must decode to an error or to a
// ciphertext that still satisfies the range invariants.
func TestLWEWireBitFlips(t *testing.T) {
	_, blob := wireTestCiphertext(t)
	for off := 0; off < len(blob); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), blob...)
			mut[off] ^= 1 << bit
			ct, err := ReadCiphertext(bytes.NewReader(mut))
			if err != nil {
				continue
			}
			checkInvariants(t, ct)
		}
	}
}

// Out-of-range header and payload words must be rejected outright.
func TestLWEWireRejectsOutOfRange(t *testing.T) {
	_, blob := wireTestCiphertext(t)
	patch := func(off int, v uint64) []byte {
		mut := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint64(mut[off:], v)
		return mut
	}
	// Offsets: magic 0, version 8, Q 16, dim 24, A[0] 32.
	cases := map[string][]byte{
		"zero modulus":          patch(16, 0),
		"unit modulus":          patch(16, 1),
		"oversized modulus":     patch(16, 1<<63),
		"mask coeff >= Q":       patch(32, wireTestQ),
		"implausible dimension": patch(24, 1<<21),
	}
	for name, mut := range cases {
		if _, err := ReadCiphertext(bytes.NewReader(mut)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestKeySwitchKeyWireRejectsBadHeader(t *testing.T) {
	skIn := NewSecretKey(4, 31)
	skOut := NewSecretKey(2, 32)
	k := NewKeySwitchKey(skIn, skOut, wireTestQ, 16, wireTestSigma, 33)
	var buf bytes.Buffer
	if err := WriteKeySwitchKey(k, &buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	patch := func(off int, v uint64) []byte {
		mut := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint64(mut[off:], v)
		return mut
	}
	// Offsets: magic 0, version 8, q 16, base 24, digits 32, nIn 40, nOut 48.
	cases := map[string][]byte{
		"zero modulus":    patch(16, 0),
		"base below two":  patch(24, 1),
		"zero digits":     patch(32, 0),
		"huge digits":     patch(32, 65),
		"huge dimensions": patch(40, 1<<21),
	}
	for name, mut := range cases {
		if _, err := ReadKeySwitchKey(bytes.NewReader(mut)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// FuzzLWEReadCiphertext: arbitrary attacker bytes must produce either an
// error or a ciphertext satisfying the range invariants — never a panic.
func FuzzLWEReadCiphertext(f *testing.F) {
	_, blob := wireTestCiphertextF(f)
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ct, err := ReadCiphertext(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkInvariants(t, ct)
	})
}

func wireTestCiphertextF(f *testing.F) (Ciphertext, []byte) {
	f.Helper()
	sk := NewSecretKey(32, 11)
	ct := Encrypt(sk, 1234, wireTestQ, wireTestSigma, NewStream(12))
	var buf bytes.Buffer
	if err := WriteCiphertext(ct, &buf); err != nil {
		f.Fatal(err)
	}
	return ct, buf.Bytes()
}
