// Package lwe implements the LWE side of the Athena framework's
// ciphertext conversion (Steps ②-③ of the five-step loop): modulus
// switching of RLWE ciphertexts down to a small modulus, sample
// extraction of individual coefficients into LWE ciphertexts (Alg. 1 of
// the paper), dimension switching from the ring degree N down to the LWE
// dimension n, and LWE modulus switching.
//
// All LWE ciphertexts here live under a single word-sized modulus; the
// phase convention is b + <a, s> = m + e (mod q).
package lwe

import (
	"fmt"
	"math/bits"

	"athena/internal/ring"
)

// Ciphertext is an LWE ciphertext (a, b) with b + <a,s> = m + e (mod Q).
type Ciphertext struct {
	A []uint64
	B uint64
	Q uint64
}

// SecretKey is a signed (ternary) LWE secret.
type SecretKey struct {
	S []int64
}

// NewSecretKey samples a ternary LWE secret of dimension n.
func NewSecretKey(n int, seed uint64) *SecretKey {
	s := make([]int64, n)
	smp := newStream(seed)
	for i := range s {
		s[i] = int64(smp.IntN(3)) - 1
	}
	return &SecretKey{S: s}
}

// Dim returns the LWE dimension.
func (sk *SecretKey) Dim() int { return len(sk.S) }

// Decrypt returns the phase b + <a,s> mod q (message plus noise). The
// caller rounds according to its own plaintext embedding.
func (sk *SecretKey) Decrypt(ct Ciphertext) uint64 {
	if len(ct.A) != len(sk.S) {
		panic(fmt.Sprintf("lwe: dimension mismatch %d vs %d", len(ct.A), len(sk.S)))
	}
	m := ring.NewModulus(ct.Q)
	acc := m.Reduce(ct.B)
	for i, a := range ct.A {
		s := sk.S[i]
		if s == 0 {
			continue
		}
		av := m.Reduce(a)
		if s > 0 {
			acc = m.Add(acc, av)
		} else {
			acc = m.Sub(acc, av)
		}
	}
	return acc
}

// Encrypt produces a fresh LWE encryption of message m (already embedded
// in Z_q) with Gaussian noise sigma. Used by tests and by keyswitching
// key generation.
func Encrypt(sk *SecretKey, msg uint64, q uint64, sigma float64, smp *Stream) Ciphertext {
	m := ring.NewModulus(q)
	ct := Ciphertext{A: make([]uint64, len(sk.S)), Q: q}
	phaseA := uint64(0)
	for i := range ct.A {
		ct.A[i] = smp.Uint64N(q)
		s := sk.S[i]
		if s > 0 {
			phaseA = m.Add(phaseA, ct.A[i])
		} else if s < 0 {
			phaseA = m.Sub(phaseA, ct.A[i])
		}
	}
	e := smp.Gaussian(sigma)
	ct.B = m.Sub(m.Add(m.Reduce(msg), m.ReduceInt64(e)), phaseA)
	return ct
}

// RLWE is an RLWE ciphertext under a single word-sized modulus in the
// coefficient domain, the output of modulus switching from Q. The phase
// convention matches bfv: B + A·s = m + e (mod Q), with A playing the
// role of c1 and B of c0.
type RLWE struct {
	A, B []uint64
	Q    uint64
}

// SampleExtract converts the RLWE ciphertext into LWE ciphertexts for the
// requested coefficient indices (Algorithm 1 of the paper; all N when
// indices is nil). The LWE secret is the RLWE secret's coefficient
// vector.
func SampleExtract(rc RLWE, indices []int) []Ciphertext {
	n := len(rc.A)
	m := ring.NewModulus(rc.Q)
	if indices == nil {
		indices = make([]int, n)
		for i := range indices {
			indices[i] = i
		}
	}
	out := make([]Ciphertext, len(indices))
	for k, i := range indices {
		if i < 0 || i >= n {
			panic(fmt.Sprintf("lwe: extract index %d out of range", i))
		}
		a := make([]uint64, n)
		for j := 0; j < n; j++ {
			if j <= i {
				a[j] = rc.A[i-j]
			} else {
				a[j] = m.Neg(rc.A[n+i-j])
			}
		}
		out[k] = Ciphertext{A: a, B: rc.B[i], Q: rc.Q}
	}
	return out
}

// ModSwitch rescales ct from its modulus to q2: each component is mapped
// to round(x·q2/q). The message embedding must be scale-free (phase
// directly carries m), as it is throughout the Athena loop after the
// RLWE modulus switch to t·2^k.
func ModSwitch(ct Ciphertext, q2 uint64) Ciphertext {
	out := Ciphertext{A: make([]uint64, len(ct.A)), Q: q2}
	for i, a := range ct.A {
		out.A[i] = scaleRound(a, ct.Q, q2)
	}
	out.B = scaleRound(ct.B, ct.Q, q2)
	return out
}

// scaleRound computes round(x·q2/q1) mod q2 using 128-bit arithmetic.
// It requires q2 ≤ q1 (Athena only ever switches downward). q1 may
// exceed the 61-bit ring.Modulus bound, so the reductions go through
// bits.Div64 rather than Barrett helpers.
func scaleRound(x, q1, q2 uint64) uint64 {
	if q2 > q1 {
		panic("lwe: modulus switch must go to a smaller modulus")
	}
	_, xr := bits.Div64(0, x, q1) // x mod q1
	hi, lo := bits.Mul64(xr, q2)
	// round(v/q1) = floor((v + q1/2) / q1)
	lo2, carry := bits.Add64(lo, q1/2, 0)
	hi += carry
	q, _ := bits.Div64(hi, lo2, q1)
	// xr < q1 implies q = round(xr·q2/q1) ≤ q2: one conditional
	// subtraction wraps the boundary case to 0.
	if q >= q2 {
		q -= q2
	}
	return q
}
