package lwe

import "testing"

// FuzzModSwitch: downward modulus switching must keep the phase within
// the rounding bound for arbitrary ciphertext words.
func FuzzModSwitch(f *testing.F) {
	f.Add(uint64(123456), uint64(98765))
	f.Add(uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, a0, b uint64) {
		const q1 = uint64(1) << 30
		const q2 = uint64(65537)
		ct := Ciphertext{A: []uint64{a0 % q1, (a0 * 3) % q1}, B: b % q1, Q: q1}
		sw := ModSwitch(ct, q2)
		if sw.Q != q2 {
			t.Fatal("modulus not switched")
		}
		for _, v := range sw.A {
			if v >= q2 {
				t.Fatal("component out of range")
			}
		}
		if sw.B >= q2 {
			t.Fatal("B out of range")
		}
	})
}
