package lwe

import (
	"slices"
	"testing"
)

// TestSwitchIntoZeroAllocs enforces the noalloc contract on the
// dimension switch: once out.A has been grown to the output dimension
// (first call), the per-ciphertext steady state of an extraction batch
// must not touch the heap.
func TestSwitchIntoZeroAllocs(t *testing.T) {
	skIn := NewSecretKey(128, 91)
	skOut := NewSecretKey(32, 92)
	const q = uint64(1) << 30
	k := NewKeySwitchKey(skIn, skOut, q, 1<<5, 3.2, 93)
	smp := NewStream(94)
	ct := Encrypt(skIn, 12345*(q/65537), q, 3.2, smp)

	sw := k.NewSwitcher()
	var out Ciphertext
	if n := testing.AllocsPerRun(50, func() { sw.SwitchInto(ct, &out) }); n != 0 {
		t.Fatalf("SwitchInto allocates %v times per run, want 0", n)
	}

	want := sw.Switch(ct)
	if out.B != want.B || out.Q != want.Q || !slices.Equal(out.A, want.A) {
		t.Fatal("SwitchInto disagrees with Switch")
	}

	// A stale larger buffer must be truncated, not trusted.
	out.A = append(out.A, 7, 7, 7)
	sw.SwitchInto(ct, &out)
	if !slices.Equal(out.A, want.A) {
		t.Fatal("SwitchInto with oversized buffer disagrees with Switch")
	}
}
