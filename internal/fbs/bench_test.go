package fbs

import "testing"

func BenchmarkInterpolateFermat(b *testing.B) {
	l := ReLULUT(65537)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Interpolate()
	}
}

func BenchmarkInterpolateNaive(b *testing.B) {
	l := ReLULUT(12289) // t-1 not a power of two: O(t²) path
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Interpolate()
	}
}

func BenchmarkFBSEvaluateT257(b *testing.B) {
	ctx, enc, _, ev, cod := fbsKit(b, 6, 6, 257)
	fe, err := NewEvaluator(ctx, ReLULUT(257))
	if err != nil {
		b.Fatal(err)
	}
	ct := enc.Encrypt(cod.EncodeSlots(make([]int64, ctx.N)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fe.Evaluate(ev, ct); err != nil {
			b.Fatal(err)
		}
	}
}
