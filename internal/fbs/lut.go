// Package fbs implements Athena's functional bootstrapping (Step ⑤ of
// the framework loop): an arbitrary discrete function over Z_t — the
// fused activation + requantization ("remapping") table — is interpolated
// into the degree-(t-1) polynomial of Eq. 3 and evaluated homomorphically
// over slot-encoded ciphertexts with the Baby-Step Giant-Step
// (Paterson-Stockmeyer) schedule of Alg. 2.
//
// For the Fermat-prime moduli Athena uses (t = 65537, and 257 at test
// scale) the multiplicative group Z_t^* is cyclic of two-power order, so
// the interpolation sums Σ_k LUT(k)·k^j reduce to one power-of-two-length
// DFT over Z_t and the whole table compiles in O(t log t) instead of
// O(t²).
package fbs

import (
	"fmt"
	"math/bits"

	"athena/internal/ring"
)

// LUT is a complete function table over Z_t: Table[k] is the output (as a
// residue mod t) for the input residue k. Inputs and outputs are usually
// thought of as centered values in [-t/2, t/2).
type LUT struct {
	T     uint64
	Table []uint64
}

// NewLUT builds a table from a signed function: f receives the centered
// representative of each residue and returns a signed output, reduced mod
// t. This is where Athena fuses the activation with requantization:
// f(x) = Act(round(x·scale)).
func NewLUT(t uint64, f func(x int64) int64) *LUT {
	tm := ring.NewModulus(t)
	l := &LUT{T: t, Table: make([]uint64, t)}
	for k := uint64(0); k < t; k++ {
		l.Table[k] = tm.ReduceInt64(f(tm.Centered(k)))
	}
	return l
}

// ReLULUT returns the plain ReLU table (no remapping).
func ReLULUT(t uint64) *LUT {
	return NewLUT(t, func(x int64) int64 {
		if x < 0 {
			return 0
		}
		return x
	})
}

// Lookup applies the table to a signed value.
func (l *LUT) Lookup(x int64) int64 {
	tm := ring.NewModulus(l.T)
	return tm.Centered(l.Table[tm.ReduceInt64(x)])
}

// Interpolate returns the coefficients c_0..c_{t-1} of the unique
// polynomial of degree < t with FBS(x) = LUT(x) for all x in Z_t (Eq. 3):
//
//	c_0 = LUT(0),   c_i = -Σ_{k≠0} LUT(k)·k^{t-1-i}  (i ≥ 1).
//
// t must be prime (guaranteed by the bfv parameter validation).
func (l *LUT) Interpolate() []uint64 {
	t := l.T
	tm := ring.NewModulus(t)
	// g_j = Σ_{k≠0} LUT(k)·k^j for j = 0..t-2.
	var g []uint64
	if t > 2 && (t-1)&(t-2) == 0 {
		g = l.powerSumsFFT(tm)
	} else {
		g = l.powerSumsNaive(tm)
	}
	c := make([]uint64, t)
	c[0] = l.Table[0]
	for i := uint64(1); i < t; i++ {
		c[i] = tm.Neg(g[t-1-i])
	}
	// Eq. 3's sum runs over all k including 0; with the 0^0 = 1
	// convention the k = 0 term contributes LUT(0) to the x^{t-1}
	// coefficient only (g above omits k = 0).
	c[t-1] = tm.Sub(c[t-1], l.Table[0])
	return c
}

// powerSumsNaive computes g_j directly in O(t²).
func (l *LUT) powerSumsNaive(tm ring.Modulus) []uint64 {
	t := l.T
	g := make([]uint64, t-1)
	for k := uint64(1); k < t; k++ {
		v := l.Table[k]
		if v == 0 {
			continue
		}
		pw := uint64(1)
		for j := uint64(0); j < t-1; j++ {
			g[j] = tm.Add(g[j], tm.Mul(v, pw))
			pw = tm.Mul(pw, k)
		}
	}
	return g
}

// powerSumsFFT computes g_j with one cyclic DFT of length t-1 = 2^s over
// Z_t: writing k = γ^a for a generator γ, g_j = Σ_a LUT(γ^a)·(γ^j)^a is
// the DFT of u_a = LUT(γ^a) evaluated at ω = γ.
func (l *LUT) powerSumsFFT(tm ring.Modulus) []uint64 {
	t := l.T
	n := t - 1 // power of two
	gamma := ring.PrimitiveRoot(t)

	u := make([]uint64, n)
	k := uint64(1)
	for a := uint64(0); a < n; a++ {
		u[a] = l.Table[k]
		k = tm.Mul(k, gamma)
	}
	fftInPlace(u, gamma, tm)
	return u
}

// fftInPlace computes the length-n cyclic DFT X[j] = Σ_a x[a]·ω^{aj} over
// Z_t, n a power of two, ω a primitive n-th root of unity mod t. Output
// in natural order.
func fftInPlace(x []uint64, omega uint64, tm ring.Modulus) {
	n := uint64(len(x))
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("fbs: FFT length %d not a power of two", n))
	}
	logN := uint(bits.TrailingZeros64(n))
	// Bit-reversal permutation.
	for i := uint64(0); i < n; i++ {
		j := bits.Reverse64(i) >> (64 - logN)
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for s := uint(1); s <= logN; s++ {
		m := uint64(1) << s
		wm := tm.Pow(omega, n>>s) // n/m for power-of-two m = 1<<s
		for start := uint64(0); start < n; start += m {
			w := uint64(1)
			for j := uint64(0); j < m/2; j++ {
				a := x[start+j]
				b := tm.Mul(x[start+j+m/2], w)
				x[start+j] = tm.Add(a, b)
				x[start+j+m/2] = tm.Sub(a, b)
				w = tm.Mul(w, wm)
			}
		}
	}
}
