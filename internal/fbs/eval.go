package fbs

import (
	"fmt"
	"math"

	"athena/internal/bfv"
	"athena/internal/par"
)

// Evaluator evaluates a compiled LUT polynomial on slot-encoded BFV
// ciphertexts using the Alg. 2 Baby-Step Giant-Step schedule. Powers are
// built by balanced splitting so the multiplicative depth stays at
// O(log t) (matching the 17-level CMult budget in Table 4).
//
// An Evaluator is single-goroutine state (it owns an encoder scratch and
// the operation counters); concurrent callers hold a ShallowCopy each.
// Within one Evaluate call the giant-step block sums of the
// Paterson–Stockmeyer schedule fan out across worker lanes — each lane a
// ShallowCopy of the caller's bfv.Evaluator — and are combined in giant-
// step order, so the result is bit-identical at any GOMAXPROCS.
type Evaluator struct {
	ctx    *bfv.Context
	cod    *bfv.Encoder
	coeffs []uint64
	bs, gs int

	// Operation counters (reset per Evaluate call), used by the
	// compiler/simulator cross-checks and by tests.
	CMults, SMults, HAdds int

	// Giant-step fan-out lanes, built lazily against the bfv.Evaluator
	// passed to Evaluate and reused while it stays the same.
	laneBase *bfv.Evaluator
	lanes    *par.Pool[*fbsLane]
}

// fbsLane is one worker of the giant-step fan-out: a ShallowCopy'd
// evaluator (own scratch arena), an encoder, and local op counters that
// merge into the Evaluator's after the loop.
type fbsLane struct {
	ev         *bfv.Evaluator
	cod        *bfv.Encoder
	cm, sm, ha int

	// Staging for the fused baby-step inner sum: the nonzero (power,
	// coefficient) pairs of one giant-step block, gathered and handed to
	// MulScalarSumInto as a single pass. Grown once to the baby-step
	// count, then reused.
	cts []*bfv.Ciphertext
	ks  []uint64
}

// NewEvaluator interpolates lut and prepares the evaluation plan. The
// LUT modulus must equal the context's plaintext modulus.
func NewEvaluator(ctx *bfv.Context, lut *LUT) (*Evaluator, error) {
	if lut.T != ctx.Params.T {
		return nil, fmt.Errorf("fbs: LUT modulus %d != plaintext modulus %d", lut.T, ctx.Params.T)
	}
	coeffs := lut.Interpolate()
	t := int(lut.T)
	bs := int(math.Ceil(math.Sqrt(float64(t))))
	gs := (t + bs - 1) / bs
	return &Evaluator{
		ctx:    ctx,
		cod:    bfv.NewEncoder(ctx),
		coeffs: coeffs,
		bs:     bs,
		gs:     gs,
	}, nil
}

// ShallowCopy returns an evaluator sharing the compiled (immutable) LUT
// plan but owning fresh encoder scratch, counters, and fan-out lanes,
// for use from another goroutine.
func (e *Evaluator) ShallowCopy() *Evaluator {
	return &Evaluator{
		ctx:    e.ctx,
		cod:    bfv.NewEncoder(e.ctx),
		coeffs: e.coeffs,
		bs:     e.bs,
		gs:     e.gs,
	}
}

// Steps reports the (babySteps, giantSteps) split.
func (e *Evaluator) Steps() (int, int) { return e.bs, e.gs }

// lanePool returns the fan-out lane pool, (re)building it when the base
// evaluator changed since the last Evaluate.
func (e *Evaluator) lanePool(ev *bfv.Evaluator) *par.Pool[*fbsLane] {
	if e.lanes == nil || e.laneBase != ev {
		e.laneBase = ev
		e.lanes = par.NewPool(func() *fbsLane {
			return &fbsLane{ev: ev.ShallowCopy(), cod: bfv.NewEncoder(e.ctx)}
		})
	}
	return e.lanes
}

// Evaluate applies the LUT to every slot of ct: each slot value v becomes
// LUT(v). This single call realizes the non-linear activation, the
// requantization, and the noise refresh semantics of Athena's functional
// bootstrapping (the noise was already refreshed by packing; FBS keeps
// the result exact mod t).
func (e *Evaluator) Evaluate(ev *bfv.Evaluator, ct *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	e.CMults, e.SMults, e.HAdds = 0, 0, 0

	// Baby powers x^1..x^bs, balanced-split for logarithmic depth. The
	// ladder is inherently sequential (each level consumes earlier ones).
	powers := make([]*bfv.Ciphertext, e.bs+1)
	powers[1] = ct
	var err error
	for k := 2; k <= e.bs; k++ {
		h := k / 2
		powers[k], err = e.mul(ev, powers[h], powers[k-h])
		if err != nil {
			return nil, err
		}
	}
	// Giant powers y^a with y = x^bs.
	giants := make([]*bfv.Ciphertext, e.gs)
	if e.gs > 1 {
		giants[1] = powers[e.bs]
	}
	for a := 2; a < e.gs; a++ {
		h := a / 2
		giants[a], err = e.mul(ev, giants[h], giants[a-h])
		if err != nil {
			return nil, err
		}
	}

	// Giant-step block sums Σ_b c_{a·bs+b}·x^b (· y^a): independent across
	// a once the power ladders exist — each costs ~bs scalar products plus
	// one CMult (milliseconds), so every step is worth a worker. Lanes
	// write only inners[a]; the combine below runs in giant-step order.
	inners := make([]*bfv.Ciphertext, e.gs)
	errs := make([]error, e.gs)
	pool := e.lanePool(ev)
	par.ForEach(e.gs, par.Options{MinGrain: 1}, func(w, a int) {
		ln := pool.Get(w)
		// innerSum mutates only the lane it is handed; the fields it reads
		// from e (block plan, baby-step powers) are immutable after setup.
		//lint:allow scratchalias innerSum writes only per-lane state; e's plan fields are read-only here
		inner := e.innerSum(ln, powers, a)
		if inner != nil && a > 0 {
			ln.cm++
			inner, errs[a] = ln.ev.Mul(inner, giants[a])
		}
		inners[a] = inner
	})
	pool.Each(func(ln *fbsLane) {
		e.CMults += ln.cm
		e.SMults += ln.sm
		e.HAdds += ln.ha
		ln.cm, ln.sm, ln.ha = 0, 0, 0
	})
	var res *bfv.Ciphertext
	for a := 0; a < e.gs; a++ {
		if errs[a] != nil {
			return nil, errs[a]
		}
		if inners[a] == nil {
			continue
		}
		if res == nil {
			res = inners[a]
		} else {
			ev.AddInPlace(res, inners[a])
			e.HAdds++
		}
	}
	if res == nil {
		res = e.ctx.NewCiphertext()
	}
	return res, nil
}

// innerSum builds Σ_b c_{a·bs+b}·x^b for one giant step on lane ln; the
// b=0 constant enters as a plaintext addition across all slots. Returns
// nil if every coefficient in the group is zero.
//
// Rather than chaining SMult/HAdd pairs, the nonzero terms of the block
// are gathered and evaluated in one fused MulScalarSumInto pass, so each
// accumulator coefficient is written once per limb regardless of how
// many baby powers contribute.
func (e *Evaluator) innerSum(ln *fbsLane, powers []*bfv.Ciphertext, a int) *bfv.Ciphertext {
	t := len(e.coeffs)
	if cap(ln.cts) < e.bs {
		ln.cts = make([]*bfv.Ciphertext, 0, e.bs)
		ln.ks = make([]uint64, 0, e.bs)
	}
	ln.cts = ln.cts[:0]
	ln.ks = ln.ks[:0]
	var acc *bfv.Ciphertext
	var c0 uint64
	hasC0 := false
	for b := 0; b < e.bs; b++ {
		idx := a*e.bs + b
		if idx >= t {
			break
		}
		c := e.coeffs[idx]
		if c == 0 {
			continue
		}
		if b == 0 {
			c0 = c
			hasC0 = true
			continue
		}
		ln.cts = append(ln.cts, powers[b])
		ln.ks = append(ln.ks, c)
	}
	if n := len(ln.cts); n > 0 {
		acc = e.ctx.NewCiphertext()
		ln.ev.MulScalarSumInto(ln.cts, ln.ks, acc)
		ln.sm += n
		ln.ha += n - 1
	}
	if hasC0 {
		vals := make([]int64, e.ctx.N)
		cv := e.ctx.TMod.Centered(c0)
		for i := range vals {
			vals[i] = cv
		}
		pt := ln.cod.EncodeSlots(vals)
		if acc == nil {
			// Constant-only group: embed as a fresh trivial "encryption"
			// (noise-free plaintext ciphertext).
			acc = e.trivial(ln, pt)
		} else {
			acc = ln.ev.AddPlain(acc, pt)
		}
		ln.ha++
	}
	return acc
}

// trivial returns the noiseless ciphertext (Δ·m, 0).
func (e *Evaluator) trivial(ln *fbsLane, pt *bfv.Plaintext) *bfv.Ciphertext {
	ct := e.ctx.NewCiphertext()
	dm := ln.cod.LiftToDelta(pt)
	dm.CopyTo(ct.C0)
	return ct
}

func (e *Evaluator) mul(ev *bfv.Evaluator, a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	e.CMults++
	return ev.Mul(a, b)
}
