package fbs

import (
	"fmt"
	"math"

	"athena/internal/bfv"
)

// Evaluator evaluates a compiled LUT polynomial on slot-encoded BFV
// ciphertexts using the Alg. 2 Baby-Step Giant-Step schedule. Powers are
// built by balanced splitting so the multiplicative depth stays at
// O(log t) (matching the 17-level CMult budget in Table 4).
type Evaluator struct {
	ctx    *bfv.Context
	cod    *bfv.Encoder
	coeffs []uint64
	bs, gs int

	// Operation counters (reset per Evaluate call), used by the
	// compiler/simulator cross-checks and by tests.
	CMults, SMults, HAdds int
}

// NewEvaluator interpolates lut and prepares the evaluation plan. The
// LUT modulus must equal the context's plaintext modulus.
func NewEvaluator(ctx *bfv.Context, lut *LUT) (*Evaluator, error) {
	if lut.T != ctx.Params.T {
		return nil, fmt.Errorf("fbs: LUT modulus %d != plaintext modulus %d", lut.T, ctx.Params.T)
	}
	coeffs := lut.Interpolate()
	t := int(lut.T)
	bs := int(math.Ceil(math.Sqrt(float64(t))))
	gs := (t + bs - 1) / bs
	return &Evaluator{
		ctx:    ctx,
		cod:    bfv.NewEncoder(ctx),
		coeffs: coeffs,
		bs:     bs,
		gs:     gs,
	}, nil
}

// Steps reports the (babySteps, giantSteps) split.
func (e *Evaluator) Steps() (int, int) { return e.bs, e.gs }

// Evaluate applies the LUT to every slot of ct: each slot value v becomes
// LUT(v). This single call realizes the non-linear activation, the
// requantization, and the noise refresh semantics of Athena's functional
// bootstrapping (the noise was already refreshed by packing; FBS keeps
// the result exact mod t).
func (e *Evaluator) Evaluate(ev *bfv.Evaluator, ct *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	e.CMults, e.SMults, e.HAdds = 0, 0, 0

	// Baby powers x^1..x^bs, balanced-split for logarithmic depth.
	powers := make([]*bfv.Ciphertext, e.bs+1)
	powers[1] = ct
	var err error
	for k := 2; k <= e.bs; k++ {
		h := k / 2
		powers[k], err = e.mul(ev, powers[h], powers[k-h])
		if err != nil {
			return nil, err
		}
	}
	// Giant powers y^a with y = x^bs.
	giants := make([]*bfv.Ciphertext, e.gs)
	if e.gs > 1 {
		giants[1] = powers[e.bs]
	}
	for a := 2; a < e.gs; a++ {
		h := a / 2
		giants[a], err = e.mul(ev, giants[h], giants[a-h])
		if err != nil {
			return nil, err
		}
	}

	var res *bfv.Ciphertext
	for a := 0; a < e.gs; a++ {
		inner := e.innerSum(ev, powers, a)
		if a > 0 {
			if inner == nil {
				continue
			}
			inner, err = e.mul(ev, inner, giants[a])
			if err != nil {
				return nil, err
			}
		}
		if inner == nil {
			continue
		}
		if res == nil {
			res = inner
		} else {
			ev.AddInPlace(res, inner)
			e.HAdds++
		}
	}
	if res == nil {
		res = e.ctx.NewCiphertext()
	}
	return res, nil
}

// innerSum builds Σ_b c_{a·bs+b}·x^b for one giant step; the b=0 constant
// enters as a plaintext addition across all slots. Returns nil if every
// coefficient in the group is zero.
func (e *Evaluator) innerSum(ev *bfv.Evaluator, powers []*bfv.Ciphertext, a int) *bfv.Ciphertext {
	t := len(e.coeffs)
	var acc *bfv.Ciphertext
	var c0 uint64
	hasC0 := false
	for b := 0; b < e.bs; b++ {
		idx := a*e.bs + b
		if idx >= t {
			break
		}
		c := e.coeffs[idx]
		if c == 0 {
			continue
		}
		if b == 0 {
			c0 = c
			hasC0 = true
			continue
		}
		e.SMults++
		if acc == nil {
			acc = ev.MulScalar(powers[b], c)
		} else {
			ev.MulScalarAndAdd(powers[b], c, acc)
			e.HAdds++
		}
	}
	if hasC0 {
		vals := make([]int64, e.ctx.N)
		cv := e.ctx.TMod.Centered(c0)
		for i := range vals {
			vals[i] = cv
		}
		pt := e.cod.EncodeSlots(vals)
		if acc == nil {
			// Constant-only group: embed as a fresh trivial "encryption"
			// (noise-free plaintext ciphertext).
			acc = e.trivial(pt)
		} else {
			acc = ev.AddPlain(acc, pt)
		}
		e.HAdds++
	}
	return acc
}

// trivial returns the noiseless ciphertext (Δ·m, 0).
func (e *Evaluator) trivial(pt *bfv.Plaintext) *bfv.Ciphertext {
	ct := e.ctx.NewCiphertext()
	dm := e.cod.LiftToDelta(pt)
	dm.CopyTo(ct.C0)
	return ct
}

func (e *Evaluator) mul(ev *bfv.Evaluator, a, b *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	e.CMults++
	return ev.Mul(a, b)
}
