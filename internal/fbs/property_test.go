package fbs

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"athena/internal/ring"
)

// Property: for ANY table over Z_t, the interpolated polynomial agrees
// with the table at every point — the defining property of Eq. 3.
func TestQuickInterpolationIsExact(t *testing.T) {
	for _, tq := range []uint64{17, 97, 257} {
		tm := ring.NewModulus(tq)
		f := func(seed uint64) bool {
			rng := rand.New(rand.NewPCG(seed, tq))
			l := &LUT{T: tq, Table: make([]uint64, tq)}
			for k := range l.Table {
				l.Table[k] = rng.Uint64N(tq)
			}
			c := l.Interpolate()
			// Check a random sample of points plus the edge cases.
			pts := []uint64{0, 1, tq - 1, rng.Uint64N(tq), rng.Uint64N(tq)}
			for _, x := range pts {
				if evalPoly(c, x, tm) != l.Table[x] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("t=%d: %v", tq, err)
		}
	}
}

// Property: LUT composition — interpolating f∘g equals looking up g then
// f (closure of the representation under composition, which is what lets
// the engine fuse scaling into pending LUTs).
func TestQuickLUTComposition(t *testing.T) {
	const tq = 257
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		// Keep the composed range inside (-t/2, t/2) so centered lookup
		// equals the raw integer composition.
		div := 8 + int64(rng.Uint64N(8))
		g := NewLUT(tq, func(x int64) int64 { return x / div })
		scale := int64(1 + rng.Uint64N(7))
		composed := NewLUT(tq, func(x int64) int64 { return g.Lookup(x) * scale })
		for i := 0; i < 20; i++ {
			x := int64(rng.Uint64N(tq)) - int64(tq)/2
			if composed.Lookup(x) != g.Lookup(x)*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the FFT interpolation path agrees with the naive one for any
// table over a Fermat prime.
func TestQuickFFTEquivalence(t *testing.T) {
	const tq = 257
	tm := ring.NewModulus(tq)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		l := &LUT{T: tq, Table: make([]uint64, tq)}
		for k := range l.Table {
			l.Table[k] = rng.Uint64N(tq)
		}
		fft := l.powerSumsFFT(tm)
		naive := l.powerSumsNaive(tm)
		for j := range naive {
			if fft[j] != naive[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
