package fbs

import (
	"bytes"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"

	"athena/internal/bfv"
)

// serializeCT flattens a ciphertext's coefficient words for bit-identity
// comparison.
func serializeCT(t *testing.T, ct *bfv.Ciphertext) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, poly := range [][][]uint64{ct.C0.Coeffs, ct.C1.Coeffs} {
		for _, limb := range poly {
			for _, v := range limb {
				buf.WriteByte(byte(v))
				buf.WriteByte(byte(v >> 8))
				buf.WriteByte(byte(v >> 16))
				buf.WriteByte(byte(v >> 24))
				buf.WriteByte(byte(v >> 32))
				buf.WriteByte(byte(v >> 40))
				buf.WriteByte(byte(v >> 48))
				buf.WriteByte(byte(v >> 56))
			}
		}
	}
	return buf.Bytes()
}

// TestEvaluateBitIdenticalAcrossGOMAXPROCS pins the determinism contract
// of the parallel giant-step schedule: the output ciphertext is
// bit-identical whether the block sums run inline or across workers.
func TestEvaluateBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	ctx, enc, _, ev, cod := fbsKit(t, 5, 4, 257)
	lut := NewLUT(257, func(x int64) int64 {
		if x < 0 {
			return -x / 2
		}
		return x / 3
	})
	vals := make([]int64, ctx.N)
	rng := rand.New(rand.NewPCG(11, 12))
	for i := range vals {
		vals[i] = int64(rng.Uint64N(257)) - 128
	}
	ct := enc.Encrypt(cod.EncodeSlots(vals))

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	var want []byte
	var wantCM, wantSM, wantHA int
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		fe, err := NewEvaluator(ctx, lut)
		if err != nil {
			t.Fatal(err)
		}
		out, err := fe.Evaluate(ev.ShallowCopy(), ct)
		if err != nil {
			t.Fatal(err)
		}
		blob := serializeCT(t, out)
		if want == nil {
			want, wantCM, wantSM, wantHA = blob, fe.CMults, fe.SMults, fe.HAdds
			continue
		}
		if !bytes.Equal(blob, want) {
			t.Fatalf("GOMAXPROCS=%d: FBS output differs from serial result", procs)
		}
		if fe.CMults != wantCM || fe.SMults != wantSM || fe.HAdds != wantHA {
			t.Fatalf("GOMAXPROCS=%d: op counters (%d,%d,%d) differ from serial (%d,%d,%d)",
				procs, fe.CMults, fe.SMults, fe.HAdds, wantCM, wantSM, wantHA)
		}
	}
}

// TestShallowCopyConcurrentEvaluate checks ShallowCopy'd evaluators can
// run concurrently against ShallowCopy'd bfv evaluators and agree with
// the single-goroutine result.
func TestShallowCopyConcurrentEvaluate(t *testing.T) {
	ctx, enc, _, ev, cod := fbsKit(t, 5, 4, 257)
	lut := ReLULUT(257)
	fe, err := NewEvaluator(ctx, lut)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	cts := make([]*bfv.Ciphertext, n)
	want := make([][]byte, n)
	for i := range cts {
		vals := make([]int64, ctx.N)
		for j := range vals {
			vals[j] = int64((i*131 + j*7) % 257)
		}
		cts[i] = enc.Encrypt(cod.EncodeSlots(vals))
		out, err := fe.Evaluate(ev, cts[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = serializeCT(t, out)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	got := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clone := fe.ShallowCopy()
			out, err := clone.Evaluate(ev.ShallowCopy(), cts[i])
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = serializeCT(t, out)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("ciphertext %d: concurrent ShallowCopy result differs", i)
		}
	}
}
