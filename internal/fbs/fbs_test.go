package fbs

import (
	"math/rand/v2"
	"testing"

	"athena/internal/bfv"
	"athena/internal/ring"
)

func TestInterpolatePaperExample(t *testing.T) {
	// Section 3.2.3: ReLU under t=5 gives FBS(x) = 3x + x² + 2x⁴.
	l := ReLULUT(5)
	wantTable := []uint64{0, 1, 2, 0, 0}
	for k, w := range wantTable {
		if l.Table[k] != w {
			t.Fatalf("LUT[%d] = %d want %d", k, l.Table[k], w)
		}
	}
	c := l.Interpolate()
	want := []uint64{0, 3, 1, 0, 2}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("coefficient %d: got %d want %d", i, c[i], want[i])
		}
	}
}

// evalPoly evaluates the interpolated polynomial at x over Z_t.
func evalPoly(coeffs []uint64, x uint64, tm ring.Modulus) uint64 {
	// Horner.
	var acc uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = tm.Add(tm.Mul(acc, x), coeffs[i])
	}
	return acc
}

func TestInterpolationIsExactEverywhere(t *testing.T) {
	for _, tq := range []uint64{5, 17, 97, 257} {
		tm := ring.NewModulus(tq)
		rng := rand.New(rand.NewPCG(tq, 1))
		l := &LUT{T: tq, Table: make([]uint64, tq)}
		for k := range l.Table {
			l.Table[k] = rng.Uint64N(tq)
		}
		c := l.Interpolate()
		for x := uint64(0); x < tq; x++ {
			if got := evalPoly(c, x, tm); got != l.Table[x] {
				t.Fatalf("t=%d: FBS(%d)=%d want %d", tq, x, got, l.Table[x])
			}
		}
	}
}

func TestFFTPathMatchesNaive(t *testing.T) {
	// 257 is a Fermat prime: both interpolation paths must agree.
	const tq = 257
	tm := ring.NewModulus(tq)
	rng := rand.New(rand.NewPCG(9, 9))
	l := &LUT{T: tq, Table: make([]uint64, tq)}
	for k := range l.Table {
		l.Table[k] = rng.Uint64N(tq)
	}
	fft := l.powerSumsFFT(tm)
	naive := l.powerSumsNaive(tm)
	for j := range naive {
		if fft[j] != naive[j] {
			t.Fatalf("g_%d: FFT %d naive %d", j, fft[j], naive[j])
		}
	}
}

func TestLookupCentered(t *testing.T) {
	l := ReLULUT(257)
	cases := map[int64]int64{0: 0, 5: 5, 127: 127, -1: 0, -100: 0}
	for in, want := range cases {
		if got := l.Lookup(in); got != want {
			t.Errorf("ReLU(%d) = %d want %d", in, got, want)
		}
	}
}

func fbsKit(t testing.TB, logN, limbs int, tq uint64) (*bfv.Context, *bfv.Encryptor, *bfv.Decryptor, *bfv.Evaluator, *bfv.Encoder) {
	t.Helper()
	primes, err := ring.GenerateNTTPrimes(50, logN, limbs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := bfv.NewContext(bfv.Parameters{LogN: logN, Qi: primes, T: tq})
	if err != nil {
		t.Fatal(err)
	}
	kg := bfv.NewKeyGenerator(ctx, 71)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	keys := kg.GenKeySet(sk, nil)
	return ctx, bfv.NewEncryptor(ctx, pk, 72), bfv.NewDecryptor(ctx, sk), bfv.NewEvaluator(ctx, keys), bfv.NewEncoder(ctx)
}

func TestHomomorphicFBSReLU(t *testing.T) {
	ctx, enc, dec, ev, cod := fbsKit(t, 6, 6, 257)
	lut := NewLUT(257, func(x int64) int64 {
		// Fused ReLU + remap by /4 (a miniature Athena activation).
		y := x
		if y < 0 {
			y = 0
		}
		return y / 4
	})
	fe, err := NewEvaluator(ctx, lut)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, ctx.N)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := range vals {
		vals[i] = int64(rng.Uint64N(257)) - 128
	}
	ct := enc.Encrypt(cod.EncodeSlots(vals))
	out, err := fe.Evaluate(ev, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := cod.DecodeSlots(dec.Decrypt(out))
	for i, v := range vals {
		if got[i] != lut.Lookup(v) {
			t.Fatalf("slot %d: FBS(%d)=%d want %d", i, v, got[i], lut.Lookup(v))
		}
	}
	if fe.CMults == 0 || fe.SMults == 0 {
		t.Fatal("operation counters not recorded")
	}
	bs, gs := fe.Steps()
	if bs*gs < 257 {
		t.Fatalf("BSGS split %d×%d does not cover the table", bs, gs)
	}
	t.Logf("FBS t=257: %d CMult, %d SMult, %d HAdd", fe.CMults, fe.SMults, fe.HAdds)
}

func TestHomomorphicFBSSigmoidLike(t *testing.T) {
	// An arbitrary non-polynomial function: the point of FBS is that any
	// table works, not just ReLU.
	ctx, enc, dec, ev, cod := fbsKit(t, 5, 6, 257)
	lut := NewLUT(257, func(x int64) int64 {
		switch {
		case x < -32:
			return 0
		case x > 32:
			return 16
		default:
			return (x + 32) / 4
		}
	})
	fe, err := NewEvaluator(ctx, lut)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, ctx.N)
	for i := range vals {
		vals[i] = int64(i*7%257) - 128
	}
	ct := enc.Encrypt(cod.EncodeSlots(vals))
	out, err := fe.Evaluate(ev, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := cod.DecodeSlots(dec.Decrypt(out))
	for i, v := range vals {
		if got[i] != lut.Lookup(v) {
			t.Fatalf("slot %d: got %d want %d", i, got[i], lut.Lookup(v))
		}
	}
}

func TestFBSModulusMismatch(t *testing.T) {
	ctx, _, _, _, _ := fbsKit(t, 5, 3, 257)
	if _, err := NewEvaluator(ctx, ReLULUT(17)); err == nil {
		t.Fatal("modulus mismatch accepted")
	}
}

func TestHomomorphicFBSFullAthenaT(t *testing.T) {
	// The full t = 65537 table at reduced ring degree: the exact
	// Athena-scale FBS (bs = gs = 256, CMult depth ~17) exercised end to
	// end in software.
	if testing.Short() {
		t.Skip("full-t FBS is slow; run without -short")
	}
	ctx, enc, dec, ev, cod := fbsKit(t, 5, 10, 65537)
	scale := 1.0 / 512.0
	lut := NewLUT(65537, func(x int64) int64 {
		// w7a7-style fused ReLU+remap: 17-bit MAC -> 7-bit activation.
		if x < 0 {
			return 0
		}
		y := int64(float64(x)*scale + 0.5)
		if y > 127 {
			y = 127
		}
		return y
	})
	fe, err := NewEvaluator(ctx, lut)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, ctx.N)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := range vals {
		vals[i] = int64(rng.Uint64N(1<<17)) - (1 << 16)
	}
	ct := enc.Encrypt(cod.EncodeSlots(vals))
	out, err := fe.Evaluate(ev, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := cod.DecodeSlots(dec.Decrypt(out))
	for i, v := range vals {
		if got[i] != lut.Lookup(v) {
			t.Fatalf("slot %d: FBS(%d)=%d want %d (budget %v)", i, v, got[i], lut.Lookup(v), dec.NoiseBudget(out))
		}
	}
	t.Logf("full-t FBS: %d CMult, %d SMult, %d HAdd", fe.CMults, fe.SMults, fe.HAdds)
}
