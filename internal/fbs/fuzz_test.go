package fbs

import (
	"testing"

	"athena/internal/ring"
)

// FuzzInterpolate: any byte-derived table over Z_257 must interpolate to
// a polynomial that reproduces it at the probed points.
func FuzzInterpolate(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 128, 7})
	const tq = 257
	tm := ring.NewModulus(tq)
	f.Fuzz(func(t *testing.T, data []byte) {
		l := &LUT{T: tq, Table: make([]uint64, tq)}
		for k := range l.Table {
			if len(data) > 0 {
				l.Table[k] = uint64(data[k%len(data)]) % tq
			}
		}
		c := l.Interpolate()
		for _, x := range []uint64{0, 1, 128, 200, 256} {
			if evalPoly(c, x, tm) != l.Table[x] {
				t.Fatalf("FBS(%d) != LUT(%d)", x, x)
			}
		}
	})
}
