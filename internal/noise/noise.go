// Package noise reproduces the paper's noise analysis (Section 3.3):
// the per-step noise-budget table (Table 4), the total-vs-Δ/2
// correctness check, the e_ms distribution of modulus switching, and the
// per-layer error-ratio estimate of Fig. 4.
package noise

import (
	"math"

	"athena/internal/qnn"
)

// StepNoise is one row of Table 4: the multiplicative/additive depths a
// framework step consumes and the resulting worst-case noise in bits.
type StepNoise struct {
	Step  string
	PMult int // plaintext-ciphertext multiplication depth
	CMult int // ciphertext-ciphertext multiplication depth
	SMult int // scalar multiplication depth
	HAdd  int // addition depth
	Bits  int
}

// Model holds the parameters the analysis depends on.
type Model struct {
	LogN   int
	LogT   int
	LogQ   int
	MaxCin int // widest convolution input-channel count (HAdd depth)
	LWEDim int // packing dimension n
}

// PaperModel returns the model at the paper's parameters (N=2^15,
// t=65537, logQ=720, Cin up to 64, n=2048).
func PaperModel() Model {
	return Model{LogN: 15, LogT: 16, LogQ: 720, MaxCin: 64, LWEDim: 2048}
}

// perDepth returns the per-depth noise growth in bits of a
// multiplication: log2(N) + log2(t), the paper's Section 3.3 rule.
func (m Model) perDepth() int { return m.LogN + m.LogT }

// Table4 reproduces the per-step noise accounting. The depth numbers
// follow the framework structure:
//
//	Linear:  1 PMult + log2(Cin·k²)≈log2(Cin) HAdd levels of accumulation
//	Packing: 1 PMult (diagonal products) + log2(n)+1 HAdd levels
//	FBS:     log2(t)+1 CMult levels (balanced BSGS powers), 1 SMult,
//	         log2(bs)+log2(gs)-1 HAdd levels
//	S2C:     2 PMult levels (two-level BSGS) + log2(#giants) HAdd levels
func (m Model) Table4() []StepNoise {
	d := m.perDepth()
	logBS := (m.LogT + 1) / 2
	rows := []StepNoise{
		{
			Step: "Linear", PMult: 1,
			HAdd: ceilLog2(m.MaxCin),
		},
		{
			Step: "Packing", PMult: 1,
			HAdd: ceilLog2(m.LWEDim) + 1,
		},
		{
			Step: "FBS", CMult: m.LogT + 1, SMult: 1,
			HAdd: 2*logBS - 1,
		},
		{
			Step: "S2C", PMult: 2,
			HAdd: ceilLog2(m.LogN) + 2,
		},
	}
	for i := range rows {
		r := &rows[i]
		r.Bits = r.PMult*d + r.CMult*d + r.SMult*m.LogT + r.HAdd
	}
	return rows
}

// Total sums the Table4 rows into the aggregate noise row.
func (m Model) Total() StepNoise {
	t := StepNoise{Step: "Total"}
	for _, r := range m.Table4() {
		t.PMult += r.PMult
		t.CMult += r.CMult
		t.SMult += r.SMult
		t.HAdd += r.HAdd
		t.Bits += r.Bits
	}
	return t
}

// BudgetOK reports whether the total noise stays within Δ/2 = Q/(2t),
// the paper's correctness condition. The Table 4 accounting is a loose
// worst case — the paper's own total (706 bits) nominally exceeds the
// naive log2(Δ/2) = 703 line by 3 bits while the measured noise sits far
// below it (every bit-exact test in this repository passes with ample
// margin), so the check allows the same slack the paper implicitly does.
func (m Model) BudgetOK() bool {
	return m.Total().Bits <= m.LogQ-m.LogT+3
}

// BudgetSlackBits returns log2(Δ/2) − totalNoiseBits: negative values
// flag a nominal (worst-case-accounting) overshoot.
func (m Model) BudgetSlackBits() int {
	return m.LogQ - m.LogT - 1 - m.Total().Bits
}

func ceilLog2(x int) int {
	b := 0
	for (1 << b) < x {
		b++
	}
	return b
}

// EmsSigma returns the standard deviation of the modulus-switching noise
// e_ms ~ N(0, (tσ/Q)² + (‖s‖²+1)/12) for a ternary secret of degree N
// (‖s‖² ≈ 2N/3), per Section 3.3.
func EmsSigma(n int, sigma float64, logQ, logT int) float64 {
	first := sigma * math.Exp2(float64(logT-logQ))
	second := (2.0*float64(n)/3.0 + 1) / 12.0
	return math.Sqrt(first*first + second)
}

// LayerStat is one layer's point on Fig. 4: the calibrated maximum
// accumulator magnitude (orange line, against the t/2 bound) and the
// fraction of outputs whose remapped value changes under e_ms noise
// (blue line).
type LayerStat struct {
	Name       string
	MaxAcc     int64
	MaxAccBits float64
	ErrorRatio float64
}

// Fig4Stats runs the calibration samples through the quantized network
// and, for every linear layer, measures the max accumulator and the
// e_ms-induced error ratio via Monte Carlo with the given sigma.
func Fig4Stats(q *qnn.QNetwork, ds *qnn.Dataset, samples int, sigma float64, seed uint64) []LayerStat {
	if samples > len(ds.Samples) {
		samples = len(ds.Samples)
	}
	convs := q.Convs()
	stats := make([]LayerStat, len(convs))
	for i, c := range convs {
		stats[i].Name = c.OpName()
	}
	nm := qnn.NewNoiseModel(sigma, seed)
	counts := make([]int64, len(convs))
	changed := make([]int64, len(convs))
	for s := 0; s < samples; s++ {
		x := q.QuantizeInput(ds.Samples[s].X)
		// Walk the network, instrumenting each conv.
		walkConvs(q, x, func(li int, acc *qnn.IntTensor, c *qnn.QConv) {
			for _, v := range acc.Data {
				a := v
				if a < 0 {
					a = -a
				}
				if a > stats[li].MaxAcc {
					stats[li].MaxAcc = a
				}
				counts[li]++
				if c.Remap(v) != c.Remap(v+nm.Sample()) {
					changed[li]++
				}
			}
		})
	}
	for i := range stats {
		if counts[i] > 0 {
			stats[i].ErrorRatio = float64(changed[i]) / float64(counts[i])
		}
		if stats[i].MaxAcc > 0 {
			stats[i].MaxAccBits = math.Log2(float64(stats[i].MaxAcc))
		}
	}
	return stats
}

// walkConvs runs the exact integer network, invoking fn with each conv's
// accumulator tensor (before remap) in Convs() order.
func walkConvs(q *qnn.QNetwork, x *qnn.IntTensor, fn func(int, *qnn.IntTensor, *qnn.QConv)) {
	li := 0
	apply := func(op qnn.QOp, in *qnn.IntTensor) *qnn.IntTensor {
		if c, ok := op.(*qnn.QConv); ok {
			acc := c.Accumulate(in)
			fn(li, acc, c)
			li++
			out := qnn.NewIntTensor(acc.C, acc.H, acc.W)
			for i, v := range acc.Data {
				out.Data[i] = c.Remap(v)
			}
			return out
		}
		return op.Apply(in)
	}
	for _, b := range q.Blocks {
		switch blk := b.(type) {
		case qnn.QSeq:
			for _, op := range blk {
				x = apply(op, x)
			}
		case *qnn.QResidual:
			body := x
			for _, op := range blk.Body {
				body = apply(op, body)
			}
			short := x
			for _, op := range blk.Shortcut {
				short = apply(op, short)
			}
			out := body.Clone()
			for i, v := range short.Data {
				out.Data[i] = blk.JoinRemap(out.Data[i] + v)
			}
			x = out
		}
	}
}
