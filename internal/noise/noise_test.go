package noise

import (
	"math"
	"testing"

	"athena/internal/qnn"
)

func TestTable4MatchesPaper(t *testing.T) {
	// Table 4 at the paper's parameters: Linear 37, Packing 43, FBS 558,
	// S2C 68, Total 706 bits.
	m := PaperModel()
	want := map[string]int{"Linear": 37, "Packing": 43, "FBS": 558, "S2C": 68}
	for _, r := range m.Table4() {
		if w, ok := want[r.Step]; ok {
			if r.Bits != w {
				t.Errorf("%s: %d bits, paper reports %d", r.Step, r.Bits, w)
			}
		}
	}
	total := m.Total()
	if total.Bits != 706 {
		t.Errorf("total %d bits, paper reports 706", total.Bits)
	}
	if total.CMult != 17 || total.PMult != 4 || total.SMult != 1 {
		t.Errorf("depth counts %+v do not match Table 4", total)
	}
	if !m.BudgetOK() {
		t.Error("paper parameters should satisfy the Δ/2 budget")
	}
}

func TestBudgetFailsWhenQTooSmall(t *testing.T) {
	m := PaperModel()
	m.LogQ = 600
	if m.BudgetOK() {
		t.Error("600-bit Q cannot absorb 706 bits of noise")
	}
}

func TestEmsSigma(t *testing.T) {
	// At N=2^15 the secret-key term dominates: sigma ≈ sqrt(2N/36) ≈ 42.7,
	// i.e. e_ms "typically within about 4 bits" as the paper states
	// (log2(42.7) ≈ 5.4, with typical draws |e| ≲ 2σ).
	s := EmsSigma(1<<15, 3.2, 720, 16)
	if s < 35 || s < 1 || s > 55 {
		t.Fatalf("e_ms sigma %.1f outside the expected range", s)
	}
	// The rounding term must dominate the scaled-noise term entirely.
	s2 := EmsSigma(1<<15, 0, 720, 16)
	if math.Abs(s-s2) > 1e-6 {
		t.Fatalf("scaled noise term should be negligible: %v vs %v", s, s2)
	}
}

func TestFig4Stats(t *testing.T) {
	train := qnn.SynthDigits(200, 3)
	net := qnn.NewMNISTNet(4)
	cfg := qnn.DefaultTrainConfig()
	cfg.Epochs = 2
	qnn.Train(net, train, cfg)
	cfg2 := qnn.DefaultQuantConfig()
	cfg2.AccCap = 30000 // keep every layer inside t/2 at t=65537
	qnet, err := qnn.Quantize(net, train, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	stats := Fig4Stats(qnet, train, 16, 16, 7)
	if len(stats) != 3 { // conv + 2 dense
		t.Fatalf("expected 3 linear layers, got %d", len(stats))
	}
	for _, s := range stats {
		if s.MaxAcc <= 0 {
			t.Fatalf("%s: max accumulator not recorded", s.Name)
		}
		// w7a7 accumulators stay within the t=65537 bound (Fig. 4's check).
		if s.MaxAcc >= 65537/2 {
			t.Fatalf("%s: accumulator %d exceeds t/2", s.Name, s.MaxAcc)
		}
		// Error ratio: a small but nonzero fraction, as in the paper
		// ("most layers below 6%, max below 11%") — with sigma=16 we
		// allow a wider band but it must stay a small minority.
		if s.ErrorRatio < 0 || s.ErrorRatio > 0.25 {
			t.Fatalf("%s: error ratio %.3f implausible", s.Name, s.ErrorRatio)
		}
	}
	// Zero noise must mean zero errors.
	clean := Fig4Stats(qnet, train, 8, 0, 7)
	for _, s := range clean {
		if s.ErrorRatio != 0 {
			t.Fatalf("%s: nonzero error ratio with zero noise", s.Name)
		}
	}
}
