package pack

import (
	"runtime"
	"sync"
	"testing"

	"athena/internal/bfv"
	"athena/internal/lwe"
)

// packCTBytes flattens a ciphertext for bit-identity comparison.
func packCTBytes(ct *bfv.Ciphertext) []uint64 {
	var out []uint64
	for _, poly := range [][][]uint64{ct.C0.Coeffs, ct.C1.Coeffs} {
		for _, limb := range poly {
			out = append(out, limb...)
		}
	}
	return out
}

func samePackCT(a, b *bfv.Ciphertext) bool {
	x, y := packCTBytes(a), packCTBytes(b)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// TestPackBitIdenticalAcrossGOMAXPROCS pins the determinism contract of
// the parallel giant-step path: Pack output is bit-identical whether the
// BSGS loop runs inline or fans out.
func TestPackBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	k := newKit(t, 6, 3)
	sk := lwe.NewSecretKey(16, 31)
	p, err := NewPacker(k.ctx, k.enc, sk)
	if err != nil {
		t.Fatal(err)
	}
	ev := k.evaluator(p.GaloisElements())
	smp := lwe.NewStream(32)
	cts := make([]lwe.Ciphertext, k.ctx.N)
	for i := range cts {
		cts[i] = lwe.Encrypt(sk, uint64(i)%k.ctx.Params.T, k.ctx.Params.T, 3.2, smp)
	}

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	var want *bfv.Ciphertext
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		got, err := p.PackWith(ev, p.NewScratch(), cts)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !samePackCT(got, want) {
			t.Fatalf("GOMAXPROCS=%d: Pack output differs from serial result", procs)
		}
	}
}

// TestPackConcurrentScratches checks that distinct Scratches over one
// Packer can pack concurrently and agree with the sequential result.
func TestPackConcurrentScratches(t *testing.T) {
	k := newKit(t, 6, 3)
	sk := lwe.NewSecretKey(16, 41)
	p, err := NewPacker(k.ctx, k.enc, sk)
	if err != nil {
		t.Fatal(err)
	}
	ev := k.evaluator(p.GaloisElements())
	smp := lwe.NewStream(42)
	const jobs = 5
	batches := make([][]lwe.Ciphertext, jobs)
	want := make([]*bfv.Ciphertext, jobs)
	for j := range batches {
		batches[j] = make([]lwe.Ciphertext, 20+j)
		for i := range batches[j] {
			batches[j][i] = lwe.Encrypt(sk, uint64(j*37+i)%k.ctx.Params.T, k.ctx.Params.T, 3.2, smp)
		}
		want[j], err = p.Pack(ev, batches[j])
		if err != nil {
			t.Fatal(err)
		}
	}
	got := make([]*bfv.Ciphertext, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			got[j], errs[j] = p.PackWith(ev.ShallowCopy(), p.NewScratch(), batches[j])
		}(j)
	}
	wg.Wait()
	for j := range got {
		if errs[j] != nil {
			t.Fatal(errs[j])
		}
		if !samePackCT(got[j], want[j]) {
			t.Fatalf("job %d: concurrent Pack differs from sequential", j)
		}
	}
}
