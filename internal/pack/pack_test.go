package pack

import (
	"math/rand/v2"
	"testing"

	"athena/internal/bfv"
	"athena/internal/lwe"
	"athena/internal/ring"
)

type kit struct {
	ctx *bfv.Context
	sk  *bfv.SecretKey
	kg  *bfv.KeyGenerator
	enc *bfv.Encryptor
	dec *bfv.Decryptor
	cod *bfv.Encoder
}

func newKit(t testing.TB, logN, limbs int) *kit {
	t.Helper()
	primes, err := ring.GenerateNTTPrimes(50, logN, limbs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := bfv.NewContext(bfv.Parameters{LogN: logN, Qi: primes, T: 65537})
	if err != nil {
		t.Fatal(err)
	}
	kg := bfv.NewKeyGenerator(ctx, 21)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	return &kit{
		ctx: ctx,
		sk:  sk,
		kg:  kg,
		enc: bfv.NewEncryptor(ctx, pk, 22),
		dec: bfv.NewDecryptor(ctx, sk),
		cod: bfv.NewEncoder(ctx),
	}
}

func (k *kit) evaluator(els []uint64) *bfv.Evaluator {
	return bfv.NewEvaluator(k.ctx, k.kg.GenKeySet(k.sk, els))
}

// plainMatVec computes M·x mod t, centered.
func plainMatVec(m [][]uint64, x []int64, tm ring.Modulus) []int64 {
	out := make([]int64, len(m))
	for i := range m {
		var acc uint64
		for j := range m[i] {
			acc = tm.Add(acc, tm.Mul(m[i][j], tm.ReduceInt64(x[j])))
		}
		out[i] = tm.Centered(acc)
	}
	return out
}

func TestTransformMatchesPlainMatrix(t *testing.T) {
	k := newKit(t, 6, 4)
	n := k.ctx.N
	rng := rand.New(rand.NewPCG(7, 8))

	m := make([][]uint64, n)
	for i := range m {
		m[i] = make([]uint64, n)
		for j := range m[i] {
			// Sparse-ish random matrix with small entries.
			if rng.Uint64N(4) == 0 {
				m[i][j] = rng.Uint64N(k.ctx.Params.T)
			}
		}
	}
	tr, err := CompileTransform(k.ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	ev := k.evaluator(tr.GaloisElements())

	x := make([]int64, n)
	for i := range x {
		x[i] = int64(rng.Uint64N(2000)) - 1000
	}
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(x))
	out, err := tr.Apply(ev, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := k.cod.DecodeCoeffs(k.dec.Decrypt(out))
	want := plainMatVec(m, x, k.ctx.TMod)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coeff %d: got %d want %d", i, got[i], want[i])
		}
	}
	if b := k.dec.NoiseBudget(out); b <= 0 {
		t.Fatalf("budget exhausted by transform: %v", b)
	}
}

func TestTransformIdentityAndZero(t *testing.T) {
	k := newKit(t, 5, 3)
	n := k.ctx.N
	id := make([][]uint64, n)
	zero := make([][]uint64, n)
	for i := range id {
		id[i] = make([]uint64, n)
		zero[i] = make([]uint64, n)
		id[i][i] = 1
	}
	x := randInts(n, 500, 31)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(x))

	trI, err := CompileTransform(k.ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	ev := k.evaluator(trI.GaloisElements())
	out, err := trI.Apply(ev, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := k.cod.DecodeCoeffs(k.dec.Decrypt(out))
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("identity transform broke coeff %d", i)
		}
	}

	trZ, err := CompileTransform(k.ctx, zero)
	if err != nil {
		t.Fatal(err)
	}
	out, err = trZ.Apply(ev, ct)
	if err != nil {
		t.Fatal(err)
	}
	got = k.cod.DecodeCoeffs(k.dec.Decrypt(out))
	for i := range got {
		if got[i] != 0 {
			t.Fatalf("zero transform produced %d at %d", got[i], i)
		}
	}
}

func randInts(n int, bound int64, seed uint64) []int64 {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(rng.Uint64N(uint64(2*bound))) - bound
	}
	return v
}

func TestS2CMovesSlotsToCoefficients(t *testing.T) {
	k := newKit(t, 6, 4)
	n := k.ctx.N
	vals := randInts(n, 3000, 41)
	ct := k.enc.Encrypt(k.cod.EncodeSlots(vals))

	tr, err := CompileTransform(k.ctx, S2CMatrix(k.ctx))
	if err != nil {
		t.Fatal(err)
	}
	ev := k.evaluator(tr.GaloisElements())
	out, err := tr.Apply(ev, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := k.cod.DecodeCoeffs(k.dec.Decrypt(out))
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("coeff %d: got %d want slot value %d", i, got[i], vals[i])
		}
	}
}

func TestC2SMovesCoefficientsToSlots(t *testing.T) {
	k := newKit(t, 6, 4)
	n := k.ctx.N
	vals := randInts(n, 3000, 43)
	ct := k.enc.Encrypt(k.cod.EncodeCoeffs(vals))

	tr, err := CompileTransform(k.ctx, C2SMatrix(k.ctx))
	if err != nil {
		t.Fatal(err)
	}
	ev := k.evaluator(tr.GaloisElements())
	out, err := tr.Apply(ev, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := k.cod.DecodeSlots(k.dec.Decrypt(out))
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("slot %d: got %d want coefficient %d", i, got[i], vals[i])
		}
	}
}

func TestS2CAfterC2SIsIdentityMatrix(t *testing.T) {
	k := newKit(t, 5, 3)
	n := k.ctx.N
	s2c := S2CMatrix(k.ctx)
	c2s := C2SMatrix(k.ctx)
	tm := k.ctx.TMod
	// (S2C·C2S)[i][j] must be δ_ij.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc uint64
			for l := 0; l < n; l++ {
				acc = tm.Add(acc, tm.Mul(s2c[i][l], c2s[l][j]))
			}
			want := uint64(0)
			if i == j {
				want = 1
			}
			if acc != want {
				t.Fatalf("S2C·C2S[%d][%d] = %d", i, j, acc)
			}
		}
	}
}

func TestPackerRecoversLWEPhases(t *testing.T) {
	k := newKit(t, 6, 4)
	tq := k.ctx.Params.T
	lweSK := lwe.NewSecretKey(16, 51)
	p, err := NewPacker(k.ctx, k.enc, lweSK)
	if err != nil {
		t.Fatal(err)
	}
	ev := k.evaluator(p.GaloisElements())

	// Noiseless LWE ciphertexts make the packed slots exact.
	smp := lwe.NewStream(52)
	count := 48 // fewer than N to exercise padding
	msgs := make([]uint64, count)
	cts := make([]lwe.Ciphertext, count)
	for i := range cts {
		msgs[i] = smp.Uint64N(tq)
		cts[i] = lwe.Encrypt(lweSK, msgs[i], tq, 0, smp)
	}
	out, err := p.Pack(ev, cts)
	if err != nil {
		t.Fatal(err)
	}
	got := k.cod.DecodeSlots(k.dec.Decrypt(out))
	tm := k.ctx.TMod
	for i := 0; i < count; i++ {
		want := tm.Centered(msgs[i])
		if got[i] != want {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want)
		}
	}
	for i := count; i < k.ctx.N; i++ {
		if got[i] != 0 {
			t.Fatalf("padding slot %d nonzero: %d", i, got[i])
		}
	}
	if b := k.dec.NoiseBudget(out); b < 10 {
		t.Fatalf("packed ciphertext budget too small: %v", b)
	}
}

func TestPackerNoisyPhases(t *testing.T) {
	// With real LWE noise the packed slots carry m + e: check |e| small.
	k := newKit(t, 6, 4)
	tq := k.ctx.Params.T
	lweSK := lwe.NewSecretKey(32, 53)
	p, err := NewPacker(k.ctx, k.enc, lweSK)
	if err != nil {
		t.Fatal(err)
	}
	ev := k.evaluator(p.GaloisElements())
	smp := lwe.NewStream(54)
	count := k.ctx.N
	msgs := make([]uint64, count)
	cts := make([]lwe.Ciphertext, count)
	for i := range cts {
		msgs[i] = smp.Uint64N(1 << 15)
		cts[i] = lwe.Encrypt(lweSK, msgs[i], tq, 3.2, smp)
	}
	out, err := p.Pack(ev, cts)
	if err != nil {
		t.Fatal(err)
	}
	got := k.cod.DecodeSlots(k.dec.Decrypt(out))
	tm := k.ctx.TMod
	for i := 0; i < count; i++ {
		diff := got[i] - tm.Centered(msgs[i])
		if diff > 25 || diff < -25 {
			t.Fatalf("slot %d: error %d beyond LWE noise bound", i, diff)
		}
	}
}

func TestPackerRejectsBadInput(t *testing.T) {
	k := newKit(t, 5, 3)
	lweSK := lwe.NewSecretKey(8, 55)
	p, err := NewPacker(k.ctx, k.enc, lweSK)
	if err != nil {
		t.Fatal(err)
	}
	ev := k.evaluator(p.GaloisElements())
	if _, err := p.Pack(ev, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	bad := []lwe.Ciphertext{{A: make([]uint64, 4), Q: k.ctx.Params.T}}
	if _, err := p.Pack(ev, bad); err == nil {
		t.Fatal("wrong dimension accepted")
	}
	bad = []lwe.Ciphertext{{A: make([]uint64, 8), Q: 123}}
	if _, err := p.Pack(ev, bad); err == nil {
		t.Fatal("wrong modulus accepted")
	}
	if _, err := NewPacker(k.ctx, k.enc, lwe.NewSecretKey(12, 56)); err == nil {
		t.Fatal("non-divisor dimension accepted")
	}
}

func TestBabySteps(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 4: 2, 16: 4, 64: 8, 256: 16, 2048: 32}
	for n, want := range cases {
		if got := BabySteps(n); got != want {
			t.Errorf("BabySteps(%d) = %d want %d", n, got, want)
		}
	}
}
