// Package pack implements Step ④ and the slot-to-coefficient bridge of
// the Athena framework:
//
//   - Packer homomorphically decrypts a batch of LWE ciphertexts into the
//     slots of one fresh BFV ciphertext at full modulus Q. The LWE secret
//     is encrypted slot-wise under the BFV key (the "packing key"); the
//     plaintext LWE matrix then multiplies it with a Baby-Step Giant-Step
//     (BSGS) diagonal product, exactly the ⟨a, s⟩ + b evaluation the
//     paper describes. Because the output is a fresh encryption under Q,
//     this step *is* the noise refresh (bootstrapping).
//
//   - Transform compiles an arbitrary Z_t-linear map on the plaintext
//     ring into a sum Σ_g p_g·σ_g over Galois automorphisms, evaluated
//     homomorphically with BSGS grouping. The slot-to-coefficient (S2C)
//     and coefficient-to-slot (C2S) transforms are instances.
package pack

import (
	"fmt"

	"athena/internal/bfv"
	"athena/internal/lwe"
	"athena/internal/par"
)

// Packer packs LWE ciphertexts (dimension n, modulus t) into BFV slots.
// The key material (babies, rotIdx) is immutable after construction;
// per-call staging lives in a Scratch, so concurrent Pack calls are safe
// as long as each caller holds its own Scratch (see PackWith).
type Packer struct {
	ctx *bfv.Context
	n   int
	bs  int // baby-step count (divides n)

	// babies[b] encrypts the LWE secret replicated across the slots and
	// pre-rotated by b: slot i holds s[(i%row + b) mod n]. Pre-encrypting
	// the rotations at key generation removes all baby-step rotations at
	// run time.
	babies []*bfv.Ciphertext

	// babyS[b] holds the Shoup companions of babies[b]. The packing keys
	// are fixed for the life of the packer while the diagonal plaintext
	// changes every call, so the companion lives on the ciphertext side
	// and the baby-step products run MulPlainFixed* instead of Barrett.
	babyS []*bfv.CiphertextShoup

	// rotIdx[a][i] is the slot feeding slot i after the giant-step
	// pre-rotation by -a·bs, computed once at construction so each Pack
	// call builds its diagonals with a single gather instead of re-deriving
	// the row/column permutation per element.
	rotIdx [][]int

	// sc is the default Scratch behind the single-caller Pack API.
	sc *Scratch
}

// Scratch holds the per-call staging of one Pack caller: the diagonal
// value vector with its encoded/lifted forms, an encoder (whose staging
// buffer makes it single-goroutine state), and the lazily-built worker
// lanes for the giant-step fan-out. Distinct Scratches over one Packer
// may run concurrently; a single Scratch may not.
type Scratch struct {
	p   *Packer
	cod *bfv.Encoder
	d   []int64
	pt  *bfv.Plaintext
	pm  *bfv.PlaintextMul

	// inner stages one giant step's baby-step inner sum on the
	// allocation-free PackInto path. Eager: PackInto promises zero
	// steady-state allocations, so nothing in it may lazily init.
	inner *bfv.Ciphertext

	// Giant-step fan-out lanes, keyed to the evaluator passed to
	// PackWith and reused while it stays the same.
	base  *bfv.Evaluator
	lanes *par.Pool[*packLane]
}

// packLane is one worker of the giant-step fan-out: a ShallowCopy'd
// evaluator plus its own diagonal staging buffers.
type packLane struct {
	ev  *bfv.Evaluator
	cod *bfv.Encoder
	d   []int64
	pt  *bfv.Plaintext
	pm  *bfv.PlaintextMul
}

// NewScratch returns staging state for one concurrent Pack caller.
func (p *Packer) NewScratch() *Scratch {
	return &Scratch{
		p:     p,
		cod:   bfv.NewEncoder(p.ctx),
		d:     make([]int64, p.ctx.N),
		pt:    p.ctx.NewPlaintext(),
		pm:    &bfv.PlaintextMul{Value: p.ctx.RingQ.NewPoly()},
		inner: p.ctx.NewCiphertext(),
	}
}

// lanePool returns the fan-out lanes for ev, rebuilding them when the
// base evaluator changes.
func (sc *Scratch) lanePool(ev *bfv.Evaluator) *par.Pool[*packLane] {
	if sc.lanes == nil || sc.base != ev {
		sc.base = ev
		p := sc.p
		sc.lanes = par.NewPool(func() *packLane {
			return &packLane{
				ev:  ev.ShallowCopy(),
				cod: bfv.NewEncoder(p.ctx),
				d:   make([]int64, p.ctx.N),
				pt:  p.ctx.NewPlaintext(),
				pm:  &bfv.PlaintextMul{Value: p.ctx.RingQ.NewPoly()},
			}
		})
	}
	return sc.lanes
}

// BabySteps picks the BSGS split for dimension n: the largest power of
// two ≤ √n (so both bs and n/bs divide n).
func BabySteps(n int) int {
	bs := 1
	for bs*bs < n {
		bs <<= 1
	}
	if bs*bs > n {
		bs >>= 1
	}
	return bs
}

// NewPacker builds a packer for LWE dimension n = len(sk.S). The
// encryptor must hold the BFV public key; the LWE secret is embedded in
// the packing keys (encrypted) and not retained.
func NewPacker(ctx *bfv.Context, enc *bfv.Encryptor, sk *lwe.SecretKey) (*Packer, error) {
	n := sk.Dim()
	row := ctx.N / 2
	if n > row || row%n != 0 {
		return nil, fmt.Errorf("pack: LWE dimension %d must divide the row size %d", n, row)
	}
	cod := bfv.NewEncoder(ctx)
	bs := BabySteps(n)
	babies := make([]*bfv.Ciphertext, bs)
	vals := make([]int64, ctx.N)
	for b := 0; b < bs; b++ {
		for i := 0; i < ctx.N; i++ {
			vals[i] = sk.S[(i%row+b)%n]
		}
		babies[b] = enc.Encrypt(cod.EncodeSlots(vals))
	}
	return NewPackerFromKeys(ctx, n, babies)
}

// NewPackerFromKeys rebuilds a packer from its public key material: the
// pre-rotated baby-step encryptions of the LWE secret (see NewPacker).
// This is the server-side constructor of a deployment where the client
// generates keys and uploads Keys(); no secret material is involved.
func NewPackerFromKeys(ctx *bfv.Context, n int, babies []*bfv.Ciphertext) (*Packer, error) {
	row := ctx.N / 2
	if n <= 0 || n > row || row%n != 0 {
		return nil, fmt.Errorf("pack: LWE dimension %d must divide the row size %d", n, row)
	}
	bs := BabySteps(n)
	if len(babies) != bs {
		return nil, fmt.Errorf("pack: %d packing keys, dimension %d needs %d", len(babies), n, bs)
	}
	p := &Packer{ctx: ctx, n: n, bs: bs, babies: babies}
	p.babyS = make([]*bfv.CiphertextShoup, bs)
	for b := range babies {
		p.babyS[b] = ctx.NewCiphertextShoup(babies[b])
	}
	gs := n / bs
	p.rotIdx = make([][]int, gs)
	for a := 0; a < gs; a++ {
		idx := make([]int, ctx.N)
		for i := range idx {
			r, c := i/row, i%row
			idx[i] = r*row + ((c-a*bs)%row+row)%row
		}
		p.rotIdx[a] = idx
	}
	p.sc = p.NewScratch()
	return p, nil
}

// Keys exposes the packer's public key material for serialization: the
// LWE dimension and the baby-step packing-key ciphertexts. The returned
// slice is the packer's own (treat as read-only).
func (p *Packer) Keys() (n int, babies []*bfv.Ciphertext) { return p.n, p.babies }

// GaloisElements returns the rotation elements the evaluator needs:
// multiples of the baby-step count.
func (p *Packer) GaloisElements() []uint64 {
	gs := p.n / p.bs
	rots := make([]int, 0, gs-1)
	for a := 1; a < gs; a++ {
		rots = append(rots, a*p.bs)
	}
	return bfv.RotationGaloisElements(p.ctx, rots)
}

// Pack homomorphically decrypts cts into slots 0..len(cts)-1 of one BFV
// ciphertext. All inputs must have dimension n and modulus t. At most N
// ciphertexts fit. Pack uses the packer's default scratch and is
// therefore single-caller state; concurrent callers use PackWith with a
// Scratch each.
func (p *Packer) Pack(ev *bfv.Evaluator, cts []lwe.Ciphertext) (*bfv.Ciphertext, error) {
	return p.PackWith(ev, p.sc, cts)
}

// PackWith is Pack with caller-owned staging: distinct Scratches over
// one Packer may run concurrently (the key material is read-only). The
// BSGS giant steps fan out across worker lanes — each a ShallowCopy of
// ev with its own diagonal staging — and the partial products are
// combined in giant-step order, so the output is bit-identical at any
// GOMAXPROCS.
func (p *Packer) PackWith(ev *bfv.Evaluator, sc *Scratch, cts []lwe.Ciphertext) (*bfv.Ciphertext, error) {
	ctx := p.ctx
	if len(cts) == 0 || len(cts) > ctx.N {
		return nil, fmt.Errorf("pack: %d ciphertexts for %d slots", len(cts), ctx.N)
	}
	for i := range cts {
		if len(cts[i].A) != p.n {
			return nil, fmt.Errorf("pack: ciphertext %d has dimension %d, want %d", i, len(cts[i].A), p.n)
		}
		if cts[i].Q != ctx.Params.T {
			return nil, fmt.Errorf("pack: ciphertext %d has modulus %d, want t=%d", i, cts[i].Q, ctx.Params.T)
		}
	}
	gs := p.n / p.bs

	// One giant step costs bs diagonal gathers + encodes + plaintext
	// products plus one rotation — always worth a worker; MinGrain 1 lets
	// the fan-out engage even at gs of a few.
	opts := par.Options{MinGrain: 1}
	var acc *bfv.Ciphertext
	if opts.Workers(gs) <= 1 {
		// Serial path: the allocation-free kernel, plus the one output
		// ciphertext this API promises to return fresh.
		out := ctx.NewCiphertext()
		if err := p.PackInto(ev, sc, cts, out); err != nil {
			return nil, err
		}
		return out, nil
	} else {
		inners := make([]*bfv.Ciphertext, gs)
		errs := make([]error, gs)
		pool := sc.lanePool(ev)
		par.ForEach(gs, opts, func(w, a int) {
			ln := pool.Get(w)
			// giantStep stages everything in the lane's ev/cod/diagonal
			// buffers; the Packer fields it reads (BSGS plan, rotation keys)
			// are immutable after NewPacker.
			//lint:allow scratchalias giantStep writes only the lane's scratch; p's plan/key fields are read-only here
			inners[a], errs[a] = p.giantStep(ln.ev, ln.cod, ln.d, ln.pt, ln.pm, cts, a)
		})
		for a := 0; a < gs; a++ {
			if errs[a] != nil {
				return nil, errs[a]
			}
			if acc == nil {
				acc = inners[a]
			} else {
				ev.AddInPlace(acc, inners[a])
			}
		}
	}

	// Add the b terms as a plaintext, reusing the diagonal scratch.
	d := sc.d
	for i := range d {
		d[i] = 0
	}
	for i := range cts {
		d[i] = int64(cts[i].B)
	}
	sc.cod.EncodeSlotsInto(d, sc.pt)
	out := ev.AddPlain(acc, sc.pt)
	return out, nil
}

// PackInto is the allocation-free serial Pack: it writes the packed
// ciphertext into out, staging every giant step in sc. One inference
// batch issues a Pack per FBS layer, so the steady state must not
// churn the heap; the BSGS fan-out of PackWith is traded away for the
// zero-allocation contract (AllocsPerRun holds GOMAXPROCS at 1 anyway,
// so this is also exactly the path the allocation accountant measures).
// out must not alias sc.inner; it may be any ciphertext of the packer's
// context, including one previously returned by Pack.
//
//lint:noalloc
func (p *Packer) PackInto(ev *bfv.Evaluator, sc *Scratch, cts []lwe.Ciphertext, out *bfv.Ciphertext) error {
	ctx := p.ctx
	if len(cts) == 0 || len(cts) > ctx.N {
		return fmt.Errorf("pack: %d ciphertexts for %d slots", len(cts), ctx.N)
	}
	for i := range cts {
		if len(cts[i].A) != p.n {
			return fmt.Errorf("pack: ciphertext %d has dimension %d, want %d", i, len(cts[i].A), p.n)
		}
		if cts[i].Q != ctx.Params.T {
			return fmt.Errorf("pack: ciphertext %d has modulus %d, want t=%d", i, cts[i].Q, ctx.Params.T)
		}
	}
	gs := p.n / p.bs
	for a := 0; a < gs; a++ {
		// Giant step 0 lands directly in out; later steps stage in
		// sc.inner and accumulate.
		dst := out
		if a > 0 {
			dst = sc.inner
		}
		if err := p.giantStepInto(ev, sc.cod, sc.d, sc.pt, sc.pm, cts, a, dst); err != nil {
			return err
		}
		if a > 0 {
			ev.AddInPlace(out, sc.inner)
		}
	}

	// Add the b terms as a plaintext, reusing the diagonal scratch.
	d := sc.d
	for i := range d {
		d[i] = 0
	}
	for i := range cts {
		d[i] = int64(cts[i].B)
	}
	sc.cod.EncodeSlotsInto(d, sc.pt)
	ev.AddPlainInPlace(out, sc.pt)
	return nil
}

// giantStep computes giant step a of the BSGS product: the baby-step
// inner sum Σ_b babies[b]·diag(a·bs+b), pre-rotated by a·bs. The
// plaintext multiplier for giant step a, baby step b is the matrix
// diagonal diag(a·bs+b)[i] = A[i][(col(i)+a·bs+b) mod n] pre-rotated by
// -a·bs; composing both permutations through the cached rotIdx table
// reduces it to one gather per slot.
func (p *Packer) giantStep(ev *bfv.Evaluator, cod *bfv.Encoder, d []int64, pt *bfv.Plaintext, pm *bfv.PlaintextMul, cts []lwe.Ciphertext, a int) (*bfv.Ciphertext, error) {
	inner := p.ctx.NewCiphertext()
	if err := p.giantStepInto(ev, cod, d, pt, pm, cts, a, inner); err != nil {
		return nil, err
	}
	return inner, nil
}

// giantStepInto is giantStep writing into a caller-provided ciphertext
// (the baby-step sum accumulates in dst, and the final giant-step
// rotation runs dst -> dst in the evaluator scratch), so the serial
// Pack path allocates nothing.
//
//lint:noalloc
func (p *Packer) giantStepInto(ev *bfv.Evaluator, cod *bfv.Encoder, d []int64, pt *bfv.Plaintext, pm *bfv.PlaintextMul, cts []lwe.Ciphertext, a int, dst *bfv.Ciphertext) error {
	row := p.ctx.N / 2
	src := p.rotIdx[a]
	for b := 0; b < p.bs; b++ {
		j := a*p.bs + b
		for i := range d {
			s := src[i]
			if s < len(cts) {
				d[i] = int64(cts[s].A[(s%row+j)%p.n])
			} else {
				d[i] = 0
			}
		}
		cod.EncodeSlotsInto(d, pt)
		cod.LiftToMulInto(pt, pm)
		if b == 0 {
			ev.MulPlainFixedInto(p.babies[b], p.babyS[b], pm, dst)
		} else {
			ev.MulPlainFixedAndAdd(p.babies[b], p.babyS[b], pm, dst)
		}
	}
	if a > 0 {
		return ev.RotateRowsInto(dst, a*p.bs, dst)
	}
	return nil
}
