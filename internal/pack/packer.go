// Package pack implements Step ④ and the slot-to-coefficient bridge of
// the Athena framework:
//
//   - Packer homomorphically decrypts a batch of LWE ciphertexts into the
//     slots of one fresh BFV ciphertext at full modulus Q. The LWE secret
//     is encrypted slot-wise under the BFV key (the "packing key"); the
//     plaintext LWE matrix then multiplies it with a Baby-Step Giant-Step
//     (BSGS) diagonal product, exactly the ⟨a, s⟩ + b evaluation the
//     paper describes. Because the output is a fresh encryption under Q,
//     this step *is* the noise refresh (bootstrapping).
//
//   - Transform compiles an arbitrary Z_t-linear map on the plaintext
//     ring into a sum Σ_g p_g·σ_g over Galois automorphisms, evaluated
//     homomorphically with BSGS grouping. The slot-to-coefficient (S2C)
//     and coefficient-to-slot (C2S) transforms are instances.
package pack

import (
	"fmt"

	"athena/internal/bfv"
	"athena/internal/lwe"
)

// Packer packs LWE ciphertexts (dimension n, modulus t) into BFV slots.
type Packer struct {
	ctx *bfv.Context
	cod *bfv.Encoder
	n   int
	bs  int // baby-step count (divides n)

	// babies[b] encrypts the LWE secret replicated across the slots and
	// pre-rotated by b: slot i holds s[(i%row + b) mod n]. Pre-encrypting
	// the rotations at key generation removes all baby-step rotations at
	// run time.
	babies []*bfv.Ciphertext

	// rotIdx[a][i] is the slot feeding slot i after the giant-step
	// pre-rotation by -a·bs, computed once at construction so each Pack
	// call builds its diagonals with a single gather instead of re-deriving
	// the row/column permutation per element.
	rotIdx [][]int
	// Per-call scratch: the diagonal value vector and its encoded/lifted
	// forms. Reused across (a, b) iterations and across Pack calls.
	dScratch []int64
	pt       *bfv.Plaintext
	pm       *bfv.PlaintextMul
}

// BabySteps picks the BSGS split for dimension n: the largest power of
// two ≤ √n (so both bs and n/bs divide n).
func BabySteps(n int) int {
	bs := 1
	for bs*bs < n {
		bs <<= 1
	}
	if bs*bs > n {
		bs >>= 1
	}
	return bs
}

// NewPacker builds a packer for LWE dimension n = len(sk.S). The
// encryptor must hold the BFV public key; the LWE secret is embedded in
// the packing keys (encrypted) and not retained.
func NewPacker(ctx *bfv.Context, enc *bfv.Encryptor, sk *lwe.SecretKey) (*Packer, error) {
	n := sk.Dim()
	row := ctx.N / 2
	if n > row || row%n != 0 {
		return nil, fmt.Errorf("pack: LWE dimension %d must divide the row size %d", n, row)
	}
	cod := bfv.NewEncoder(ctx)
	bs := BabySteps(n)
	p := &Packer{ctx: ctx, cod: cod, n: n, bs: bs, babies: make([]*bfv.Ciphertext, bs)}
	vals := make([]int64, ctx.N)
	for b := 0; b < bs; b++ {
		for i := 0; i < ctx.N; i++ {
			vals[i] = sk.S[(i%row+b)%n]
		}
		p.babies[b] = enc.Encrypt(cod.EncodeSlots(vals))
	}
	gs := n / bs
	p.rotIdx = make([][]int, gs)
	for a := 0; a < gs; a++ {
		idx := make([]int, ctx.N)
		for i := range idx {
			r, c := i/row, i%row
			idx[i] = r*row + ((c-a*bs)%row+row)%row
		}
		p.rotIdx[a] = idx
	}
	p.dScratch = make([]int64, ctx.N)
	p.pt = ctx.NewPlaintext()
	p.pm = &bfv.PlaintextMul{Value: ctx.RingQ.NewPoly()}
	return p, nil
}

// GaloisElements returns the rotation elements the evaluator needs:
// multiples of the baby-step count.
func (p *Packer) GaloisElements() []uint64 {
	gs := p.n / p.bs
	rots := make([]int, 0, gs-1)
	for a := 1; a < gs; a++ {
		rots = append(rots, a*p.bs)
	}
	return bfv.RotationGaloisElements(p.ctx, rots)
}

// Pack homomorphically decrypts cts into slots 0..len(cts)-1 of one BFV
// ciphertext. All inputs must have dimension n and modulus t. At most N
// ciphertexts fit.
func (p *Packer) Pack(ev *bfv.Evaluator, cts []lwe.Ciphertext) (*bfv.Ciphertext, error) {
	ctx := p.ctx
	if len(cts) == 0 || len(cts) > ctx.N {
		return nil, fmt.Errorf("pack: %d ciphertexts for %d slots", len(cts), ctx.N)
	}
	for i := range cts {
		if len(cts[i].A) != p.n {
			return nil, fmt.Errorf("pack: ciphertext %d has dimension %d, want %d", i, len(cts[i].A), p.n)
		}
		if cts[i].Q != ctx.Params.T {
			return nil, fmt.Errorf("pack: ciphertext %d has modulus %d, want t=%d", i, cts[i].Q, ctx.Params.T)
		}
	}
	row := ctx.N / 2
	gs := p.n / p.bs

	// The plaintext multiplier for giant step a, baby step b is the matrix
	// diagonal diag(a·bs+b)[i] = A[i][(col(i)+a·bs+b) mod n] pre-rotated by
	// -a·bs; composing both permutations through the cached rotIdx table
	// reduces it to one gather per slot.
	d := p.dScratch
	var acc *bfv.Ciphertext
	for a := 0; a < gs; a++ {
		src := p.rotIdx[a]
		var inner *bfv.Ciphertext
		for b := 0; b < p.bs; b++ {
			j := a*p.bs + b
			for i := range d {
				s := src[i]
				if s < len(cts) {
					d[i] = int64(cts[s].A[(s%row+j)%p.n])
				} else {
					d[i] = 0
				}
			}
			p.cod.EncodeSlotsInto(d, p.pt)
			p.cod.LiftToMulInto(p.pt, p.pm)
			if inner == nil {
				inner = ev.MulPlain(p.babies[b], p.pm)
			} else {
				ev.MulPlainAndAdd(p.babies[b], p.pm, inner)
			}
		}
		if a > 0 {
			var err error
			inner, err = ev.RotateRows(inner, a*p.bs)
			if err != nil {
				return nil, err
			}
		}
		if acc == nil {
			acc = inner
		} else {
			ev.AddInPlace(acc, inner)
		}
	}

	// Add the b terms as a plaintext, reusing the diagonal scratch.
	for i := range d {
		d[i] = 0
	}
	for i := range cts {
		d[i] = int64(cts[i].B)
	}
	p.cod.EncodeSlotsInto(d, p.pt)
	out := ev.AddPlain(acc, p.pt)
	return out, nil
}
