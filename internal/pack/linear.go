package pack

import (
	"fmt"

	"athena/internal/bfv"
	"athena/internal/ring"
)

// Transform is an arbitrary Z_t-linear map on the plaintext ring,
// compiled into the Galois-sum form  M(m) = Σ_g p_g · σ_g(m)  and
// evaluated homomorphically with BSGS grouping of the Galois group
// {±5^k}. Every Z_t-linear map on Z_t[X]/(X^N+1) admits this form
// because the Galois group acts simply transitively on the N evaluation
// points (the decomposition in compile() is exact, not approximate).
type Transform struct {
	ctx *bfv.Context
	cod *bfv.Encoder

	babyCount  int
	giantCount int

	// terms[a][idx] is the plaintext multiplier for giant step a and baby
	// index idx (idx < 2·babyCount: even = +5^b, odd = -5^b); nil when
	// the multiplier polynomial is identically zero.
	terms [][]*bfv.PlaintextMul

	babyEls  []uint64 // galois elements 5^b and (2N-1)·5^b
	giantEls []uint64 // galois elements 5^(a·B)

	// usedBaby[idx] reports whether any giant step references baby index
	// idx, hoisted out of Apply so the per-call scan over terms disappears.
	usedBaby []bool
}

// DedupGalois merges Galois element lists into one, dropping duplicates
// and the identity; the shared helper behind key-generation element sets.
func DedupGalois(lists ...[]uint64) []uint64 {
	seen := map[uint64]bool{1: true}
	var out []uint64
	for _, l := range lists {
		for _, g := range l {
			if !seen[g] {
				seen[g] = true
				out = append(out, g)
			}
		}
	}
	return out
}

// evalDomain captures the plaintext-ring evaluation structure mod t.
type evalDomain struct {
	rt    *ring.Ring // plaintext ring (single limb t)
	tm    ring.Modulus
	n     int
	exps  []uint64 // exps[p]: NTT position p evaluates at ζ^exps[p]
	posOf []int    // inverse of exps over odd exponents (indexed by exponent)
}

func newEvalDomain(ctx *bfv.Context) (*evalDomain, error) {
	if !ctx.Batching() {
		return nil, fmt.Errorf("pack: parameters do not support batching")
	}
	rt := ctx.RingT
	n := rt.N
	d := &evalDomain{rt: rt, tm: rt.Moduli[0], n: n}

	// Probe the NTT with the monomial X: position p then holds ζ^exps[p].
	probe := rt.NewPoly()
	probe.Coeffs[0][1] = 1
	rt.NTT(probe)

	// Discrete-log table over the 2N-th roots of unity.
	zeta := ring.RootOfUnity(d.tm.Q, uint64(2*n))
	dlog := make(map[uint64]int, 2*n)
	v := uint64(1)
	for k := 0; k < 2*n; k++ {
		dlog[v] = k
		v = d.tm.Mul(v, zeta)
	}
	d.exps = make([]uint64, n)
	d.posOf = make([]int, 2*n)
	for i := range d.posOf {
		d.posOf[i] = -1
	}
	for p := 0; p < n; p++ {
		k, ok := dlog[probe.Coeffs[0][p]]
		if !ok {
			return nil, fmt.Errorf("pack: NTT position %d does not evaluate at a 2N-th root", p)
		}
		d.exps[p] = uint64(k)
		d.posOf[k] = p
	}
	return d, nil
}

// perm returns the eval-position permutation of σ_g: position i of
// σ_g(m) holds the value of m at position perm[i].
func (d *evalDomain) perm(g uint64) []int {
	out := make([]int, d.n)
	for i := 0; i < d.n; i++ {
		out[i] = d.posOf[ring.GaloisCompose(d.n, d.exps[i], g)]
	}
	return out
}

// CompileTransform builds the homomorphic evaluation plan for the map
// out = M·in on plaintext coefficient vectors (M is N×N over Z_t,
// row-major: out[i] = Σ_j M[i][j]·in[j]).
func CompileTransform(ctx *bfv.Context, m [][]uint64) (*Transform, error) {
	d, err := newEvalDomain(ctx)
	if err != nil {
		return nil, err
	}
	n := d.n
	if len(m) != n {
		return nil, fmt.Errorf("pack: matrix has %d rows, want %d", len(m), n)
	}
	tm := d.tm
	rt := d.rt

	// T = E·M·E^{-1}, using (i) columns of E·M are NTTs of M's columns
	// and (ii) E^{-T} = (1/N)·P·E with P the inverse-point pairing, so
	// each row of T is (1/N)·P·NTT(row of E·M).
	t := make([][]uint64, n)
	for i := range t {
		t[i] = make([]uint64, n)
		if len(m[i]) != n {
			return nil, fmt.Errorf("pack: matrix row %d has %d entries, want %d", i, len(m[i]), n)
		}
	}
	col := rt.NewPoly()
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col.Coeffs[0][i] = tm.Reduce(m[i][j])
		}
		rt.NTT(col)
		for i := 0; i < n; i++ {
			t[i][j] = col.Coeffs[0][i]
		}
	}
	nInv := tm.Inv(uint64(n))
	twoN := uint64(2 * n)
	pair := make([]int, n) // position of the inverse evaluation point
	for i := 0; i < n; i++ {
		pair[i] = d.posOf[(twoN-d.exps[i])&(twoN-1)] // 2N is a power of two
	}
	row := rt.NewPoly()
	scratch := make([]uint64, n)
	for i := 0; i < n; i++ {
		copy(row.Coeffs[0], t[i])
		rt.NTT(row)
		for k := 0; k < n; k++ {
			scratch[k] = tm.Mul(row.Coeffs[0][pair[k]], nInv)
		}
		copy(t[i], scratch)
	}

	// Extract the diagonal D_g for every group element g = ε·5^k and
	// interpolate it back to the multiplier polynomial p_g.
	cod := bfv.NewEncoder(ctx)
	half := n / 2
	bc := BabySteps(half)
	gc := half / bc
	tr := &Transform{
		ctx: ctx, cod: cod,
		babyCount: bc, giantCount: gc,
		terms: make([][]*bfv.PlaintextMul, gc),
	}
	conj := ring.GaloisElementConjugate(n)
	for b := 0; b < bc; b++ {
		g := ring.GaloisElementForRotation(n, b)
		tr.babyEls = append(tr.babyEls, g, ring.GaloisCompose(n, g, conj))
	}
	for a := 0; a < gc; a++ {
		tr.giantEls = append(tr.giantEls, ring.GaloisElementForRotation(n, a*bc))
	}

	dg := rt.NewPoly()
	pPrime := rt.NewPoly()
	pt := ctx.NewPlaintext()
	tr.usedBaby = make([]bool, 2*bc)
	for a := 0; a < gc; a++ {
		tr.terms[a] = make([]*bfv.PlaintextMul, 2*bc)
		gGiantInv := ring.GaloisElementForRotation(n, -a*bc)
		for b := 0; b < bc; b++ {
			for e := 0; e < 2; e++ {
				g := ring.GaloisElementForRotation(n, a*bc+b)
				if e == 1 {
					g = ring.GaloisCompose(n, g, conj)
				}
				pg := d.perm(g)
				nonzero := false
				for i := 0; i < n; i++ {
					v := t[i][pg[i]]
					dg.Coeffs[0][i] = v
					if v != 0 {
						nonzero = true
					}
				}
				if !nonzero {
					continue
				}
				rt.INTT(dg) // p_g coefficients
				// Giant pre-rotation: p' = σ_{5^{aB}}^{-1}(p_g).
				if a == 0 {
					dg.CopyTo(pPrime)
				} else {
					rt.Automorphism(dg, gGiantInv, pPrime)
				}
				copy(pt.Coeffs, pPrime.Coeffs[0])
				pm := cod.LiftToMul(pt)
				// Compiled terms are multiplied on every Apply; the one-time
				// companion pays for itself after the first call.
				cod.PrecomputeShoup(pm)
				tr.terms[a][2*b+e] = pm
				tr.usedBaby[2*b+e] = true
			}
		}
	}
	return tr, nil
}

// GaloisElements returns every Galois element Apply will use, for key
// generation (deduplicated, identity excluded).
func (tr *Transform) GaloisElements() []uint64 {
	return DedupGalois(tr.babyEls, tr.giantEls)
}

// Apply evaluates the transform on ct.
func (tr *Transform) Apply(ev *bfv.Evaluator, ct *bfv.Ciphertext) (*bfv.Ciphertext, error) {
	// Baby ciphertexts: σ_{±5^b}(ct).
	babies := make([]*bfv.Ciphertext, 2*tr.babyCount)
	for idx := range babies {
		// Skip baby automorphisms never referenced by any giant step.
		if !tr.usedBaby[idx] {
			continue
		}
		c, err := ev.Automorphism(ct, tr.babyEls[idx])
		if err != nil {
			return nil, err
		}
		babies[idx] = c
	}
	var acc *bfv.Ciphertext
	for a := 0; a < tr.giantCount; a++ {
		var inner *bfv.Ciphertext
		for idx, pm := range tr.terms[a] {
			if pm == nil {
				continue
			}
			if inner == nil {
				inner = ev.MulPlain(babies[idx], pm)
			} else {
				ev.MulPlainAndAdd(babies[idx], pm, inner)
			}
		}
		if inner == nil {
			continue
		}
		if a > 0 {
			var err error
			inner, err = ev.Automorphism(inner, tr.giantEls[a])
			if err != nil {
				return nil, err
			}
		}
		if acc == nil {
			acc = inner
		} else {
			ev.AddInPlace(acc, inner)
		}
	}
	if acc == nil {
		// The zero map.
		return tr.ctx.NewCiphertext(), nil
	}
	return acc, nil
}

// S2CMatrix returns the slot-to-coefficient map: out_coeff[i] = slot_i(in)
// for all N slots. Composed after FBS it returns the activations to the
// coefficient encoding the next linear layer consumes.
func S2CMatrix(ctx *bfv.Context) [][]uint64 {
	d, err := newEvalDomain(ctx)
	if err != nil {
		panic(err)
	}
	n := d.n
	slotIdx := ctx.SlotIndex()
	// slot_i(m) = NTT(m)[slotIdx[i]] = Σ_j E[slotIdx[i]][j]·m_j.
	// Materialize E rows by NTT-ing unit vectors... equivalently E[p][j] =
	// ζ^{exps[p]·j}, which we can compute directly.
	tm := d.tm
	zeta := ring.RootOfUnity(tm.Q, uint64(2*n))
	m := make([][]uint64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]uint64, n)
		base := tm.Pow(zeta, d.exps[slotIdx[i]])
		v := uint64(1)
		for j := 0; j < n; j++ {
			m[i][j] = v
			v = tm.Mul(v, base)
		}
	}
	return m
}

// C2SMatrix returns the coefficient-to-slot map (the inverse of
// S2CMatrix): coefficients of the output equal the plaintext polynomial
// whose slot i holds in_coeff[i].
func C2SMatrix(ctx *bfv.Context) [][]uint64 {
	d, err := newEvalDomain(ctx)
	if err != nil {
		panic(err)
	}
	n := d.n
	rt := d.rt
	slotIdx := ctx.SlotIndex()
	m := make([][]uint64, n)
	for i := range m {
		m[i] = make([]uint64, n)
	}
	// Column j of the matrix is INTT(unit at slotIdx[j]).
	col := rt.NewPoly()
	for j := 0; j < n; j++ {
		for i := range col.Coeffs[0] {
			col.Coeffs[0][i] = 0
		}
		col.Coeffs[0][slotIdx[j]] = 1
		rt.INTT(col)
		for i := 0; i < n; i++ {
			m[i][j] = col.Coeffs[0][i]
		}
	}
	return m
}
