package pack

import (
	"testing"

	"athena/internal/lwe"
)

func BenchmarkPack64(b *testing.B) {
	k := newKit(b, 7, 4)
	sk := lwe.NewSecretKey(32, 5)
	p, err := NewPacker(k.ctx, k.enc, sk)
	if err != nil {
		b.Fatal(err)
	}
	ev := k.evaluator(p.GaloisElements())
	smp := lwe.NewStream(6)
	cts := make([]lwe.Ciphertext, 64)
	for i := range cts {
		cts[i] = lwe.Encrypt(sk, smp.Uint64N(k.ctx.Params.T), k.ctx.Params.T, 3.2, smp)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Pack(ev, cts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkS2CApply(b *testing.B) {
	k := newKit(b, 7, 4)
	tr, err := CompileTransform(k.ctx, S2CMatrix(k.ctx))
	if err != nil {
		b.Fatal(err)
	}
	ev := k.evaluator(tr.GaloisElements())
	ct := k.enc.Encrypt(k.cod.EncodeSlots(make([]int64, k.ctx.N)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Apply(ev, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileS2C(b *testing.B) {
	k := newKit(b, 7, 4)
	m := S2CMatrix(k.ctx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompileTransform(k.ctx, m); err != nil {
			b.Fatal(err)
		}
	}
}
