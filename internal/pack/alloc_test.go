package pack

import (
	"testing"

	"athena/internal/lwe"
)

// TestPackIntoZeroAllocs enforces the noalloc contract on the serial
// BSGS pipeline: after a warm-up call fills the lazy evaluator/encoder
// scratch and the Galois permutation cache, a full Pack — gathers,
// slot encodes, lifts, plaintext products, giant-step rotations, and
// the b-term addition — must not touch the heap.
func TestPackIntoZeroAllocs(t *testing.T) {
	k := newKit(t, 6, 4)
	tq := k.ctx.Params.T
	lweSK := lwe.NewSecretKey(16, 61)
	p, err := NewPacker(k.ctx, k.enc, lweSK)
	if err != nil {
		t.Fatal(err)
	}
	ev := k.evaluator(p.GaloisElements())
	smp := lwe.NewStream(62)
	cts := make([]lwe.Ciphertext, k.ctx.N)
	for i := range cts {
		cts[i] = lwe.Encrypt(lweSK, smp.Uint64N(tq), tq, 0, smp)
	}

	sc := p.NewScratch()
	out := k.ctx.NewCiphertext()
	if n := testing.AllocsPerRun(20, func() {
		if err := p.PackInto(ev, sc, cts, out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("PackInto allocates %v times per run, want 0", n)
	}
}

// TestPackIntoMatchesPack pins PackInto to the allocating Pack path
// bit for bit (PackWith is deterministic at any worker count, so the
// two must agree exactly).
func TestPackIntoMatchesPack(t *testing.T) {
	k := newKit(t, 6, 4)
	tq := k.ctx.Params.T
	lweSK := lwe.NewSecretKey(16, 63)
	p, err := NewPacker(k.ctx, k.enc, lweSK)
	if err != nil {
		t.Fatal(err)
	}
	ev := k.evaluator(p.GaloisElements())
	smp := lwe.NewStream(64)
	cts := make([]lwe.Ciphertext, 48)
	for i := range cts {
		cts[i] = lwe.Encrypt(lweSK, smp.Uint64N(tq), tq, 3.2, smp)
	}

	want, err := p.Pack(ev, cts)
	if err != nil {
		t.Fatal(err)
	}
	got := k.ctx.NewCiphertext()
	if err := p.PackInto(ev, p.NewScratch(), cts, got); err != nil {
		t.Fatal(err)
	}
	if !got.C0.Equal(want.C0) || !got.C1.Equal(want.C1) {
		t.Fatal("PackInto disagrees with Pack")
	}

	if err := p.PackInto(ev, p.NewScratch(), nil, got); err == nil {
		t.Fatal("PackInto accepted an empty batch")
	}
}
