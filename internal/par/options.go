package par

import "sync"

// Options tunes fan-out for operator-level loops. The package-level
// helpers (ForN, Chunks, ForWork) carry grain floors sized for ring
// work: thousands of cheap, uniform iterations. Operator-level callers
// sit at the other extreme — a handful of very heavy items (output
// batches of a convolution, BSGS giant steps, images of a batch) —
// where those floors would always select the serial path. Options makes
// the floor explicit so such callers can opt into fan-out at small n.
type Options struct {
	// MinGrain is the minimum number of iterations each worker must
	// receive before fanning out. Zero applies the ForN default
	// (forNGrain); operator-level callers with few, heavy items set 1.
	MinGrain int

	// ItemCost, when non-zero, is the approximate per-iteration
	// operation count; the worker count is then additionally capped so
	// each worker receives at least minWorkPerWorker cost units, exactly
	// as in ForWork. Zero disables the cost cap (the caller asserts the
	// items are heavy enough).
	ItemCost int

	// MaxWorkers caps the fan-out below GOMAXPROCS. Zero means no extra
	// cap.
	MaxWorkers int
}

// Workers reports how many workers ForEach(n, o, ·) will use. It is at
// least 1 and at most min(GOMAXPROCS, NumCPU, MaxWorkers,
// n/max(1, MinGrain)), further capped by the ItemCost work floor when
// set. The NumCPU cap means a GOMAXPROCS raised past the hardware (the
// p-sweep benchmarks) degrades to the usable parallelism instead of
// time-slicing extra goroutines over the same cores.
func (o Options) Workers(n int) int {
	if n <= 0 {
		return 1
	}
	workers := usableWorkers()
	if o.MaxWorkers > 0 && workers > o.MaxWorkers {
		workers = o.MaxWorkers
	}
	grain := o.MinGrain
	if grain <= 0 {
		grain = forNGrain
	}
	if max := n / grain; workers > max {
		workers = max
	}
	if o.ItemCost > 0 {
		if max := n * o.ItemCost / minWorkPerWorker; workers > max {
			workers = max
		}
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Partition returns the contiguous index range [start, end) that worker
// w owns when ForEach splits n iterations across `workers` goroutines.
// The split is fixed (independent of scheduling): the first n%workers
// workers receive ⌈n/workers⌉ iterations, the rest ⌊n/workers⌋. Exposed
// so tests can pin the partitioning and callers can reason about which
// scratch lane touches which output.
func Partition(n, workers, w int) (start, end int) {
	if workers <= 0 {
		workers = 1
	}
	q, r := n/workers, n%workers
	if w < r {
		start = w * (q + 1)
		end = start + q + 1
	} else {
		start = r*(q+1) + (w-r)*q
		end = start + q
	}
	if end > n {
		end = n
	}
	return start, end
}

// ForEach runs f(w, i) for every i in [0, n), where w ∈ [0, workers) is
// the stable worker slot executing the iteration — callers index
// per-worker scratch (evaluator clones, staging buffers) by w. Work is
// split by the fixed Partition blocks, so which worker computes which
// index is deterministic; combined with the usual contract that f only
// writes i-indexed state, results are bit-identical at any GOMAXPROCS.
// With one worker the loop runs inline (w = 0) and pays no fork-join.
func ForEach(n int, o Options, f func(w, i int)) {
	workers := o.Workers(n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			start, end := Partition(n, workers, w)
			for i := start; i < end; i++ {
				f(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// Pool manages lazily-created per-worker values (evaluator shallow
// copies, packer scratch, FBS clones) indexed by the worker slot that
// ForEach passes to its callback. Get is safe for concurrent use from
// distinct workers; a given slot's value is created once and reused
// across loops, so steady-state fan-out allocates nothing.
type Pool[T any] struct {
	mk    func() T
	mu    sync.Mutex
	items []T
	made  []bool
}

// NewPool returns a pool whose values are created on first Get by mk.
func NewPool[T any](mk func() T) *Pool[T] {
	return &Pool[T]{mk: mk}
}

// Get returns the value for worker slot w, creating it on first use.
func (p *Pool[T]) Get(w int) T {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.items) <= w {
		var zero T
		p.items = append(p.items, zero)
		p.made = append(p.made, false)
	}
	if !p.made[w] {
		p.items[w] = p.mk()
		p.made[w] = true
	}
	return p.items[w]
}

// Each calls f on every value created so far, in slot order — the
// deterministic merge point for per-worker accumulators (stats, counts).
func (p *Pool[T]) Each(f func(T)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, ok := range p.made {
		if ok {
			f(p.items[i])
		}
	}
}
