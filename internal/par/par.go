// Package par provides the tiny deterministic fork-join helper the hot
// paths share: output-indexed loops whose iterations are independent
// (per-coefficient CRT work, per-extraction keyswitches, per-limb NTTs)
// run across GOMAXPROCS workers with no ordering effects on results.
//
// All three helpers apply a grain-size floor: goroutines are only
// spawned when every worker receives enough work to amortize the
// scheduling overhead (roughly a microsecond per goroutine). Small
// loops — and every loop on a single-CPU machine — run inline, so
// callers never pay fork-join cost at test scale.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Grain floors: the minimum number of iterations a worker must receive
// before ForN / Chunks will fan out. ForN dispatches indices through an
// atomic counter (one CAS per iteration), so it needs coarser items
// than Chunks, which hands each worker one contiguous range.
const (
	forNGrain   = 64
	chunksGrain = 256
)

// minWorkPerWorker is the approximate per-goroutine operation floor for
// ForWork: with fewer total "cost units" than this per worker, the
// ~1-2µs goroutine spawn/join overhead exceeds the parallel win.
const minWorkPerWorker = 1 << 15

// usableWorkers is the parallelism actually available to a fan-out:
// GOMAXPROCS capped at the physical CPU count. Raising GOMAXPROCS above
// NumCPU (as the p-sweep benchmarks do) adds runnable goroutines without
// adding hardware lanes, so the extra workers only time-slice — on a
// single-CPU host a requested p=2 was measurably slower than serial.
// Capping here collapses every helper to the inline path in that case.
func usableWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); w > n {
		w = n
	}
	return w
}

// ForN runs f(i) for i in [0, n), splitting across up to GOMAXPROCS
// goroutines. f must only write to i-indexed state. The worker count is
// capped so each worker gets at least forNGrain iterations; when that
// leaves one worker (small n, or a single CPU) the loop runs inline.
func ForN(n int, f func(i int)) {
	workers := usableWorkers()
	if max := n / forNGrain; workers > max {
		workers = max
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Chunks runs f(start, end) over contiguous ranges covering [0, n),
// one range per worker — for loops where per-iteration work is tiny and
// the scheduler overhead of ForN would dominate. The worker count is
// capped so each range holds at least chunksGrain iterations.
func Chunks(n int, f func(start, end int)) {
	workers := usableWorkers()
	if max := n / chunksGrain; workers > max {
		workers = max
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	size := (n + workers - 1) / workers
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			f(s, e)
		}(start, end)
	}
	wg.Wait()
}

// WorthForWork reports whether ForWork would fan out across more than
// one goroutine for the given loop shape. Hot paths that must stay
// allocation-free check it first: constructing the closure for ForWork
// heap-allocates (the func value escapes into worker goroutines), so a
// caller can keep a closure-free serial loop for the inline case and
// only build the closure when parallelism will actually be used.
func WorthForWork(n, itemCost int) bool {
	workers := usableWorkers()
	if workers > n {
		workers = n
	}
	if workers > 1 && itemCost > 0 {
		if max := n * itemCost / minWorkPerWorker; workers > max {
			workers = max
		}
	}
	return workers > 1
}

// ForWork runs f(i) for i in [0, n) like ForN, but sizes the worker
// pool by the caller's estimate of the per-iteration cost instead of by
// n alone. It is the entry point for loops with few but heavy
// iterations — per-limb NTTs, per-digit keyswitch accumulation — where
// ForN's iteration-count grain would always run inline. itemCost is an
// approximate operation count per iteration (e.g. N·logN for one NTT
// limb); parallelism kicks in only when n·itemCost exceeds
// minWorkPerWorker per worker, so tiny test-scale calls (N=2^10, two or
// three limbs) stay inline and pay no scheduling overhead.
//
// The same determinism contract as ForN applies: f must only write
// i-indexed state.
func ForWork(n, itemCost int, f func(i int)) {
	workers := usableWorkers()
	if workers > n {
		workers = n
	}
	if workers > 1 && itemCost > 0 {
		if max := n * itemCost / minWorkPerWorker; workers > max {
			workers = max
		}
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
