// Package par provides the tiny deterministic fork-join helper the hot
// paths share: output-indexed loops whose iterations are independent
// (per-coefficient CRT work, per-extraction keyswitches, per-limb NTTs)
// run across GOMAXPROCS workers with no ordering effects on results.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForN runs f(i) for i in [0, n), splitting across up to GOMAXPROCS
// goroutines. f must only write to i-indexed state. When n is small or
// the process has one CPU the loop runs inline.
func ForN(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Chunks runs f(start, end) over contiguous ranges covering [0, n),
// one range per worker — for loops where per-iteration work is tiny and
// the scheduler overhead of ForN would dominate.
func Chunks(n int, f func(start, end int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 256 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	size := (n + workers - 1) / workers
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			f(s, e)
		}(start, end)
	}
	wg.Wait()
}
