package par

import (
	"runtime"
	"sync"
	"testing"
)

// TestOptionsWorkers pins the worker-count policy: the default grain
// matches ForN, MinGrain=1 lets operator-level callers (few, heavy
// items) fan out, and ItemCost reimposes the ForWork work floor. All
// caps are additionally bounded by the physical CPU count, so the
// expected values are expressed through min(·, NumCPU).
func TestOptionsWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	capAt := func(v int) int {
		if n := runtime.NumCPU(); v > n {
			return n
		}
		return v
	}

	cases := []struct {
		name string
		n    int
		o    Options
		want int
	}{
		{"default grain keeps small loops serial", 63, Options{}, 1},
		{"default grain matches ForN", 8 * forNGrain, Options{}, capAt(8)},
		{"min grain 1 fans out few heavy items", 3, Options{MinGrain: 1}, capAt(3)},
		{"min grain 1 caps at usable CPUs", 100, Options{MinGrain: 1}, capAt(8)},
		{"min grain 2", 5, Options{MinGrain: 2}, capAt(2)},
		{"max workers cap", 100, Options{MinGrain: 1, MaxWorkers: 4}, capAt(4)},
		{"item cost floor keeps cheap items serial", 4, Options{MinGrain: 1, ItemCost: 10}, 1},
		{"item cost floor admits heavy items", 4, Options{MinGrain: 1, ItemCost: minWorkPerWorker}, capAt(4)},
		{"zero iterations", 0, Options{MinGrain: 1}, 1},
	}
	for _, c := range cases {
		if got := c.o.Workers(c.n); got != c.want {
			t.Errorf("%s: Workers(%d) = %d, want %d", c.name, c.n, got, c.want)
		}
	}
}

// TestWorkersCappedByNumCPU is the bench-smoke assertion behind the
// EncryptedInference/p=N rows: when GOMAXPROCS is raised above the
// physical CPU count (as the p-sweep does on small hosts), every fan-out
// must collapse to the usable parallelism instead of time-slicing extra
// goroutines — on a single-CPU machine the p=2 row had been ~19% slower
// than serial before this cap.
func TestWorkersCappedByNumCPU(t *testing.T) {
	ncpu := runtime.NumCPU()
	old := runtime.GOMAXPROCS(4 * ncpu)
	defer runtime.GOMAXPROCS(old)

	if got := (Options{MinGrain: 1}).Workers(16 * ncpu); got > ncpu {
		t.Errorf("Workers = %d exceeds NumCPU = %d", got, ncpu)
	}
	if got := usableWorkers(); got != ncpu {
		t.Errorf("usableWorkers = %d, want NumCPU = %d", got, ncpu)
	}
	if ncpu == 1 && WorthForWork(64, 1<<20) {
		t.Error("single CPU with inflated GOMAXPROCS must stay inline")
	}
}

// TestPartitionPinned pins the fixed block partitioning ForEach uses:
// contiguous ranges, first n%workers blocks one element longer, full
// disjoint cover of [0, n).
func TestPartitionPinned(t *testing.T) {
	type rng struct{ start, end int }
	cases := []struct {
		n, workers int
		want       []rng
	}{
		{10, 4, []rng{{0, 3}, {3, 6}, {6, 8}, {8, 10}}},
		{3, 3, []rng{{0, 1}, {1, 2}, {2, 3}}},
		{7, 2, []rng{{0, 4}, {4, 7}}},
		{5, 1, []rng{{0, 5}}},
	}
	for _, c := range cases {
		for w, want := range c.want {
			s, e := Partition(c.n, c.workers, w)
			if s != want.start || e != want.end {
				t.Errorf("Partition(%d, %d, %d) = [%d, %d), want [%d, %d)",
					c.n, c.workers, w, s, e, want.start, want.end)
			}
		}
	}
	// Cover/disjointness sweep.
	for n := 0; n <= 33; n++ {
		for workers := 1; workers <= 9; workers++ {
			covered := make([]int, n)
			for w := 0; w < workers; w++ {
				s, e := Partition(n, workers, w)
				for i := s; i < e; i++ {
					covered[i]++
				}
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestForEachWorkerSlots checks every iteration runs exactly once, on
// the worker slot Partition assigns, with slots below Workers(n).
func TestForEachWorkerSlots(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	const n = 11
	o := Options{MinGrain: 1}
	workers := o.Workers(n)
	gotWorker := make([]int, n)
	for i := range gotWorker {
		gotWorker[i] = -1
	}
	ForEach(n, o, func(w, i int) {
		if gotWorker[i] != -1 {
			t.Errorf("iteration %d ran twice", i)
		}
		gotWorker[i] = w
	})
	for i, w := range gotWorker {
		if w < 0 || w >= workers {
			t.Fatalf("iteration %d ran on slot %d (workers=%d)", i, w, workers)
		}
		s, e := Partition(n, workers, w)
		if i < s || i >= e {
			t.Errorf("iteration %d ran on slot %d owning [%d, %d)", i, w, s, e)
		}
	}
}

// TestPoolLazyAndStable checks pool values are created once per slot,
// reused across loops, and merged in slot order by Each.
func TestPoolLazyAndStable(t *testing.T) {
	var created int
	var mu sync.Mutex
	p := NewPool(func() *int {
		mu.Lock()
		created++
		mu.Unlock()
		v := new(int)
		return v
	})
	first := p.Get(2)
	if p.Get(2) != first {
		t.Fatal("slot 2 not stable across Get calls")
	}
	if p.Get(0) == first {
		t.Fatal("distinct slots share a value")
	}
	if created != 2 {
		t.Fatalf("created %d values, want 2 (slot 1 untouched)", created)
	}
	*p.Get(0) = 10
	*p.Get(2) = 30
	var order []int
	p.Each(func(v *int) { order = append(order, *v) })
	if len(order) != 2 || order[0] != 10 || order[1] != 30 {
		t.Fatalf("Each visited %v, want [10 30] in slot order", order)
	}
}
