package par_test

import (
	"fmt"
	"math/bits"
	"runtime"
	"testing"

	"athena/internal/par"
)

// mix is a splitmix64-style finalizer: enough arithmetic per index to
// mimic coefficient work, fully determined by the index.
func mix(i int) uint64 {
	z := uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// forNOutput runs a ForN workload whose per-index result chains several
// wide multiplies, writing only i-indexed state.
func forNOutput(n int) []uint64 {
	out := make([]uint64, n)
	par.ForN(n, func(i int) {
		v := mix(i)
		for r := 0; r < 8; r++ {
			hi, lo := bits.Mul64(v, mix(i+r))
			v = hi ^ lo
		}
		out[i] = v
	})
	return out
}

// chunksOutput runs a Chunks workload; results must not depend on how
// the range is split.
func chunksOutput(n int) []uint64 {
	out := make([]uint64, n)
	par.Chunks(n, func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = mix(i) + mix(i+1)
		}
	})
	return out
}

// TestStressDeterministicAcrossGOMAXPROCS verifies the fork-join
// contract end to end: the same workload run serially (GOMAXPROCS=1),
// with minimal parallelism (2), and with full parallelism (NumCPU)
// produces bit-identical outputs on every repetition. Run under
// `go test -race` this also shakes out scheduler-dependent races in the
// helpers themselves.
func TestStressDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const n = 1 << 13
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(1)
	refForN := forNOutput(n)
	refChunks := chunksOutput(n)

	procsList := []int{1, 2, runtime.NumCPU()}
	for _, procs := range procsList {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			for rep := 0; rep < 4; rep++ {
				gotF := forNOutput(n)
				gotC := chunksOutput(n)
				for i := 0; i < n; i++ {
					if gotF[i] != refForN[i] {
						t.Fatalf("rep %d: ForN output[%d] = %#x, serial run gave %#x", rep, i, gotF[i], refForN[i])
					}
					if gotC[i] != refChunks[i] {
						t.Fatalf("rep %d: Chunks output[%d] = %#x, serial run gave %#x", rep, i, gotC[i], refChunks[i])
					}
				}
			}
		})
	}
}

// TestStressConcurrentReadsOfSharedInput pins down that concurrent
// reads of captured immutable state are safe and deterministic — the
// usage pattern every hot path relies on (shared twiddle tables, shared
// input polynomials).
func TestStressConcurrentReadsOfSharedInput(t *testing.T) {
	const n = 1 << 13
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	shared := make([]uint64, n)
	for i := range shared {
		shared[i] = mix(i)
	}
	run := func() []uint64 {
		out := make([]uint64, n)
		par.ForN(n, func(i int) {
			acc := shared[i]
			acc += shared[(i+n/2)%n]
			acc ^= shared[n-1-i]
			out[i] = acc
		})
		return out
	}
	runtime.GOMAXPROCS(1)
	ref := run()
	for _, procs := range []int{2, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		got := run()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("procs=%d: output[%d] differs from serial run", procs, i)
			}
		}
	}
}
