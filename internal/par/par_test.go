package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForNCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 1000} {
		seen := make([]int32, n)
		ForN(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestChunksCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 1000} {
		seen := make([]int32, n)
		Chunks(n, func(s, e int) {
			for i := s; i < e; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForWorkCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, itemCost := range []int{0, 1, 1 << 12, 1 << 20} {
			seen := make([]int32, n)
			ForWork(n, itemCost, func(i int) { atomic.AddInt32(&seen[i], 1) })
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d cost=%d index %d visited %d times", n, itemCost, i, c)
				}
			}
		}
	}
}

// TestForWorkGrainFloor checks the worker cap: loops whose total work is
// below minWorkPerWorker per worker must run inline (WorthForWork false),
// and heavy loops must fan out when CPUs allow.
func TestForWorkGrainFloor(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	// 6 limbs of tiny work: 6·128 ops is far below the floor.
	if WorthForWork(6, 128) {
		t.Fatal("tiny loop should not fan out")
	}
	if runtime.NumCPU() > 1 {
		// Zero/negative cost estimates must not divide the worker count away.
		if !WorthForWork(8, 0) {
			t.Fatal("zero itemCost should defer to the CPU count only")
		}
		// 8 limbs of 2^15 ops each exceeds the per-worker floor.
		if !WorthForWork(8, 1<<15) {
			t.Fatal("heavy loop should fan out")
		}
	}
	runtime.GOMAXPROCS(1)
	if WorthForWork(8, 1<<20) {
		t.Fatal("single CPU must stay inline")
	}
}

func TestParallelPathWithMultipleProcs(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	var sum int64
	ForN(5000, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 5000*4999/2 {
		t.Fatalf("sum %d", sum)
	}
	var sum2 int64
	Chunks(5000, func(s, e int) {
		var local int64
		for i := s; i < e; i++ {
			local += int64(i)
		}
		atomic.AddInt64(&sum2, local)
	})
	if sum2 != sum {
		t.Fatalf("chunks sum %d", sum2)
	}
}
