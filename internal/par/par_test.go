package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForNCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 1000} {
		seen := make([]int32, n)
		ForN(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestChunksCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 1000} {
		seen := make([]int32, n)
		Chunks(n, func(s, e int) {
			for i := s; i < e; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestParallelPathWithMultipleProcs(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	var sum int64
	ForN(5000, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 5000*4999/2 {
		t.Fatalf("sum %d", sum)
	}
	var sum2 int64
	Chunks(5000, func(s, e int) {
		var local int64
		for i := s; i < e; i++ {
			local += int64(i)
		}
		atomic.AddInt64(&sum2, local)
	})
	if sum2 != sum {
		t.Fatalf("chunks sum %d", sum2)
	}
}
