// Package leakcheck is a stdlib-only goroutine-leak guard for test
// binaries: it snapshots the goroutine count before the tests run and
// fails the binary if the count has not returned to the baseline after
// a grace period. It is the runtime backstop behind athena-lint's
// static goleak pass — goleak proves termination signals exist, this
// proves the signals actually fired during the tests.
//
// Wire it in with a one-line TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// The grace period absorbs goroutines that are mid-teardown when the
// last test returns (server accept loops draining, timers firing); a
// goroutine that survives the full grace window is a leak, and the
// guard dumps every goroutine stack so the culprit is identifiable
// from the CI log alone.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// gracePeriod is how long teardown may take before a surviving
// goroutine counts as leaked.
const gracePeriod = 5 * time.Second

// Main runs the package's tests and then enforces the leak baseline.
// It does not return: like testing.M.Run wrapped in os.Exit, the
// process exits with the test status, or with failure when the tests
// passed but goroutines leaked.
func Main(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if err := settle(base); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}

// settle polls until the goroutine count drops back to the baseline or
// the grace period expires, in which case it reports the survivors'
// stacks.
func settle(base int) error {
	deadline := time.Now().Add(gracePeriod)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			return fmt.Errorf("leakcheck: %d goroutines still running %v after tests finished (baseline %d); stacks:\n\n%s",
				n, gracePeriod, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
