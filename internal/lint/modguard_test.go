package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestModGuardFixture(t *testing.T) {
	checkPassAgainstMarkers(t, &ModGuard{})
}

func TestModGuardMessagesNameTheFix(t *testing.T) {
	prog := fixture(t)
	byOp := map[string]string{
		"%": "Reduce", "/": "Div64", "*": "overflows",
	}
	for _, f := range (&ModGuard{}).Run(prog) {
		named := false
		for _, hint := range byOp {
			if strings.Contains(f.Message, hint) {
				named = true
			}
		}
		if !named {
			t.Errorf("finding lacks a fix hint: %s", f)
		}
	}
}

func TestModGuardScope(t *testing.T) {
	prog := fixture(t)
	for _, f := range (&ModGuard{}).Run(prog) {
		if base := filepath.Base(f.Pos.Filename); base != "modfix.go" {
			t.Errorf("finding outside the modfix fixture: %s", f)
		}
	}
}
