package lint

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow layer shared by flow-sensitive passes:
// a per-function CFG of basic blocks over the parsed AST, plus the
// cold-block analysis that separates steady-state ("warm") code from
// paths that inevitably panic or construct an error return. The noalloc
// pass consumes it to exempt validation/panic paths from the
// allocation-free contract; future passes (cold-path locking, panic
// budget) can reuse the same blocks.
//
// The builder is deliberately syntactic: it decomposes the statement
// tree into blocks and edges without resolving types. Statements and
// the header expressions of control constructs (if/for conditions,
// switch tags, range operands) are appended to exactly one block's
// Nodes, so a pass can attribute every expression to one block.
// Function literals are treated as atoms — their bodies are separate
// functions with their own CFGs, not part of the enclosing flow.
//
// goto is not modeled: a function containing one gets Broken set and
// callers must treat every block as warm (the conservative direction
// for cold-path exemptions). The repo has no gotos; the flag exists so
// one appearing later degrades precision instead of correctness.

// Block is one basic block: a maximal straight-line run of statements
// and header expressions with edges to its successors.
type Block struct {
	Nodes []ast.Node
	Succs []*Block

	// Return is the terminating return statement, when the block ends in
	// one (such a block has no successors).
	Return *ast.ReturnStmt
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Blocks []*Block
	// Broken marks a function whose flow could not be modeled (goto);
	// cold-block analysis then reports nothing cold.
	Broken bool
}

// BuildCFG decomposes body into basic blocks. It never fails; see
// Broken for the goto caveat.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	entry := b.newBlock()
	b.cfg.Entry = entry
	b.cur = entry
	b.stmtList(body.List)
	return b.cfg
}

// cfgBuilder carries the construction state: the current block and the
// break/continue targets of the enclosing loops and switches.
type cfgBuilder struct {
	cfg *CFG
	cur *Block // nil after a terminator (return/branch): code is unreachable

	// breakTargets / continueTargets are stacks of the innermost
	// enclosing targets; labeled entries carry their label name.
	breaks    []branchTarget
	continues []branchTarget
}

type branchTarget struct {
	label string
	block *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// link adds an edge from to dst unless from is nil (unreachable).
func link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// add appends n to the current block, reviving an unreachable cursor
// into a fresh orphan block (dead code still gets scanned by passes
// that iterate Blocks, it just has no inbound edges).
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.IfStmt:
		b.add(st.Init)
		b.add(st.Cond)
		cond := b.cur
		after := b.newBlock()

		then := b.newBlock()
		link(cond, then)
		b.cur = then
		b.stmtList(st.Body.List)
		link(b.cur, after)

		if st.Else != nil {
			els := b.newBlock()
			link(cond, els)
			b.cur = els
			b.stmt(st.Else)
			link(b.cur, after)
		} else {
			link(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		b.forStmt(st, "")

	case *ast.RangeStmt:
		b.rangeStmt(st, "")

	case *ast.SwitchStmt:
		b.add(st.Init)
		b.add(st.Tag)
		b.switchBody(st.Body, "")

	case *ast.TypeSwitchStmt:
		b.add(st.Init)
		b.add(st.Assign)
		b.switchBody(st.Body, "")

	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		after := b.newBlock()
		b.breaks = append(b.breaks, branchTarget{"", after})
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			link(head, blk)
			b.cur = blk
			b.add(cc.Comm)
			b.stmtList(cc.Body)
			link(b.cur, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(st.Body.List) == 0 {
			link(head, after)
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.add(st)
		if b.cur != nil {
			b.cur.Return = st
		}
		b.cur = nil

	case *ast.BranchStmt:
		label := ""
		if st.Label != nil {
			label = st.Label.Name
		}
		switch st.Tok {
		case token.BREAK:
			link(b.cur, findTarget(b.breaks, label))
			b.cur = nil
		case token.CONTINUE:
			link(b.cur, findTarget(b.continues, label))
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled in switchBody by linking to the next clause; the
			// statement itself carries no nodes.
		case token.GOTO:
			b.cfg.Broken = true
			b.cur = nil
		}

	case *ast.LabeledStmt:
		switch inner := st.Stmt.(type) {
		case *ast.ForStmt:
			b.forStmt(inner, st.Label.Name)
		case *ast.RangeStmt:
			b.rangeStmt(inner, st.Label.Name)
		case *ast.SwitchStmt:
			b.add(inner.Init)
			b.add(inner.Tag)
			b.switchBody(inner.Body, st.Label.Name)
		case *ast.TypeSwitchStmt:
			b.add(inner.Init)
			b.add(inner.Assign)
			b.switchBody(inner.Body, st.Label.Name)
		default:
			b.stmt(st.Stmt)
		}

	default:
		// Straight-line statements: assignments, declarations, calls,
		// sends, incdec, go, defer, empty.
		b.add(s)
	}
}

// forStmt builds `for init; cond; post { body }` — including the
// condition-less forever loop, whose header has no exit edge.
func (b *cfgBuilder) forStmt(st *ast.ForStmt, label string) {
	b.add(st.Init)
	header := b.newBlock()
	link(b.cur, header)
	b.cur = header
	b.add(st.Cond)

	after := b.newBlock()
	post := b.newBlock()
	if st.Cond != nil {
		link(header, after)
	}

	b.breaks = append(b.breaks, branchTarget{label, after})
	b.continues = append(b.continues, branchTarget{label, post})

	body := b.newBlock()
	link(header, body)
	b.cur = body
	b.stmtList(st.Body.List)
	link(b.cur, post)

	b.cur = post
	b.add(st.Post)
	link(b.cur, header)

	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt, label string) {
	// The operand is evaluated once, before the loop; the header is a
	// fresh block so the body's back edge re-enters only the iteration
	// dispatch, not the straight-line code preceding the loop (a held
	// lock there must not look re-acquired on the second iteration).
	b.add(st.X)
	header := b.newBlock()
	link(b.cur, header)
	b.cur = header
	after := b.newBlock()
	link(header, after) // ranges over empty operands skip the body

	b.breaks = append(b.breaks, branchTarget{label, after})
	b.continues = append(b.continues, branchTarget{label, header})

	body := b.newBlock()
	link(header, body)
	b.cur = body
	b.stmtList(st.Body.List)
	link(b.cur, header)

	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = after
}

// switchBody builds the clause blocks of a switch/type-switch. Each
// clause gets an edge from the head; fallthrough links a clause's end
// to the next clause's start instead of the after block.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label, after})
	if label != "" {
		// break <label> inside the clauses also targets after via the
		// unlabeled entry below.
		b.breaks = append(b.breaks, branchTarget{"", after})
	}

	clauses := make([]*Block, len(body.List))
	for i := range body.List {
		clauses[i] = b.newBlock()
		link(head, clauses[i])
	}
	hasDefault := false
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = clauses[i]
		for _, e := range cc.List {
			b.add(e)
		}
		falls := false
		for _, s := range cc.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
			}
			b.stmt(s)
		}
		if falls && i+1 < len(clauses) {
			link(b.cur, clauses[i+1])
			b.cur = nil
		} else {
			link(b.cur, after)
		}
	}
	if !hasDefault {
		link(head, after)
	}
	if label != "" {
		b.breaks = b.breaks[:len(b.breaks)-1]
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// findTarget resolves a break/continue target: the innermost entry for
// an empty label, the matching entry otherwise.
func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			if label == "" && stack[i].label != "" {
				// Unlabeled break/continue skips labeled-only switch
				// entries pushed for their label; the paired unlabeled
				// entry is adjacent, so matching any entry is fine.
				return stack[i].block
			}
			return stack[i].block
		}
	}
	return nil
}

// ColdBlocks computes the blocks from which execution inevitably
// reaches a "cold" exit: a node isPanic recognizes (panic call,
// os.Exit) or a return isColdReturn recognizes (direct error
// construction). A block is cold when it contains such a seed or when
// it has successors and every one of them is cold; warm cycles (server
// loops, retry loops) never become cold because the fixpoint only
// propagates from seeds. A Broken CFG reports nothing cold.
func (c *CFG) ColdBlocks(isPanic func(ast.Node) bool, isColdReturn func(*ast.ReturnStmt) bool) map[*Block]bool {
	cold := map[*Block]bool{}
	if c.Broken {
		return cold
	}
	for _, blk := range c.Blocks {
		if blk.Return != nil && isColdReturn != nil && isColdReturn(blk.Return) {
			cold[blk] = true
			continue
		}
		if isPanic == nil {
			continue
		}
		for _, n := range blk.Nodes {
			if isPanic(n) {
				cold[blk] = true
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range c.Blocks {
			if cold[blk] || len(blk.Succs) == 0 {
				continue
			}
			all := true
			for _, s := range blk.Succs {
				if !cold[s] {
					all = false
					break
				}
			}
			if all {
				cold[blk] = true
				changed = true
			}
		}
	}
	return cold
}
