package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ParSafe checks the closures handed to par.ForN, par.ForWork, and
// par.Chunks. Those helpers run the closure concurrently from several
// goroutines, so the fork-join determinism contract is: a closure may
// only write state derived from its own iteration index. The pass
// flags, inside such closures:
//
//   - assignments (incl. op-assign, ++/--) to captured variables:
//     `sum += x`, `s = append(s, v)` — classic fan-in races;
//   - writes through captured maps: Go maps are unsafe under any
//     concurrent write, indexed or not;
//   - writes to elements of captured slices whose index involves
//     neither a closure parameter nor a closure-local variable:
//     `out[0] = v` races, `out[i] = v` does not.
//
// Reads of captured state are fine, as are writes to variables declared
// inside the closure.
type ParSafe struct{}

// Name implements Pass.
func (*ParSafe) Name() string { return "parsafe" }

// Doc implements Pass.
func (*ParSafe) Doc() string {
	return "non-index-derived shared-state writes inside par.ForN / par.ForWork / par.Chunks closures"
}

// Run implements Pass.
func (p *ParSafe) Run(prog *Program) []Finding {
	var findings []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := parCallee(pkg, call)
				if fn == "" || len(call.Args) < 2 {
					return true
				}
				// The worker closure is the last argument (ForWork
				// takes an itemCost between n and the closure).
				lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
				if !ok {
					return true
				}
				findings = append(findings, p.checkClosure(prog, pkg, fn, lit)...)
				return true
			})
		}
	}
	return findings
}

// parCallee returns "ForN", "ForWork", or "Chunks" when call targets
// the par package's helpers, else "".
func parCallee(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	if path != "par" && !strings.HasSuffix(path, "/par") {
		return ""
	}
	if fn.Name() == "ForN" || fn.Name() == "ForWork" || fn.Name() == "Chunks" {
		return fn.Name()
	}
	return ""
}

// checkClosure inspects one worker closure for shared-state writes.
func (p *ParSafe) checkClosure(prog *Program, pkg *Package, parFn string, lit *ast.FuncLit) []Finding {
	var findings []Finding
	report := func(n ast.Node, what string) {
		findings = append(findings, Finding{
			Pass: "parsafe",
			Pos:  prog.Fset.Position(n.Pos()),
			Message: fmt.Sprintf("par.%s closure %s: workers may only write index-derived state (write through the loop index, or accumulate per-worker and merge after the join)",
				parFn, what),
		})
	}
	local := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				p.checkWrite(pkg, lhs, local, report)
			}
		case *ast.IncDecStmt:
			p.checkWrite(pkg, st.X, local, report)
		}
		return true
	})
	return findings
}

// checkWrite classifies one write target. local reports whether an
// object is declared inside the closure (parameters included).
func (p *ParSafe) checkWrite(pkg *Package, lhs ast.Expr, local func(types.Object) bool, report func(ast.Node, string)) {
	switch e := lhs.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		obj := pkg.Info.Defs[e]
		if obj == nil {
			obj = pkg.Info.Uses[e]
		}
		if obj != nil && !local(obj) {
			report(e, fmt.Sprintf("assigns to captured variable %q", e.Name))
		}
	case *ast.IndexExpr:
		base := rootIdent(e.X)
		if base == nil {
			return
		}
		obj := pkg.Info.Uses[base]
		if obj == nil || local(obj) {
			return
		}
		if isMap(pkg, e.X) {
			report(e, fmt.Sprintf("writes captured map %q", base.Name))
			return
		}
		if !indexMentionsLocal(pkg, e.Index, local) {
			report(e, fmt.Sprintf("writes captured slice %q at a shared (non-index-derived) position", base.Name))
		}
	case *ast.SelectorExpr:
		// Field write: safe only when the path to the field goes through
		// an index-derived element or a closure-local root.
		if w, shared := p.sharedFieldWrite(pkg, e, local); shared {
			report(e, w)
		}
	case *ast.StarExpr:
		base := rootIdent(e.X)
		if base == nil {
			return
		}
		if obj := pkg.Info.Uses[base]; obj != nil && !local(obj) {
			report(e, fmt.Sprintf("writes through captured pointer %q", base.Name))
		}
	}
}

// sharedFieldWrite walks selector/index chains like a.b[i].c; the write
// is shared when no link in the chain is index-derived and the root is
// captured.
func (p *ParSafe) sharedFieldWrite(pkg *Package, sel *ast.SelectorExpr, local func(types.Object) bool) (string, bool) {
	expr := ast.Expr(sel)
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			// A selector on a package name is not a field write target we
			// can reason about; skip qualified identifiers.
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
					return "", false
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			if indexMentionsLocal(pkg, e.Index, local) {
				return "", false // lands in this iteration's element
			}
			expr = e.X
		case *ast.CallExpr, *ast.StarExpr:
			return "", false // too dynamic to judge; stay silent
		case *ast.Ident:
			obj := pkg.Info.Uses[e]
			if obj == nil || local(obj) {
				return "", false
			}
			return fmt.Sprintf("writes field of captured variable %q", e.Name), true
		default:
			return "", false
		}
	}
}

// indexMentionsLocal reports whether idx references at least one
// closure-local variable or parameter — the index-derived test.
func indexMentionsLocal(pkg *Package, idx ast.Expr, local func(types.Object) bool) bool {
	for _, id := range exprIdents(idx, nil) {
		obj := pkg.Info.Uses[id]
		if obj == nil {
			obj = pkg.Info.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok && local(v) {
			return true
		}
	}
	return false
}

// rootIdent returns the leftmost identifier of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isMap reports whether e's type is a map.
func isMap(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isM := tv.Type.Underlying().(*types.Map)
	return isM
}
