package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak requires every `go` statement to carry a provable termination
// signal: an unproven spawn is a goroutine that can outlive its owner
// silently — the leak class the runtime never reports. The proof rules
// mirror the shutdown protocols the serving tiers actually use:
//
//  1. WaitGroup accounting: the spawned body runs `defer wg.Done()` on
//     a sync.WaitGroup — the goroutine is awaited somewhere, so a hang
//     surfaces at Wait instead of leaking silently.
//  2. Closed-channel range: `for range ch` terminates when ch is
//     closed; accepted when close(ch) appears somewhere in the module
//     for that channel identity.
//  3. Bounded channel protocol: a body whose loops are all bounded
//     (a for with a condition, or a range over a non-channel), whose
//     sends go to buffered channels or sit in a select with a default,
//     and whose receives come from closed-somewhere channels,
//     ctx.Done(), or time.After/Tick — such a body cannot wedge on its
//     channel protocol and runs off its own end.
//  4. Cancellation select: a condition-less `for` loop is accepted when
//     it contains a select with a case receiving from ctx.Done() or a
//     closed-somewhere channel whose clause body returns or breaks —
//     the standard worker-loop shutdown shape.
//
// Channel identity reuses conc.go's variable resolution; buffered-ness
// and closed-ness come from the module-wide chanFacts scan. Operations
// on CFG-cold paths (inevitable panic or fresh-error return) are
// exempt, matching noalloc's warm/cold split. Spawns whose target
// cannot be resolved to a module body — function values, interface
// methods, stdlib calls — are findings: their termination is
// unknowable here. Calls inside a spawned body are assumed to return
// (termination is modeled through loop structure and channel protocol,
// not whole-program halting); the runtime leakcheck guard in the test
// suites backs up that blind spot. Suppress deliberate process-lifetime
// goroutines with //lint:allow goleak <reason>.
type GoLeak struct{}

// Name implements Pass.
func (*GoLeak) Name() string { return "goleak" }

// Doc implements Pass.
func (*GoLeak) Doc() string {
	return "every go statement needs a provable termination signal (WaitGroup.Done, closed-channel range, bounded channel protocol, or cancellation select)"
}

// goleakState shares the channel facts and memoized per-function
// verdicts across spawn sites.
type goleakState struct {
	prog  *Program
	facts *chanFacts
	decls map[*types.Func]*concFn
	memo  map[*types.Func]string // "" = proven; otherwise the failure reason
}

// Run implements Pass.
func (p *GoLeak) Run(prog *Program) []Finding {
	st := &goleakState{
		prog:  prog,
		facts: collectChanFacts(prog),
		memo:  map[*types.Func]string{},
	}
	_, st.decls = collectConcFns(prog)

	var findings []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			pk := pkg
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if reason := st.checkSpawn(pk, g); reason != "" {
					findings = append(findings, Finding{Pass: "goleak", Pos: prog.Fset.Position(g.Pos()),
						Message: fmt.Sprintf("goroutine has no provable termination signal: %s (prove via WaitGroup.Done, closed-channel range, bounded channel protocol, or a cancellation select; suppress a process-lifetime goroutine with //lint:allow goleak <reason>)", reason)})
				}
				return true
			})
		}
	}
	return findings
}

// checkSpawn resolves the spawned body and proves (or fails) its
// termination. "" means proven.
func (st *goleakState) checkSpawn(pkg *Package, g *ast.GoStmt) string {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return st.proveBody(pkg, lit.Body)
	}
	callee := staticCalleeFunc(pkg, g.Call)
	if callee == nil {
		return "spawns a function value whose target is unknown statically"
	}
	fn := st.decls[callee]
	if fn == nil {
		return fmt.Sprintf("spawns %s, which has no analyzable body in this module", shortName(callee))
	}
	if got, ok := st.memo[callee]; ok {
		return got
	}
	st.memo[callee] = "" // in-progress: recursive spawns don't recurse forever
	reason := st.proveBody(fn.pkg, fn.body)
	if reason != "" {
		reason = fmt.Sprintf("%s %s", shortName(callee), reason)
	}
	st.memo[callee] = reason
	return reason
}

// proveBody applies the four proof rules to one spawned body. Nested
// function literals are atoms (their own spawns are checked at their
// own go statements), and warm/cold classification exempts operations
// on inevitable panic/error paths.
func (st *goleakState) proveBody(pkg *Package, body *ast.BlockStmt) string {
	if hasDeferredWaitGroupDone(pkg, body) {
		return "" // rule 1
	}
	cold := coldRanges(pkg, body)

	var reason string
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if e.Cond == nil && !cold.covers(e.Pos()) && !st.hasCancellationCase(pkg, e.Body) {
				reason = st.describe(e.Pos(), "loops forever without a cancellation select case (ctx.Done() or a closed-somewhere channel, with return/break)")
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[e.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !cold.covers(e.Pos()) {
					if v, disp := lockIdent(pkg, e.X); v == nil || !st.facts.closed[v] {
						reason = st.describe(e.Pos(), fmt.Sprintf("ranges over channel %s, which is never closed in the module", nonEmpty(disp, "it")))
						return false
					}
				}
			}
		case *ast.SendStmt:
			// Sends that are select comms are judged at the select level
			// (a default or a guaranteed-ready sibling arm unblocks them).
			if !cold.covers(e.Pos()) && !st.insideSelect(body, e) && !st.bufferedChan(pkg, e.Chan) {
				reason = st.describe(e.Pos(), "sends on an unbuffered (or unknown-capacity) channel with no default case")
				return false
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW && !cold.covers(e.Pos()) && !st.insideSelect(body, e) && !st.safeRecvSource(pkg, e.X) {
				reason = st.describe(e.Pos(), "receives from a channel that is never closed in the module")
				return false
			}
		case *ast.SelectStmt:
			if !cold.covers(e.Pos()) && !selectHasDefault(e) && !st.selectHasSafeRecv(pkg, e) {
				reason = st.describe(e.Pos(), "blocks in a select with no default and no guaranteed-ready case (ctx.Done(), time.After, or a closed-somewhere channel)")
				return false
			}
		}
		return true
	})
	return reason
}

func (st *goleakState) describe(pos token.Pos, what string) string {
	p := st.prog.Fset.Position(pos)
	return fmt.Sprintf("%s (line %d)", what, p.Line)
}

// hasCancellationCase reports whether a loop body contains a select
// with a guaranteed-eventually-ready receive whose clause exits the
// loop (return or break) — proof rule 4.
func (st *goleakState) hasCancellationCase(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil || !st.commIsSafeRecv(pkg, cc.Comm) {
				continue
			}
			if clauseExits(cc.Body) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// clauseExits reports whether a comm clause body returns or breaks.
func clauseExits(body []ast.Stmt) bool {
	exits := false
	for _, s := range body {
		ast.Inspect(s, func(n ast.Node) bool {
			if exits {
				return false
			}
			switch e := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				exits = true
			case *ast.BranchStmt:
				if e.Tok == token.BREAK {
					exits = true
				}
			}
			return !exits
		})
	}
	return exits
}

// commIsSafeRecv reports whether a select comm is a receive from a
// guaranteed-eventually-ready source.
func (st *goleakState) commIsSafeRecv(pkg *Package, comm ast.Stmt) bool {
	var recv *ast.UnaryExpr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			recv = u
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recv = u
			}
		}
	}
	return recv != nil && st.safeRecvSource(pkg, recv.X)
}

// safeRecvSource reports whether ch is a channel that is guaranteed to
// become ready: ctx.Done(), time.After/Tick, a Timer/Ticker C field,
// or a channel identity that is closed somewhere in the module.
func (st *goleakState) safeRecvSource(pkg *Package, ch ast.Expr) bool {
	ch = ast.Unparen(ch)
	if call, ok := ch.(*ast.CallExpr); ok {
		callee := staticCalleeFunc(pkg, call)
		if callee == nil || callee.Pkg() == nil {
			return false
		}
		switch callee.Pkg().Path() {
		case "time":
			return callee.Name() == "After" || callee.Name() == "Tick"
		case "context":
			return callee.Name() == "Done"
		}
		// Interface method Done() on context.Context lives in package
		// context and is caught above; anything else is unproven.
		return false
	}
	if sel, ok := ch.(*ast.SelectorExpr); ok && sel.Sel.Name == "C" {
		if s, ok := pkg.Info.Selections[sel]; ok {
			t := s.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "time" {
				return true // Timer.C / Ticker.C
			}
		}
	}
	v, _ := lockIdent(pkg, ch)
	return v != nil && st.facts.closed[v]
}

// bufferedChan reports whether ch resolves to a buffered-make identity.
func (st *goleakState) bufferedChan(pkg *Package, ch ast.Expr) bool {
	v, _ := lockIdent(pkg, ch)
	return v != nil && st.facts.buffered[v]
}

// insideSelect reports whether op is (part of) a select comm within
// body. Comm operations are judged at the select level instead of as
// standalone blocking sends/receives.
func (st *goleakState) insideSelect(body *ast.BlockStmt, op ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				continue
			}
			if cc.Comm.Pos() <= op.Pos() && op.End() <= cc.Comm.End() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// selectHasSafeRecv reports whether any comm of sel is a receive from a
// guaranteed-ready source (making the select itself terminate).
func (st *goleakState) selectHasSafeRecv(pkg *Package, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm != nil && st.commIsSafeRecv(pkg, cc.Comm) {
			return true
		}
	}
	return false
}

// hasDeferredWaitGroupDone reports whether body (outside nested
// function literals) defers a sync.WaitGroup Done.
func hasDeferredWaitGroupDone(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(d.Call.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Name() == "Done" &&
				fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// posRanges is a set of source intervals (cold-block node spans).
type posRanges []struct{ lo, hi token.Pos }

func (r posRanges) covers(pos token.Pos) bool {
	for _, iv := range r {
		if iv.lo <= pos && pos <= iv.hi {
			return true
		}
	}
	return false
}

// coldRanges returns the source spans of body's CFG-cold nodes, so the
// structural walk can exempt operations on inevitable panic/error
// paths.
func coldRanges(pkg *Package, body *ast.BlockStmt) posRanges {
	cfg := BuildCFG(body)
	cold := cfg.ColdBlocks(panicDetector(pkg), coldReturnDetector(pkg))
	var out posRanges
	for blk := range cold {
		for _, n := range blk.Nodes {
			out = append(out, struct{ lo, hi token.Pos }{n.Pos(), n.End()})
		}
	}
	return out
}

// nonEmpty returns s, or fallback when s is empty.
func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}
