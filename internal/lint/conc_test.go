package lint

import (
	"strings"
	"testing"
)

func TestLockOrderFixture(t *testing.T) {
	checkPassAgainstMarkers(t, &LockOrder{})
}

func TestBlockHoldFixture(t *testing.T) {
	checkPassAgainstMarkers(t, &BlockHold{})
}

func TestGoLeakFixture(t *testing.T) {
	checkPassAgainstMarkers(t, &GoLeak{})
}

// TestBareHoldokIsFinding pins that an unexplained lint:holdok is
// itself reported instead of silently suppressing nothing.
func TestBareHoldokIsFinding(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module tmp\n\ngo 1.23\n",
		"a/a.go": `package a

import (
	"sync"
	"time"
)

var mu sync.Mutex

func Held() {
	mu.Lock()
	//lint:holdok
	time.Sleep(time.Millisecond)
	mu.Unlock()
}
`,
	})
	fs := Run(prog, []Pass{&BlockHold{}})
	var bare, site bool
	for _, f := range fs {
		if strings.Contains(f.Message, "lint:holdok has no reason") {
			bare = true
		}
		if strings.Contains(f.Message, "time.Sleep blocks while holding") ||
			strings.Contains(f.Message, "time.Sleep blocks") && strings.Contains(f.Message, "holding") {
			site = true
		}
	}
	if !bare {
		t.Errorf("bare lint:holdok not reported: %v", fs)
	}
	if !site {
		t.Errorf("bare holdok must not suppress the blocking site: %v", fs)
	}
}

// TestDeferredUnlockScopesHeldSet pins the two halves of the
// defer-unlock contract on one miniature module: inside the body the
// lock stays held (the sleep is flagged), while the summary exports no
// held state — a caller holding its own lock that calls the balanced
// function sees no blocking finding beyond the callee's own.
func TestDeferredUnlockScopesHeldSet(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module tmp\n\ngo 1.23\n",
		"a/a.go": `package a

import (
	"sync"
	"time"
)

type box struct {
	inner sync.Mutex
	outer sync.Mutex
}

// balanced holds inner via defer for its whole body: the sleep is in
// the critical section.
func (b *box) balanced() {
	b.inner.Lock()
	defer b.inner.Unlock()
	time.Sleep(time.Millisecond)
}

// caller holds outer across the call; balanced's deferred unlock must
// not leak inner into caller's held set, but balanced itself blocks,
// so the held call is flagged once, at the call site.
func (b *box) caller() {
	b.outer.Lock()
	b.balanced()
	b.outer.Unlock()
}

// clean is fully balanced with no blocking: a held call into it is no
// finding at all.
func (b *box) clean() {
	b.inner.Lock()
	defer b.inner.Unlock()
}

func (b *box) callsClean() {
	b.outer.Lock()
	b.clean()
	b.outer.Unlock()
}
`,
	})
	fs := Run(prog, []Pass{&BlockHold{}})
	var inBody, atCall, cleanCall bool
	for _, f := range fs {
		switch {
		case strings.Contains(f.Message, "a.box.balanced: time.Sleep blocks while holding (box).inner"):
			inBody = true
		case strings.Contains(f.Message, "a.box.caller: call blocks while holding (box).outer"):
			atCall = true
		case strings.Contains(f.Message, "callsClean"):
			cleanCall = true
		}
	}
	if !inBody {
		t.Errorf("defer-unlocked region not treated as held: %v", fs)
	}
	if !atCall {
		t.Errorf("held call into a blocking balanced function not flagged: %v", fs)
	}
	if cleanCall {
		t.Errorf("balanced non-blocking callee leaked held state to its caller: %v", fs)
	}
	if len(fs) != 2 {
		t.Errorf("want exactly the two findings, got %d: %v", len(fs), fs)
	}
}

// TestSelectDefaultNonBlocking pins that a select with a default clause
// is non-blocking to blockhold while a default-less one is a finding,
// over the same held lock.
func TestSelectDefaultNonBlocking(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module tmp\n\ngo 1.23\n",
		"a/a.go": `package a

import "sync"

var (
	mu sync.Mutex
	ch = make(chan int)
)

func Poll() {
	mu.Lock()
	select {
	case v := <-ch:
		_ = v
	default:
	}
	mu.Unlock()
}

func Block() {
	mu.Lock()
	select {
	case v := <-ch:
		_ = v
	}
	mu.Unlock()
}
`,
	})
	fs := Run(prog, []Pass{&BlockHold{}})
	if len(fs) != 1 {
		t.Fatalf("want exactly one finding (the default-less select), got %d: %v", len(fs), fs)
	}
	f := fs[0]
	if !strings.Contains(f.Message, "a.Block: select without a default clause blocks while holding a.mu") {
		t.Errorf("unexpected finding: %v", f)
	}
	// The receive inside the comm clause must be judged at the select
	// level, not double-reported as a standalone channel receive.
	if strings.Contains(f.Message, "channel receive") {
		t.Errorf("comm receive reported standalone: %v", f)
	}
}

// TestLockOrderRangeHeader pins the CFG shape lockorder depends on: a
// lock taken before a range loop must not look re-acquired on the back
// edge (the loop header is a fresh block, not the pre-loop code).
func TestLockOrderRangeHeader(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module tmp\n\ngo 1.23\n",
		"a/a.go": `package a

import "sync"

var mu sync.Mutex

func Snapshot(xs []int) int {
	n := 0
	mu.Lock()
	defer mu.Unlock()
	for _, x := range xs {
		n += x
	}
	return n
}
`,
	})
	if fs := Run(prog, []Pass{&LockOrder{}}); len(fs) != 0 {
		t.Fatalf("lock before range falsely re-acquired: %v", fs)
	}
}
