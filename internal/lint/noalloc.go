package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// NoAlloc is the interprocedural allocation pass enforcing the
// steady-state GC-free contract on the serving hot paths: a function
// whose doc comment carries
//
//	//lint:noalloc
//
// is proven free of heap-allocating constructs, and so is everything it
// transitively calls through static module calls — via bottom-up
// per-function summaries in the style of secrettaint, so one annotation
// on a kernel entry point covers its whole call tree.
//
// Allocating constructs: make/new, slice and map composite literals,
// &T{...} (address of a composite escapes), append (backing-array
// growth), binary.*.AppendUint* (same), string concatenation and
// string<->[]byte/[]rune conversions, conversion to an interface type
// (boxing), function literals (closure capture), method values
// (receiver capture), go statements, map writes, variadic calls passing
// a non-ellipsis argument list (the argument slice), and calls into
// standard-library functions outside a small proven-clean whitelist
// (math, math/bits, sync/atomic, io.ReadFull, runtime.GOMAXPROCS and
// NumCPU, the fixed-width encoding/binary Uint/PutUint helpers) —
// fmt.*, errors.New, and friends therefore poison a hot path by
// construction.
//
// Two escape hatches keep real scratch-arena code annotatable. Cold
// paths are exempt: the pass builds a CFG per function (cfg.go) and
// skips blocks from which execution inevitably panics or returns a
// freshly constructed error (fmt.Errorf / errors.New / &...Error{}) —
// validation and corruption paths may allocate their diagnostics.
// Arena growth is declared: an append/make that (re)fills a reusable
// scratch buffer may be annotated on its line (or the line above) with
//
//	//lint:prealloc <reason>
//
// meaning "this growth happens at most O(1) times per arena, not per
// op"; a prealloc with no reason is itself a finding. Anything else
// needs an ordinary //lint:allow noalloc <reason>, and allows are
// honored while building summaries, so a justified allocation inside a
// callee does not poison its annotated callers.
//
// Deliberate exemptions (documented blind spots, kept so the pass stays
// stdlib-only and precise): calls through interface methods and
// function values are not followed (the target is unknown statically;
// passing a stack value to an interface method can also make it escape
// at runtime — the paired AllocsPerRun tests catch that class), defer
// records are not counted (open-coded since Go 1.14), and implicit
// interface boxing at plain assignments is not modeled (the fmt.*,
// variadic, and conversion rules catch the vectors that occur in
// practice).
type NoAlloc struct{}

// Name implements Pass.
func (*NoAlloc) Name() string { return "noalloc" }

// Doc implements Pass.
func (*NoAlloc) Doc() string {
	return "//lint:noalloc functions (and their static callees) must not heap-allocate outside cold panic/error paths (interprocedural, CFG-based)"
}

// allocSite is one allocating construct found in a warm block.
type allocSite struct {
	pos  token.Pos
	what string
}

// allocEdge is one warm static call into a module function.
type allocEdge struct {
	pos    token.Pos
	callee *types.Func
}

// allocSummary is the per-function summary: unsuppressed warm
// allocation sites plus the warm module call edges to chase.
type allocSummary struct {
	sites []allocSite
	edges []allocEdge
}

// allocFn is one analyzable function body.
type allocFn struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// Run implements Pass.
func (p *NoAlloc) Run(prog *Program) []Finding {
	// Allows are folded into summaries so a justified site does not
	// poison callers; the malformed-directive findings are emitted by
	// Run()'s own collectAllows call, not duplicated here.
	allows, _ := collectAllows(prog)
	prealloc, findings := collectPrealloc(prog)

	// Function universe in deterministic (package, file, decl) order.
	var fns []*allocFn
	annotated := map[*types.Func]bool{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fns = append(fns, &allocFn{obj: obj, decl: fd, pkg: pkg})
				if hasNoallocAnnot(fd) {
					annotated[obj] = true
				}
			}
		}
	}
	if len(annotated) == 0 {
		return findings
	}

	st := &noallocState{
		prog:      prog,
		annotated: annotated,
		summaries: map[*types.Func]*allocSummary{},
		memo:      map[*types.Func]int8{},
		witness:   map[*types.Func]string{},
	}
	for _, fn := range fns {
		st.summaries[fn.obj] = buildAllocSummary(prog, fn.pkg, fn.decl, allows, prealloc)
	}

	for _, fn := range fns {
		if !annotated[fn.obj] {
			continue
		}
		sum := st.summaries[fn.obj]
		for _, s := range sum.sites {
			findings = append(findings, Finding{Pass: "noalloc", Pos: prog.Fset.Position(s.pos),
				Message: fmt.Sprintf("%s is annotated //lint:noalloc but %s", shortName(fn.obj), s.what)})
		}
		for _, e := range sum.edges {
			if annotated[e.callee] {
				// An annotated callee carries its own contract; its
				// violations are reported at its own sites, once.
				continue
			}
			if w, bad := st.allocates(e.callee); bad {
				findings = append(findings, Finding{Pass: "noalloc", Pos: prog.Fset.Position(e.pos),
					Message: fmt.Sprintf("call allocates on the //lint:noalloc path of %s: %s",
						shortName(fn.obj), w)})
			}
		}
	}
	return findings
}

// hasNoallocAnnot reports whether fd's doc comment declares the
// contract.
func hasNoallocAnnot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "lint:noalloc" || strings.HasPrefix(text, "lint:noalloc ") {
			return true
		}
	}
	return false
}

// collectPrealloc parses every //lint:prealloc directive. The returned
// map is filename -> set of directive lines; a directive exempts
// append/make growth sites on its own line or the line below.
// Directives with no reason are returned as findings.
func collectPrealloc(prog *Program) (map[string]map[int]bool, []Finding) {
	lines := map[string]map[int]bool{}
	var bad []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "lint:prealloc")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					if strings.TrimSpace(rest) == "" {
						bad = append(bad, Finding{Pass: "noalloc", Pos: pos,
							Message: "lint:prealloc has no reason; unexplained arena-growth exemptions are forbidden"})
						continue
					}
					byLine := lines[pos.Filename]
					if byLine == nil {
						byLine = map[int]bool{}
						lines[pos.Filename] = byLine
					}
					byLine[pos.Line] = true
				}
			}
		}
	}
	return lines, bad
}

// noallocState memoizes the transitive does-it-allocate query over
// function summaries.
type noallocState struct {
	prog      *Program
	annotated map[*types.Func]bool
	summaries map[*types.Func]*allocSummary
	memo      map[*types.Func]int8 // 0 unvisited, 1 in progress, 2 clean, 3 allocates
	witness   map[*types.Func]string
}

// allocates reports whether fn (or anything it transitively calls)
// allocates, with a witness chain naming the allocating expression.
// In-progress cycle members answer clean: a recursive cycle that is
// otherwise allocation-free stays clean, and a cycle containing a real
// site is caught when the site's owner finishes.
func (st *noallocState) allocates(fn *types.Func) (string, bool) {
	switch st.memo[fn] {
	case 1, 2:
		return "", false
	case 3:
		return st.witness[fn], true
	}
	sum := st.summaries[fn]
	if sum == nil {
		// Module function without an analyzable body; nothing to prove.
		st.memo[fn] = 2
		return "", false
	}
	st.memo[fn] = 1
	if len(sum.sites) > 0 {
		s := sum.sites[0]
		p := st.prog.Fset.Position(s.pos)
		st.witness[fn] = fmt.Sprintf("%s: %s at %s:%d", shortName(fn), s.what, filepath.Base(p.Filename), p.Line)
		st.memo[fn] = 3
		return st.witness[fn], true
	}
	for _, e := range sum.edges {
		if w, bad := st.allocates(e.callee); bad {
			st.witness[fn] = shortName(fn) + " → " + w
			st.memo[fn] = 3
			return st.witness[fn], true
		}
	}
	st.memo[fn] = 2
	return "", false
}

// buildAllocSummary scans fd's warm blocks for allocation sites and
// module call edges, folding in allow/prealloc suppressions.
func buildAllocSummary(prog *Program, pkg *Package, fd *ast.FuncDecl,
	allows map[string]map[int][]allow, prealloc map[string]map[int]bool) *allocSummary {

	cfg := BuildCFG(fd.Body)
	cold := cfg.ColdBlocks(panicDetector(pkg), coldReturnDetector(pkg))

	w := &allocWalker{prog: prog, pkg: pkg, allows: allows, prealloc: prealloc,
		sum: &allocSummary{}, callFuns: map[ast.Node]bool{}}
	for _, blk := range cfg.Blocks {
		if cold[blk] {
			continue
		}
		for _, n := range blk.Nodes {
			w.scan(n)
		}
	}
	return w.sum
}

// allocWalker accumulates one function's summary.
type allocWalker struct {
	prog     *Program
	pkg      *Package
	allows   map[string]map[int][]allow
	prealloc map[string]map[int]bool
	sum      *allocSummary
	callFuns map[ast.Node]bool // call-position expressions (not method values)
}

// suppressedAt reports whether an allow for noalloc covers pos.
func (w *allocWalker) suppressedAt(pos token.Pos) bool {
	return suppressed(w.allows, Finding{Pass: "noalloc", Pos: w.prog.Fset.Position(pos)})
}

// preallocAt reports whether a lint:prealloc directive covers pos (the
// directive's line or the line above the site).
func (w *allocWalker) preallocAt(pos token.Pos) bool {
	p := w.prog.Fset.Position(pos)
	byLine := w.prealloc[p.Filename]
	return byLine != nil && (byLine[p.Line] || byLine[p.Line-1])
}

func (w *allocWalker) site(pos token.Pos, what string) {
	if w.suppressedAt(pos) {
		return
	}
	w.sum.sites = append(w.sum.sites, allocSite{pos: pos, what: what})
}

// growthSite records an append/make style arena-growth site, exemptable
// by //lint:prealloc.
func (w *allocWalker) growthSite(pos token.Pos, what string) {
	if w.preallocAt(pos) {
		return
	}
	w.site(pos, what+" (arena refills may be declared with //lint:prealloc <reason>)")
}

func (w *allocWalker) edge(pos token.Pos, callee *types.Func) {
	if w.suppressedAt(pos) {
		return
	}
	w.sum.edges = append(w.sum.edges, allocEdge{pos: pos, callee: callee})
}

// scan inspects one block node. Function literals are atoms: the
// literal itself is an allocation, its body belongs to no block here.
func (w *allocWalker) scan(n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			w.site(e.Pos(), "a function literal allocates its closure")
			return false
		case *ast.GoStmt:
			w.site(e.Pos(), "a go statement allocates the goroutine and its argument frame")
		case *ast.CallExpr:
			w.callFuns[ast.Unparen(e.Fun)] = true
			w.call(e)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					w.site(e.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			w.compositeLit(e)
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringExpr(w.pkg, e) {
				w.site(e.Pos(), "string concatenation allocates")
			}
		case *ast.SelectorExpr:
			if !w.callFuns[e] {
				if sel, ok := w.pkg.Info.Selections[e]; ok && sel.Kind() == types.MethodVal {
					w.site(e.Pos(), fmt.Sprintf("method value %s captures its receiver (allocates)", e.Sel.Name))
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && isMapExpr(w.pkg, idx.X) {
					w.site(idx.Pos(), "a map write may allocate (bucket growth)")
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(e.X).(*ast.IndexExpr); ok && isMapExpr(w.pkg, idx.X) {
				w.site(idx.Pos(), "a map write may allocate (bucket growth)")
			}
		}
		return true
	})
}

// compositeLit classifies a composite literal: slice and map literals
// allocate their backing store; value struct and array literals live in
// their enclosing frame and are exempt (taking their address is the
// &T{...} rule above).
func (w *allocWalker) compositeLit(lit *ast.CompositeLit) {
	tv, ok := w.pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		w.site(lit.Pos(), "a slice literal allocates its backing array")
	case *types.Map:
		w.site(lit.Pos(), "a map literal allocates")
	}
}

// call classifies one call expression: builtin, conversion, module edge,
// or standard-library leaf.
func (w *allocWalker) call(call *ast.CallExpr) {
	// Type conversions.
	if tv, ok := w.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		w.conversion(call, tv.Type)
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				w.growthSite(call.Pos(), "append may grow its backing array")
			case "make":
				w.growthSite(call.Pos(), "make allocates")
			case "new":
				w.site(call.Pos(), "new allocates")
			case "print", "println":
				w.site(call.Pos(), "print/println box their arguments")
			}
			// len, cap, copy, delete, clear, min, max, real, imag,
			// complex, recover: allocation-free. panic lives in cold
			// blocks by construction.
			return
		}
	}

	callee := staticCalleeFunc(w.pkg, call)
	if callee == nil {
		// Function-value call: target unknown — documented exemption.
		return
	}
	if sig, ok := callee.Type().(*types.Signature); ok {
		if recv := sig.Recv(); recv != nil {
			if _, iface := recv.Type().Underlying().(*types.Interface); iface {
				// Interface-method call — documented exemption.
				return
			}
		}
		// A variadic call without ... builds its argument slice.
		if sig.Variadic() && call.Ellipsis == token.NoPos &&
			len(call.Args) >= sig.Params().Len() {
			w.site(call.Pos(), fmt.Sprintf("variadic call to %s builds an argument slice", shortName(callee)))
		}
	}

	if calleePkg := callee.Pkg(); calleePkg != nil && moduleMember(w.prog, calleePkg) {
		w.edge(call.Pos(), callee)
		return
	}
	w.stdlibCall(call, callee)
}

// conversion flags the allocating conversions: to/from string and byte
// or rune slices, and boxing into an interface type.
func (w *allocWalker) conversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	if _, iface := target.Underlying().(*types.Interface); iface {
		w.site(call.Pos(), "conversion to an interface type boxes its operand")
		return
	}
	argTV, ok := w.pkg.Info.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return
	}
	from, to := argTV.Type.Underlying(), target.Underlying()
	switch {
	case isStringType(to) && isByteOrRuneSlice(from):
		w.site(call.Pos(), "[]byte/[]rune → string conversion allocates")
	case isByteOrRuneSlice(to) && isStringType(from):
		w.site(call.Pos(), "string → []byte/[]rune conversion allocates")
	}
}

// stdlibCall applies the standard-library whitelist: a short list of
// functions proven allocation-free; binary.AppendUint* counts as append
// growth; everything else is assumed to allocate.
func (w *allocWalker) stdlibCall(call *ast.CallExpr, callee *types.Func) {
	pkgPath, name := callee.Pkg().Path(), callee.Name()
	switch pkgPath {
	case "math", "math/bits", "sync/atomic":
		return
	case "io":
		if name == "ReadFull" {
			return
		}
	case "runtime":
		if name == "GOMAXPROCS" || name == "NumCPU" {
			return
		}
	case "encoding/binary":
		switch name {
		case "Uint16", "Uint32", "Uint64", "PutUint16", "PutUint32", "PutUint64":
			return
		}
		if strings.HasPrefix(name, "AppendUint") {
			w.growthSite(call.Pos(), fmt.Sprintf("%s may grow its destination", shortName(callee)))
			return
		}
	}
	w.site(call.Pos(), fmt.Sprintf("call to %s is outside the noalloc stdlib whitelist (assumed to allocate)", shortName(callee)))
}

// panicDetector recognizes nodes that unconditionally abort: panic and
// os.Exit calls (function literals excluded — their bodies run later,
// if at all).
func panicDetector(pkg *Package) func(ast.Node) bool {
	return func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			if found {
				return false
			}
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
					found = true
				}
			case *ast.SelectorExpr:
				if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok &&
					f.Pkg() != nil && f.Pkg().Path() == "os" && f.Name() == "Exit" {
					found = true
				}
			}
			return !found
		})
		return found
	}
}

// coldReturnDetector recognizes returns whose results include a freshly
// constructed error — fmt.Errorf, errors.New, or &SomethingError{...} —
// the validation-failure exits a hot path takes at most once per bad
// input, never in steady state.
func coldReturnDetector(pkg *Package) func(*ast.ReturnStmt) bool {
	return func(ret *ast.ReturnStmt) bool {
		for _, res := range ret.Results {
			cold := false
			ast.Inspect(res, func(x ast.Node) bool {
				if cold {
					return false
				}
				switch e := x.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					if f := staticCalleeFunc(pkg, e); f != nil && f.Pkg() != nil {
						switch {
						case f.Pkg().Path() == "fmt" && f.Name() == "Errorf",
							f.Pkg().Path() == "errors" && f.Name() == "New":
							cold = true
						}
					}
				case *ast.UnaryExpr:
					if e.Op == token.AND {
						if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok && errorTypedLit(pkg, lit) {
							cold = true
						}
					}
				}
				return !cold
			})
			if cold {
				return true
			}
		}
		return false
	}
}

// errorTypedLit reports whether lit's named type looks like an error
// payload (name ends in "Error").
func errorTypedLit(pkg *Package, lit *ast.CompositeLit) bool {
	tv, ok := pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && strings.HasSuffix(named.Obj().Name(), "Error")
}

// staticCalleeFunc resolves call's target when it is a plain function
// or method reference.
func staticCalleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// moduleMember reports whether pkg belongs to the analyzed module.
func moduleMember(prog *Program, pkg *types.Package) bool {
	return pkg.Path() == prog.ModulePath || strings.HasPrefix(pkg.Path(), prog.ModulePath+"/")
}

func isStringExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Type != nil && isStringType(tv.Type.Underlying())
}

func isMapExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
