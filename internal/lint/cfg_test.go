package lint

import (
	"go/ast"
	"testing"
)

// buildFor locates fnName in pkgPath and returns its CFG plus the
// cold/warm classification of its source lines (a line is cold when
// every node on it sits in a cold block).
func buildFor(t *testing.T, prog *Program, pkgPath, fnName string) (*CFG, map[int]bool, map[int]bool) {
	t.Helper()
	pkg := prog.ByPath[pkgPath]
	if pkg == nil {
		t.Fatalf("package %s not loaded", pkgPath)
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fnName || fd.Body == nil {
				continue
			}
			cfg := BuildCFG(fd.Body)
			cold := cfg.ColdBlocks(panicDetector(pkg), coldReturnDetector(pkg))
			coldLines, warmLines := map[int]bool{}, map[int]bool{}
			for _, blk := range cfg.Blocks {
				for _, n := range blk.Nodes {
					line := prog.Fset.Position(n.Pos()).Line
					if cold[blk] {
						coldLines[line] = true
					} else {
						warmLines[line] = true
					}
				}
			}
			return cfg, coldLines, warmLines
		}
	}
	t.Fatalf("function %s not found in %s", fnName, pkgPath)
	return nil, nil, nil
}

func TestCFGColdPaths(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": `package a

import "fmt"

func Guarded(n int) int {
	if n < 0 {
		msg := fmt.Sprintf("bad %d", n) // line 7: inevitably panics
		panic(msg)
	}
	total := 0 // line 10: steady state
	for i := 0; i < n; i++ {
		total += i // line 12: loop body
	}
	return total // line 14
}

func ColdReturn(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("bad %d", n) // line 19: cold error exit
	}
	return n * 2, nil // line 21: warm return
}

func Forever(c chan int) {
	for {
		v := <-c // line 26: warm cycle must stay warm
		_ = v
	}
}

func AlwaysDies(n int) int {
	if n > 0 {
		panic("pos") // line 33
	}
	panic("nonpos") // line 35
}
`,
	})

	_, cold, warm := buildFor(t, prog, "m/a", "Guarded")
	for _, line := range []int{7, 8} {
		if !cold[line] {
			t.Errorf("Guarded: line %d should be cold", line)
		}
	}
	for _, line := range []int{10, 12, 14} {
		if !warm[line] || cold[line] {
			t.Errorf("Guarded: line %d should be warm", line)
		}
	}

	_, cold, warm = buildFor(t, prog, "m/a", "ColdReturn")
	if !cold[19] {
		t.Error("ColdReturn: fmt.Errorf return should be cold")
	}
	if !warm[21] || cold[21] {
		t.Error("ColdReturn: plain return should be warm")
	}

	_, cold, warm = buildFor(t, prog, "m/a", "Forever")
	if len(cold) != 0 {
		t.Errorf("Forever: nothing is cold in a warm infinite loop, got lines %v", cold)
	}
	if !warm[26] {
		t.Error("Forever: loop body should be warm")
	}

	cfg, cold, _ := buildFor(t, prog, "m/a", "AlwaysDies")
	if !cold[33] || !cold[35] {
		t.Error("AlwaysDies: both panic arms should be cold")
	}
	// Every path dies, so coldness must propagate back to the entry.
	entryCold := cfg.ColdBlocks(panicDetector(prog.ByPath["m/a"]), nil)
	if !entryCold[cfg.Entry] {
		t.Error("AlwaysDies: entry block should be cold when all paths panic")
	}
}

func TestCFGGotoBreaksAnalysis(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": `package a

func Jumpy(n int) int {
	if n < 0 {
		goto out
	}
	panic("boom")
out:
	return n
}
`,
	})
	cfg, cold, _ := buildFor(t, prog, "m/a", "Jumpy")
	if !cfg.Broken {
		t.Fatal("goto should mark the CFG broken")
	}
	if len(cold) != 0 {
		t.Errorf("broken CFG must report nothing cold, got lines %v", cold)
	}
}

func TestCFGSwitchAndBranches(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": `package a

func Dispatch(op int, xs []int) int {
	total := 0
	switch op {
	case 0:
		total = len(xs) // line 7: warm clause
	case 1:
		panic("unsupported") // line 9: cold clause
	default:
		for _, x := range xs {
			if x < 0 {
				continue
			}
			if x > 100 {
				break
			}
			total += x // line 18: warm
		}
	}
	return total // line 21
}
`,
	})
	_, cold, warm := buildFor(t, prog, "m/a", "Dispatch")
	if !cold[9] {
		t.Error("panicking switch clause should be cold")
	}
	for _, line := range []int{7, 18, 21} {
		if !warm[line] || cold[line] {
			t.Errorf("line %d should be warm", line)
		}
	}
}
