package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package.
type Package struct {
	PkgPath string // full import path ("athena/internal/ring")
	Dir     string // absolute directory
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Program is the loaded module: every non-test package, type-checked in
// dependency order against a shared FileSet.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Root       string // absolute module root (directory holding go.mod)
	Packages   []*Package
	ByPath     map[string]*Package
}

// LoadModule parses and type-checks every non-test package under root,
// which must contain a go.mod. Standard-library imports are resolved
// from source (no export data needed), module-internal imports from the
// packages being loaded; external module dependencies are unsupported —
// by design, since the repo's go.mod stays bare.
func LoadModule(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog := &Program{Fset: fset, ModulePath: modPath, Root: root, ByPath: map[string]*Package{}}

	// Discover and parse every package directory.
	parsed := map[string]*Package{} // pkgPath -> package with Files set
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		files, perr := parseDir(fset, path)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		parsed[pkgPath] = &Package{PkgPath: pkgPath, Dir: path, Files: files}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Type-check in topological order of module-internal imports.
	order, err := topoOrder(parsed, modPath)
	if err != nil {
		return nil, err
	}
	srcImporter := importer.ForCompiler(fset, "source", nil)
	done := map[string]*types.Package{}
	imp := &chainImporter{std: srcImporter, module: done}
	for _, pkgPath := range order {
		pkg := parsed[pkgPath]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, cerr := conf.Check(pkgPath, fset, pkg.Files, info)
		if cerr != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, cerr)
		}
		pkg.Types = tpkg
		pkg.Info = info
		done[pkgPath] = tpkg
		prog.Packages = append(prog.Packages, pkg)
		prog.ByPath[pkgPath] = pkg
	}
	return prog, nil
}

// parseDir parses the non-test buildable .go files directly in dir.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, perr := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, perr
		}
		if ignoredByBuildTag(f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// ignoredByBuildTag reports whether the file opts out of the build
// entirely (//go:build ignore); richer constraint evaluation is not
// needed for this repo.
func ignoredByBuildTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "go:build ignore" || strings.HasPrefix(text, "+build ignore") {
				return true
			}
		}
	}
	return false
}

// moduleImports returns pkg's imports that live inside the module.
func moduleImports(pkg *Package, modPath string) []string {
	seen := map[string]bool{}
	var deps []string
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if (path == modPath || strings.HasPrefix(path, modPath+"/")) && !seen[path] {
				seen[path] = true
				deps = append(deps, path)
			}
		}
	}
	sort.Strings(deps)
	return deps
}

// topoOrder sorts the parsed packages so every package follows its
// module-internal dependencies.
func topoOrder(parsed map[string]*Package, modPath string) ([]string, error) {
	const (
		unvisited = 0
		visiting  = 1
		finished  = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case finished:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		pkg, ok := parsed[path]
		if !ok {
			return fmt.Errorf("lint: package %s imported but not found in module", path)
		}
		for _, dep := range moduleImports(pkg, modPath) {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = finished
		order = append(order, path)
		return nil
	}
	var roots []string
	for path := range parsed {
		roots = append(roots, path)
	}
	sort.Strings(roots)
	for _, path := range roots {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// chainImporter resolves module-internal packages from the in-progress
// load and everything else (the standard library) from source.
type chainImporter struct {
	std    types.Importer
	module map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.module[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (athena-lint must run from the module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
