package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one type-checked module package.
type Package struct {
	PkgPath string // full import path ("athena/internal/ring")
	Dir     string // absolute directory
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Program is the loaded module: every non-test package, type-checked in
// dependency order against a shared FileSet.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Root       string // absolute module root (directory holding go.mod)
	Packages   []*Package
	ByPath     map[string]*Package
	// Generated marks the absolute filenames carrying a standard
	// "Code generated … DO NOT EDIT." header. They are loaded (their
	// declarations participate in type-checking) but findings located in
	// them are dropped by Run: generated code is fixed at its generator.
	Generated map[string]bool
}

// LoadModule parses and type-checks every non-test package under root,
// which must contain a go.mod. Standard-library imports are resolved
// from source (no export data needed), module-internal imports from the
// packages being loaded; external module dependencies are unsupported —
// by design, since the repo's go.mod stays bare.
func LoadModule(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog := &Program{Fset: fset, ModulePath: modPath, Root: root,
		ByPath: map[string]*Package{}, Generated: map[string]bool{}}

	// Discover and parse every package directory.
	parsed := map[string]*Package{} // pkgPath -> package with Files set
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		files, perr := parseDir(fset, path, prog.Generated)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		parsed[pkgPath] = &Package{PkgPath: pkgPath, Dir: path, Files: files}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Type-check in topological order of module-internal imports.
	order, err := topoOrder(parsed, modPath)
	if err != nil {
		return nil, err
	}
	srcImporter := importer.ForCompiler(fset, "source", nil)
	done := map[string]*types.Package{}
	imp := &chainImporter{std: srcImporter, module: done}
	for _, pkgPath := range order {
		pkg := parsed[pkgPath]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, cerr := conf.Check(pkgPath, fset, pkg.Files, info)
		if cerr != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, cerr)
		}
		pkg.Types = tpkg
		pkg.Info = info
		done[pkgPath] = tpkg
		prog.Packages = append(prog.Packages, pkg)
		prog.ByPath[pkgPath] = pkg
	}
	return prog, nil
}

// parseDir parses the non-test buildable .go files directly in dir,
// recording generated files in generated.
func parseDir(fset *token.FileSet, dir string, generated map[string]bool) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			hasPlatformSuffix(name) {
			continue
		}
		full := filepath.Join(dir, name)
		f, perr := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if perr != nil {
			return nil, perr
		}
		if ignoredByBuildTag(f) {
			continue
		}
		if isGeneratedFile(f) {
			generated[full] = true
		}
		files = append(files, f)
	}
	return files, nil
}

// platformSuffixes are the GOOS/GOARCH filename suffixes the loader
// excludes unconditionally: the lint view of the module must be the same
// on every host, so platform-specific files never participate. The repo
// has none; the list exists so one appearing later cannot make lint
// results host-dependent.
var platformSuffixes = []string{
	"linux", "darwin", "windows", "freebsd", "openbsd", "netbsd", "js", "wasip1", "plan9",
	"amd64", "arm64", "arm", "386", "riscv64", "ppc64le", "s390x", "wasm", "mips64",
}

func hasPlatformSuffix(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	for _, suf := range platformSuffixes {
		if strings.HasSuffix(base, "_"+suf) {
			return true
		}
	}
	return false
}

// ignoredByBuildTag reports whether the file's build constraints exclude
// it from the lint build. Constraints are evaluated with every tag
// false — deterministically host-independent: `//go:build ignore` and
// `//go:build linux` are skipped everywhere, `//go:build !someflag` is
// kept everywhere. Files with no constraint are always kept.
func ignoredByBuildTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: treat as unconstrained
			}
			if !expr.Eval(func(tag string) bool { return false }) {
				return true
			}
		}
	}
	return false
}

// generatedRx matches the standard generated-file header mandated by
// https://go.dev/s/generatedcode.
var generatedRx = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

// isGeneratedFile reports whether f carries the conventional generated
// header before its package clause.
func isGeneratedFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if generatedRx.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// moduleImports returns pkg's imports that live inside the module.
func moduleImports(pkg *Package, modPath string) []string {
	seen := map[string]bool{}
	var deps []string
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if (path == modPath || strings.HasPrefix(path, modPath+"/")) && !seen[path] {
				seen[path] = true
				deps = append(deps, path)
			}
		}
	}
	sort.Strings(deps)
	return deps
}

// topoOrder sorts the parsed packages so every package follows its
// module-internal dependencies.
func topoOrder(parsed map[string]*Package, modPath string) ([]string, error) {
	const (
		unvisited = 0
		visiting  = 1
		finished  = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case finished:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		pkg, ok := parsed[path]
		if !ok {
			return fmt.Errorf("lint: package %s imported but not found in module", path)
		}
		for _, dep := range moduleImports(pkg, modPath) {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = finished
		order = append(order, path)
		return nil
	}
	var roots []string
	for path := range parsed {
		roots = append(roots, path)
	}
	sort.Strings(roots)
	for _, path := range roots {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// chainImporter resolves module-internal packages from the in-progress
// load and everything else (the standard library) from source.
type chainImporter struct {
	std    types.Importer
	module map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.module[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (athena-lint must run from the module root)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
