package lint

import (
	"strings"
	"testing"
)

func TestParSafeFixture(t *testing.T) {
	checkPassAgainstMarkers(t, &ParSafe{})
}

// Each violation kind must be described precisely so the fix is obvious
// from the message alone.
func TestParSafeMessagesClassifyWrites(t *testing.T) {
	prog := fixture(t)
	wantKinds := []string{
		`captured variable "sum"`,
		`captured map "seen"`,
		`captured slice "out" at a shared`,
		`captured variable "first"`,
		`field of captured variable "a"`,
		`captured pointer "p"`,
		`captured variable "count"`,
	}
	findings := (&ParSafe{}).Run(prog)
	for _, kind := range wantKinds {
		found := false
		for _, f := range findings {
			if strings.Contains(f.Message, kind) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no parsafe finding mentioning %s", kind)
		}
	}
}
