package lint

import (
	"go/types"
	"strings"
	"testing"
)

func TestModDomainFixture(t *testing.T) {
	checkPassAgainstMarkers(t, &ModDomain{})
}

// fakeFn builds a *types.Func with the given value-parameter names, all
// uint64, one uint64 result — enough signature for the annotation parser.
func fakeFn(names ...string) *types.Func {
	u64 := types.Typ[types.Uint64]
	var params []*types.Var
	for _, n := range names {
		params = append(params, types.NewVar(0, nil, n, u64))
	}
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(params...),
		types.NewTuple(types.NewVar(0, nil, "", u64)), false)
	return types.NewFunc(0, nil, "Kernel", sig)
}

func TestParseDomainAnnot(t *testing.T) {
	fn := fakeFn("a", "b", "out")
	cases := []struct {
		spec    string
		wantErr string // "" means the spec must parse
	}{
		{"a:<q b:<2q -> ret:<4q", ""},
		{"a:any -> out:<q", ""},
		{"-> ret:<q", ""},
		{"a:<q b:<q out:<q -> out:<q", ""},
		{"a:<q ret:<q", "missing ->"},
		{"a:<q -> -> ret:<q", "more than one ->"},
		{"a:<8q -> ret:<q", `unknown domain "<8q"`},
		{"nosuch:<q -> ret:<q", `"nosuch" names no parameter`},
		{"ret:<q -> a:<q", "ret declared on the input side"},
		{"a -> ret:<q", `"a" is not name:domain`},
	}
	for _, tc := range cases {
		annot, err := parseDomainAnnot(tc.spec, fn)
		if tc.wantErr == "" {
			if err != "" {
				t.Errorf("parseDomainAnnot(%q) unexpectedly failed: %s", tc.spec, err)
			} else if annot == nil {
				t.Errorf("parseDomainAnnot(%q) returned nil annotation", tc.spec)
			}
			continue
		}
		if err == "" || !strings.Contains(err, tc.wantErr) {
			t.Errorf("parseDomainAnnot(%q) error = %q, want containing %q", tc.spec, err, tc.wantErr)
		}
	}
}

func TestParseDomainAnnotNoResults(t *testing.T) {
	u64 := types.Typ[types.Uint64]
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(0, nil, "a", u64)), nil, false)
	fn := types.NewFunc(0, nil, "InPlace", sig)
	if _, err := parseDomainAnnot("a:<q -> ret:<q", fn); !strings.Contains(err, "no results") {
		t.Errorf("ret on a result-less function: error %q, want 'no results'", err)
	}
	if annot, err := parseDomainAnnot("a:<2q -> a:<q", fn); err != "" || annot.outputs["a"] != domQ {
		t.Errorf("in-place output on result-less function rejected: %v / %s", annot, err)
	}
}

func TestDomainLattice(t *testing.T) {
	if widenSum(domQ, domQ) != dom2Q {
		t.Error("q+q must widen to <2q")
	}
	if widenSum(dom2Q, dom2Q) != dom4Q {
		t.Error("2q+2q must widen to <4q")
	}
	if widenSum(domQ, dom2Q) != dom4Q {
		t.Error("q+2q (bound 3q) must widen to <4q")
	}
	if widenSum(dom4Q, domQ) != domAny {
		t.Error("4q+q must widen to any")
	}
	if widenSum(domAny, domQ) != domAny {
		t.Error("any absorbs")
	}
	for _, d := range []domain{domQ, dom2Q, dom4Q, domAny} {
		got, ok := parseDomain(d.String())
		if !ok || got != d {
			t.Errorf("parseDomain(%q) = %v, %v; want round-trip", d.String(), got, ok)
		}
	}
}

// TestModDomainMalformedDirective pins that a syntactically broken
// lint:domain on a real declaration surfaces as a finding.
func TestModDomainMalformedDirective(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module tmp\n\ngo 1.23\n",
		"k/k.go": `package k

// Widen is misannotated: the domain grammar has no <8q.
//
//lint:domain a:<8q -> ret:<q
func Widen(a uint64) uint64 { return a }
`,
	})
	fs := Run(prog, []Pass{&ModDomain{}})
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "malformed lint:domain") {
		t.Fatalf("findings = %v, want one malformed-directive finding", fs)
	}
}
