package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCryptoRandFixture(t *testing.T) {
	checkPassAgainstMarkers(t, &CryptoRand{})
}

// The raw pass (before the allowlist) must flag both the lwe violation
// and the bfv import that carries an explained allow — proving the
// suppression happens in the pipeline, not in the pass.
func TestCryptoRandRawFindings(t *testing.T) {
	prog := fixture(t)
	files := map[string]bool{}
	for _, f := range (&CryptoRand{}).Run(prog) {
		files[filepath.Base(f.Pos.Filename)] = true
		if !strings.Contains(f.Message, "math/rand") {
			t.Errorf("finding does not name the import: %s", f)
		}
	}
	for _, want := range []string{"lwe.go", "bfv.go"} {
		if !files[want] {
			t.Errorf("raw pass did not flag %s", want)
		}
	}
	if files["qnn.go"] {
		t.Error("training-side qnn package flagged: scope leak")
	}
	if files["noise.go"] {
		t.Error("crypto/rand flagged: only math/rand is forbidden")
	}
}
