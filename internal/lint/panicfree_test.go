package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// fixturePanicFree targets the fixture's wire package instead of the
// production entry points.
func fixturePanicFree() *PanicFreeWire {
	return &PanicFreeWire{Entries: []WireEntry{
		{Pkg: "wire", File: "wire.go", Prefixes: []string{"Read", "read"}},
		{Pkg: "relaydemo", File: "relaydemo.go", Prefixes: []string{"handle", "dispatch", "backend"}},
	}}
}

func TestPanicFreeWireFixture(t *testing.T) {
	prog := fixture(t)
	p := fixturePanicFree()
	got := map[string]bool{}
	for _, f := range Run(prog, []Pass{p}) {
		if f.Pass != p.Name() {
			continue
		}
		got[keyOf(prog, f)] = true
	}
	want := wantMarkers(prog, p.Name())
	if len(want) == 0 {
		t.Fatal("fixture has no panicfree-wire markers")
	}
	for key := range want {
		if !got[key] {
			t.Errorf("reachable panic at %s not flagged", key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("unexpected finding at %s (unreachable or error-returning form flagged)", key)
		}
	}
}

func keyOf(prog *Program, f Finding) string {
	return fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
}

// The transitive finding must report its call path so the reader can see
// how the wire boundary reaches the panic.
func TestPanicFreeWireReportsCallPath(t *testing.T) {
	prog := fixture(t)
	var transitive, cross bool
	for _, f := range fixturePanicFree().Run(prog) {
		if strings.Contains(f.Message, "wire.ReadTransitive") && strings.Contains(f.Message, "→") {
			transitive = true
		}
		if strings.Contains(f.Message, "wire.ReadCross") && strings.Contains(f.Message, "ring.Explode") {
			cross = true
		}
	}
	if !transitive {
		t.Error("transitive panic finding lacks its call path")
	}
	if !cross {
		t.Error("cross-package panic finding lacks its call path")
	}
}

// The production entry points must exist: a typo in a file name would
// silently disable the pass.
func TestPanicFreeWireProductionEntriesResolve(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range NewPanicFreeWire().Entries {
		pkg := prog.ByPath[prog.ModulePath+"/"+e.Pkg]
		if pkg == nil {
			t.Errorf("entry package %s not in module", e.Pkg)
			continue
		}
		found := false
		for _, file := range pkg.Files {
			pos := prog.Fset.Position(file.Package)
			if strings.HasSuffix(pos.Filename, "/"+e.File) {
				found = true
			}
		}
		if !found {
			t.Errorf("entry file %s/%s not in module", e.Pkg, e.File)
		}
	}
}
