package lint

import (
	"path/filepath"
	"sort"
	"testing"
)

// TestCollectAnnotations pins the -allows audit inventory: every
// directive kind is listed with its consuming pass and justification,
// in deterministic (file, line, kind) order.
func TestCollectAnnotations(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": `package a

//lint:noalloc
func Kernel(dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
}

//lint:domain a:<q -> out:<2q
func Lazy(a uint64) uint64 { return a + a }

func Grow(buf []uint64, n int) []uint64 {
	//lint:prealloc arena refill amortized over session
	return append(buf[:0], make([]uint64, n)...)
}

func Suppress() {
	_ = make([]int, 1) //lint:allow modguard demo reason here
}

func Declass(x uint64) uint64 {
	//lint:declassify provably public length
	return x
}
`,
	})
	annots := CollectAnnotations(prog)
	if len(annots) != 5 {
		t.Fatalf("want 5 annotations, got %d: %+v", len(annots), annots)
	}
	if !sort.SliceIsSorted(annots, func(i, j int) bool {
		a, b := annots[i], annots[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Kind < b.Kind
	}) {
		t.Error("annotations not sorted by (file, line, kind)")
	}
	byKind := map[string]Annotation{}
	for _, a := range annots {
		byKind[a.Kind] = a
	}
	checks := []struct{ kind, pass, detail string }{
		{"noalloc", "noalloc", ""},
		{"domain", "moddomain", "a:<q -> out:<2q"},
		{"prealloc", "noalloc", "arena refill amortized over session"},
		{"allow", "modguard", "demo reason here"},
		{"declassify", "secrettaint", "provably public length"},
	}
	for _, c := range checks {
		a, ok := byKind[c.kind]
		if !ok {
			t.Errorf("no %s annotation collected", c.kind)
			continue
		}
		if a.Pass != c.pass || a.Detail != c.detail {
			t.Errorf("%s: got pass=%q detail=%q, want pass=%q detail=%q",
				c.kind, a.Pass, a.Detail, c.pass, c.detail)
		}
	}
}

// TestAnnotationInventoryCoversRealModule sanity-checks the audit over
// the production tree: the three long-standing scratchalias allows must
// be present and justified.
func TestAnnotationInventoryCoversRealModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	annots := CollectAnnotations(prog)
	scratch := 0
	for _, a := range annots {
		if a.Kind == "allow" && a.Pass == "scratchalias" {
			scratch++
			if a.Detail == "" {
				t.Errorf("unjustified scratchalias allow at %s:%d", a.Pos.Filename, a.Pos.Line)
			}
		}
	}
	if scratch != 3 {
		t.Errorf("want the 3 audited scratchalias allows, got %d", scratch)
	}
}
