package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the shared concurrency layer under the lockorder and
// blockhold passes (goleak reuses the channel-identity half): mutex and
// channel identity resolution against go/types objects, a forward
// may-held dataflow over the CFG of cfg.go, and per-function summaries
// in the bottom-up style of secrettaint/noalloc.
//
// Identity is the *types.Var behind the lock or channel expression: a
// struct field (`b.mu` → field mu of Batcher — every instance of the
// type shares one identity, the right granularity for an order graph),
// a package-level var, or a local. Expressions that do not resolve to a
// variable (a lock returned from a call, an element of a slice) have no
// identity and are ignored — a documented blind spot, not an error.
//
// The held-set analysis is a may-analysis: a lock held on some path
// into a block counts as held in it (union at joins), the conservative
// direction for deadlock and hold-across-blocking reporting. Within a
// block, Lock/RLock adds and Unlock/RUnlock removes in source order;
// TryLock variants never block and never extend the held set, so they
// contribute no deadlock edges. A deferred unlock runs at function
// exit, so `defer mu.Unlock()` leaves the lock held for the remainder
// of the body — exactly the region a blocking operation must not enter
// — while the summary exports no held state to callers at all: a
// function that releases everything it acquires (deferred or not) is
// opaque to its callers' held sets.

// lockKind classifies one sync.Mutex / sync.RWMutex method call.
type lockKind int

const (
	lockAcquire lockKind = iota // Lock, RLock
	lockRelease                 // Unlock, RUnlock
	lockTry                     // TryLock, TryRLock: non-blocking, untracked
)

// concAcquire is one direct Lock/RLock site with the held set at it.
type concAcquire struct {
	mu    *types.Var
	rlock bool
	pos   token.Pos
	held  []*types.Var
}

// concCall is one static module call edge with the held set at it.
type concCall struct {
	callee *types.Func
	pos    token.Pos
	held   []*types.Var
}

// blockSite is one potentially-blocking operation with the held set at
// it. Sites carrying a //lint:holdok or //lint:allow blockhold are
// dropped while the summary is built, so a justified hold never poisons
// callers.
type blockSite struct {
	pos  token.Pos
	what string
	held []*types.Var
}

// concSummary is the per-function concurrency summary.
type concSummary struct {
	acquires []concAcquire
	calls    []concCall
	blocks   []blockSite
}

// concFn is one analyzable body: a declared function (obj non-nil) or a
// function literal (obj nil — literals are atoms to their enclosing
// CFG and run with an empty held set of their own).
type concFn struct {
	obj  *types.Func
	name string
	body *ast.BlockStmt
	pkg  *Package
}

// collectConcFns returns every function body in the module — declared
// functions first, then the function literals nested in each — in
// deterministic (package, file, position) order, plus the decl index
// needed to chase call edges.
func collectConcFns(prog *Program) ([]*concFn, map[*types.Func]*concFn) {
	var fns []*concFn
	decls := map[*types.Func]*concFn{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &concFn{obj: obj, name: shortName(obj), body: fd.Body, pkg: pkg}
				fns = append(fns, fn)
				decls[obj] = fn
				name := fn.name
				p := pkg
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						fns = append(fns, &concFn{name: name + " (func literal)", body: lit.Body, pkg: p})
					}
					return true
				})
			}
		}
	}
	return fns, decls
}

// lockIdent resolves a mutex or channel expression to its identity
// variable and a stable display name ("(Batcher).mu", "serve.global",
// "local done"). nil when the expression has no variable identity.
func lockIdent(pkg *Package, e ast.Expr) (*types.Var, string) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	switch x := e.(type) {
	case *ast.Ident:
		v, ok := pkg.Info.Uses[x].(*types.Var)
		if !ok {
			v, ok = pkg.Info.Defs[x].(*types.Var)
		}
		if ok {
			return v, identDisplay(v)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v, fieldDisplay(sel.Recv(), v)
			}
		}
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return v, identDisplay(v)
		}
	}
	return nil, ""
}

// identDisplay names a package-level or local variable.
func identDisplay(v *types.Var) string {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		p := v.Pkg().Path()
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p + "." + v.Name()
	}
	return v.Name()
}

// fieldDisplay names a struct field lock as "(Type).field".
func fieldDisplay(recv types.Type, v *types.Var) string {
	t := recv
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return "(" + named.Obj().Name() + ")." + v.Name()
	}
	return v.Name()
}

// mutexMethod classifies call as a sync.Mutex/RWMutex method and
// resolves the lock identity. ok is false for anything else (including
// sync.Locker interface calls, whose target lock is unknowable).
func mutexMethod(pkg *Package, call *ast.CallExpr) (kind lockKind, rlock bool, mu *types.Var, disp string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return 0, false, nil, "", false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0, false, nil, "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return 0, false, nil, "", false
	}
	recv := sig.Recv().Type()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return 0, false, nil, "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return 0, false, nil, "", false
	}
	switch fn.Name() {
	case "Lock":
		kind = lockAcquire
	case "RLock":
		kind, rlock = lockAcquire, true
	case "Unlock", "RUnlock":
		kind = lockRelease
	case "TryLock", "TryRLock":
		kind = lockTry
	default: // RLocker
		return 0, false, nil, "", false
	}
	mu, disp = lockIdent(pkg, sel.X)
	return kind, rlock, mu, disp, true
}

// blockingCall classifies a call to callee (by object — interface
// methods included, so net.Conn.Write and io.Reader.Read are caught
// through their interfaces) as a potentially-blocking operation.
// Deliberately scoped to the classes the serving tiers actually hit:
// sleeps, WaitGroup/Cond waits, fsync, net/io/bufio reads and writes,
// HTTP round-trips (the JSON-RPC transport), and streaming JSON codecs.
// Calls through plain function values stay a documented blind spot.
func blockingCall(callee *types.Func) (string, bool) {
	pkg := callee.Pkg()
	if pkg == nil {
		return "", false
	}
	path, name := pkg.Path(), callee.Name()
	recvName := ""
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recvName = named.Obj().Name()
		}
	}
	switch path {
	case "time":
		if name == "Sleep" {
			return "time.Sleep blocks", true
		}
	case "sync":
		if name == "Wait" && (recvName == "WaitGroup" || recvName == "Cond") {
			return "(sync." + recvName + ").Wait blocks", true
		}
	case "os":
		if recvName == "File" && name == "Sync" {
			return "(os.File).Sync (fsync) blocks on storage", true
		}
	case "io":
		switch name {
		case "ReadFull", "ReadAtLeast", "ReadAll", "Copy", "CopyN", "CopyBuffer", "WriteString",
			"Read", "Write": // the last two: io.Reader/io.Writer interface methods
			return "io." + name + " blocks on the underlying stream", true
		}
	case "net":
		switch name {
		case "Read", "Write", "Accept", "Dial", "DialTimeout", "Listen":
			return "net." + name + " blocks on the network", true
		}
	case "bufio":
		if recvName == "Reader" || recvName == "Writer" {
			switch name {
			case "Read", "ReadByte", "ReadBytes", "ReadString", "ReadSlice", "ReadLine",
				"Peek", "Discard", "Write", "WriteByte", "WriteString", "Flush":
				return "(bufio." + recvName + ")." + name + " blocks on the underlying stream", true
			}
		}
	case "net/http":
		switch name {
		case "Get", "Post", "PostForm", "Head", "Do":
			return "net/http round-trip (" + name + ") blocks", true
		}
	case "encoding/json":
		if (recvName == "Encoder" && name == "Encode") || (recvName == "Decoder" && name == "Decode") {
			return "(json." + recvName + ")." + name + " blocks on its stream", true
		}
	}
	return "", false
}

// collectHoldok parses every //lint:holdok directive (blockhold's
// escape hatch for justified short critical sections). The map is
// filename → directive lines; a directive covers an operation on its
// own line or the line below. Directives with no reason are findings.
func collectHoldok(prog *Program) (map[string]map[int]bool, []Finding) {
	lines := map[string]map[int]bool{}
	var bad []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "lint:holdok")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					if strings.TrimSpace(rest) == "" {
						bad = append(bad, Finding{Pass: "blockhold", Pos: pos,
							Message: "lint:holdok has no reason; unexplained hold-across-blocking exemptions are forbidden"})
						continue
					}
					byLine := lines[pos.Filename]
					if byLine == nil {
						byLine = map[int]bool{}
						lines[pos.Filename] = byLine
					}
					byLine[pos.Line] = true
				}
			}
		}
	}
	return lines, bad
}

// concBuilder accumulates one function's summary.
type concBuilder struct {
	prog   *Program
	pkg    *Package
	allows map[string]map[int][]allow
	holdok map[string]map[int]bool
	disp   map[*types.Var]string
	sum    *concSummary

	selectOf   map[ast.Node]*ast.SelectStmt // comm statement → its select
	selDefault map[*ast.SelectStmt]bool     // select has a default clause
	rangeChan  map[ast.Expr]bool            // X operands of range-over-channel
	flaggedSel map[*ast.SelectStmt]bool     // one block site per select
}

// buildConcSummary runs the held-set dataflow over body and returns its
// summary. disp accumulates display names for every lock identity seen.
func buildConcSummary(prog *Program, pkg *Package, body *ast.BlockStmt,
	allows map[string]map[int][]allow, holdok map[string]map[int]bool,
	disp map[*types.Var]string) *concSummary {

	b := &concBuilder{prog: prog, pkg: pkg, allows: allows, holdok: holdok, disp: disp,
		sum:        &concSummary{},
		selectOf:   map[ast.Node]*ast.SelectStmt{},
		selDefault: map[*ast.SelectStmt]bool{},
		rangeChan:  map[ast.Expr]bool{},
		flaggedSel: map[*ast.SelectStmt]bool{},
	}
	b.prewalk(body)

	cfg := BuildCFG(body)
	entry := b.heldFixpoint(cfg)

	for _, blk := range cfg.Blocks {
		held := copyHeld(entry[blk])
		for _, n := range blk.Nodes {
			b.walkNode(n, held, true)
		}
	}
	return b.sum
}

// prewalk indexes the select and range-over-channel structure the flat
// block scan cannot see: which comm statements belong to which select,
// whether a select has a default, and which range operands are
// channels. Function literals are deliberately included — harmless for
// this body (their comms never appear in its blocks) and their own
// builder call reuses nothing.
func (b *concBuilder) prewalk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					b.selDefault[st] = true
					continue
				}
				b.selectOf[cc.Comm] = st
			}
		case *ast.RangeStmt:
			if tv, ok := b.pkg.Info.Types[st.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					b.rangeChan[st.X] = true
				}
			}
		}
		return true
	})
}

// heldFixpoint computes the may-held set at entry to every block.
func (b *concBuilder) heldFixpoint(cfg *CFG) map[*Block]map[*types.Var]bool {
	entry := map[*Block]map[*types.Var]bool{}
	for _, blk := range cfg.Blocks {
		entry[blk] = map[*types.Var]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range cfg.Blocks {
			held := copyHeld(entry[blk])
			for _, n := range blk.Nodes {
				b.walkNode(n, held, false)
			}
			for _, s := range blk.Succs {
				for v := range held {
					if !entry[s][v] {
						entry[s][v] = true
						changed = true
					}
				}
			}
		}
	}
	return entry
}

func copyHeld(m map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(m))
	for v := range m {
		out[v] = true
	}
	return out
}

// heldSnapshot freezes the current held set, sorted by display name for
// deterministic reporting.
func (b *concBuilder) heldSnapshot(held map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(held))
	for v := range held {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return b.disp[out[i]] < b.disp[out[j]] })
	return out
}

// holdokAt reports whether a //lint:holdok directive covers pos (the
// directive's own line or the line above the operation).
func holdokAt(fset *token.FileSet, holdok map[string]map[int]bool, pos token.Pos) bool {
	p := fset.Position(pos)
	byLine := holdok[p.Filename]
	return byLine != nil && (byLine[p.Line] || byLine[p.Line-1])
}

// suppressedSite reports whether a blockhold site at pos carries a
// holdok directive or an ordinary allow — folded into the summary so a
// justified site never poisons callers.
func (b *concBuilder) suppressedSite(pos token.Pos) bool {
	if holdokAt(b.prog.Fset, b.holdok, pos) {
		return true
	}
	return suppressed(b.allows, Finding{Pass: "blockhold", Pos: b.prog.Fset.Position(pos)})
}

func (b *concBuilder) site(pos token.Pos, what string, held map[*types.Var]bool) {
	if b.suppressedSite(pos) {
		return
	}
	b.sum.blocks = append(b.sum.blocks, blockSite{pos: pos, what: what, held: b.heldSnapshot(held)})
}

// walkNode applies one block node to the held set in source order,
// recording acquire/call/block sites when emit is set. Function
// literals are atoms; deferred calls run at exit, so a deferred unlock
// does not release the lock mid-body and other deferred calls are
// exempt from blocking classification (the teardown path runs after
// the critical section's own operations).
func (b *concBuilder) walkNode(n ast.Node, held map[*types.Var]bool, emit bool) {
	if expr, ok := n.(ast.Expr); ok && b.rangeChan[expr] {
		if emit {
			b.site(n.Pos(), "ranging over a channel blocks between elements", held)
		}
		return
	}
	if stmt, ok := n.(ast.Stmt); ok {
		if sel := b.selectOf[stmt]; sel != nil {
			if emit && !b.selDefault[sel] && !b.flaggedSel[sel] {
				b.flaggedSel[sel] = true
				b.site(sel.Pos(), "select without a default clause blocks", held)
			}
			return
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			if emit {
				b.site(e.Arrow, "channel send may block", held)
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW && emit {
				b.site(e.OpPos, "channel receive may block", held)
			}
		case *ast.CallExpr:
			b.handleCall(e, held, emit)
			return true
		}
		return true
	})
}

func (b *concBuilder) handleCall(call *ast.CallExpr, held map[*types.Var]bool, emit bool) {
	if kind, rlock, mu, disp, ok := mutexMethod(b.pkg, call); ok {
		if mu == nil {
			return // unresolvable lock expression: documented blind spot
		}
		switch kind {
		case lockAcquire:
			if emit {
				b.disp[mu] = disp
				b.sum.acquires = append(b.sum.acquires, concAcquire{
					mu: mu, rlock: rlock, pos: call.Pos(), held: b.heldSnapshot(held)})
			}
			held[mu] = true
			b.disp[mu] = disp
		case lockRelease:
			delete(held, mu)
		}
		return
	}
	callee := staticCalleeFunc(b.pkg, call)
	if callee == nil {
		return // function-value call: documented blind spot
	}
	if what, blocking := blockingCall(callee); blocking {
		if emit {
			b.site(call.Pos(), what, held)
		}
		return
	}
	if calleePkg := callee.Pkg(); calleePkg != nil && moduleMember(b.prog, calleePkg) && emit {
		// Call edges are never dropped by holdok here: lockorder chases
		// acquisitions through them, and a blocking justification must
		// not hide a deadlock edge. blockhold applies holdok to its
		// call-edge findings at emission instead.
		b.sum.calls = append(b.sum.calls, concCall{callee: callee, pos: call.Pos(), held: b.heldSnapshot(held)})
	}
}

// chanFacts is the module-wide channel inventory goleak and the channel
// proof rules consult: which channel identities are ever closed, and
// which are created with a capacity (a send to a buffered channel under
// an admission protocol is treated as non-wedging).
type chanFacts struct {
	closed   map[*types.Var]bool
	buffered map[*types.Var]bool
}

// collectChanFacts scans every file (function literals included) for
// close(ch) calls and buffered make(chan T, n) assignments — plain
// assignments, declarations, and struct-literal field values. A
// non-constant capacity expression counts as buffered: the repo's
// queues size their channels from a config value, and a deliberately
// zero capacity spelled through a variable is outside the model.
func collectChanFacts(prog *Program) *chanFacts {
	f := &chanFacts{closed: map[*types.Var]bool{}, buffered: map[*types.Var]bool{}}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			p := pkg
			ast.Inspect(file, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.CallExpr:
					if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) == 1 {
						if bi, ok := p.Info.Uses[id].(*types.Builtin); ok && bi.Name() == "close" {
							if v, _ := lockIdent(p, e.Args[0]); v != nil {
								f.closed[v] = true
							}
						}
					}
				case *ast.AssignStmt:
					for i, rhs := range e.Rhs {
						if i < len(e.Lhs) && bufferedChanMake(p, rhs) {
							if v, _ := lockIdent(p, e.Lhs[i]); v != nil {
								f.buffered[v] = true
							}
						}
					}
				case *ast.ValueSpec:
					for i, val := range e.Values {
						if i < len(e.Names) && bufferedChanMake(p, val) {
							if v, ok := p.Info.Defs[e.Names[i]].(*types.Var); ok {
								f.buffered[v] = true
							}
						}
					}
				case *ast.KeyValueExpr:
					if bufferedChanMake(p, e.Value) {
						if key, ok := e.Key.(*ast.Ident); ok {
							if v, ok := p.Info.Uses[key].(*types.Var); ok {
								f.buffered[v] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return f
}

// bufferedChanMake reports whether e is make(chan T, n) with n not
// constant zero.
func bufferedChanMake(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if bi, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || bi.Name() != "make" {
		return false
	}
	tv, ok := pkg.Info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	if capTV, ok := pkg.Info.Types[call.Args[1]]; ok && capTV.Value != nil {
		return capTV.Value.String() != "0"
	}
	return true
}

// displayHeld renders a sorted held set for a finding message.
func displayHeld(disp map[*types.Var]string, held []*types.Var) string {
	names := make([]string, len(held))
	for i, v := range held {
		names[i] = disp[v]
	}
	return strings.Join(names, ", ")
}
