package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// PanicFreeWire walks the static call graph from the wire
// deserialization entry points and flags every reachable panic call. The
// north-star deployment decrypts attacker-supplied bytes; a malformed
// ciphertext must surface as a returned error, never as a crash that an
// attacker can trigger at will.
//
// Entry points are the functions named Read*/read* declared in the wire
// files (bfv/serialize.go, lwe/serialize.go, core/wire.go,
// core/evalkeys.go), the Read*/Decode* frame and payload decoders of
// the serving protocol (serve/proto.go), and the client's reply parsing
// (serve/client/client.go readLoop and any decoder). The server's
// dispatch handlers are deliberately not entry points: every attacker
// byte they touch flows through the proto.go/evalkeys.go decoders first
// (which ARE walked), and the engine construction behind Registry.Open
// panics only on parameters those decoders have already validated — the
// EvalKeyCodec split from PR 4 exists precisely to keep construction
// out of the attacker-bytes walk. The walk is
// static and module-internal: calls through function values, interface
// methods, and the standard library are treated as boundaries. That
// under-approximates reachability, so keep wire code first-order — which
// it is, by construction.
type PanicFreeWire struct {
	// Entries configures the roots; tests override it to point at
	// fixture files.
	Entries []WireEntry
}

// WireEntry selects entry-point functions: those declared in File inside
// the package whose module-relative path is Pkg, with a name starting
// with one of Prefixes.
type WireEntry struct {
	Pkg      string // module-relative package path, e.g. "internal/bfv"
	File     string // basename, e.g. "serialize.go"
	Prefixes []string
}

// NewPanicFreeWire returns the pass with the repo's production entry
// points.
func NewPanicFreeWire() *PanicFreeWire {
	rw := []string{"Read", "read"}
	return &PanicFreeWire{Entries: []WireEntry{
		{Pkg: "internal/bfv", File: "serialize.go", Prefixes: rw},
		{Pkg: "internal/lwe", File: "serialize.go", Prefixes: rw},
		{Pkg: "internal/core", File: "wire.go", Prefixes: rw},
		{Pkg: "internal/core", File: "evalkeys.go", Prefixes: rw},
		{Pkg: "internal/serve", File: "proto.go", Prefixes: []string{"Read", "read", "Decode"}},
		{Pkg: "internal/serve/client", File: "client.go", Prefixes: []string{"Read", "read", "Decode", "decode"}},
		// The durable tier decodes attacker-controlled bytes after a
		// crash: the WAL replay path and the segment open/read path.
		{Pkg: "internal/store", File: "wal.go", Prefixes: []string{"replay", "read"}},
		{Pkg: "internal/store", File: "segment.go", Prefixes: []string{"open", "read"}},
		// The cluster router relays frames between untrusted clients and
		// backend nodes: both socket directions are wire entry points, as
		// is the stats aggregator's per-node fetch.
		{Pkg: "internal/cluster", File: "router.go", Prefixes: []string{"handle", "dispatch", "backend", "relay"}},
		{Pkg: "internal/cluster", File: "stats.go", Prefixes: []string{"fetch", "Gather"}},
	}}
}

// Name implements Pass.
func (*PanicFreeWire) Name() string { return "panicfree-wire" }

// Doc implements Pass.
func (*PanicFreeWire) Doc() string {
	return "panic calls reachable from the wire deserialization entry points"
}

// fnNode is the per-function call-graph node.
type fnNode struct {
	fn      *types.Func
	callees []*types.Func
	panics  []token.Pos
}

// Run implements Pass.
func (p *PanicFreeWire) Run(prog *Program) []Finding {
	graph := map[*types.Func]*fnNode{}
	var entries []*types.Func
	for _, pkg := range prog.Packages {
		rel := relPkgPath(prog, pkg)
		for _, file := range pkg.Files {
			base := filepath.Base(prog.Fset.Position(file.Package).Filename)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := buildNode(pkg, obj, fd)
				graph[obj] = node
				if p.isEntry(rel, base, fd.Name.Name) {
					entries = append(entries, obj)
				}
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].FullName() < entries[j].FullName() })

	// BFS with parent pointers for path reporting.
	parent := map[*types.Func]*types.Func{}
	seen := map[*types.Func]bool{}
	queue := append([]*types.Func{}, entries...)
	for _, e := range entries {
		seen[e] = true
	}
	var findings []Finding
	reported := map[token.Pos]bool{}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := graph[fn]
		if node == nil {
			continue
		}
		for _, pos := range node.panics {
			if reported[pos] {
				continue
			}
			reported[pos] = true
			findings = append(findings, Finding{
				Pass: "panicfree-wire",
				Pos:  prog.Fset.Position(pos),
				Message: fmt.Sprintf("panic reachable from wire deserialization (%s): return a wrapped error instead",
					callPath(parent, fn)),
			})
		}
		for _, callee := range node.callees {
			if !seen[callee] {
				seen[callee] = true
				parent[callee] = fn
				queue = append(queue, callee)
			}
		}
	}
	return findings
}

func (p *PanicFreeWire) isEntry(relPkg, file, name string) bool {
	for _, e := range p.Entries {
		if e.Pkg != relPkg || e.File != file {
			continue
		}
		for _, pre := range e.Prefixes {
			if strings.HasPrefix(name, pre) {
				return true
			}
		}
	}
	return false
}

// buildNode records fn's statically resolvable callees and its direct
// panic sites. Function literals nested in the body are attributed to
// the enclosing declaration: the wire readers invoke their helpers
// synchronously, so this over-approximates in the safe direction.
func buildNode(pkg *Package, obj *types.Func, fd *ast.FuncDecl) *fnNode {
	node := &fnNode{fn: obj}
	seen := map[*types.Func]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			switch o := pkg.Info.Uses[fun].(type) {
			case *types.Builtin:
				if o.Name() == "panic" {
					node.panics = append(node.panics, call.Pos())
				}
			case *types.Func:
				if !seen[o] {
					seen[o] = true
					node.callees = append(node.callees, o)
				}
			}
		case *ast.SelectorExpr:
			if o, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok && !seen[o] {
				seen[o] = true
				node.callees = append(node.callees, o)
			}
		}
		return true
	})
	return node
}

// callPath renders entry → … → fn using the BFS parent chain.
func callPath(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var chain []string
	for f := fn; f != nil; f = parent[f] {
		chain = append(chain, shortName(f))
		if _, ok := parent[f]; !ok {
			break
		}
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " → ")
}

// shortName renders pkg.Func or pkg.(Recv).Method without the module
// prefix noise.
func shortName(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type().String()
		if i := strings.LastIndexAny(t, "./"); i >= 0 {
			t = t[i+1:]
		}
		name = t + "." + name
	}
	if f.Pkg() != nil {
		p := f.Pkg().Path()
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		name = p + "." + name
	}
	return name
}
