package lint

import (
	"fmt"
	"go/types"
	"path/filepath"
)

// BlockHold flags potentially-blocking operations reached while a
// mutex is statically held — the lock-held-across-IO stalls that turn
// one slow peer into whole-server tail latency. Blocking operations
// (conc.go's blockingCall table plus raw channel sends/receives,
// selects without a default clause, and range-over-channel) are
// combined with the per-function may-held dataflow; a site with a
// non-empty held set is a finding, and so is a held call into a module
// function that transitively blocks — resolved bottom-up through
// memoized summaries with a witness chain, in the noalloc style.
//
// A select with a default clause is non-blocking by construction and
// never flagged; a deliberate short critical section is annotated on
// the operation's line (or the line above) with
//
//	//lint:holdok <reason>
//
// and the reason is mandatory — a bare holdok is itself a finding.
// Annotated sites are folded into the summaries, so a justified hold
// inside a callee does not poison its callers. Deferred calls are
// exempt (teardown runs after the critical section), and `defer
// mu.Unlock()` keeps the lock held for the rest of the body — blocking
// there is still flagged — while exporting no held state to callers.
type BlockHold struct{}

// Name implements Pass.
func (*BlockHold) Name() string { return "blockhold" }

// Doc implements Pass.
func (*BlockHold) Doc() string {
	return "no blocking operation (channel op, net/io read-write, fsync, sleep, Wait, RPC) while a mutex is held (interprocedural, CFG-based); justify with //lint:holdok <reason>"
}

// blockholdState memoizes the transitive does-it-block query.
type blockholdState struct {
	prog      *Program
	summaries map[*types.Func]*concSummary
	memo      map[*types.Func]int8 // 0 unvisited, 1 in progress, 2 clean, 3 blocks
	witness   map[*types.Func]string
}

// Run implements Pass.
func (p *BlockHold) Run(prog *Program) []Finding {
	allows, _ := collectAllows(prog)
	holdok, findings := collectHoldok(prog)
	fns, _ := collectConcFns(prog)

	disp := map[*types.Var]string{}
	st := &blockholdState{
		prog:      prog,
		summaries: map[*types.Func]*concSummary{},
		memo:      map[*types.Func]int8{},
		witness:   map[*types.Func]string{},
	}
	sums := make([]*concSummary, len(fns))
	for i, fn := range fns {
		sums[i] = buildConcSummary(prog, fn.pkg, fn.body, allows, holdok, disp)
		if fn.obj != nil {
			st.summaries[fn.obj] = sums[i]
		}
	}

	for i, fn := range fns {
		sum := sums[i]
		for _, s := range sum.blocks {
			if len(s.held) == 0 {
				continue
			}
			findings = append(findings, Finding{Pass: "blockhold", Pos: prog.Fset.Position(s.pos),
				Message: fmt.Sprintf("%s: %s while holding %s (justify a deliberate short critical section with //lint:holdok <reason>)",
					fn.name, s.what, displayHeld(disp, s.held))})
		}
		for _, c := range sum.calls {
			if len(c.held) == 0 || holdokAt(prog.Fset, holdok, c.pos) {
				continue
			}
			if w, blocks := st.fnBlocks(c.callee); blocks {
				findings = append(findings, Finding{Pass: "blockhold", Pos: prog.Fset.Position(c.pos),
					Message: fmt.Sprintf("%s: call blocks while holding %s: %s (justify with //lint:holdok <reason>)",
						fn.name, displayHeld(disp, c.held), w)})
			}
		}
	}
	return findings
}

// fnBlocks reports whether fn (or anything it transitively calls
// through static module calls) can block, with a witness chain.
// In-progress cycle members answer clean, as in noalloc's allocates.
func (st *blockholdState) fnBlocks(fn *types.Func) (string, bool) {
	switch st.memo[fn] {
	case 1, 2:
		return "", false
	case 3:
		return st.witness[fn], true
	}
	sum := st.summaries[fn]
	if sum == nil {
		// No analyzable body in the module; stdlib blockers are already
		// classified by blockingCall, so nothing to prove here.
		st.memo[fn] = 2
		return "", false
	}
	st.memo[fn] = 1
	if len(sum.blocks) > 0 {
		s := sum.blocks[0]
		p := st.prog.Fset.Position(s.pos)
		st.witness[fn] = fmt.Sprintf("%s: %s at %s:%d", shortName(fn), s.what, filepath.Base(p.Filename), p.Line)
		st.memo[fn] = 3
		return st.witness[fn], true
	}
	for _, c := range sum.calls {
		if w, blocks := st.fnBlocks(c.callee); blocks {
			st.witness[fn] = shortName(fn) + " → " + w
			st.memo[fn] = 3
			return st.witness[fn], true
		}
	}
	st.memo[fn] = 2
	return "", false
}
