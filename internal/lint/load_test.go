package lint

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadTagged loads the tagged fixture module: build-tag-guarded files, a
// platform-suffixed file and vendored/testdata trees that are not even
// valid Go, and a generated crypto file carrying a would-be finding.
func loadTagged(t *testing.T) *Program {
	t.Helper()
	prog, err := LoadModule(filepath.Join("testdata", "tagged"))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// snapshotPackages renders the loaded package/file structure for
// determinism comparisons.
func snapshotPackages(prog *Program) []string {
	var out []string
	for _, pkg := range prog.Packages {
		var files []string
		for _, f := range pkg.Files {
			files = append(files, filepath.Base(prog.Fset.Position(f.Package).Filename))
		}
		sort.Strings(files)
		out = append(out, pkg.PkgPath+": "+strings.Join(files, ","))
	}
	return out
}

func TestLoadTaggedModule(t *testing.T) {
	prog := loadTagged(t)

	pkg := prog.ByPath["tagged/pkg"]
	if pkg == nil {
		t.Fatal("tagged/pkg not loaded")
	}
	files := map[string]bool{}
	for _, f := range pkg.Files {
		files[filepath.Base(prog.Fset.Position(f.Package).Filename)] = true
	}
	if !files["pkg.go"] || !files["negated.go"] {
		t.Errorf("unconstrained and negated-constraint files must load, got %v", files)
	}
	if files["constrained.go"] {
		t.Error("//go:build sometag file must be excluded (all tags evaluate false)")
	}
	if files["old_ignore.go"] {
		t.Error("// +build ignore file must be excluded")
	}
	if files["skip_linux.go"] {
		t.Error("GOOS-suffixed file must be excluded before parsing")
	}

	for path := range prog.ByPath {
		if strings.Contains(path, "vendor") || strings.Contains(path, "testdata") {
			t.Errorf("package %s from a vendored or testdata tree was loaded", path)
		}
	}
}

func TestLoadTaggedDeterministic(t *testing.T) {
	a := snapshotPackages(loadTagged(t))
	prog2, err := LoadModule(filepath.Join("testdata", "tagged"))
	if err != nil {
		t.Fatal(err)
	}
	b := snapshotPackages(prog2)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("two loads disagree:\n%v\nvs\n%v", a, b)
	}
}

// TestGeneratedFindingsFiltered pins the generated-code contract: the
// pass itself still sees the violation (cryptorand flags the math/rand
// import in gen.go), but Run drops findings located in generated files.
func TestGeneratedFindingsFiltered(t *testing.T) {
	prog := loadTagged(t)

	genFile := ""
	for f := range prog.Generated {
		if filepath.Base(f) == "gen.go" {
			genFile = f
		}
	}
	if genFile == "" {
		t.Fatalf("gen.go not marked generated; Generated = %v", prog.Generated)
	}

	raw := (&CryptoRand{}).Run(prog)
	found := false
	for _, f := range raw {
		if f.Pos.Filename == genFile {
			found = true
		}
	}
	if !found {
		t.Fatal("cryptorand did not flag the generated file's math/rand import (the filter would be vacuous)")
	}

	if fs := Run(prog, AllPasses()); len(fs) != 0 {
		t.Fatalf("Run must filter generated-file findings, got %v", fs)
	}
}
