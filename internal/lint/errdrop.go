package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags statement-position calls that silently discard an error
// result in the serving, engine, and durability layers (internal/core,
// internal/serve, internal/cluster, internal/store and their
// subpackages). A dropped error there is a dropped frame, a
// leaked session slot, or a half-written wire message that surfaces
// minutes later as a protocol desync. An intentional discard must be
// spelled `_ = f()` (or carry a //lint:allow errdrop) so the reader can
// see the decision; deferred calls are exempt because `defer c.Close()`
// on the teardown path is the established idiom.
//
// fmt.Print/Printf/Println to stdout are exempt: their error is the
// terminal's problem. Writes to real writers (fmt.Fprintf and friends)
// are not.
type ErrDrop struct{}

// Name implements Pass.
func (*ErrDrop) Name() string { return "errdrop" }

// Doc implements Pass.
func (*ErrDrop) Doc() string {
	return "statement-position calls discarding an error result in internal/core, internal/serve, internal/cluster, and internal/store"
}

// errdropTier reports whether the package at module-relative path rel
// is under the pass's contract: the engine, serving, cluster, and
// durable-store tiers, where a dropped error is a dropped frame, a
// stale route, or a silently-unsynced WAL.
func errdropTier(rel string) bool {
	for _, root := range []string{"internal/core", "internal/serve", "internal/cluster", "internal/store"} {
		if rel == root || strings.HasPrefix(rel, root+"/") {
			return true
		}
	}
	return false
}

// Run implements Pass.
func (p *ErrDrop) Run(prog *Program) []Finding {
	var findings []Finding
	for _, pkg := range prog.Packages {
		rel := relPkgPath(prog, pkg)
		if !errdropTier(rel) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := st.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if p.stdoutPrint(pkg, call) {
					return true
				}
				if pos, ok := p.dropsError(pkg, call); ok {
					findings = append(findings, Finding{
						Pass: "errdrop",
						Pos:  prog.Fset.Position(call.Pos()),
						Message: fmt.Sprintf("call discards its error result (%s): handle it, or write `_ = …` to mark the drop deliberate",
							pos),
					})
				}
				return true
			})
		}
	}
	return findings
}

// dropsError reports whether call returns an error (alone or as the last
// element of a tuple); the string names the discarded shape.
func (p *ErrDrop) dropsError(pkg *Package, call *ast.CallExpr) (string, bool) {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return "", false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errType) {
			return fmt.Sprintf("result %d of %d is an error", t.Len(), t.Len()), true
		}
	default:
		if types.Identical(t, errType) {
			return "the sole result is an error", true
		}
	}
	return "", false
}

// stdoutPrint reports whether call is fmt.Print/Printf/Println.
func (p *ErrDrop) stdoutPrint(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	}
	return false
}
