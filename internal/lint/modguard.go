package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ModGuard flags raw `%`, `/`, and overflow-prone `*` on uint64 operands
// in the packages that carry ring coefficients. Modular arithmetic must
// go through the Barrett/Shoup helpers on ring.Modulus (Add, Sub, Mul,
// Reduce, ReduceWide, MulShoup) or through math/bits wide primitives; a
// raw `%` applies no Barrett precondition checks, and a raw `*` on two
// 61-bit residues overflows uint64 and silently corrupts NTT limbs.
//
// Scope: every non-test file of a package that imports internal/ring,
// plus internal/rns (exact cross-limb arithmetic), excluding
// internal/ring itself — that package *is* the approved helper set.
// Expressions where either operand is a compile-time constant are
// exempt: `x / 2` or `i % 8` is length math, not modular reduction.
type ModGuard struct{}

// Name implements Pass.
func (*ModGuard) Name() string { return "modguard" }

// Doc implements Pass.
func (*ModGuard) Doc() string {
	return "raw %, / and overflow-prone * on ring-coefficient uint64s outside internal/ring's helpers"
}

// Run implements Pass.
func (m *ModGuard) Run(prog *Program) []Finding {
	var findings []Finding
	for _, pkg := range prog.Packages {
		if !m.inScope(prog, pkg) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.BinaryExpr:
					if f, ok := m.checkBinary(prog, pkg, e); ok {
						findings = append(findings, f)
					}
				case *ast.AssignStmt:
					if f, ok := m.checkAssignOp(prog, pkg, e); ok {
						findings = append(findings, f)
					}
				}
				return true
			})
		}
	}
	return findings
}

// inScope reports whether pkg handles ring coefficients.
func (m *ModGuard) inScope(prog *Program, pkg *Package) bool {
	rel := relPkgPath(prog, pkg)
	if rel == "internal/ring" {
		return false // the helper package itself
	}
	if rel == "internal/rns" {
		return true
	}
	for _, p := range moduleImports(pkg, prog.ModulePath) {
		if p == prog.ModulePath+"/internal/ring" {
			return true
		}
	}
	return false
}

var modguardOps = map[token.Token]string{
	token.REM: "%",
	token.QUO: "/",
	token.MUL: "*",
}

func (m *ModGuard) checkBinary(prog *Program, pkg *Package, e *ast.BinaryExpr) (Finding, bool) {
	op, watched := modguardOps[e.Op]
	if !watched {
		return Finding{}, false
	}
	if !m.hotUint64(pkg, e.X) || !m.hotUint64(pkg, e.Y) {
		return Finding{}, false
	}
	return m.finding(prog, e.OpPos, op), true
}

func (m *ModGuard) checkAssignOp(prog *Program, pkg *Package, a *ast.AssignStmt) (Finding, bool) {
	var op string
	switch a.Tok {
	case token.REM_ASSIGN:
		op = "%="
	case token.QUO_ASSIGN:
		op = "/="
	case token.MUL_ASSIGN:
		op = "*="
	default:
		return Finding{}, false
	}
	if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
		return Finding{}, false
	}
	if !m.hotUint64(pkg, a.Lhs[0]) || !m.hotUint64(pkg, a.Rhs[0]) {
		return Finding{}, false
	}
	return m.finding(prog, a.TokPos, op), true
}

// hotUint64 reports whether e is a non-constant expression of underlying
// type uint64 — the shape of a ring coefficient.
func (m *ModGuard) hotUint64(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value != nil {
		return false // unknown or compile-time constant
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint64
}

func (m *ModGuard) finding(prog *Program, pos token.Pos, op string) Finding {
	var hint string
	switch op {
	case "%", "%=":
		hint = "use ring.Modulus.Reduce/ReduceWide (Barrett) instead of raw %"
	case "/", "/=":
		hint = "use bits.Div64 or a ring.Modulus helper instead of raw /"
	default:
		hint = "use ring.Modulus.Mul/MulShoup or bits.Mul64 — a raw * on 61-bit residues overflows uint64"
	}
	return Finding{
		Pass:    "modguard",
		Pos:     prog.Fset.Position(pos),
		Message: fmt.Sprintf("raw %s on uint64 ring-coefficient operands: %s", op, hint),
	}
}
