package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	fixtureOnce sync.Once
	fixtureProg *Program
	fixtureErr  error
)

// fixture loads testdata/fixture once per test binary: the source
// importer resolves the standard library from source, which dominates
// the cost.
func fixture(t *testing.T) *Program {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureProg, fixtureErr = LoadModule(filepath.Join("testdata", "fixture"))
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureProg
}

// wantMarkers collects "// want <pass>" comments from the fixture
// sources, keyed "basename:line" — the line a finding must land on.
func wantMarkers(prog *Program, pass string) map[string]bool {
	want := map[string]bool{}
	marker := "want " + pass
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if text != marker {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					want[fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)] = true
				}
			}
		}
	}
	return want
}

// checkPassAgainstMarkers runs one pass through the full pipeline
// (allowlist applied) and compares its findings position-for-position
// with the fixture's want markers.
func checkPassAgainstMarkers(t *testing.T, p Pass) {
	t.Helper()
	prog := fixture(t)
	got := map[string]bool{}
	for _, f := range Run(prog, []Pass{p}) {
		if f.Pass != p.Name() {
			continue // allowdemo's malformed directives, tested separately
		}
		got[fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)] = true
	}
	want := wantMarkers(prog, p.Name())
	if len(want) == 0 {
		t.Fatalf("fixture has no markers for pass %s", p.Name())
	}
	for key := range want {
		if !got[key] {
			t.Errorf("%s: seeded violation at %s not flagged", p.Name(), key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("%s: unexpected finding at %s (fixed or allowed form flagged)", p.Name(), key)
		}
	}
}

func TestLoadModuleFixture(t *testing.T) {
	prog := fixture(t)
	if prog.ModulePath != "fixture" {
		t.Fatalf("module path %q, want fixture", prog.ModulePath)
	}
	for _, path := range []string{
		"fixture/internal/ring", "fixture/internal/par", "fixture/internal/lwe",
		"fixture/internal/bfv", "fixture/internal/serve", "fixture/internal/core",
		"fixture/modfix", "fixture/parfix", "fixture/wire",
		"fixture/taintdemo", "fixture/scratchdemo", "fixture/lazydemo",
		"fixture/allocdemo", "fixture/lockdemo", "fixture/holddemo",
		"fixture/goleakdemo",
	} {
		pkg := prog.ByPath[path]
		if pkg == nil {
			t.Fatalf("package %s not loaded", path)
		}
		if len(pkg.Files) == 0 || pkg.Types == nil || pkg.Info == nil {
			t.Fatalf("package %s loaded without files or type info", path)
		}
	}
	// Dependency order: ring before its importers.
	seen := map[string]int{}
	for i, pkg := range prog.Packages {
		seen[pkg.PkgPath] = i
	}
	if seen["fixture/internal/ring"] > seen["fixture/modfix"] {
		t.Fatal("packages not in dependency order")
	}
}

func TestAllowlistMalformedDirectives(t *testing.T) {
	prog := fixture(t)
	_, bad := collectAllows(prog)
	wantMsgs := []string{
		"missing pass name",
		`unknown pass "nosuchpass"`,
		"has no reason",
	}
	for _, wantMsg := range wantMsgs {
		found := false
		for _, f := range bad {
			if f.Pass == "allowlist" && strings.Contains(f.Message, wantMsg) &&
				filepath.Base(f.Pos.Filename) == "allowdemo.go" {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no allowlist finding containing %q", wantMsg)
		}
	}
	if len(bad) != len(wantMsgs) {
		t.Errorf("%d malformed-directive findings, want %d: %v", len(bad), len(wantMsgs), bad)
	}
	// Malformed directives must also survive the full pipeline.
	all := Run(prog, nil)
	if len(all) != len(wantMsgs) {
		t.Errorf("Run with no passes returned %d findings, want the %d allowlist ones", len(all), len(wantMsgs))
	}
}

func TestWellFormedAllowsSuppress(t *testing.T) {
	prog := fixture(t)
	allows, _ := collectAllows(prog)
	n := 0
	for _, byLine := range allows {
		for _, as := range byLine {
			n += len(as)
		}
	}
	// modfix and allocdemo have two each; bfv, parfix, scratchdemo
	// (scratchalias), lazydemo (moddomain), internal/core (errdrop), and
	// goleakdemo (goleak) one each.
	if n != 10 {
		t.Fatalf("%d well-formed allow directives, want 10", n)
	}
}

// TestRepoIsClean lints the real module: the production tree must stay
// at zero findings (the same gate CI runs via cmd/athena-lint).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if fs := Run(prog, AllPasses()); len(fs) != 0 {
		for _, f := range fs {
			t.Error(f)
		}
	}
}
