package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ModDomain tracks the Longa–Naehrig lazy-reduction coefficient domains
// that internal/ring's hot kernels trade in. The NTT and the Shoup
// vector kernels deliberately leave intermediates in [0,2q) or [0,4q)
// and defer the final reduction; feeding such an intermediate into a
// routine that assumes fully reduced inputs silently corrupts limbs in a
// way no type signature can express. The domains are declared on the
// kernels themselves:
//
//	//lint:domain a:<2q b:<2q -> ret:<4q
//	func (m Modulus) AddLazy(a, b uint64) uint64 { ... }
//
// Left of `->` are the required input domains (by parameter name); right
// are the produced output domains — `ret` for the first result, or a
// (pointer/slice) parameter name for in-place outputs like `out:<q` or
// the NTT's `p:<q`. Domains form the chain <q ⊏ <2q ⊏ <4q ⊏ any.
//
// The pass abstractly interprets every function body in the module:
// identifiers start at <q (the canonical-by-convention default, so
// unannotated code stays quiet), annotated calls produce their declared
// output domains, `x % m` re-canonicalizes to <q, `+` widens by bound
// arithmetic (q+q→2q, 2q+2q→4q, beyond 4q→any), and `-`/`*` widen to
// any (wraparound/overflow). Branches join pointwise at the maximum;
// loop bodies run twice so loop-carried widening is observed. At every
// call to an annotated kernel, each argument's inferred domain must be
// ⊑ the declared input domain — a <4q value flowing into an `a:<2q`
// parameter is a finding.
//
// The leaf annotations themselves are trusted declarations (their bodies
// are bit-level arithmetic the interpreter cannot bound; the lazy_test.go
// property tests pin them against a fully reduced reference). The pass
// checks their composition. Manual in-line reductions the interpreter
// cannot see get a justified //lint:allow moddomain.
type ModDomain struct{}

// Name implements Pass.
func (*ModDomain) Name() string { return "moddomain" }

// Doc implements Pass.
func (*ModDomain) Doc() string {
	return "lazy-reduction domain mixing: <2q/<4q intermediates flowing into kernels annotated to require reduced inputs"
}

// domain is the abstract coefficient bound.
type domain int

const (
	domQ   domain = iota // fully reduced, [0, q)
	dom2Q                // [0, 2q)
	dom4Q                // [0, 4q)
	domAny               // unbounded / unknown
)

func (d domain) String() string {
	switch d {
	case domQ:
		return "<q"
	case dom2Q:
		return "<2q"
	case dom4Q:
		return "<4q"
	}
	return "any"
}

func parseDomain(s string) (domain, bool) {
	switch s {
	case "<q":
		return domQ, true
	case "<2q":
		return dom2Q, true
	case "<4q":
		return dom4Q, true
	case "any":
		return domAny, true
	}
	return domAny, false
}

func maxDomain(a, b domain) domain {
	if a > b {
		return a
	}
	return b
}

// widenSum is the abstract `+`: the bound of a sum is the sum of bounds.
func widenSum(a, b domain) domain {
	if a == domAny || b == domAny {
		return domAny
	}
	// Bounds in units of q: <q=1, <2q=2, <4q=4.
	units := func(d domain) int { return []int{1, 2, 4}[d] }
	switch s := units(a) + units(b); {
	case s <= 2:
		return dom2Q
	case s <= 4:
		return dom4Q
	default:
		return domAny
	}
}

// domainAnnot is one parsed //lint:domain declaration.
type domainAnnot struct {
	inputs  map[string]domain // by parameter name
	outputs map[string]domain // by parameter name (in-place outputs)
	ret     domain
	hasRet  bool
}

// Run implements Pass.
func (p *ModDomain) Run(prog *Program) []Finding {
	annots, findings := collectDomainAnnots(prog)
	if len(annots) == 0 {
		return findings
	}
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, msg string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		findings = append(findings, Finding{Pass: "moddomain", Pos: prog.Fset.Position(pos), Message: msg})
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				interp := &domainInterp{prog: prog, pkg: pkg, annots: annots, state: map[types.Object]domain{}}
				interp.seedParams(pkg, fd, annots)
				// Two passes: the first stabilizes loop-carried domains,
				// the second reports against the settled state.
				interp.execBlock(fd.Body)
				interp.report = report
				interp.execBlock(fd.Body)
			}
		}
	}
	return findings
}

// collectDomainAnnots parses every lint:domain directive attached to a
// function declaration. Malformed directives become findings.
func collectDomainAnnots(prog *Program) (map[*types.Func]*domainAnnot, []Finding) {
	annots := map[*types.Func]*domainAnnot{}
	var bad []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					spec, ok := strings.CutPrefix(text, "lint:domain")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
					if obj == nil {
						continue
					}
					annot, err := parseDomainAnnot(strings.TrimSpace(spec), obj)
					if err != "" {
						bad = append(bad, Finding{Pass: "moddomain", Pos: pos,
							Message: "malformed lint:domain directive: " + err})
						continue
					}
					annots[obj] = annot
				}
			}
		}
	}
	return annots, bad
}

// parseDomainAnnot parses "a:<q b:<2q -> ret:<4q out:<q" against fn's
// signature; returns an error description on malformed input.
func parseDomainAnnot(spec string, fn *types.Func) (*domainAnnot, string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, "not a function"
	}
	params := map[string]bool{}
	for i := 0; i < sig.Params().Len(); i++ {
		params[sig.Params().At(i).Name()] = true
	}
	annot := &domainAnnot{inputs: map[string]domain{}, outputs: map[string]domain{}}
	side := annot.inputs
	fields := strings.Fields(spec)
	hasArrow := false
	for _, tok := range fields {
		if tok == "->" {
			hasArrow = true
		}
	}
	if !hasArrow {
		return nil, "missing -> separator"
	}
	sawArrow := false
	for _, tok := range fields {
		if tok == "->" {
			if sawArrow {
				return nil, "more than one ->"
			}
			sawArrow = true
			side = annot.outputs
			continue
		}
		name, domStr, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Sprintf("%q is not name:domain", tok)
		}
		d, ok := parseDomain(domStr)
		if !ok {
			return nil, fmt.Sprintf("unknown domain %q (want <q, <2q, <4q, or any)", domStr)
		}
		if name == "ret" {
			if !sawArrow {
				return nil, "ret declared on the input side"
			}
			if sig.Results().Len() == 0 {
				return nil, "ret declared but function has no results"
			}
			annot.ret, annot.hasRet = d, true
			continue
		}
		if !params[name] {
			return nil, fmt.Sprintf("%q names no parameter of %s", name, fn.Name())
		}
		side[name] = d
	}
	return annot, ""
}

// domainInterp is the per-function abstract interpreter.
type domainInterp struct {
	prog   *Program
	pkg    *Package
	annots map[*types.Func]*domainAnnot
	state  map[types.Object]domain
	report func(pos token.Pos, msg string) // nil during the stabilizing pass
}

// seedParams initializes parameter domains: declared inputs of the
// function's own annotation, <q otherwise (the canonical default).
func (in *domainInterp) seedParams(pkg *Package, fd *ast.FuncDecl, annots map[*types.Func]*domainAnnot) {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	var annot *domainAnnot
	if obj != nil {
		annot = annots[obj]
	}
	if annot == nil || fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if d, ok := annot.inputs[name.Name]; ok {
				if v := pkg.Info.Defs[name]; v != nil {
					in.state[v] = d
				}
			}
		}
	}
}

func (in *domainInterp) clone() map[types.Object]domain {
	c := make(map[types.Object]domain, len(in.state))
	for k, v := range in.state {
		c[k] = v
	}
	return c
}

// joinInto merges other into the current state pointwise at the max.
func (in *domainInterp) joinInto(other map[types.Object]domain) {
	for k, v := range other {
		in.state[k] = maxDomain(in.state[k], v)
	}
}

func (in *domainInterp) execBlock(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, st := range b.List {
		in.execStmt(st)
	}
}

func (in *domainInterp) execStmt(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		in.execAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					d := domQ
					if i < len(vs.Values) {
						d = in.exprDomain(vs.Values[i])
					}
					in.setIdent(name, d)
				}
			}
		}
	case *ast.ExprStmt:
		in.exprDomain(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			in.execStmt(s.Init)
		}
		in.exprDomain(s.Cond)
		saved := in.clone()
		in.execBlock(s.Body)
		thenState := in.state
		in.state = saved
		if s.Else != nil {
			in.execStmt(s.Else)
		}
		in.joinInto(thenState)
	case *ast.ForStmt:
		if s.Init != nil {
			in.execStmt(s.Init)
		}
		for i := 0; i < 2; i++ {
			if s.Cond != nil {
				in.exprDomain(s.Cond)
			}
			in.execBlock(s.Body)
			if s.Post != nil {
				in.execStmt(s.Post)
			}
		}
	case *ast.RangeStmt:
		if s.Key != nil {
			if id, ok := s.Key.(*ast.Ident); ok {
				in.setIdent(id, domQ) // indices are lengths, not coefficients
			}
		}
		if s.Value != nil {
			if id, ok := s.Value.(*ast.Ident); ok {
				in.setIdent(id, in.exprDomain(s.X))
			}
		}
		for i := 0; i < 2; i++ {
			in.execBlock(s.Body)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			in.execStmt(s.Init)
		}
		saved := in.clone()
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			in.state = cloneDomains(saved)
			for _, b := range cc.Body {
				in.execStmt(b)
			}
			branch := in.state
			in.state = saved
			in.joinInto(branch)
			saved = in.clone()
		}
	case *ast.BlockStmt:
		in.execBlock(s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			in.exprDomain(r)
		}
	case *ast.IncDecStmt:
		in.exprDomain(s.X)
	case *ast.DeferStmt:
		in.exprDomain(s.Call)
	case *ast.GoStmt:
		in.exprDomain(s.Call)
	case *ast.LabeledStmt:
		in.execStmt(s.Stmt)
	}
}

func cloneDomains(m map[types.Object]domain) map[types.Object]domain {
	c := make(map[types.Object]domain, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func (in *domainInterp) execAssign(s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Op-assign mirrors the corresponding binary operator.
		var d domain
		switch s.Tok {
		case token.ADD_ASSIGN:
			d = widenSum(in.exprDomain(s.Lhs[0]), in.exprDomain(s.Rhs[0]))
		case token.REM_ASSIGN:
			in.exprDomain(s.Rhs[0])
			d = domQ // deliberate re-canonicalization
		case token.AND_ASSIGN:
			a, b := in.exprDomain(s.Lhs[0]), in.exprDomain(s.Rhs[0])
			d = a
			if b < a {
				d = b
			}
		case token.SHR_ASSIGN:
			in.exprDomain(s.Rhs[0])
			d = in.exprDomain(s.Lhs[0])
		default: // -=, *=, <<=, /=, |=, ^=: wraparound/overflow territory
			in.exprDomain(s.Rhs[0])
			d = domAny
		}
		in.assignTo(s.Lhs[0], d, false)
		return
	}
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		d := in.exprDomain(s.Rhs[0])
		for _, lhs := range s.Lhs {
			in.assignTo(lhs, d, s.Tok == token.DEFINE)
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i < len(s.Rhs) {
			in.assignTo(lhs, in.exprDomain(s.Rhs[i]), s.Tok == token.DEFINE)
		}
	}
}

// assignTo writes a domain into an assignment target. Whole-identifier
// writes replace; element writes join (the other elements keep their old
// bound).
func (in *domainInterp) assignTo(lhs ast.Expr, d domain, define bool) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		in.setIdent(e, d)
	case *ast.IndexExpr:
		if base := rootIdent(e.X); base != nil {
			obj := in.objOf(base)
			if obj != nil {
				in.state[obj] = maxDomain(in.state[obj], d)
			}
		}
	case *ast.StarExpr:
		if base := rootIdent(e.X); base != nil {
			if obj := in.objOf(base); obj != nil {
				in.state[obj] = maxDomain(in.state[obj], d)
			}
		}
	}
}

func (in *domainInterp) setIdent(id *ast.Ident, d domain) {
	if id.Name == "_" {
		return
	}
	if obj := in.objOf(id); obj != nil {
		in.state[obj] = d
	}
}

func (in *domainInterp) objOf(id *ast.Ident) types.Object {
	if o := in.pkg.Info.Defs[id]; o != nil {
		return o
	}
	return in.pkg.Info.Uses[id]
}

// exprDomain computes the abstract domain of e, checking annotated calls
// along the way.
func (in *domainInterp) exprDomain(e ast.Expr) domain {
	switch x := e.(type) {
	case nil:
		return domQ
	case *ast.Ident:
		if obj := in.objOf(x); obj != nil {
			if d, ok := in.state[obj]; ok {
				return d
			}
		}
		return domQ
	case *ast.ParenExpr:
		return in.exprDomain(x.X)
	case *ast.IndexExpr:
		in.exprDomain(x.Index)
		return in.exprDomain(x.X)
	case *ast.SliceExpr:
		return in.exprDomain(x.X)
	case *ast.StarExpr:
		return in.exprDomain(x.X)
	case *ast.UnaryExpr:
		in.exprDomain(x.X)
		if x.Op == token.AND {
			return in.exprDomain(x.X)
		}
		return domAny // -x, ^x wrap
	case *ast.BinaryExpr:
		return in.binaryDomain(x)
	case *ast.CallExpr:
		return in.callDomain(x)
	case *ast.SelectorExpr:
		return domQ // fields and qualified idents: canonical by convention
	case *ast.BasicLit:
		return domQ // literals in kernel code are small constants
	case *ast.FuncLit:
		in.execBlock(x.Body) // closures see the captured state
		return domQ
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			in.exprDomain(elt)
		}
		return domQ
	case *ast.KeyValueExpr:
		return in.exprDomain(x.Value)
	case *ast.TypeAssertExpr:
		return in.exprDomain(x.X)
	}
	return domQ
}

func (in *domainInterp) binaryDomain(x *ast.BinaryExpr) domain {
	a, b := in.exprDomain(x.X), in.exprDomain(x.Y)
	switch x.Op {
	case token.ADD, token.OR, token.XOR: // a|b, a^b ≤ a+b
		return widenSum(a, b)
	case token.REM:
		return domQ // a deliberate re-canonicalization (modguard polices placement)
	case token.AND: // a&b ≤ min(a,b)
		if a < b {
			return a
		}
		return b
	case token.SHR:
		return a // x>>k ≤ x
	case token.SUB, token.MUL, token.SHL, token.QUO:
		return domAny // wraparound / overflow / unknown scaling
	default:
		return domQ // comparisons and logic yield booleans
	}
}

// callDomain checks a call against the callee's annotation (if any) and
// returns the result's domain.
func (in *domainInterp) callDomain(call *ast.CallExpr) domain {
	callee := in.staticCallee(call)
	var annot *domainAnnot
	if callee != nil {
		annot = in.annots[callee]
	}
	if annot == nil {
		for _, arg := range call.Args {
			in.exprDomain(arg)
		}
		return domQ // unannotated calls are canonical by convention
	}
	sig := callee.Type().(*types.Signature)
	for i, arg := range call.Args {
		got := in.exprDomain(arg)
		if i >= sig.Params().Len() {
			break
		}
		name := sig.Params().At(i).Name()
		if want, ok := annot.inputs[name]; ok && got > want {
			if in.report != nil {
				in.report(arg.Pos(), fmt.Sprintf(
					"%s value flows into %s's parameter %s, which requires %s: reduce first (Reduce2Q/Reduce4Q) or widen the annotation",
					got, shortName(callee), name, want))
			}
		}
		// In-place outputs overwrite the argument's domain.
		if out, ok := annot.outputs[name]; ok {
			if base := rootIdent(arg); base != nil {
				in.setIdent(base, out)
			}
		}
	}
	if annot.hasRet {
		return annot.ret
	}
	return domQ
}

func (in *domainInterp) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := in.pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := in.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
