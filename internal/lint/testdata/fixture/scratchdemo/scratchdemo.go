// Package scratchdemo seeds scratchalias violations: mutable per-worker
// scratch captured and shared across par.ForEach / par.NewPool closures.
package scratchdemo

import (
	"fixture/internal/bfv"
	"fixture/internal/par"
)

// worker wraps scratch, so it is transitively scratch itself.
type worker struct {
	ev *bfv.Evaluator
}

// BadSharedCall calls a mutating method on one captured evaluator from
// every worker: the canonical aliasing race.
func BadSharedCall(ev *bfv.Evaluator, xs []uint64) {
	par.ForEach(len(xs), par.Options{}, func(w, i int) {
		xs[i] = ev.Apply(xs[i]) // want scratchalias
	})
}

// BadEscape hands the captured scratch to another function.
func BadEscape(ev *bfv.Evaluator, xs []uint64) {
	par.ForEach(len(xs), par.Options{}, func(w, i int) {
		xs[i] = consume(ev, xs[i]) // want scratchalias
	})
}

// BadAlias re-aliases the captured scratch inside the closure; the alias
// then mutates shared state invisibly to parsafe.
func BadAlias(ev *bfv.Evaluator, xs []uint64) {
	par.ForEach(len(xs), par.Options{}, func(w, i int) {
		mine := ev // want scratchalias
		xs[i] = mine.Apply(xs[i])
	})
}

// BadFixedIndex selects a fixed element of the scratch slice, so every
// worker still shares lanes[0].
func BadFixedIndex(lanes []*bfv.Evaluator, xs []uint64) {
	par.ForEach(len(xs), par.Options{}, func(w, i int) {
		xs[i] = lanes[0].Apply(xs[i]) // want scratchalias
	})
}

// GoodShallowCopy forks per call: the blessed pattern for NewPool.
func GoodShallowCopy(ev *bfv.Evaluator) *par.Pool[*worker] {
	return par.NewPool(func() *worker {
		return &worker{ev: ev.ShallowCopy()}
	})
}

// GoodPerWorkerIndex selects this worker's lane: index-derived access.
func GoodPerWorkerIndex(lanes []*bfv.Evaluator, xs []uint64) {
	par.ForEach(len(xs), par.Options{}, func(w, i int) {
		xs[i] = lanes[w].Apply(xs[i])
	})
}

// GoodPool distributes scratch through par.Pool, which is exempt.
func GoodPool(pool *par.Pool[*worker], xs []uint64) {
	par.ForEach(len(xs), par.Options{}, func(w, i int) {
		xs[i] = pool.Get(w).ev.Apply(xs[i])
	})
}

// ReadOnlyPlan only reads immutable configuration, but that is a
// dynamic property the pass cannot prove: the finding is a false
// positive and carries the justified escape hatch.
func ReadOnlyPlan(ev *bfv.Evaluator, xs []uint64) {
	par.ForEach(len(xs), par.Options{}, func(w, i int) {
		//lint:allow scratchalias Plan only reads the buffer length; no scratch is written
		xs[i] += uint64(ev.Plan())
	})
}

func consume(ev *bfv.Evaluator, x uint64) uint64 { return ev.Apply(x) }
