// Package modfix seeds modguard violations next to their fixed forms.
// Lines tagged "// want modguard" must be flagged; everything else must
// stay silent.
package modfix

import (
	"math/bits"

	"fixture/internal/ring"
)

// Violations: raw modular arithmetic on non-constant uint64 operands.

func badMod(a, q uint64) uint64 { return a % q } // want modguard

func badDiv(a, q uint64) uint64 { return a / q } // want modguard

func badMul(a, b uint64) uint64 { return a * b } // want modguard

func badAssign(a, q uint64) uint64 {
	a %= q // want modguard
	return a
}

func badMulAssign(a, b uint64) uint64 {
	a *= b // want modguard
	return a
}

// Fixed forms: the approved helpers and wide primitives.

func goodReduce(m ring.Modulus, a uint64) uint64 { return m.Reduce(a) }

func goodMul(m ring.Modulus, a, b uint64) uint64 { return m.Mul(a, b) }

func goodDiv(a, q uint64) uint64 {
	d, _ := bits.Div64(0, a, q)
	return d
}

func goodWideMul(a, b uint64) (uint64, uint64) { return bits.Mul64(a, b) }

// Constant operands are length math, not modular reduction: exempt.
func goodConst(a uint64) uint64 { return a % 8 }

// Non-uint64 arithmetic is out of scope: exempt.
func goodInt(a, b int) int { return a * b }

// An explained allow suppresses the finding on its line.
func allowedMod(a, q uint64) uint64 {
	return a % q //lint:allow modguard fixture demonstrates an explained suppression
}

// An allow on the line above also covers the finding.
func allowedAbove(a, q uint64) uint64 {
	//lint:allow modguard fixture demonstrates a line-above suppression
	return a / q
}
