// Package taintdemo seeds secrettaint violations: secret-key material
// flowing into formatting and the fixture serving layer's encoders.
package taintdemo

import (
	"fmt"

	"fixture/internal/bfv"
	"fixture/internal/serve"
)

// LeakLog formats the raw key: the most direct violation.
func LeakLog(sk *bfv.SecretKey) string {
	return fmt.Sprintf("%v", sk.Value) // want secrettaint
}

// LeakWire pushes key-derived bytes into a serve encoder.
func LeakWire(sk *bfv.SecretKey) []byte {
	buf := make([]byte, len(sk.Value))
	for i, v := range sk.Value {
		buf[i] = byte(v)
	}
	return serve.EncodeBlob(buf) // want secrettaint
}

// LeakViaHelper proves the interprocedural propagation: render funnels
// its argument into fmt, so the taint surfaces at this call site.
func LeakViaHelper(sk *bfv.SecretKey) string {
	return render(sk.Signed) // want secrettaint
}

// LeakReturnChain proves summaries flow through returns: derive's result
// carries its argument's taint into the sink here.
func LeakReturnChain(sk *bfv.SecretKey) string {
	d := derive(sk.Value)
	return fmt.Sprint(d) // want secrettaint
}

// GoodDecrypted logs decrypted logits: Decrypt declassifies by
// construction (the plaintext belongs to the data owner).
func GoodDecrypted(sk *bfv.SecretKey, ct []uint64) string {
	logits := bfv.Decrypt(sk, ct)
	return fmt.Sprint(logits)
}

// GoodLength logs only cardinalities, which are public.
func GoodLength(sk *bfv.SecretKey) string {
	return fmt.Sprintf("key with %d coefficients", len(sk.Value))
}

// GoodDeclassified ships a commitment the author argues is public; the
// justified declassify is the sanctioned sanitizer.
func GoodDeclassified(sk *bfv.SecretKey) []byte {
	digest := checksum(sk.Value)
	//lint:declassify 8-bit checksum of the key is a published integrity tag, not key material
	return serve.EncodeBlob([]byte{digest})
}

func render(v []int64) string {
	return fmt.Sprintf("%v", v)
}

func derive(v []uint64) []uint64 {
	out := make([]uint64, len(v))
	copy(out, v)
	return out
}

func checksum(v []uint64) byte {
	var c byte
	for _, x := range v {
		c ^= byte(x)
	}
	return c
}
