// Package wire seeds panicfree-wire fixtures: Read* functions in this
// file are the configured entry points. Panics tagged
// "// want panicfree-wire" are reachable from an entry point; the rest
// must stay silent.
package wire

import (
	"errors"

	"fixture/internal/ring"
)

// ReadDirect panics at the entry point itself.
func ReadDirect(b []byte) uint64 {
	if len(b) < 8 {
		panic("wire: short buffer") // want panicfree-wire
	}
	return uint64(b[0])
}

// ReadTransitive reaches a panic two hops down the call graph.
func ReadTransitive(b []byte) (uint64, error) {
	return parseHeader(b)
}

func parseHeader(b []byte) (uint64, error) {
	return checkMagic(b), nil
}

func checkMagic(b []byte) uint64 {
	if len(b) == 0 {
		panic("wire: empty buffer") // want panicfree-wire
	}
	return uint64(b[0])
}

// ReadCross reaches a panic in another package.
func ReadCross(b []byte) error {
	ring.Explode()
	return nil
}

// ReadGood is the fixed form: malformed input surfaces as an error.
func ReadGood(b []byte) (uint64, error) {
	if len(b) < 8 {
		return 0, errors.New("wire: short buffer")
	}
	return uint64(b[0]), nil
}

// NotAnEntry panics, but nothing on the wire path calls it: silent.
func NotAnEntry() {
	panic("wire: unreachable from deserialization")
}
