// Package parfix seeds parsafe violations next to their safe forms.
// Lines tagged "// want parsafe" must be flagged; everything else must
// stay silent.
package parfix

import "fixture/internal/par"

// Violations: shared-state writes that are not index-derived.

func badScalar(n int, xs []uint64) uint64 {
	var sum uint64
	par.ForN(n, func(i int) {
		sum += xs[i] // want parsafe
	})
	return sum
}

func badMap(n int) map[int]bool {
	seen := map[int]bool{}
	par.ForN(n, func(i int) {
		seen[i] = true // want parsafe
	})
	return seen
}

func badSharedSlot(n int, out []uint64) {
	par.ForN(n, func(i int) {
		out[0] = uint64(i) // want parsafe
	})
}

func badChunks(n int, xs []uint64) uint64 {
	first := uint64(0)
	par.Chunks(n, func(start, end int) {
		first = xs[start] // want parsafe
	})
	return first
}

func badForWork(n int, xs []uint64) uint64 {
	var hi uint64
	par.ForWork(n, 1<<12, func(i int) {
		if xs[i] > hi {
			hi = xs[i] // want parsafe
		}
	})
	return hi
}

func goodForWork(n int, xs, out []uint64) {
	par.ForWork(n, 1<<12, func(i int) {
		out[i] = xs[i] * 3
	})
}

type acc struct{ total uint64 }

func badField(n int, xs []uint64, a *acc) {
	par.ForN(n, func(i int) {
		a.total += xs[i] // want parsafe
	})
}

func badPointer(n int, p *uint64) {
	par.ForN(n, func(i int) {
		*p = uint64(i) // want parsafe
	})
}

func badIncDec(n int) int {
	count := 0
	par.ForN(n, func(i int) {
		count++ // want parsafe
	})
	return count
}

// Safe forms: index-derived writes, closure-local state, per-worker
// accumulation merged after the join.

func goodIndexed(n int, xs, out []uint64) {
	par.ForN(n, func(i int) {
		tmp := xs[i]
		tmp++
		out[i] = tmp
	})
}

func goodChunks(n int, xs, partial []uint64) uint64 {
	par.Chunks(n, func(start, end int) {
		var s uint64
		for i := start; i < end; i++ {
			s += xs[i]
		}
		partial[start] = s
	})
	var total uint64
	for _, s := range partial {
		total += s
	}
	return total
}

func goodFieldOfIndexed(n int, rows []acc) {
	par.ForN(n, func(i int) {
		rows[i].total = uint64(i)
	})
}

// An explained allow suppresses the finding on its line.
func allowedLatch(n int) bool {
	hit := false
	par.ForN(n, func(i int) {
		hit = true //lint:allow parsafe fixture demonstrates an explained suppression
	})
	return hit
}
