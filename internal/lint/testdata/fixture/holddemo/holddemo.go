// Package holddemo seeds accept and reject cases for the blockhold
// pass: blocking operations (sleeps, channel ops, selects without a
// default, net/file IO, WaitGroup waits) reached while a mutex is
// statically held are flagged — directly and through static call
// chains — while unlocked blocking, selects with a default, deferred
// teardown, and //lint:holdok-justified sites are not.
package holddemo

import (
	"net"
	"os"
	"sync"
	"time"
)

type server struct {
	mu   sync.Mutex
	conn net.Conn
	file *os.File
	wg   sync.WaitGroup

	dataC chan int
	doneC chan struct{}
}

// SleepHeld blocks in time.Sleep with the lock held.
func (s *server) SleepHeld() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want blockhold
	s.mu.Unlock()
}

// SendHeld performs a channel send with the lock held.
func (s *server) SendHeld() {
	s.mu.Lock()
	s.dataC <- 1 // want blockhold
	s.mu.Unlock()
}

// RecvHeld performs a channel receive with the lock held.
func (s *server) RecvHeld() {
	s.mu.Lock()
	<-s.dataC // want blockhold
	s.mu.Unlock()
}

// SelectHeld blocks in a default-less select with the lock held.
func (s *server) SelectHeld() {
	s.mu.Lock()
	select { // want blockhold
	case v := <-s.dataC:
		_ = v
	case <-s.doneC:
	}
	s.mu.Unlock()
}

// RangeHeld ranges over a channel with the lock held.
func (s *server) RangeHeld() {
	s.mu.Lock()
	for v := range s.dataC { // want blockhold
		_ = v
	}
	s.mu.Unlock()
}

// NetWriteHeld writes to the network with the lock held.
func (s *server) NetWriteHeld(p []byte) {
	s.mu.Lock()
	_, _ = s.conn.Write(p) // want blockhold
	s.mu.Unlock()
}

// FsyncHeld fsyncs with the lock held.
func (s *server) FsyncHeld() {
	s.mu.Lock()
	_ = s.file.Sync() // want blockhold
	s.mu.Unlock()
}

// WaitHeld waits on a WaitGroup with the lock held.
func (s *server) WaitHeld() {
	s.mu.Lock()
	s.wg.Wait() // want blockhold
	s.mu.Unlock()
}

func (s *server) napDirect() {
	time.Sleep(time.Millisecond)
}

func (s *server) napNested() {
	s.napDirect()
}

// CallBlocksHeld reaches a sleep through one static call with the lock
// held; the finding lands on the call site with a witness chain.
func (s *server) CallBlocksHeld() {
	s.mu.Lock()
	s.napDirect() // want blockhold
	s.mu.Unlock()
}

// DeepCallBlocksHeld reaches the sleep two calls down.
func (s *server) DeepCallBlocksHeld() {
	s.mu.Lock()
	s.napNested() // want blockhold
	s.mu.Unlock()
}

// DeferredUnlockStillHeld proves `defer mu.Unlock()` keeps the lock
// held for the remainder of the body: the sleep after it is flagged.
func (s *server) DeferredUnlockStillHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want blockhold
}

// SleepUnlocked blocks only after the lock is released.
func (s *server) SleepUnlocked() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// SelectDefaultHeld polls with a default clause: non-blocking by
// construction, never flagged.
func (s *server) SelectDefaultHeld() {
	s.mu.Lock()
	select {
	case v := <-s.dataC:
		_ = v
	default:
	}
	s.mu.Unlock()
}

// DeferredTeardownHeld defers the blocking teardown: it runs after the
// function body, outside the critical section's own operations.
func (s *server) DeferredTeardownHeld() {
	s.mu.Lock()
	defer s.file.Sync()
	s.mu.Unlock()
}

// JustifiedDirect carries a holdok justification on its blocking site.
func (s *server) JustifiedDirect() {
	s.mu.Lock()
	s.dataC <- 1 //lint:holdok the admission bound keeps capacity available, so the send never blocks
	s.mu.Unlock()
}

// justifiedSend's only blocking site is holdok-justified, so the site
// is folded out of the summary.
func (s *server) justifiedSend() {
	//lint:holdok the admission bound keeps capacity available, so the send never blocks
	s.dataC <- 1
}

// CallsJustified holds the lock across a call whose only blocking site
// is justified: the fold keeps the caller clean.
func (s *server) CallsJustified() {
	s.mu.Lock()
	s.justifiedSend()
	s.mu.Unlock()
}
