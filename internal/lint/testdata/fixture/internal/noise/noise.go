// Package noise is a fixture crypto package using only approved entropy:
// cryptorand must stay silent here.
package noise

import crand "crypto/rand"

// Seed draws one byte of OS entropy.
func Seed() (byte, error) {
	var b [1]byte
	_, err := crand.Read(b[:])
	return b[0], err
}
