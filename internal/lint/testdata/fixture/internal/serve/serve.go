// Package serve is the fixture serving layer: its Encode*/Write*
// functions are secrettaint wire sinks (the package path carries the
// "serve" component), and its statement-position error drops are errdrop
// territory.
package serve

import "errors"

// EncodeBlob frames a payload for the wire: a secrettaint sink.
func EncodeBlob(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+4)
	out = append(out, byte(len(payload)))
	return append(out, payload...)
}

// WriteRecord pretends to write a metrics record: also a sink.
func WriteRecord(s string) error {
	if s == "" {
		return errors.New("serve: empty record")
	}
	return nil
}

// Flush returns an error that callers are tempted to drop.
func Flush() error { return nil }
