// Package ring is a miniature stand-in for the production modulus
// helpers. It exists only so the lint fixtures type-check; modguard
// exempts this package by path, exactly as it exempts the real one.
package ring

// Modulus mirrors the production Barrett helper surface.
type Modulus struct{ Q uint64 }

// Reduce maps a into [0, Q). Raw % is fine here: internal/ring is the
// approved helper set.
func (m Modulus) Reduce(a uint64) uint64 { return a % m.Q }

// Mul returns a·b mod Q (overflow-oblivious stub).
func (m Modulus) Mul(a, b uint64) uint64 { return (a * b) % m.Q }

// Add returns a+b mod Q.
func (m Modulus) Add(a, b uint64) uint64 { return (a + b) % m.Q }

// Explode panics. The panicfree fixture calls it from a wire entry point
// to prove the call-graph walk crosses package boundaries.
func Explode() {
	panic("ring: explode") // want panicfree-wire
}
