// Package ring is a miniature stand-in for the production modulus
// helpers. It exists only so the lint fixtures type-check; modguard
// exempts this package by path, exactly as it exempts the real one.
package ring

// Modulus mirrors the production Barrett helper surface.
type Modulus struct{ Q uint64 }

// Reduce maps a into [0, Q). Raw % is fine here: internal/ring is the
// approved helper set.
func (m Modulus) Reduce(a uint64) uint64 { return a % m.Q }

// Mul returns a·b mod Q (overflow-oblivious stub).
func (m Modulus) Mul(a, b uint64) uint64 { return (a * b) % m.Q }

// Add returns a+b mod Q.
func (m Modulus) Add(a, b uint64) uint64 { return (a + b) % m.Q }

// Explode panics. The panicfree fixture calls it from a wire entry point
// to prove the call-graph walk crosses package boundaries.
func Explode() {
	panic("ring: explode") // want panicfree-wire
}

// AddLazy returns a+b unreduced, mirroring the production lazy kernel.
//
//lint:domain a:<2q b:<2q -> ret:<4q
func (m Modulus) AddLazy(a, b uint64) uint64 { return a + b }

// MulShoupLazy stands in for the subtraction-free Shoup multiply.
//
//lint:domain a:any w:<q -> ret:<2q
func (m Modulus) MulShoupLazy(a, w uint64) uint64 { return m.Reduce(a * w) }

// Reduce2Q folds a value in [0, 2q) into [0, q).
//
//lint:domain a:<2q -> ret:<q
func (m Modulus) Reduce2Q(a uint64) uint64 {
	if a >= m.Q {
		a -= m.Q
	}
	return a
}

// Reduce4Q folds a value in [0, 4q) into [0, q) by two conditional
// subtractions; like the production kernel it is a leaf whose annotation
// is a trusted declaration, not composed from Reduce2Q.
//
//lint:domain a:<4q -> ret:<q
func (m Modulus) Reduce4Q(a uint64) uint64 {
	if a >= 2*m.Q {
		a -= 2 * m.Q
	}
	if a >= m.Q {
		a -= m.Q
	}
	return a
}

// ReduceVec maps arbitrary values into [0, q), in place into out.
//
//lint:domain a:any -> out:<q
func (m Modulus) ReduceVec(a, out []uint64) {
	for i := range a {
		out[i] = m.Reduce(a[i])
	}
}

// AddLazyVec is the unreduced vector add.
//
//lint:domain a:<2q b:<2q -> out:<4q
func (m Modulus) AddLazyVec(a, b, out []uint64) {
	for i := range a {
		out[i] = a[i] + b[i]
	}
}
