// Package par is a sequential stub of the production fork-join helpers,
// signature-compatible so the parsafe fixtures type-check.
package par

// ForN runs f(i) for every i in [0, n) — concurrently, in production.
func ForN(n int, f func(i int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

// ForWork runs f(i) for every i in [0, n), sized by a per-item cost
// estimate — concurrently, in production.
func ForWork(n, itemCost int, f func(i int)) {
	_ = itemCost
	for i := 0; i < n; i++ {
		f(i)
	}
}

// Chunks splits [0, n) into ranges and runs f on each — concurrently, in
// production.
func Chunks(n int, f func(start, end int)) {
	f(0, n)
}

// Options mirrors the production partition-sizing knobs.
type Options struct {
	MinGrain   int
	ItemCost   int
	MaxWorkers int
}

// ForEach runs f(w, i) for every i in [0, n), handing each invocation a
// worker index w — concurrently, in production.
func ForEach(n int, o Options, f func(w, i int)) {
	_ = o
	for i := 0; i < n; i++ {
		f(0, i)
	}
}

// Pool is a sequential stub of the production lazy per-worker pool.
type Pool[T any] struct {
	mk    func() T
	items map[int]T
}

// NewPool returns a pool that builds one T per worker via mk.
func NewPool[T any](mk func() T) *Pool[T] {
	return &Pool[T]{mk: mk, items: map[int]T{}}
}

// Get returns worker w's item, building it on first use.
func (p *Pool[T]) Get(w int) T {
	it, ok := p.items[w]
	if !ok {
		it = p.mk()
		p.items[w] = it
	}
	return it
}
