// Package par is a sequential stub of the production fork-join helpers,
// signature-compatible so the parsafe fixtures type-check.
package par

// ForN runs f(i) for every i in [0, n) — concurrently, in production.
func ForN(n int, f func(i int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

// ForWork runs f(i) for every i in [0, n), sized by a per-item cost
// estimate — concurrently, in production.
func ForWork(n, itemCost int, f func(i int)) {
	_ = itemCost
	for i := 0; i < n; i++ {
		f(i)
	}
}

// Chunks splits [0, n) into ranges and runs f on each — concurrently, in
// production.
func Chunks(n int, f func(start, end int)) {
	f(0, n)
}
