// Package lwe is a fixture crypto package that wrongly draws noise from
// a predictable stream.
package lwe

import "math/rand" // want cryptorand

// BadNoise is exactly the bug cryptorand exists to catch: noise material
// from a seedable, predictable generator.
func BadNoise() int64 { return rand.Int63n(7) - 3 }
