// Package core seeds errdrop violations: internal/core is in the pass's
// scope, and these statement-position calls discard error results.
package core

import "fixture/internal/serve"

// Teardown drops two errors on the floor.
func Teardown() {
	serve.Flush() // want errdrop
	if err := serve.WriteRecord("bye"); err != nil {
		serve.Flush() // want errdrop
	}
}

// TeardownExplicit marks the drops deliberately: `_ =` and defer are the
// approved discard spellings.
func TeardownExplicit() {
	_ = serve.Flush()
	defer serve.Flush()
	//lint:allow errdrop best-effort flush on the shutdown path; failure changes nothing
	serve.Flush()
}
