// Package qnn is training-side scaffolding: math/rand is deliberately
// out of cryptorand's scope here.
package qnn

import "math/rand"

// Shuffle returns a pseudo-random permutation for batch ordering.
func Shuffle(n int) []int { return rand.Perm(n) }
