// Package bfv is a fixture crypto package whose math/rand/v2 import
// carries an explained allow, mirroring the production keystream core.
package bfv

import mrand "math/rand/v2" //lint:allow cryptorand fixture mirrors the approved seeded keystream core

// Jitter returns a value from the allowed generator.
func Jitter() uint64 { return mrand.Uint64() }

// SecretKey mirrors the production secret-key shape: secrettaint treats
// any module-declared SecretKey as a taint source.
type SecretKey struct {
	Value  []uint64
	Signed []int64
}

// Evaluator is mutable scratch with the production ShallowCopy contract.
type Evaluator struct{ buf []uint64 }

// ShallowCopy forks the evaluator's scratch for another goroutine.
func (e *Evaluator) ShallowCopy() *Evaluator { return &Evaluator{buf: make([]uint64, len(e.buf))} }

// Apply mutates the evaluator's scratch.
func (e *Evaluator) Apply(x uint64) uint64 {
	if len(e.buf) > 0 {
		e.buf[0] = x
	}
	return x
}

// Plan reads immutable configuration; it is still a method call on the
// scratch value, which is exactly what scratchalias cannot prove safe.
func (e *Evaluator) Plan() int { return len(e.buf) }

// Encoder is scratch by name, per the production convention.
type Encoder struct{ tmp []uint64 }

// Decrypt declassifies by construction: the plaintext belongs to the
// data owner. secrettaint treats Decrypt*/Encrypt* results as clean.
func Decrypt(sk *SecretKey, ct []uint64) []int64 {
	out := make([]int64, len(ct))
	for i := range ct {
		out[i] = int64(ct[i]) - sk.Signed[i%len(sk.Signed)]
	}
	return out
}
