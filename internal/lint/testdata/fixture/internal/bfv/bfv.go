// Package bfv is a fixture crypto package whose math/rand/v2 import
// carries an explained allow, mirroring the production keystream core.
package bfv

import mrand "math/rand/v2" //lint:allow cryptorand fixture mirrors the approved seeded keystream core

// Jitter returns a value from the allowed generator.
func Jitter() uint64 { return mrand.Uint64() }
