// Package allowdemo holds malformed lint:allow directives. Each one must
// surface as an "allowlist" finding instead of silently suppressing
// nothing; the test asserts them by message, not by marker.
package allowdemo

//lint:allow
var missingPass = 1

//lint:allow nosuchpass this pass does not exist
var unknownPass = 2

//lint:allow modguard
var missingReason = 3
