// Package goleakdemo seeds accept and reject cases for the goleak
// pass: every go statement must carry a provable termination signal —
// WaitGroup accounting, a closed-channel range, a bounded channel
// protocol, or a cancellation select. Unbounded loops, never-closed
// channels, unresolvable spawn targets, and selects with no exit are
// flagged; justified process-lifetime goroutines are suppressed with
// an explained allow.
package goleakdemo

import (
	"context"
	"sync"
	"time"
)

var (
	jobs     = make(chan int)
	done     = make(chan struct{})
	buffered = make(chan int, 8)

	neverData = make(chan int)
	neverSig  = make(chan struct{})

	fnVal = func() {}
)

// Stop closes the protocol channels the accept cases rely on.
func Stop() {
	close(jobs)
	close(done)
}

func spinWorker() {
	for {
		time.Sleep(time.Millisecond)
	}
}

// Rejects: each spawn leaks.

func SpawnForever() {
	go func() { // want goleak
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

func SpawnRangeNeverClosed() {
	go func() { // want goleak
		for v := range neverData {
			_ = v
		}
	}()
}

func SpawnUnbufferedSend() {
	go func() { // want goleak
		neverData <- 1
	}()
}

func SpawnNeverClosedRecv() {
	go func() { // want goleak
		<-neverSig
	}()
}

func SpawnDeadSelect() {
	go func() { // want goleak
		select {
		case v := <-neverData:
			_ = v
		case <-neverSig:
		}
	}()
}

func SpawnFuncValue() {
	go fnVal() // want goleak
}

func SpawnStdlib() {
	go time.Sleep(time.Millisecond) // want goleak
}

func SpawnSpinWorker() {
	go spinWorker() // want goleak
}

func SpawnNonExitingCancelCase() {
	go func() { // want goleak
		for {
			select {
			case <-done:
				// Observes the signal but never exits the loop.
			case v := <-neverData:
				_ = v
			}
		}
	}()
}

// Accepts: each spawn carries a termination proof.

func SpawnWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Millisecond)
	}()
}

func SpawnClosedRange() {
	go func() {
		for v := range jobs {
			_ = v
		}
	}()
}

func SpawnBufferedSend() {
	go func() {
		buffered <- 1
	}()
}

func SpawnBoundedLoop() {
	go func() {
		for i := 0; i < 4; i++ {
			buffered <- i
		}
	}()
}

func SpawnCancellationSelect() {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-jobs:
				_ = v
			}
		}
	}()
}

func SpawnTimerRecv() {
	go func() {
		<-time.After(time.Millisecond)
	}()
}

func ctxWorker(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-jobs:
			_ = v
		}
	}
}

func SpawnCtxWorker(ctx context.Context) {
	go ctxWorker(ctx)
}

// SpawnProcessLifetime is the justified escape hatch: a deliberate
// process-lifetime goroutine with an explained allow.
func SpawnProcessLifetime() {
	//lint:allow goleak deliberate process-lifetime metrics pump; it dies with the process
	go func() {
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}
