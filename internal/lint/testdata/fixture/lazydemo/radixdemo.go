// radixdemo seeds the radix-8 butterfly shapes: a radix-8 layer gathers
// eight lanes through stacked lazy adds, so the legal schedules narrow
// between layers (twiddle Shoup multiplies, or an explicit fold) while
// the illegal ones stack <4q sums straight into <2q-input kernels.
package lazydemo

import "fixture/internal/ring"

// BadRadix8Gather stacks two lazy adds the way a naive radix-8 gather
// would: the first AddLazy yields <4q, which violates the second's <2q
// input contract — the exact overflow the radix-8 schedule must avoid.
func BadRadix8Gather(m ring.Modulus, a, b, c uint64) uint64 {
	t := m.AddLazy(a, b)
	u := m.AddLazy(t, c) // want moddomain
	return m.Reduce4Q(u)
}

// BadRadix8Fold folds a gathered <4q lane with the half-width reducer, a
// radix-4-era habit that overflows on the radix-8 accumulation depth.
func BadRadix8Fold(m ring.Modulus, a, b uint64) uint64 {
	t := m.AddLazy(a, b)
	return m.Reduce2Q(t) // want moddomain
}

// GoodRadix8Twiddle is the production radix-8 layer schedule: each <4q
// gather is narrowed back to <2q by the twiddle's Shoup multiply before
// the next layer's AddLazy, so the accumulation never exceeds <4q.
func GoodRadix8Twiddle(m ring.Modulus, a, b, c, d, w uint64) uint64 {
	t := m.MulShoupLazy(m.AddLazy(a, b), w)
	u := m.MulShoupLazy(m.AddLazy(c, d), w)
	return m.Reduce4Q(m.AddLazy(t, u))
}

// GoodRadix8Fold is the alternative legal schedule: an explicit <4q fold
// between layers instead of the twiddle narrowing.
func GoodRadix8Fold(m ring.Modulus, a, b, c uint64) uint64 {
	t := m.Reduce4Q(m.AddLazy(a, b))
	return m.Reduce4Q(m.AddLazy(t, c))
}
