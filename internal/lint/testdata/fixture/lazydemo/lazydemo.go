// Package lazydemo seeds moddomain violations: lazy-range intermediates
// flowing into kernels annotated to require narrower domains.
package lazydemo

import "fixture/internal/ring"

// BadMix feeds a <4q lazy sum into Reduce2Q, which requires <2q — the
// exact bug class moddomain exists to catch.
func BadMix(m ring.Modulus, a, b uint64) uint64 {
	t := m.AddLazy(a, b) // t is <4q (a, b default to canonical <q, but the annotation widens)
	return m.Reduce2Q(t) // want moddomain
}

// BadMixVec is the vector form: an unreduced buffer handed to a kernel
// whose input must be canonical.
func BadMixVec(m ring.Modulus, a, b, out []uint64) uint64 {
	m.AddLazyVec(a, b, out) // out is now <4q
	s := uint64(0)
	for i := range out {
		s = m.Add(s, m.Reduce2Q(out[i])) // want moddomain
	}
	return s
}

// GoodMix shows the approved composition: the <4q intermediate goes
// through Reduce4Q, and branches join at the wider domain.
func GoodMix(m ring.Modulus, a, b uint64) uint64 {
	t := m.AddLazy(a, b)
	if a > b {
		t = m.MulShoupLazy(t, b) // narrows t to <2q on this branch
	}
	// join(t) = max(<4q, <2q) = <4q: still fine for Reduce4Q.
	return m.Reduce4Q(t)
}

// GoodVec: ReduceVec re-canonicalizes the buffer, so downstream
// canonical-input kernels are satisfied.
func GoodVec(m ring.Modulus, a, b, out []uint64) uint64 {
	m.AddLazyVec(a, b, out)
	m.ReduceVec(out, out)
	s := uint64(0)
	for i := range out {
		s = m.Add(s, out[i])
	}
	return s
}

// ManualFold reduces by hand, which the abstract interpreter cannot
// bound (`-=` widens to any): the finding is a false positive and
// carries the justified escape hatch.
func ManualFold(m ring.Modulus, a, b uint64) uint64 {
	t := m.AddLazy(a, b)
	if t >= m.Q {
		t -= m.Q
	}
	if t >= m.Q {
		t -= m.Q
	}
	if t >= m.Q {
		t -= m.Q
	}
	//lint:allow moddomain t is folded below q by the three conditional subtractions above
	return m.Add(t, b)
}
