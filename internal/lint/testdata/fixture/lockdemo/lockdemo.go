// Package lockdemo seeds accept and reject cases for the lockorder
// pass: re-acquisition of a held mutex (directly or through a call
// chain) and lock-order cycles (two-lock inversions, composed edges,
// and a three-lock ring) are flagged; consistent ordering, release
// before re-acquire, and TryLock are not.
package lockdemo

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex

	muC sync.Mutex
	muD sync.Mutex

	muX sync.Mutex
	muY sync.Mutex
	muZ sync.Mutex

	ordFirst  sync.Mutex
	ordSecond sync.Mutex

	reMu  sync.Mutex
	rwMu  sync.RWMutex
	tryMu sync.Mutex
)

// DoubleLock re-acquires reMu while it is already held.
func DoubleLock() {
	reMu.Lock()
	reMu.Lock() // want lockorder
	reMu.Unlock()
	reMu.Unlock()
}

// UpgradeRLock read-locks rwMu while already write-holding it: a queued
// writer deadlocks both.
func UpgradeRLock() {
	rwMu.Lock()
	rwMu.RLock() // want lockorder
	rwMu.RUnlock()
	rwMu.Unlock()
}

func lockRe() {
	reMu.Lock()
	reMu.Unlock()
}

// CallReacquire reaches a second Lock of reMu through a static call.
func CallReacquire() {
	reMu.Lock()
	lockRe() // want lockorder
	reMu.Unlock()
}

// InvertAB and InvertBA acquire muA and muB in opposite orders: a
// classic two-lock inversion, reported on both offending acquires.
func InvertAB() {
	muA.Lock()
	muB.Lock() // want lockorder
	muB.Unlock()
	muA.Unlock()
}

func InvertBA() {
	muB.Lock()
	muA.Lock() // want lockorder
	muA.Unlock()
	muB.Unlock()
}

func lockD() {
	muD.Lock()
	muD.Unlock()
}

// ComposedCD takes muD through a call while holding muC; DirectDC
// inverts the order directly. The composed edge's finding lands on the
// call site.
func ComposedCD() {
	muC.Lock()
	lockD() // want lockorder
	muC.Unlock()
}

func DirectDC() {
	muD.Lock()
	muC.Lock() // want lockorder
	muC.Unlock()
	muD.Unlock()
}

// RingXY, RingYZ, RingZX close a three-lock cycle X → Y → Z → X; every
// edge gets a finding.
func RingXY() {
	muX.Lock()
	muY.Lock() // want lockorder
	muY.Unlock()
	muX.Unlock()
}

func RingYZ() {
	muY.Lock()
	muZ.Lock() // want lockorder
	muZ.Unlock()
	muY.Unlock()
}

func RingZX() {
	muZ.Lock()
	muX.Lock() // want lockorder
	muX.Unlock()
	muZ.Unlock()
}

// ConsistentOne and ConsistentTwo take ordFirst before ordSecond in
// both places: one direction, no cycle, no finding.
func ConsistentOne() {
	ordFirst.Lock()
	ordSecond.Lock()
	ordSecond.Unlock()
	ordFirst.Unlock()
}

func ConsistentTwo() {
	ordFirst.Lock()
	defer ordFirst.Unlock()
	ordSecond.Lock()
	defer ordSecond.Unlock()
}

// ReleaseThenRelock releases before the second acquire, so nothing is
// re-acquired while held.
func ReleaseThenRelock() {
	reMu.Lock()
	reMu.Unlock()
	reMu.Lock()
	reMu.Unlock()
}

// TryWhileHeld uses TryLock, which never blocks: no re-acquisition and
// no order edge.
func TryWhileHeld() {
	tryMu.Lock()
	if tryMu.TryLock() {
		tryMu.Unlock()
	}
	tryMu.Unlock()
}

// BalancedCallee locks and fully releases ordSecond; a caller holding
// ordFirst sees no held state exported (and only the consistent
// ordFirst → ordSecond edge).
func BalancedCallee() {
	ordSecond.Lock()
	defer ordSecond.Unlock()
}

func CallsBalanced() {
	ordFirst.Lock()
	defer ordFirst.Unlock()
	BalancedCallee()
}
