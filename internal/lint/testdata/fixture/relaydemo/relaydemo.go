// Package relaydemo seeds panicfree-wire fixtures for the router
// relay shape: handle*/dispatch*/backend* functions in this file are
// configured entry points, mirroring internal/cluster/router.go where
// every byte read off a client or backend socket is attacker
// influence. Panics tagged "// want panicfree-wire" are reachable
// from an entry point; the rest must stay silent.
package relaydemo

import "errors"

// handleFrame is the client-facing entry: it panics on a malformed
// header one hop down.
func handleFrame(b []byte) error {
	splitHeader(b)
	return nil
}

func splitHeader(b []byte) (byte, []byte) {
	if len(b) < 12 {
		panic("relaydemo: short frame header") // want panicfree-wire
	}
	return b[0], b[12:]
}

// dispatchReply is the backend-facing entry: the reply demux panics
// directly on a truncated request ID.
func dispatchReply(payload []byte) uint64 {
	if len(payload) < 8 {
		panic("relaydemo: reply shorter than request id") // want panicfree-wire
	}
	return uint64(payload[0])
}

// backendAttach is the fixed form: malformed control replies surface
// as returned errors, never as a crash.
func backendAttach(payload []byte) (string, error) {
	if len(payload) < 2 {
		return "", errors.New("relaydemo: truncated attach reply")
	}
	return string(payload[2:]), nil
}

// rebalance panics, but no relay entry point reaches it: silent. The
// admin plane runs on trusted operator input, not wire bytes.
func rebalance() {
	panic("relaydemo: unreachable from the relay path")
}
