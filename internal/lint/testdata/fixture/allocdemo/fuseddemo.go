// fuseddemo seeds the fused scalar-sum loop shapes: the FBS baby-step
// fusion stages per-term constants in reusable scratch and accumulates
// in one pass, so a per-call staging allocation inside the fused kernel
// is exactly the regression noalloc must catch.
package allocdemo

type fusedScratch struct {
	ws   []uint64
	rows [][]uint64
}

// grow declares the staging arena's amortized refill, mirroring the
// production sumScratch helper.
//
//lint:noalloc
func (s *fusedScratch) grow(k int) {
	if cap(s.ws) < k {
		//lint:prealloc staging sized once to the largest term count, then reused
		s.ws = make([]uint64, k)
		//lint:prealloc staging sized once to the largest term count, then reused
		s.rows = make([][]uint64, k)
	}
	s.ws = s.ws[:k]
	s.rows = s.rows[:k]
}

// BadFusedSum allocates its staging per call — the fused loop's whole
// point is to amortize that, so the make must be flagged.
//
//lint:noalloc
func BadFusedSum(terms [][]uint64, ks []uint64, out []uint64) {
	ws := make([]uint64, len(ks)) // want noalloc
	copy(ws, ks)
	for i := range out {
		acc := uint64(0)
		for t := range terms {
			acc += terms[t][i] * ws[t]
		}
		out[i] = acc
	}
}

// GoodFusedSum is the accept shape: constants staged in caller-owned
// scratch, one load/store per output coefficient regardless of the term
// count.
//
//lint:noalloc
func GoodFusedSum(s *fusedScratch, terms [][]uint64, ks []uint64, out []uint64) {
	s.grow(len(ks))
	for t := range terms {
		s.ws[t] = ks[t]
		s.rows[t] = terms[t]
	}
	for i := range out {
		acc := uint64(0)
		for t := range s.rows {
			acc += s.rows[t][i] * s.ws[t]
		}
		out[i] = acc
	}
}
