// Package allocdemo seeds accept and reject cases for the noalloc pass:
// every heap-allocating construct inside a //lint:noalloc function is
// flagged, cold panic/error paths and declared arena refills are not,
// and transitive allocations surface at the annotated root's call site.
package allocdemo

import "fmt"

type pair struct{ a, b int }

func (p *pair) sum() int { return p.a + p.b }

type boxer interface{ sum() int }

type state struct{ tmp []uint64 }

func helperNop() {}

func variadicSink(vs ...int) int {
	n := 0
	for _, v := range vs {
		n += v
	}
	return n
}

// Violations packs one reject case per line; each must be flagged.
//
//lint:noalloc
func Violations(m map[string]int, xs []int, s1, s2 string, b []byte) {
	t := make([]int, 4) // want noalloc
	_ = t
	p := new(int)      // want noalloc
	xs = append(xs, 1) // want noalloc
	_ = xs
	s := s1 + s2     // want noalloc
	str := string(b) // want noalloc
	_ = str
	f := func() int { return 1 } // want noalloc
	_ = f
	go helperNop()       // want noalloc
	m["k"] = 1           // want noalloc
	q := &pair{1, 2}     // want noalloc
	sl := []int{1, 2, 3} // want noalloc
	_ = sl
	_ = variadicSink(1, 2) // want noalloc
	mv := q.sum            // want noalloc
	_ = mv
	bx := boxer(q) // want noalloc
	_ = bx
	_ = fmt.Sprint(s) // want noalloc
	_ = p
}

func makeSlice(n int) []int { return make([]int, n) }

func leakyHelper(n int) []int { return makeSlice(n) }

// TransitiveAlloc is clean itself; the allocation two calls down must
// surface here, at the poisoning call site.
//
//lint:noalloc
func TransitiveAlloc(n int) []int {
	return leakyHelper(n) // want noalloc
}

// CleanKernel is the accept shape: pure index arithmetic over
// caller-owned slices, with a cold panic guard that may format.
//
//lint:noalloc
func CleanKernel(dst, src []uint64, w uint64) {
	if len(src) < len(dst) {
		panic(fmt.Sprintf("allocdemo: src %d < dst %d", len(src), len(dst)))
	}
	for i := range dst {
		dst[i] = src[i] * w
	}
}

// ColdError may construct its error: a return producing a fresh
// fmt.Errorf is a cold exit, not steady state.
//
//lint:noalloc
func ColdError(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("allocdemo: negative n %d", n)
	}
	return n * 2, nil
}

func cleanHelper(dst []uint64) {
	for i := range dst {
		dst[i]++
	}
}

// CallsClean exercises both edge kinds that must stay silent: an
// annotated callee (its own contract) and a clean unannotated helper.
//
//lint:noalloc
func CallsClean(dst, src []uint64) {
	CleanKernel(dst, src, 3)
	cleanHelper(dst)
}

// ValueLiteral: value struct literals live in the frame and are exempt.
//
//lint:noalloc
func ValueLiteral(a, b int) int {
	p := pair{a, b}
	return p.a + p.b
}

// InterfaceCall: calls through interface methods are a documented
// exemption (target unknown statically).
//
//lint:noalloc
func InterfaceCall(b boxer) int { return b.sum() }

// fill declares its arena growth: the make runs once per size change,
// not per op.
//
//lint:noalloc
func (s *state) fill(n int) {
	if cap(s.tmp) < n {
		//lint:prealloc arena grows once per size change, not per op
		s.tmp = make([]uint64, n)
	}
	s.tmp = s.tmp[:n]
	for i := range s.tmp {
		s.tmp[i] = 0
	}
}

// AllowedLazyInit: an explained allow inside the annotated function
// suppresses the site.
//
//lint:noalloc
func AllowedLazyInit(s *state) {
	if s.tmp == nil {
		s.tmp = make([]uint64, 16) //lint:allow noalloc one-time lazy arena fill, amortized over the session
	}
}

func allowedHelper(s *state) {
	s.tmp = append(s.tmp, 1) //lint:allow noalloc amortized growth, demonstrates allows folding into summaries
}

// CallsAllowedHelper must stay clean: the helper's allowed site does
// not poison its callers.
//
//lint:noalloc
func CallsAllowedHelper(s *state) { allowedHelper(s) }

// evenSteps/oddSteps: an allocation-free mutually recursive cycle must
// verify clean (optimistic cycle handling).
//
//lint:noalloc
func evenSteps(n int) bool {
	if n == 0 {
		return true
	}
	return oddSteps(n - 1)
}

func oddSteps(n int) bool {
	if n == 0 {
		return false
	}
	return evenSteps(n - 1)
}
