module tagged

go 1.23
