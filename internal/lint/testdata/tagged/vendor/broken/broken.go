also not Go ]]]
