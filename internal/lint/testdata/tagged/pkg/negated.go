//go:build !sometag

// A negated constraint evaluates true with every tag false, so this
// file IS loaded on every host.
package pkg

// Negated proves negated-constraint files participate in the package.
const Negated = Value + 1
