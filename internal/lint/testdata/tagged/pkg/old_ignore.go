//go:build ignore
// +build ignore

// Old-style +build ignore: excluded everywhere.
package pkg

var fromOldIgnore = alsoUndefined
