//go:build sometag

// This file is excluded by its build constraint (evaluated with every
// tag false); if the loader ever included it, type-checking would fail
// on the undefined identifier below.
package pkg

var fromConstrained = thisIdentifierDoesNotExist
