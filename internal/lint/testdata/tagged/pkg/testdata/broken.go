nested testdata garbage >>>
