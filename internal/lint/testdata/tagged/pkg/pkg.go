// Package pkg is the tagged-module fixture: its siblings carry build
// constraints, platform suffixes, and generated headers that the loader
// must handle deterministically on every host.
package pkg

// Value is referenced by nothing; the package just has to type-check.
const Value = 1
