this is not Go at all {{{
