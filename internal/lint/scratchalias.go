package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ScratchAlias guards the ShallowCopy concurrency contract: the mutable
// per-worker scratch state (bfv.Evaluator arenas, Encoders, pack.Scratch,
// lwe.Switcher — anything with a ShallowCopy method or holding such a
// value) must not be shared across the closures that par.ForEach and
// par.NewPool run from several goroutines. parsafe already catches raw
// captured *writes*; this pass catches the subtler aliasing bugs where a
// captured scratch pointer is handed onward — a method call, a call
// argument, a struct literal, a fresh alias — and two workers end up
// stomping the same staging buffers.
//
// A "scratch type" is a module-declared named type that has a
// ShallowCopy method, is named Encoder/Scratch/Switcher, or is a struct
// holding such a type (transitively). par.Pool itself is exempt: it is
// the approved mutex-guarded distributor of per-worker scratch.
//
// Inside a worker closure, a captured scratch value may be used as:
//
//   - the receiver of ShallowCopy (that is the blessed fork),
//   - a plain read of a non-scratch field (immutable plan/config data),
//   - an element selected through an index that involves a closure-local
//     variable (per-worker indexing, e.g. lanes[w]).
//
// Every other use — calling any other method on it, passing it to a
// function, storing it in a composite literal, re-aliasing it with an
// assignment, taking its address, returning it — is flagged. Calls that
// are genuinely safe (read-only methods, state guarded by the pool's
// own mutex) get a justified //lint:allow scratchalias.
type ScratchAlias struct{}

// Name implements Pass.
func (*ScratchAlias) Name() string { return "scratchalias" }

// Doc implements Pass.
func (*ScratchAlias) Doc() string {
	return "mutable scratch (ShallowCopy types) captured and shared across par.ForEach / par.NewPool worker closures"
}

// Run implements Pass.
func (p *ScratchAlias) Run(prog *Program) []Finding {
	var findings []Finding
	memo := map[types.Type]int{} // 0 unknown, 1 visiting/false, 2 true, 3 false
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				lit := workerClosure(pkg, call)
				if lit == nil {
					return true
				}
				findings = append(findings, p.checkClosure(prog, pkg, lit, memo)...)
				return true
			})
		}
	}
	return findings
}

// workerClosure returns the function literal that call hands to
// par.ForEach (last argument) or par.NewPool (first argument), or nil.
func workerClosure(pkg *Package, call *ast.CallExpr) *ast.FuncLit {
	fun := ast.Unparen(call.Fun)
	var obj types.Object
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[f.Sel]
	case *ast.IndexExpr: // explicit instantiation par.NewPool[T]
		if sel, ok := ast.Unparen(f.X).(*ast.SelectorExpr); ok {
			obj = pkg.Info.Uses[sel.Sel]
		}
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if path != "par" && !strings.HasSuffix(path, "/par") {
		return nil
	}
	var arg ast.Expr
	switch fn.Name() {
	case "ForEach":
		if len(call.Args) < 1 {
			return nil
		}
		arg = call.Args[len(call.Args)-1]
	case "NewPool":
		if len(call.Args) < 1 {
			return nil
		}
		arg = call.Args[0]
	default:
		return nil
	}
	lit, _ := ast.Unparen(arg).(*ast.FuncLit)
	return lit
}

// checkClosure flags escaping uses of captured scratch values inside one
// worker closure.
func (p *ScratchAlias) checkClosure(prog *Program, pkg *Package, lit *ast.FuncLit, memo map[types.Type]int) []Finding {
	parents := parentMap(lit.Body)
	local := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}
	var findings []Finding
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, name, what string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		findings = append(findings, Finding{
			Pass: "scratchalias",
			Pos:  prog.Fset.Position(pos),
			Message: fmt.Sprintf("captured scratch %q %s inside a worker closure: fork it with ShallowCopy or select per-worker state (lanes.Get(w), s[w])",
				name, what),
		})
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || local(v) || v.IsField() {
			return true
		}
		if !isScratchType(prog, v.Type(), memo) {
			return true
		}
		p.classifyUse(pkg, id, parents, local, memo, prog, report)
		return true
	})
	return findings
}

// classifyUse walks up from a captured scratch identifier and decides
// whether the use escapes the closure's per-worker discipline.
func (p *ScratchAlias) classifyUse(pkg *Package, id *ast.Ident, parents map[ast.Node]ast.Node,
	local func(types.Object) bool, memo map[types.Type]int, prog *Program,
	report func(token.Pos, string, string)) {

	var node ast.Node = id
	for {
		parent := parents[node]
		if parent == nil {
			return
		}
		switch pe := parent.(type) {
		case *ast.ParenExpr:
			node = pe
			continue
		case *ast.SelectorExpr:
			if pe.X != node {
				return // we are the Sel of someone else's selector
			}
			// Method call x.M(...)?
			if call, ok := parents[pe].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == pe {
				if pe.Sel.Name == "ShallowCopy" {
					return // the blessed per-worker fork
				}
				report(id.Pos(), id.Name, fmt.Sprintf("receives method call .%s", pe.Sel.Name))
				return
			}
			if sel, ok := pkg.Info.Selections[pe]; ok && sel.Kind() == types.MethodVal {
				report(id.Pos(), id.Name, fmt.Sprintf("escapes as method value .%s", pe.Sel.Name))
				return
			}
			// Plain field read: safe unless the field itself is scratch,
			// in which case the alias continues and we keep walking.
			if tv, ok := pkg.Info.Types[pe]; ok && tv.Type != nil && isScratchType(prog, tv.Type, memo) {
				node = pe
				continue
			}
			return
		case *ast.IndexExpr:
			if pe.X != node {
				return // we appear in the index expression: length math
			}
			if indexMentionsLocal(pkg, pe.Index, local) {
				return // per-worker element selection
			}
			node = pe // fixed-position element: alias continues
			continue
		case *ast.SliceExpr, *ast.StarExpr:
			node = pe.(ast.Expr)
			continue
		case *ast.UnaryExpr:
			if pe.Op == token.AND {
				report(id.Pos(), id.Name, "has its address taken")
				return
			}
			return
		case *ast.CallExpr:
			for _, arg := range pe.Args {
				if ast.Unparen(arg) == node {
					report(id.Pos(), id.Name, "is passed as a call argument")
					return
				}
			}
			return
		case *ast.CompositeLit:
			report(id.Pos(), id.Name, "is stored in a composite literal")
			return
		case *ast.KeyValueExpr:
			if pe.Value == node {
				report(id.Pos(), id.Name, "is stored in a composite literal")
			}
			return
		case *ast.AssignStmt:
			for _, rhs := range pe.Rhs {
				if ast.Unparen(rhs) == node {
					report(id.Pos(), id.Name, "is re-aliased by an assignment")
					return
				}
			}
			return
		case *ast.ReturnStmt:
			report(id.Pos(), id.Name, "is returned from the closure")
			return
		default:
			return
		}
	}
}

// parentMap records each node's syntactic parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// isScratchType reports whether t is (or points to, or holds) mutable
// per-worker scratch. Memoized; cycles resolve to false.
func isScratchType(prog *Program, t types.Type, memo map[types.Type]int) bool {
	t = derefAll(t)
	switch memo[t] {
	case 2:
		return true
	case 1, 3:
		return false
	}
	memo[t] = 1 // visiting
	res := scratchTypeUncached(prog, t, memo)
	if res {
		memo[t] = 2
	} else {
		memo[t] = 3
	}
	return res
}

func scratchTypeUncached(prog *Program, t types.Type, memo map[types.Type]int) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path != prog.ModulePath && !strings.HasPrefix(path, prog.ModulePath+"/") {
		return false
	}
	// par.Pool is the approved distributor, not scratch itself.
	if obj.Name() == "Pool" && (path == "par" || strings.HasSuffix(path, "/par")) {
		return false
	}
	switch obj.Name() {
	case "Encoder", "Scratch", "Switcher":
		return true
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "ShallowCopy" {
			return true
		}
	}
	if st, ok := named.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if isScratchType(prog, st.Field(i).Type(), memo) {
				return true
			}
		}
	}
	return false
}

// derefAll strips pointer/slice/array wrappers down to the element type.
func derefAll(t types.Type) types.Type {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			return t
		}
	}
}
