package lint

import (
	"go/token"
	"sort"
	"strings"
)

// This file backs the `athena-lint -allows` audit mode: a flat,
// deterministic inventory of every lint annotation in the module, so
// reviewers can re-audit suppressions and contracts without grepping.
// Parsing here is deliberately lenient — malformed directives are the
// passes' job to reject; the audit lists them anyway so a broken
// directive is still visible in the inventory.

// Annotation is one lint directive found in source.
type Annotation struct {
	// Kind is the directive name: "allow", "declassify", "domain",
	// "holdok", "noalloc", or "prealloc".
	Kind string
	// Pass is the suppressed pass for allow directives; for the others
	// it is the pass that consumes the annotation.
	Pass string
	// Detail is the justification (allow/declassify/prealloc), the
	// domain signature (domain), or empty (noalloc).
	Detail string
	Pos    token.Position
}

// annotationKinds maps each directive to the pass that consumes it.
// allow is special-cased: its pass is named in the directive itself.
var annotationKinds = []struct{ kind, pass string }{
	{"allow", ""},
	{"declassify", "secrettaint"},
	{"domain", "moddomain"},
	{"holdok", "blockhold"},
	{"noalloc", "noalloc"},
	{"prealloc", "noalloc"},
}

// CollectAnnotations inventories every lint directive in the program,
// sorted by file, line, kind.
func CollectAnnotations(prog *Program) []Annotation {
	var out []Annotation
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "lint:")
					if !ok {
						continue
					}
					for _, k := range annotationKinds {
						tail, ok := strings.CutPrefix(rest, k.kind)
						if !ok || (tail != "" && !strings.HasPrefix(tail, " ")) {
							continue
						}
						a := Annotation{
							Kind:   k.kind,
							Pass:   k.pass,
							Detail: strings.TrimSpace(tail),
							Pos:    prog.Fset.Position(c.Pos()),
						}
						if k.kind == "allow" {
							fields := strings.SplitN(a.Detail, " ", 2)
							a.Pass = fields[0]
							if len(fields) == 2 {
								a.Detail = strings.TrimSpace(fields[1])
							} else {
								a.Detail = ""
							}
						}
						out = append(out, a)
						break
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Kind < b.Kind
	})
	return out
}
