package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSecretTaintFixture(t *testing.T) {
	checkPassAgainstMarkers(t, &SecretTaint{})
}

func TestScratchAliasFixture(t *testing.T) {
	checkPassAgainstMarkers(t, &ScratchAlias{})
}

func TestErrDropFixture(t *testing.T) {
	checkPassAgainstMarkers(t, &ErrDrop{})
}

// miniModule writes files into a temp dir and loads it as a module.
func miniModule(t *testing.T, files map[string]string) *Program {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		full := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	prog, err := LoadModule(dir)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestDeclassifyRequiresReason pins that a bare lint:declassify is a
// finding, not a silent sanitizer.
func TestDeclassifyRequiresReason(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module tmp\n\ngo 1.23\n",
		"a/a.go": `package a

// SecretKey makes this module carry a taint source.
type SecretKey struct{ S []int64 }

func use(sk *SecretKey) []int64 {
	//lint:declassify
	return sk.S
}
`,
	})
	fs := Run(prog, []Pass{&SecretTaint{}})
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "no reason") {
		t.Fatalf("findings = %v, want exactly the bare-declassify finding", fs)
	}
}

// TestSecretTaintSeededRegression is the in-tree version of the
// acceptance demo: a deliberate SecretKey flow into a serve encoder and
// into log formatting must be caught, including through a helper.
func TestSecretTaintSeededRegression(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module tmp\n\ngo 1.23\n",
		"bfv/keys.go": `package bfv

type SecretKey struct{ Value []uint64 }
`,
		"serve/proto.go": `package serve

func EncodeFrame(payload []byte) []byte { return payload }
`,
		"serve/leak.go": `package serve

import "tmp/bfv"

func Leak(sk *bfv.SecretKey) []byte {
	return EncodeFrame(flatten(sk.Value))
}

func flatten(v []uint64) []byte {
	out := make([]byte, len(v))
	for i, x := range v {
		out[i] = byte(x)
	}
	return out
}
`,
	})
	fs := Run(prog, []Pass{&SecretTaint{}})
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one (the EncodeFrame leak)", fs)
	}
	if !strings.Contains(fs[0].Message, "EncodeFrame") {
		t.Fatalf("finding %v does not name the encoder sink", fs[0])
	}
	if filepath.Base(fs[0].Pos.Filename) != "leak.go" {
		t.Fatalf("finding %v not located at the leaking call site", fs[0])
	}
}
