package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SecretTaint is the interprocedural dataflow pass guarding the serving
// contract "secret keys never leave the client": no secret-key material
// may reach the ASV1 wire encoders, fmt/log formatting (including error
// construction), or the metrics surface.
//
// Sources are type-based: any expression whose type is (a pointer to) a
// module-declared SecretKey, the PRNG state types (ring.Keystream,
// ring.Sampler, lwe.Stream), or the result of ring.RandomSeed. Selecting
// a field of a secret value (sk.Value, sk.S, sk.Signed) yields tainted
// data, and taint then propagates through assignments, indexing,
// arithmetic, conversions, append/copy, composite literals, and function
// calls — the last via per-function summaries computed bottom-up over
// the static call graph, so a helper that funnels its argument into
// fmt.Sprintf taints its call sites and a helper that returns
// secret-derived data taints its results.
//
// Sinks: every argument of fmt.* and log.* calls, and the arguments of
// the serving-layer byte/wire builders (functions named
// Encode*/Write*/Append*/Snapshot*/Record* declared in a serve package).
//
// Sanitizers: decryption and encryption declassify by construction —
// the plaintext belongs to the data owner and a ciphertext
// computationally hides its contents — so results of module functions
// named Decrypt*/decrypt*/Encrypt*/encrypt* are clean. Everything else
// needs an explicit, explained annotation on the flagged line (or the
// line above):
//
//	//lint:declassify <reason>
//
// which clears the taint of every expression on that line. A declassify
// with no reason is itself a finding. len/cap and comparisons drop
// taint (cardinalities and booleans are not key material), and struct
// field *writes* do not taint the whole struct — secret-typed fields
// are re-detected by type at every read, which keeps god-objects like
// core.Engine from poisoning every value derived from them. Sink
// summaries are likewise exported only for aggregate-typed parameters:
// a bare integer formatted by a leaf (a galois element or modulus in a
// panic message) does not turn every transitive caller into a sink,
// while scalar leaks inside the function that touches the secret are
// still reported directly.
type SecretTaint struct{}

// Name implements Pass.
func (*SecretTaint) Name() string { return "secrettaint" }

// Doc implements Pass.
func (*SecretTaint) Doc() string {
	return "secret-key material flowing into wire encoders, fmt/log, or metrics (interprocedural)"
}

// srcBit marks taint that originates at a secret source (as opposed to
// taint that merely depends on a parameter, which only matters to
// callers). Parameter i of a function is bit 1<<i.
const srcBit uint64 = 1 << 63

const maxTrackedParams = 62

// taintSummary is the bottom-up function summary.
type taintSummary struct {
	// retMask[i] is the taint of result i as a mask over parameter bits
	// (plus srcBit when an internal source reaches the result).
	retMask []uint64
	// sinkParams are the parameters that reach a sink inside the
	// function, directly or via callees.
	sinkParams uint64
	// sinkName names one sink reachable from sinkParams, for messages.
	sinkName string
}

func (s *taintSummary) equal(o *taintSummary) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.sinkParams != o.sinkParams || len(s.retMask) != len(o.retMask) {
		return false
	}
	for i := range s.retMask {
		if s.retMask[i] != o.retMask[i] {
			return false
		}
	}
	return true
}

// taintFn is one analyzable function body.
type taintFn struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// Run implements Pass.
func (p *SecretTaint) Run(prog *Program) []Finding {
	declass, findings := collectDeclassify(prog)

	// Function universe, in deterministic (package, file, decl) order.
	var fns []*taintFn
	byObj := map[*types.Func]*taintFn{}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &taintFn{obj: obj, decl: fd, pkg: pkg}
				fns = append(fns, fn)
				byObj[obj] = fn
			}
		}
	}

	// Bottom-up summaries to a fixpoint. Masks grow monotonically, so
	// the iteration converges; the bound is a safety net.
	summaries := map[*types.Func]*taintSummary{}
	for round := 0; round < 8; round++ {
		changed := false
		for _, fn := range fns {
			an := &taintAnalysis{prog: prog, pkg: fn.pkg, summaries: summaries, declass: declass}
			s := an.analyze(fn, nil)
			if !s.equal(summaries[fn.obj]) {
				summaries[fn.obj] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Reporting round with stable summaries.
	reported := map[token.Pos]bool{}
	for _, fn := range fns {
		an := &taintAnalysis{prog: prog, pkg: fn.pkg, summaries: summaries, declass: declass}
		an.analyze(fn, func(pos token.Pos, msg string) {
			if reported[pos] {
				return
			}
			reported[pos] = true
			findings = append(findings, Finding{Pass: "secrettaint", Pos: prog.Fset.Position(pos), Message: msg})
		})
	}
	return findings
}

// collectDeclassify parses every //lint:declassify directive; the
// returned map is filename -> set of directive lines. Directives with no
// reason are returned as findings.
func collectDeclassify(prog *Program) (map[string]map[int]bool, []Finding) {
	lines := map[string]map[int]bool{}
	var bad []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "lint:declassify")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					if strings.TrimSpace(rest) == "" {
						bad = append(bad, Finding{Pass: "secrettaint", Pos: pos,
							Message: "lint:declassify has no reason; unexplained sanitizers are forbidden"})
						continue
					}
					byLine := lines[pos.Filename]
					if byLine == nil {
						byLine = map[int]bool{}
						lines[pos.Filename] = byLine
					}
					byLine[pos.Line] = true
				}
			}
		}
	}
	return lines, bad
}

// taintAnalysis carries the per-function dataflow state.
type taintAnalysis struct {
	prog      *Program
	pkg       *Package
	summaries map[*types.Func]*taintSummary
	declass   map[string]map[int]bool

	masks  map[types.Object]uint64
	params map[types.Object]int
	report func(pos token.Pos, msg string)

	sum taintSummary
}

// analyze computes fn's summary; when report is non-nil it also emits
// findings for source-tainted sink arguments.
func (a *taintAnalysis) analyze(fn *taintFn, report func(token.Pos, string)) *taintSummary {
	a.report = report
	a.masks = map[types.Object]uint64{}
	a.params = map[types.Object]int{}
	a.sum = taintSummary{}

	sig := fn.obj.Type().(*types.Signature)
	idx := 0
	addParam := func(v *types.Var) {
		if v == nil || idx >= maxTrackedParams {
			return
		}
		a.params[v] = idx
		a.masks[v] = 1 << uint(idx)
		if a.secretType(v.Type()) {
			a.masks[v] |= srcBit
		}
		idx++
	}
	addParam(sig.Recv())
	for i := 0; i < sig.Params().Len(); i++ {
		addParam(sig.Params().At(i))
	}
	a.sum.retMask = make([]uint64, sig.Results().Len())

	// Inner fixpoint: masks only grow, so a few sweeps settle even with
	// use-before-def ordering (loops, closures).
	for sweep := 0; sweep < 8; sweep++ {
		before := a.snapshot()
		a.walkBody(fn.decl.Body, sig)
		if a.snapshot() == before {
			break
		}
	}
	// Reporting sweep runs once more with stable masks.
	if report != nil {
		a.walkBody(fn.decl.Body, sig)
	}
	s := a.sum
	return &s
}

func (a *taintAnalysis) snapshot() uint64 {
	var h uint64
	for o, m := range a.masks {
		h ^= m * uint64(o.Pos()+1)
	}
	for i, m := range a.sum.retMask {
		h ^= m << uint(i%8)
	}
	return h ^ a.sum.sinkParams
}

func (a *taintAnalysis) walkBody(body *ast.BlockStmt, sig *types.Signature) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			a.handleAssign(st)
		case *ast.ValueSpec:
			if len(st.Values) == len(st.Names) {
				for i, name := range st.Names {
					a.merge(name, a.exprMask(st.Values[i]))
				}
			} else if len(st.Values) == 1 {
				ms := a.callMasks(st.Values[0])
				for i, name := range st.Names {
					if i < len(ms) {
						a.merge(name, ms[i])
					}
				}
			}
		case *ast.RangeStmt:
			m := a.exprMask(st.X)
			if id, ok := st.Value.(*ast.Ident); ok {
				a.merge(id, m)
			}
		case *ast.ReturnStmt:
			for i, e := range st.Results {
				if i < len(a.sum.retMask) {
					a.sum.retMask[i] |= a.exprMask(e)
				}
			}
			if len(st.Results) == 1 && len(a.sum.retMask) > 1 {
				ms := a.callMasks(st.Results[0])
				for i := range a.sum.retMask {
					if i < len(ms) {
						a.sum.retMask[i] |= ms[i]
					}
				}
			}
		case *ast.ExprStmt:
			// Statement-position calls never flow through exprMask, so
			// trigger callMasks here for its side effects (copy's
			// dst-taint, summary-based sink reporting).
			if call, ok := st.X.(*ast.CallExpr); ok {
				a.callMasks(call)
			}
		case *ast.CallExpr:
			a.checkSink(st)
		}
		return true
	})
}

func (a *taintAnalysis) handleAssign(st *ast.AssignStmt) {
	if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
		ms := a.callMasks(st.Rhs[0])
		for i, lhs := range st.Lhs {
			var m uint64
			if i < len(ms) {
				m = ms[i]
			}
			a.assignTo(lhs, m)
		}
		return
	}
	for i, lhs := range st.Lhs {
		if i < len(st.Rhs) {
			a.assignTo(lhs, a.exprMask(st.Rhs[i]))
		}
	}
}

// assignTo propagates taint into an assignment target. Identifiers take
// the mask directly; slice-element writes taint the backing slice (a
// buffer being filled is as secret as its content). Struct field writes
// deliberately do not taint the container — see the package doc.
func (a *taintAnalysis) assignTo(lhs ast.Expr, m uint64) {
	switch e := lhs.(type) {
	case *ast.Ident:
		a.merge(e, m)
	case *ast.IndexExpr:
		if base := rootIdent(e.X); base != nil && m != 0 {
			a.mergeObj(a.objOf(base), m)
		}
	}
}

func (a *taintAnalysis) objOf(id *ast.Ident) types.Object {
	if o := a.pkg.Info.Defs[id]; o != nil {
		return o
	}
	return a.pkg.Info.Uses[id]
}

func (a *taintAnalysis) merge(id *ast.Ident, m uint64) {
	if id.Name == "_" || m == 0 {
		return
	}
	a.mergeObj(a.objOf(id), m)
}

func (a *taintAnalysis) mergeObj(o types.Object, m uint64) {
	if o == nil || m == 0 {
		return
	}
	a.masks[o] |= m
}

// declassified reports whether pos's line (or the line above) carries a
// declassify directive.
func (a *taintAnalysis) declassified(pos token.Pos) bool {
	p := a.prog.Fset.Position(pos)
	byLine := a.declass[p.Filename]
	return byLine != nil && (byLine[p.Line] || byLine[p.Line-1])
}

// exprMask computes the taint mask of e.
func (a *taintAnalysis) exprMask(e ast.Expr) uint64 {
	if e == nil {
		return 0
	}
	if a.declassified(e.Pos()) {
		return 0
	}
	var m uint64
	switch x := e.(type) {
	case *ast.Ident:
		m = a.masks[a.objOf(x)]
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := a.pkg.Info.Uses[id].(*types.PkgName); isPkg {
				m = a.masks[a.objOf(x.Sel)]
				break
			}
		}
		m = a.exprMask(x.X)
	case *ast.IndexExpr:
		m = a.exprMask(x.X)
	case *ast.SliceExpr:
		m = a.exprMask(x.X)
	case *ast.StarExpr:
		m = a.exprMask(x.X)
	case *ast.ParenExpr:
		m = a.exprMask(x.X)
	case *ast.UnaryExpr:
		m = a.exprMask(x.X)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return 0 // booleans are not key material
		}
		m = a.exprMask(x.X) | a.exprMask(x.Y)
	case *ast.CallExpr:
		ms := a.callMasks(x)
		for _, r := range ms {
			m |= r
		}
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				m |= a.exprMask(kv.Value)
			} else {
				m |= a.exprMask(elt)
			}
		}
	case *ast.TypeAssertExpr:
		m = a.exprMask(x.X)
	}
	if tv, ok := a.pkg.Info.Types[e]; ok && tv.Type != nil && a.secretType(tv.Type) {
		m |= srcBit
	}
	return m
}

// callMasks computes the per-result taint of a call (or of any
// expression, treated as a single result).
func (a *taintAnalysis) callMasks(e ast.Expr) []uint64 {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return []uint64{a.exprMask(e)}
	}
	if a.declassified(call.Pos()) {
		return []uint64{0}
	}

	// Conversions pass taint through.
	if tv, ok := a.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		var m uint64
		for _, arg := range call.Args {
			m |= a.exprMask(arg)
		}
		return []uint64{m}
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := a.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "new", "make":
				return []uint64{0} // cardinalities and fresh memory are clean
			case "append":
				var m uint64
				for _, arg := range call.Args {
					m |= a.exprMask(arg)
				}
				return []uint64{m}
			case "copy":
				if len(call.Args) == 2 {
					if src := a.exprMask(call.Args[1]); src != 0 {
						if base := rootIdent(call.Args[0]); base != nil {
							a.mergeObj(a.objOf(base), src)
						}
					}
				}
				return []uint64{0}
			default:
				return []uint64{0}
			}
		}
	}

	callee := a.staticCallee(call)
	argExprs := a.callArgs(call, callee)

	// Module-internal declassifiers: decryption yields the data owner's
	// plaintext, encryption yields a ciphertext that hides its content.
	if callee != nil && a.inModule(callee.Pkg()) {
		name := callee.Name()
		if strings.HasPrefix(name, "Decrypt") || strings.HasPrefix(name, "decrypt") ||
			strings.HasPrefix(name, "Encrypt") || strings.HasPrefix(name, "encrypt") {
			// Arguments were already checked against sinks inside the
			// callee; the results are clean by construction.
			nres := 1
			if sig, ok := callee.Type().(*types.Signature); ok {
				nres = sig.Results().Len()
			}
			return make([]uint64, nres)
		}
	}

	// Secret source: fresh seed entropy.
	if callee != nil && callee.Name() == "RandomSeed" && a.inModule(callee.Pkg()) {
		return []uint64{srcBit, 0}
	}

	if callee != nil {
		if sum, ok := a.summaries[callee]; ok {
			// Known module function: map argument taint through the
			// callee's summary.
			argMask := func(i int) uint64 {
				if i < len(argExprs) {
					return a.exprMask(argExprs[i])
				}
				return 0
			}
			if sum.sinkParams != 0 {
				for i := range argExprs {
					if sum.sinkParams&(1<<uint(i)) == 0 {
						continue
					}
					m := a.exprMask(argExprs[i])
					a.recordSink(argExprs[i], m,
						fmt.Sprintf("%s (via %s)", sum.sinkName, shortName(callee)))
				}
			}
			res := make([]uint64, len(sum.retMask))
			for r, rm := range sum.retMask {
				if rm&srcBit != 0 {
					res[r] |= srcBit
				}
				for i := 0; i < maxTrackedParams; i++ {
					if rm&(1<<uint(i)) != 0 {
						res[r] |= argMask(i)
					}
				}
			}
			return res
		}
	}

	// Unknown callee (standard library, function values, interface
	// methods): assume results depend on every argument.
	var m uint64
	for _, arg := range argExprs {
		m |= a.exprMask(arg)
	}
	nres := 1
	if callee != nil {
		if sig, ok := callee.Type().(*types.Signature); ok {
			nres = sig.Results().Len()
		}
	} else if tv, ok := a.pkg.Info.Types[call]; ok {
		if tup, ok := tv.Type.(*types.Tuple); ok {
			nres = tup.Len()
		}
	}
	if nres == 0 {
		return nil
	}
	res := make([]uint64, nres)
	for i := range res {
		res[i] = m
	}
	return res
}

// callArgs returns the call's value operands aligned to the summary's
// parameter indexing: receiver first for method calls, then arguments.
func (a *taintAnalysis) callArgs(call *ast.CallExpr, callee *types.Func) []ast.Expr {
	var args []ast.Expr
	if callee != nil {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				args = append(args, sel.X)
			}
		}
	}
	return append(args, call.Args...)
}

// staticCallee resolves call's target when it is a plain function or
// method reference.
func (a *taintAnalysis) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := a.pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := a.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// checkSink inspects one call: if it targets a formatting/logging/wire
// sink, every argument's taint is recorded (parameter bits feed the
// summary; srcBit emits a finding in the reporting round).
func (a *taintAnalysis) checkSink(call *ast.CallExpr) {
	callee := a.staticCallee(call)
	if callee == nil {
		return
	}
	sink := a.sinkNameFor(callee)
	if sink == "" {
		return
	}
	for _, arg := range call.Args {
		a.recordSink(arg, a.exprMask(arg), sink)
	}
}

// recordSink folds one sink-reaching mask into the summary and, in the
// reporting round, emits a finding for source taint.
func (a *taintAnalysis) recordSink(arg ast.Expr, m uint64, sink string) {
	if m == 0 || a.declassified(arg.Pos()) {
		return
	}
	// Interprocedural sink summaries are exported only for aggregate-typed
	// arguments (slices, structs, pointers, strings). A lone integer
	// crossing a function boundary into a format call is overwhelmingly a
	// public length, index, or protocol constant (galois elements, moduli
	// in panic messages), and the flow-insensitive mask merge would
	// otherwise drag whole receivers into the sink set. In-function scalar
	// leaks are still reported through the srcBit check below.
	if pm := m &^ srcBit; pm != 0 && !scalarExpr(a.pkg, arg) {
		a.sum.sinkParams |= pm
		if a.sum.sinkName == "" {
			a.sum.sinkName = sink
		}
	}
	if m&srcBit != 0 && a.report != nil {
		a.report(arg.Pos(), fmt.Sprintf(
			"secret-key material reaches %s: secrets must never be formatted, logged, or wire-encoded (declassify explicitly with //lint:declassify <reason> if provably public)",
			sink))
	}
}

// scalarExpr reports whether e's static type is a bare scalar (integer,
// boolean, float, complex) — a value that cannot hold key material in
// aggregate.
func scalarExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean|types.IsFloat|types.IsComplex) != 0
}

// sinkNameFor classifies callee as a sink, returning a display name or "".
func (a *taintAnalysis) sinkNameFor(callee *types.Func) string {
	pkg := callee.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "fmt", "log":
		return pkg.Path() + "." + callee.Name()
	}
	if a.inModule(pkg) && inServePackage(a.prog, pkg.Path()) {
		name := callee.Name()
		for _, pre := range []string{"Encode", "encode", "Write", "write", "Append", "append", "Snapshot", "Record", "record"} {
			if strings.HasPrefix(name, pre) {
				return shortName(callee)
			}
		}
	}
	return ""
}

// inServePackage reports whether pkgPath has a "serve" path component —
// the serving layer whose encoders and metrics are the wire sinks.
func inServePackage(prog *Program, pkgPath string) bool {
	rel := strings.TrimPrefix(pkgPath, prog.ModulePath+"/")
	for _, part := range strings.Split(rel, "/") {
		if part == "serve" {
			return true
		}
	}
	return false
}

func (a *taintAnalysis) inModule(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == a.prog.ModulePath ||
		strings.HasPrefix(pkg.Path(), a.prog.ModulePath+"/"))
}

// secretType reports whether t is (a pointer to, or slice of) a
// module-declared secret-material type: a SecretKey anywhere, or the
// PRNG state types of the ring/lwe packages.
func (a *taintAnalysis) secretType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !a.inModule(obj.Pkg()) {
		return false
	}
	switch obj.Name() {
	case "SecretKey":
		return true
	case "Keystream", "Sampler":
		return strings.HasSuffix(obj.Pkg().Path(), "ring")
	case "Stream":
		return strings.HasSuffix(obj.Pkg().Path(), "lwe")
	}
	return false
}
