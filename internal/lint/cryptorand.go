package lint

import (
	"fmt"
	"strings"
)

// CryptoRand forbids math/rand (v1 and v2) in the packages that touch
// key or noise material: a PRNG whose stream an attacker can predict
// from a handful of outputs voids every LWE hardness assumption in the
// stack. The single approved source is the seeded ChaCha8 keystream in
// internal/ring (which carries its own explained lint:allow), plus
// crypto/rand for seed entropy.
//
// Training-side packages (internal/qnn) and test files are deliberately
// out of scope: deterministic math/rand is legitimate scaffolding there.
// Flagging the import spec is sufficient to cover every call: Go
// requires the import in each file that names the package.
type CryptoRand struct{}

// cryptoPackages are the module-relative package paths holding secret or
// noise material.
var cryptoPackages = map[string]bool{
	"internal/ring":     true,
	"internal/lwe":      true,
	"internal/bfv":      true,
	"internal/noise":    true,
	"internal/security": true,
}

// Name implements Pass.
func (*CryptoRand) Name() string { return "cryptorand" }

// Doc implements Pass.
func (*CryptoRand) Doc() string {
	return "math/rand imports in crypto packages (ring, lwe, bfv, noise, security)"
}

// Run implements Pass.
func (c *CryptoRand) Run(prog *Program) []Finding {
	var findings []Finding
	for _, pkg := range prog.Packages {
		if !cryptoPackages[relPkgPath(prog, pkg)] {
			continue
		}
		for _, file := range pkg.Files {
			for _, spec := range file.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if path != "math/rand" && path != "math/rand/v2" {
					continue
				}
				findings = append(findings, Finding{
					Pass: "cryptorand",
					Pos:  prog.Fset.Position(spec.Pos()),
					Message: fmt.Sprintf(
						"%s imported in crypto package %s: secret/noise sampling must use the ring sampler (seeded ChaCha8) or crypto/rand",
						path, relPkgPath(prog, pkg)),
				})
			}
		}
	}
	return findings
}
