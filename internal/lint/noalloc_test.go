package lint

import (
	"strings"
	"testing"
)

func TestNoAllocFixture(t *testing.T) {
	checkPassAgainstMarkers(t, &NoAlloc{})
}

// TestPreallocRequiresReason pins that a bare lint:prealloc is a
// finding, not a silent growth exemption — and that it consequently
// does not exempt the site it sits on.
func TestPreallocRequiresReason(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": `package a

type arena struct{ buf []uint64 }

//lint:noalloc
func (a *arena) fill(n int) {
	if cap(a.buf) < n {
		//lint:prealloc
		a.buf = make([]uint64, n)
	}
	a.buf = a.buf[:n]
}
`,
	})
	fs := Run(prog, []Pass{&NoAlloc{}})
	var sawBare, sawSite bool
	for _, f := range fs {
		if f.Pass != "noalloc" {
			t.Errorf("unexpected pass %s: %s", f.Pass, f)
			continue
		}
		switch {
		case strings.Contains(f.Message, "has no reason"):
			sawBare = true
		case strings.Contains(f.Message, "make allocates"):
			sawSite = true
		}
	}
	if !sawBare {
		t.Error("bare lint:prealloc not reported")
	}
	if !sawSite {
		t.Error("make under a bare lint:prealloc must still be a finding")
	}
}

// TestNoAllocWitnessChain pins the transitive explanation: the finding
// at the annotated root names the call chain down to the allocating
// expression.
func TestNoAllocWitnessChain(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": `package a

import "m/b"

//lint:noalloc
func Root(n int) []int {
	return b.Middle(n)
}
`,
		"b/b.go": `package b

func Middle(n int) []int { return leaf(n) }

func leaf(n int) []int { return make([]int, n) }
`,
	})
	fs := Run(prog, []Pass{&NoAlloc{}})
	if len(fs) != 1 {
		t.Fatalf("want exactly one finding, got %d: %v", len(fs), fs)
	}
	msg := fs[0].Message
	for _, want := range []string{"a.Root", "b.Middle", "b.leaf", "make allocates", "b.go:5"} {
		if !strings.Contains(msg, want) {
			t.Errorf("witness chain missing %q in %q", want, msg)
		}
	}
}

// TestNoAllocColdPathsExempt pins that validation panics and fresh
// error returns may allocate their diagnostics.
func TestNoAllocColdPathsExempt(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": `package a

import "fmt"

type SizeError struct{ n int }

func (e *SizeError) Error() string { return "bad size" }

//lint:noalloc
func Kernel(dst, src []uint64) error {
	if len(dst) != len(src) {
		return &SizeError{n: len(dst)}
	}
	if len(dst) == 0 {
		panic(fmt.Sprintf("empty: %v", dst))
	}
	for i := range dst {
		dst[i] += src[i]
	}
	return nil
}
`,
	})
	if fs := Run(prog, []Pass{&NoAlloc{}}); len(fs) != 0 {
		t.Fatalf("cold allocation paths must be exempt, got %v", fs)
	}
}

// TestNoAllocInterfaceBoundary pins the documented exemption: calls
// through interface methods are not chased, but an explicit conversion
// into the interface is still flagged.
func TestNoAllocInterfaceBoundary(t *testing.T) {
	prog := miniModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": `package a

type sink interface{ Put(v int) }

//lint:noalloc
func Drain(s sink, xs []int) {
	for _, x := range xs {
		s.Put(x)
	}
}

//lint:noalloc
func Box(xs []int) sink {
	return sink(nil)
}
`,
	})
	fs := Run(prog, []Pass{&NoAlloc{}})
	if len(fs) != 1 {
		t.Fatalf("want one finding (the conversion), got %d: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Message, "boxes its operand") {
		t.Errorf("unexpected finding %v", fs[0])
	}
}
