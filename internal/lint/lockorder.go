package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder is the interprocedural deadlock pass: it composes every
// function's mutex acquisitions (conc.go summaries) into one
// module-wide lock-order graph and reports
//
//   - re-acquisition: taking a mutex that the may-held analysis says is
//     already held — directly, or through a static call chain that
//     reaches another Lock of the same identity (sync.Mutex is not
//     reentrant; RLock-upgrade and RLock-after-Lock count too, since a
//     queued writer deadlocks both), and
//   - order cycles: a directed edge A → B is recorded whenever B is
//     acquired (directly or via calls) while A is held; any cycle in
//     the edge graph is a potential deadlock. Each edge on the cycle
//     gets one finding carrying its own witness chain plus the cycle,
//     so both (or all) implicated sites are visible — the two witness
//     chains of an AB/BA inversion land on the two offending lines.
//
// Lock identity is the *types.Var behind the expression (struct field,
// package var, or local), so every instance of a type shares one node —
// the right granularity for ordering discipline, at the cost of
// conservatively merging hand-over-hand locking over distinct
// instances (the repo has none). TryLock never blocks and contributes
// no edges. Function literals contribute their internal edges to the
// global graph (they run eventually, on some goroutine) but are atoms
// to their enclosing function's flow.
type LockOrder struct{}

// Name implements Pass.
func (*LockOrder) Name() string { return "lockorder" }

// Doc implements Pass.
func (*LockOrder) Doc() string {
	return "module-wide mutex acquisition-order graph must be acyclic and re-acquisition-free (interprocedural, CFG-based)"
}

// lockEdge is one direction of the order graph with its first witness.
type lockEdge struct {
	from, to *types.Var
	pos      token.Pos
	witness  string
}

// transAcq is one mutex transitively acquired by a function, with the
// call chain that reaches its Lock.
type transAcq struct {
	mu    *types.Var
	chain string
}

// lockOrderState carries the composed graph.
type lockOrderState struct {
	prog      *Program
	decls     map[*types.Func]*concFn
	summaries map[*types.Func]*concSummary
	disp      map[*types.Var]string

	edges   []*lockEdge
	edgeIdx map[[2]*types.Var]*lockEdge
	adj     map[*types.Var][]*lockEdge

	transMemo map[*types.Func][]transAcq
}

// Run implements Pass.
func (p *LockOrder) Run(prog *Program) []Finding {
	allows, _ := collectAllows(prog)
	holdok, _ := collectHoldok(prog) // parsed for summary symmetry; findings are blockhold's
	fns, decls := collectConcFns(prog)

	st := &lockOrderState{
		prog:      prog,
		decls:     decls,
		summaries: map[*types.Func]*concSummary{},
		disp:      map[*types.Var]string{},
		edgeIdx:   map[[2]*types.Var]*lockEdge{},
		adj:       map[*types.Var][]*lockEdge{},
		transMemo: map[*types.Func][]transAcq{},
	}
	sums := make([]*concSummary, len(fns))
	for i, fn := range fns {
		sums[i] = buildConcSummary(prog, fn.pkg, fn.body, allows, holdok, st.disp)
		if fn.obj != nil {
			st.summaries[fn.obj] = sums[i]
		}
	}

	var findings []Finding
	for i, fn := range fns {
		sum := sums[i]
		for _, a := range sum.acquires {
			site := fmt.Sprintf("%s acquires %s at %s", fn.name, st.disp[a.mu], st.shortPos(a.pos))
			for _, h := range a.held {
				if h == a.mu {
					findings = append(findings, Finding{Pass: "lockorder", Pos: prog.Fset.Position(a.pos),
						Message: fmt.Sprintf("%s re-acquired while already held (sync mutexes are not reentrant): %s", st.disp[a.mu], site)})
					continue
				}
				st.addEdge(h, a.mu, a.pos, site+fmt.Sprintf(" while holding %s", st.disp[h]))
			}
		}
		for _, c := range sum.calls {
			if len(c.held) == 0 {
				continue
			}
			for _, t := range st.transAcquires(c.callee) {
				site := fmt.Sprintf("%s calls %s at %s → %s", fn.name, shortName(c.callee), st.shortPos(c.pos), t.chain)
				for _, h := range c.held {
					if h == t.mu {
						findings = append(findings, Finding{Pass: "lockorder", Pos: prog.Fset.Position(c.pos),
							Message: fmt.Sprintf("call re-acquires %s, already held here (sync mutexes are not reentrant): %s", st.disp[t.mu], site)})
						continue
					}
					st.addEdge(h, t.mu, c.pos, site+fmt.Sprintf(" while holding %s", st.disp[h]))
				}
			}
		}
	}

	findings = append(findings, st.cycleFindings()...)
	return findings
}

func (st *lockOrderState) shortPos(pos token.Pos) string {
	p := st.prog.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// addEdge records from → to once, keeping the first witness.
func (st *lockOrderState) addEdge(from, to *types.Var, pos token.Pos, witness string) {
	key := [2]*types.Var{from, to}
	if st.edgeIdx[key] != nil {
		return
	}
	e := &lockEdge{from: from, to: to, pos: pos, witness: witness}
	st.edges = append(st.edges, e)
	st.edgeIdx[key] = e
	st.adj[from] = append(st.adj[from], e)
}

// transAcquires returns every mutex fn transitively acquires through
// static module calls, each with a witness chain. In-progress cycle
// members answer empty (a recursive cycle adds nothing new); results
// are memoized.
func (st *lockOrderState) transAcquires(fn *types.Func) []transAcq {
	if got, ok := st.transMemo[fn]; ok {
		return got
	}
	sum := st.summaries[fn]
	if sum == nil {
		st.transMemo[fn] = nil
		return nil
	}
	st.transMemo[fn] = []transAcq{} // in-progress marker: recursion sees empty
	var out []transAcq
	seen := map[*types.Var]bool{}
	for _, a := range sum.acquires {
		if seen[a.mu] {
			continue
		}
		seen[a.mu] = true
		out = append(out, transAcq{mu: a.mu,
			chain: fmt.Sprintf("%s acquires %s at %s", shortName(fn), st.disp[a.mu], st.shortPos(a.pos))})
	}
	for _, c := range sum.calls {
		for _, t := range st.transAcquires(c.callee) {
			if seen[t.mu] {
				continue
			}
			seen[t.mu] = true
			out = append(out, transAcq{mu: t.mu,
				chain: fmt.Sprintf("%s calls %s at %s → %s", shortName(fn), shortName(c.callee), st.shortPos(c.pos), t.chain)})
		}
	}
	st.transMemo[fn] = out
	return out
}

// cycleFindings detects cycles in the edge graph and emits one finding
// per participating edge. Each cycle is reported once, keyed by the
// sorted set of lock names on it.
func (st *lockOrderState) cycleFindings() []Finding {
	var findings []Finding
	reported := map[string]bool{}
	for _, e := range st.edges {
		path := st.findPath(e.to, e.from)
		if path == nil {
			continue
		}
		cycle := append([]*lockEdge{e}, path...)
		names := make([]string, len(cycle))
		for i, ce := range cycle {
			names[i] = st.disp[ce.from]
		}
		key := canonicalCycle(names)
		if reported[key] {
			continue
		}
		reported[key] = true
		ring := strings.Join(append(names, names[0]), " → ")
		for _, ce := range cycle {
			others := make([]string, 0, len(cycle)-1)
			for _, oe := range cycle {
				if oe != ce {
					others = append(others, oe.witness)
				}
			}
			findings = append(findings, Finding{Pass: "lockorder", Pos: st.prog.Fset.Position(ce.pos),
				Message: fmt.Sprintf("potential deadlock: lock-order cycle %s. This edge: %s. Completing edge(s): %s",
					ring, ce.witness, strings.Join(others, "; "))})
		}
	}
	return findings
}

// findPath returns the edges of one path from → to (BFS over insertion
// order, so deterministic), or nil.
func (st *lockOrderState) findPath(from, to *types.Var) []*lockEdge {
	type hop struct {
		v    *types.Var
		via  *lockEdge
		prev *hop
	}
	visited := map[*types.Var]bool{from: true}
	queue := []*hop{{v: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.v == to {
			var path []*lockEdge
			for h := cur; h.via != nil; h = h.prev {
				path = append([]*lockEdge{h.via}, path...)
			}
			return path
		}
		for _, e := range st.adj[cur.v] {
			if !visited[e.to] {
				visited[e.to] = true
				queue = append(queue, &hop{v: e.to, via: e, prev: cur})
			}
		}
	}
	return nil
}

// canonicalCycle keys a cycle independent of its starting point.
func canonicalCycle(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	return strings.Join(sorted, "|")
}
