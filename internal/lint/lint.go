// Package lint implements athena-lint, the FHE-aware static-analysis
// suite guarding the invariants the Go compiler cannot see:
//
//   - modguard: modular arithmetic on ring-coefficient uint64s must go
//     through the Barrett/Shoup helpers in internal/ring — a raw `%` or
//     an unchecked multiply silently corrupts NTT limbs.
//   - cryptorand: secret/noise sampling in crypto packages must never
//     touch math/rand; the seeded ChaCha8 core in internal/ring is the
//     single approved keystream.
//   - parsafe: closures handed to par.ForN / par.Chunks may only write
//     index-derived state; anything else is a data race the scheduler
//     hides most days.
//   - panicfree-wire: no panic may be reachable from the wire
//     deserialization entry points — a malicious ciphertext must yield
//     an error, not a crash.
//   - errdrop: statement-position calls in internal/core,
//     internal/serve, internal/cluster, and internal/store must not
//     silently discard an error result.
//
// On top of the syntactic passes sit four dataflow passes built on
// function summaries over the go/types call graph:
//
//   - secrettaint: interprocedural taint from secret-key material
//     (SecretKey, PRNG keystreams, seed entropy) to the wire encoders,
//     fmt/log formatting, and metrics — "secret keys never leave the
//     client", machine-checked. Sanitize with //lint:declassify <reason>.
//   - scratchalias: per-worker scratch (ShallowCopy types) captured by
//     par.ForEach / par.NewPool closures must be forked or selected
//     per-worker, never shared by alias.
//   - moddomain: Longa–Naehrig lazy-reduction domains (<q, <2q, <4q)
//     declared via //lint:domain annotations on the ring kernels are
//     abstract-interpreted through every caller; mixing (a <4q
//     intermediate into a <2q input) is rejected.
//   - noalloc: functions annotated //lint:noalloc — and everything they
//     transitively call through static module calls — are proven free
//     of heap allocation outside CFG-cold panic/error paths; arena
//     refills are declared with //lint:prealloc <reason>.
//
// Three concurrency passes share a lock/channel identity model and a
// may-held dataflow over the same CFG (conc.go):
//
//   - lockorder: per-function lock-acquisition summaries compose into a
//     module-wide lock-order graph; re-acquiring a held lock or any
//     edge on a cycle is a potential deadlock, reported with a witness
//     chain.
//   - blockhold: blocking operations (channel ops, default-less
//     selects, sleeps, Waits, fsync, io/net streams) while a mutex is
//     statically held; deliberate holds are justified in place with
//     //lint:holdok <reason>.
//   - goleak: every go statement needs a provable termination argument
//     (WaitGroup accounting, closed-channel range, bounded channel
//     protocol, or a loop-exiting cancellation select).
//
// Everything is built on the standard library only (go/ast, go/parser,
// go/types); go.mod stays bare. Findings can be suppressed in source
// with an explained comment:
//
//	//lint:allow <pass> <reason>
//
// either at the end of the offending line or on its own line directly
// above it. The reason is mandatory: a bare suppression is itself
// reported as a finding. Findings located in generated files
// ("Code generated … DO NOT EDIT.") are dropped: generated code is
// fixed at its generator.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a pass.
type Finding struct {
	Pass    string
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Pass, f.Message)
}

// Pass is one analyzer. Run inspects the whole program so that
// cross-package passes (panicfree-wire's call-graph walk) share the same
// interface as per-package ones.
type Pass interface {
	Name() string
	Doc() string
	Run(prog *Program) []Finding
}

// AllPasses returns the suite in reporting order.
func AllPasses() []Pass {
	return []Pass{
		&ModGuard{},
		&CryptoRand{},
		&ParSafe{},
		NewPanicFreeWire(),
		&ErrDrop{},
		&ScratchAlias{},
		&SecretTaint{},
		&ModDomain{},
		&NoAlloc{},
		&LockOrder{},
		&BlockHold{},
		&GoLeak{},
	}
}

// PassByName returns the named pass, or nil.
func PassByName(name string) Pass {
	for _, p := range AllPasses() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

// allow is one parsed //lint:allow directive.
type allow struct {
	pass   string
	reason string
	pos    token.Position
}

// collectAllows parses every //lint:allow comment in the program.
// The returned map is keyed by filename then line. Malformed directives
// (missing pass or reason) are returned as findings so they fail the
// gate instead of silently suppressing nothing.
func collectAllows(prog *Program) (map[string]map[int][]allow, []Finding) {
	allows := map[string]map[int][]allow{}
	var bad []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "lint:allow") {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
					fields := strings.SplitN(rest, " ", 2)
					if len(fields) == 0 || fields[0] == "" {
						bad = append(bad, Finding{Pass: "allowlist", Pos: pos,
							Message: "lint:allow directive missing pass name"})
						continue
					}
					pass, reason := fields[0], ""
					if len(fields) == 2 {
						reason = strings.TrimSpace(fields[1])
					}
					if PassByName(pass) == nil {
						bad = append(bad, Finding{Pass: "allowlist", Pos: pos,
							Message: fmt.Sprintf("lint:allow names unknown pass %q", pass)})
						continue
					}
					if reason == "" {
						bad = append(bad, Finding{Pass: "allowlist", Pos: pos,
							Message: fmt.Sprintf("lint:allow %s has no reason; unexplained suppressions are forbidden", pass)})
						continue
					}
					byLine := allows[pos.Filename]
					if byLine == nil {
						byLine = map[int][]allow{}
						allows[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], allow{pass: pass, reason: reason, pos: pos})
				}
			}
		}
	}
	return allows, bad
}

// suppressed reports whether finding f is covered by an allow directive
// on the same line or the line directly above.
func suppressed(allows map[string]map[int][]allow, f Finding) bool {
	byLine := allows[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, a := range byLine[line] {
			if a.pass == f.Pass {
				return true
			}
		}
	}
	return false
}

// Run executes the passes over prog, applies the allowlist, and returns
// the surviving findings sorted by position.
func Run(prog *Program, passes []Pass) []Finding {
	allows, bad := collectAllows(prog)
	findings := bad
	for _, p := range passes {
		for _, f := range p.Run(prog) {
			if !suppressed(allows, f) && !prog.Generated[f.Pos.Filename] {
				findings = append(findings, f)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Pass < findings[j].Pass
	})
	return findings
}

// relPkgPath returns pkg's import path relative to the module root
// ("internal/ring", "cmd/athena-lint", or "" for the root package).
func relPkgPath(prog *Program, pkg *Package) string {
	if pkg.PkgPath == prog.ModulePath {
		return ""
	}
	return strings.TrimPrefix(pkg.PkgPath, prog.ModulePath+"/")
}

// exprIdents appends every identifier appearing in e to dst.
func exprIdents(e ast.Expr, dst []*ast.Ident) []*ast.Ident {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			dst = append(dst, id)
		}
		return true
	})
	return dst
}
