package arch

import (
	"math"
	"testing"

	"athena/internal/compiler"
	"athena/internal/core"
)

func trace(t testing.TB, model string, w, a int) *compiler.Trace {
	t.Helper()
	qn, err := compiler.SpecModel(model, w, a)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := compiler.Compile(qn, core.FullParams())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestResNet20OperatingPoint(t *testing.T) {
	// The calibration anchor: ResNet-20 w7a7 must land near the paper's
	// 65.5 ms / 0.35 EDP point (within ±25%).
	r := Simulate(trace(t, "ResNet-20", 7, 7), AthenaConfig())
	if r.TimeMS < 49 || r.TimeMS > 82 {
		t.Fatalf("ResNet-20 w7a7: %.1f ms, expected ≈65.5", r.TimeMS)
	}
	if r.EDP < 0.26 || r.EDP > 0.44 {
		t.Fatalf("ResNet-20 w7a7 EDP %.3f, expected ≈0.35", r.EDP)
	}
	pw := r.EnergyJ / (r.TimeMS / 1e3)
	if pw < 50 || pw > 148.1 {
		t.Fatalf("operating power %.1f W outside the plausible envelope", pw)
	}
}

func TestQuantModeSpeedup(t *testing.T) {
	// Athena-w6a7 beats w7a7 via smaller LUTs (paper: 65.5 -> 54.9 ms).
	for _, m := range []string{"MNIST", "LeNet", "ResNet-20", "ResNet-56"} {
		r7 := Simulate(trace(t, m, 7, 7), AthenaConfig())
		r6 := Simulate(trace(t, m, 6, 7), AthenaConfig())
		ratio := r7.TimeMS / r6.TimeMS
		if ratio < 1.05 || ratio > 1.6 {
			t.Fatalf("%s w7a7/w6a7 speedup %.2f outside the paper's band", m, ratio)
		}
	}
}

func TestSpeedupVersusBaselines(t *testing.T) {
	athena := Simulate(trace(t, "ResNet-20", 7, 7), AthenaConfig())
	for _, b := range Baselines() {
		bt, err := b.BaselineRuntime("ResNet-20")
		if err != nil {
			t.Fatal(err)
		}
		sp := bt / athena.TimeMS
		switch b.Name {
		case "SHARP":
			if sp < 1.2 || sp > 2.3 {
				t.Fatalf("speedup vs SHARP %.2f, paper reports ~1.5x", sp)
			}
		case "BTS":
			if sp < 20 {
				t.Fatalf("speedup vs BTS %.1f, paper reports ~29x", sp)
			}
		case "CraterLake":
			if sp < 3 || sp > 8 {
				t.Fatalf("speedup vs CraterLake %.2f, paper reports ~4.9x", sp)
			}
		case "ARK":
			if sp < 1.4 || sp > 3 {
				t.Fatalf("speedup vs ARK %.2f, paper reports ~1.9x", sp)
			}
		}
	}
}

func TestEDPBeatsAllBaselines(t *testing.T) {
	for _, m := range []string{"LeNet", "ResNet-20", "ResNet-56"} {
		athena := Simulate(trace(t, m, 7, 7), AthenaConfig())
		for _, b := range Baselines() {
			be, err := b.EDP(m)
			if err != nil {
				t.Fatal(err)
			}
			if athena.EDP >= be {
				t.Fatalf("%s: Athena EDP %.3f not below %s %.3f", m, athena.EDP, b.Name, be)
			}
		}
	}
}

func TestEDAPAdvantageExceedsEDP(t *testing.T) {
	// The paper: EDAP gains exceed EDP gains thanks to the small area.
	athena := Simulate(trace(t, "ResNet-20", 7, 7), AthenaConfig())
	area, _ := TotalAreaPower()
	for _, b := range Baselines() {
		be, _ := b.EDP("ResNet-20")
		bea, _ := b.EDAP("ResNet-20")
		edpGain := be / athena.EDP
		edapGain := bea / (athena.EDP * area)
		if edapGain <= edpGain {
			t.Fatalf("%s: EDAP gain %.1f not above EDP gain %.1f", b.Name, edapGain, edpGain)
		}
	}
}

func TestTable9Totals(t *testing.T) {
	area, power := TotalAreaPower()
	if math.Abs(area-116.43) > 0.2 {
		t.Fatalf("area total %.2f, paper reports 116.4 mm²", area)
	}
	if math.Abs(power-148.14) > 0.2 {
		t.Fatalf("power total %.2f, paper reports 148.1 W", power)
	}
	// Athena is at least 1.53x smaller than every baseline (paper: vs
	// SHARP).
	for _, b := range Baselines() {
		if b.AreaMM2/area < 1.5 {
			t.Fatalf("%s area advantage %.2f below 1.5x", b.Name, b.AreaMM2/area)
		}
	}
}

func TestTable8Shape(t *testing.T) {
	rows := Table8()
	if len(rows) != 5 || rows[4].Accelerator != "Athena" {
		t.Fatal("Table 8 malformed")
	}
	athena := rows[4]
	for _, r := range rows[:4] {
		if athena.ScratchpadMB >= r.ScratchpadMB {
			t.Fatalf("Athena scratchpad %0.f MB not below %s's %0.f MB", athena.ScratchpadMB, r.Accelerator, r.ScratchpadMB)
		}
	}
	// >4x reduction vs CraterLake/ARK/BTS (paper's claim).
	if rows[0].ScratchpadMB/athena.ScratchpadMB < 4 {
		t.Fatal("scratchpad reduction below 4x vs CraterLake")
	}
}

func TestForeignAcceleratorSlowdown(t *testing.T) {
	tr := trace(t, "ResNet-20", 7, 7)
	athena := Simulate(tr, AthenaConfig())
	cl, err := ForeignAthenaConfig("CraterLake")
	if err != nil {
		t.Fatal(err)
	}
	sh, err := ForeignAthenaConfig("SHARP")
	if err != nil {
		t.Fatal(err)
	}
	rCL := Simulate(tr, cl)
	rSH := Simulate(tr, sh)
	slowCL := rCL.TimeMS / athena.TimeMS
	slowSH := rSH.TimeMS / athena.TimeMS
	// Paper Fig. 8: at least 3.8x (CraterLake) and 9.9x (SHARP) slower.
	if slowCL < 2.5 || slowCL > 6 {
		t.Fatalf("CraterLake+AthenaFW slowdown %.1f outside the Fig. 8 band", slowCL)
	}
	if slowSH < 7 || slowSH > 14 {
		t.Fatalf("SHARP+AthenaFW slowdown %.1f outside the Fig. 8 band", slowSH)
	}
	if slowSH <= slowCL {
		t.Fatal("SHARP must be slower than CraterLake on the Athena framework")
	}
	// MM/MA dominance on foreign hardware (paper: >77% / >84%).
	if rCL.MACCycleShare < 0.7 {
		t.Fatalf("CraterLake MAC share %.2f below the Fig. 8 observation", rCL.MACCycleShare)
	}
	if rSH.MACCycleShare < 0.8 {
		t.Fatalf("SHARP MAC share %.2f below the Fig. 8 observation", rSH.MACCycleShare)
	}
	if _, err := ForeignAthenaConfig("BTS"); err == nil {
		t.Fatal("unmodeled foreign accelerator accepted")
	}
}

func TestBreakdownDominatedByFBS(t *testing.T) {
	// Fig. 9: the non-linear part (FBS) takes the largest share, up to
	// ~72%.
	for _, m := range []string{"MNIST", "LeNet", "ResNet-20", "ResNet-56"} {
		r := Simulate(trace(t, m, 7, 7), AthenaConfig())
		nonlinear := r.TimeByCat[compiler.CatActivation] + r.TimeByCat[compiler.CatPooling] + r.TimeByCat[compiler.CatSoftmax]
		if nonlinear/r.TimeMS < 0.5 {
			t.Fatalf("%s: non-linear share %.2f below half", m, nonlinear/r.TimeMS)
		}
		if r.TimeByCat[compiler.CatActivation] <= r.TimeByCat[compiler.CatLinear] {
			t.Fatalf("%s: activation does not dominate linear", m)
		}
	}
}

func TestLeNetPoolingHeavierThanResNet(t *testing.T) {
	// Fig. 9: LeNet's max pooling consumes a larger share than the
	// ResNets' average pooling.
	lenet := Simulate(trace(t, "LeNet", 7, 7), AthenaConfig())
	rn := Simulate(trace(t, "ResNet-20", 7, 7), AthenaConfig())
	lp := lenet.TimeByCat[compiler.CatPooling] / lenet.TimeMS
	rp := rn.TimeByCat[compiler.CatPooling] / rn.TimeMS
	if lp <= rp {
		t.Fatalf("LeNet pooling share %.3f not above ResNet-20's %.3f", lp, rp)
	}
}

func TestMemoryEnergyShare(t *testing.T) {
	// Fig. 10: memory access ≈ 50% of energy; FRU the largest compute
	// consumer.
	r := Simulate(trace(t, "ResNet-20", 7, 7), AthenaConfig())
	mem := r.EnergyByUnit["HBM"] + r.EnergyByUnit["SPM"]
	share := mem / r.EnergyJ
	if share < 0.3 || share > 0.65 {
		t.Fatalf("memory energy share %.2f outside the ≈50%% band", share)
	}
	if r.EnergyByUnit["FRU"] <= r.EnergyByUnit["NTT"] {
		t.Fatal("FRU must out-consume the NTT unit")
	}
}

func TestLaneSensitivityOrdering(t *testing.T) {
	// Fig. 13: FRU is the most delay-sensitive unit, then NTT; SE the
	// least.
	tr := trace(t, "ResNet-20", 7, 7)
	at256 := map[string]float64{}
	for _, u := range SensitivityUnits {
		pts, err := LaneSensitivity(tr, u, []int{256, 2048})
		if err != nil {
			t.Fatal(err)
		}
		if pts[1].Delay < 0.99 || pts[1].Delay > 1.01 {
			t.Fatalf("%s: full-lane delay not normalized: %.3f", u, pts[1].Delay)
		}
		if pts[0].Delay < pts[1].Delay {
			t.Fatalf("%s: fewer lanes cannot be faster", u)
		}
		at256[u] = pts[0].Delay
	}
	if !(at256[UnitFRU] > at256[UnitNTT] && at256[UnitNTT] >= at256[UnitAuto] && at256[UnitAuto] >= at256[UnitSE]) {
		t.Fatalf("sensitivity ordering wrong: %+v", at256)
	}
	if at256[UnitFRU] < 1.5 {
		t.Fatalf("FRU at 256 lanes should slow the system substantially, got %.2f", at256[UnitFRU])
	}
	if _, err := LaneSensitivity(tr, "bogus", []int{256}); err == nil {
		t.Fatal("unknown unit accepted")
	}
}

func TestCKKSComplexityRatios(t *testing.T) {
	// The normalization ratios must sit near the paper's implied values
	// (MNIST 0.11, LeNet 0.57, ResNet-56 2.95) — shape, not exact match.
	ref, _ := CKKSComplexity("ResNet-20")
	mn, _ := CKKSComplexity("MNIST")
	ln, _ := CKKSComplexity("LeNet")
	r56, _ := CKKSComplexity("ResNet-56")
	if r := mn / ref; r < 0.05 || r > 0.25 {
		t.Fatalf("MNIST ratio %.3f", r)
	}
	if r := ln / ref; r < 0.25 || r > 0.8 {
		t.Fatalf("LeNet ratio %.3f", r)
	}
	if r := r56 / ref; r < 2.3 || r > 3.3 {
		t.Fatalf("ResNet-56 ratio %.3f", r)
	}
	if _, err := CKKSComplexity("VGG"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestRegionPipelineAblation(t *testing.T) {
	tr := trace(t, "ResNet-20", 7, 7)
	base := Simulate(tr, AthenaConfig())
	serial := AthenaConfig()
	serial.SerializeFBSRegions = true
	rs := Simulate(tr, serial)
	if rs.TimeMS <= base.TimeMS {
		t.Fatalf("serialized regions (%.1f ms) must be slower than pipelined (%.1f ms)", rs.TimeMS, base.TimeMS)
	}
	ratio := rs.TimeMS / base.TimeMS
	if ratio < 1.15 || ratio > 2.0 {
		t.Fatalf("pipeline benefit %.2fx outside the plausible band", ratio)
	}
}

func TestUniformLUTAblation(t *testing.T) {
	qn, err := compiler.SpecModel("ResNet-20", 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	sized, err := compiler.Compile(qn, core.FullParams())
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := compiler.CompileWithOptions(qn, core.FullParams(), compiler.Options{UniformLUT: true})
	if err != nil {
		t.Fatal(err)
	}
	rs := Simulate(sized, AthenaConfig())
	ru := Simulate(uniform, AthenaConfig())
	if ru.TimeMS <= rs.TimeMS {
		t.Fatalf("uniform-t LUTs (%.1f ms) must cost more than per-layer sizing (%.1f ms)", ru.TimeMS, rs.TimeMS)
	}
}

func TestScaledArea(t *testing.T) {
	full, _ := TotalAreaPower()
	if d := ScaledArea(1) - full; d > 1e-9 || d < -1e-9 {
		t.Fatalf("ScaledArea(1) = %v, want %v", ScaledArea(1), full)
	}
	if ScaledArea(0.125) >= full {
		t.Fatal("scaling down lanes must shrink area")
	}
	// Memory and HBM never scale: the floor is their sum.
	floor := full - (3.8 + 1.2 + 4.51 + 0.32 + 42.6)
	if ScaledArea(0.01) < floor {
		t.Fatal("scaled area fell below the memory floor")
	}
}

func TestRequiredSPMBandwidth(t *testing.T) {
	// Table 8: Athena's FRU array needs ~180 TB/s of on-chip bandwidth.
	bw := RequiredSPMBandwidth(AthenaConfig())
	if bw < 160 || bw > 200 {
		t.Fatalf("derived scratchpad bandwidth %.0f TB/s, Table 8 reports 180", bw)
	}
}
