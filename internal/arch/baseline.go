package arch

import (
	"fmt"

	"athena/internal/coeffenc"
	"athena/internal/qnn"
)

// Baseline is one state-of-the-art CKKS accelerator, described by its
// published characteristics (the same literature constants the paper's
// Table 6/7/9 comparisons start from). Runtimes for benchmarks other
// than ResNet-20 are produced by normalizing CKKS workload complexity to
// ResNet-20 — exactly the paper's stated methodology ("These
// accelerators only report on ResNet-20. We normalize the computational
// complexity of other benchmarks...").
type Baseline struct {
	Name       string
	ResNet20MS float64 // published ResNet-20 (CKKS) latency
	AreaMM2    float64
	AvgPowerW  float64 // operating power used for EDP
}

// Baselines returns the four comparison accelerators with their
// published ResNet-20 latencies (Table 6 row sources) and areas
// (Table 9).
func Baselines() []Baseline {
	return []Baseline{
		// AvgPowerW is derived from the published ResNet-20 EDP and
		// latency: P = EDP/t² (Table 7 / Table 6 of the paper).
		{Name: "CraterLake", ResNet20MS: 321, AreaMM2: 222.7, AvgPowerW: 112.7},
		{Name: "ARK", ResNet20MS: 125, AreaMM2: 418.3, AvgPowerW: 127.4},
		{Name: "BTS", ResNet20MS: 1910, AreaMM2: 373.6, AvgPowerW: 164.6},
		{Name: "SHARP", ResNet20MS: 99, AreaMM2: 178.8, AvgPowerW: 98.0},
	}
}

// CKKSComplexity estimates the relative CKKS-pipeline cost of a
// benchmark: each linear layer costs one conv+bootstrap unit scaled by
// how many ciphertexts its output occupies; approximated max-pool
// comparisons are heavily penalized (deep minimax polynomials); average
// pooling and softmax are cheap rotations.
func CKKSComplexity(model string) (float64, error) {
	net, err := qnn.ModelByName(model, 1)
	if err != nil {
		return 0, err
	}
	const slotCap = 32768 // N=2^16 CKKS, N/2 slots
	units := 0.0
	var walk func(b qnn.Block, h, w int) (int, int)
	walk = func(b qnn.Block, h, w int) (int, int) {
		for _, l := range b.Layers() {
			switch lay := l.(type) {
			case *qnn.Conv2D:
				oh := (h+2*lay.Pad-lay.K)/lay.Stride + 1
				ow := (w+2*lay.Pad-lay.K)/lay.Stride + 1
				cts := float64(lay.Cout*oh*ow)/slotCap + 1
				units += cts + 1 // linear + bootstrap
				h, w = oh, ow
			case *qnn.Dense:
				units += 2 // linear + bootstrap
			case *qnn.MaxPool:
				units += 6 // k²-1 comparisons × deep minimax approx
				h, w = h/lay.K, w/lay.K
			case *qnn.AvgPool:
				units += 0.5
				h, w = h/lay.K, w/lay.K
			}
		}
		return h, w
	}
	h, w := net.InH, net.InW
	for _, b := range net.Blocks {
		h, w = walk(b, h, w)
	}
	units += 1 // softmax
	return units, nil
}

// BaselineRuntime returns the baseline's latency for the model, using
// the paper's complexity normalization against its published ResNet-20
// number.
func (b Baseline) BaselineRuntime(model string) (float64, error) {
	c, err := CKKSComplexity(model)
	if err != nil {
		return 0, err
	}
	ref, err := CKKSComplexity("ResNet-20")
	if err != nil {
		return 0, err
	}
	return b.ResNet20MS * c / ref, nil
}

// EDP returns the baseline's energy-delay product (J·s) for the model,
// from its average power and normalized runtime.
func (b Baseline) EDP(model string) (float64, error) {
	t, err := b.BaselineRuntime(model)
	if err != nil {
		return 0, err
	}
	sec := t / 1e3
	return b.AvgPowerW * sec * sec, nil
}

// EDAP returns EDP × area.
func (b Baseline) EDAP(model string) (float64, error) {
	e, err := b.EDP(model)
	if err != nil {
		return 0, err
	}
	return e * b.AreaMM2, nil
}

// ForeignAthenaConfig models running the *Athena framework* on a foreign
// CKKS accelerator (Fig. 8): the architecture keeps its NTT/BConv
// strengths but has no FRU array, so FBS's streaming MM/MA work runs on
// its base-conversion datapath at low effective utilization. SE units
// are assumed added for comparability, as in the paper.
func ForeignAthenaConfig(name string) (Config, error) {
	cfg := AthenaConfig()
	cfg.Name = name + "+AthenaFW"
	switch name {
	case "CraterLake":
		// CRB: 2048×60 MACs but broadcast-only dataflow; effective
		// utilization on FBS streams ≈ 3%, i.e. ~2 FRU-block
		// equivalents.
		cfg.FRUBlocksR1 = 2
		cfg.FRULanes = 2048
	case "SHARP":
		// BConv systolic arrays: tighter coupling, lower effective
		// streaming utilization (~1.6 block equivalents).
		cfg.FRUBlocksR1 = 1
		cfg.FRULanes = 2048
		// SHARP's 36-bit datapath runs keyswitching efficiently but has
		// half the automorphism throughput at Athena's word size.
		cfg.AutoLanes = 1024
	default:
		return Config{}, fmt.Errorf("arch: no Athena-framework model for %q", name)
	}
	return cfg, nil
}

// ValidRatioTable recomputes Table 2 (package coeffenc does the work;
// re-exported here so the report layer has a single entry point).
func ValidRatioTable(n int) ([]coeffenc.ConvShape, []float64, []float64, error) {
	shapes := []coeffenc.ConvShape{
		{H: 32, W: 32, Cin: 3, Cout: 16, K: 3, Stride: 1, Pad: 1},
		{H: 32, W: 32, Cin: 16, Cout: 16, K: 3, Stride: 1, Pad: 1},
		{H: 32, W: 32, Cin: 16, Cout: 32, K: 1, Stride: 2, Pad: 0},
		{H: 16, W: 16, Cin: 32, Cout: 32, K: 3, Stride: 1, Pad: 1},
		{H: 16, W: 16, Cin: 32, Cout: 64, K: 1, Stride: 2, Pad: 0},
		{H: 8, W: 8, Cin: 64, Cout: 64, K: 3, Stride: 1, Pad: 1},
	}
	athena := make([]float64, len(shapes))
	cheetah := make([]float64, len(shapes))
	for i, s := range shapes {
		pa, err := coeffenc.NewPlan(s, n, coeffenc.AthenaOrder)
		if err != nil {
			return nil, nil, nil, err
		}
		pc, err := coeffenc.NewPlan(s, n, coeffenc.CheetahOrder)
		if err != nil {
			return nil, nil, nil, err
		}
		athena[i] = pa.ValidRatio()
		cheetah[i] = pc.ValidRatio()
	}
	return shapes, athena, cheetah, nil
}
